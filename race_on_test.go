//go:build race

package spequlos

// raceDetectorEnabled reports that this binary was built with -race: the
// detector slows CPU-bound code by 2–20×, so throughput floors must not run.
const raceDetectorEnabled = true
