package spequlos_test

import (
	"context"
	"fmt"

	"spequlos"
)

// ExampleRunCampaign plans a paired baseline + SpeQuloS comparison as one
// campaign: both jobs share a seed, execute exactly once on the worker
// pool, and land in the same result store.
func ExampleRunCampaign() {
	base := spequlos.Scenario{
		Profile: spequlos.QuickProfile(), Middleware: "XWHEP",
		TraceName: "seti", BotClass: "SMALL",
	}
	st := spequlos.DefaultStrategy()
	speq := base
	speq.Strategy = &st

	c := spequlos.NewCampaign(base.Profile,
		spequlos.CampaignJob{Scenario: base},
		spequlos.CampaignJob{Scenario: speq},
	)
	store := spequlos.NewResultStore()
	stats, err := spequlos.RunCampaign(context.Background(), c, store)
	if err != nil {
		fmt.Println("campaign failed:", err)
		return
	}
	fmt.Printf("planned=%d executed=%d\n", stats.Planned, stats.Executed)

	baseRes, _ := store.Result(spequlos.CampaignJob{Scenario: base})
	speqRes, _ := store.Result(spequlos.CampaignJob{Scenario: speq})
	fmt.Printf("baseline completed=%v tasks=%d\n", baseRes.Completed, baseRes.Size)
	fmt.Printf("9C-C-R completed=%v faster=%v\n",
		speqRes.Completed, speqRes.CompletionTime < baseRes.CompletionTime)
	// Output:
	// planned=2 executed=2
	// baseline completed=true tasks=40
	// 9C-C-R completed=true faster=true
}

// ExampleSimulate runs one scenario directly, without a campaign.
func ExampleSimulate() {
	res := spequlos.Simulate(spequlos.Scenario{
		Profile: spequlos.QuickProfile(), Middleware: "BOINC",
		TraceName: "g5klyo", BotClass: "SMALL",
	})
	fmt.Printf("completed=%v tasks=%d\n", res.Completed, res.Size)
	// Output:
	// completed=true tasks=40
}
