//go:build !race

package spequlos

// raceDetectorEnabled reports whether this binary was built with -race.
const raceDetectorEnabled = false
