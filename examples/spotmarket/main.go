// Spot-market example (§4.1.1): simulate the EC2 spot price process, place
// the paper's persistent bid ladder (n bids at S/i for a total budget of S
// dollars per hour), derive the instance availability trace, and run a BoT
// on it with and without SpeQuloS.
package main

import (
	"fmt"
	"strings"

	"spequlos"
	"spequlos/internal/spot"
)

func main() {
	market := spot.DefaultMarket()
	prices := market.Prices(7, 86400) // one day, 5-minute steps

	fmt.Println("spot price and bid-ladder fleet over one day (budget $10/h):")
	for i := 0; i < len(prices); i += 24 { // every 2 hours
		p := prices[i]
		n := spot.InstanceCount(10, p)
		bar := strings.Repeat("#", n/2)
		fmt.Printf("  t=%5.1fh  $%.4f  %3d instances %s\n",
			float64(i)*market.Step/3600, p, n, bar)
	}

	fmt.Println("\nrunning a RANDOM BoT on the spot10 trace (XWHEP)…")
	sc := spequlos.Scenario{
		Profile:    spequlos.QuickProfile(),
		Middleware: "XWHEP",
		TraceName:  "spot10",
		BotClass:   "RANDOM",
	}
	base := spequlos.Simulate(sc)
	st := spequlos.DefaultStrategy()
	sc.Strategy = &st
	speq := spequlos.Simulate(sc)
	fmt.Printf("  baseline : %.0f s (tail slowdown ×%.2f)\n", base.CompletionTime, base.Tail.Slowdown)
	fmt.Printf("  SpeQuloS : %.0f s, %.1f credits spent of %.1f\n",
		speq.CompletionTime, speq.CreditsBilled, speq.CreditsAllocated)
}
