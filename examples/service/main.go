// Service example (Fig 3): start the four SpeQuloS modules as separate
// HTTP services on loopback, then play the paper's sequence diagram —
// registerQoS, BoT submission and progress, completion-time prediction,
// credit order, the Scheduler's monitor loop starting cloud workers on a
// (mock) EC2 when the tail is reached, billing, and the final payment with
// refund.
package main

import (
	"fmt"
	"sync"
	"time"

	"spequlos/internal/cloud"
	"spequlos/internal/core"
	"spequlos/internal/middleware"
	"spequlos/internal/service"
)

// demoDG scripts a BoT whose completion advances each monitor step.
type demoDG struct {
	mu   sync.Mutex
	done int
}

func (d *demoDG) set(n int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.done = n
}

func (d *demoDG) Progress(string) (middleware.Progress, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return middleware.Progress{Size: 100, Arrived: 100, Completed: d.done,
		EverAssigned: 100, Running: 100 - d.done}, nil
}

func (d *demoDG) WorkerURL() string { return "http://xwhep.lal.example:4330" }

func main() {
	dg := &demoDG{}
	ec2 := cloud.NewMockEC2()
	stack := service.NewTestStack(service.StackConfig{
		Strategy: core.DefaultStrategy(),
		Registry: cloud.NewRegistry(ec2),
		DG:       dg,
	})
	defer stack.Close()

	now := time.Now()
	stack.Scheduler.Now = func() time.Time { return now }
	step := func(done int) {
		dg.set(done)
		now = now.Add(time.Minute)
		if err := stack.Scheduler.Step(); err != nil {
			panic(err)
		}
	}

	fmt.Println("1. user deposits 500 credits and registers QoS for bot-42 (100 tasks)")
	must(stack.CreditClient.Deposit("alice", 500))
	must(stack.Scheduler.RegisterQoS(service.QoSRequest{
		User: "alice", BatchID: "bot-42", EnvKey: "XWHEP/seti/SMALL", Size: 100,
		Credits: 300, Provider: "ec2", Image: "xwhep-worker-image",
	}))

	fmt.Println("2. the BoT executes on the BE-DCI; SpeQuloS monitors per minute")
	step(25)
	step(50)

	pred, err := stack.OracleClient.Predict("bot-42")
	must(err)
	fmt.Printf("3. Oracle prediction at 50%%: completion in %.0f s (α=%.2f)\n",
		pred.PredictedTime, pred.Alpha)

	fmt.Println("4. completion reaches 91% — the tail: Scheduler starts cloud workers")
	step(91)
	st, err := stack.Scheduler.Status("bot-42")
	must(err)
	for _, inst := range st.Instances {
		fmt.Printf("   started %s on %s → %s\n", inst.ID, inst.Provider, inst.DGServer)
	}

	fmt.Println("5. cloud workers execute the tail; usage billed per minute")
	step(97)
	o, err := stack.CreditClient.OrderOf("bot-42")
	must(err)
	fmt.Printf("   billed so far: %.2f credits of %.0f provisioned\n", o.Billed, o.Allocated)

	fmt.Println("6. BoT completes: instances stop, order paid, remainder refunded")
	step(100)
	o, _ = stack.CreditClient.OrderOf("bot-42")
	acct, _ := stack.CreditClient.Account("alice")
	fmt.Printf("   final bill %.2f credits; alice's balance back to %.2f\n", o.Billed, acct.Balance)
	fmt.Printf("   instances still running on EC2: %d\n", len(ec2.List()))

	cal, _ := stack.OracleClient.Calibration("XWHEP/seti/SMALL")
	fmt.Printf("7. execution archived for calibration (α=%.2f over %d runs)\n", cal.Alpha, cal.Count)
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
