// EDGI deployment example (§5, Fig 8, Table 5): the University Paris-XI
// slice of the European Desktop Grid Infrastructure — two XtremWeb-HEP
// desktop grids (XW@LAL on the lab's desktop machines, XW@LRI harvesting
// Grid'5000 best-effort nodes), EGI grid tasks arriving through the
// 3G-Bridge, and SpeQuloS providing QoS from two different clouds
// (StratusLab/OpenNebula for LAL, Amazon EC2 for LRI).
package main

import (
	"fmt"

	"spequlos/internal/experiments"
)

func main() {
	fmt.Println("simulating the EDGI Paris-XI deployment (2 DGs + EGI bridge + 2 clouds)…")
	t5 := experiments.BuildTable5(4, 12, 2012)
	fmt.Println()
	fmt.Print(t5.Render())
	fmt.Println()
	fmt.Println("Columns mirror Table 5 of the paper: tasks executed on each")
	fmt.Println("Desktop Grid, tasks that arrived from EGI through the 3G-Bridge,")
	fmt.Println("and tasks SpeQuloS executed on each supporting cloud.")
}
