// Quickstart: run one SMALL Bag-of-Tasks on the SETI@home desktop grid
// trace under the XWHEP middleware, with and without SpeQuloS, and compare
// completion time, tail and cloud cost — the core promise of the paper in
// thirty lines.
package main

import (
	"fmt"

	"spequlos"
)

func main() {
	profile := spequlos.QuickProfile()
	scenario := spequlos.Scenario{
		Profile:    profile,
		Middleware: "XWHEP",
		TraceName:  "seti",
		BotClass:   "SMALL",
	}

	fmt.Println("running baseline (no QoS support)…")
	base := spequlos.Simulate(scenario)
	fmt.Printf("  %d tasks completed in %.0f s (ideal %.0f s, tail slowdown ×%.2f)\n",
		base.Size, base.CompletionTime, base.Tail.IdealTime, base.Tail.Slowdown)

	strategy := spequlos.DefaultStrategy() // 9C-C-R
	scenario.Strategy = &strategy
	fmt.Printf("running with SpeQuloS (%s)…\n", strategy.Label())
	speq := spequlos.Simulate(scenario)
	fmt.Printf("  %d tasks completed in %.0f s (tail slowdown ×%.2f)\n",
		speq.Size, speq.CompletionTime, speq.Tail.Slowdown)
	fmt.Printf("  cloud: %d instance(s), %.0f CPU·s, %.1f of %.1f credits spent\n",
		speq.Instances, speq.CloudCPUSeconds, speq.CreditsBilled, speq.CreditsAllocated)

	if speq.CompletionTime > 0 {
		fmt.Printf("\nSpeQuloS speed-up: %.2fx, offloading %.2f%% of the workload to the cloud\n",
			base.CompletionTime/speq.CompletionTime,
			100*speq.CreditsBilled/(speq.CreditsAllocated*10))
	}
}
