// Perf floor: the quick campaign must not regress more than 30% below the
// committed BENCH_quick.json baseline. The comparison uses events per CPU
// second when the baseline records it (robust to co-scheduled load);
// `go test -short` skips the check.
package spequlos

import (
	"context"
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"

	"spequlos/internal/campaign"
	"spequlos/internal/core"
	"spequlos/internal/experiments"
)

// benchBaseline is the subset of BENCH_quick.json the floor check reads.
type benchBaseline struct {
	Profile         string  `json:"profile"`
	EventsPerSec    float64 `json:"events_per_sec"`
	EventsPerCPUSec float64 `json:"events_per_cpu_sec"`
}

const perfFloorFraction = 0.70 // fail when >30% below baseline

func TestQuickCampaignPerfFloor(t *testing.T) {
	if testing.Short() {
		t.Skip("perf floor skipped with -short")
	}
	if raceDetectorEnabled {
		t.Skip("perf floor skipped under the race detector (2–20× slowdown)")
	}
	data, err := os.ReadFile("BENCH_quick.json")
	if err != nil {
		t.Fatalf("reading committed baseline: %v", err)
	}
	var base benchBaseline
	if err := json.Unmarshal(data, &base); err != nil {
		t.Fatalf("parsing BENCH_quick.json: %v", err)
	}
	useCPU := base.EventsPerCPUSec > 0 && campaign.ProcessCPUSeconds() > 0
	baseline := base.EventsPerSec
	metric := "events/sec"
	if useCPU {
		baseline = base.EventsPerCPUSec
		metric = "events/cpu-sec"
	}
	if baseline <= 0 {
		t.Fatalf("BENCH_quick.json has no usable throughput baseline: %+v", base)
	}
	floor := perfFloorFraction * baseline

	// The same plan the bench CLI executes for the committed report: the
	// full quick matrix with every strategy combination.
	p := experiments.Quick()
	opts := experiments.ArtifactOptions{
		Spec: experiments.MatrixSpec{Strategies: core.AllStrategies()},
	}

	var measured float64
	for attempt := 0; attempt < 2; attempt++ {
		plan := experiments.PlanArtifacts(p, opts)
		c := &campaign.Campaign{Profile: p, Plan: plan}
		stats, err := c.Run(context.Background(), campaign.NewResultStore())
		if err != nil {
			t.Fatal(err)
		}
		got := stats.EventsPerSecond()
		if useCPU {
			got = stats.EventsPerCPUSecond()
		}
		if got > measured {
			measured = got
		}
		t.Logf("attempt %d: %.0f %s (baseline %.0f, floor %.0f)", attempt+1, got, metric, baseline, floor)
		if measured >= floor {
			break // one clean attempt is enough; retry only below the floor
		}
	}
	if measured < floor {
		t.Fatalf("quick campaign throughput %.0f %s is >30%% below the committed baseline %.0f (floor %.0f); "+
			"if a deliberate trade-off, regenerate BENCH_quick.json with cmd/spequlos-bench",
			measured, metric, baseline, floor)
	}
}

// stressCell is the stress profile's baseline cell: 32 batches over a
// 2500-node 30-day churn, the sharded kernel's headline workload (batches
// are independent, so a baseline window is one barrier-free parallel
// region).
func stressCell(kernelShards int) campaign.Job {
	p := experiments.Stress()
	p.KernelShards = kernelShards
	return campaign.Job{Scenario: campaign.Scenario{
		Profile: p, Middleware: campaign.XWHEP, TraceName: "seti", BotClass: "SMALL",
	}}
}

// runStressCell executes one stress baseline cell and returns its
// wall-clock. The first call warms the shared trace cache, so callers
// should discard a warm-up run before timing.
func runStressCell(t *testing.T, kernelShards int) time.Duration {
	t.Helper()
	start := time.Now()
	e := campaign.Execute(stressCell(kernelShards))
	elapsed := time.Since(start)
	if !e.Result.Completed {
		t.Fatalf("stress cell (%d shards) did not complete: %+v", kernelShards, e.Result)
	}
	return elapsed
}

// TestShardedStressPerfFloor is the parallel-path perf floor: on a
// multi-core machine the sharded kernel must beat the serial (1-shard)
// execution of the same stress cell. Results are byte-identical either way
// (TestShardedKernelDeterminism); this test pins that the parallelism
// actually pays. Skipped with -short, under the race detector, and on
// single-core machines where there is no parallelism to measure.
func TestShardedStressPerfFloor(t *testing.T) {
	if testing.Short() {
		t.Skip("parallel perf floor skipped with -short")
	}
	if raceDetectorEnabled {
		t.Skip("parallel perf floor skipped under the race detector (2–20× slowdown)")
	}
	procs := runtime.GOMAXPROCS(0)
	if procs < 2 {
		t.Skipf("GOMAXPROCS=%d: no parallelism to measure", procs)
	}

	runStressCell(t, 1) // warm the trace cache off the clock

	// Best of two attempts per side damps scheduler noise; the serial side
	// runs first so any remaining cache warming favors it.
	best := func(shards int) time.Duration {
		a := runStressCell(t, shards)
		if b := runStressCell(t, shards); b < a {
			a = b
		}
		return a
	}
	serial := best(1)
	parallel := best(procs)
	t.Logf("stress cell: serial %v, %d-shard %v (speedup %.2fx)",
		serial, procs, parallel, serial.Seconds()/parallel.Seconds())
	if parallel >= serial {
		t.Fatalf("sharded kernel (%d shards, %v) is not faster than serial (%v) on the stress cell",
			procs, parallel, serial)
	}
}
