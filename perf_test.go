// Perf floor: the quick campaign must not regress more than 30% below the
// committed BENCH_quick.json baseline. The comparison uses events per CPU
// second when the baseline records it (robust to co-scheduled load);
// `go test -short` skips the check.
package spequlos

import (
	"context"
	"encoding/json"
	"os"
	"testing"

	"spequlos/internal/campaign"
	"spequlos/internal/core"
	"spequlos/internal/experiments"
)

// benchBaseline is the subset of BENCH_quick.json the floor check reads.
type benchBaseline struct {
	Profile         string  `json:"profile"`
	EventsPerSec    float64 `json:"events_per_sec"`
	EventsPerCPUSec float64 `json:"events_per_cpu_sec"`
}

const perfFloorFraction = 0.70 // fail when >30% below baseline

func TestQuickCampaignPerfFloor(t *testing.T) {
	if testing.Short() {
		t.Skip("perf floor skipped with -short")
	}
	if raceDetectorEnabled {
		t.Skip("perf floor skipped under the race detector (2–20× slowdown)")
	}
	data, err := os.ReadFile("BENCH_quick.json")
	if err != nil {
		t.Fatalf("reading committed baseline: %v", err)
	}
	var base benchBaseline
	if err := json.Unmarshal(data, &base); err != nil {
		t.Fatalf("parsing BENCH_quick.json: %v", err)
	}
	useCPU := base.EventsPerCPUSec > 0 && campaign.ProcessCPUSeconds() > 0
	baseline := base.EventsPerSec
	metric := "events/sec"
	if useCPU {
		baseline = base.EventsPerCPUSec
		metric = "events/cpu-sec"
	}
	if baseline <= 0 {
		t.Fatalf("BENCH_quick.json has no usable throughput baseline: %+v", base)
	}
	floor := perfFloorFraction * baseline

	// The same plan the bench CLI executes for the committed report: the
	// full quick matrix with every strategy combination.
	p := experiments.Quick()
	opts := experiments.ArtifactOptions{
		Spec: experiments.MatrixSpec{Strategies: core.AllStrategies()},
	}

	var measured float64
	for attempt := 0; attempt < 2; attempt++ {
		plan := experiments.PlanArtifacts(p, opts)
		c := &campaign.Campaign{Profile: p, Plan: plan}
		stats, err := c.Run(context.Background(), campaign.NewResultStore())
		if err != nil {
			t.Fatal(err)
		}
		got := stats.EventsPerSecond()
		if useCPU {
			got = stats.EventsPerCPUSecond()
		}
		if got > measured {
			measured = got
		}
		t.Logf("attempt %d: %.0f %s (baseline %.0f, floor %.0f)", attempt+1, got, metric, baseline, floor)
		if measured >= floor {
			break // one clean attempt is enough; retry only below the floor
		}
	}
	if measured < floor {
		t.Fatalf("quick campaign throughput %.0f %s is >30%% below the committed baseline %.0f (floor %.0f); "+
			"if a deliberate trade-off, regenerate BENCH_quick.json with cmd/spequlos-bench",
			measured, metric, baseline, floor)
	}
}
