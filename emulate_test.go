package spequlos_test

import (
	"math"
	"testing"

	"spequlos"
)

// TestEmulateMatchesSimulate exercises the public emulation API: the same
// scenario through Simulate (in-process) and Emulate (deployable HTTP stack
// on the virtual clock) must agree.
func TestEmulateMatchesSimulate(t *testing.T) {
	st := spequlos.DefaultStrategy()
	sc := spequlos.Scenario{
		Profile: spequlos.QuickProfile(), Middleware: "XWHEP",
		TraceName: "seti", BotClass: "SMALL", Strategy: &st,
	}
	sim := spequlos.Simulate(sc)
	out, err := spequlos.Emulate(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !sim.Completed || !out.Completed {
		t.Fatalf("completed: sim=%v emul=%v", sim.Completed, out.Completed)
	}
	if out.TriggeredAt != sim.TriggeredAt || out.Instances != sim.Instances {
		t.Fatalf("fleet diverged: sim trig=%.0f inst=%d, emul trig=%.0f inst=%d",
			sim.TriggeredAt, sim.Instances, out.TriggeredAt, out.Instances)
	}
	if math.Abs(sim.CreditsBilled-out.CreditsBilled) > 1e-6*(1+sim.CreditsBilled) {
		t.Fatalf("billing diverged: sim=%v emul=%v", sim.CreditsBilled, out.CreditsBilled)
	}
	if math.Abs(sim.CompletionTime-out.CompletionTime) > 0.01*sim.CompletionTime {
		t.Fatalf("completion diverged: sim=%.1f emul=%.1f", sim.CompletionTime, out.CompletionTime)
	}
}
