// Benchmarks regenerating each table and figure of the paper's evaluation
// at the quick experiment scale. The simulation matrix executes ONCE per
// `go test -bench` process through the campaign engine (benchStore); the
// per-figure benchmarks measure deriving each artifact from the shared
// result store. Campaign execution itself is measured separately
// (BenchmarkCampaignExecution, BenchmarkSingleRun*); cmd/spequlos-bench
// produces the full-scale artifacts.
package spequlos

import (
	"context"
	"sync"
	"testing"
	"time"

	"spequlos/internal/bot"
	"spequlos/internal/campaign"
	"spequlos/internal/cloud"
	"spequlos/internal/core"
	"spequlos/internal/experiments"
	"spequlos/internal/middleware"
	"spequlos/internal/service"
)

// benchProfile is the quick profile with a single offset so individual
// benchmark derivations stay comparable.
func benchProfile() experiments.Profile {
	p := experiments.Quick()
	p.Offsets = 1
	return p
}

// benchSpec narrows the matrix for per-figure benchmarks: one volatile
// desktop grid, one best-effort grid, two BoT classes.
func benchSpec(strategies ...core.Strategy) experiments.MatrixSpec {
	return experiments.MatrixSpec{
		Traces:     []string{"seti", "g5klyo"},
		Bots:       []string{"SMALL", "BIG"},
		Strategies: strategies,
	}
}

// benchStrategies are the two contrasting combinations the benchmarks use
// instead of all 18, to keep the shared campaign minute-scale.
func benchStrategies() (core.Strategy, core.Strategy) {
	st1 := core.DefaultStrategy()
	st2, _ := core.StrategyByLabel("9A-G-F")
	return st1, st2
}

// benchOpts scopes the shared campaign: the bench matrix, the ablation
// sweeps and the middleware comparison, planned once and deduplicated.
func benchOpts() experiments.ArtifactOptions {
	st1, st2 := benchStrategies()
	return experiments.ArtifactOptions{
		Spec:             benchSpec(st1, st2),
		Ablations:        true,
		Comparison:       true,
		ComparisonTraces: []string{"seti"},
	}
}

var benchShared struct {
	once  sync.Once
	store *campaign.ResultStore
	err   error
}

// benchStore executes the shared quick-scale campaign once per process;
// every derivation benchmark reads from it. The campaign plans with two
// offsets (Table 4 needs several executions per environment); benchmarks
// that want a single offset derive with benchProfile().
func benchStore(b *testing.B) *campaign.ResultStore {
	b.Helper()
	benchShared.once.Do(func() {
		p := experiments.Quick()
		c := &campaign.Campaign{Profile: p, Plan: experiments.PlanArtifacts(p, benchOpts())}
		benchShared.store = campaign.NewResultStore()
		_, benchShared.err = c.Run(context.Background(), benchShared.store)
	})
	if benchShared.err != nil {
		b.Fatal(benchShared.err)
	}
	return benchShared.store
}

// benchMatrix derives the Matrix view of the shared store.
func benchMatrix(b *testing.B, p experiments.Profile, spec experiments.MatrixSpec) experiments.Matrix {
	b.Helper()
	m, err := experiments.MatrixFrom(benchStore(b), p, spec)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

func BenchmarkFigure1ExecutionProfile(b *testing.B) {
	store := benchStore(b)
	p := benchProfile()
	for i := 0; i < b.N; i++ {
		f, err := experiments.Figure1From(store, p)
		if err != nil || len(f.Series) == 0 {
			b.Fatal("empty curve", err)
		}
	}
}

func BenchmarkFigure2TailSlowdownCDF(b *testing.B) {
	p := benchProfile()
	for i := 0; i < b.N; i++ {
		m := benchMatrix(b, p, benchSpec())
		f := experiments.BuildFigure2(m.BaseResults())
		if len(f.Slowdowns) == 0 {
			b.Fatal("empty figure")
		}
	}
}

func BenchmarkTable1TailFractions(b *testing.B) {
	p := benchProfile()
	for i := 0; i < b.N; i++ {
		m := benchMatrix(b, p, benchSpec())
		t1 := experiments.BuildTable1(m.BaseResults())
		if len(t1.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable2TraceStatistics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.BuildTable2(2, uint64(i)+1)
		if len(rows) != 6 {
			b.Fatal("missing traces")
		}
	}
}

func BenchmarkTable3WorkloadGeneration(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		// One BoT of each class at paper scale (1000 / 10000 / ~1000 tasks).
		for _, class := range bot.Classes() {
			w := class.Generate("bench", uint64(i)+1)
			if err := w.Validate(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkFigure3ServiceSequence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runServiceSequence(b)
	}
}

func BenchmarkFigure4TailRemovalEfficiency(b *testing.B) {
	p := benchProfile()
	st1, st2 := benchStrategies()
	for i := 0; i < b.N; i++ {
		m := benchMatrix(b, p, benchSpec(st1, st2))
		f := experiments.BuildFigure4(m)
		if len(f.TRE) == 0 {
			b.Fatal("empty figure")
		}
	}
}

func BenchmarkFigure5CreditConsumption(b *testing.B) {
	p := benchProfile()
	st, _ := benchStrategies()
	for i := 0; i < b.N; i++ {
		m := benchMatrix(b, p, benchSpec(st))
		f := experiments.BuildFigure5(m)
		if len(f.SpentFraction) == 0 {
			b.Fatal("empty figure")
		}
	}
}

func BenchmarkFigure6CompletionTimes(b *testing.B) {
	p := benchProfile()
	st, _ := benchStrategies()
	for i := 0; i < b.N; i++ {
		m := benchMatrix(b, p, benchSpec(st))
		f := experiments.BuildFigure6(m, st.Label())
		if len(f.Cells) == 0 {
			b.Fatal("empty figure")
		}
	}
}

func BenchmarkFigure7Stability(b *testing.B) {
	p := benchProfile()
	st, _ := benchStrategies()
	for i := 0; i < b.N; i++ {
		m := benchMatrix(b, p, benchSpec(st))
		f := experiments.BuildFigure7(m, st.Label())
		if len(f.NoSpeq) == 0 {
			b.Fatal("empty figure")
		}
	}
}

func BenchmarkTable4PredictionSuccess(b *testing.B) {
	p := benchProfile()
	p.Offsets = 2 // success rates need a few executions per environment
	st, _ := benchStrategies()
	for i := 0; i < b.N; i++ {
		m := benchMatrix(b, p, benchSpec(st))
		t4 := experiments.BuildTable4(m, st.Label())
		if t4.Overall < 0 || t4.Overall > 1 {
			b.Fatal("invalid success rate")
		}
	}
}

func BenchmarkTable5EDGIDeployment(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t5 := experiments.BuildTable5(2, 6, uint64(i)+1)
		if t5.LALTasks == 0 {
			b.Fatal("no tasks executed")
		}
	}
}

// BenchmarkCampaignExecution measures the campaign engine end-to-end: plan
// the bench matrix and execute every unique job into a fresh store.
func BenchmarkCampaignExecution(b *testing.B) {
	p := benchProfile()
	st, _ := benchStrategies()
	jobs := benchSpec(st).Jobs(p)
	for i := 0; i < b.N; i++ {
		store, stats, err := campaign.RunCampaign(context.Background(), p, jobs)
		if err != nil || store.Len() != stats.Executed || stats.Executed != len(jobs) {
			b.Fatalf("campaign broken: %v %+v", err, stats)
		}
	}
}

func BenchmarkSingleRunXWHEPSeti(b *testing.B) {
	b.ReportAllocs()
	p := benchProfile()
	for i := 0; i < b.N; i++ {
		res := Simulate(Scenario{
			Profile: p, Middleware: "XWHEP", TraceName: "seti", BotClass: "SMALL",
			Offset: i,
		})
		if !res.Completed {
			b.Fatal("incomplete")
		}
	}
}

// BenchmarkSingleRunStressSeti measures one stress-profile simulation: 10×
// the quick worker churn (2500-node pool) over a 30-day horizon, the
// configuration that exercises the pooled event kernel at BOINC-like host
// volumes.
func BenchmarkSingleRunStressSeti(b *testing.B) {
	b.ReportAllocs()
	p := experiments.Stress()
	for i := 0; i < b.N; i++ {
		res := Simulate(Scenario{
			Profile: p, Middleware: "XWHEP", TraceName: "seti", BotClass: "SMALL",
			Offset: i,
		})
		if !res.Completed {
			b.Fatal("incomplete")
		}
	}
}

func BenchmarkSingleRunBOINCSeti(b *testing.B) {
	b.ReportAllocs()
	p := benchProfile()
	for i := 0; i < b.N; i++ {
		res := Simulate(Scenario{
			Profile: p, Middleware: "BOINC", TraceName: "seti", BotClass: "SMALL",
			Offset: i,
		})
		if !res.Completed {
			b.Fatal("incomplete")
		}
	}
}

// scriptedBenchDG drives the HTTP service benchmark.
type scriptedBenchDG struct{ done int }

func (d *scriptedBenchDG) Progress(string) (middleware.Progress, error) {
	return middleware.Progress{Size: 100, Arrived: 100, Completed: d.done,
		EverAssigned: 100, Running: 100 - d.done}, nil
}
func (d *scriptedBenchDG) WorkerURL() string { return "http://dg.bench" }

// runServiceSequence executes the Fig 3 interaction sequence over HTTP.
func runServiceSequence(b *testing.B) {
	dg := &scriptedBenchDG{}
	stack := service.NewTestStack(service.StackConfig{
		Strategy: core.DefaultStrategy(),
		Registry: cloud.NewRegistry(cloud.NewMockEC2()),
		DG:       dg,
	})
	defer stack.Close()
	now := time.Unix(1_700_000_000, 0)
	stack.Scheduler.Now = func() time.Time { return now }

	if err := stack.CreditClient.Deposit("u", 1000); err != nil {
		b.Fatal(err)
	}
	if err := stack.Scheduler.RegisterQoS(service.QoSRequest{
		User: "u", BatchID: "bench", EnvKey: "e", Size: 100,
		Credits: 100, Provider: "ec2", Image: "img",
	}); err != nil {
		b.Fatal(err)
	}
	for _, done := range []int{20, 50, 91, 95, 100} {
		dg.done = done
		now = now.Add(time.Minute)
		if err := stack.Scheduler.Step(); err != nil {
			b.Fatal(err)
		}
	}
	st, err := stack.Scheduler.Status("bench")
	if err != nil || !st.Finalized {
		b.Fatalf("sequence incomplete: %+v %v", st, err)
	}
}

func BenchmarkAblationCreditFraction(b *testing.B) {
	store := benchStore(b)
	p := benchProfile()
	for i := 0; i < b.N; i++ {
		pts, err := experiments.CreditFractionSweepFrom(store, p, nil)
		if err != nil || len(pts) != 4 {
			b.Fatal("sweep broken", err)
		}
	}
}

func BenchmarkAblationMonitorPeriod(b *testing.B) {
	store := benchStore(b)
	p := benchProfile()
	for i := 0; i < b.N; i++ {
		pts, err := experiments.MonitorPeriodSweepFrom(store, p, nil)
		if err != nil || len(pts) != 4 {
			b.Fatal("sweep broken", err)
		}
	}
}

func BenchmarkAblationCapacityTrigger(b *testing.B) {
	store := benchStore(b)
	p := benchProfile()
	for i := 0; i < b.N; i++ {
		pts, err := experiments.TriggerAblationFrom(store, p)
		if err != nil || len(pts) != 2 {
			b.Fatal("ablation broken", err)
		}
	}
}

func BenchmarkExtensionMiddlewareComparison(b *testing.B) {
	store := benchStore(b)
	p := benchProfile()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.CompareMiddlewareFrom(store, p, []string{"seti"}, "BIG")
		if err != nil || len(rows) != 3 {
			b.Fatal("comparison broken", err)
		}
	}
}
