// Benchmarks regenerating each table and figure of the paper's evaluation
// at the quick experiment scale. `go test -bench=. -benchmem` exercises the
// entire pipeline; cmd/spequlos-bench produces the full-scale artifacts.
package spequlos

import (
	"testing"
	"time"

	"spequlos/internal/bot"
	"spequlos/internal/cloud"
	"spequlos/internal/core"
	"spequlos/internal/experiments"
	"spequlos/internal/middleware"
	"spequlos/internal/service"
)

// benchProfile is the quick profile with a single offset so individual
// benchmark iterations stay comparable.
func benchProfile() experiments.Profile {
	p := experiments.Quick()
	p.Offsets = 1
	return p
}

// benchSpec narrows the matrix for per-figure benchmarks: one volatile
// desktop grid, one best-effort grid, two BoT classes.
func benchSpec(strategies ...core.Strategy) experiments.MatrixSpec {
	return experiments.MatrixSpec{
		Traces:     []string{"seti", "g5klyo"},
		Bots:       []string{"SMALL", "BIG"},
		Strategies: strategies,
	}
}

func BenchmarkFigure1ExecutionProfile(b *testing.B) {
	p := benchProfile()
	for i := 0; i < b.N; i++ {
		f := experiments.BuildFigure1(p)
		if len(f.Series) == 0 {
			b.Fatal("empty curve")
		}
	}
}

func BenchmarkFigure2TailSlowdownCDF(b *testing.B) {
	p := benchProfile()
	for i := 0; i < b.N; i++ {
		m := experiments.RunMatrix(p, benchSpec())
		f := experiments.BuildFigure2(m.BaseResults())
		if len(f.Slowdowns) == 0 {
			b.Fatal("empty figure")
		}
	}
}

func BenchmarkTable1TailFractions(b *testing.B) {
	p := benchProfile()
	for i := 0; i < b.N; i++ {
		m := experiments.RunMatrix(p, benchSpec())
		t1 := experiments.BuildTable1(m.BaseResults())
		if len(t1.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable2TraceStatistics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.BuildTable2(2, uint64(i)+1)
		if len(rows) != 6 {
			b.Fatal("missing traces")
		}
	}
}

func BenchmarkTable3WorkloadGeneration(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		// One BoT of each class at paper scale (1000 / 10000 / ~1000 tasks).
		for _, class := range bot.Classes() {
			w := class.Generate("bench", uint64(i)+1)
			if err := w.Validate(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkFigure3ServiceSequence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runServiceSequence(b)
	}
}

func BenchmarkFigure4TailRemovalEfficiency(b *testing.B) {
	p := benchProfile()
	// Two contrasting combinations instead of all 18, to keep iterations
	// minute-scale; the full sweep lives in cmd/spequlos-bench.
	st1 := core.DefaultStrategy()
	st2, _ := core.StrategyByLabel("9A-G-F")
	for i := 0; i < b.N; i++ {
		m := experiments.RunMatrix(p, benchSpec(st1, st2))
		f := experiments.BuildFigure4(m)
		if len(f.TRE) == 0 {
			b.Fatal("empty figure")
		}
	}
}

func BenchmarkFigure5CreditConsumption(b *testing.B) {
	p := benchProfile()
	st := core.DefaultStrategy()
	for i := 0; i < b.N; i++ {
		m := experiments.RunMatrix(p, benchSpec(st))
		f := experiments.BuildFigure5(m)
		if len(f.SpentFraction) == 0 {
			b.Fatal("empty figure")
		}
	}
}

func BenchmarkFigure6CompletionTimes(b *testing.B) {
	p := benchProfile()
	st := core.DefaultStrategy()
	for i := 0; i < b.N; i++ {
		m := experiments.RunMatrix(p, benchSpec(st))
		f := experiments.BuildFigure6(m, st.Label())
		if len(f.Cells) == 0 {
			b.Fatal("empty figure")
		}
	}
}

func BenchmarkFigure7Stability(b *testing.B) {
	p := benchProfile()
	st := core.DefaultStrategy()
	for i := 0; i < b.N; i++ {
		m := experiments.RunMatrix(p, benchSpec(st))
		f := experiments.BuildFigure7(m, st.Label())
		if len(f.NoSpeq) == 0 {
			b.Fatal("empty figure")
		}
	}
}

func BenchmarkTable4PredictionSuccess(b *testing.B) {
	p := benchProfile()
	p.Offsets = 2 // success rates need a few executions per environment
	st := core.DefaultStrategy()
	for i := 0; i < b.N; i++ {
		m := experiments.RunMatrix(p, benchSpec(st))
		t4 := experiments.BuildTable4(m, st.Label())
		if t4.Overall < 0 || t4.Overall > 1 {
			b.Fatal("invalid success rate")
		}
	}
}

func BenchmarkTable5EDGIDeployment(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t5 := experiments.BuildTable5(2, 6, uint64(i)+1)
		if t5.LALTasks == 0 {
			b.Fatal("no tasks executed")
		}
	}
}

func BenchmarkSingleRunXWHEPSeti(b *testing.B) {
	b.ReportAllocs()
	p := benchProfile()
	for i := 0; i < b.N; i++ {
		res := Simulate(Scenario{
			Profile: p, Middleware: "XWHEP", TraceName: "seti", BotClass: "SMALL",
			Offset: i,
		})
		if !res.Completed {
			b.Fatal("incomplete")
		}
	}
}

func BenchmarkSingleRunBOINCSeti(b *testing.B) {
	b.ReportAllocs()
	p := benchProfile()
	for i := 0; i < b.N; i++ {
		res := Simulate(Scenario{
			Profile: p, Middleware: "BOINC", TraceName: "seti", BotClass: "SMALL",
			Offset: i,
		})
		if !res.Completed {
			b.Fatal("incomplete")
		}
	}
}

// scriptedBenchDG drives the HTTP service benchmark.
type scriptedBenchDG struct{ done int }

func (d *scriptedBenchDG) Progress(string) (middleware.Progress, error) {
	return middleware.Progress{Size: 100, Arrived: 100, Completed: d.done,
		EverAssigned: 100, Running: 100 - d.done}, nil
}
func (d *scriptedBenchDG) WorkerURL() string { return "http://dg.bench" }

// runServiceSequence executes the Fig 3 interaction sequence over HTTP.
func runServiceSequence(b *testing.B) {
	dg := &scriptedBenchDG{}
	stack := service.NewTestStack(service.StackConfig{
		Strategy: core.DefaultStrategy(),
		Registry: cloud.NewRegistry(cloud.NewMockEC2()),
		DG:       dg,
	})
	defer stack.Close()
	now := time.Unix(1_700_000_000, 0)
	stack.Scheduler.Now = func() time.Time { return now }

	if err := stack.CreditClient.Deposit("u", 1000); err != nil {
		b.Fatal(err)
	}
	if err := stack.Scheduler.RegisterQoS(service.QoSRequest{
		User: "u", BatchID: "bench", EnvKey: "e", Size: 100,
		Credits: 100, Provider: "ec2", Image: "img",
	}); err != nil {
		b.Fatal(err)
	}
	for _, done := range []int{20, 50, 91, 95, 100} {
		dg.done = done
		now = now.Add(time.Minute)
		if err := stack.Scheduler.Step(); err != nil {
			b.Fatal(err)
		}
	}
	st, err := stack.Scheduler.Status("bench")
	if err != nil || !st.Finalized {
		b.Fatalf("sequence incomplete: %+v %v", st, err)
	}
}

func BenchmarkAblationCreditFraction(b *testing.B) {
	p := benchProfile()
	for i := 0; i < b.N; i++ {
		pts := experiments.CreditFractionSweep(p, []float64{0.05, 0.10})
		if len(pts) != 2 {
			b.Fatal("sweep broken")
		}
	}
}

func BenchmarkAblationMonitorPeriod(b *testing.B) {
	p := benchProfile()
	for i := 0; i < b.N; i++ {
		pts := experiments.MonitorPeriodSweep(p, []float64{60, 300})
		if len(pts) != 2 {
			b.Fatal("sweep broken")
		}
	}
}

func BenchmarkAblationCapacityTrigger(b *testing.B) {
	p := benchProfile()
	for i := 0; i < b.N; i++ {
		pts := experiments.TriggerAblation(p)
		if len(pts) != 2 {
			b.Fatal("ablation broken")
		}
	}
}

func BenchmarkExtensionMiddlewareComparison(b *testing.B) {
	p := benchProfile()
	for i := 0; i < b.N; i++ {
		rows := experiments.CompareMiddleware(p, []string{"seti"}, "BIG")
		if len(rows) != 3 {
			b.Fatal("comparison broken")
		}
	}
}
