package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"spequlos/internal/core"
)

func TestNormalizeAddr(t *testing.T) {
	cases := map[string]string{
		"":               ":8080",
		":9090":          ":9090",
		"127.0.0.1:8081": ":8081",
		"8082":           ":8082",
	}
	for in, want := range cases {
		if got := normalizeAddr(in); got != want {
			t.Errorf("normalizeAddr(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestDemoDGProgressesLinearly(t *testing.T) {
	dg := newDemoDG(100 * time.Millisecond)
	p0, err := dg.Progress("x")
	if err != nil {
		t.Fatal(err)
	}
	if p0.Size != 100 || p0.Completed > 5 {
		t.Fatalf("initial progress: %+v", p0)
	}
	time.Sleep(120 * time.Millisecond)
	p1, _ := dg.Progress("x")
	if !p1.Done() {
		t.Fatalf("demo batch incomplete after its duration: %+v", p1)
	}
	if dg.WorkerURL() == "" {
		t.Fatal("worker url empty")
	}
}

func TestLoadStateRoundTrip(t *testing.T) {
	dir := t.TempDir()
	// Build state, snapshot it manually via the core writers.
	info := core.NewInformation()
	bi, _ := info.Track("b", "env", 10, 0)
	bi.AddSample(60, 10, 10, 0, 0)
	credits := core.NewCreditSystem()
	credits.Deposit("u", 42)
	cal := core.NewCalibration()
	cal.Record("env", 100, 150)

	write := func(name string, fn func(*bytes.Buffer) error) {
		var buf bytes.Buffer
		if err := fn(&buf); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, name), buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("information.json", func(b *bytes.Buffer) error { return info.WriteJSON(b) })
	write("credits.json", func(b *bytes.Buffer) error { return credits.WriteJSON(b) })
	write("calibration.json", func(b *bytes.Buffer) error { return cal.WriteJSON(b) })

	in2, cs2, cal2 := loadState(dir)
	if in2.Get("b") == nil || !in2.Get("b").Done() {
		t.Fatal("information not restored")
	}
	if cs2.AccountOf("u").Balance != 42 {
		t.Fatal("credits not restored")
	}
	if cal2.Count("env") != 1 {
		t.Fatal("calibration not restored")
	}
}

func TestLoadStateFreshWhenMissing(t *testing.T) {
	in, cs, cal := loadState(t.TempDir())
	if in == nil || cs == nil || cal == nil {
		t.Fatal("nil state")
	}
	in2, _, _ := loadState("")
	if in2 == nil {
		t.Fatal("nil state without dir")
	}
}
