// Command spequlosd runs the SpeQuloS service daemon: the Information,
// Credit System, Oracle and Scheduler modules mounted on one HTTP server
// (they can equally be split across hosts; every module only talks to the
// others through their HTTP APIs).
//
//	spequlosd -addr :8080 -strategy 9C-C-R -provider ec2
//
// Routes:
//
//	/information/…   monitoring archive
//	/credit/…        accounts, orders, billing
//	/oracle/…        predictions, provisioning plans, calibration
//	/scheduler/…     QoS registration, monitor loop, instances
//	/healthz
//
// Without a real Desktop Grid attached, the daemon uses a demo gateway
// whose batches progress linearly over wall time (-demo-duration); point
// -dg-url at a BOINC/XWHEP status endpoint adapter to drive a real DG.
//
// To drive these same four modules from a fully simulated Desktop Grid —
// a BOINC/XWHEP/Condor batch generated from the paper's availability
// traces, on a virtual clock, with launches turning into simulated cloud
// workers — use the emulation harness instead of the daemon: internal/emul
// hosts the stack behind the same DGGateway HTTP wire format (GET
// /progress/{batch}, /busy/{instance}, /worker-url), and `spequlos-sim
// -emulate` reports whether the stack's decisions match the in-process
// simulator cell by cell.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	"spequlos/internal/cloud"
	"spequlos/internal/core"
	"spequlos/internal/middleware"
	"spequlos/internal/service"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		strategy = flag.String("strategy", "9C-C-R", "provisioning strategy combination")
		period   = flag.Duration("period", time.Minute, "scheduler monitor period")
		demoDur  = flag.Duration("demo-duration", 10*time.Minute, "demo DG: time a batch takes to complete")
		stateDir = flag.String("state-dir", "", "directory for JSON state snapshots (empty = in-memory only)")
		tiered   = flag.Bool("tiers", false, "enable the enterprise/premium/free tier admission policy")
		fleetCap = flag.Int("fleet-cap", 0, "with -tiers: max batches holding cloud support at once (0 = unlimited)")
		keysFile = flag.String("keys", "", "JSON API-key file ([{key,user,tier,unlimited}...]); enables gateway auth + per-tier rate limits")
		rate     = flag.Float64("rate", 100, "with -keys: total request rate (req/s) shared across tiers by policy weight")
	)
	flag.Parse()

	st, err := core.StrategyByLabel(*strategy)
	if err != nil {
		log.Fatalf("spequlosd: %v", err)
	}

	information, creditSystem, calibration := loadState(*stateDir)
	info := service.NewInformationService(information)
	credit := service.NewCreditService(creditSystem)

	// Self-addressed clients: module-to-module calls go through HTTP even
	// in the single-host deployment.
	base := "http://127.0.0.1" + normalizeAddr(*addr)
	infoClient := service.NewInformationClient(base + "/information")
	creditClient := service.NewCreditClient(base + "/credit")
	oracleClient := service.NewOracleClient(base + "/oracle")

	oracleCore := core.NewOracle(st)
	oracleCore.Calibration = calibration
	oracle := service.NewOracleService(oracleCore, infoClient)
	dg := newDemoDG(*demoDur)
	sched := service.NewSchedulerService(infoClient, creditClient, oracleClient, cloud.DefaultRegistry(), dg)
	if *tiered {
		sched.TierPolicy = core.DefaultTierPolicy()
		sched.TierPolicy.FleetCap = *fleetCap
	}

	var handler http.Handler = service.Mux(info, credit, oracle, sched)
	if *keysFile != "" {
		policy := sched.TierPolicy
		if policy == nil {
			policy = core.DefaultTierPolicy()
		}
		keys, err := loadKeys(*keysFile)
		if err != nil {
			log.Fatalf("spequlosd: %v", err)
		}
		km := service.NewKeyManager(service.LimitsFromPolicy(policy, *rate))
		for _, k := range keys {
			km.Add(k)
		}
		// The Scheduler's module-to-module calls loop back through this
		// same gated listener; give them a process-local unlimited service
		// key so internal traffic is neither 401'd nor rate-limited.
		svc := km.Issue("spequlosd", core.TierEnterprise)
		svc.Unlimited = true
		km.Add(svc)
		infoClient.HTTP = service.KeyedClient(svc.Key)
		creditClient.HTTP = service.KeyedClient(svc.Key)
		oracleClient.HTTP = service.KeyedClient(svc.Key)
		handler = km.Gate(handler)
		log.Printf("spequlosd: gateway auth enabled (%d keys, %.0f req/s shared by tier weight)", len(keys), *rate)
	}

	stop := make(chan struct{})
	go sched.Run(*period, stop)
	defer close(stop)
	if *stateDir != "" {
		go snapshotLoop(*stateDir, *period, information, creditSystem, oracleCore.Calibration, stop)
	}

	log.Printf("spequlosd listening on %s (strategy %s, demo DG %v/batch)", *addr, st.Label(), *demoDur)
	if err := http.ListenAndServe(*addr, handler); err != nil {
		log.Fatalf("spequlosd: %v", err)
	}
}

// loadKeys reads a JSON API-key file: an array of service.APIKey objects.
func loadKeys(path string) ([]service.APIKey, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var keys []service.APIKey
	if err := json.NewDecoder(f).Decode(&keys); err != nil {
		return nil, fmt.Errorf("key file %s: %w", path, err)
	}
	for _, k := range keys {
		if _, err := core.ParseTier(string(k.Tier)); err != nil {
			return nil, fmt.Errorf("key file %s: key %q: %w", path, k.User, err)
		}
	}
	return keys, nil
}

// loadState restores module state from JSON snapshots (the MySQL role in
// the paper's prototype); missing files start fresh.
func loadState(dir string) (*core.Information, *core.CreditSystem, *core.Calibration) {
	info := core.NewInformation()
	credits := core.NewCreditSystem()
	cal := core.NewCalibration()
	if dir == "" {
		return info, credits, cal
	}
	load := func(name string, fn func(io.Reader) error) {
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			return // fresh start
		}
		defer f.Close()
		if err := fn(f); err != nil {
			log.Printf("spequlosd: ignoring corrupt snapshot %s: %v", name, err)
		}
	}
	load("information.json", func(r io.Reader) error {
		in, err := core.ReadInformation(r)
		if err == nil {
			info = in
		}
		return err
	})
	load("credits.json", func(r io.Reader) error {
		cs, err := core.ReadCreditSystem(r)
		if err == nil {
			credits = cs
		}
		return err
	})
	load("calibration.json", func(r io.Reader) error {
		c, err := core.ReadCalibration(r)
		if err == nil {
			cal = c
		}
		return err
	})
	return info, credits, cal
}

// snapshotLoop persists module state each period until stop closes.
func snapshotLoop(dir string, period time.Duration, info *core.Information,
	credits *core.CreditSystem, cal *core.Calibration, stop <-chan struct{}) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Printf("spequlosd: state dir: %v", err)
		return
	}
	save := func(name string, write func(io.Writer) error) {
		tmp := filepath.Join(dir, name+".tmp")
		f, err := os.Create(tmp)
		if err != nil {
			log.Printf("spequlosd: snapshot %s: %v", name, err)
			return
		}
		if err := write(f); err != nil {
			f.Close()
			os.Remove(tmp)
			log.Printf("spequlosd: snapshot %s: %v", name, err)
			return
		}
		f.Close()
		os.Rename(tmp, filepath.Join(dir, name)) //nolint:errcheck
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			save("information.json", info.WriteJSON)
			save("credits.json", credits.WriteJSON)
			save("calibration.json", cal.WriteJSON)
		}
	}
}

func normalizeAddr(addr string) string {
	if addr == "" {
		return ":8080"
	}
	if addr[0] == ':' {
		return addr
	}
	for i := len(addr) - 1; i >= 0; i-- {
		if addr[i] == ':' {
			return addr[i:]
		}
	}
	return ":" + addr
}

// demoDG is a stand-in Desktop Grid whose batches progress linearly over
// wall time — enough to exercise the full QoS loop without external
// middleware.
type demoDG struct {
	duration time.Duration
	mu       sync.Mutex
	started  map[string]time.Time
	sizes    map[string]int
}

func newDemoDG(d time.Duration) *demoDG {
	return &demoDG{duration: d, started: map[string]time.Time{}, sizes: map[string]int{}}
}

func (d *demoDG) Progress(batchID string) (middleware.Progress, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	start, ok := d.started[batchID]
	if !ok {
		start = time.Now()
		d.started[batchID] = start
		d.sizes[batchID] = 100
	}
	size := d.sizes[batchID]
	frac := float64(time.Since(start)) / float64(d.duration)
	if frac > 1 {
		frac = 1
	}
	done := int(frac * float64(size))
	return middleware.Progress{
		Size: size, Arrived: size, Completed: done,
		EverAssigned: size, Running: size - done,
	}, nil
}

func (d *demoDG) WorkerURL() string {
	return fmt.Sprintf("http://demo-dg.local/%d", d.duration/time.Second)
}
