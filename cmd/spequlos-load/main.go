// Command spequlos-load is the socket-level load harness for the SpeQuloS
// service stack: it boots all four modules behind the tiered auth gateway
// plus an emul-wire Desktop-Grid gateway on loopback TCP sockets, and
// drives them with concurrent tiered clients at a configurable request mix
// while the Scheduler's monitor loop ticks over the same socket.
//
//	spequlos-load -profile smoke
//	spequlos-load -profile stress -bench-json BENCH_load.json -bench-label "PR 10"
//	spequlos-load -profile smoke -gate BENCH_load.json    # CI regression gate
//
// The run reports p50/p95/p99 request latency per class, the
// unexpected-error rate, per-tier 429 throttling and Scheduler tick
// overrun. With -bench-json the result extends a BENCH_load.json
// trajectory; with -gate the process exits non-zero when the run regresses
// past the committed baseline (any unexpected error, or overall p99 beyond
// -gate-factor× the baseline with a -gate-floor-ms noise floor).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"spequlos/internal/loadgen"
)

func main() {
	var (
		profile   = flag.String("profile", "smoke", "load profile: smoke or stress")
		clients   = flag.Int("clients", 0, "override: concurrent clients")
		duration  = flag.Duration("duration", 0, "override: load window")
		tick      = flag.Duration("tick", 0, "override: scheduler monitor period")
		batchDur  = flag.Duration("batch-duration", 0, "override: DG batch completion time")
		maxOrders = flag.Int("max-orders", -1, "override: QoS order cap (0 = unlimited)")
		rate      = flag.Float64("rate", 0, "override: gateway total request rate (req/s)")
		pace      = flag.Duration("pace", -1, "override: paid-tier think time between requests")
		seed      = flag.Int64("seed", 0, "override: request-schedule seed")
		benchJSON = flag.String("bench-json", "", "write/extend a BENCH_load.json trajectory at this path")
		benchLbl  = flag.String("bench-label", "", "label recorded with this run's trajectory entry")
		gate      = flag.String("gate", "", "BENCH_load.json baseline to gate against (CI regression check)")
		gateFact  = flag.Float64("gate-factor", 5, "with -gate: allowed overall-p99 growth factor over the baseline")
		gateFloor = flag.Float64("gate-floor-ms", 100, "with -gate: p99 noise floor in ms for shared runners")
		verbose   = flag.Bool("v", false, "verbose progress to stderr")
	)
	flag.Parse()

	var cfg loadgen.Config
	switch *profile {
	case "smoke":
		cfg = loadgen.Smoke()
	case "stress":
		cfg = loadgen.Stress()
	default:
		fatal(fmt.Errorf("unknown profile %q (want smoke or stress)", *profile))
	}
	if *clients > 0 {
		cfg.Clients = *clients
	}
	if *duration > 0 {
		cfg.Duration = *duration
	}
	if *tick > 0 {
		cfg.TickPeriod = *tick
	}
	if *batchDur > 0 {
		cfg.BatchDuration = *batchDur
	}
	if *maxOrders >= 0 {
		cfg.MaxOrders = *maxOrders
	}
	if *rate > 0 {
		cfg.RatePerSec = *rate
	}
	if *pace >= 0 {
		cfg.Pace = *pace
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	cfg.Verbose = *verbose

	start := time.Now()
	rep, err := loadgen.Run(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Print(rep.Summary())
	fmt.Printf("run wallclock: %.2fs\n", time.Since(start).Seconds())

	if *benchJSON != "" {
		if err := loadgen.WriteBench(*benchJSON, *benchLbl, rep); err != nil {
			fatal(fmt.Errorf("bench report: %w", err))
		}
		fmt.Printf("wrote %s\n", *benchJSON)
	}
	if *gate != "" {
		base, err := loadgen.ReadBaseline(*gate)
		if err != nil {
			fatal(fmt.Errorf("gate baseline: %w", err))
		}
		if err := rep.Gate(base, *gateFact, *gateFloor); err != nil {
			fatal(err)
		}
		fmt.Printf("gate passed: p99 %.2fms vs baseline %.2fms (factor %.1f, floor %.0fms), 0 unexpected errors\n",
			rep.Overall.P99Ms, base.P99Ms, *gateFact, *gateFloor)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "spequlos-load: %v\n", err)
	os.Exit(1)
}
