// Command spequlos-bench regenerates every table and figure of the paper's
// evaluation (§4) from ONE campaign — each unique (scenario, strategy)
// simulation executes exactly once, and every artifact derives from the
// shared result store — and writes them under -out (default results/):
//
//	figure1.txt            example execution profile with tail annotations
//	figure2.{txt,csv}      tail slowdown CDF per middleware
//	table1.{txt,csv}       tail fractions per BE-DCI class
//	table2.{txt,csv}       trace statistics vs published values
//	figure4.{txt,csv}      Tail Removal Efficiency CCDF per strategy
//	figure5.{txt,csv}      credit consumption per strategy
//	figure6.txt            completion times with/without SpeQuloS (9C-C-R)
//	figure7.{txt,csv}      execution stability
//	table4.{txt,csv}       prediction success rates
//	ablation-*.txt         design-choice sweeps (-ablations)
//	comparison.txt         three-middleware comparison (-comparison)
//	summary.txt            everything concatenated
//	BENCH_<profile>.json   machine-readable perf report (campaign
//	                       throughput + per-artifact wall-clock)
//
// The -profile flag selects quick / standard / full scale (see
// internal/experiments); -strategies limits the Fig 4/5 sweep. The -store
// flag persists the campaign's result store as JSON: re-running with the
// same store resumes, executing only jobs not already stored.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"spequlos/internal/campaign"
	"spequlos/internal/core"
	"spequlos/internal/experiments"
)

func main() {
	var (
		profile    = flag.String("profile", "standard", "experiment profile: quick standard full stress crowd crowd2k")
		out        = flag.String("out", "results", "output directory")
		strats     = flag.String("strategies", "all", "comma-separated strategy labels for the sweep, or 'all'")
		traces     = flag.String("traces", "all", "comma-separated BE-DCI traces for the matrix, or 'all' (samples the matrix, e.g. for `full` CI subsets)")
		mws        = flag.String("middlewares", "all", "comma-separated middlewares for the matrix, or 'all'")
		bots       = flag.String("bots", "all", "comma-separated BoT classes for the matrix, or 'all'")
		offsets    = flag.Int("offsets", 0, "submission offsets per configuration (0 = the profile's default)")
		budgetFlag = flag.String("trace-budget", "", "trace-cache byte budget, e.g. 512MiB or 1.5GiB (default: the profile's, else 512MiB); bounds resident trace memory, results are identical at any value")
		storePath  = flag.String("store", "", "result store JSON path: load if present, save after the run (resume)")
		ablations  = flag.Bool("ablations", false, "run the design-choice ablation sweeps")
		comparison = flag.Bool("comparison", false, "run the three-middleware comparison")
		verbose    = flag.Bool("v", false, "log per-scenario progress")
		benchJSON  = flag.String("bench-json", "", "perf report path (default <out>/BENCH_<profile>.json); an existing report's trajectory is extended")
		benchLabel = flag.String("bench-label", "", "label recorded with this run's trajectory entry (e.g. a PR number or git rev)")
		baseline   = flag.String("baseline", "", "baseline BENCH_*.json to print a throughput delta against")
		shards     = flag.Int("shards", 0, "kernel shard count for sharded-kernel profiles (0 = GOMAXPROCS; results are byte-identical at any value)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file after the run")
	)
	flag.Parse()

	p, err := experiments.ProfileByName(*profile)
	if err != nil {
		fatal(err)
	}
	if *shards != 0 {
		p.KernelShards = *shards
	}
	if *budgetFlag != "" {
		b, err := campaign.ParseByteSize(*budgetFlag)
		if err != nil {
			fatal(err)
		}
		p.TraceBudgetBytes = b
	}
	if *offsets > 0 {
		p.Offsets = *offsets
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer writeMemProfile(*memprofile)
	}

	// Multi-batch profiles (crowd, crowd2k) run the concurrency campaign
	// instead of the paper artifact matrix: per middleware, hundreds to
	// thousands of QoS batches share one trace (default strategy + paired
	// baseline), and the report measures per-user fairness — per tier when
	// the profile is tiered — and the service's poll economy. The
	// matrix-shaping flags do not apply there; reject non-default values
	// instead of silently mislabeling a sweep the campaign never ran.
	if p.Batches > 1 {
		if *strats != "all" || *ablations || *comparison ||
			*traces != "all" || *mws != "all" || *bots != "all" || *offsets > 0 {
			fatal(fmt.Errorf("matrix-shaping flags (-strategies/-traces/-middlewares/-bots/-offsets/-ablations/-comparison) do not apply to the %s profile (it runs the default strategy against its paired baseline on pinned coordinates)", p.Name))
		}
		runCrowd(p, *out, *storePath, *verbose, *benchJSON, *benchLabel, *baseline)
		return
	}

	var strategies []core.Strategy
	if *strats == "all" {
		strategies = core.AllStrategies()
	} else {
		for _, label := range strings.Split(*strats, ",") {
			st, err := core.StrategyByLabel(strings.TrimSpace(label))
			if err != nil {
				fatal(err)
			}
			strategies = append(strategies, st)
		}
	}

	opts := experiments.ArtifactOptions{
		Spec: experiments.MatrixSpec{
			Strategies:  strategies,
			Traces:      splitList(*traces, experiments.TraceNames(), "trace", validTrace),
			Middlewares: splitList(*mws, experiments.AllMiddlewares(), "middleware", validMiddleware),
			Bots:        splitList(*bots, experiments.BotClasses(), "bot class", validBot),
		},
		Ablations:  *ablations,
		Comparison: *comparison,
		// The CLI never reads Artifacts.Matrix: every figure/table streams
		// from the store per cell, which is what keeps paper-scale (`full`)
		// derivation memory flat.
		StreamMatrix: true,
	}
	opts.Store = campaign.NewResultStore()
	if *storePath != "" {
		store, loaded, err := campaign.LoadFileIfExists(*storePath)
		if err != nil {
			fatal(err)
		}
		opts.Store = store
		if loaded {
			fmt.Printf("resuming from %s (%d stored results)\n", *storePath, store.Len())
		}
	}
	if *verbose {
		opts.Progress = campaign.LogProgress(os.Stderr)
	}

	// Ctrl-C cancels the campaign; the store saved so far still persists,
	// so the next run with the same -store resumes where this one stopped.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	start := time.Now()
	fmt.Printf("running %s campaign: %d unique simulation jobs…\n",
		p.Name, experiments.PlanArtifacts(p, opts).Len())
	a, stats, err := experiments.BuildArtifacts(ctx, p, opts)
	if *storePath != "" {
		if serr := opts.Store.SaveFile(*storePath); serr != nil {
			fatal(serr)
		}
		fmt.Printf("store saved to %s (%d results)\n", *storePath, opts.Store.Len())
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("campaign done in %v: %d executed, %d cached, %.0f events/sec (%.0f events/cpu-sec)\n",
		stats.Elapsed.Round(time.Second), stats.Executed, stats.Cached,
		stats.EventsPerSecond(), stats.EventsPerCPUSecond())
	printTraceCacheUsage()

	var summary strings.Builder
	emit := func(name, text, csv string) {
		if err := os.WriteFile(filepath.Join(*out, name+".txt"), []byte(text), 0o644); err != nil {
			fatal(err)
		}
		if csv != "" {
			if err := os.WriteFile(filepath.Join(*out, name+".csv"), []byte(csv), 0o644); err != nil {
				fatal(err)
			}
		}
		summary.WriteString(text)
		summary.WriteString("\n")
		fmt.Println(text)
	}
	emitSVG := func(name string, chart interface{ WriteSVG(io.Writer) error }) {
		path := filepath.Join(*out, name+".svg")
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := chart.WriteSVG(f); err != nil {
			// Narrowed sweeps leave some panels empty; skip them.
			fmt.Fprintf(os.Stderr, "skipping %s: %v\n", name, err)
			os.Remove(path)
		}
	}

	defaultLabel := a.DefaultStrategyLabel()
	emit("figure1", a.Figure1.Render(), "")
	emitSVG("figure1", experiments.Figure1Chart(a.Figure1))

	emit("figure2", a.Figure2.Render(), figure2CSV(a.Figure2))
	emitSVG("figure2", experiments.Figure2Chart(a.Figure2))

	emit("table1", a.Table1.Render(), "")
	emit("table2", experiments.RenderTable2(a.Table2), "")

	emit("figure4", a.Figure4.Render(), "")
	for _, deploy := range []string{"F", "R", "D"} {
		emitSVG("figure4"+strings.ToLower(deploy), experiments.Figure4Chart(a.Figure4, deploy))
	}

	emit("figure5", a.Figure5.Render(), "")
	emitSVG("figure5", experiments.Figure5Chart(a.Figure5))

	emit("figure6", a.Figure6.Render(), "")
	for _, mw := range experiments.Middlewares() {
		for _, bc := range experiments.BotClasses() {
			if len(a.Figure6.Cells[mw][bc]) > 0 {
				emitSVG("figure6-"+strings.ToLower(mw)+"-"+strings.ToLower(bc),
					experiments.Figure6Chart(a.Figure6, mw, bc))
			}
		}
	}

	emit("figure7", a.Figure7.Render(), "")
	for _, mw := range experiments.Middlewares() {
		emitSVG("figure7-"+strings.ToLower(mw), experiments.Figure7Chart(a.Figure7, mw))
	}

	emit("table4", a.Table4.Render(), "")
	emit("table5", a.Table5.Render(), "")

	if *ablations {
		emit("ablation-credits", experiments.RenderAblation(
			"Ablation — credit provisioning fraction", a.CreditSweep), "")
		emit("ablation-period", experiments.RenderAblation(
			"Ablation — monitoring period", a.PeriodSweep), "")
		emit("ablation-trigger", experiments.RenderAblation(
			"Ablation — trigger strategy", a.TriggerSweep), "")
	}
	if *comparison {
		emit("comparison", experiments.RenderMiddlewareComparison(a.Comparison, "BIG"), "")
	}

	if err := os.WriteFile(filepath.Join(*out, "summary.txt"), []byte(summary.String()), 0o644); err != nil {
		fatal(err)
	}
	reportPath := *benchJSON
	if reportPath == "" {
		reportPath = filepath.Join(*out, "BENCH_"+p.Name+".json")
	}
	// Print the delta before writing the report: -baseline may name the same
	// file the report extends, and the comparison is against its prior run.
	if *baseline != "" {
		printBaselineDelta(*baseline, stats)
	}
	if err := writeBenchReport(reportPath, p, defaultLabel, *benchLabel, stats, a, time.Since(start)); err != nil {
		fatal(err)
	}
	fmt.Printf("all artifacts written to %s/ in %v\n", *out, time.Since(start).Round(time.Second))
}

// runCrowd executes the crowd campaign and writes crowd.txt plus the
// BENCH_crowd.json perf record (with the same trajectory accumulation as
// the artifact profiles).
func runCrowd(p experiments.Profile, out, storePath string, verbose bool,
	benchJSON, benchLabel, baseline string) {
	opts := experiments.ArtifactOptions{Store: campaign.NewResultStore()}
	if storePath != "" {
		store, loaded, err := campaign.LoadFileIfExists(storePath)
		if err != nil {
			fatal(err)
		}
		opts.Store = store
		if loaded {
			fmt.Printf("resuming from %s (%d stored results)\n", storePath, store.Len())
		}
	}
	if verbose {
		opts.Progress = campaign.LogProgress(os.Stderr)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	start := time.Now()
	fmt.Printf("running %s campaign: %d unique simulation jobs × %d concurrent batches…\n",
		p.Name, experiments.PlanCrowd(p).Len(), p.Batches)
	rep, stats, err := experiments.BuildCrowd(ctx, p, opts)
	if storePath != "" {
		if serr := opts.Store.SaveFile(storePath); serr != nil {
			fatal(serr)
		}
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("campaign done in %v: %d executed, %d cached, %.0f events/sec (%.0f events/cpu-sec)\n",
		stats.Elapsed.Round(time.Millisecond), stats.Executed, stats.Cached,
		stats.EventsPerSecond(), stats.EventsPerCPUSecond())
	printTraceCacheUsage()
	if stats.KernelShards > 0 {
		fmt.Printf("sharded kernel: %d shards, %d barriers, shard events %v, barrier stall %.3fs\n",
			stats.KernelShards, stats.Barriers, stats.ShardEvents, stats.BarrierStallSec)
	}

	text := rep.Render()
	if err := os.WriteFile(filepath.Join(out, "crowd.txt"), []byte(text), 0o644); err != nil {
		fatal(err)
	}
	fmt.Println(text)

	reportPath := benchJSON
	if reportPath == "" {
		reportPath = filepath.Join(out, "BENCH_"+p.Name+".json")
	}
	if baseline != "" {
		printBaselineDelta(baseline, stats)
	}
	a := experiments.Artifacts{Profile: p}
	a.Timings = append(a.Timings, experiments.ArtifactTiming{Name: "crowd", Elapsed: stats.Elapsed})
	if err := writeBenchReport(reportPath, p, core.DefaultStrategy().Label(), benchLabel,
		stats, a, time.Since(start)); err != nil {
		fatal(err)
	}
	fmt.Printf("crowd artifacts written to %s/ in %v\n", out, time.Since(start).Round(time.Millisecond))
}

// benchReport is the machine-readable perf record of one artifact run. The
// trajectory accumulates one record per run of the same report file, so a
// committed BENCH_<profile>.json regenerated each PR becomes the perf
// history of the kernel instead of a single overwritten snapshot.
type benchReport struct {
	Profile         string            `json:"profile"`
	DefaultStrategy string            `json:"default_strategy"`
	PlannedJobs     int               `json:"planned_jobs"`
	ExecutedJobs    int               `json:"executed_jobs"`
	CachedJobs      int               `json:"cached_jobs"`
	SimEvents       uint64            `json:"sim_events"`
	EventsPerSec    float64           `json:"events_per_sec"`
	EventsPerCPUSec float64           `json:"events_per_cpu_sec,omitempty"`
	CampaignSecs    float64           `json:"campaign_wallclock_s"`
	TotalSecs       float64           `json:"total_wallclock_s"`
	KernelShards    int               `json:"kernel_shards,omitempty"`
	Barriers        uint64            `json:"barriers,omitempty"`
	ShardEvents     []uint64          `json:"shard_events,omitempty"`
	BarrierStallSec float64           `json:"barrier_stall_s,omitempty"`
	Artifacts       []artifactTimingJ `json:"artifacts"`
	Trajectory      []trajectoryPoint `json:"trajectory,omitempty"`
}

type artifactTimingJ struct {
	Name      string  `json:"name"`
	Wallclock float64 `json:"wallclock_s"`
}

// trajectoryPoint is one run's throughput record. The kernel fields are
// populated when jobs ran on the multi-core sharded kernel: the shard
// layout, per-shard event sums (skew shows up as imbalance here), and the
// wall-clock shards spent stalled at tick barriers.
type trajectoryPoint struct {
	RecordedAt      string   `json:"recorded_at,omitempty"`
	Label           string   `json:"label,omitempty"`
	SimEvents       uint64   `json:"sim_events"`
	ExecutedJobs    int      `json:"executed_jobs"`
	EventsPerSec    float64  `json:"events_per_sec"`
	EventsPerCPUSec float64  `json:"events_per_cpu_sec,omitempty"`
	CampaignSecs    float64  `json:"campaign_wallclock_s"`
	KernelShards    int      `json:"kernel_shards,omitempty"`
	Barriers        uint64   `json:"barriers,omitempty"`
	ShardEvents     []uint64 `json:"shard_events,omitempty"`
	BarrierStallSec float64  `json:"barrier_stall_s,omitempty"`
}

// maxTrajectory bounds the history kept in a report file.
const maxTrajectory = 500

func writeBenchReport(path string, p experiments.Profile, defaultLabel, runLabel string,
	stats campaign.Stats, a experiments.Artifacts, total time.Duration) error {
	r := benchReport{
		Profile:         p.Name,
		DefaultStrategy: defaultLabel,
		PlannedJobs:     stats.Planned,
		ExecutedJobs:    stats.Executed,
		CachedJobs:      stats.Cached,
		SimEvents:       stats.Events,
		EventsPerSec:    stats.EventsPerSecond(),
		EventsPerCPUSec: stats.EventsPerCPUSecond(),
		CampaignSecs:    stats.Elapsed.Seconds(),
		TotalSecs:       total.Seconds(),
		KernelShards:    stats.KernelShards,
		Barriers:        stats.Barriers,
		ShardEvents:     stats.ShardEvents,
		BarrierStallSec: stats.BarrierStallSec,
	}
	for _, t := range a.Timings {
		r.Artifacts = append(r.Artifacts, artifactTimingJ{Name: t.Name, Wallclock: t.Elapsed.Seconds()})
	}
	// Extend the existing report's trajectory: prior records carry over, and
	// this run appends one. A pre-trajectory report contributes its headline
	// numbers as the first point, so history starts at the oldest committed
	// measurement. An unreadable prior file starts a fresh history.
	if prev, err := readBenchReport(path); err == nil {
		r.Trajectory = prev.Trajectory
		if len(r.Trajectory) == 0 && prev.EventsPerSec > 0 {
			r.Trajectory = append(r.Trajectory, trajectoryPoint{
				Label:           "pre-trajectory baseline",
				SimEvents:       prev.SimEvents,
				ExecutedJobs:    prev.ExecutedJobs,
				EventsPerSec:    prev.EventsPerSec,
				EventsPerCPUSec: prev.EventsPerCPUSec,
				CampaignSecs:    prev.CampaignSecs,
			})
		}
	}
	r.Trajectory = append(r.Trajectory, trajectoryPoint{
		RecordedAt:      time.Now().UTC().Format(time.RFC3339),
		Label:           runLabel,
		SimEvents:       stats.Events,
		ExecutedJobs:    stats.Executed,
		EventsPerSec:    stats.EventsPerSecond(),
		EventsPerCPUSec: stats.EventsPerCPUSecond(),
		CampaignSecs:    stats.Elapsed.Seconds(),
		KernelShards:    stats.KernelShards,
		Barriers:        stats.Barriers,
		ShardEvents:     stats.ShardEvents,
		BarrierStallSec: stats.BarrierStallSec,
	})
	if n := len(r.Trajectory); n > maxTrajectory {
		r.Trajectory = r.Trajectory[n-maxTrajectory:]
	}
	// Atomic write: the trajectory is accumulated history; a truncating
	// write interrupted mid-encode would destroy it.
	return campaign.WriteFileAtomic(path, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		return enc.Encode(r)
	})
}

func readBenchReport(path string) (benchReport, error) {
	var r benchReport
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	err = json.Unmarshal(data, &r)
	return r, err
}

// printBaselineDelta compares this run's throughput with a committed
// baseline report, preferring the CPU-time metric when both sides have it
// (wall-clock deltas on a shared CI machine mostly measure the neighbors).
func printBaselineDelta(path string, stats campaign.Stats) {
	base, err := readBenchReport(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spequlos-bench: baseline %s unreadable: %v\n", path, err)
		return
	}
	metric, cur, ref := "events/sec", stats.EventsPerSecond(), base.EventsPerSec
	if stats.EventsPerCPUSecond() > 0 && base.EventsPerCPUSec > 0 {
		metric, cur, ref = "events/cpu-sec", stats.EventsPerCPUSecond(), base.EventsPerCPUSec
	}
	if ref <= 0 {
		fmt.Fprintf(os.Stderr, "spequlos-bench: baseline %s has no throughput record\n", path)
		return
	}
	fmt.Printf("throughput vs baseline %s: %.0f %s vs %.0f (%+.1f%%)\n",
		path, cur, metric, ref, 100*(cur/ref-1))
}

func figure2CSV(f experiments.Figure2) string {
	var b strings.Builder
	b.WriteString("slowdown,boinc_cdf,xwhep_cdf\n")
	for _, s := range []float64{1, 1.1, 1.2, 1.33, 1.5, 1.75, 2, 2.5, 3, 4, 5, 7.5, 10, 15, 20, 50, 100} {
		fmt.Fprintf(&b, "%g,%g,%g\n", s,
			f.FractionBelow(experiments.BOINC, s), f.FractionBelow(experiments.XWHEP, s))
	}
	return b.String()
}

// writeMemProfile records the post-run heap (after a forced GC, so the
// profile shows retained memory, not garbage awaiting collection).
func writeMemProfile(path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spequlos-bench:", err)
		return
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintln(os.Stderr, "spequlos-bench:", err)
	}
}

// splitList resolves a comma-separated subset flag: "all" keeps the spec's
// default (nil), anything else is split, trimmed and validated so a typo'd
// trace name fails up front instead of panicking mid-campaign.
func splitList(val string, all []string, kind string, valid func(string) bool) []string {
	if val == "all" || val == "" {
		return nil
	}
	var out []string
	for _, name := range strings.Split(val, ",") {
		name = strings.TrimSpace(name)
		if !valid(name) {
			fatal(fmt.Errorf("unknown %s %q (known: %s)", kind, name, strings.Join(all, " ")))
		}
		out = append(out, name)
	}
	return out
}

func validTrace(name string) bool {
	_, err := experiments.TraceSource(name)
	return err == nil
}

func validMiddleware(name string) bool {
	for _, mw := range experiments.AllMiddlewares() {
		if mw == name {
			return true
		}
	}
	return false
}

func validBot(name string) bool {
	for _, bc := range experiments.BotClasses() {
		if bc == name {
			return true
		}
	}
	return false
}

// printTraceCacheUsage reports the shared trace cache's accounting after a
// campaign: resident bytes stay under budget + pinned, the number to read
// against the `full` CI job's RSS ceiling.
func printTraceCacheUsage() {
	u := campaign.TraceCacheStats()
	fmt.Printf("trace cache: %.1f MiB resident (%d traces) of %.0f MiB budget, %.1f MiB pinned\n",
		float64(u.ResidentBytes)/(1<<20), u.Entries,
		float64(u.BudgetBytes)/(1<<20), float64(u.PinnedBytes)/(1<<20))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "spequlos-bench:", err)
	os.Exit(1)
}
