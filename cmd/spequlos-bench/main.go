// Command spequlos-bench regenerates every table and figure of the paper's
// evaluation (§4) and writes them under -out (default results/):
//
//	figure1.txt            example execution profile with tail annotations
//	figure2.{txt,csv}      tail slowdown CDF per middleware
//	table1.{txt,csv}       tail fractions per BE-DCI class
//	table2.{txt,csv}       trace statistics vs published values
//	figure4.{txt,csv}      Tail Removal Efficiency CCDF per strategy
//	figure5.{txt,csv}      credit consumption per strategy
//	figure6.txt            completion times with/without SpeQuloS (9C-C-R)
//	figure7.{txt,csv}      execution stability
//	table4.{txt,csv}       prediction success rates
//	summary.txt            everything concatenated
//
// The -profile flag selects quick / standard / full scale (see
// internal/experiments); -strategies limits the Fig 4/5 sweep.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"spequlos/internal/core"
	"spequlos/internal/experiments"
)

func main() {
	var (
		profile = flag.String("profile", "standard", "experiment profile: quick standard full")
		out     = flag.String("out", "results", "output directory")
		strats  = flag.String("strategies", "all", "comma-separated strategy labels for the sweep, or 'all'")
		verbose = flag.Bool("v", false, "log per-scenario progress")
	)
	flag.Parse()

	p, err := experiments.ProfileByName(*profile)
	if err != nil {
		fatal(err)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}

	var strategies []core.Strategy
	if *strats == "all" {
		strategies = core.AllStrategies()
	} else {
		for _, label := range strings.Split(*strats, ",") {
			st, err := core.StrategyByLabel(strings.TrimSpace(label))
			if err != nil {
				fatal(err)
			}
			strategies = append(strategies, st)
		}
	}
	defaultLabel := core.DefaultStrategy().Label()
	hasDefault := false
	for _, st := range strategies {
		if st.Label() == defaultLabel {
			hasDefault = true
		}
	}
	if !hasDefault {
		strategies = append(strategies, core.DefaultStrategy())
	}

	spec := experiments.MatrixSpec{Strategies: strategies}
	if *verbose {
		spec.Log = os.Stderr
	}

	start := time.Now()
	fmt.Printf("running %s matrix: 2 middleware × 6 traces × 3 BoT classes × %d offsets × %d strategies…\n",
		p.Name, p.Offsets, len(strategies))
	m := experiments.RunMatrix(p, spec)
	fmt.Printf("matrix done in %v (%d cells)\n", time.Since(start).Round(time.Second), len(m.Pairs))

	var summary strings.Builder
	emit := func(name, text, csv string) {
		if err := os.WriteFile(filepath.Join(*out, name+".txt"), []byte(text), 0o644); err != nil {
			fatal(err)
		}
		if csv != "" {
			if err := os.WriteFile(filepath.Join(*out, name+".csv"), []byte(csv), 0o644); err != nil {
				fatal(err)
			}
		}
		summary.WriteString(text)
		summary.WriteString("\n")
		fmt.Println(text)
	}
	emitSVG := func(name string, chart interface{ WriteSVG(io.Writer) error }) {
		path := filepath.Join(*out, name+".svg")
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := chart.WriteSVG(f); err != nil {
			// Narrowed sweeps leave some panels empty; skip them.
			fmt.Fprintf(os.Stderr, "skipping %s: %v\n", name, err)
			os.Remove(path)
		}
	}

	f1 := experiments.BuildFigure1(p)
	emit("figure1", f1.Render(), "")
	emitSVG("figure1", experiments.Figure1Chart(f1))

	bases := m.BaseResults()
	f2 := experiments.BuildFigure2(bases)
	emit("figure2", f2.Render(), figure2CSV(f2))
	emitSVG("figure2", experiments.Figure2Chart(f2))

	t1 := experiments.BuildTable1(bases)
	emit("table1", t1.Render(), "")

	t2rows := experiments.BuildTable2(7, 20260611)
	emit("table2", experiments.RenderTable2(t2rows), "")

	f4 := experiments.BuildFigure4(m)
	emit("figure4", f4.Render(), "")
	for _, deploy := range []string{"F", "R", "D"} {
		emitSVG("figure4"+strings.ToLower(deploy), experiments.Figure4Chart(f4, deploy))
	}

	f5 := experiments.BuildFigure5(m)
	emit("figure5", f5.Render(), "")
	emitSVG("figure5", experiments.Figure5Chart(f5))

	f6 := experiments.BuildFigure6(m, defaultLabel)
	emit("figure6", f6.Render(), "")
	for _, mw := range experiments.Middlewares() {
		for _, bc := range experiments.BotClasses() {
			if len(f6.Cells[mw][bc]) > 0 {
				emitSVG("figure6-"+strings.ToLower(mw)+"-"+strings.ToLower(bc),
					experiments.Figure6Chart(f6, mw, bc))
			}
		}
	}

	f7 := experiments.BuildFigure7(m, defaultLabel)
	emit("figure7", f7.Render(), "")
	for _, mw := range experiments.Middlewares() {
		emitSVG("figure7-"+strings.ToLower(mw), experiments.Figure7Chart(f7, mw))
	}

	t4 := experiments.BuildTable4(m, defaultLabel)
	emit("table4", t4.Render(), "")

	t5 := experiments.BuildTable5(4, 12, 20260611)
	emit("table5", t5.Render(), "")

	if err := os.WriteFile(filepath.Join(*out, "summary.txt"), []byte(summary.String()), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("all artifacts written to %s/ in %v\n", *out, time.Since(start).Round(time.Second))
}

func figure2CSV(f experiments.Figure2) string {
	var b strings.Builder
	b.WriteString("slowdown,boinc_cdf,xwhep_cdf\n")
	for _, s := range []float64{1, 1.1, 1.2, 1.33, 1.5, 1.75, 2, 2.5, 3, 4, 5, 7.5, 10, 15, 20, 50, 100} {
		fmt.Fprintf(&b, "%g,%g,%g\n", s,
			f.FractionBelow(experiments.BOINC, s), f.FractionBelow(experiments.XWHEP, s))
	}
	return b.String()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "spequlos-bench:", err)
	os.Exit(1)
}
