// Command tracegen synthesizes, inspects and validates BE-DCI availability
// traces (Table 2 of the paper).
//
// Usage:
//
//	tracegen -trace seti -days 7 -stats          # print measured statistics
//	tracegen -trace g5klyo -csv lyo.csv          # export to CSV
//	tracegen -validate                           # compare all traces to Table 2
package main

import (
	"flag"
	"fmt"
	"os"

	"spequlos/internal/experiments"
)

func main() {
	var (
		name     = flag.String("trace", "seti", "trace name: seti nd g5klyo g5kgre spot10 spot100")
		days     = flag.Float64("days", 7, "trace length to generate, days")
		pool     = flag.Int("pool", 0, "node pool cap (0 = natural pool)")
		seed     = flag.Uint64("seed", 1, "generator seed")
		csvPath  = flag.String("csv", "", "write the trace to this CSV file")
		stats    = flag.Bool("stats", false, "print measured statistics")
		validate = flag.Bool("validate", false, "generate every trace and compare to Table 2")
	)
	flag.Parse()

	if *validate {
		rows := experiments.BuildTable2(*days, *seed)
		fmt.Print(experiments.RenderTable2(rows))
		return
	}

	src, err := experiments.TraceSource(*name)
	if err != nil {
		fatal(err)
	}
	tr := src.Generate(*seed, *days*86400, *pool)
	if err := tr.Validate(); err != nil {
		fatal(err)
	}
	fmt.Printf("generated %s: %d nodes over %.1f days\n", tr.Name, len(tr.Nodes), tr.Length/86400)

	if *stats {
		st := tr.MeasureStats(600)
		fmt.Printf("concurrency: %s\n", st.Concurrency)
		fmt.Printf("avail dur  : %s\n", st.Avail)
		fmt.Printf("unavail dur: %s\n", st.Unavail)
		fmt.Printf("power      : %s\n", st.Power)
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := tr.WriteCSV(f); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *csvPath)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
