// Command spequlos-sim runs one BoT execution scenario — baseline and
// optionally with SpeQuloS — and prints the run report.
//
// Usage:
//
//	spequlos-sim -middleware XWHEP -trace seti -bot SMALL -strategy 9C-C-R
//
// The -strategy flag accepts the paper's combination labels (9C/9A/D for
// the trigger, G/C for sizing, F/R/D for deployment), or "none" for a
// baseline-only run, or "all" to compare every combination.
//
// All runs execute through one campaign: the baseline and every strategy
// variant are planned up front and run on a bounded worker pool. The
// -store flag persists the result store as JSON; re-running with the same
// store skips simulations already recorded (resume), and -v streams
// per-job progress.
//
// The -emulate flag additionally runs every strategy cell through the
// deployable HTTP service stack (internal/service) on the virtual clock —
// the emulation mode of internal/emul — and prints a conformance report
// proving the stack matches the simulator on trigger time, fleet size,
// credits billed and completion time. The command exits non-zero if any
// cell diverges.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"spequlos/internal/campaign"
	"spequlos/internal/core"
	"spequlos/internal/emul"
	"spequlos/internal/experiments"
	"spequlos/internal/stats"
)

func main() {
	var (
		mw        = flag.String("middleware", "XWHEP", "middleware: BOINC, XWHEP or CONDOR")
		tn        = flag.String("trace", "seti", "BE-DCI trace: seti nd g5klyo g5kgre spot10 spot100")
		bc        = flag.String("bot", "SMALL", "BoT class: SMALL BIG RANDOM")
		strategy  = flag.String("strategy", "9C-C-R", "strategy label, 'none' or 'all'")
		profile   = flag.String("profile", "standard", "experiment profile: quick standard full stress crowd crowd2k (crowd cells interleave hundreds of QoS batches; crowd2k runs 2000 tiered batches)")
		offset    = flag.Int("offset", 0, "submission offset index (changes the seed)")
		storePath = flag.String("store", "", "result store JSON path: load if present, save after the run (resume)")
		emulate   = flag.Bool("emulate", false, "also run each strategy cell through the deployable HTTP stack and report conformance")
		budget    = flag.String("trace-budget", "", "trace cache byte budget, e.g. 256MiB (empty = profile default)")
		shards    = flag.Int("shards", 0, "kernel shard count for sharded-kernel profiles (0 = GOMAXPROCS); execution-only, results are byte-identical at any value")
		verbose   = flag.Bool("v", false, "log per-job progress")
	)
	flag.Parse()

	p, err := experiments.ProfileByName(*profile)
	if err != nil {
		fatal(err)
	}
	if *shards > 0 {
		p.KernelShards = *shards
	}
	if *budget != "" {
		n, err := campaign.ParseByteSize(*budget)
		if err != nil {
			fatal(err)
		}
		p.TraceBudgetBytes = n
	}
	sc := experiments.Scenario{
		Profile: p, Middleware: *mw, TraceName: *tn, BotClass: *bc, Offset: *offset,
	}
	if _, err := experiments.TraceSource(*tn); err != nil {
		fatal(err)
	}
	validMW := false
	for _, name := range experiments.AllMiddlewares() {
		if name == *mw {
			validMW = true
		}
	}
	if !validMW {
		fatal(fmt.Errorf("unknown middleware %q (use BOINC, XWHEP or CONDOR)", *mw))
	}

	var strategies []core.Strategy
	switch *strategy {
	case "none":
	case "all":
		strategies = core.AllStrategies()
	default:
		st, err := core.StrategyByLabel(*strategy)
		if err != nil {
			fatal(err)
		}
		strategies = []core.Strategy{st}
	}

	// Plan the whole comparison as one campaign: the baseline plus one job
	// per strategy, all paired on the same seed.
	baseJob := campaign.Job{Scenario: sc}
	jobs := []campaign.Job{baseJob}
	var strategyJobs []campaign.Job
	for _, st := range strategies {
		st := st
		scs := sc
		scs.Strategy = &st
		j := campaign.Job{Scenario: scs}
		jobs = append(jobs, j)
		strategyJobs = append(strategyJobs, j)
	}

	store := campaign.NewResultStore()
	if *storePath != "" {
		var err error
		store, _, err = campaign.LoadFileIfExists(*storePath)
		if err != nil {
			fatal(err)
		}
	}
	c := campaign.New(p, jobs...)
	if *verbose {
		c.Progress = campaign.LogProgress(os.Stderr)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	stats, runErr := c.Run(ctx, store)
	if *storePath != "" {
		if err := store.SaveFile(*storePath); err != nil {
			fatal(err)
		}
	}
	if runErr != nil {
		fatal(runErr)
	}
	if *verbose && stats.Executed > 0 {
		fmt.Fprintf(os.Stderr, "campaign: %d executed in %v, %.0f events/sec (%.0f events/cpu-sec)\n",
			stats.Executed, stats.Elapsed.Round(time.Millisecond),
			stats.EventsPerSecond(), stats.EventsPerCPUSecond())
	}

	base, ok := store.Result(baseJob)
	if !ok {
		fatal(fmt.Errorf("baseline missing from store"))
	}
	report("baseline", base)
	for _, j := range strategyJobs {
		res, ok := store.Result(j)
		if !ok {
			fatal(fmt.Errorf("strategy run missing from store"))
		}
		report(j.Scenario.StrategyLabel(), res)
		if base.Completed && res.Completed && res.CompletionTime > 0 {
			fmt.Printf("  speedup vs baseline: %.2fx\n", base.CompletionTime/res.CompletionTime)
		}
	}

	if *emulate {
		if len(strategies) == 0 {
			fatal(fmt.Errorf("-emulate needs at least one strategy (the stack is the QoS service)"))
		}
		rep, err := emul.RunConformance(ctx, emul.Spec{
			Profile:       p,
			Middlewares:   []string{*mw},
			Traces:        []string{*tn},
			Bots:          []string{*bc},
			Strategies:    strategies,
			OffsetIndexes: []int{*offset},
			Store:         store, // the simulator side is already in the store
		})
		if err != nil {
			fatal(err)
		}
		fmt.Print(rep.Text())
		if !rep.Pass() {
			fatal(fmt.Errorf("emulation diverged from the simulator on %d cells", len(rep.Failures())))
		}
	}
}

func report(label string, r experiments.Result) {
	fmt.Printf("[%s] %s/%s/%s seed=%d\n", label, r.Middleware, r.TraceName, r.BotClass, r.Seed)
	reportKernel(r)
	if len(r.Batches) > 0 {
		// A multi-batch cell reports its per-batch spread even when some
		// batches missed the horizon — the partial view is the point.
		reportCrowd(r)
		return
	}
	if !r.Completed {
		fmt.Println("  did not complete within the horizon")
		return
	}
	fmt.Printf("  tasks=%d completion=%.0fs ideal=%.0fs slowdown=%.2f tail: %d tasks, %.1f%% of time\n",
		r.Size, r.CompletionTime, r.Tail.IdealTime, r.Tail.Slowdown,
		r.Tail.TailTasks, r.Tail.TailTimeFraction*100)
	if r.Strategy != "" {
		fmt.Printf("  cloud: %d instances, %.0f cpu·s, credits %.1f/%.1f (triggered at %.0fs)\n",
			r.Instances, r.CloudCPUSeconds, r.CreditsBilled, r.CreditsAllocated, r.TriggeredAt)
	}
}

// reportKernel prints the sharded-kernel execution counters of a run that
// executed multi-core: how the work spread across shards and what barrier
// synchronization cost. Serial runs print nothing.
func reportKernel(r experiments.Result) {
	if r.KernelShards == 0 {
		return
	}
	var min, max uint64
	for i, n := range r.ShardEvents {
		if i == 0 || n < min {
			min = n
		}
		if n > max {
			max = n
		}
	}
	fmt.Printf("  kernel: %d shards, %d barriers, shard events %d..%d, barrier stall %.2fs\n",
		r.KernelShards, r.Barriers, min, max, r.BarrierStallSec)
}

// reportCrowd summarizes a multi-batch cell: per-batch completion spread
// and aggregate cloud accounting.
func reportCrowd(r experiments.Result) {
	completed, triggered := 0, 0
	var times []float64
	for _, br := range r.Batches {
		if br.Completed {
			completed++
			times = append(times, br.CompletionTime)
		}
		if br.TriggeredAt >= 0 {
			triggered++
		}
	}
	q := func(f float64) float64 { return stats.NearestRank(times, f) }
	fmt.Printf("  crowd: %d batches (%d completed, %d triggered), %d tasks, makespan %.0fs\n",
		len(r.Batches), completed, triggered, r.Size, r.CompletionTime)
	fmt.Printf("  per-batch completion: median %.0fs, p90 %.0fs, max %.0fs\n",
		q(0.5), q(0.9), q(1))
	if r.Strategy != "" {
		fmt.Printf("  cloud: %d instances, credits %.1f/%.1f\n",
			r.Instances, r.CreditsBilled, r.CreditsAllocated)
	}
	// Tiered cells break the completion spread down per service class.
	for _, t := range core.AllTiers() {
		var tTimes []float64
		n := 0
		for _, br := range r.Batches {
			if br.Tier == "" || core.Tier(br.Tier).OrFree() != t {
				continue
			}
			n++
			if br.Completed {
				tTimes = append(tTimes, br.CompletionTime)
			}
		}
		if n == 0 {
			continue
		}
		tq := func(f float64) float64 { return stats.NearestRank(tTimes, f) }
		fmt.Printf("  tier %-10s %4d batches (%d completed): median %.0fs, p90 %.0fs, max %.0fs\n",
			t, n, len(tTimes), tq(0.5), tq(0.9), tq(1))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "spequlos-sim:", err)
	os.Exit(1)
}
