module spequlos

go 1.24
