// Package boinc simulates the BOINC volunteer-computing middleware. BOINC
// handles host volatility with task replication and deadlines (§2.2,
// §4.1.3): every task (workunit) is issued as target_nresult replicas,
// completes once min_quorum results are returned, never runs two replicas
// on the same worker, and reissues replicas whose results have not arrived
// delay_bound seconds after assignment. The server learns about lost hosts
// only through those deadlines, which is why BOINC's baseline tail is
// heavier than XWHEP's (Fig 2).
package boinc

import (
	"fmt"
	"sort"

	"spequlos/internal/bot"
	"spequlos/internal/middleware"
	"spequlos/internal/sim"
)

// Config carries the standard BOINC server parameters (§4.1.3).
type Config struct {
	// TargetNResults is the number of replicas issued per workunit
	// (target_nresult).
	TargetNResults int
	// MinQuorum is the number of results required to complete a workunit
	// (min_quorum).
	MinQuorum int
	// DelayBound is the per-replica deadline: a replica whose result has
	// not arrived DelayBound seconds after assignment is reissued
	// (delay_bound).
	DelayBound float64
	// OneResultPerWorker forbids a worker from concurrently executing, or
	// contributing more than one result to, the same workunit
	// (one_result_per_user_per_wu).
	OneResultPerWorker bool
}

// DefaultConfig returns the paper's simulation parameters:
// target_nresult=3, min_quorum=2, delay_bound=86400,
// one_result_per_user_per_wu=1.
func DefaultConfig() Config {
	return Config{TargetNResults: 3, MinQuorum: 2, DelayBound: 86400, OneResultPerWorker: true}
}

// Server is a BOINC server simulation. It implements middleware.Server.
type Server struct {
	eng       *sim.Engine
	cfg       Config
	listeners middleware.Listeners

	batches  map[string]*batch
	pending  fifo
	attached map[*middleware.Worker]*workerState
	idle     *middleware.IdleSet
	// paused holds checkpointed executions of currently-offline hosts,
	// resumed if the host returns.
	paused map[*middleware.Worker]*exec

	reschedule bool

	// barren is dispatch's per-round scratch memo of batches with no
	// eligible work, reused across rounds to avoid per-tick allocation.
	barren map[string]bool

	// Registered op handlers: scheduling an op event carries only an arena
	// payload, so the server's hot path allocates no closures.
	opArrive   sim.Op // Payload.A = *workunit
	opDone     sim.Op // Payload.A = *exec: the replica's result arrives
	opDeadline sim.Op // Payload.A = *exec: delay_bound expired
}

type batch struct {
	spec      middleware.Batch
	size      int
	arrived   int
	completed int
	assigned  int // workunits ever assigned (monotone)
	wus       []*workunit
	// byID resolves a workunit by its spec ID: IDs are batch-unique but
	// not slice indexes once the batch is a partition subset or barrier
	// rebalances moved workunits in.
	byID map[int]*workunit
	done bool
	// freeQueued counts queued, never-assigned workunits — the ones
	// TakeQueued may hand to a sibling pool partition.
	freeQueued int
	running    int // workunits with at least one live-or-believed replica
}

type workunit struct {
	batch   *batch
	spec    bot.Task
	arrived bool
	// unsent is the number of created-but-unassigned replicas.
	unsent int
	// active counts replicas the server believes are executing (results
	// pending, deadline not reached). Dead hosts stay counted until their
	// deadline — BOINC cannot tell.
	active int
	// results is the number of successful results received.
	results int
	// contributed tracks workers that returned a result or currently hold
	// a replica (one_result_per_user_per_wu).
	holders   map[int]bool
	returned  map[int]bool
	completed bool
	assigned  bool // ever assigned
	queued    bool // present in the pending fifo with unsent > 0
	// moved marks a workunit handed to a sibling partition (TakeQueued):
	// it stays in the slice for fifo lazy removal but no longer counts.
	moved bool
	execs map[*middleware.Worker]*exec
}

// cloudReplicas counts in-flight cloud replicas of the workunit.
func (wu *workunit) cloudReplicas() int {
	n := 0
	for w := range wu.execs {
		if w.Cloud {
			n++
		}
	}
	return n
}

type exec struct {
	w      *middleware.Worker
	wu     *workunit
	doneEv sim.Event
	// settled is set when the server has accounted for this replica's
	// outcome: either its result arrived or its deadline expired. It keeps
	// the active-replica count exact when deadlines, late results, host
	// deaths and rejoins interleave.
	settled bool
	// Checkpointing state: BOINC clients checkpoint their computation, so
	// a host that goes offline resumes where it left off when it returns
	// (unlike XWHEP, whose workers lose their task). remaining is the
	// compute time left; resumedAt when the current burst started.
	remaining float64
	resumedAt float64
	paused    bool
}

// setActive adjusts the believed-active replica count, maintaining the
// batch's running-workunit counter on 0↔positive transitions.
func (s *Server) setActive(wu *workunit, delta int) {
	was := wu.active > 0
	wu.active += delta
	if wu.active < 0 {
		wu.active = 0
	}
	now := wu.active > 0
	if !was && now {
		wu.batch.running++
	} else if was && !now {
		wu.batch.running--
	}
}

type workerState struct {
	cur *workunit
}

// fifo is a workunit queue with lazy removal (see xwhep's twin).
type fifo struct {
	items []*workunit
	head  int
}

func (f *fifo) push(wu *workunit) { f.items = append(f.items, wu) }

func (f *fifo) advance() {
	for f.head < len(f.items) && !f.items[f.head].queued {
		f.items[f.head] = nil
		f.head++
	}
	if f.head > 64 && f.head*2 > len(f.items) {
		f.items = append(f.items[:0], f.items[f.head:]...)
		f.head = 0
	}
}

func (f *fifo) empty() bool {
	f.advance()
	return f.head >= len(f.items)
}

func (f *fifo) first(match func(*workunit) bool) *workunit {
	f.advance()
	for i := f.head; i < len(f.items); i++ {
		wu := f.items[i]
		if wu != nil && wu.queued && match(wu) {
			return wu
		}
	}
	return nil
}

// New creates a BOINC server on the engine.
func New(eng *sim.Engine, cfg Config) *Server {
	if cfg.TargetNResults <= 0 {
		cfg.TargetNResults = 3
	}
	if cfg.MinQuorum <= 0 {
		cfg.MinQuorum = 2
	}
	if cfg.MinQuorum > cfg.TargetNResults {
		panic(fmt.Sprintf("boinc: min_quorum %d > target_nresults %d", cfg.MinQuorum, cfg.TargetNResults))
	}
	if cfg.DelayBound <= 0 {
		cfg.DelayBound = 86400
	}
	s := &Server{
		eng:      eng,
		cfg:      cfg,
		batches:  map[string]*batch{},
		attached: map[*middleware.Worker]*workerState{},
		idle:     middleware.NewIdleSet(),
		barren:   map[string]bool{},
		paused:   map[*middleware.Worker]*exec{},
	}
	s.opArrive = eng.RegisterOp(func(p sim.Payload) { s.arrive(p.A.(*workunit)) })
	s.opDone = eng.RegisterOp(func(p sim.Payload) {
		ex := p.A.(*exec)
		s.returnResult(ex.w, ex.wu, ex)
	})
	s.opDeadline = eng.RegisterOp(func(p sim.Payload) {
		ex := p.A.(*exec)
		s.deadline(ex.wu, ex)
	})
	return s
}

// MiddlewareName implements middleware.Server.
func (s *Server) MiddlewareName() string { return "BOINC" }

// AddListener implements middleware.Server.
func (s *Server) AddListener(l middleware.Listener) { s.listeners = append(s.listeners, l) }

// SetReschedule implements middleware.Server.
func (s *Server) SetReschedule(enabled bool) { s.reschedule = enabled }

// Submit implements middleware.Server.
func (s *Server) Submit(b middleware.Batch) {
	if _, ok := s.batches[b.ID]; ok {
		panic(fmt.Sprintf("boinc: duplicate batch %q", b.ID))
	}
	bt := &batch{spec: b, size: len(b.Tasks), byID: make(map[int]*workunit, len(b.Tasks))}
	s.batches[b.ID] = bt
	for _, spec := range b.Tasks {
		wu := &workunit{
			batch: bt, spec: spec,
			holders: map[int]bool{}, returned: map[int]bool{},
			execs: map[*middleware.Worker]*exec{},
		}
		bt.wus = append(bt.wus, wu)
		bt.byID[spec.ID] = wu
		s.eng.AfterOp(spec.Arrival, s.opArrive, sim.Payload{A: wu})
	}
}

// arrive makes a workunit visible to the scheduler at its arrival time.
func (s *Server) arrive(wu *workunit) {
	wu.arrived = true
	wu.batch.arrived++
	wu.unsent = s.cfg.TargetNResults
	wu.queued = true
	wu.batch.freeQueued++
	s.pending.push(wu)
	s.dispatch()
}

// WorkerJoin implements middleware.Server. A returning host resumes its
// checkpointed replica, if the workunit still needs it; a replica of a
// completed workunit is aborted at reconnection.
func (s *Server) WorkerJoin(w *middleware.Worker) {
	if _, ok := s.attached[w]; ok {
		return
	}
	st := &workerState{}
	s.attached[w] = st
	if ex, ok := s.paused[w]; ok {
		delete(s.paused, w)
		if !ex.wu.completed {
			st.cur = ex.wu
			ex.paused = false
			ex.resumedAt = s.eng.Now()
			ex.doneEv = s.eng.AfterOp(ex.remaining, s.opDone, sim.Payload{A: ex})
			return
		}
		delete(ex.wu.execs, w)
		delete(ex.wu.holders, w.ID)
	}
	s.idle.Add(w)
	s.dispatch()
}

// WorkerLeave implements middleware.Server. The host's computation is
// checkpointed: it resumes if the host returns. The server cannot tell —
// the replica stays counted active until its deadline reveals the absence.
func (s *Server) WorkerLeave(w *middleware.Worker) {
	st, ok := s.attached[w]
	if !ok {
		return
	}
	delete(s.attached, w)
	s.idle.Remove(w)
	if st.cur == nil {
		return
	}
	wu := st.cur
	if ex := wu.execs[w]; ex != nil {
		s.eng.Cancel(ex.doneEv)
		ex.remaining -= s.eng.Now() - ex.resumedAt
		if ex.remaining < 0 {
			ex.remaining = 0
		}
		ex.paused = true
		s.paused[w] = ex
	}
}

// dispatch pairs idle workers with assignable replicas.
func (s *Server) dispatch() {
	for {
		hasQueued := !s.pending.empty()
		wantCloudDup := s.reschedule && s.idle.CloudCount() > 0 && s.anyDupCandidate()
		if !hasQueued && !wantCloudDup {
			return
		}
		clear(s.barren)
		barren := s.barren
		w := s.idle.Pick(func(w *middleware.Worker) bool {
			if barren[w.DedicatedBatch] {
				return false
			}
			if !hasQueued && !(w.Cloud && w.DedicatedBatch != "") {
				return false
			}
			if s.peekWorkunit(w) == nil {
				if w.DedicatedBatch == "" && !w.Cloud {
					// A free worker refused only by per-WU constraints;
					// others may differ, so do not mark anything barren.
					return false
				}
				barren[w.DedicatedBatch] = true
				return false
			}
			return true
		})
		if w == nil {
			return
		}
		wu := s.peekWorkunit(w)
		if wu == nil {
			s.idle.Add(w)
			return
		}
		s.assign(w, wu)
	}
}

// eligible applies matchmaking: batch dedication (the compiled-in policy
// the paper adds to BOINC, §3.7) plus one_result_per_user_per_wu.
func (s *Server) eligible(w *middleware.Worker, wu *workunit) bool {
	if w.DedicatedBatch != "" && wu.batch.spec.ID != w.DedicatedBatch {
		return false
	}
	if s.cfg.OneResultPerWorker && (wu.holders[w.ID] || wu.returned[w.ID]) {
		return false
	}
	return true
}

// peekWorkunit returns the workunit the worker would receive a replica of.
func (s *Server) peekWorkunit(w *middleware.Worker) *workunit {
	if wu := s.pending.first(func(wu *workunit) bool { return s.eligible(w, wu) }); wu != nil {
		return wu
	}
	if s.reschedule && w.Cloud && w.DedicatedBatch != "" {
		// Reschedule: create extra replicas, beyond target_nresults, of
		// incomplete workunits (speculative execution on stable cloud
		// resources). Cloud workers stay continuously busy until the
		// batch completes — the paper's Fig 5 commentary — spreading over
		// the least-duplicated workunits first so the quorum of every
		// tail workunit becomes achievable on the cloud alone.
		bt := s.batches[w.DedicatedBatch]
		if bt == nil {
			return nil
		}
		var best *workunit
		bestDups := 0
		for _, wu := range bt.wus {
			if !wu.arrived || wu.completed || wu.moved || !s.eligible(w, wu) {
				continue
			}
			dups := wu.cloudReplicas()
			if best == nil || dups < bestDups {
				best, bestDups = wu, dups
				if dups == 0 {
					break
				}
			}
		}
		return best
	}
	return nil
}

// anyDupCandidate reports whether a Reschedule duplicate could be created.
func (s *Server) anyDupCandidate() bool {
	for _, bt := range s.batches {
		if !bt.done && bt.arrived > bt.completed {
			return true
		}
	}
	return false
}

func (s *Server) assign(w *middleware.Worker, wu *workunit) {
	st := s.attached[w]
	if st == nil || st.cur != nil {
		panic("boinc: assigning to busy or detached worker")
	}
	st.cur = wu
	if wu.queued && !wu.assigned {
		wu.batch.freeQueued--
	}
	if wu.unsent > 0 && wu.queued {
		wu.unsent--
		if wu.unsent == 0 {
			wu.queued = false
		}
	}
	s.setActive(wu, 1)
	wu.holders[w.ID] = true
	if !wu.assigned {
		wu.assigned = true
		wu.batch.assigned++
		s.listeners.TaskAssigned(wu.batch.spec.ID, wu.spec.ID, s.eng.Now())
	}
	dur := wu.spec.NOps / w.Power
	ex := &exec{w: w, wu: wu, remaining: dur, resumedAt: s.eng.Now()}
	wu.execs[w] = ex
	ex.doneEv = s.eng.AfterOp(dur, s.opDone, sim.Payload{A: ex})
	// Deadline: if the result has not arrived by then, the replica is
	// presumed lost and a replacement is created.
	s.eng.AfterOp(s.cfg.DelayBound, s.opDeadline, sim.Payload{A: ex})
}

// returnResult processes a successful result from worker w.
func (s *Server) returnResult(w *middleware.Worker, wu *workunit, ex *exec) {
	if st := s.attached[w]; st != nil && st.cur == wu {
		st.cur = nil
		s.idle.Add(w)
	}
	delete(wu.execs, w)
	delete(wu.holders, w.ID)
	wu.returned[w.ID] = true
	if !ex.settled {
		ex.settled = true
		s.setActive(wu, -1)
	}
	if !wu.completed {
		// Results are validated on arrival; a late result (deadline
		// already expired) still counts toward the quorum.
		wu.results++
		if wu.results >= s.cfg.MinQuorum {
			s.completeWU(wu, w)
		}
	}
	s.dispatch()
}

// deadline fires delay_bound after a replica assignment. If that replica's
// result has not arrived — dead host, or an alive host computing too slowly
// — the server gives up on it and creates a replacement, keeping
// target_nresults outstanding. This is the only mechanism through which
// BOINC discovers host failures.
func (s *Server) deadline(wu *workunit, ex *exec) {
	if wu.completed || ex.settled {
		return
	}
	ex.settled = true
	s.setActive(wu, -1)
	outstanding := wu.active + wu.unsent + wu.results
	if outstanding < s.cfg.TargetNResults {
		wu.unsent += s.cfg.TargetNResults - outstanding
		if !wu.queued {
			wu.queued = true
			s.pending.push(wu)
		}
		s.dispatch()
	}
}

// completeWU finalizes a workunit: quorum reached. Outstanding replicas are
// aborted and their live workers freed (server-side cancel; see DESIGN.md).
// by is the worker whose result closed the quorum (nil for external merge).
func (s *Server) completeWU(wu *workunit, by *middleware.Worker) {
	if wu.queued && !wu.assigned {
		wu.batch.freeQueued--
	}
	wu.completed = true
	wu.unsent = 0
	wu.queued = false
	bt := wu.batch
	bt.completed++
	now := s.eng.Now()
	s.listeners.TaskCompleted(bt.spec.ID, wu.spec.ID, now)
	s.listeners.NotifyExecutedBy(bt.spec.ID, wu.spec.ID, by, now)
	for _, w := range sortedExecWorkers(wu.execs) {
		ex := wu.execs[w]
		s.eng.Cancel(ex.doneEv)
		ex.settled = true
		delete(wu.execs, w)
		delete(s.paused, w)
		if st := s.attached[w]; st != nil && st.cur == wu {
			st.cur = nil
			s.idle.Add(w)
		}
	}
	s.setActive(wu, -wu.active)
	if bt.completed >= bt.size && !bt.done {
		bt.done = true
		s.listeners.BatchCompleted(bt.spec.ID, now)
	}
}

// MarkCompleted implements middleware.Server (result merging for Cloud
// Duplication): an external trusted result satisfies the quorum. Workunits
// are resolved by spec ID, which stays correct when the batch is a
// partition subset whose IDs are not dense slice indexes.
func (s *Server) MarkCompleted(batchID string, taskID int) {
	bt := s.batches[batchID]
	if bt == nil {
		return
	}
	wu := bt.byID[taskID]
	if wu == nil || wu.completed {
		return
	}
	s.completeWU(wu, nil)
	s.dispatch()
}

// Progress implements middleware.Server.
func (s *Server) Progress(batchID string) middleware.Progress {
	bt := s.batches[batchID]
	if bt == nil {
		return middleware.Progress{}
	}
	running, queued := 0, 0
	for _, wu := range bt.wus {
		switch {
		case wu.completed || !wu.arrived:
		case wu.active > 0:
			running++
		case wu.queued:
			queued++
		}
	}
	return middleware.Progress{
		Size:         bt.size,
		Arrived:      bt.arrived,
		Completed:    bt.completed,
		EverAssigned: bt.assigned,
		Running:      running,
		Queued:       queued,
		Workers:      len(s.attached),
	}
}

// Done implements middleware.Server.
func (s *Server) Done(batchID string) bool {
	bt := s.batches[batchID]
	return bt != nil && bt.done
}

// Incomplete implements middleware.Server.
func (s *Server) Incomplete(batchID string) []bot.Task {
	bt := s.batches[batchID]
	if bt == nil {
		return nil
	}
	var out []bot.Task
	for _, wu := range bt.wus {
		if !wu.completed && !wu.moved {
			spec := wu.spec
			spec.Arrival = 0
			out = append(out, spec)
		}
	}
	return out
}

// IdleWorkers implements middleware.TaskMover.
func (s *Server) IdleWorkers() int { return s.idle.Len() }

// QueuedFree implements middleware.TaskMover.
func (s *Server) QueuedFree(batchID string) int {
	bt := s.batches[batchID]
	if bt == nil {
		return 0
	}
	return bt.freeQueued
}

// TakeQueued implements middleware.TaskMover: it extracts up to n queued,
// never-assigned workunits — no replicas were created, so holders,
// results and deadlines are all empty and removal is exact — and stops
// counting them toward the batch. The receiving partition re-creates the
// full target_nresults replica set on AddTasks.
func (s *Server) TakeQueued(batchID string, n int) []bot.Task {
	bt := s.batches[batchID]
	if bt == nil || n <= 0 {
		return nil
	}
	var out []bot.Task
	for _, wu := range bt.wus {
		if len(out) >= n {
			break
		}
		if wu.moved || wu.completed || !wu.arrived || !wu.queued || wu.assigned {
			continue
		}
		wu.moved = true
		wu.queued = false
		wu.unsent = 0
		bt.freeQueued--
		bt.size--
		bt.arrived--
		delete(bt.byID, wu.spec.ID)
		spec := wu.spec
		spec.Arrival = 0
		out = append(out, spec)
	}
	return out
}

// AddTasks implements middleware.TaskMover: the specs join the batch as
// already-arrived queued workunits with a fresh replica set and dispatch
// immediately.
func (s *Server) AddTasks(batchID string, tasks []bot.Task) {
	bt := s.batches[batchID]
	if bt == nil || len(tasks) == 0 {
		return
	}
	for _, spec := range tasks {
		wu := &workunit{
			batch: bt, spec: spec,
			holders: map[int]bool{}, returned: map[int]bool{},
			execs: map[*middleware.Worker]*exec{},
		}
		wu.arrived = true
		wu.unsent = s.cfg.TargetNResults
		wu.queued = true
		bt.wus = append(bt.wus, wu)
		bt.byID[spec.ID] = wu
		bt.size++
		bt.arrived++
		bt.freeQueued++
		s.pending.push(wu)
	}
	s.dispatch()
}

var _ middleware.Server = (*Server)(nil)
var _ middleware.TaskMover = (*Server)(nil)

// WorkerBusy implements middleware.Server.
func (s *Server) WorkerBusy(w *middleware.Worker) bool {
	st := s.attached[w]
	return st != nil && st.cur != nil
}

// sortedExecWorkers returns the execution map's workers in ID order, so
// completion-time worker freeing is deterministic for a given seed.
func sortedExecWorkers(execs map[*middleware.Worker]*exec) []*middleware.Worker {
	out := make([]*middleware.Worker, 0, len(execs))
	for w := range execs {
		out = append(out, w)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
