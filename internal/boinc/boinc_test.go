package boinc

import (
	"testing"
	"testing/quick"

	"spequlos/internal/bot"
	"spequlos/internal/middleware"
	"spequlos/internal/sim"
)

type recorder struct {
	assigned  map[int]int
	completed map[int]int
	compTimes map[int]float64
	batchDone float64
}

func newRecorder() *recorder {
	return &recorder{assigned: map[int]int{}, completed: map[int]int{}, compTimes: map[int]float64{}, batchDone: -1}
}
func (r *recorder) TaskAssigned(b string, id int, at float64) { r.assigned[id]++ }
func (r *recorder) TaskCompleted(b string, id int, at float64) {
	r.completed[id]++
	r.compTimes[id] = at
}
func (r *recorder) BatchCompleted(b string, at float64) { r.batchDone = at }

func tasks(nops ...float64) []bot.Task {
	out := make([]bot.Task, len(nops))
	for i, n := range nops {
		out[i] = bot.Task{ID: i, NOps: n}
	}
	return out
}

func TestQuorumCompletion(t *testing.T) {
	eng := sim.NewEngine()
	s := New(eng, DefaultConfig())
	rec := newRecorder()
	s.AddListener(rec)
	s.Submit(middleware.Batch{ID: "b", Tasks: tasks(100)})
	// Powers 1, 2, 4: replicas finish at 100, 50, 25. Quorum of 2 is
	// reached when the second-fastest returns, at t=50.
	s.WorkerJoin(&middleware.Worker{ID: 1, Power: 1})
	s.WorkerJoin(&middleware.Worker{ID: 2, Power: 2})
	s.WorkerJoin(&middleware.Worker{ID: 3, Power: 4})
	eng.Run()
	if rec.compTimes[0] != 50 {
		t.Fatalf("completed at %v, want 50 (min_quorum=2)", rec.compTimes[0])
	}
	if rec.completed[0] != 1 {
		t.Fatalf("completed %d times", rec.completed[0])
	}
	if rec.batchDone != 50 {
		t.Fatalf("batch done at %v", rec.batchDone)
	}
}

func TestSlowestReplicaAbortedOnQuorum(t *testing.T) {
	eng := sim.NewEngine()
	s := New(eng, DefaultConfig())
	s.Submit(middleware.Batch{ID: "b", Tasks: tasks(100, 400)})
	s.WorkerJoin(&middleware.Worker{ID: 1, Power: 1})
	s.WorkerJoin(&middleware.Worker{ID: 2, Power: 1})
	s.WorkerJoin(&middleware.Worker{ID: 3, Power: 1})
	eng.Run()
	// After wu0 completes at t=100 (w1, w2), w3's replica of wu0 is
	// aborted, freeing it for wu1. If aborts did not work, wu1 would
	// starve for its second replica.
	if !s.Done("b") {
		t.Fatal("batch incomplete: quorum aborts not freeing workers")
	}
}

func TestOneResultPerWorker(t *testing.T) {
	eng := sim.NewEngine()
	s := New(eng, DefaultConfig())
	rec := newRecorder()
	s.AddListener(rec)
	s.Submit(middleware.Batch{ID: "b", Tasks: tasks(100)})
	// A single worker can never satisfy a quorum of 2.
	s.WorkerJoin(&middleware.Worker{ID: 1, Power: 1})
	eng.RunUntil(100000)
	if s.Done("b") {
		t.Fatal("quorum satisfied by one worker")
	}
	if rec.completed[0] != 0 {
		t.Fatal("task completed without quorum")
	}
	// A second worker unblocks it.
	s.WorkerJoin(&middleware.Worker{ID: 2, Power: 1})
	eng.Run()
	if !s.Done("b") {
		t.Fatal("batch incomplete with two workers")
	}
}

func TestDeadlineReissueAfterHostLoss(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	cfg.TargetNResults = 2
	cfg.MinQuorum = 2
	cfg.DelayBound = 1000
	s := New(eng, cfg)
	rec := newRecorder()
	s.AddListener(rec)
	s.Submit(middleware.Batch{ID: "b", Tasks: tasks(100)})
	w1 := &middleware.Worker{ID: 1, Power: 1}
	w2 := &middleware.Worker{ID: 2, Power: 1}
	w3 := &middleware.Worker{ID: 3, Power: 1}
	s.WorkerJoin(w1)
	s.WorkerJoin(w2)
	// w2 dies mid-computation and never returns; its loss is only
	// discovered at the delay_bound (t=1000), when a fresh replica is
	// created. w3 joins at t=1500 and takes the replacement.
	eng.At(50, func() { s.WorkerLeave(w2) })
	eng.At(1500, func() { s.WorkerJoin(w3) })
	eng.Run()
	// w1's result at t=100; replacement replica assigned at t=1500,
	// result at t=1600 → quorum.
	if rec.compTimes[0] != 1600 {
		t.Fatalf("completed at %v, want 1600", rec.compTimes[0])
	}
}

func TestCheckpointResumeOnRejoin(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	cfg.TargetNResults = 2
	cfg.MinQuorum = 2
	s := New(eng, cfg)
	rec := newRecorder()
	s.AddListener(rec)
	s.Submit(middleware.Batch{ID: "b", Tasks: tasks(100)})
	w1 := &middleware.Worker{ID: 1, Power: 1}
	w2 := &middleware.Worker{ID: 2, Power: 1}
	s.WorkerJoin(w1)
	s.WorkerJoin(w2)
	// w2 checkpoints at t=60 (40 s of work left) and returns at t=500:
	// its result arrives at 540, completing the quorum with w1's t=100.
	eng.At(60, func() { s.WorkerLeave(w2) })
	eng.At(500, func() { s.WorkerJoin(w2) })
	eng.Run()
	if rec.compTimes[0] != 540 {
		t.Fatalf("completed at %v, want 540 (checkpoint resume)", rec.compTimes[0])
	}
	if rec.completed[0] != 1 {
		t.Fatalf("completed %d times", rec.completed[0])
	}
}

func TestResumeOfCompletedWorkunitAborts(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	cfg.TargetNResults = 3
	cfg.MinQuorum = 2
	s := New(eng, cfg)
	s.Submit(middleware.Batch{ID: "b", Tasks: tasks(100, 100)})
	w1 := &middleware.Worker{ID: 1, Power: 1}
	w2 := &middleware.Worker{ID: 2, Power: 1}
	w3 := &middleware.Worker{ID: 3, Power: 1}
	s.WorkerJoin(w1)
	s.WorkerJoin(w2)
	s.WorkerJoin(w3)
	// w3 leaves with a checkpointed replica of wu0; wu0 completes via
	// w1+w2 at t=100. When w3 returns, its stale replica is aborted and it
	// must pick up wu1 instead.
	eng.At(50, func() { s.WorkerLeave(w3) })
	eng.At(200, func() { s.WorkerJoin(w3) })
	eng.Run()
	if !s.Done("b") {
		t.Fatal("batch incomplete: returning host did not abort stale replica")
	}
}

func TestLateResultStillCounts(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	cfg.TargetNResults = 2
	cfg.MinQuorum = 2
	cfg.DelayBound = 500 // shorter than the slow host's computation
	s := New(eng, cfg)
	rec := newRecorder()
	s.AddListener(rec)
	s.Submit(middleware.Batch{ID: "b", Tasks: tasks(1000)})
	s.WorkerJoin(&middleware.Worker{ID: 1, Power: 10}) // result at 100
	s.WorkerJoin(&middleware.Worker{ID: 2, Power: 1})  // result at 1000, past deadline
	eng.Run()
	// At t=500 the slow replica expires and a replacement is created, but
	// no third worker exists to run it (worker 1 already returned a
	// result). The late result at t=1000 still completes the quorum.
	if rec.compTimes[0] != 1000 {
		t.Fatalf("completed at %v, want 1000 (late result accepted)", rec.compTimes[0])
	}
	if rec.completed[0] != 1 {
		t.Fatalf("completed %d times", rec.completed[0])
	}
}

func TestProgressCounters(t *testing.T) {
	eng := sim.NewEngine()
	s := New(eng, DefaultConfig())
	s.Submit(middleware.Batch{ID: "b", Tasks: tasks(100, 100)})
	s.WorkerJoin(&middleware.Worker{ID: 1, Power: 1})
	s.WorkerJoin(&middleware.Worker{ID: 2, Power: 1})
	eng.RunUntil(50)
	p := s.Progress("b")
	// Both workers hold replicas of wu0 (FIFO): wu0 running, wu1 queued.
	if p.Size != 2 || p.Running != 1 || p.Queued != 1 || p.EverAssigned != 1 {
		t.Fatalf("mid progress: %+v", p)
	}
	eng.Run()
	p = s.Progress("b")
	if p.Completed != 2 || p.Running != 0 || p.Queued != 0 {
		t.Fatalf("final progress: %+v", p)
	}
}

func TestDedicatedCloudWorkerMatchmaking(t *testing.T) {
	eng := sim.NewEngine()
	s := New(eng, DefaultConfig())
	s.Submit(middleware.Batch{ID: "other", Tasks: tasks(100)})
	s.Submit(middleware.Batch{ID: "mine", Tasks: tasks(100)})
	s.WorkerJoin(middleware.NewCloudWorker(0, 1, "mine"))
	s.WorkerJoin(middleware.NewCloudWorker(1, 1, "mine"))
	eng.Run()
	if !s.Done("mine") {
		t.Fatal("dedicated batch not completed")
	}
	if s.Done("other") {
		t.Fatal("dedicated workers served a foreign batch")
	}
}

func TestRescheduleExtraReplica(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	cfg.TargetNResults = 2
	cfg.MinQuorum = 2
	s := New(eng, cfg)
	rec := newRecorder()
	s.AddListener(rec)
	s.SetReschedule(true)
	s.Submit(middleware.Batch{ID: "b", Tasks: tasks(10000)})
	s.WorkerJoin(&middleware.Worker{ID: 1, Power: 1}) // finishes at 10000
	s.WorkerJoin(&middleware.Worker{ID: 2, Power: 1}) // finishes at 10000
	eng.At(100, func() {
		// Two cloud workers: no unsent replicas remain, so Reschedule
		// creates extra replicas; two cloud results complete the quorum.
		s.WorkerJoin(middleware.NewCloudWorker(0, 100, "b"))
		s.WorkerJoin(middleware.NewCloudWorker(1, 100, "b"))
	})
	eng.Run()
	if rec.compTimes[0] != 200 {
		t.Fatalf("completed at %v, want 200 (two cloud replicas at t=100+100)", rec.compTimes[0])
	}
}

func TestMarkCompletedSatisfiesQuorum(t *testing.T) {
	eng := sim.NewEngine()
	s := New(eng, DefaultConfig())
	rec := newRecorder()
	s.AddListener(rec)
	s.Submit(middleware.Batch{ID: "b", Tasks: tasks(1000, 1000)})
	s.WorkerJoin(&middleware.Worker{ID: 1, Power: 1})
	s.WorkerJoin(&middleware.Worker{ID: 2, Power: 1})
	eng.At(100, func() { s.MarkCompleted("b", 0) })
	eng.Run()
	if rec.compTimes[0] != 100 {
		t.Fatalf("external completion at %v, want 100", rec.compTimes[0])
	}
	if !s.Done("b") {
		t.Fatal("batch incomplete")
	}
	if rec.completed[0] != 1 || rec.completed[1] != 1 {
		t.Fatalf("completion counts wrong: %v", rec.completed)
	}
}

func TestIncompleteSnapshot(t *testing.T) {
	eng := sim.NewEngine()
	s := New(eng, DefaultConfig())
	s.Submit(middleware.Batch{ID: "b", Tasks: tasks(100, 100, 100)})
	s.WorkerJoin(&middleware.Worker{ID: 1, Power: 1})
	s.WorkerJoin(&middleware.Worker{ID: 2, Power: 1})
	eng.RunUntil(150) // wu0 done at 100
	inc := s.Incomplete("b")
	if len(inc) != 2 {
		t.Fatalf("incomplete = %d, want 2", len(inc))
	}
}

// Churn stress: with a pair of stable workers plus heavy volatile churn,
// every workunit must complete exactly once and every completed workunit
// must have reached quorum through distinct workers.
func TestChurnStressInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		eng := sim.NewEngine()
		cfg := DefaultConfig()
		cfg.DelayBound = 2000
		s := New(eng, cfg)
		rec := newRecorder()
		s.AddListener(rec)
		r := sim.NewRNG(seed)
		n := 10
		specs := make([]bot.Task, n)
		for i := range specs {
			specs[i] = bot.Task{ID: i, NOps: 50 + r.Float64()*300}
		}
		s.Submit(middleware.Batch{ID: "b", Tasks: specs})
		s.WorkerJoin(&middleware.Worker{ID: 1000, Power: 1})
		s.WorkerJoin(&middleware.Worker{ID: 1001, Power: 1.5})
		s.WorkerJoin(&middleware.Worker{ID: 1002, Power: 0.7})
		for i := 0; i < 6; i++ {
			w := &middleware.Worker{ID: i, Power: 0.5 + r.Float64()}
			at := r.Float64() * 500
			dur := 100 + r.Float64()*500
			eng.At(at, func() { s.WorkerJoin(w) })
			eng.At(at+dur, func() { s.WorkerLeave(w) })
		}
		eng.Run()
		if !s.Done("b") {
			return false
		}
		for i := 0; i < n; i++ {
			if rec.completed[i] != 1 {
				return false
			}
		}
		for _, wu := range s.batches["b"].wus {
			if wu.results < s.cfg.MinQuorum {
				return false
			}
			if len(wu.returned) < s.cfg.MinQuorum {
				return false
			}
		}
		p := s.Progress("b")
		return p.Completed == n && p.Running == 0 && p.Queued == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicateBatchPanics(t *testing.T) {
	eng := sim.NewEngine()
	s := New(eng, DefaultConfig())
	s.Submit(middleware.Batch{ID: "b", Tasks: tasks(1)})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Submit did not panic")
		}
	}()
	s.Submit(middleware.Batch{ID: "b", Tasks: tasks(1)})
}

func TestConfigValidation(t *testing.T) {
	eng := sim.NewEngine()
	s := New(eng, Config{})
	if s.cfg.TargetNResults != 3 || s.cfg.MinQuorum != 2 || s.cfg.DelayBound != 86400 {
		t.Fatalf("defaults wrong: %+v", s.cfg)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("quorum > replicas accepted")
		}
	}()
	New(eng, Config{TargetNResults: 2, MinQuorum: 3})
}

func TestMiddlewareName(t *testing.T) {
	if New(sim.NewEngine(), DefaultConfig()).MiddlewareName() != "BOINC" {
		t.Fatal("name wrong")
	}
}
