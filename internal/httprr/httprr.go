// Package httprr implements HTTP record and replay for tests, in the spirit
// of the Go project's internal httprr harness (SNIPPETS.md #3): a
// RoundTripper that, in record mode, forwards requests to a real transport
// and appends each request/response pair to a trace file, and in replay mode
// answers requests from the committed trace with no network at all. External
// middleware adapters (the DG wire clients of internal/emul) are conformance
// tested against recorded real-gateway traffic, so `go test` stays hermetic
// and deterministic while the recordings are regenerated against a live
// server with the -httprecord flag:
//
//	go test ./internal/emul -run Conformance -httprecord '.*'
//
// Matching is by the scrubbed wire dump of the request (method, URL path and
// query, headers, body). The default scrub normalizes the target host — a
// recording made against an ephemeral 127.0.0.1 port replays against any
// base URL — and callers add scrubs for other nondeterminism (dates, tokens)
// with ScrubReq.
package httprr

import (
	"bufio"
	"bytes"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httputil"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
)

var record = flag.String("httprecord", "", "re-record httprr traces for files matching this regexp (tests only)")

// traceHeader is the first line of every trace file; a version bump means
// the entry format changed.
const traceHeader = "httprr trace v1"

// hostPlaceholder replaces the live server's ephemeral host:port in
// recordings so replays are independent of the base URL used at record time.
const hostPlaceholder = "spequlos.rr"

// RecordReplay is an http.RoundTripper that either records traffic to a
// trace file or replays it. Safe for concurrent use.
type RecordReplay struct {
	file string
	real http.RoundTripper // underlying transport in record mode

	mu        sync.Mutex
	recording bool
	scrubs    []func(*http.Request) error
	entries   []entry           // record mode: pairs to flush on Close
	replay    map[string][]byte // replay mode: request dump → response dump
	closed    bool
}

type entry struct {
	req, resp []byte
}

// Open opens the trace file for replay, or for recording when the
// -httprecord flag matches it. Replaying a file that does not exist is an
// error telling the caller how to record it.
func Open(file string, rt http.RoundTripper) (*RecordReplay, error) {
	rr := &RecordReplay{file: file, real: rt}
	rr.scrubs = append(rr.scrubs, scrubHost)
	if *record != "" {
		re, err := regexp.Compile(*record)
		if err != nil {
			return nil, fmt.Errorf("httprr: bad -httprecord regexp: %w", err)
		}
		if re.MatchString(file) {
			rr.recording = true
			return rr, nil
		}
	}
	data, err := os.ReadFile(file)
	if err != nil {
		return nil, fmt.Errorf("httprr: no trace %s (record it with -httprecord '.*'): %w", file, err)
	}
	replay, err := parseTrace(data)
	if err != nil {
		return nil, fmt.Errorf("httprr: %s: %w", file, err)
	}
	rr.replay = replay
	return rr, nil
}

// Recording reports whether the harness records live traffic (true) or
// replays the committed trace (false).
func (rr *RecordReplay) Recording() bool { return rr.recording }

// ScrubReq adds request scrubbing functions applied — to a deep copy, in
// order, at both record and replay time — before the request is matched
// against the trace. Use them to strip nondeterministic headers or body
// fields so recordings stay stable.
func (rr *RecordReplay) ScrubReq(fns ...func(*http.Request) error) {
	rr.mu.Lock()
	defer rr.mu.Unlock()
	rr.scrubs = append(rr.scrubs, fns...)
}

// Client returns an http.Client using the RecordReplay as its transport.
func (rr *RecordReplay) Client() *http.Client { return &http.Client{Transport: rr} }

// RoundTrip implements http.RoundTripper: in record mode it forwards to the
// real transport and stores the exchange; in replay mode it answers from the
// trace, failing with a descriptive error on an unrecorded request.
func (rr *RecordReplay) RoundTrip(req *http.Request) (*http.Response, error) {
	key, body, err := rr.requestKey(req)
	if err != nil {
		return nil, err
	}
	if !rr.recording {
		rr.mu.Lock()
		respBytes, ok := rr.replay[key]
		rr.mu.Unlock()
		if !ok {
			return nil, fmt.Errorf("httprr: request not in trace %s:\n%s", rr.file, key)
		}
		return http.ReadResponse(bufio.NewReader(bytes.NewReader(respBytes)), req)
	}
	// Record: replace the consumed body, forward, capture the response.
	if body != nil {
		req.Body = io.NopCloser(bytes.NewReader(body))
	}
	resp, err := rr.real.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	respBody, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	resp.Body = io.NopCloser(bytes.NewReader(respBody))
	respDump, err := httputil.DumpResponse(resp, true)
	if err != nil {
		return nil, err
	}
	rr.mu.Lock()
	rr.entries = append(rr.entries, entry{req: []byte(key), resp: respDump})
	rr.mu.Unlock()
	resp.Body = io.NopCloser(bytes.NewReader(respBody))
	return resp, nil
}

// requestKey scrubs a copy of the request and returns its canonical wire
// dump plus the original body bytes (so record mode can restore them).
func (rr *RecordReplay) requestKey(req *http.Request) (key string, body []byte, err error) {
	if req.Body != nil {
		body, err = io.ReadAll(req.Body)
		req.Body.Close()
		if err != nil {
			return "", nil, err
		}
	}
	creq := req.Clone(req.Context())
	if body != nil {
		creq.Body = io.NopCloser(bytes.NewReader(body))
		creq.ContentLength = int64(len(body))
	}
	rr.mu.Lock()
	scrubs := rr.scrubs
	rr.mu.Unlock()
	for _, fn := range scrubs {
		if err := fn(creq); err != nil {
			return "", nil, err
		}
	}
	dump, err := httputil.DumpRequestOut(creq, true)
	if err != nil {
		return "", nil, err
	}
	return string(dump), body, nil
}

// Close flushes the trace file in record mode (atomically: temp file +
// rename); in replay mode it is a no-op. Closing twice is an error.
func (rr *RecordReplay) Close() error {
	rr.mu.Lock()
	defer rr.mu.Unlock()
	if rr.closed {
		return fmt.Errorf("httprr: %s already closed", rr.file)
	}
	rr.closed = true
	if !rr.recording {
		return nil
	}
	var buf bytes.Buffer
	buf.WriteString(traceHeader + "\n")
	for _, e := range rr.entries {
		fmt.Fprintf(&buf, "%d %d\n", len(e.req), len(e.resp))
		buf.Write(e.req)
		buf.Write(e.resp)
	}
	if err := os.MkdirAll(filepath.Dir(rr.file), 0o755); err != nil {
		return err
	}
	tmp := rr.file + ".tmp"
	if err := os.WriteFile(tmp, buf.Bytes(), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, rr.file)
}

// parseTrace decodes a trace file into the replay map. Later entries for an
// identical request win, matching record-mode behavior where a repeated
// request observes the server's latest state.
func parseTrace(data []byte) (map[string][]byte, error) {
	line, rest, ok := bytes.Cut(data, []byte("\n"))
	if !ok || string(line) != traceHeader {
		return nil, fmt.Errorf("not an %s file", traceHeader)
	}
	replay := map[string][]byte{}
	for len(rest) > 0 {
		line, body, ok := bytes.Cut(rest, []byte("\n"))
		if !ok {
			return nil, fmt.Errorf("truncated entry header")
		}
		fields := strings.Fields(string(line))
		if len(fields) != 2 {
			return nil, fmt.Errorf("bad entry header %q", line)
		}
		nreq, err1 := strconv.Atoi(fields[0])
		nresp, err2 := strconv.Atoi(fields[1])
		if err1 != nil || err2 != nil || nreq < 0 || nresp < 0 || nreq+nresp > len(body) {
			return nil, fmt.Errorf("bad entry header %q", line)
		}
		replay[string(body[:nreq])] = body[nreq : nreq+nresp]
		rest = body[nreq+nresp:]
	}
	return replay, nil
}

// scrubHost is the default scrub: it replaces the request's target host with
// a fixed placeholder so the ephemeral port of a record-time test server
// never lands in the trace.
func scrubHost(req *http.Request) error {
	req.URL.Scheme = "http"
	req.URL.Host = hostPlaceholder
	req.Host = ""
	return nil
}
