package httprr

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
)

// startServer serves a tiny JSON API whose responses depend on method, path
// and body — enough surface to prove matching is faithful.
func startServer(t *testing.T) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		body, _ := io.ReadAll(r.Body)
		w.Header().Set("Content-Type", "application/json")
		if r.URL.Path == "/missing" {
			w.WriteHeader(http.StatusNotFound)
			fmt.Fprintf(w, `{"error":"no route"}`)
			return
		}
		fmt.Fprintf(w, `{"method":%q,"path":%q,"body":%q}`, r.Method, r.URL.Path, body)
	}))
	t.Cleanup(srv.Close)
	return srv, &hits
}

// driveClient issues the exchange sequence under test and returns every
// response body in order.
func driveClient(t *testing.T, base string, c *http.Client) []string {
	t.Helper()
	var out []string
	get := func(path string) {
		resp, err := c.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		out = append(out, fmt.Sprintf("%d %s", resp.StatusCode, b))
	}
	get("/a")
	resp, err := c.Post(base+"/orders", "application/json", strings.NewReader(`{"id":"b1"}`))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	out = append(out, fmt.Sprintf("%d %s", resp.StatusCode, b))
	get("/missing")
	get("/a") // repeated request must replay too
	return out
}

// TestRecordThenReplay records a session against a live server, then proves
// the committed trace reproduces it byte for byte with the server gone.
func TestRecordThenReplay(t *testing.T) {
	file := filepath.Join(t.TempDir(), "session.httprr")
	srv, hits := startServer(t)

	rr := &RecordReplay{file: file, real: http.DefaultTransport, recording: true}
	rr.scrubs = append(rr.scrubs, scrubHost)
	recorded := driveClient(t, srv.URL, rr.Client())
	if err := rr.Close(); err != nil {
		t.Fatal(err)
	}
	if hits.Load() == 0 {
		t.Fatal("record mode never reached the live server")
	}
	srv.Close()
	before := hits.Load()

	// Replay: any base URL works (the default scrub normalized the host),
	// and the dead server must not be touched.
	rp, err := Open(file, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rp.Recording() {
		t.Fatal("replay trace opened in record mode")
	}
	replayed := driveClient(t, "http://replay.invalid", rp.Client())
	if err := rp.Close(); err != nil {
		t.Fatal(err)
	}
	if hits.Load() != before {
		t.Fatal("replay touched the live server")
	}
	if len(recorded) != len(replayed) {
		t.Fatalf("recorded %d exchanges, replayed %d", len(recorded), len(replayed))
	}
	for i := range recorded {
		if recorded[i] != replayed[i] {
			t.Errorf("exchange %d: recorded %q, replayed %q", i, recorded[i], replayed[i])
		}
	}
}

// TestReplayUnrecordedRequestFails pins the failure mode: a request absent
// from the trace is a descriptive error, not a silent pass.
func TestReplayUnrecordedRequestFails(t *testing.T) {
	file := filepath.Join(t.TempDir(), "session.httprr")
	srv, _ := startServer(t)
	rr := &RecordReplay{file: file, real: http.DefaultTransport, recording: true}
	rr.scrubs = append(rr.scrubs, scrubHost)
	if _, err := rr.Client().Get(srv.URL + "/a"); err != nil {
		t.Fatal(err)
	}
	if err := rr.Close(); err != nil {
		t.Fatal(err)
	}

	rp, err := Open(file, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer rp.Close()
	if _, err := rp.Client().Get("http://replay.invalid/never-recorded"); err == nil {
		t.Fatal("unrecorded request replayed without error")
	} else if !strings.Contains(err.Error(), "not in trace") {
		t.Fatalf("unhelpful error: %v", err)
	}
}

// TestOpenMissingTrace pins the error message pointing at -httprecord.
func TestOpenMissingTrace(t *testing.T) {
	_, err := Open(filepath.Join(t.TempDir(), "ghost.httprr"), nil)
	if err == nil || !strings.Contains(err.Error(), "-httprecord") {
		t.Fatalf("missing-trace error %v does not mention -httprecord", err)
	}
}

// TestScrubReq proves custom scrubs shape the match key: a header that
// differs per run is stripped on both sides, so replay still matches.
func TestScrubReq(t *testing.T) {
	file := filepath.Join(t.TempDir(), "session.httprr")
	srv, _ := startServer(t)
	scrub := func(req *http.Request) error {
		req.Header.Del("X-Run-Nonce")
		return nil
	}

	rr := &RecordReplay{file: file, real: http.DefaultTransport, recording: true}
	rr.scrubs = append(rr.scrubs, scrubHost)
	rr.ScrubReq(scrub)
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/a", nil)
	req.Header.Set("X-Run-Nonce", "record-time")
	if _, err := rr.Client().Do(req); err != nil {
		t.Fatal(err)
	}
	if err := rr.Close(); err != nil {
		t.Fatal(err)
	}

	rp, err := Open(file, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer rp.Close()
	rp.ScrubReq(scrub)
	req2, _ := http.NewRequest(http.MethodGet, "http://replay.invalid/a", nil)
	req2.Header.Set("X-Run-Nonce", "replay-time")
	resp, err := rp.Client().Do(req2)
	if err != nil {
		t.Fatalf("scrubbed request did not match: %v", err)
	}
	resp.Body.Close()
}

// TestParseTraceRejectsGarbage covers the corrupt-file surface.
func TestParseTraceRejectsGarbage(t *testing.T) {
	for _, data := range []string{
		"",
		"not a trace\n",
		traceHeader + "\n5\n",
		traceHeader + "\n5 5\nabc",
		traceHeader + "\n-1 2\nabc",
	} {
		if _, err := parseTrace([]byte(data)); err == nil {
			t.Errorf("parseTrace accepted %q", data)
		}
	}
}

// TestOpenRecordFlag proves the -httprecord regexp routes matching files to
// record mode without requiring the file to exist.
func TestOpenRecordFlag(t *testing.T) {
	old := *record
	*record = `\.httprr$`
	defer func() { *record = old }()
	file := filepath.Join(t.TempDir(), "fresh.httprr")
	rr, err := Open(file, http.DefaultTransport)
	if err != nil {
		t.Fatal(err)
	}
	if !rr.Recording() {
		t.Fatal("matching file not in record mode")
	}
	if err := rr.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(file); err != nil {
		t.Fatalf("record-mode Close wrote no trace: %v", err)
	}
}
