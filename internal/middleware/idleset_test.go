package middleware

import (
	"math/rand"
	"testing"
)

// cloudRecount counts idle cloud workers by scanning the membership — the
// ground truth CloudCount must track.
func cloudRecount(s *IdleSet) int {
	n := 0
	s.Each(func(w *Worker) bool {
		if w.Cloud {
			n++
		}
		return true
	})
	return n
}

// Regression: a worker whose Cloud flag differs between Add and Remove must
// not drift the counter. Before the fix, Remove read the live flag: an
// add-as-node/remove-as-cloud pair drove the counter negative and corrupted
// the accounting for every other worker.
func TestIdleSetCloudFlagFlipBetweenAddAndRemove(t *testing.T) {
	s := NewIdleSet()
	w := &Worker{ID: 1, Power: 1}

	s.Add(w) // recorded as non-cloud
	w.Cloud = true
	s.Remove(w)
	if s.CloudCount() != 0 {
		t.Fatalf("CloudCount = %d after node-in/cloud-out, want 0", s.CloudCount())
	}

	s.Add(w) // recorded as cloud
	if s.CloudCount() != 1 {
		t.Fatalf("CloudCount = %d with one idle cloud worker, want 1", s.CloudCount())
	}
	w.Cloud = false
	s.Remove(w)
	if s.CloudCount() != 0 {
		t.Fatalf("CloudCount = %d after cloud-in/node-out, want 0", s.CloudCount())
	}

	// The drift of one worker must not poison another's accounting.
	c := &Worker{ID: 2, Power: 1, Cloud: true}
	s.Add(c)
	if s.CloudCount() != 1 || cloudRecount(s) != 1 {
		t.Fatalf("CloudCount = %d (recount %d) after unrelated churn, want 1",
			s.CloudCount(), cloudRecount(s))
	}
}

// Property: under random Add/Remove/flip sequences, CloudCount always
// equals the number of idle cloud workers. Flips happen while a worker is
// out of the set — in the simulators a worker's Cloud identity never
// changes while it is idle (it is fixed at construction); the historical
// drift came exactly from flags changing between membership spells.
func TestIdleSetCloudCountProperty(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		r := rand.New(rand.NewSource(seed))
		s := NewIdleSet()
		workers := make([]*Worker, 30)
		for i := range workers {
			workers[i] = &Worker{ID: i, Power: 1, Cloud: r.Intn(2) == 0}
		}
		for op := 0; op < 2000; op++ {
			w := workers[r.Intn(len(workers))]
			switch r.Intn(3) {
			case 0:
				s.Add(w)
			case 1:
				s.Remove(w)
			default:
				if !s.Contains(w) {
					w.Cloud = !w.Cloud
				}
			}
			if got, want := s.CloudCount(), cloudRecount(s); got != want {
				t.Fatalf("seed %d op %d: CloudCount = %d, idle cloud workers = %d",
					seed, op, got, want)
			}
			if s.CloudCount() < 0 || s.CloudCount() > s.Len() {
				t.Fatalf("seed %d op %d: CloudCount %d outside [0,%d]", seed, op, s.CloudCount(), s.Len())
			}
		}
		// Drain and confirm the counter lands exactly at zero.
		for _, w := range workers {
			s.Remove(w)
		}
		if s.CloudCount() != 0 || s.Len() != 0 {
			t.Fatalf("seed %d: drained set has CloudCount=%d Len=%d", seed, s.CloudCount(), s.Len())
		}
	}
}

// Even with flips at arbitrary instants (including mid-membership), the
// counter must follow the membership records: never negative, never above
// Len, and exact again once flips quiesce at Remove/Add boundaries.
func TestIdleSetCloudCountNeverDriftsUnderArbitraryFlips(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	s := NewIdleSet()
	workers := make([]*Worker, 10)
	for i := range workers {
		workers[i] = &Worker{ID: i, Power: 1}
	}
	for op := 0; op < 5000; op++ {
		w := workers[r.Intn(len(workers))]
		switch r.Intn(3) {
		case 0:
			s.Add(w)
		case 1:
			s.Remove(w)
		default:
			w.Cloud = !w.Cloud // anywhere, even while idle
		}
		if s.CloudCount() < 0 || s.CloudCount() > s.Len() {
			t.Fatalf("op %d: CloudCount %d outside [0,%d]", op, s.CloudCount(), s.Len())
		}
	}
	for _, w := range workers {
		s.Remove(w)
	}
	if s.CloudCount() != 0 {
		t.Fatalf("CloudCount = %d after removing every worker, want 0", s.CloudCount())
	}
}

func TestIdleSetEachReusesScratchAndSupportsMutation(t *testing.T) {
	s := NewIdleSet()
	for i := 0; i < 16; i++ {
		s.Add(&Worker{ID: i, Power: 1})
	}
	// Mutating inside Each must be safe (snapshot semantics).
	s.Each(func(w *Worker) bool {
		s.Remove(w)
		s.Add(&Worker{ID: w.ID + 100, Power: 1})
		return true
	})
	if s.Len() != 16 {
		t.Fatalf("Len = %d after replace-all iteration, want 16", s.Len())
	}
	allocs := testing.AllocsPerRun(50, func() {
		s.Each(func(*Worker) bool { return true })
	})
	if allocs > 0 {
		t.Fatalf("Each allocates %.1f objects per scan in steady state, want 0", allocs)
	}
	// Re-entrant iteration still sees a stable snapshot.
	count := 0
	s.Each(func(*Worker) bool {
		s.Each(func(*Worker) bool { count++; return true })
		return false
	})
	if count != 16 {
		t.Fatalf("nested Each visited %d workers, want 16", count)
	}
}
