// Package middleware defines the shared model of Desktop Grid middleware
// (§2.2 of the paper): a server that schedules tasks, workers that pull and
// execute them, and the progress counters SpeQuloS monitors. The two
// concrete middleware — BOINC (internal/boinc) and XtremWeb-HEP
// (internal/xwhep) — implement the Server interface with their respective
// volatility-handling mechanisms (replication + deadlines vs heartbeats).
package middleware

import (
	"spequlos/internal/bot"
)

// Worker is a computing resource attached to a server. Node workers are
// created by the trace binding; Cloud workers by the SpeQuloS Scheduler.
type Worker struct {
	ID    int
	Power float64 // instructions per second
	Cloud bool
	// DedicatedBatch restricts the tasks the worker may receive to one
	// QoS-enabled batch (batchid in BOINC, xwgroup in XWHEP; §3.7). Empty
	// means the worker competes for any task (the Flat strategy).
	DedicatedBatch string
}

// cloudWorkerIDBase keeps cloud worker IDs disjoint from trace node IDs.
const cloudWorkerIDBase = 1 << 30

// NewCloudWorker builds a cloud worker with an ID in the reserved range.
func NewCloudWorker(seq int, power float64, batchID string) *Worker {
	return &Worker{ID: cloudWorkerIDBase + seq, Power: power, Cloud: true, DedicatedBatch: batchID}
}

// Batch is a bag of tasks as submitted to a middleware server. Arrival
// offsets in the tasks are relative to the submission instant.
type Batch struct {
	ID            string
	WallClockTime float64
	Tasks         []bot.Task
}

// BatchFromBoT converts a generated workload into a submittable batch.
func BatchFromBoT(b *bot.BoT) Batch {
	return Batch{ID: b.ID, WallClockTime: b.WallClockTime, Tasks: b.Tasks}
}

// Progress is the server-side view of one batch, the only information
// SpeQuloS needs (§3.2: "Because we monitor the BoT execution progress, a
// single QoS mechanism can be applied to a variety of infrastructures").
type Progress struct {
	Size         int // total tasks in the batch
	Arrived      int // tasks submitted so far
	Completed    int // tasks completed
	EverAssigned int // tasks assigned to a worker at least once (monotone)
	Running      int // tasks the server believes are executing
	Queued       int // tasks waiting for a worker
	Workers      int // workers currently attached to the server
}

// Done reports whether every task completed.
func (p Progress) Done() bool { return p.Size > 0 && p.Completed >= p.Size }

// CompletedFraction returns Completed/Size (0 for an empty batch).
func (p Progress) CompletedFraction() float64 {
	if p.Size == 0 {
		return 0
	}
	return float64(p.Completed) / float64(p.Size)
}

// AssignedFraction returns EverAssigned/Size (0 for an empty batch).
func (p Progress) AssignedFraction() float64 {
	if p.Size == 0 {
		return 0
	}
	return float64(p.EverAssigned) / float64(p.Size)
}

// Listener observes task lifecycle events. Implementations must not block;
// they run inside the simulation loop.
type Listener interface {
	// TaskAssigned fires on a task's first assignment to any worker.
	TaskAssigned(batchID string, taskID int, at float64)
	// TaskCompleted fires once per task, when its result is accepted.
	TaskCompleted(batchID string, taskID int, at float64)
	// BatchCompleted fires when the last task of a batch completes.
	BatchCompleted(batchID string, at float64)
}

// WorkerObserver is an optional extension of Listener: servers notify it of
// which worker's result completed each task (nil for externally-merged
// results), enabling per-resource accounting such as Table 5's "tasks
// assigned by SpeQuloS to StratusLab and EC2".
type WorkerObserver interface {
	TaskExecutedBy(batchID string, taskID int, w *Worker, at float64)
}

// Listeners fans events out to multiple listeners.
type Listeners []Listener

// TaskAssigned implements Listener by fan-out.
func (ls Listeners) TaskAssigned(b string, t int, at float64) {
	for _, l := range ls {
		l.TaskAssigned(b, t, at)
	}
}

// TaskCompleted implements Listener by fan-out.
func (ls Listeners) TaskCompleted(b string, t int, at float64) {
	for _, l := range ls {
		l.TaskCompleted(b, t, at)
	}
}

// BatchCompleted implements Listener by fan-out.
func (ls Listeners) BatchCompleted(b string, at float64) {
	for _, l := range ls {
		l.BatchCompleted(b, at)
	}
}

// NotifyExecutedBy invokes TaskExecutedBy on listeners that observe workers.
func (ls Listeners) NotifyExecutedBy(b string, t int, w *Worker, at float64) {
	for _, l := range ls {
		if o, ok := l.(WorkerObserver); ok {
			o.TaskExecutedBy(b, t, w, at)
		}
	}
}

// BatchProgressor is an optional Server extension: one call returns the
// progress of many batches at once. The SpeQuloS monitor loop uses it to
// poll a server that hosts hundreds of concurrent QoS batches with a single
// aggregated query per tick instead of one round-trip per batch — the same
// batching lever BOINC's server-side scheduler applies at fleet scale.
// Implementations must return the same values per-batch Progress calls
// would at the same instant. The in-process simulators don't implement it —
// for them ProgressAll's fallback loop costs the same as a method call —
// it exists for servers where a round-trip has a price: the emulation
// gateway (POST /progress-batch) and remote DG status adapters.
type BatchProgressor interface {
	// ProgressBatch returns the current view of every named batch, keyed
	// by batch ID. Unknown IDs map to a zero Progress, mirroring Progress.
	ProgressBatch(batchIDs []string) map[string]Progress
}

// ProgressAll answers an aggregated progress query against any server:
// through one ProgressBatch call when the server supports it, falling back
// to per-batch Progress calls otherwise.
func ProgressAll(s Server, batchIDs []string) map[string]Progress {
	if bp, ok := s.(BatchProgressor); ok {
		return bp.ProgressBatch(batchIDs)
	}
	out := make(map[string]Progress, len(batchIDs))
	for _, id := range batchIDs {
		out[id] = s.Progress(id)
	}
	return out
}

// TaskMover is an optional Server extension enabling intra-batch pool
// partitioning: the sharded kernel splits one batch across several part
// servers (see Partitioned) and hands queued work between them at
// barriers. Only never-assigned tasks move — they carry no middleware
// state (no replicas, heartbeats or checkpoints), so extraction and
// re-submission are exact for every middleware.
type TaskMover interface {
	// IdleWorkers returns the number of attached workers currently holding
	// no assignment — the partition's hunger signal.
	IdleWorkers() int
	// QueuedFree returns the number of queued, never-assigned tasks of the
	// batch: the tasks TakeQueued may extract.
	QueuedFree(batchID string) int
	// TakeQueued extracts up to n queued, never-assigned tasks from the
	// batch and returns their specs with arrival offsets zeroed (the tasks
	// have already arrived). The tasks stop counting toward this server's
	// view of the batch.
	TakeQueued(batchID string, n int) []bot.Task
	// AddTasks appends already-arrived task specs to an existing batch and
	// dispatches them immediately.
	AddTasks(batchID string, tasks []bot.Task)
}

// Server is the middleware-neutral surface consumed by the trace binding,
// the SpeQuloS Scheduler and the experiment harness.
type Server interface {
	// MiddlewareName identifies the middleware ("BOINC", "XWHEP").
	MiddlewareName() string
	// Submit registers a batch; task arrivals are scheduled relative to
	// the current virtual time.
	Submit(b Batch)
	// WorkerJoin attaches a worker; it immediately becomes eligible for
	// work. Joining an already-attached worker is a no-op.
	WorkerJoin(w *Worker)
	// WorkerLeave detaches a worker. Its in-flight computation is lost;
	// the server only finds out through its own failure-detection
	// mechanism (heartbeat timeout or replica deadline).
	WorkerLeave(w *Worker)
	// Progress returns the current view of a batch.
	Progress(batchID string) Progress
	// Done reports whether a batch has fully completed.
	Done(batchID string) bool
	// Incomplete snapshots the specs of not-yet-completed tasks (used by
	// the Cloud Duplication strategy to mirror the tail onto a cloud
	// server).
	Incomplete(batchID string) []bot.Task
	// MarkCompleted records an externally-computed result for a task
	// (result merging in Cloud Duplication). Unknown IDs are ignored.
	MarkCompleted(batchID string, taskID int)
	// WorkerBusy reports whether the worker currently holds an
	// assignment. The SpeQuloS Scheduler uses it to stop idle cloud
	// workers under the Greedy provisioning strategy.
	WorkerBusy(w *Worker) bool
	// SetReschedule enables the Reschedule cloud deployment strategy:
	// dedicated cloud workers with no pending work receive duplicates of
	// running tasks (§3.5). This models the DG-server patch the paper
	// describes.
	SetReschedule(enabled bool)
	// AddListener subscribes to task lifecycle events.
	AddListener(l Listener)
}
