package middleware

import (
	"fmt"

	"spequlos/internal/bot"
	"spequlos/internal/sim"
)

// Partitioned composes several part servers — one per worker-pool
// partition, each typically hosted on a shard engine of a sim.Sharded
// kernel — into one middleware.Server, so a single BoT can run multi-core.
//
// Responsibilities are split by execution phase:
//
//   - During parallel windows, each part schedules its own sub-batch
//     against its own slice of the worker pool; a per-part tap records
//     every task event in the part's barrier-exchange outbox.
//   - At barriers, the kernel replays the merged event stream on the
//     control engine: the composite maintains batch-level completion
//     counters there and fans the events out to its own listeners
//     (SpeQuloS service, campaign recorder) at their exact virtual times.
//   - Control-side calls (Progress, Incomplete, MarkCompleted, cloud
//     WorkerJoin) happen only at barriers, when every shard clock is
//     parked, so they delegate to the parts directly.
//   - A barrier reduction hook rebalances queued work: partitions whose
//     workers idle while holding no free tasks receive never-assigned
//     queued tasks from partitions that have them (TaskMover hand-off), in
//     deterministic partition order.
//
// Tasks are split round-robin across parts at Submit and cloud workers are
// routed by worker ID, so the composite's behavior is a pure function of
// the partition count — never of the kernel's shard count.
type Partitioned struct {
	kernel *sim.Sharded
	parts  []Server
	movers []TaskMover

	topicAssigned  sim.Topic
	topicCompleted sim.Topic
	topicExecuted  sim.Topic

	listeners  Listeners
	batches    map[string]*partBatch
	order      []string
	reschedule bool

	// idleScratch/freeScratch back the rebalance hook's per-barrier
	// snapshots, reused so a barrier allocates nothing.
	idleScratch []int
	freeScratch []int
}

// partBatch is the composite's control-side view of one batch.
type partBatch struct {
	id        string
	size      int
	completed int
	done      bool
	// owner maps task ID to the part currently holding the task; rebalance
	// moves update it, MarkCompleted routes through it.
	owner map[int]int
}

// NewPartitioned builds a partitioned composite over the given part
// servers. Every part must implement TaskMover for the barrier rebalance
// hook (all in-tree middlewares do); the composite registers its exchange
// topics, one outbox per part (in part order — the deterministic merge
// tie-break), and the rebalance reduction on the kernel.
func NewPartitioned(kernel *sim.Sharded, parts []Server) *Partitioned {
	if len(parts) == 0 {
		panic("middleware: NewPartitioned needs at least one part server")
	}
	p := &Partitioned{
		kernel:      kernel,
		parts:       parts,
		batches:     map[string]*partBatch{},
		idleScratch: make([]int, len(parts)),
		freeScratch: make([]int, len(parts)),
	}
	for i, part := range parts {
		m, ok := part.(TaskMover)
		if !ok {
			panic(fmt.Sprintf("middleware: partitioned part %d (%s) does not implement TaskMover", i, part.MiddlewareName()))
		}
		p.movers = append(p.movers, m)
	}
	p.topicAssigned = kernel.RegisterTopic(p.onAssigned)
	p.topicCompleted = kernel.RegisterTopic(p.onCompleted)
	p.topicExecuted = kernel.RegisterTopic(p.onExecuted)
	for i, part := range parts {
		part.AddListener(&partTap{p: p, ob: kernel.NewOutbox(), part: i})
	}
	kernel.OnBarrier(p.rebalance)
	return p
}

// partTap records one part's task events into its barrier-exchange outbox.
// It runs on the part's shard goroutine during windows, so it must only
// touch the outbox — the composite's state is control-side.
type partTap struct {
	p    *Partitioned
	ob   *sim.Outbox
	part int
}

// TaskAssigned implements Listener by posting into the part's outbox.
func (t *partTap) TaskAssigned(batchID string, taskID int, at float64) {
	t.ob.Post(sim.Msg{Time: at, Topic: t.p.topicAssigned, I: int32(taskID), S: batchID})
}

// TaskCompleted implements Listener by posting into the part's outbox.
func (t *partTap) TaskCompleted(batchID string, taskID int, at float64) {
	t.ob.Post(sim.Msg{Time: at, Topic: t.p.topicCompleted, I: int32(taskID), S: batchID})
}

// BatchCompleted implements Listener. Part-level completion means one
// sub-batch drained; the composite derives whole-batch completion from its
// own counters, so this is a no-op.
func (t *partTap) BatchCompleted(string, float64) {}

// TaskExecutedBy implements WorkerObserver by posting into the outbox.
func (t *partTap) TaskExecutedBy(batchID string, taskID int, w *Worker, at float64) {
	t.ob.Post(sim.Msg{Time: at, Topic: t.p.topicExecuted, I: int32(taskID), S: batchID, A: w})
}

// onAssigned replays a part's TaskAssigned event on the control engine.
func (p *Partitioned) onAssigned(m sim.Msg) {
	p.listeners.TaskAssigned(m.S, int(m.I), float64(m.Time))
}

// onCompleted replays a part's TaskCompleted event, maintains the
// batch-level completion counter, and fires the composite BatchCompleted
// when the last task of the whole batch completes.
func (p *Partitioned) onCompleted(m sim.Msg) {
	p.listeners.TaskCompleted(m.S, int(m.I), float64(m.Time))
	pb := p.batches[m.S]
	if pb == nil {
		return
	}
	pb.completed++
	if pb.completed >= pb.size && !pb.done {
		pb.done = true
		p.listeners.BatchCompleted(m.S, float64(m.Time))
	}
}

// onExecuted replays a part's TaskExecutedBy observation.
func (p *Partitioned) onExecuted(m sim.Msg) {
	w, _ := m.A.(*Worker)
	p.listeners.NotifyExecutedBy(m.S, int(m.I), w, float64(m.Time))
}

// rebalance is the composite's barrier reduction: for every live batch it
// snapshots each part's idle workers and free queued tasks, then moves
// never-assigned queued tasks from parts that have spares to parts whose
// workers idle empty-handed. Parts are visited in index order and the
// hand-off volume is capped by the receiver's idle count, so the reduction
// is deterministic and cannot ping-pong (a part holding free tasks is a
// donor, never hungry).
func (p *Partitioned) rebalance(now sim.Time) {
	for _, id := range p.order {
		pb := p.batches[id]
		if pb.done {
			continue
		}
		idle, free := p.idleScratch, p.freeScratch
		total := 0
		for i, m := range p.movers {
			idle[i] = m.IdleWorkers()
			free[i] = m.QueuedFree(id)
			total += free[i]
		}
		if total == 0 {
			continue
		}
		for h := range p.parts {
			if idle[h] == 0 || free[h] > 0 {
				continue
			}
			want := idle[h]
			for d := range p.parts {
				if want == 0 {
					break
				}
				if d == h || free[d] == 0 {
					continue
				}
				n := want
				if n > free[d] {
					n = free[d]
				}
				moved := p.movers[d].TakeQueued(id, n)
				free[d] -= len(moved)
				want -= len(moved)
				for _, spec := range moved {
					pb.owner[spec.ID] = h
				}
				p.movers[h].AddTasks(id, moved)
			}
		}
	}
}

// partFor routes a dynamically attached (cloud) worker onto a part. Trace
// node workers never pass through here — the campaign binds each trace
// partition directly to its part server.
func (p *Partitioned) partFor(w *Worker) Server {
	i := w.ID % len(p.parts)
	if i < 0 {
		i += len(p.parts)
	}
	return p.parts[i]
}

// MiddlewareName implements Server.
func (p *Partitioned) MiddlewareName() string { return p.parts[0].MiddlewareName() }

// Submit implements Server: the batch is split round-robin into one
// sub-batch per part (possibly empty — an empty sub-batch never completes
// on its own, which is fine because whole-batch completion is derived from
// the composite's counters).
func (p *Partitioned) Submit(b Batch) {
	if _, ok := p.batches[b.ID]; ok {
		panic(fmt.Sprintf("middleware: duplicate partitioned batch %q", b.ID))
	}
	pb := &partBatch{id: b.ID, size: len(b.Tasks), owner: make(map[int]int, len(b.Tasks))}
	p.batches[b.ID] = pb
	p.order = append(p.order, b.ID)
	n := len(p.parts)
	subs := make([][]bot.Task, n)
	for i, t := range b.Tasks {
		w := i % n
		subs[w] = append(subs[w], t)
		pb.owner[t.ID] = w
	}
	for i, part := range p.parts {
		part.Submit(Batch{ID: b.ID, WallClockTime: b.WallClockTime, Tasks: subs[i]})
	}
}

// WorkerJoin implements Server by routing the worker onto its part.
func (p *Partitioned) WorkerJoin(w *Worker) { p.partFor(w).WorkerJoin(w) }

// WorkerLeave implements Server by routing the worker onto its part.
func (p *Partitioned) WorkerLeave(w *Worker) { p.partFor(w).WorkerLeave(w) }

// WorkerBusy implements Server by asking the worker's part.
func (p *Partitioned) WorkerBusy(w *Worker) bool { return p.partFor(w).WorkerBusy(w) }

// Progress implements Server by aggregating the parts' views. Only called
// at barriers (monitor tick, campaign sampling), when part state is
// stable.
func (p *Partitioned) Progress(batchID string) Progress {
	var out Progress
	for _, part := range p.parts {
		pr := part.Progress(batchID)
		out.Size += pr.Size
		out.Arrived += pr.Arrived
		out.Completed += pr.Completed
		out.EverAssigned += pr.EverAssigned
		out.Running += pr.Running
		out.Queued += pr.Queued
		out.Workers += pr.Workers
	}
	return out
}

// Done implements Server using the composite's barrier-replayed counter.
func (p *Partitioned) Done(batchID string) bool {
	pb := p.batches[batchID]
	return pb != nil && pb.done
}

// Incomplete implements Server by concatenating the parts' tails in part
// order (deterministic at any shard count).
func (p *Partitioned) Incomplete(batchID string) []bot.Task {
	var out []bot.Task
	for _, part := range p.parts {
		out = append(out, part.Incomplete(batchID)...)
	}
	return out
}

// MarkCompleted implements Server by routing through the owner map, so a
// task completes on whichever part currently holds it — including after
// barrier rebalances moved it.
func (p *Partitioned) MarkCompleted(batchID string, taskID int) {
	pb := p.batches[batchID]
	if pb == nil {
		return
	}
	if i, ok := pb.owner[taskID]; ok {
		p.parts[i].MarkCompleted(batchID, taskID)
	}
}

// SetReschedule implements Server by forwarding to every part.
func (p *Partitioned) SetReschedule(enabled bool) {
	p.reschedule = enabled
	for _, part := range p.parts {
		part.SetReschedule(enabled)
	}
}

// AddListener implements Server. Listeners observe the barrier-replayed
// event stream: exact virtual times, deterministic order, one barrier of
// latency.
func (p *Partitioned) AddListener(l Listener) { p.listeners = append(p.listeners, l) }

var _ Server = (*Partitioned)(nil)
