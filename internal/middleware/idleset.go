package middleware

// IdleSet tracks workers waiting for work with O(1) add/remove (swap
// removal), which matters under trace-driven churn where thousands of idle
// workers join and leave per simulated hour.
type IdleSet struct {
	list  []*Worker
	pos   map[*Worker]int
	cloud int
}

// NewIdleSet returns an empty set.
func NewIdleSet() *IdleSet { return &IdleSet{pos: map[*Worker]int{}} }

// Len returns the number of idle workers.
func (s *IdleSet) Len() int { return len(s.list) }

// CloudCount returns the number of idle cloud workers.
func (s *IdleSet) CloudCount() int { return s.cloud }

// Contains reports membership.
func (s *IdleSet) Contains(w *Worker) bool {
	_, ok := s.pos[w]
	return ok
}

// Add inserts a worker; adding a member twice is a no-op.
func (s *IdleSet) Add(w *Worker) {
	if _, ok := s.pos[w]; ok {
		return
	}
	s.pos[w] = len(s.list)
	s.list = append(s.list, w)
	if w.Cloud {
		s.cloud++
	}
}

// Remove deletes a worker, reporting whether it was present.
func (s *IdleSet) Remove(w *Worker) bool {
	i, ok := s.pos[w]
	if !ok {
		return false
	}
	last := len(s.list) - 1
	if i != last {
		s.list[i] = s.list[last]
		s.pos[s.list[i]] = i
	}
	s.list = s.list[:last]
	delete(s.pos, w)
	if w.Cloud {
		s.cloud--
	}
	return true
}

// Pick returns the first worker (in arbitrary order) accepted by match and
// removes it. It returns nil when none matches. skipBatch lets callers
// memoize batches already known to have no eligible work this round.
func (s *IdleSet) Pick(match func(*Worker) bool) *Worker {
	for i := len(s.list) - 1; i >= 0; i-- {
		w := s.list[i]
		if match(w) {
			s.Remove(w)
			return w
		}
	}
	return nil
}

// Each iterates over a snapshot of the idle workers.
func (s *IdleSet) Each(fn func(*Worker) bool) {
	snapshot := append([]*Worker(nil), s.list...)
	for _, w := range snapshot {
		if !fn(w) {
			return
		}
	}
}
