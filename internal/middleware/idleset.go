package middleware

// IdleSet tracks workers waiting for work with O(1) add/remove (swap
// removal), which matters under trace-driven churn where thousands of idle
// workers join and leave per simulated hour.
//
// The set counts idle cloud workers from its own membership state: a
// worker's Cloud flag is recorded when it is added and that recorded flag —
// not the flag at removal time — drives the counter. A caller mutating
// w.Cloud between Add and Remove (historically possible through test
// drivers and mock servers) therefore cannot drift CloudCount; in the
// simulators cloud-ness is a construction-time identity and never changes
// while a worker is idle.
type IdleSet struct {
	list  []*Worker
	pos   map[*Worker]idlePos
	cloud int
	// scratch backs Each's iteration snapshot between calls so the churn
	// hot path stops allocating one slice per scan.
	scratch []*Worker
	eaching bool
}

// idlePos is the membership record: list index plus the Cloud flag observed
// at Add time.
type idlePos struct {
	idx   int
	cloud bool
}

// NewIdleSet returns an empty set.
func NewIdleSet() *IdleSet { return &IdleSet{pos: map[*Worker]idlePos{}} }

// Len returns the number of idle workers.
func (s *IdleSet) Len() int { return len(s.list) }

// CloudCount returns the number of idle cloud workers, derived from the
// membership records.
func (s *IdleSet) CloudCount() int { return s.cloud }

// Contains reports membership.
func (s *IdleSet) Contains(w *Worker) bool {
	_, ok := s.pos[w]
	return ok
}

// Add inserts a worker; adding a member twice is a no-op.
func (s *IdleSet) Add(w *Worker) {
	if _, ok := s.pos[w]; ok {
		return
	}
	s.pos[w] = idlePos{idx: len(s.list), cloud: w.Cloud}
	s.list = append(s.list, w)
	if w.Cloud {
		s.cloud++
	}
}

// Remove deletes a worker, reporting whether it was present. The cloud
// counter is adjusted by the flag recorded at Add, so the counter stays
// consistent with the remaining membership even if w.Cloud changed while
// the worker was away from the set.
func (s *IdleSet) Remove(w *Worker) bool {
	p, ok := s.pos[w]
	if !ok {
		return false
	}
	last := len(s.list) - 1
	if p.idx != last {
		moved := s.list[last]
		s.list[p.idx] = moved
		mp := s.pos[moved]
		mp.idx = p.idx
		s.pos[moved] = mp
	}
	s.list = s.list[:last]
	delete(s.pos, w)
	if p.cloud {
		s.cloud--
	}
	return true
}

// Pick returns the first worker (in arbitrary order) accepted by match and
// removes it. It returns nil when none matches.
func (s *IdleSet) Pick(match func(*Worker) bool) *Worker {
	for i := len(s.list) - 1; i >= 0; i-- {
		w := s.list[i]
		if match(w) {
			s.Remove(w)
			return w
		}
	}
	return nil
}

// Each iterates over a snapshot of the idle workers, so fn may Add/Remove
// freely. The snapshot buffer is reused across calls (with an allocation
// fallback for re-entrant iteration).
func (s *IdleSet) Each(fn func(*Worker) bool) {
	var snapshot []*Worker
	reused := false
	if !s.eaching {
		s.eaching = true
		reused = true
		snapshot = append(s.scratch[:0], s.list...)
	} else {
		snapshot = append([]*Worker(nil), s.list...)
	}
	for _, w := range snapshot {
		if !fn(w) {
			break
		}
	}
	if reused {
		for i := range snapshot {
			snapshot[i] = nil // release references held past the scan
		}
		s.scratch = snapshot[:0]
		s.eaching = false
	}
}
