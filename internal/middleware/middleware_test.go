package middleware

import (
	"testing"

	"spequlos/internal/bot"
	"spequlos/internal/sim"
	"spequlos/internal/trace"
)

func TestIdleSetBasics(t *testing.T) {
	s := NewIdleSet()
	w1 := &Worker{ID: 1}
	w2 := &Worker{ID: 2, Cloud: true}
	s.Add(w1)
	s.Add(w1) // duplicate no-op
	s.Add(w2)
	if s.Len() != 2 || s.CloudCount() != 1 {
		t.Fatalf("len=%d cloud=%d", s.Len(), s.CloudCount())
	}
	if !s.Contains(w1) {
		t.Fatal("w1 missing")
	}
	if !s.Remove(w2) || s.CloudCount() != 0 {
		t.Fatal("cloud removal broken")
	}
	if s.Remove(w2) {
		t.Fatal("double remove returned true")
	}
	if s.Len() != 1 {
		t.Fatalf("len=%d", s.Len())
	}
}

func TestIdleSetPick(t *testing.T) {
	s := NewIdleSet()
	for i := 0; i < 10; i++ {
		s.Add(&Worker{ID: i, Cloud: i%2 == 0})
	}
	w := s.Pick(func(w *Worker) bool { return w.Cloud })
	if w == nil || !w.Cloud {
		t.Fatal("pick failed")
	}
	if s.Len() != 9 {
		t.Fatal("pick did not remove")
	}
	if got := s.Pick(func(w *Worker) bool { return w.ID > 100 }); got != nil {
		t.Fatal("pick matched nothing but returned a worker")
	}
	if s.Len() != 9 {
		t.Fatal("failed pick mutated the set")
	}
}

func TestIdleSetSwapRemoveConsistency(t *testing.T) {
	s := NewIdleSet()
	ws := make([]*Worker, 50)
	for i := range ws {
		ws[i] = &Worker{ID: i}
		s.Add(ws[i])
	}
	for i := 0; i < 50; i += 3 {
		s.Remove(ws[i])
	}
	seen := map[int]bool{}
	s.Each(func(w *Worker) bool {
		if seen[w.ID] {
			t.Fatalf("duplicate worker %d during Each", w.ID)
		}
		seen[w.ID] = true
		return true
	})
	for i := range ws {
		want := i%3 != 0
		if s.Contains(ws[i]) != want {
			t.Fatalf("worker %d membership = %v, want %v", i, !want, want)
		}
		if seen[ws[i].ID] != want {
			t.Fatalf("worker %d iterated = %v, want %v", i, seen[ws[i].ID], want)
		}
	}
}

func TestProgressHelpers(t *testing.T) {
	p := Progress{Size: 10, Completed: 9, EverAssigned: 10}
	if p.Done() {
		t.Fatal("9/10 should not be done")
	}
	if p.CompletedFraction() != 0.9 || p.AssignedFraction() != 1.0 {
		t.Fatalf("fractions wrong: %+v", p)
	}
	p.Completed = 10
	if !p.Done() {
		t.Fatal("10/10 should be done")
	}
	var zero Progress
	if zero.Done() || zero.CompletedFraction() != 0 || zero.AssignedFraction() != 0 {
		t.Fatal("zero progress helpers wrong")
	}
}

func TestNewCloudWorker(t *testing.T) {
	w := NewCloudWorker(3, 3000, "b1")
	if !w.Cloud || w.DedicatedBatch != "b1" || w.Power != 3000 {
		t.Fatalf("cloud worker wrong: %+v", w)
	}
	if w.ID < 1<<30 {
		t.Fatalf("cloud worker ID %d collides with node ID space", w.ID)
	}
}

func TestBatchFromBoT(t *testing.T) {
	b := bot.Small.Scaled(0.01).Generate("x", 1)
	batch := BatchFromBoT(b)
	if batch.ID != "x" || len(batch.Tasks) != b.Size() || batch.WallClockTime != b.WallClockTime {
		t.Fatalf("conversion wrong: %+v", batch)
	}
}

// fakeServer records join/leave events for binding tests.
type fakeServer struct {
	joins, leaves []int
	attached      map[int]bool
}

func (f *fakeServer) MiddlewareName() string { return "fake" }
func (f *fakeServer) Submit(Batch)           {}
func (f *fakeServer) WorkerJoin(w *Worker) {
	if f.attached == nil {
		f.attached = map[int]bool{}
	}
	if f.attached[w.ID] {
		panic("double join")
	}
	f.attached[w.ID] = true
	f.joins = append(f.joins, w.ID)
}
func (f *fakeServer) WorkerLeave(w *Worker) {
	if !f.attached[w.ID] {
		panic("leave without join")
	}
	delete(f.attached, w.ID)
	f.leaves = append(f.leaves, w.ID)
}
func (f *fakeServer) Progress(string) Progress     { return Progress{} }
func (f *fakeServer) Done(string) bool             { return false }
func (f *fakeServer) Incomplete(string) []bot.Task { return nil }
func (f *fakeServer) MarkCompleted(string, int)    {}
func (f *fakeServer) SetReschedule(bool)           {}
func (f *fakeServer) AddListener(Listener)         {}

func TestBindTraceChurn(t *testing.T) {
	eng := sim.NewEngine()
	tr := &trace.Trace{Name: "x", Length: 100, Nodes: []*trace.Node{
		{ID: 0, Power: 1, Intervals: []trace.Interval{{Start: 0, End: 10}, {Start: 20, End: 30}}},
		{ID: 1, Power: 1, Intervals: []trace.Interval{{Start: 5, End: 50}}},
		{ID: 2, Power: 1}, // no intervals: never joins
	}}
	srv := &fakeServer{}
	b := BindTrace(eng, tr, srv)
	if len(b.Workers()) != 2 {
		t.Fatalf("workers = %d, want 2 (interval-less node skipped)", len(b.Workers()))
	}
	eng.Run()
	if len(srv.joins) != 3 || len(srv.leaves) != 3 {
		t.Fatalf("joins=%v leaves=%v", srv.joins, srv.leaves)
	}
}

func TestBindTraceStop(t *testing.T) {
	eng := sim.NewEngine()
	tr := &trace.Trace{Name: "x", Length: 100, Nodes: []*trace.Node{
		{ID: 0, Power: 1, Intervals: []trace.Interval{{Start: 0, End: 10}, {Start: 20, End: 30}}},
	}}
	srv := &fakeServer{}
	b := BindTrace(eng, tr, srv)
	eng.RunUntil(5)
	b.Stop()
	eng.Run()
	if len(srv.joins) != 1 || len(srv.leaves) != 0 {
		t.Fatalf("stop did not freeze churn: joins=%v leaves=%v", srv.joins, srv.leaves)
	}
}

func TestBindTraceOffsetBase(t *testing.T) {
	eng := sim.NewEngine()
	eng.At(1000, func() {}) // advance clock
	eng.Run()
	tr := &trace.Trace{Name: "x", Length: 100, Nodes: []*trace.Node{
		{ID: 0, Power: 1, Intervals: []trace.Interval{{Start: 10, End: 20}}},
	}}
	joined := -1.0
	srv := &fakeServer{}
	BindTrace(eng, tr, srv)
	eng.At(1010, func() {
		if len(srv.joins) != 1 {
			t.Error("join not at base+10")
		}
		joined = eng.Now()
	})
	eng.Run()
	if joined != 1010 {
		t.Fatalf("joined at %v, want 1010 (trace zero = bind time)", joined)
	}
}

func TestListenersFanOut(t *testing.T) {
	var calls []string
	mk := func(tag string) Listener {
		return funcListener{
			onAssigned:  func(b string, id int, at float64) { calls = append(calls, tag+"-a") },
			onCompleted: func(b string, id int, at float64) { calls = append(calls, tag+"-c") },
			onBatch:     func(b string, at float64) { calls = append(calls, tag+"-b") },
		}
	}
	ls := Listeners{mk("x"), mk("y")}
	ls.TaskAssigned("b", 1, 0)
	ls.TaskCompleted("b", 1, 0)
	ls.BatchCompleted("b", 0)
	if len(calls) != 6 {
		t.Fatalf("calls = %v", calls)
	}
}

type funcListener struct {
	onAssigned  func(string, int, float64)
	onCompleted func(string, int, float64)
	onBatch     func(string, float64)
}

func (f funcListener) TaskAssigned(b string, id int, at float64)  { f.onAssigned(b, id, at) }
func (f funcListener) TaskCompleted(b string, id int, at float64) { f.onCompleted(b, id, at) }
func (f funcListener) BatchCompleted(b string, at float64)        { f.onBatch(b, at) }

func (f *fakeServer) WorkerBusy(*Worker) bool { return false }
