package middleware_test

import (
	"fmt"
	"testing"

	"spequlos/internal/boinc"
	"spequlos/internal/bot"
	"spequlos/internal/condor"
	"spequlos/internal/middleware"
	"spequlos/internal/sim"
	"spequlos/internal/xwhep"
)

// assignmentAuditor verifies multi-tenant dispatch integrity: every task
// completes exactly once, and a dedicated (cloud) worker only ever executes
// tasks of its own batch. Together with the servers' internal
// busy-assignment panic, this is the regression net for two batches
// draining one idle pool.
type assignmentAuditor struct {
	t         *testing.T
	completed map[string]int
}

func (a *assignmentAuditor) TaskAssigned(string, int, float64) {}
func (a *assignmentAuditor) TaskCompleted(batchID string, taskID int, _ float64) {
	key := fmt.Sprintf("%s/%d", batchID, taskID)
	a.completed[key]++
	if a.completed[key] > 1 {
		a.t.Errorf("task %s completed %d times", key, a.completed[key])
	}
}
func (a *assignmentAuditor) BatchCompleted(string, float64) {}
func (a *assignmentAuditor) TaskExecutedBy(batchID string, taskID int, w *middleware.Worker, _ float64) {
	if w == nil {
		return
	}
	if w.DedicatedBatch != "" && w.DedicatedBatch != batchID {
		a.t.Errorf("worker %d dedicated to %q executed task %d of batch %q",
			w.ID, w.DedicatedBatch, taskID, batchID)
	}
}

// TestTwoBatchesSharedPoolNoDoubleAssign runs two interleaved batches over
// one churning idle pool — with dedicated cloud workers and Reschedule
// duplication active, the heaviest dispatch path — on every middleware.
// The servers panic if a busy worker is ever re-assigned; the auditor
// checks exactly-once completion and batch dedication.
func TestTwoBatchesSharedPoolNoDoubleAssign(t *testing.T) {
	ctors := map[string]func(*sim.Engine) middleware.Server{
		"BOINC":  func(e *sim.Engine) middleware.Server { return boinc.New(e, boinc.DefaultConfig()) },
		"XWHEP":  func(e *sim.Engine) middleware.Server { return xwhep.New(e, xwhep.DefaultConfig()) },
		"CONDOR": func(e *sim.Engine) middleware.Server { return condor.New(e, condor.DefaultConfig()) },
	}
	for name, ctor := range ctors {
		t.Run(name, func(t *testing.T) {
			eng := sim.NewEngine()
			srv := ctor(eng)
			audit := &assignmentAuditor{t: t, completed: map[string]int{}}
			srv.AddListener(audit)

			mkBatch := func(id string, n int) middleware.Batch {
				tasks := make([]bot.Task, n)
				for i := range tasks {
					tasks[i] = bot.Task{ID: i, NOps: 900, Arrival: float64(i%5) * 30}
				}
				return middleware.Batch{ID: id, Tasks: tasks}
			}
			srv.Submit(mkBatch("a", 30))
			srv.Submit(mkBatch("b", 30))

			// A shared pool of node workers, churning: each worker leaves
			// and rejoins on its own cadence, so the idle set drains and
			// refills while both batches compete for it.
			workers := make([]*middleware.Worker, 8)
			for i := range workers {
				w := &middleware.Worker{ID: i, Power: 1}
				workers[i] = w
				srv.WorkerJoin(w)
				period := 400.0 + 60*float64(i)
				var churn func()
				churn = func() {
					srv.WorkerLeave(w)
					eng.After(150, func() {
						srv.WorkerJoin(w)
						eng.After(period, churn)
					})
				}
				eng.After(period, churn)
			}

			// Dedicated cloud workers for both batches plus Reschedule
			// duplication: cloud workers must keep pulling work for their
			// own batch only, even when the other batch's tasks queue.
			srv.SetReschedule(true)
			for i := 0; i < 2; i++ {
				srv.WorkerJoin(middleware.NewCloudWorker(i, 3, "a"))
				srv.WorkerJoin(middleware.NewCloudWorker(2+i, 3, "b"))
			}

			eng.RunWhile(func() bool {
				return (!srv.Done("a") || !srv.Done("b")) && eng.Now() < 30*86400
			})
			if !srv.Done("a") || !srv.Done("b") {
				t.Fatalf("batches did not complete: a=%v b=%v", srv.Done("a"), srv.Done("b"))
			}
			for _, id := range []string{"a", "b"} {
				p := srv.Progress(id)
				if p.Completed != 30 || p.EverAssigned != 30 {
					t.Errorf("batch %s progress inconsistent: %+v", id, p)
				}
			}
		})
	}
}

// TestIdleSetTwoConsumersNeverShareAWorker is the IdleSet-level property
// behind the dispatch invariant: two consumers draining one set can never
// receive the same worker, because Pick removes before returning.
func TestIdleSetTwoConsumersNeverShareAWorker(t *testing.T) {
	s := middleware.NewIdleSet()
	workers := make([]*middleware.Worker, 64)
	for i := range workers {
		workers[i] = &middleware.Worker{ID: i, Cloud: i%3 == 0}
		s.Add(workers[i])
	}
	held := map[*middleware.Worker]string{}
	consumers := []struct {
		name  string
		match func(*middleware.Worker) bool
	}{
		{"cloud", func(w *middleware.Worker) bool { return w.Cloud }},
		{"any", func(*middleware.Worker) bool { return true }},
	}
	// Interleave the two consumers; every pick must yield a worker no one
	// currently holds. Periodically release workers back.
	released := 0
	for round := 0; round < 200; round++ {
		c := consumers[round%2]
		w := s.Pick(c.match)
		if w == nil {
			// Refill from the held set (simulates task completion).
			for rw := range held {
				delete(held, rw)
				s.Add(rw)
				released++
				break
			}
			continue
		}
		if owner, taken := held[w]; taken {
			t.Fatalf("round %d: %s picked worker %d already held by %s", round, c.name, w.ID, owner)
		}
		held[w] = c.name
		if round%7 == 0 {
			// Release one early, as a completing task would.
			delete(held, w)
			s.Add(w)
		}
	}
	if released == 0 {
		t.Fatal("property test never cycled workers through the set")
	}
}
