package middleware

import (
	"spequlos/internal/sim"
	"spequlos/internal/trace"
)

// Binding drives worker churn on a server from an availability trace. Each
// trace node becomes one persistent Worker whose join/leave events follow
// the node's availability intervals. Events are scheduled lazily — one
// pending event per node — so simulations that finish early never pay for
// the rest of the trace.
type Binding struct {
	eng     *sim.Engine
	srv     Server
	workers []*Worker
	stopped bool
}

// BindTrace attaches every node of the trace to the server, starting at the
// current virtual time (trace time zero is "now").
func BindTrace(eng *sim.Engine, tr *trace.Trace, srv Server) *Binding {
	b := &Binding{eng: eng, srv: srv}
	base := eng.Now()
	for _, node := range tr.Nodes {
		if len(node.Intervals) == 0 {
			continue
		}
		w := &Worker{ID: node.ID, Power: node.Power}
		b.workers = append(b.workers, w)
		b.scheduleJoin(w, node, 0, base)
	}
	return b
}

func (b *Binding) scheduleJoin(w *Worker, node *trace.Node, idx int, base float64) {
	if idx >= len(node.Intervals) {
		return
	}
	iv := node.Intervals[idx]
	b.eng.At(base+iv.Start, func() {
		if b.stopped {
			return
		}
		b.srv.WorkerJoin(w)
		b.eng.At(base+iv.End, func() {
			if b.stopped {
				return
			}
			b.srv.WorkerLeave(w)
			b.scheduleJoin(w, node, idx+1, base)
		})
	})
}

// Stop detaches the binding: future churn events become no-ops. Workers
// currently attached stay attached.
func (b *Binding) Stop() { b.stopped = true }

// Workers returns the workers managed by the binding.
func (b *Binding) Workers() []*Worker { return b.workers }
