package middleware

import (
	"hash/fnv"

	"spequlos/internal/sim"
	"spequlos/internal/trace"
)

// Binding drives worker churn on a server from an availability trace. Each
// trace node becomes one persistent Worker whose join/leave events follow
// the node's availability intervals. Events are scheduled lazily — one
// pending event per node, carried as op-code events with inline payloads,
// so churn allocates nothing beyond the per-node record.
type Binding struct {
	eng     *sim.Engine
	srv     Server
	workers []*Worker
	stopped bool

	// opJoin/opLeave are the binding's registered churn handlers
	// (Payload.A = *boundNode, I = interval index, X = trace time base).
	opJoin  sim.Op
	opLeave sim.Op
}

// boundNode ties a worker to its trace node for the churn op handlers.
type boundNode struct {
	b    *Binding
	w    *Worker
	node *trace.Node
}

// BindTrace attaches every node of the trace to the server, starting at the
// current virtual time (trace time zero is "now").
func BindTrace(eng *sim.Engine, tr *trace.Trace, srv Server) *Binding {
	return BindTracePartition(eng, tr, srv, 0, 1)
}

// BindTracePartition attaches the part-th of parts stable-hash partitions
// of the trace's nodes to the server. Node→partition assignment is a pure
// function of the node ID (FNV-32a, the shard-hash idiom of the scheduler's
// plan pool), so the union of all parts is exactly BindTrace's node set and
// a node lands on the same partition at any partition count that divides
// the same way. The sharded campaign kernel uses this to give every QoS
// batch a dedicated, disjoint slice of one common trace.
func BindTracePartition(eng *sim.Engine, tr *trace.Trace, srv Server, part, parts int) *Binding {
	if parts < 1 || part < 0 || part >= parts {
		parts, part = 1, 0
	}
	b := &Binding{eng: eng, srv: srv}
	b.opJoin = eng.RegisterOp(func(p sim.Payload) { p.A.(*boundNode).join(p.I, p.X) })
	b.opLeave = eng.RegisterOp(func(p sim.Payload) { p.A.(*boundNode).leave(p.I, p.X) })
	base := eng.Now()
	for _, node := range tr.Nodes {
		if len(node.Intervals) == 0 {
			continue
		}
		if parts > 1 && nodePartition(node.ID, parts) != part {
			continue
		}
		w := &Worker{ID: node.ID, Power: node.Power}
		b.workers = append(b.workers, w)
		bn := &boundNode{b: b, w: w, node: node}
		bn.schedule(0, base)
	}
	return b
}

// nodePartition maps a trace-node ID onto one of parts partitions.
func nodePartition(id, parts int) int {
	h := fnv.New32a()
	var buf [4]byte
	buf[0] = byte(id)
	buf[1] = byte(id >> 8)
	buf[2] = byte(id >> 16)
	buf[3] = byte(id >> 24)
	h.Write(buf[:])
	return int(h.Sum32() % uint32(parts))
}

// schedule arms the node's next join event, if any intervals remain.
func (bn *boundNode) schedule(idx int32, base float64) {
	if int(idx) >= len(bn.node.Intervals) {
		return
	}
	iv := bn.node.Intervals[idx]
	bn.b.eng.AtOp(sim.Time(base+iv.Start), bn.b.opJoin, sim.Payload{A: bn, I: idx, X: base})
}

func (bn *boundNode) join(idx int32, base float64) {
	b := bn.b
	if b.stopped {
		return
	}
	b.srv.WorkerJoin(bn.w)
	iv := bn.node.Intervals[idx]
	b.eng.AtOp(sim.Time(base+iv.End), b.opLeave, sim.Payload{A: bn, I: idx, X: base})
}

func (bn *boundNode) leave(idx int32, base float64) {
	b := bn.b
	if b.stopped {
		return
	}
	b.srv.WorkerLeave(bn.w)
	bn.schedule(idx+1, base)
}

// Stop detaches the binding: future churn events become no-ops. Workers
// currently attached stay attached.
func (b *Binding) Stop() { b.stopped = true }

// Workers returns the workers managed by the binding.
func (b *Binding) Workers() []*Worker { return b.workers }
