package sim

import (
	"math"
	"testing"
)

func TestOpEventFiresWithPayload(t *testing.T) {
	e := NewEngine()
	type worker struct{ id int }
	w := &worker{id: 7}
	var got []Payload
	op := e.RegisterOp(func(p Payload) { got = append(got, p) })
	e.AtOp(5, op, Payload{A: w, I: 42, X: 2.5})
	e.AfterOp(10, op, Payload{I: -1})
	e.Run()
	if len(got) != 2 {
		t.Fatalf("fired %d op events, want 2", len(got))
	}
	if got[0].A.(*worker) != w || got[0].I != 42 || got[0].X != 2.5 {
		t.Fatalf("first payload = %+v, want A=w I=42 X=2.5", got[0])
	}
	if got[1].I != -1 {
		t.Fatalf("second payload I = %d, want -1", got[1].I)
	}
	if e.Now() != 10 {
		t.Fatalf("clock = %v, want 10", e.Now())
	}
}

func TestOpAndClosureEventsInterleaveFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	op := e.RegisterOp(func(p Payload) { order = append(order, int(p.I)) })
	// Same-instant events must fire in scheduling order regardless of kind.
	e.At(3, func() { order = append(order, 0) })
	e.AtOp(3, op, Payload{I: 1})
	e.At(3, func() { order = append(order, 2) })
	e.AtOp(3, op, Payload{I: 3})
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v, want [0 1 2 3]", order)
		}
	}
}

func TestOpEventCancelAndSlotReuse(t *testing.T) {
	e := NewEngine()
	fired := 0
	op := e.RegisterOp(func(p Payload) { fired++ })
	ev := e.AtOp(5, op, Payload{I: 9})
	e.Cancel(ev)
	if ev.Pending() {
		t.Fatal("cancelled op event still pending")
	}
	// The recycled slot must not leak the op or payload into a closure event.
	done := false
	e.At(6, func() { done = true })
	e.Run()
	if fired != 0 {
		t.Fatalf("cancelled op event fired %d times", fired)
	}
	if !done {
		t.Fatal("closure event on recycled slot did not fire")
	}
}

func TestOpValidation(t *testing.T) {
	e := NewEngine()
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("RegisterOp(nil)", func() { e.RegisterOp(nil) })
	mustPanic("AtOp zero op", func() { e.AtOp(1, 0, Payload{}) })
	mustPanic("AtOp unregistered op", func() { e.AtOp(1, 3, Payload{}) })
	op := e.RegisterOp(func(Payload) {})
	mustPanic("AtOp NaN", func() { e.AtOp(Time(math.NaN()), op, Payload{}) })
	mustPanic("AfterOp Inf", func() { e.AfterOp(math.Inf(1), op, Payload{}) })
}

func TestOpPastTimeClampsToNow(t *testing.T) {
	e := NewEngine()
	var at Time = -1
	op := e.RegisterOp(func(p Payload) { at = e.Now() })
	e.At(10, func() { e.AtOp(4, op, Payload{}) })
	e.Run()
	if at != 10 {
		t.Fatalf("past-scheduled op fired at %v, want clamped to 10", at)
	}
	if e.Clamped() == 0 {
		t.Fatal("clamp counter not bumped for op event")
	}
}

// TestOpSteadyStateAllocs pins the headline property of the op-code path:
// scheduling and firing op events with pointer payloads allocates nothing
// once the arena is warm.
func TestOpSteadyStateAllocs(t *testing.T) {
	e := NewEngine()
	type task struct{ n int }
	tk := &task{}
	op := e.RegisterOp(func(p Payload) { p.A.(*task).n++ })
	for i := 0; i < 64; i++ {
		e.AfterOp(1, op, Payload{A: tk, I: int32(i), X: 0.5})
	}
	e.Run()
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 64; i++ {
			e.AfterOp(1, op, Payload{A: tk, I: int32(i), X: 0.5})
		}
		e.Run()
	})
	if allocs > 0 {
		t.Fatalf("op-code path allocates %.1f objects per 64-event batch in steady state, want 0", allocs)
	}
}

// TestTickerRearmAllocs is the regression test for the per-rearm closure
// the Ticker used to allocate: rearming now goes through the shared ticker
// op, so a running ticker must be allocation-free in steady state.
func TestTickerRearmAllocs(t *testing.T) {
	e := NewEngine()
	ticks := 0
	e.NewTicker(1, func(Time) { ticks++ })
	// Warm up: arena slot + any lazy registration.
	e.RunUntil(8)
	allocs := testing.AllocsPerRun(100, func() {
		e.RunUntil(e.Now() + 16)
	})
	if allocs > 0 {
		t.Fatalf("ticker rearm allocates %.1f objects per 16 ticks, want 0", allocs)
	}
	if ticks < 8 {
		t.Fatalf("ticker fired %d times during warmup, want >= 8", ticks)
	}
}

func TestTickerStopStillWorksOnOpPath(t *testing.T) {
	e := NewEngine()
	ticks := 0
	var tk *Ticker
	tk = e.NewTicker(2, func(Time) {
		ticks++
		if ticks == 3 {
			tk.Stop()
		}
	})
	e.RunUntil(100)
	if ticks != 3 {
		t.Fatalf("ticker fired %d times after Stop at 3, want 3", ticks)
	}
}

func BenchmarkEngineOp(b *testing.B) {
	e := NewEngine()
	type task struct{ n int }
	tk := &task{}
	op := e.RegisterOp(func(p Payload) { p.A.(*task).n++ })
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.AfterOp(float64(i%100)+1, op, Payload{A: tk})
		if e.Pending() > 1024 {
			for e.Pending() > 0 {
				e.Step()
			}
		}
	}
	e.Run()
}
