package sim

import (
	"fmt"
	"time"
)

// Sharded is the multi-core simulation kernel: N shard engines — each with
// its own event heap — plus one control engine, advanced together in
// tick-barrier windows.
//
// The execution contract is conservative parallel discrete-event
// simulation with barrier synchronization:
//
//   - Entities hosted on different shards must not interact directly within
//     a window. The campaign layer guarantees this by giving every QoS
//     batch its own middleware server and a stable-hashed, dedicated slice
//     of the availability trace, then mapping batches onto shards.
//   - Cross-shard effects (the SpeQuloS monitor tick, cloud fleet changes,
//     credit billing, aggregated progress polling) live on the control
//     engine and run serially at each barrier, in deterministic order,
//     while every shard clock sits exactly on the barrier instant.
//   - Couplings between shard-hosted entities (CloudDuplication result
//     mirrors, intra-batch pool partitions) are expressed as barrier
//     exchange: each partition records effects in its own Outbox during the
//     window and the kernel replays the merged, deterministically ordered
//     message stream on the control engine at the barrier, then runs the
//     registered reduction hooks (RegisterTopic / NewOutbox / OnBarrier).
//
// Under that contract the results are byte-identical for ANY shard count,
// including one: the barrier sequence is derived from the merged
// next-event time, which does not depend on how events are distributed
// across heaps, and shard-local event orderings only interleave events of
// entities that never observe each other.
type Sharded struct {
	ctl    *Engine
	shards []*Engine

	// Barrier exchange: per-partition outboxes drained at each barrier,
	// registered topic handlers replayed on the control engine, and
	// reduction hooks run once per barrier with every engine parked.
	topics   []func(Msg)
	outboxes []*Outbox
	hooks    []func(now Time)
	scratch  []Msg
	opMsg    Op

	barriers uint64
	messages uint64
	stall    time.Duration
	busy     []time.Duration
}

// NewSharded builds a sharded kernel with the given number of shard
// engines (at least 1) plus a control engine.
func NewSharded(shards int) *Sharded {
	if shards < 1 {
		panic(fmt.Sprintf("sim: sharded kernel needs at least 1 shard, got %d", shards))
	}
	s := &Sharded{ctl: NewEngine(), shards: make([]*Engine, shards), busy: make([]time.Duration, shards)}
	for i := range s.shards {
		s.shards[i] = NewEngine()
	}
	s.opMsg = s.ctl.RegisterOp(s.dispatchMsg)
	return s
}

// Control returns the serial control engine. The SpeQuloS service, the
// simulated cloud and every other cross-shard actor must live here: its
// events run only at barriers, with all shards parked on the barrier
// instant.
func (s *Sharded) Control() *Engine { return s.ctl }

// Shards returns the number of shard engines.
func (s *Sharded) Shards() int { return len(s.shards) }

// Shard returns shard engine i.
func (s *Sharded) Shard(i int) *Engine { return s.shards[i] }

// Now returns the current barrier time (the control engine's clock).
func (s *Sharded) Now() Time { return s.ctl.Now() }

// Executed returns the total number of events fired across every engine.
func (s *Sharded) Executed() uint64 {
	n := s.ctl.Executed()
	for _, e := range s.shards {
		n += e.Executed()
	}
	return n
}

// nextTime returns the earliest pending event time across every engine.
func (s *Sharded) nextTime() (Time, bool) {
	best, ok := s.ctl.NextEventTime()
	for _, e := range s.shards {
		if t, has := e.NextEventTime(); has && (!ok || t < best) {
			best, ok = t, true
		}
	}
	return best, ok
}

// Run advances the kernel until stop() reports true or no engine has
// pending events. Each iteration executes one barrier window: the window
// start is the merged next-event time (so idle stretches are skipped in one
// hop), the barrier lands window seconds later, every shard fires its
// events strictly before the barrier in parallel, and the control engine
// then runs serially up to and including the barrier instant. stop is
// evaluated between barriers only — never concurrently with shard
// execution — and may inspect any engine.
//
// The window must be positive. For a simulation whose cross-shard actor is
// a periodic monitor, the monitor period is the natural window; a
// simulation with no control events dispatches in one window per idle gap.
func (s *Sharded) Run(window float64, stop func() bool) {
	if window <= 0 {
		panic(fmt.Sprintf("sim: sharded kernel window must be positive, got %v", window))
	}
	n := len(s.shards)

	// Persistent shard executors: one goroutine per shard, woken per window.
	// With a single shard the loop below runs it inline — that configuration
	// is the serial reference the determinism tests compare against.
	var starts []chan Time
	var dones chan int
	if n > 1 {
		starts = make([]chan Time, n)
		dones = make(chan int, n)
		for i := range s.shards {
			starts[i] = make(chan Time, 1)
			go func(i int) {
				eng := s.shards[i]
				for target := range starts[i] {
					t0 := time.Now()
					eng.RunBefore(target)
					s.busy[i] += time.Since(t0)
					dones <- i
				}
			}(i)
		}
		defer func() {
			for _, c := range starts {
				close(c)
			}
		}()
	}

	for stop == nil || !stop() {
		b, ok := s.nextTime()
		if !ok {
			return
		}
		target := b + window
		if n == 1 {
			s.shards[0].RunBefore(target)
		} else {
			wall := time.Now()
			for _, c := range starts {
				c <- target
			}
			for i := 0; i < n; i++ {
				<-dones
			}
			// Executor idle time at this barrier: the gap between each
			// shard's busy time and the window's wall-clock, summed.
			elapsed := time.Since(wall)
			for range s.shards {
				s.stall += elapsed
			}
			for i := range s.busy {
				s.stall -= s.busy[i]
				s.busy[i] = 0
			}
		}
		// Barrier: merge the shards' outboxes onto the control engine,
		// run the serial control window, then the reduction hooks with
		// every engine parked exactly on the barrier instant.
		s.exchange()
		s.ctl.RunUntil(target)
		for _, h := range s.hooks {
			h(target)
		}
		s.barriers++
	}
}

// ShardedStats is a snapshot of the kernel's execution counters: the
// bench harness records them per run (per-shard event counts and
// barrier-stall time are the two numbers that tell whether the shards are
// balanced and the barriers cheap).
type ShardedStats struct {
	// Barriers is the number of barrier windows executed.
	Barriers uint64
	// ShardEvents is the number of events fired by each shard engine.
	ShardEvents []uint64
	// ControlEvents is the number of events fired by the control engine.
	ControlEvents uint64
	// Messages is the number of barrier-exchange messages merged onto the
	// control engine (mirror completions, partitioned-pool task events).
	Messages uint64
	// StallSeconds is wall-clock executor idle time summed across shards:
	// time spent parked at barriers while sibling shards finished their
	// window. Zero when the kernel ran with a single shard.
	StallSeconds float64
}

// Stats returns the kernel's execution counters so far.
func (s *Sharded) Stats() ShardedStats {
	st := ShardedStats{
		Barriers:      s.barriers,
		Messages:      s.messages,
		ControlEvents: s.ctl.Executed(),
		ShardEvents:   make([]uint64, len(s.shards)),
		StallSeconds:  s.stall.Seconds(),
	}
	for i, e := range s.shards {
		st.ShardEvents[i] = e.Executed()
	}
	return st
}
