package sim

import (
	"fmt"
	"sort"
)

// Topic identifies a registered barrier-exchange handler on a Sharded
// kernel. Topics are registered once at construction time with
// RegisterTopic; the zero value is invalid, mirroring Op.
type Topic int32

// Msg is one barrier-exchange message: a cross-shard effect recorded by a
// shard during its window and replayed on the control engine at the next
// barrier. Time is the virtual instant the effect happened on the shard;
// the control engine re-executes the message at exactly that time (clamped
// to the barrier if the message was posted from the control side itself),
// so cross-shard couplings keep their exact event times. I, X, S and A
// carry the topic-specific arguments.
type Msg struct {
	// Time is the virtual time the message was posted.
	Time Time
	// Topic selects the handler registered with RegisterTopic.
	Topic Topic
	// I is an inline integer argument (e.g. a task ID).
	I int32
	// X is an inline float argument.
	X float64
	// S is an inline string argument (e.g. a batch ID).
	S string
	// A is a pointer-shaped argument for anything larger.
	A any
}

// Outbox is a single-writer barrier-exchange buffer. Each partition of the
// simulation (a batch, a pool slice) owns exactly one outbox and is the
// only writer during its shard window; the kernel drains every outbox at
// the barrier, between the shard windows and the control engine's serial
// run.
//
// Determinism contract: the barrier merge is a stable sort by Msg.Time
// with outbox creation order breaking ties, so callers must create
// outboxes in an order that does not depend on the shard count (e.g. batch
// index order) and must post monotonically within a window (event handlers
// do this naturally — they post at the engine's current time).
type Outbox struct {
	msgs []Msg
}

// Post appends a message to the outbox. It must only be called by the
// outbox's owning partition: from its shard goroutine during a window, or
// from the control goroutine at a barrier (such messages deliver at the
// next barrier, clamped to its instant).
func (ob *Outbox) Post(m Msg) {
	if m.Topic <= 0 {
		panic(fmt.Sprintf("sim: posting exchange message with invalid topic %d", m.Topic))
	}
	ob.msgs = append(ob.msgs, m)
}

// RegisterTopic registers a barrier-exchange handler and returns its topic
// code. Handlers run on the control goroutine during the barrier's serial
// phase, with every shard clock parked on the barrier instant, so they may
// freely touch control-engine state and any shard-hosted server.
// Registration is construction-time only, like Engine.RegisterOp.
func (s *Sharded) RegisterTopic(fn func(Msg)) Topic {
	if fn == nil {
		panic("sim: RegisterTopic with nil handler")
	}
	s.topics = append(s.topics, fn)
	return Topic(len(s.topics))
}

// NewOutbox creates a barrier-exchange outbox owned by one partition.
// Creation order is the deterministic tie-break of the barrier merge, so
// call it in partition index order, independent of the shard count.
func (s *Sharded) NewOutbox() *Outbox {
	ob := &Outbox{}
	s.outboxes = append(s.outboxes, ob)
	return ob
}

// OnBarrier registers a reduction hook that runs once per barrier, after
// the control engine has advanced to the barrier instant and after every
// exchanged message has been replayed. All engines are parked on the
// barrier time, so a hook may inspect and mutate any shard-hosted state —
// this is where cross-shard reductions (fleet-cap arbitration inputs,
// queue rebalancing) belong. Hooks run in registration order.
func (s *Sharded) OnBarrier(fn func(now Time)) {
	if fn == nil {
		panic("sim: OnBarrier with nil hook")
	}
	s.hooks = append(s.hooks, fn)
}

// exchange drains every outbox and replays the merged messages on the
// control engine: stable-sorted by time (creation order of the outboxes
// breaks ties), each message becomes a control event at its exact post
// time, scheduled before the control window runs so it interleaves
// deterministically with the monitor tick. Messages posted from the
// control side after its window land here next barrier and clamp to that
// barrier's instant.
func (s *Sharded) exchange() {
	s.scratch = s.scratch[:0]
	for _, ob := range s.outboxes {
		s.scratch = append(s.scratch, ob.msgs...)
		ob.msgs = ob.msgs[:0]
	}
	if len(s.scratch) == 0 {
		return
	}
	sort.SliceStable(s.scratch, func(i, j int) bool { return s.scratch[i].Time < s.scratch[j].Time })
	for i := range s.scratch {
		m := new(Msg)
		*m = s.scratch[i]
		s.ctl.AtOp(m.Time, s.opMsg, Payload{A: m})
	}
	s.messages += uint64(len(s.scratch))
}

// dispatchMsg is the control-engine op that replays one exchanged message.
func (s *Sharded) dispatchMsg(p Payload) {
	m := p.A.(*Msg)
	if m.Topic <= 0 || int(m.Topic) > len(s.topics) {
		panic(fmt.Sprintf("sim: exchange message with unregistered topic %d", m.Topic))
	}
	s.topics[m.Topic-1](*m)
}
