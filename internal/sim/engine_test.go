package sim

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineFiresInOrder(t *testing.T) {
	e := NewEngine()
	var got []float64
	for _, at := range []float64{5, 1, 3, 2, 4} {
		at := at
		e.At(at, func() { got = append(got, at) })
	}
	e.Run()
	if !sort.Float64sAreSorted(got) {
		t.Fatalf("events fired out of order: %v", got)
	}
	if len(got) != 5 {
		t.Fatalf("fired %d events, want 5", len(got))
	}
	if e.Now() != 5 {
		t.Fatalf("clock = %v, want 5", e.Now())
	}
}

func TestEngineSameTimeFIFO(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(7, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.At(1, func() { fired = true })
	e.Cancel(ev)
	e.Cancel(ev) // idempotent
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if ev.Pending() {
		t.Fatal("cancelled event still pending")
	}
}

func TestEngineCancelMiddleOfHeap(t *testing.T) {
	e := NewEngine()
	var got []float64
	evs := make([]Event, 0, 100)
	for i := 0; i < 100; i++ {
		at := float64((i * 37) % 100)
		evs = append(evs, e.At(at, func() { got = append(got, at) }))
	}
	for i := 0; i < 100; i += 3 {
		e.Cancel(evs[i])
	}
	e.Run()
	if len(got) != 66 {
		t.Fatalf("fired %d events, want 66", len(got))
	}
	if !sort.Float64sAreSorted(got) {
		t.Fatalf("out of order after cancellations: %v", got)
	}
}

func TestEngineSchedulingInsideEvents(t *testing.T) {
	e := NewEngine()
	var got []float64
	e.At(1, func() {
		e.After(1, func() { got = append(got, e.Now()) })
		e.After(0.5, func() { got = append(got, e.Now()) })
	})
	e.Run()
	want := []float64{1.5, 2}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("got %v, want %v", got, want)
	}
}

// Regression test for the past-scheduling fix: events requested before the
// current virtual time are clamped to now, fire in FIFO order after events
// already scheduled at now, never move the clock backwards, and the
// validating method reports the problem as an error.
func TestEnginePastSchedulingClampsToNow(t *testing.T) {
	e := NewEngine()
	var got []string
	e.At(10, func() {
		e.At(10, func() { got = append(got, "present") })
		ev, err := e.ScheduleAt(5, func() { got = append(got, "past") })
		if !errors.Is(err, ErrPastTime) {
			t.Errorf("ScheduleAt(5) err = %v, want ErrPastTime", err)
		}
		if ev.At() != 10 {
			t.Errorf("clamped event time = %v, want 10", ev.At())
		}
		if !ev.Pending() {
			t.Error("clamped event not pending")
		}
	})
	e.Run()
	if e.Now() != 10 {
		t.Fatalf("clock = %v, want 10 (must not move backwards)", e.Now())
	}
	if len(got) != 2 || got[0] != "present" || got[1] != "past" {
		t.Fatalf("firing order = %v, want [present past] (FIFO at clamped time)", got)
	}
	if e.Clamped() != 1 {
		t.Fatalf("Clamped() = %d, want 1", e.Clamped())
	}
}

func TestEngineAtPastDoesNotPanicAndStaysOrdered(t *testing.T) {
	e := NewEngine()
	var times []float64
	e.At(3, func() {
		e.At(1, func() { times = append(times, e.Now()) }) // past: clamps to 3
		e.At(4, func() { times = append(times, e.Now()) })
	})
	e.Run()
	if len(times) != 2 || times[0] != 3 || times[1] != 4 {
		t.Fatalf("fired at %v, want [3 4]", times)
	}
}

func TestEngineInvalidTime(t *testing.T) {
	e := NewEngine()
	if _, err := e.ScheduleAt(math.NaN(), func() {}); !errors.Is(err, ErrInvalidTime) {
		t.Fatalf("ScheduleAt(NaN) err = %v, want ErrInvalidTime", err)
	}
	if _, err := e.ScheduleAt(math.Inf(1), func() {}); !errors.Is(err, ErrInvalidTime) {
		t.Fatalf("ScheduleAt(+Inf) err = %v, want ErrInvalidTime", err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("At(NaN) did not panic")
		}
	}()
	e.At(math.NaN(), func() {})
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 10; i++ {
		e.At(float64(i), func() { count++ })
	}
	e.RunUntil(5)
	if count != 5 {
		t.Fatalf("count = %d, want 5 (events at t<=5)", count)
	}
	if e.Now() != 5 {
		t.Fatalf("clock = %v, want 5", e.Now())
	}
	e.RunUntil(20)
	if count != 10 || e.Now() != 20 {
		t.Fatalf("after RunUntil(20): count=%d now=%v", count, e.Now())
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	e := NewEngine()
	e.At(3, func() {
		e.After(-5, func() {
			if e.Now() != 3 {
				t.Errorf("negative delay fired at %v, want 3", e.Now())
			}
		})
	})
	e.Run()
}

func TestTicker(t *testing.T) {
	e := NewEngine()
	var ticks []float64
	tk := e.NewTicker(10, func(now Time) {
		ticks = append(ticks, now)
	})
	e.At(45, func() { tk.Stop() })
	e.Run()
	want := []float64{10, 20, 30, 40}
	if len(ticks) != len(want) {
		t.Fatalf("ticks = %v, want %v", ticks, want)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("ticks = %v, want %v", ticks, want)
		}
	}
}

func TestTickerStopWithinCallback(t *testing.T) {
	e := NewEngine()
	n := 0
	var tk *Ticker
	tk = e.NewTicker(1, func(Time) {
		n++
		if n == 3 {
			tk.Stop()
		}
	})
	e.Run()
	if n != 3 {
		t.Fatalf("ticker fired %d times, want 3", n)
	}
}

// Property: for any batch of event times, execution order is sorted and the
// count matches.
func TestEventOrderProperty(t *testing.T) {
	f := func(times []uint16) bool {
		e := NewEngine()
		var got []float64
		for _, v := range times {
			at := float64(v)
			e.At(at, func() { got = append(got, at) })
		}
		e.Run()
		return len(got) == len(times) && sort.Float64sAreSorted(got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: cancelling a random subset never breaks ordering and fires
// exactly the survivors.
func TestEventCancelProperty(t *testing.T) {
	f := func(times []uint16, seed int64) bool {
		e := NewEngine()
		r := rand.New(rand.NewSource(seed))
		var got []float64
		evs := make([]Event, len(times))
		for i, v := range times {
			at := float64(v)
			evs[i] = e.At(at, func() { got = append(got, at) })
		}
		cancelled := 0
		for _, ev := range evs {
			if r.Intn(2) == 0 {
				e.Cancel(ev)
				cancelled++
			}
		}
		e.Run()
		return len(got) == len(times)-cancelled && sort.Float64sAreSorted(got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestRNGForkIndependentOfConsumption(t *testing.T) {
	a := NewRNG(7)
	b := NewRNG(7)
	for i := 0; i < 50; i++ {
		a.Float64() // consume parent a only
	}
	fa := a.Fork("trace")
	fb := b.Fork("trace")
	for i := 0; i < 20; i++ {
		if fa.Float64() != fb.Float64() {
			t.Fatal("fork depends on parent consumption")
		}
	}
}

func TestRNGForkDistinctLabels(t *testing.T) {
	r := NewRNG(7)
	a := r.Fork("alpha")
	b := r.Fork("beta")
	same := 0
	for i := 0; i < 32; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same == 32 {
		t.Fatal("different labels produced identical streams")
	}
	x := r.ForkN("node", 1)
	y := r.ForkN("node", 2)
	if x.Float64() == y.Float64() && x.Float64() == y.Float64() {
		t.Fatal("ForkN streams for different indices look identical")
	}
}

func TestSeedFrom(t *testing.T) {
	if SeedFrom("a", "b") == SeedFrom("ab") {
		t.Fatal("SeedFrom must separate parts")
	}
	if SeedFrom("x") != SeedFrom("x") {
		t.Fatal("SeedFrom not deterministic")
	}
}

// Pooled-arena safety: a handle to a cancelled event whose slot has been
// recycled for a newer event must not cancel (or report pending for) the
// slot's new occupant.
func TestPooledSlotReuseAfterCancel(t *testing.T) {
	e := NewEngine()
	stale := e.At(5, func() { t.Error("cancelled event fired") })
	e.Cancel(stale)
	if e.Pending() != 0 {
		t.Fatalf("pending = %d after cancel, want 0", e.Pending())
	}
	fired := false
	fresh := e.At(7, func() { fired = true }) // reuses the freed slot
	if fresh.idx != stale.idx {
		t.Fatalf("slot not recycled: fresh idx %d, stale idx %d", fresh.idx, stale.idx)
	}
	if stale.Pending() {
		t.Fatal("stale handle reports pending after slot reuse")
	}
	e.Cancel(stale) // must NOT cancel the new occupant
	e.Cancel(stale)
	if !fresh.Pending() {
		t.Fatal("stale cancel killed the recycled slot's new event")
	}
	e.Run()
	if !fired {
		t.Fatal("recycled-slot event did not fire")
	}
}

// Pooled-arena safety: a handle to a fired event is likewise invalidated.
func TestPooledSlotReuseAfterFire(t *testing.T) {
	e := NewEngine()
	var first Event
	first = e.At(1, func() {
		// The firing slot is recycled before the callback runs; scheduling
		// here lands in the same arena slot with a bumped generation.
		next := e.At(2, func() {})
		if next.idx != first.idx {
			t.Errorf("slot not recycled inside callback: %d vs %d", next.idx, first.idx)
		}
		e.Cancel(first) // stale: must not touch next
		if !next.Pending() {
			t.Error("stale cancel of fired event killed its slot's new event")
		}
	})
	e.Run()
	if e.Executed() != 2 {
		t.Fatalf("executed = %d, want 2", e.Executed())
	}
}

// Same-tick FIFO ordering must survive slot recycling: events scheduled at
// one instant through recycled slots still fire in scheduling order.
func TestSameTickOrderingAcrossRecycledSlots(t *testing.T) {
	e := NewEngine()
	// Create and cancel a batch to build a shuffled freelist.
	evs := make([]Event, 8)
	for i := range evs {
		evs[i] = e.At(1, func() {})
	}
	for _, i := range []int{3, 0, 7, 5, 1, 6, 2, 4} {
		e.Cancel(evs[i])
	}
	var got []int
	for i := 0; i < 8; i++ {
		i := i
		e.At(2, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-tick order broken across recycled slots: %v", got)
		}
	}
}

// The kernel itself must not allocate per event in steady state: slots and
// heap space are recycled. (The closure passed in is the caller's.)
func TestEngineSteadyStateAllocs(t *testing.T) {
	e := NewEngine()
	fn := func() {}
	// Warm up the arena.
	for i := 0; i < 64; i++ {
		e.After(1, fn)
	}
	e.Run()
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 64; i++ {
			e.After(1, fn)
		}
		e.Run()
	})
	if allocs > 0 {
		t.Fatalf("engine allocates %.1f objects per 64-event batch in steady state, want 0", allocs)
	}
}

func BenchmarkEngine(b *testing.B) {
	e := NewEngine()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.After(float64(i%100)+1, func() {})
		if e.Pending() > 1024 {
			for e.Pending() > 0 {
				e.Step()
			}
		}
	}
	e.Run()
}
