package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineFiresInOrder(t *testing.T) {
	e := NewEngine()
	var got []float64
	for _, at := range []float64{5, 1, 3, 2, 4} {
		at := at
		e.At(at, func() { got = append(got, at) })
	}
	e.Run()
	if !sort.Float64sAreSorted(got) {
		t.Fatalf("events fired out of order: %v", got)
	}
	if len(got) != 5 {
		t.Fatalf("fired %d events, want 5", len(got))
	}
	if e.Now() != 5 {
		t.Fatalf("clock = %v, want 5", e.Now())
	}
}

func TestEngineSameTimeFIFO(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(7, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.At(1, func() { fired = true })
	e.Cancel(ev)
	e.Cancel(ev) // idempotent
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if ev.Pending() {
		t.Fatal("cancelled event still pending")
	}
}

func TestEngineCancelMiddleOfHeap(t *testing.T) {
	e := NewEngine()
	var got []float64
	evs := make([]*Event, 0, 100)
	for i := 0; i < 100; i++ {
		at := float64((i * 37) % 100)
		evs = append(evs, e.At(at, func() { got = append(got, at) }))
	}
	for i := 0; i < 100; i += 3 {
		e.Cancel(evs[i])
	}
	e.Run()
	if len(got) != 66 {
		t.Fatalf("fired %d events, want 66", len(got))
	}
	if !sort.Float64sAreSorted(got) {
		t.Fatalf("out of order after cancellations: %v", got)
	}
}

func TestEngineSchedulingInsideEvents(t *testing.T) {
	e := NewEngine()
	var got []float64
	e.At(1, func() {
		e.After(1, func() { got = append(got, e.Now()) })
		e.After(0.5, func() { got = append(got, e.Now()) })
	})
	e.Run()
	want := []float64{1.5, 2}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestEnginePastSchedulingPanics(t *testing.T) {
	e := NewEngine()
	e.At(10, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.At(5, func() {})
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 10; i++ {
		e.At(float64(i), func() { count++ })
	}
	e.RunUntil(5)
	if count != 5 {
		t.Fatalf("count = %d, want 5 (events at t<=5)", count)
	}
	if e.Now() != 5 {
		t.Fatalf("clock = %v, want 5", e.Now())
	}
	e.RunUntil(20)
	if count != 10 || e.Now() != 20 {
		t.Fatalf("after RunUntil(20): count=%d now=%v", count, e.Now())
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	e := NewEngine()
	e.At(3, func() {
		e.After(-5, func() {
			if e.Now() != 3 {
				t.Errorf("negative delay fired at %v, want 3", e.Now())
			}
		})
	})
	e.Run()
}

func TestTicker(t *testing.T) {
	e := NewEngine()
	var ticks []float64
	tk := e.NewTicker(10, func(now Time) {
		ticks = append(ticks, now)
	})
	e.At(45, func() { tk.Stop() })
	e.Run()
	want := []float64{10, 20, 30, 40}
	if len(ticks) != len(want) {
		t.Fatalf("ticks = %v, want %v", ticks, want)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("ticks = %v, want %v", ticks, want)
		}
	}
}

func TestTickerStopWithinCallback(t *testing.T) {
	e := NewEngine()
	n := 0
	var tk *Ticker
	tk = e.NewTicker(1, func(Time) {
		n++
		if n == 3 {
			tk.Stop()
		}
	})
	e.Run()
	if n != 3 {
		t.Fatalf("ticker fired %d times, want 3", n)
	}
}

// Property: for any batch of event times, execution order is sorted and the
// count matches.
func TestEventOrderProperty(t *testing.T) {
	f := func(times []uint16) bool {
		e := NewEngine()
		var got []float64
		for _, v := range times {
			at := float64(v)
			e.At(at, func() { got = append(got, at) })
		}
		e.Run()
		return len(got) == len(times) && sort.Float64sAreSorted(got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: cancelling a random subset never breaks ordering and fires
// exactly the survivors.
func TestEventCancelProperty(t *testing.T) {
	f := func(times []uint16, seed int64) bool {
		e := NewEngine()
		r := rand.New(rand.NewSource(seed))
		var got []float64
		evs := make([]*Event, len(times))
		for i, v := range times {
			at := float64(v)
			evs[i] = e.At(at, func() { got = append(got, at) })
		}
		cancelled := 0
		for _, ev := range evs {
			if r.Intn(2) == 0 {
				e.Cancel(ev)
				cancelled++
			}
		}
		e.Run()
		return len(got) == len(times)-cancelled && sort.Float64sAreSorted(got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestRNGForkIndependentOfConsumption(t *testing.T) {
	a := NewRNG(7)
	b := NewRNG(7)
	for i := 0; i < 50; i++ {
		a.Float64() // consume parent a only
	}
	fa := a.Fork("trace")
	fb := b.Fork("trace")
	for i := 0; i < 20; i++ {
		if fa.Float64() != fb.Float64() {
			t.Fatal("fork depends on parent consumption")
		}
	}
}

func TestRNGForkDistinctLabels(t *testing.T) {
	r := NewRNG(7)
	a := r.Fork("alpha")
	b := r.Fork("beta")
	same := 0
	for i := 0; i < 32; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same == 32 {
		t.Fatal("different labels produced identical streams")
	}
	x := r.ForkN("node", 1)
	y := r.ForkN("node", 2)
	if x.Float64() == y.Float64() && x.Float64() == y.Float64() {
		t.Fatal("ForkN streams for different indices look identical")
	}
}

func TestSeedFrom(t *testing.T) {
	if SeedFrom("a", "b") == SeedFrom("ab") {
		t.Fatal("SeedFrom must separate parts")
	}
	if SeedFrom("x") != SeedFrom("x") {
		t.Fatal("SeedFrom not deterministic")
	}
}

func BenchmarkEngine(b *testing.B) {
	e := NewEngine()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.After(float64(i%100)+1, func() {})
		if e.Pending() > 1024 {
			for e.Pending() > 0 {
				e.Step()
			}
		}
	}
	e.Run()
}
