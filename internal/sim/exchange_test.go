package sim

import (
	"fmt"
	"testing"
)

// exchangePartition is one message-producing entity group: it runs a
// deterministic event chain on its shard engine and posts a message to its
// outbox for every event, so the control-side delivery log captures the
// merged cross-shard ordering.
type exchangePartition struct {
	id    int
	eng   *Engine
	op    Op
	ob    *Outbox
	topic Topic
	state uint64
	count int
}

func (p *exchangePartition) next() float64 {
	p.state = p.state*6364136223846793005 + 1442695040888963407
	return 0.25 + float64(p.state%89)/16
}

func (p *exchangePartition) fire(pay Payload) {
	p.count++
	p.ob.Post(Msg{Time: p.eng.Now(), Topic: p.topic, I: int32(p.id), X: float64(pay.I)})
	if pay.I > 0 {
		p.eng.AfterOp(p.next(), p.op, Payload{A: p, I: pay.I - 1})
	}
}

// runExchangeWorkload runs the reference exchange workload on n shards and
// returns the control-side delivery log plus the hook observations. Both
// must be byte-identical for every n: message merge order is pinned by
// (time, outbox creation order), and hooks see the same barrier sequence.
func runExchangeWorkload(n int) (delivered, hooks []string, st ShardedStats) {
	const (
		partitions = 6
		horizon    = 120.0
		window     = 10.0
	)
	sh := NewSharded(n)
	topic := sh.RegisterTopic(func(m Msg) {
		delivered = append(delivered, fmt.Sprintf("%.4f p%d i%.0f@%.4f", float64(sh.Control().Now()), m.I, m.X, float64(m.Time)))
	})
	parts := make([]*exchangePartition, partitions)
	// Outboxes are created in partition index order — NOT shard order — so
	// the merge tie-break is invariant under the shard mapping.
	for i := range parts {
		eng := sh.Shard(i % n)
		p := &exchangePartition{id: i, eng: eng, ob: sh.NewOutbox(), topic: topic, state: uint64(3*i + 7)}
		p.op = eng.RegisterOp(func(pay Payload) { pay.A.(*exchangePartition).fire(pay) })
		parts[i] = p
		eng.AtOp(Time(float64(i)/4), p.op, Payload{A: p, I: 25})
	}
	sh.OnBarrier(func(now Time) {
		sum := 0
		for _, p := range parts {
			sum += p.count
		}
		hooks = append(hooks, fmt.Sprintf("%.1f=%d", float64(now), sum))
	})
	ctl := sh.Control()
	sh.Run(window, func() bool { return ctl.Now() >= horizon })
	return delivered, hooks, sh.Stats()
}

// TestExchangeOrderingInvariance pins the tentpole's determinism claim at
// the sim layer: the merged message stream delivered on the control engine
// (and the barrier-hook observations) are byte-identical at 1, 2 and 4
// shards, even though the partitions' shard mapping and intra-window
// interleavings differ.
func TestExchangeOrderingInvariance(t *testing.T) {
	refDel, refHooks, refSt := runExchangeWorkload(1)
	if len(refDel) == 0 {
		t.Fatal("reference run delivered no messages")
	}
	if refSt.Messages != uint64(len(refDel)) {
		t.Fatalf("Messages stat = %d, want %d delivered", refSt.Messages, len(refDel))
	}
	if len(refHooks) == 0 || refSt.Barriers != uint64(len(refHooks)) {
		t.Fatalf("hook ran %d times over %d barriers, want one per barrier", len(refHooks), refSt.Barriers)
	}
	for _, shards := range []int{2, 4} {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			del, hooks, st := runExchangeWorkload(shards)
			if fmt.Sprint(del) != fmt.Sprint(refDel) {
				t.Fatalf("delivery log diverged from 1-shard reference:\n 1: %v\n%2d: %v", refDel, shards, del)
			}
			if fmt.Sprint(hooks) != fmt.Sprint(refHooks) {
				t.Fatalf("hook log diverged from 1-shard reference:\n 1: %v\n%2d: %v", refHooks, shards, hooks)
			}
			if st.Messages != refSt.Messages {
				t.Fatalf("Messages = %d, want %d", st.Messages, refSt.Messages)
			}
		})
	}
}

// TestExchangeEmptyOutboxFastPath pins that a kernel with registered
// outboxes but no posted messages takes the empty-merge fast path: zero
// messages counted, zero control events beyond the kernel's own, and the
// barrier loop still runs hooks.
func TestExchangeEmptyOutboxFastPath(t *testing.T) {
	sh := NewSharded(2)
	sh.RegisterTopic(func(Msg) { t.Fatal("topic handler ran with no posted messages") })
	for i := 0; i < 4; i++ {
		sh.NewOutbox()
	}
	barriers := 0
	sh.OnBarrier(func(Time) { barriers++ })
	for i := 0; i < 2; i++ {
		eng := sh.Shard(i)
		k := 0
		var chain func()
		chain = func() {
			k++
			if k < 20 {
				eng.After(1, chain)
			}
		}
		eng.After(1, chain)
	}
	sh.Run(5, nil)
	st := sh.Stats()
	if st.Messages != 0 {
		t.Fatalf("Messages = %d, want 0", st.Messages)
	}
	if st.ControlEvents != 0 {
		t.Fatalf("control engine fired %d events, want 0 (empty merge must not schedule)", st.ControlEvents)
	}
	if barriers == 0 || uint64(barriers) != st.Barriers {
		t.Fatalf("hooks ran %d times over %d barriers", barriers, st.Barriers)
	}
}

// TestExchangePanics pins the construction-time validation of the exchange
// API: nil handlers and invalid topics must fail loudly.
func TestExchangePanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	sh := NewSharded(1)
	mustPanic("RegisterTopic(nil)", func() { sh.RegisterTopic(nil) })
	mustPanic("OnBarrier(nil)", func() { sh.OnBarrier(nil) })
	mustPanic("Post with zero topic", func() { sh.NewOutbox().Post(Msg{Time: 1}) })
}
