package sim

import (
	"hash/fnv"
	"math/rand/v2"
)

// RNG is a deterministic pseudo-random source. Independent subsystems of a
// simulation fork labelled sub-streams so that adding or removing one
// consumer (for example SpeQuloS cloud workers) does not perturb the draws
// seen by the others — the property behind the paper's paired
// with/without-SpeQuloS comparisons.
type RNG struct {
	*rand.Rand
	seed uint64
}

// NewRNG returns a deterministic source for the given seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{Rand: rand.New(rand.NewPCG(seed, seed^0x9E3779B97F4A7C15)), seed: seed}
}

// Seed returns the seed this stream was created from.
func (r *RNG) Seed() uint64 { return r.seed }

// Fork derives an independent stream identified by label. Forking is a pure
// function of (seed, label): the same label always yields the same stream,
// regardless of how much the parent has been consumed.
func (r *RNG) Fork(label string) *RNG {
	h := fnv.New64a()
	h.Write([]byte(label))
	return NewRNG(r.seed ^ h.Sum64() ^ 0xD1B54A32D192ED03)
}

// ForkN derives an independent stream identified by a label and an index,
// e.g. one stream per trace node.
func (r *RNG) ForkN(label string, n int) *RNG {
	h := fnv.New64a()
	h.Write([]byte(label))
	var buf [8]byte
	v := uint64(n)
	for i := range buf {
		buf[i] = byte(v >> (8 * i))
	}
	h.Write(buf[:])
	return NewRNG(r.seed ^ h.Sum64() ^ 0xA0761D6478BD642F)
}

// SeedFrom hashes a list of strings into a seed, for building scenario seeds
// like (experiment, middleware, trace, bot, offset).
func SeedFrom(parts ...string) uint64 {
	h := fnv.New64a()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	return h.Sum64()
}
