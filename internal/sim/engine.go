// Package sim provides a deterministic discrete-event simulation kernel:
// a virtual clock, a cancellable event queue, periodic tickers and labelled
// random-number streams.
//
// All SpeQuloS simulations (middleware servers, availability traces, cloud
// workers, the SpeQuloS monitor loop) are driven by a single Engine. Events
// scheduled at the same instant fire in scheduling order, which makes every
// run reproducible given the same seed.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is virtual time in seconds since the start of the simulation.
type Time = float64

// Event is a scheduled callback. It is returned by the scheduling methods
// so callers can cancel it before it fires.
type Event struct {
	at    Time
	seq   uint64
	fn    func()
	index int // heap index; -1 once fired or cancelled
}

// At returns the virtual time the event is scheduled for.
func (e *Event) At() Time { return e.at }

// Pending reports whether the event is still queued.
func (e *Event) Pending() bool { return e != nil && e.index >= 0 }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Engine is a single-threaded discrete-event scheduler. It is not safe for
// concurrent use; simulations are deterministic single-goroutine programs.
type Engine struct {
	now      Time
	seq      uint64
	queue    eventHeap
	executed uint64
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Executed returns the number of events fired so far (useful in benchmarks).
func (e *Engine) Executed() uint64 { return e.executed }

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.queue) }

// At schedules fn at absolute virtual time t. Scheduling in the past panics:
// it is always a simulation bug.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %.3f before now %.3f", t, e.now))
	}
	if math.IsNaN(t) || math.IsInf(t, 0) {
		panic(fmt.Sprintf("sim: scheduling event at invalid time %v", t))
	}
	e.seq++
	ev := &Event{at: t, seq: e.seq, fn: fn}
	heap.Push(&e.queue, ev)
	return ev
}

// After schedules fn d seconds from now. Negative delays are clamped to 0.
func (e *Engine) After(d float64, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// Cancel removes a pending event. Cancelling a fired or already-cancelled
// event is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.index < 0 {
		return
	}
	heap.Remove(&e.queue, ev.index)
	ev.index = -1
	ev.fn = nil
}

// Step fires the earliest event and advances the clock to it. It returns
// false when the queue is empty.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*Event)
	e.now = ev.at
	fn := ev.fn
	ev.fn = nil
	e.executed++
	fn()
	return true
}

// Run fires events until the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil fires events with time ≤ t, then sets the clock to t. Events
// scheduled exactly at t do fire.
func (e *Engine) RunUntil(t Time) {
	for len(e.queue) > 0 && e.queue[0].at <= t {
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
}

// RunWhile fires events while cond() holds and the queue is non-empty.
func (e *Engine) RunWhile(cond func() bool) {
	for cond() && e.Step() {
	}
}

// Ticker invokes a callback at a fixed period until stopped. The callback
// may stop the ticker from within itself.
type Ticker struct {
	engine *Engine
	period float64
	fn     func(Time)
	ev     *Event
	done   bool
}

// NewTicker starts a periodic callback; the first tick fires one period from
// now. Period must be positive.
func (e *Engine) NewTicker(period float64, fn func(Time)) *Ticker {
	if period <= 0 {
		panic("sim: ticker period must be positive")
	}
	t := &Ticker{engine: e, period: period, fn: fn}
	t.schedule()
	return t
}

func (t *Ticker) schedule() {
	t.ev = t.engine.After(t.period, func() {
		if t.done {
			return
		}
		t.fn(t.engine.Now())
		if !t.done {
			t.schedule()
		}
	})
}

// Stop halts the ticker; idempotent.
func (t *Ticker) Stop() {
	if t.done {
		return
	}
	t.done = true
	t.engine.Cancel(t.ev)
}
