// Package sim provides a deterministic discrete-event simulation kernel:
// a virtual clock, a cancellable event queue, periodic tickers and labelled
// random-number streams.
//
// All SpeQuloS simulations (middleware servers, availability traces, cloud
// workers, the SpeQuloS monitor loop) are driven by a single Engine. Events
// scheduled at the same instant fire in scheduling order, which makes every
// run reproducible given the same seed.
//
// The kernel is allocation-free on its hot path: events live in an
// index-addressed arena recycled through a freelist, the priority queue is a
// specialized binary heap of arena indices (no interface boxing), and the
// Event handles returned to callers are small values carrying a generation
// counter, so a handle to a fired-and-recycled slot can never cancel the
// slot's next occupant.
//
// Events come in two flavors. Closure events (At/After) carry a func() —
// convenient, but every capture allocates. Op-code events (AtOp/AfterOp)
// carry a registered handler index plus an inline Payload stored in the
// arena slot itself, so scheduling allocates nothing and the event is a
// plain value relocatable across queues; the simulation hot paths (worker
// churn, task completions, deadlines, ticker rearms) all use them.
package sim

import (
	"errors"
	"fmt"
	"math"
)

// Time is virtual time in seconds since the start of the simulation.
type Time = float64

// ErrInvalidTime reports scheduling at NaN or ±Inf.
var ErrInvalidTime = errors.New("sim: invalid event time")

// ErrPastTime reports scheduling before the current virtual time. The event
// is still created, clamped to fire at the current time (in FIFO order after
// events already scheduled for it), so simulations never observe a clock
// moving backwards or events firing out of order.
var ErrPastTime = errors.New("sim: event time before current virtual time")

// Event is a cancellable handle to a scheduled callback. It is a small
// value: copies are cheap and the zero value is a valid "no event" handle
// (not pending, cancelling it is a no-op).
type Event struct {
	eng *Engine
	at  Time
	idx int32
	gen uint32
}

// At returns the virtual time the event was scheduled for (after any
// past-time clamping). It stays readable after the event fires.
func (e Event) At() Time { return e.at }

// Pending reports whether the event is still queued.
func (e Event) Pending() bool {
	if e.eng == nil || int(e.idx) >= len(e.eng.slots) {
		return false
	}
	s := &e.eng.slots[e.idx]
	return s.gen == e.gen && s.heapIdx >= 0
}

// Op identifies an event handler registered on an engine with RegisterOp.
// The zero Op is "no op" (a closure event). Ops are engine-local: an Op
// registered on one engine must not be scheduled on another.
type Op int32

// Payload is the inline argument block of an op-code event, stored directly
// in the event's arena slot. A and B hold receiver/argument pointers —
// storing a pointer in an interface does not allocate — I carries a small
// integer (an index, a count) and X a float (a base time, a duration), so
// the typical simulation callback schedules with zero heap allocations.
type Payload struct {
	// A and B are pointer-shaped arguments (e.g. a worker and a task).
	A, B any
	// I is an inline integer argument (e.g. a trace-interval index).
	I int32
	// X is an inline float argument (e.g. a schedule base time).
	X float64
}

// OpFunc is a registered event handler: it receives the payload the event
// was scheduled with. Handlers run on the engine's event loop exactly like
// closure callbacks.
type OpFunc func(p Payload)

// slot is one arena cell. A slot is live while heapIdx >= 0; firing or
// cancelling bumps gen and returns the slot to the freelist, invalidating
// every outstanding handle to the previous occupant. An event is either a
// closure (fn, op == 0) or an op-code event (op > 0, payload inline).
type slot struct {
	at      Time
	seq     uint64
	fn      func()
	pay     Payload
	heapIdx int32
	gen     uint32
	op      Op
}

// Engine is a single-threaded discrete-event scheduler. It is not safe for
// concurrent use; simulations are deterministic single-goroutine programs.
type Engine struct {
	now      Time
	seq      uint64
	executed uint64
	clamped  uint64

	slots []slot
	free  []int32
	heap  []int32 // arena indices ordered by (at, seq)

	// ops is the registered op-handler table; Op n indexes ops[n-1].
	ops []OpFunc
	// tickerOp is the lazily-registered rearm handler shared by all Tickers.
	tickerOp Op
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Executed returns the number of events fired so far (useful in benchmarks).
func (e *Engine) Executed() uint64 { return e.executed }

// Clamped returns the number of events whose requested time lay in the past
// and was clamped to the then-current virtual time.
func (e *Engine) Clamped() uint64 { return e.clamped }

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.heap) }

// RegisterOp registers an event handler on the engine and returns its op
// code. Registration is meant to happen once per handler at construction
// time (a server registers its callback family when it is built); the
// returned Op is then scheduled with AtOp/AfterOp without any per-event
// allocation. Ops cannot be unregistered.
func (e *Engine) RegisterOp(fn OpFunc) Op {
	if fn == nil {
		panic("sim: RegisterOp with nil handler")
	}
	e.ops = append(e.ops, fn)
	return Op(len(e.ops))
}

// ScheduleAt schedules fn at absolute virtual time t, validating the time.
// NaN/±Inf returns ErrInvalidTime and no event. A time before the current
// virtual time returns ErrPastTime together with a valid event clamped to
// fire at the current time — callers that treat past scheduling as a bug can
// check the error; callers that expect clamping may ignore it.
func (e *Engine) ScheduleAt(t Time, fn func()) (Event, error) {
	if math.IsNaN(t) || math.IsInf(t, 0) {
		return Event{}, fmt.Errorf("%w: %v", ErrInvalidTime, t)
	}
	var err error
	if t < e.now {
		err = fmt.Errorf("%w: %.6g before now %.6g", ErrPastTime, t, e.now)
		t = e.now
		e.clamped++
	}
	return e.push(t, fn, 0, Payload{}), err
}

// At schedules fn at absolute virtual time t. Times in the past are clamped
// to the current virtual time (counted by Clamped); invalid times panic.
func (e *Engine) At(t Time, fn func()) Event {
	ev, err := e.ScheduleAt(t, fn)
	if err != nil && errors.Is(err, ErrInvalidTime) {
		panic(err.Error())
	}
	return ev
}

// After schedules fn d seconds from now. Negative delays are clamped to 0
// (counted by Clamped); NaN and infinite delays panic.
func (e *Engine) After(d float64, fn func()) Event {
	if math.IsNaN(d) || math.IsInf(d, 0) {
		panic(fmt.Sprintf("sim: scheduling event with invalid delay %v", d))
	}
	if d < 0 {
		e.clamped++
		d = 0
	}
	return e.push(e.now+d, fn, 0, Payload{})
}

// AtOp schedules a registered op at absolute virtual time t with the given
// payload. Time handling matches At: past times clamp to now, invalid times
// panic. Scheduling an op event performs no heap allocation.
func (e *Engine) AtOp(t Time, op Op, p Payload) Event {
	if math.IsNaN(t) || math.IsInf(t, 0) {
		panic(fmt.Sprintf("sim: scheduling op event at invalid time %v", t))
	}
	e.checkOp(op)
	if t < e.now {
		t = e.now
		e.clamped++
	}
	return e.push(t, nil, op, p)
}

// AfterOp schedules a registered op d seconds from now with the given
// payload. Delay handling matches After: negative delays clamp to 0, NaN and
// infinite delays panic. Scheduling an op event performs no heap allocation.
func (e *Engine) AfterOp(d float64, op Op, p Payload) Event {
	if math.IsNaN(d) || math.IsInf(d, 0) {
		panic(fmt.Sprintf("sim: scheduling op event with invalid delay %v", d))
	}
	e.checkOp(op)
	if d < 0 {
		e.clamped++
		d = 0
	}
	return e.push(e.now+d, nil, op, p)
}

// checkOp validates an op code against the registration table.
func (e *Engine) checkOp(op Op) {
	if op <= 0 || int(op) > len(e.ops) {
		panic(fmt.Sprintf("sim: scheduling unregistered op %d", op))
	}
}

// push allocates a slot (reusing the freelist) and inserts it in the heap.
func (e *Engine) push(t Time, fn func(), op Op, p Payload) Event {
	e.seq++
	var idx int32
	if n := len(e.free); n > 0 {
		idx = e.free[n-1]
		e.free = e.free[:n-1]
	} else {
		idx = int32(len(e.slots))
		e.slots = append(e.slots, slot{})
	}
	s := &e.slots[idx]
	s.at = t
	s.seq = e.seq
	s.fn = fn
	s.op = op
	s.pay = p
	s.heapIdx = int32(len(e.heap))
	e.heap = append(e.heap, idx)
	e.siftUp(len(e.heap) - 1)
	return Event{eng: e, at: t, idx: idx, gen: s.gen}
}

// Cancel removes a pending event. Cancelling a fired, already-cancelled or
// zero-value event is a no-op; so is cancelling through a stale handle whose
// slot has been recycled for a newer event.
func (e *Engine) Cancel(ev Event) {
	if ev.eng != e || e == nil || int(ev.idx) >= len(e.slots) {
		return
	}
	s := &e.slots[ev.idx]
	if s.gen != ev.gen || s.heapIdx < 0 {
		return
	}
	e.heapRemove(int(s.heapIdx))
	e.release(ev.idx)
}

// release recycles a slot: the generation bump invalidates old handles.
// Payload pointers are dropped so the arena does not retain dead objects.
func (e *Engine) release(idx int32) {
	s := &e.slots[idx]
	s.fn = nil
	s.op = 0
	s.pay = Payload{}
	s.heapIdx = -1
	s.gen++
	e.free = append(e.free, idx)
}

// Step fires the earliest event and advances the clock to it. It returns
// false when the queue is empty.
func (e *Engine) Step() bool {
	if len(e.heap) == 0 {
		return false
	}
	idx := e.heap[0]
	n := len(e.heap) - 1
	if n > 0 {
		e.heap[0] = e.heap[n]
		e.slots[e.heap[0]].heapIdx = 0
	}
	e.heap = e.heap[:n]
	if n > 1 {
		e.siftDown(0)
	}
	s := &e.slots[idx]
	e.now = s.at
	fn := s.fn
	op := s.op
	pay := s.pay
	// Recycle before invoking: the callback may immediately schedule into
	// this slot; the generation bump keeps handles to the fired event
	// invalid, and the op/payload copies above survive the reuse.
	e.release(idx)
	e.executed++
	if op > 0 {
		e.ops[op-1](pay)
	} else {
		fn()
	}
	return true
}

// Run fires events until the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil fires events with time ≤ t, then sets the clock to t. Events
// scheduled exactly at t do fire.
func (e *Engine) RunUntil(t Time) {
	for len(e.heap) > 0 && e.slots[e.heap[0]].at <= t {
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
}

// RunBefore fires events with time strictly < t, then sets the clock to t.
// Events scheduled exactly at t do NOT fire — they belong to the next
// window. The sharded kernel uses it to execute one barrier window
// [now, t): after RunBefore every shard clock sits exactly on the barrier,
// so cross-shard effects injected at the barrier are never in a shard's
// past.
func (e *Engine) RunBefore(t Time) {
	for len(e.heap) > 0 && e.slots[e.heap[0]].at < t {
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
}

// NextEventTime returns the time of the earliest pending event, or
// (0, false) when the queue is empty.
func (e *Engine) NextEventTime() (Time, bool) {
	if len(e.heap) == 0 {
		return 0, false
	}
	return e.slots[e.heap[0]].at, true
}

// RunWhile fires events while cond() holds and the queue is non-empty.
func (e *Engine) RunWhile(cond func() bool) {
	for cond() && e.Step() {
	}
}

// less orders heap entries by (time, scheduling sequence): same-instant
// events fire in FIFO order, which the determinism guarantees rely on.
func (e *Engine) less(a, b int32) bool {
	sa, sb := &e.slots[a], &e.slots[b]
	if sa.at != sb.at {
		return sa.at < sb.at
	}
	return sa.seq < sb.seq
}

func (e *Engine) siftUp(i int) {
	h := e.heap
	for i > 0 {
		parent := (i - 1) / 2
		if !e.less(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		e.slots[h[i]].heapIdx = int32(i)
		e.slots[h[parent]].heapIdx = int32(parent)
		i = parent
	}
}

func (e *Engine) siftDown(i int) {
	h := e.heap
	n := len(h)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		least := left
		if right := left + 1; right < n && e.less(h[right], h[left]) {
			least = right
		}
		if !e.less(h[least], h[i]) {
			return
		}
		h[i], h[least] = h[least], h[i]
		e.slots[h[i]].heapIdx = int32(i)
		e.slots[h[least]].heapIdx = int32(least)
		i = least
	}
}

// heapRemove deletes the heap entry at position i.
func (e *Engine) heapRemove(i int) {
	n := len(e.heap) - 1
	if i != n {
		moved := e.heap[n]
		e.heap[i] = moved
		e.slots[moved].heapIdx = int32(i)
	}
	e.heap = e.heap[:n]
	if i < n {
		e.siftDown(i)
		e.siftUp(i)
	}
}

// Ticker invokes a callback at a fixed period until stopped. The callback
// may stop the ticker from within itself.
type Ticker struct {
	engine *Engine
	period float64
	fn     func(Time)
	ev     Event
	done   bool
}

// NewTicker starts a periodic callback; the first tick fires one period from
// now. Period must be positive. Rearming rides the op-code event path, so a
// long-running ticker allocates once at creation and never per tick.
func (e *Engine) NewTicker(period float64, fn func(Time)) *Ticker {
	if period <= 0 {
		panic("sim: ticker period must be positive")
	}
	if e.tickerOp == 0 {
		e.tickerOp = e.RegisterOp(func(p Payload) { p.A.(*Ticker).fire() })
	}
	t := &Ticker{engine: e, period: period, fn: fn}
	t.schedule()
	return t
}

// fire runs one tick and rearms unless the callback stopped the ticker.
func (t *Ticker) fire() {
	if t.done {
		return
	}
	t.fn(t.engine.Now())
	if !t.done {
		t.schedule()
	}
}

func (t *Ticker) schedule() {
	t.ev = t.engine.AfterOp(t.period, t.engine.tickerOp, Payload{A: t})
}

// Stop halts the ticker; idempotent.
func (t *Ticker) Stop() {
	if t.done {
		return
	}
	t.done = true
	t.engine.Cancel(t.ev)
}
