package sim

import (
	"fmt"
	"testing"
)

func TestRunBeforeExcludesBarrierInstant(t *testing.T) {
	e := NewEngine()
	var fired []Time
	e.At(5, func() { fired = append(fired, 5) })
	e.At(10, func() { fired = append(fired, 10) })
	e.RunBefore(10)
	if len(fired) != 1 || fired[0] != 5 {
		t.Fatalf("RunBefore(10) fired %v, want only the event at 5", fired)
	}
	if e.Now() != 10 {
		t.Fatalf("clock after RunBefore(10) = %v, want 10", e.Now())
	}
	if nt, ok := e.NextEventTime(); !ok || nt != 10 {
		t.Fatalf("NextEventTime = %v,%v, want 10,true", nt, ok)
	}
	e.RunBefore(11)
	if len(fired) != 2 {
		t.Fatalf("event at the previous barrier did not fire in the next window: %v", fired)
	}
	if _, ok := e.NextEventTime(); ok {
		t.Fatal("NextEventTime reports pending events on a drained engine")
	}
}

func TestShardedPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("NewSharded(0)", func() { NewSharded(0) })
	mustPanic("Run with zero window", func() { NewSharded(1).Run(0, nil) })
}

// shardedPartition is one isolated entity group in the determinism
// workload: it schedules a deterministic chain of events on whatever shard
// engine it is mapped to, and counts work the control monitor aggregates.
type shardedPartition struct {
	id    int
	eng   *Engine
	op    Op
	state uint64
	count int
	log   []string
}

func (p *shardedPartition) next() float64 {
	// Deterministic per-partition LCG: step durations differ across
	// partitions so shard workloads are intentionally unbalanced.
	p.state = p.state*6364136223846793005 + 1442695040888963407
	return 0.25 + float64(p.state%97)/16
}

func (p *shardedPartition) fire(pay Payload) {
	p.count++
	p.log = append(p.log, fmt.Sprintf("%.4f#%d", float64(p.eng.Now()), pay.I))
	if pay.I > 0 {
		p.eng.AfterOp(p.next(), p.op, Payload{A: p, I: pay.I - 1})
	}
}

// runShardedWorkload runs the reference workload on n shards and returns
// the control monitor's observation log plus each partition's event log.
// Everything returned must be byte-identical for every n.
func runShardedWorkload(n int) (monitor []string, parts []*shardedPartition) {
	const (
		partitions = 8
		horizon    = 200.0
		window     = 10.0
	)
	sh := NewSharded(n)
	parts = make([]*shardedPartition, partitions)
	for i := range parts {
		eng := sh.Shard(i % n)
		p := &shardedPartition{id: i, eng: eng, state: uint64(i + 1)}
		p.op = eng.RegisterOp(func(pay Payload) { pay.A.(*shardedPartition).fire(pay) })
		parts[i] = p
		eng.AtOp(Time(float64(i)/3), p.op, Payload{A: p, I: 40})
	}
	ctl := sh.Control()
	tick := 0
	ctl.NewTicker(window, func(now Time) {
		sum := 0
		for _, p := range parts {
			sum += p.count
		}
		monitor = append(monitor, fmt.Sprintf("%.1f=%d", float64(now), sum))
		// Cross-shard injection: the monitor grants one partition extra
		// work, exercising control→shard scheduling at a barrier.
		p := parts[tick%partitions]
		p.eng.AtOp(now+3, p.op, Payload{A: p, I: 2})
		tick++
	})
	sh.Run(window, func() bool { return ctl.Now() >= horizon })
	return monitor, parts
}

// TestShardedDeterminism is the determinism guard: the same partitioned
// workload must produce identical control-plane observations and identical
// per-partition event sequences at every shard count. Runs race-enabled in
// CI, so it also proves the barrier protocol's happens-before edges.
func TestShardedDeterminism(t *testing.T) {
	refMon, refParts := runShardedWorkload(1)
	if len(refMon) == 0 {
		t.Fatal("reference run produced no monitor observations")
	}
	total := 0
	for _, p := range refParts {
		total += p.count
		if p.count == 0 {
			t.Fatalf("partition %d executed no events in reference run", p.id)
		}
	}
	for _, shards := range []int{2, 4, 8} {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			mon, parts := runShardedWorkload(shards)
			if fmt.Sprint(mon) != fmt.Sprint(refMon) {
				t.Fatalf("monitor log diverged from 1-shard reference:\n 1: %v\n%2d: %v", refMon, shards, mon)
			}
			for i, p := range parts {
				if fmt.Sprint(p.log) != fmt.Sprint(refParts[i].log) {
					t.Fatalf("partition %d event sequence diverged from 1-shard reference:\n 1: %v\n%2d: %v",
						i, refParts[i].log, shards, p.log)
				}
			}
		})
	}
}

func TestShardedStats(t *testing.T) {
	const n = 4
	sh := NewSharded(n)
	// Shard-local completion flags: shard callbacks must never write shared
	// state, that is the kernel's isolation contract.
	done := make([]bool, n)
	for i := 0; i < n; i++ {
		i := i
		eng := sh.Shard(i)
		var chain func()
		k := 0
		chain = func() {
			k++
			if k < 50 {
				eng.After(1, chain)
			} else {
				done[i] = true
			}
		}
		eng.After(1, chain)
	}
	sh.Run(5, nil)
	st := sh.Stats()
	if st.Barriers == 0 {
		t.Fatal("no barriers executed")
	}
	var sum uint64
	for _, c := range st.ShardEvents {
		sum += c
	}
	if sum+st.ControlEvents != sh.Executed() {
		t.Fatalf("stats events %d+%d != total executed %d", sum, st.ControlEvents, sh.Executed())
	}
	if sum != uint64(50*n) {
		t.Fatalf("shard events = %d, want %d", sum, 50*n)
	}
	for i, d := range done {
		if !d {
			t.Fatalf("shard %d chain did not complete", i)
		}
	}
	if st.StallSeconds < 0 {
		t.Fatalf("negative stall time %v", st.StallSeconds)
	}
}
