package emul

import (
	"context"
	"testing"

	"spequlos/internal/campaign"
)

// TestCrowdConformance is the concurrency acceptance gate: a reduced crowd
// cell (eight interleaved QoS batches on one trace) per middleware must
// agree between the in-process simulator and the deployable HTTP stack —
// batch by batch — on trigger tick, fleet size, credits billed and
// completion time, while the Scheduler polls the DG through one aggregated
// query per tick.
func TestCrowdConformance(t *testing.T) {
	spec := CrowdSpec()
	rep, err := RunConformance(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(campaign.AllMiddlewares()); len(rep.Cells) != want {
		t.Fatalf("cells: %d, want %d", len(rep.Cells), want)
	}
	for _, c := range rep.Cells {
		if len(c.Sim.Batches) != spec.Profile.Batches || len(c.Emul.Batches) != spec.Profile.Batches {
			t.Errorf("cell %s carries %d/%d batch metrics, want %d",
				c.Label(), len(c.Sim.Batches), len(c.Emul.Batches), spec.Profile.Batches)
		}
		if c.Pass {
			continue
		}
		t.Errorf("cell %s diverged (trigger=%v instances=%v credits=%v completion=%v err=%q)",
			c.Label(), c.TriggerMatch, c.InstancesMatch, c.CreditsMatch, c.CompletionMatch, c.Err)
		for i := range c.Sim.Batches {
			if i < len(c.Emul.Batches) && c.Sim.Batches[i] != c.Emul.Batches[i] {
				t.Logf("  batch %s:\n    sim:  %+v\n    emul: %+v",
					c.Sim.Batches[i].BatchID, c.Sim.Batches[i], c.Emul.Batches[i])
			}
		}
	}
}
