package emul

import (
	"context"
	"fmt"
	"math"
	"strings"
	"sync"

	"spequlos/internal/campaign"
	"spequlos/internal/core"
)

// Spec scopes one conformance campaign: the scenario subset to run through
// both execution paths, and the tolerances of the comparison.
type Spec struct {
	Profile     campaign.Profile
	Middlewares []string
	Traces      []string
	Bots        []string
	Strategies  []core.Strategy
	// OffsetIndexes selects the submission offsets to emulate (default {0}).
	OffsetIndexes []int
	// CompletionTol is the relative completion-time tolerance (default 1%).
	CompletionTol float64
	// CreditsTol is the relative credits tolerance (default 1e-6: the two
	// paths compute the same float expressions, so they agree to round-off).
	CreditsTol float64
	// Parallelism bounds concurrent emulated runs (0 = profile default).
	Parallelism int
	// Store, when non-nil, is reused for the simulator side: cells already
	// simulated are not re-run.
	Store *campaign.ResultStore
}

// QuickSpec is the quick-profile conformance subset CI runs: every
// middleware, two contrasting traces, and strategies covering all three
// triggers, both sizings and all three deployments.
func QuickSpec() Spec {
	return Spec{
		Profile:     campaign.Quick(),
		Middlewares: campaign.AllMiddlewares(),
		Traces:      []string{"seti", "g5klyo"},
		Bots:        []string{"SMALL"},
		Strategies:  mustStrategies("9C-C-R", "9C-G-F", "9A-C-D", "D-C-R"),
	}
}

// CrowdSpec is the concurrency conformance subset CI runs: a reduced crowd
// cell — eight interleaved QoS batches sharing one trace — per middleware,
// proving the HTTP stack agrees with the in-process simulator batch by
// batch while the Scheduler polls the DG through one aggregated query per
// tick. (The full crowd profile runs 200 batches; eight keeps the CI cell
// under a second while still exercising concurrent monitor state.)
func CrowdSpec() Spec {
	p := campaign.Crowd()
	p.Batches = 8
	p.SubmitSpread = 1800
	return Spec{
		Profile:     p,
		Middlewares: campaign.AllMiddlewares(),
		Traces:      []string{"seti"},
		Bots:        []string{"SMALL"},
		Strategies:  mustStrategies("9C-C-R"),
	}
}

func mustStrategies(labels ...string) []core.Strategy {
	out := make([]core.Strategy, len(labels))
	for i, l := range labels {
		st, err := core.StrategyByLabel(l)
		if err != nil {
			panic(err)
		}
		out[i] = st
	}
	return out
}

func (s Spec) withDefaults() Spec {
	if s.Profile.Name == "" {
		s.Profile = campaign.Quick()
	}
	if len(s.Middlewares) == 0 {
		s.Middlewares = campaign.Middlewares()
	}
	if len(s.Traces) == 0 {
		s.Traces = campaign.TraceNames()
	}
	if len(s.Bots) == 0 {
		s.Bots = campaign.BotClasses()
	}
	if len(s.Strategies) == 0 {
		s.Strategies = []core.Strategy{core.DefaultStrategy()}
	}
	if len(s.OffsetIndexes) == 0 {
		s.OffsetIndexes = []int{0}
	}
	if s.CompletionTol == 0 {
		s.CompletionTol = 0.01
	}
	if s.CreditsTol == 0 {
		s.CreditsTol = 1e-6
	}
	return s
}

// scenarios enumerates the cells of the spec in deterministic order.
func (s Spec) scenarios() []campaign.Scenario {
	var out []campaign.Scenario
	for _, mw := range s.Middlewares {
		for _, tn := range s.Traces {
			for _, bc := range s.Bots {
				for _, off := range s.OffsetIndexes {
					for i := range s.Strategies {
						st := s.Strategies[i]
						out = append(out, campaign.Scenario{
							Profile: s.Profile, Middleware: mw, TraceName: tn,
							BotClass: bc, Offset: off, Strategy: &st,
						})
					}
				}
			}
		}
	}
	return out
}

// Metrics are the values both execution paths must agree on.
type Metrics struct {
	Completed      bool    `json:"completed"`
	CompletionTime float64 `json:"completion_time"`
	TriggeredAt    float64 `json:"triggered_at"`
	Instances      int     `json:"instances"`
	CreditsBilled  float64 `json:"credits_billed"`
	// Batches carries the per-batch metrics of a multi-batch cell; the
	// comparison then runs batch by batch, so a crowd cell only conforms
	// when every individual user's trigger, fleet, credits and completion
	// agree across the two paths.
	Batches []BatchMetrics `json:"batches,omitempty"`
}

// BatchMetrics are one sub-batch's comparison values.
type BatchMetrics struct {
	BatchID        string  `json:"batch_id"`
	Completed      bool    `json:"completed"`
	CompletionTime float64 `json:"completion_time"`
	TriggeredAt    float64 `json:"triggered_at"`
	Instances      int     `json:"instances"`
	CreditsBilled  float64 `json:"credits_billed"`
}

// Cell is the conformance report of one scenario.
type Cell struct {
	Middleware string `json:"middleware"`
	Trace      string `json:"trace"`
	Bot        string `json:"bot"`
	Strategy   string `json:"strategy"`
	Offset     int    `json:"offset"`

	Sim  Metrics `json:"sim"`
	Emul Metrics `json:"emul"`

	TriggerMatch    bool   `json:"trigger_match"`
	InstancesMatch  bool   `json:"instances_match"`
	CreditsMatch    bool   `json:"credits_match"`
	CompletionMatch bool   `json:"completion_match"`
	Pass            bool   `json:"pass"`
	Err             string `json:"err,omitempty"`
}

// Label identifies the cell.
func (c Cell) Label() string {
	return fmt.Sprintf("%s/%s/%s/%s#%d", c.Middleware, c.Trace, c.Bot, c.Strategy, c.Offset)
}

// Report is the outcome of a conformance campaign.
type Report struct {
	Profile string `json:"profile"`
	Cells   []Cell `json:"cells"`
}

// Pass reports whether every cell conformed.
func (r Report) Pass() bool {
	for _, c := range r.Cells {
		if !c.Pass {
			return false
		}
	}
	return len(r.Cells) > 0
}

// Failures returns the non-conforming cells.
func (r Report) Failures() []Cell {
	var out []Cell
	for _, c := range r.Cells {
		if !c.Pass {
			out = append(out, c)
		}
	}
	return out
}

// Text renders the report as a fixed-width table.
func (r Report) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Emulation conformance (%s profile, %d cells)\n", r.Profile, len(r.Cells))
	fmt.Fprintf(&b, "%-36s %8s %8s %5s %5s %10s %10s  %s\n",
		"cell", "sim ct", "emul ct", "inst", "=", "sim cr", "emul cr", "verdict")
	for _, c := range r.Cells {
		verdict := "PASS"
		if !c.Pass {
			verdict = "FAIL"
			if c.Err != "" {
				verdict = "ERROR " + c.Err
			}
		}
		fmt.Fprintf(&b, "%-36s %8.0f %8.0f %5d %5d %10.3f %10.3f  %s\n",
			c.Label(), c.Sim.CompletionTime, c.Emul.CompletionTime,
			c.Sim.Instances, c.Emul.Instances,
			c.Sim.CreditsBilled, c.Emul.CreditsBilled, verdict)
	}
	status := "PASS"
	if !r.Pass() {
		status = fmt.Sprintf("FAIL (%d cells diverged)", len(r.Failures()))
	}
	fmt.Fprintf(&b, "overall: %s\n", status)
	return b.String()
}

// RunConformance executes every cell of the spec both in-process (through
// the campaign engine) and through the deployable HTTP stack (through
// RunCell), and reports per-cell agreement. The simulator side runs as one
// deduplicated campaign; the emulated side runs on a bounded worker pool.
func RunConformance(ctx context.Context, spec Spec) (Report, error) {
	spec = spec.withDefaults()
	scenarios := spec.scenarios()
	rep := Report{Profile: spec.Profile.Name}
	if len(scenarios) == 0 {
		return rep, fmt.Errorf("emul: empty conformance spec")
	}

	// Simulator side: one campaign over all cells.
	store := spec.Store
	if store == nil {
		store = campaign.NewResultStore()
	}
	jobs := make([]campaign.Job, len(scenarios))
	for i, sc := range scenarios {
		jobs[i] = campaign.Job{Scenario: sc}
	}
	c := campaign.New(spec.Profile, jobs...)
	c.Parallelism = spec.Parallelism
	if _, err := c.Run(ctx, store); err != nil {
		return rep, err
	}

	// Emulated side: each cell through the HTTP stack.
	cells := make([]Cell, len(scenarios))
	workers := spec.Parallelism
	if workers <= 0 {
		workers = spec.Profile.Workers()
	}
	if workers > len(scenarios) {
		workers = len(scenarios)
	}
	var wg sync.WaitGroup
	idxCh := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxCh {
				cells[i] = spec.runCell(scenarios[i], store)
			}
		}()
	}
feed:
	for i := range scenarios {
		select {
		case idxCh <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(idxCh)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return rep, err
	}
	rep.Cells = cells
	return rep, nil
}

// runCell emulates one scenario and compares it with its stored simulator
// result.
func (spec Spec) runCell(sc campaign.Scenario, store *campaign.ResultStore) Cell {
	cell := Cell{
		Middleware: sc.Middleware, Trace: sc.TraceName, Bot: sc.BotClass,
		Strategy: sc.StrategyLabel(), Offset: sc.Offset,
	}
	simRes, ok := store.Result(campaign.Job{Scenario: sc})
	if !ok {
		cell.Err = "simulator result missing from store"
		return cell
	}
	cell.Sim = Metrics{
		Completed: simRes.Completed, CompletionTime: simRes.CompletionTime,
		TriggeredAt: simRes.TriggeredAt, Instances: simRes.Instances,
		CreditsBilled: simRes.CreditsBilled,
	}
	for _, br := range simRes.Batches {
		cell.Sim.Batches = append(cell.Sim.Batches, BatchMetrics{
			BatchID: br.BatchID, Completed: br.Completed,
			CompletionTime: br.CompletionTime, TriggeredAt: br.TriggeredAt,
			Instances: br.Instances, CreditsBilled: br.CreditsBilled,
		})
	}
	out, err := RunCell(sc)
	if err != nil {
		cell.Err = err.Error()
		return cell
	}
	cell.Emul = Metrics{
		Completed: out.Completed, CompletionTime: out.CompletionTime,
		TriggeredAt: out.TriggeredAt, Instances: out.Instances,
		CreditsBilled: out.CreditsBilled,
	}
	for _, bo := range out.Batches {
		cell.Emul.Batches = append(cell.Emul.Batches, BatchMetrics{
			BatchID: bo.BatchID, Completed: bo.Completed,
			CompletionTime: bo.CompletionTime, TriggeredAt: bo.TriggeredAt,
			Instances: bo.Instances, CreditsBilled: bo.CreditsBilled,
		})
	}
	cell.TriggerMatch = sameTrigger(cell.Sim.TriggeredAt, cell.Emul.TriggeredAt)
	cell.InstancesMatch = cell.Sim.Instances == cell.Emul.Instances
	cell.CreditsMatch = within(cell.Sim.CreditsBilled, cell.Emul.CreditsBilled, spec.CreditsTol)
	cell.CompletionMatch = cell.Sim.Completed == cell.Emul.Completed &&
		(!cell.Sim.Completed ||
			within(cell.Sim.CompletionTime, cell.Emul.CompletionTime, spec.CompletionTol))
	// Multi-batch cells conform batch by batch: the aggregate hiding a
	// per-user divergence must not pass.
	if len(cell.Sim.Batches) != len(cell.Emul.Batches) {
		// The per-batch comparison never ran; no aggregate agreement can
		// stand in for it.
		cell.TriggerMatch, cell.InstancesMatch = false, false
		cell.CreditsMatch, cell.CompletionMatch = false, false
		cell.Err = fmt.Sprintf("batch count: sim %d, emul %d",
			len(cell.Sim.Batches), len(cell.Emul.Batches))
	} else {
		for i := range cell.Sim.Batches {
			sb, eb := cell.Sim.Batches[i], cell.Emul.Batches[i]
			cell.TriggerMatch = cell.TriggerMatch && sameTrigger(sb.TriggeredAt, eb.TriggeredAt)
			cell.InstancesMatch = cell.InstancesMatch && sb.Instances == eb.Instances
			cell.CreditsMatch = cell.CreditsMatch && within(sb.CreditsBilled, eb.CreditsBilled, spec.CreditsTol)
			cell.CompletionMatch = cell.CompletionMatch && sb.Completed == eb.Completed &&
				(!sb.Completed || within(sb.CompletionTime, eb.CompletionTime, spec.CompletionTol))
		}
	}
	cell.Pass = cell.TriggerMatch && cell.InstancesMatch && cell.CreditsMatch && cell.CompletionMatch
	return cell
}

// sameTrigger compares trigger decisions: both never fired, or both fired at
// the same monitor tick.
func sameTrigger(a, b float64) bool {
	if a < 0 || b < 0 {
		return a < 0 && b < 0
	}
	return math.Abs(a-b) <= 1e-6
}

// within reports |a−b| ≤ tol·max(1, |a|, |b|).
func within(a, b, tol float64) bool {
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= tol*scale
}
