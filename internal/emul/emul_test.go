package emul

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"spequlos/internal/campaign"
	"spequlos/internal/cloud"
	"spequlos/internal/core"
	"spequlos/internal/middleware"
	"spequlos/internal/sim"
)

func quickScenario(mw, tn, label string) campaign.Scenario {
	st, err := core.StrategyByLabel(label)
	if err != nil {
		panic(err)
	}
	return campaign.Scenario{
		Profile: campaign.Quick(), Middleware: mw, TraceName: tn,
		BotClass: "SMALL", Offset: 0, Strategy: &st,
	}
}

// TestRunCellMatchesSimulator is the single-cell conformance check: the
// deployable HTTP stack on the virtual clock must reproduce the in-process
// simulator's trigger time, fleet size, billing and completion time.
func TestRunCellMatchesSimulator(t *testing.T) {
	sc := quickScenario("XWHEP", "seti", "9C-C-R")
	sim := campaign.Run(sc)
	out, err := RunCell(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !sim.Completed || !out.Completed {
		t.Fatalf("completed: sim=%v emul=%v", sim.Completed, out.Completed)
	}
	if out.TriggeredAt != sim.TriggeredAt {
		t.Errorf("trigger: sim=%.0f emul=%.0f", sim.TriggeredAt, out.TriggeredAt)
	}
	if out.Instances != sim.Instances {
		t.Errorf("instances: sim=%d emul=%d", sim.Instances, out.Instances)
	}
	if !within(sim.CreditsBilled, out.CreditsBilled, 1e-6) {
		t.Errorf("credits: sim=%v emul=%v", sim.CreditsBilled, out.CreditsBilled)
	}
	if !within(sim.CompletionTime, out.CompletionTime, 0.01) {
		t.Errorf("completion: sim=%.1f emul=%.1f", sim.CompletionTime, out.CompletionTime)
	}
	if out.Size != sim.Size || out.BridgeForwarded != out.Size || out.BridgeCompleted != out.Size {
		t.Errorf("bridge accounting: size=%d forwarded=%d completed=%d (sim size %d)",
			out.Size, out.BridgeForwarded, out.BridgeCompleted, sim.Size)
	}
	if out.Ticks == 0 || out.Events == 0 {
		t.Errorf("no ticks/events recorded: %+v", out)
	}
}

// TestRunCellDeterministic: two emulated runs of the same scenario are
// identical.
func TestRunCellDeterministic(t *testing.T) {
	sc := quickScenario("BOINC", "seti", "9C-C-R")
	a, err := RunCell(sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCell(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("nondeterministic emulation:\n a=%+v\n b=%+v", a, b)
	}
}

func TestRunCellRequiresStrategy(t *testing.T) {
	sc := quickScenario("XWHEP", "seti", "9C-C-R")
	sc.Strategy = nil
	if _, err := RunCell(sc); err == nil {
		t.Fatal("baseline scenario accepted")
	}
}

// TestGatewayHTTP exercises the DG wire protocol: progress, worker-url and
// busy over real HTTP, plus error paths.
func TestGatewayHTTP(t *testing.T) {
	eng := sim.NewEngine()
	primary, err := campaign.NewMiddlewareServer(eng, campaign.XWHEP)
	if err != nil {
		t.Fatal(err)
	}
	simCl := cloud.NewSimCloud(eng, cloud.DefaultSimConfig(), sim.NewRNG(1))
	gw := NewSimDG(eng, primary, simCl, SimDGConfig{Deploy: core.Reschedule})
	srv := httptest.NewServer(gw.Handler())
	defer srv.Close()
	gw.SetWorkerURL(srv.URL)
	c := NewDGClient(srv.URL)

	if got := c.WorkerURL(); got != srv.URL {
		t.Fatalf("worker url %q, want %q", got, srv.URL)
	}
	sc := quickScenario("XWHEP", "seti", "9C-C-R")
	workload, err := sc.Workload()
	if err != nil {
		t.Fatal(err)
	}
	primary.Submit(middleware.Batch{ID: "b", Tasks: workload.Tasks})
	eng.RunUntil(1)
	p, perr := c.Progress("b")
	if perr != nil {
		t.Fatal(perr)
	}
	if p.Size == 0 || p.Arrived == 0 {
		t.Fatalf("progress: %+v", p)
	}
	if _, err := c.InstanceBusy("ghost"); err == nil {
		t.Fatal("unknown instance busy accepted")
	}
	// Unknown routes return JSON errors.
	resp, err := http.Get(srv.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown route: %d", resp.StatusCode)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error == "" {
		t.Fatalf("unknown route error payload: %v %+v", err, e)
	}
}

// TestDriverLifecycle drives the emulated provider directly: launch boots a
// simulated worker, describe tracks its state, terminate stops it.
func TestDriverLifecycle(t *testing.T) {
	eng := sim.NewEngine()
	primary, err := campaign.NewMiddlewareServer(eng, campaign.XWHEP)
	if err != nil {
		t.Fatal(err)
	}
	simCl := cloud.NewSimCloud(eng, cloud.DefaultSimConfig(), sim.NewRNG(2))
	gw := NewSimDG(eng, primary, simCl, SimDGConfig{Deploy: core.Reschedule})
	gw.SetWorkerURL("http://dg.emul")
	d := gw.Driver()

	if _, err := d.Launch(cloud.LaunchRequest{Image: "img"}); err == nil {
		t.Fatal("launch without batch id accepted")
	}
	info, err := d.Launch(cloud.LaunchRequest{Image: "img", BatchID: "b"})
	if err != nil {
		t.Fatal(err)
	}
	if info.State != cloud.StatePending || info.Provider != ProviderName {
		t.Fatalf("launched: %+v", info)
	}
	// The worker connects after the simulated boot delay.
	eng.RunUntil(cloud.DefaultSimConfig().BootDelay + 1)
	desc, err := d.Describe(info.ID)
	if err != nil || desc.State != cloud.StateRunning {
		t.Fatalf("describe after boot: %+v %v", desc, err)
	}
	if got := len(d.List()); got != 1 {
		t.Fatalf("list: %d instances", got)
	}
	if err := d.Terminate(info.ID); err != nil {
		t.Fatal(err)
	}
	desc, err = d.Describe(info.ID)
	if err != nil || desc.State != cloud.StateTerminated {
		t.Fatalf("describe after terminate: %+v %v", desc, err)
	}
	if got := len(d.List()); got != 0 {
		t.Fatalf("list after terminate: %d instances", got)
	}
	if err := d.Terminate("ghost"); err == nil {
		t.Fatal("terminating unknown instance accepted")
	}
}

var _ = context.Background
