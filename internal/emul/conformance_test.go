package emul

import (
	"context"
	"strings"
	"testing"

	"spequlos/internal/campaign"
	"spequlos/internal/core"
)

// TestQuickConformance is the acceptance gate of the emulation mode: every
// cell of the quick-profile subset — all middleware, two contrasting
// traces, strategies covering every trigger, sizing and deployment — must
// agree between the in-process simulator and the deployable HTTP stack on
// the trigger decision, the fleet size, the credits billed, and the
// completion time (±1%).
func TestQuickConformance(t *testing.T) {
	rep, err := RunConformance(context.Background(), QuickSpec())
	if err != nil {
		t.Fatal(err)
	}
	want := len(campaign.AllMiddlewares()) * 2 * 1 * 4
	if len(rep.Cells) != want {
		t.Fatalf("cells: %d, want %d", len(rep.Cells), want)
	}
	for _, c := range rep.Cells {
		if c.Pass {
			continue
		}
		t.Errorf("cell %s diverged (trigger=%v instances=%v credits=%v completion=%v err=%q)\n  sim:  %+v\n  emul: %+v",
			c.Label(), c.TriggerMatch, c.InstancesMatch, c.CreditsMatch, c.CompletionMatch, c.Err, c.Sim, c.Emul)
	}
	if !rep.Pass() {
		t.Logf("\n%s", rep.Text())
	}
}

func TestConformanceReportText(t *testing.T) {
	rep := Report{Profile: "quick", Cells: []Cell{
		{Middleware: "XWHEP", Trace: "seti", Bot: "SMALL", Strategy: "9C-C-R",
			Sim:          Metrics{Completed: true, CompletionTime: 1000, Instances: 2, CreditsBilled: 3},
			Emul:         Metrics{Completed: true, CompletionTime: 1000, Instances: 2, CreditsBilled: 3},
			TriggerMatch: true, InstancesMatch: true, CreditsMatch: true, CompletionMatch: true, Pass: true},
		{Middleware: "BOINC", Trace: "nd", Bot: "BIG", Strategy: "9C-G-F", Err: "boom"},
	}}
	if rep.Pass() {
		t.Fatal("report with a failing cell passed")
	}
	txt := rep.Text()
	for _, want := range []string{"XWHEP/seti/SMALL/9C-C-R#0", "PASS", "ERROR boom", "FAIL (1 cells diverged)"} {
		if !strings.Contains(txt, want) {
			t.Errorf("report text missing %q:\n%s", want, txt)
		}
	}
	if got := len(rep.Failures()); got != 1 {
		t.Errorf("failures: %d", got)
	}
}

// TestConformanceDetectsDivergence proves the harness is not vacuous: a
// deliberately skewed tolerance-free comparison of different strategies
// must fail.
func TestConformanceDetectsDivergence(t *testing.T) {
	// Store a simulator result computed under a different strategy than the
	// emulated one: the harness must flag the divergence.
	scSim := quickScenario("XWHEP", "seti", "9C-G-F")
	scEmul := quickScenario("XWHEP", "seti", "9C-C-R")
	store := campaign.NewResultStore()
	e := campaign.Execute(campaign.Job{Scenario: scSim})
	// Re-key the entry under the emulated scenario's key, simulating a
	// stale/corrupted store.
	e.Key = campaign.Job{Scenario: scEmul}.Key()
	e.Result.Strategy = scEmul.StrategyLabel()
	store.Put(e)
	spec := Spec{
		Profile: campaign.Quick(), Middlewares: []string{"XWHEP"},
		Traces: []string{"seti"}, Bots: []string{"SMALL"},
		Strategies: []core.Strategy{*scEmul.Strategy},
		Store:      store,
	}
	rep, err := RunConformance(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pass() {
		t.Fatalf("divergent strategies conformed:\n%s", rep.Text())
	}
}
