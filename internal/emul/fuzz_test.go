package emul

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"spequlos/internal/middleware"
)

// fuzzWire is a minimal WireGateway: deterministic progress for any batch,
// one known instance.
type fuzzWire struct{}

func (fuzzWire) Progress(id string) (middleware.Progress, error) {
	return middleware.Progress{Size: 3, Arrived: 3, Completed: 1, EverAssigned: 2, Running: 1}, nil
}

func (f fuzzWire) ProgressBatch(ids []string) (map[string]middleware.Progress, error) {
	out := make(map[string]middleware.Progress, len(ids))
	for _, id := range ids {
		out[id], _ = f.Progress(id)
	}
	return out, nil
}

func (fuzzWire) WorkerURL() string { return "http://fuzz.invalid/worker" }

func (fuzzWire) InstanceBusy(id string) (bool, error) {
	if id != "i-1" {
		return false, fmt.Errorf("emul: unknown instance %q", id)
	}
	return true, nil
}

// FuzzProgressBatch fuzzes the DG gateway's aggregated progress route — the
// wire endpoint every Scheduler tick hits. Whatever the body (malformed
// JSON, oversized payloads, wrong shapes), the handler must never panic and
// must always answer JSON: 200 with a progress map or 4xx with an error.
func FuzzProgressBatch(f *testing.F) {
	f.Add([]byte(`{"ids":["b1","b2"]}`))
	f.Add([]byte(`{"ids":[]}`))
	f.Add([]byte(`{"ids":null}`))
	f.Add([]byte(`{bogus`))
	f.Add([]byte(``))
	f.Add([]byte(`null`))
	f.Add([]byte(`{"ids":"b1"}`))
	f.Add([]byte(`{"ids":[1,2,3]}`))
	f.Add([]byte(`[{"ids":["b1"]}]`))
	f.Add([]byte(`{"ids":["` + string(make([]byte, 4096)) + `"]}`))
	f.Fuzz(func(t *testing.T, body []byte) {
		h := NewGatewayHandler(fuzzWire{})
		req := httptest.NewRequest(http.MethodPost, "/progress-batch", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK && (rec.Code < 400 || rec.Code >= 500) {
			t.Fatalf("status %d for %q, want 200 or a 4xx", rec.Code, body)
		}
		if !json.Valid(rec.Body.Bytes()) {
			t.Fatalf("non-JSON response %q for %q", rec.Body.Bytes(), body)
		}
		if rec.Code == http.StatusOK {
			var reply struct {
				Progress map[string]middleware.Progress `json:"progress"`
			}
			if err := json.Unmarshal(rec.Body.Bytes(), &reply); err != nil {
				t.Fatalf("200 reply does not decode as a progress map: %v", err)
			}
		}
	})
}

// TestProgressBatchBodyCap pins the gateway wire's request-size ceiling.
func TestProgressBatchBodyCap(t *testing.T) {
	ids := make([]string, 0, 1<<16)
	for i := 0; i < 1<<16; i++ {
		ids = append(ids, fmt.Sprintf("batch-%032d", i))
	}
	body, err := json.Marshal(map[string][]string{"ids": ids})
	if err != nil {
		t.Fatal(err)
	}
	if len(body) <= maxWireBody {
		t.Fatalf("test payload too small to exercise the cap: %d bytes", len(body))
	}
	h := NewGatewayHandler(fuzzWire{})
	req := httptest.NewRequest(http.MethodPost, "/progress-batch", bytes.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("oversized progress-batch: status %d, want 400", rec.Code)
	}
	if !json.Valid(rec.Body.Bytes()) {
		t.Fatalf("non-JSON response %q", rec.Body.Bytes())
	}
}
