// Package emul is the emulation mode of SpeQuloS: it runs the deployable
// HTTP service stack (internal/service — the four web-service modules of
// §3.7/Fig 8) inside the discrete-event simulation. A virtual clock is
// injected into every module, a simulated BOINC/XWHEP/Condor batch is
// exposed behind the DGGateway HTTP interface (fed through the 3G-Bridge
// path of internal/bridge), cloud launches become simulated cloud workers,
// and a simulation ticker drives the Scheduler's monitor loop — so an
// emulated run is deterministic, wall-clock-free, and directly comparable
// to the same scenario executed by the in-process simulator
// (internal/campaign).
//
// On top of single runs, the package provides a conformance campaign
// (RunConformance): every cell of a (trace × BoT class × middleware ×
// strategy) subset executes both in-process and through the HTTP stack, and
// the per-cell report proves the two agree on the trigger decision, the
// cloud fleet size, the credits billed, and the completion time. CI runs
// the quick-profile subset on every change, so the deployable service and
// the simulator cannot silently drift apart.
package emul

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"time"

	"spequlos/internal/bot"
	"spequlos/internal/bridge"
	"spequlos/internal/campaign"
	"spequlos/internal/cloud"
	"spequlos/internal/core"
	"spequlos/internal/middleware"
	"spequlos/internal/service"
	"spequlos/internal/sim"
	"spequlos/internal/xwhep"
)

// Outcome is the result of one emulated execution: the metrics the
// conformance harness compares against the in-process simulator, plus the
// emulation's own accounting.
type Outcome struct {
	BatchID    string `json:"batch_id"`
	Middleware string `json:"middleware"`
	TraceName  string `json:"trace"`
	BotClass   string `json:"bot"`
	Strategy   string `json:"strategy"`

	Completed      bool    `json:"completed"`
	Size           int     `json:"size"`
	CompletionTime float64 `json:"completion_time"`
	// TriggeredAt is when the Scheduler started cloud support (virtual
	// seconds since submission; -1 if never). For multi-batch cells it is
	// the cell's earliest trigger.
	TriggeredAt      float64 `json:"triggered_at"`
	Started          bool    `json:"started"`
	Instances        int     `json:"instances"`
	CreditsAllocated float64 `json:"credits_allocated"`
	CreditsBilled    float64 `json:"credits_billed"`
	Exhausted        bool    `json:"exhausted"`

	// Batches holds per-batch outcomes for multi-batch cells (nil for the
	// classic one-BoT cells), mirroring campaign.BatchResult.
	Batches []BatchOutcome `json:"batches,omitempty"`

	// Events counts simulation events; Ticks counts Scheduler monitor
	// iterations driven by the virtual ticker.
	Events uint64 `json:"events"`
	Ticks  int    `json:"ticks"`
	// BridgeForwarded/BridgeCompleted are the 3G-Bridge accounting of the
	// grid-submitted batch.
	BridgeForwarded int `json:"bridge_forwarded"`
	BridgeCompleted int `json:"bridge_completed"`
}

// BatchOutcome is one sub-batch's emulated outcome within a multi-batch
// cell. Times are relative to the sub-batch's own submission instant, the
// convention campaign.BatchResult uses.
type BatchOutcome struct {
	BatchID        string  `json:"batch_id"`
	SubmittedAt    float64 `json:"submitted_at"`
	Completed      bool    `json:"completed"`
	Size           int     `json:"size"`
	CompletionTime float64 `json:"completion_time"`

	Started          bool    `json:"started"`
	TriggeredAt      float64 `json:"triggered_at"` // -1 if never
	Instances        int     `json:"instances"`
	CreditsAllocated float64 `json:"credits_allocated"`
	CreditsBilled    float64 `json:"credits_billed"`
	Exhausted        bool    `json:"exhausted"`
}

// RunCell executes one scenario through the deployable HTTP stack on the
// virtual clock, retrying with a doubled horizon if the trace window proved
// too short — the same retry policy as the in-process runner, so the two
// sides always simulate the same window.
func RunCell(sc campaign.Scenario) (Outcome, error) {
	if sc.Strategy == nil {
		return Outcome{}, fmt.Errorf("emul: scenario needs a strategy (the stack is the QoS service)")
	}
	horizon := sc.Profile.HorizonDays * 86400
	var o Outcome
	var err error
	for attempt := 0; attempt < 3; attempt++ {
		o, err = runOnce(sc, horizon)
		if err != nil || o.Completed {
			return o, err
		}
		horizon *= 2
	}
	return o, nil
}

// runOnce is one bounded-horizon emulated execution. Cells carrying more
// than one BoT (Profile.Batches) register every sub-batch with the stack:
// the virtual ticker steps the Scheduler — ONE aggregated progress-batch
// round-trip per tick for all of them — and each completion finalizes just
// its own batch at the completion instant, mirroring the in-process
// simulator's event-driven finalization.
func runOnce(sc campaign.Scenario, horizon float64) (Outcome, error) {
	o := Outcome{
		Middleware: sc.Middleware, TraceName: sc.TraceName, BotClass: sc.BotClass,
		Strategy: sc.StrategyLabel(), TriggeredAt: -1,
	}

	// The simulated world: engine, DG server, availability trace, workload
	// and cloud — built exactly as the in-process runner builds them, from
	// the same scenario seed.
	eng := sim.NewEngine()
	primary, err := campaign.NewMiddlewareServer(eng, sc.Middleware)
	if err != nil {
		return o, err
	}
	tr, releaseTrace, err := campaign.CachedTrace(sc, horizon)
	if err != nil {
		return o, err
	}
	defer releaseTrace()
	middleware.BindTrace(eng, tr, primary)
	nb := sc.SubBatches()
	o.BatchID = sc.BotID()
	botIDs := make([]string, nb)
	workloads := make([]*bot.BoT, nb)
	for k := 0; k < nb; k++ {
		botIDs[k] = sc.SubBotID(k)
		w, err := sc.SubWorkload(k)
		if err != nil {
			return o, err
		}
		workloads[k] = w
		o.Size += w.Size()
	}
	simCl := cloud.NewSimCloud(eng, cloud.DefaultSimConfig(), sim.NewRNG(sc.Seed()))

	// The DG gateway: the simulated server behind the DGGateway HTTP
	// interface, plus the cloud driver that turns Scheduler launches into
	// simulated workers.
	gw := NewSimDG(eng, primary, simCl, SimDGConfig{
		Deploy: sc.Strategy.Deploy,
		CloudServerFactory: func() middleware.Server {
			return xwhep.New(eng, xwhep.DefaultConfig())
		},
	})
	dgSrv := httptest.NewServer(gw.Handler())
	defer dgSrv.Close()
	gw.SetWorkerURL(dgSrv.URL)

	// The deployable stack: all four modules on their own loopback HTTP
	// servers, every clock replaced by the virtual one.
	stack := service.NewTestStack(service.StackConfig{
		Strategy: *sc.Strategy,
		Registry: cloud.NewRegistry(gw.Driver()),
		DG:       NewDGClient(dgSrv.URL),
	})
	defer stack.Close()
	if sc.Profile.Tiered {
		// Tiered cells run the same admission contract the in-process
		// scheduler applies, enforced at the deployable Scheduler.
		stack.Scheduler.TierPolicy = core.DefaultTierPolicy()
		stack.Scheduler.TierPolicy.FleetCap = sc.Profile.FleetCap
	}
	epoch := time.Unix(0, 0).UTC()
	stack.SetClock(func() time.Time {
		return epoch.Add(time.Duration(eng.Now() * float64(time.Second)))
	})

	// Per-batch monitor state: a batch is done stepping once the Scheduler
	// reports it finalized.
	finalized := map[string]bool{}
	finalCount := 0
	refresh := func(id string) {
		if finalized[id] {
			return
		}
		if st, err := stack.Scheduler.Status(id); err == nil && st.Finalized {
			finalized[id] = true
			finalCount++
		}
	}

	// The monitor loop: a simulation ticker steps the Scheduler at the
	// paper's one-minute period — one aggregated DG poll shared by every
	// registered batch. A per-batch completion hook steps just the finished
	// batch at its completion instant, so billing settles at the completion
	// time without advancing the other batches' monitor state between ticks.
	var stepErr error
	stepOnce := func() {
		if stepErr != nil || finalCount == nb {
			return
		}
		o.Ticks++
		if err := stack.Scheduler.Step(); err != nil {
			stepErr = err
			return
		}
		for _, id := range botIDs {
			refresh(id)
		}
	}
	ticker := eng.NewTicker(campaign.DefaultMonitorPeriod, func(sim.Time) { stepOnce() })
	defer ticker.Stop()
	completedAt := make(map[string]float64, nb)
	primary.AddListener(completionHook{watch: botIDs, fn: func(id string, at float64) {
		if _, ok := completedAt[id]; ok {
			return
		}
		completedAt[id] = at
		eng.After(0, func() {
			if stepErr != nil || finalized[id] {
				return
			}
			o.Ticks++
			if err := stack.Scheduler.StepBatch(id); err != nil {
				stepErr = err
				return
			}
			refresh(id)
		})
	}})

	// registerQoS + orderQoS of Fig 3, over the wire, at each sub-batch's
	// submission instant; submission arrives through the 3G-Bridge, the
	// grid path of §3.7, so the stack recognizes every BoT exactly as a
	// natively-submitted one.
	br := bridge.New(primary)
	subCredits := make([]float64, nb)
	for k := 0; k < nb; k++ {
		k := k
		credits := sc.Profile.CreditFraction * workloads[k].WorkloadCPUHours() * core.CreditsPerCPUHour
		subCredits[k] = credits
		o.CreditsAllocated += credits
		eng.At(sc.SubmitAt(k), func() {
			if stepErr != nil {
				return
			}
			// Submission-path failures carry their own context so a crowd
			// debugging session is pointed at the failing registration, not
			// at the monitor loop.
			if credits > 0 {
				if err := stack.CreditClient.Deposit("user", credits); err != nil {
					stepErr = fmt.Errorf("deposit for %s: %w", botIDs[k], err)
					return
				}
			}
			if err := postQoS(stack.SchedulerAddr, service.QoSRequest{
				User: "user", BatchID: botIDs[k], EnvKey: sc.EnvKey(),
				Size: workloads[k].Size(), Credits: credits,
				Tier:     string(sc.SubTier(k)),
				Provider: ProviderName, Image: "emul-worker",
			}); err != nil {
				stepErr = fmt.Errorf("registerQoS for %s: %w", botIDs[k], err)
				return
			}
			if err := br.SubmitGridBatch("emul-grid", middleware.BatchFromBoT(workloads[k])); err != nil {
				stepErr = fmt.Errorf("grid submission of %s: %w", botIDs[k], err)
			}
		})
	}

	eng.RunWhile(func() bool {
		return stepErr == nil && finalCount < nb && eng.Now() <= horizon
	})
	if stepErr != nil {
		return o, fmt.Errorf("emul: %w", stepErr)
	}

	o.Completed = len(completedAt) == nb
	o.Events = eng.Executed()
	if nb > 1 {
		o.Batches = make([]BatchOutcome, nb)
	}
	for k, id := range botIDs {
		bo := BatchOutcome{
			BatchID: id, SubmittedAt: sc.SubmitAt(k), Size: workloads[k].Size(),
			TriggeredAt: -1, CreditsAllocated: subCredits[k],
		}
		if at, ok := completedAt[id]; ok {
			bo.Completed = true
			bo.CompletionTime = at - bo.SubmittedAt
			if at > o.CompletionTime {
				o.CompletionTime = at // the cell's makespan
			}
		}
		if st, err := stack.Scheduler.Status(id); err == nil {
			bo.Started = st.Started
			bo.Exhausted = st.Exhausted
			// The Scheduler records TriggeredAt relative to registration —
			// already the per-batch convention.
			bo.TriggeredAt = st.TriggeredAt
			bo.Instances = len(st.Instances)
			o.Started = o.Started || st.Started
			o.Exhausted = o.Exhausted || st.Exhausted
			o.Instances += len(st.Instances)
			if st.TriggeredAt >= 0 {
				abs := st.TriggeredAt + bo.SubmittedAt
				if o.TriggeredAt < 0 || abs < o.TriggeredAt {
					o.TriggeredAt = abs // earliest trigger in the cell
				}
			}
		}
		if subCredits[k] > 0 {
			order, err := stack.CreditClient.OrderOf(id)
			if err != nil {
				return o, err
			}
			bo.CreditsBilled = order.Billed
			o.CreditsBilled += order.Billed
		}
		if nb > 1 {
			o.Batches[k] = bo
		}
	}
	if !o.Completed {
		o.CompletionTime = -1
	}
	for _, s := range br.StatsBySource() {
		o.BridgeForwarded += s.Forwarded
		o.BridgeCompleted += s.Completed
	}
	return o, nil
}

// completionHook invokes fn when one of the watched batches completes.
type completionHook struct {
	watch []string
	fn    func(id string, at float64)
}

func (h completionHook) TaskAssigned(string, int, float64)  {}
func (h completionHook) TaskCompleted(string, int, float64) {}
func (h completionHook) BatchCompleted(batchID string, at float64) {
	for _, id := range h.watch {
		if batchID == id {
			h.fn(batchID, at)
			return
		}
	}
}

// postQoS registers a batch for QoS support through the Scheduler's HTTP
// API.
func postQoS(schedulerURL string, req service.QoSRequest) error {
	buf, err := json.Marshal(req)
	if err != nil {
		return err
	}
	resp, err := http.Post(schedulerURL+"/qos", "application/json", bytes.NewReader(buf))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		var e struct {
			Error string `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&e); err == nil && e.Error != "" {
			return fmt.Errorf("emul: registerQoS: %s", e.Error)
		}
		return fmt.Errorf("emul: registerQoS: HTTP %d", resp.StatusCode)
	}
	return nil
}
