// Package emul is the emulation mode of SpeQuloS: it runs the deployable
// HTTP service stack (internal/service — the four web-service modules of
// §3.7/Fig 8) inside the discrete-event simulation. A virtual clock is
// injected into every module, a simulated BOINC/XWHEP/Condor batch is
// exposed behind the DGGateway HTTP interface (fed through the 3G-Bridge
// path of internal/bridge), cloud launches become simulated cloud workers,
// and a simulation ticker drives the Scheduler's monitor loop — so an
// emulated run is deterministic, wall-clock-free, and directly comparable
// to the same scenario executed by the in-process simulator
// (internal/campaign).
//
// On top of single runs, the package provides a conformance campaign
// (RunConformance): every cell of a (trace × BoT class × middleware ×
// strategy) subset executes both in-process and through the HTTP stack, and
// the per-cell report proves the two agree on the trigger decision, the
// cloud fleet size, the credits billed, and the completion time. CI runs
// the quick-profile subset on every change, so the deployable service and
// the simulator cannot silently drift apart.
package emul

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"time"

	"spequlos/internal/bridge"
	"spequlos/internal/campaign"
	"spequlos/internal/cloud"
	"spequlos/internal/core"
	"spequlos/internal/middleware"
	"spequlos/internal/service"
	"spequlos/internal/sim"
	"spequlos/internal/xwhep"
)

// Outcome is the result of one emulated execution: the metrics the
// conformance harness compares against the in-process simulator, plus the
// emulation's own accounting.
type Outcome struct {
	BatchID    string `json:"batch_id"`
	Middleware string `json:"middleware"`
	TraceName  string `json:"trace"`
	BotClass   string `json:"bot"`
	Strategy   string `json:"strategy"`

	Completed      bool    `json:"completed"`
	Size           int     `json:"size"`
	CompletionTime float64 `json:"completion_time"`
	// TriggeredAt is when the Scheduler started cloud support (virtual
	// seconds since submission; -1 if never).
	TriggeredAt      float64 `json:"triggered_at"`
	Started          bool    `json:"started"`
	Instances        int     `json:"instances"`
	CreditsAllocated float64 `json:"credits_allocated"`
	CreditsBilled    float64 `json:"credits_billed"`
	Exhausted        bool    `json:"exhausted"`

	// Events counts simulation events; Ticks counts Scheduler monitor
	// iterations driven by the virtual ticker.
	Events uint64 `json:"events"`
	Ticks  int    `json:"ticks"`
	// BridgeForwarded/BridgeCompleted are the 3G-Bridge accounting of the
	// grid-submitted batch.
	BridgeForwarded int `json:"bridge_forwarded"`
	BridgeCompleted int `json:"bridge_completed"`
}

// RunCell executes one scenario through the deployable HTTP stack on the
// virtual clock, retrying with a doubled horizon if the trace window proved
// too short — the same retry policy as the in-process runner, so the two
// sides always simulate the same window.
func RunCell(sc campaign.Scenario) (Outcome, error) {
	if sc.Strategy == nil {
		return Outcome{}, fmt.Errorf("emul: scenario needs a strategy (the stack is the QoS service)")
	}
	horizon := sc.Profile.HorizonDays * 86400
	var o Outcome
	var err error
	for attempt := 0; attempt < 3; attempt++ {
		o, err = runOnce(sc, horizon)
		if err != nil || o.Completed {
			return o, err
		}
		horizon *= 2
	}
	return o, nil
}

// runOnce is one bounded-horizon emulated execution.
func runOnce(sc campaign.Scenario, horizon float64) (Outcome, error) {
	o := Outcome{
		Middleware: sc.Middleware, TraceName: sc.TraceName, BotClass: sc.BotClass,
		Strategy: sc.StrategyLabel(), TriggeredAt: -1,
	}

	// The simulated world: engine, DG server, availability trace, workload
	// and cloud — built exactly as the in-process runner builds them, from
	// the same scenario seed.
	eng := sim.NewEngine()
	primary, err := campaign.NewMiddlewareServer(eng, sc.Middleware)
	if err != nil {
		return o, err
	}
	tr, err := campaign.CachedTrace(sc, horizon)
	if err != nil {
		return o, err
	}
	middleware.BindTrace(eng, tr, primary)
	botID := sc.BotID()
	o.BatchID = botID
	workload, err := sc.Workload()
	if err != nil {
		return o, err
	}
	o.Size = workload.Size()
	simCl := cloud.NewSimCloud(eng, cloud.DefaultSimConfig(), sim.NewRNG(sc.Seed()))

	// The DG gateway: the simulated server behind the DGGateway HTTP
	// interface, plus the cloud driver that turns Scheduler launches into
	// simulated workers.
	gw := NewSimDG(eng, primary, simCl, SimDGConfig{
		Deploy: sc.Strategy.Deploy,
		CloudServerFactory: func() middleware.Server {
			return xwhep.New(eng, xwhep.DefaultConfig())
		},
	})
	dgSrv := httptest.NewServer(gw.Handler())
	defer dgSrv.Close()
	gw.SetWorkerURL(dgSrv.URL)

	// The deployable stack: all four modules on their own loopback HTTP
	// servers, every clock replaced by the virtual one.
	stack := service.NewTestStack(service.StackConfig{
		Strategy: *sc.Strategy,
		Registry: cloud.NewRegistry(gw.Driver()),
		DG:       NewDGClient(dgSrv.URL),
	})
	defer stack.Close()
	epoch := time.Unix(0, 0).UTC()
	stack.SetClock(func() time.Time {
		return epoch.Add(time.Duration(eng.Now() * float64(time.Second)))
	})

	// registerQoS + orderQoS of Fig 3, over the wire.
	credits := sc.Profile.CreditFraction * workload.WorkloadCPUHours() * core.CreditsPerCPUHour
	if credits > 0 {
		if err := stack.CreditClient.Deposit("user", credits); err != nil {
			return o, err
		}
		o.CreditsAllocated = credits
	}
	if err := postQoS(stack.SchedulerAddr, service.QoSRequest{
		User: "user", BatchID: botID, EnvKey: sc.EnvKey(), Size: workload.Size(),
		Credits: credits, Provider: ProviderName, Image: "emul-worker",
	}); err != nil {
		return o, err
	}

	// The monitor loop: a simulation ticker steps the Scheduler at the
	// paper's one-minute period. A completion hook steps once more at the
	// instant the batch finishes, mirroring the in-process simulator's
	// event-driven finalization (billing settles at the completion time,
	// not at the next poll).
	var stepErr error
	finalized := false
	stepOnce := func() {
		if stepErr != nil || finalized {
			return
		}
		o.Ticks++
		if err := stack.Scheduler.Step(); err != nil {
			stepErr = err
			return
		}
		if st, err := stack.Scheduler.Status(botID); err == nil {
			finalized = st.Finalized
		}
	}
	ticker := eng.NewTicker(campaign.DefaultMonitorPeriod, func(sim.Time) { stepOnce() })
	defer ticker.Stop()
	completedAt := -1.0
	primary.AddListener(completionHook{batchID: botID, fn: func(at float64) {
		if completedAt < 0 {
			completedAt = at
			eng.After(0, stepOnce)
		}
	}})

	// Submission arrives through the 3G-Bridge, the grid path of §3.7: the
	// batch keeps its QoS identifier, so the stack recognizes it exactly as
	// a natively-submitted BoT.
	br := bridge.New(primary)
	if err := br.SubmitGridBatch("emul-grid", middleware.BatchFromBoT(workload)); err != nil {
		return o, err
	}

	eng.RunWhile(func() bool {
		return stepErr == nil && !finalized && eng.Now() <= horizon
	})
	if stepErr != nil {
		return o, fmt.Errorf("emul: scheduler step: %w", stepErr)
	}

	o.Completed = completedAt >= 0
	o.CompletionTime = completedAt
	o.Events = eng.Executed()
	if st, err := stack.Scheduler.Status(botID); err == nil {
		o.Started = st.Started
		o.Exhausted = st.Exhausted
		o.TriggeredAt = st.TriggeredAt
		o.Instances = len(st.Instances)
	}
	if credits > 0 {
		order, err := stack.CreditClient.OrderOf(botID)
		if err != nil {
			return o, err
		}
		o.CreditsBilled = order.Billed
	}
	for _, s := range br.StatsBySource() {
		o.BridgeForwarded += s.Forwarded
		o.BridgeCompleted += s.Completed
	}
	return o, nil
}

// completionHook invokes fn when the watched batch completes.
type completionHook struct {
	batchID string
	fn      func(at float64)
}

func (h completionHook) TaskAssigned(string, int, float64)  {}
func (h completionHook) TaskCompleted(string, int, float64) {}
func (h completionHook) BatchCompleted(batchID string, at float64) {
	if batchID == h.batchID {
		h.fn(at)
	}
}

// postQoS registers a batch for QoS support through the Scheduler's HTTP
// API.
func postQoS(schedulerURL string, req service.QoSRequest) error {
	buf, err := json.Marshal(req)
	if err != nil {
		return err
	}
	resp, err := http.Post(schedulerURL+"/qos", "application/json", bytes.NewReader(buf))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		var e struct {
			Error string `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&e); err == nil && e.Error != "" {
			return fmt.Errorf("emul: registerQoS: %s", e.Error)
		}
		return fmt.Errorf("emul: registerQoS: HTTP %d", resp.StatusCode)
	}
	return nil
}
