package emul

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"spequlos/internal/cloud"
	"spequlos/internal/core"
	"spequlos/internal/middleware"
	"spequlos/internal/service"
	"spequlos/internal/sim"
)

// ProviderName is the provider registered for emulated cloud instances.
const ProviderName = "emul"

// SimDGConfig parameterizes the simulated Desktop Grid gateway.
type SimDGConfig struct {
	// Deploy is the cloud deployment strategy the DG side implements (§3.5):
	// Flat leaves the server unmodified, Reschedule patches it to feed
	// dedicated cloud workers duplicates, CloudDuplication mirrors the tail
	// onto a dedicated cloud-hosted server.
	Deploy core.Deployment
	// CloudServerFactory builds the cloud-hosted server of the
	// CloudDuplication deployment (trusted resources, so an XWHEP-style
	// single-execution server is appropriate).
	CloudServerFactory func() middleware.Server
}

// SimDG is a simulated Desktop Grid server wrapped as a SpeQuloS gateway: it
// answers the Scheduler's progress polls from a middleware simulation and
// turns cloud-driver launches into simulated cloud workers joining that
// simulation. All methods must run on the simulation goroutine — the
// Scheduler only calls them from inside engine ticks, and the HTTP handler
// serializes with the engine through the request/response round trip.
type SimDG struct {
	eng     *sim.Engine
	primary middleware.Server
	simCl   *cloud.SimCloud
	cfg     SimDGConfig

	workerURL string
	epoch     time.Time

	seq       int
	instances map[string]*simInstance
	cloudSrvs map[string]middleware.Server // CloudDuplication secondaries per batch
}

type simInstance struct {
	info cloud.InstanceInfo
	inst *cloud.Instance
}

// NewSimDG wraps a middleware simulation as a DG gateway.
func NewSimDG(eng *sim.Engine, primary middleware.Server, simCl *cloud.SimCloud, cfg SimDGConfig) *SimDG {
	return &SimDG{
		eng: eng, primary: primary, simCl: simCl, cfg: cfg,
		epoch:     time.Unix(0, 0).UTC(),
		instances: map[string]*simInstance{},
		cloudSrvs: map[string]middleware.Server{},
	}
}

// SetWorkerURL records the endpoint cloud workers are told to connect to
// (the gateway's own HTTP address once it is listening).
func (g *SimDG) SetWorkerURL(url string) { g.workerURL = url }

// Progress returns the primary server's view of a batch — exactly what the
// in-process simulator's monitor observes.
func (g *SimDG) Progress(batchID string) (middleware.Progress, error) {
	return g.primary.Progress(batchID), nil
}

// ProgressBatch returns the primary server's view of every named batch in
// one call (service.BatchProgressGateway): the aggregated poll that keeps
// the Scheduler's per-tick gateway traffic O(1) in the batch count.
func (g *SimDG) ProgressBatch(batchIDs []string) (map[string]middleware.Progress, error) {
	return middleware.ProgressAll(g.primary, batchIDs), nil
}

// WorkerURL implements service.DGGateway.
func (g *SimDG) WorkerURL() string { return g.workerURL }

// InstanceBusy reports whether the worker booted from an instance currently
// holds an assignment (service.WorkerStatusGateway).
func (g *SimDG) InstanceBusy(instanceID string) (bool, error) {
	si, ok := g.instances[instanceID]
	if !ok {
		return false, fmt.Errorf("emul: unknown instance %q", instanceID)
	}
	return si.inst.Busy(), nil
}

// launch starts one simulated cloud worker for the request's batch,
// implementing the configured deployment strategy on the DG side.
func (g *SimDG) launch(req cloud.LaunchRequest) (cloud.InstanceInfo, error) {
	if req.BatchID == "" {
		return cloud.InstanceInfo{}, fmt.Errorf("emul: launch request needs a batch id")
	}
	target := g.primary
	flat := false
	switch g.cfg.Deploy {
	case core.Flat:
		flat = true
	case core.Reschedule:
		g.primary.SetReschedule(true)
	case core.CloudDuplication:
		target = g.cloudServer(req.BatchID)
	}
	inst := g.simCl.Start(target, req.BatchID, flat)
	g.seq++
	id := fmt.Sprintf("%s-%06d", ProviderName, g.seq)
	si := &simInstance{
		info: cloud.InstanceInfo{
			ID: id, Provider: ProviderName, State: cloud.StatePending,
			BatchID: req.BatchID, DGServer: g.workerURL, Image: req.Image,
			StartedAt: g.now(),
		},
		inst: inst,
	}
	g.instances[id] = si
	return si.info, nil
}

// cloudServer lazily builds the CloudDuplication secondary for a batch:
// a dedicated cloud-hosted server loaded with the uncompleted tail, with
// bidirectional result merging — the same wiring as the in-process
// simulator's startCloudServer.
func (g *SimDG) cloudServer(batchID string) middleware.Server {
	if sec, ok := g.cloudSrvs[batchID]; ok {
		return sec
	}
	if g.cfg.CloudServerFactory == nil {
		panic("emul: CloudDuplication requires a CloudServerFactory")
	}
	sec := g.cfg.CloudServerFactory()
	tail := g.primary.Incomplete(batchID)
	sec.Submit(middleware.Batch{ID: batchID, Tasks: tail})
	sec.AddListener(mirror{to: g.primary, batchID: batchID})
	g.primary.AddListener(mirror{to: sec, batchID: batchID})
	g.cloudSrvs[batchID] = sec
	return sec
}

// mirror merges completions between the primary and the cloud server.
type mirror struct {
	to      middleware.Server
	batchID string
}

func (m mirror) TaskAssigned(string, int, float64) {}
func (m mirror) TaskCompleted(batchID string, taskID int, _ float64) {
	if batchID == m.batchID {
		m.to.MarkCompleted(batchID, taskID)
	}
}
func (m mirror) BatchCompleted(string, float64) {}

// terminate stops an instance's simulated worker.
func (g *SimDG) terminate(id string) error {
	si, ok := g.instances[id]
	if !ok {
		return fmt.Errorf("emul: unknown instance %q", id)
	}
	g.simCl.Stop(si.inst)
	si.info.State = cloud.StateTerminated
	return nil
}

// describe refreshes and returns an instance's descriptor.
func (g *SimDG) describe(id string) (cloud.InstanceInfo, error) {
	si, ok := g.instances[id]
	if !ok {
		return cloud.InstanceInfo{}, fmt.Errorf("emul: unknown instance %q", id)
	}
	return g.refresh(si), nil
}

// refresh derives the driver-visible lifecycle state from the simulated
// instance: pending until the worker connects, running until stopped.
func (g *SimDG) refresh(si *simInstance) cloud.InstanceInfo {
	switch {
	case !si.inst.Running():
		si.info.State = cloud.StateTerminated
	case si.inst.Booted():
		si.info.State = cloud.StateRunning
	default:
		si.info.State = cloud.StatePending
	}
	return si.info
}

// now maps virtual time onto the emulation's wall-clock epoch.
func (g *SimDG) now() time.Time {
	return g.epoch.Add(time.Duration(g.eng.Now() * float64(time.Second)))
}

// Driver returns the gateway's cloud driver: launching an instance through
// it starts a simulated cloud worker, exactly as SimCloud does for the
// in-process simulator.
func (g *SimDG) Driver() cloud.Driver { return (*Driver)(g) }

// Driver is SimDG exposed through the libcloud-like provider interface.
type Driver SimDG

// Name implements cloud.Driver.
func (d *Driver) Name() string { return ProviderName }

// Launch implements cloud.Driver.
func (d *Driver) Launch(req cloud.LaunchRequest) (cloud.InstanceInfo, error) {
	return (*SimDG)(d).launch(req)
}

// Terminate implements cloud.Driver.
func (d *Driver) Terminate(id string) error { return (*SimDG)(d).terminate(id) }

// Describe implements cloud.Driver.
func (d *Driver) Describe(id string) (cloud.InstanceInfo, error) {
	return (*SimDG)(d).describe(id)
}

// List implements cloud.Driver.
func (d *Driver) List() []cloud.InstanceInfo {
	g := (*SimDG)(d)
	var out []cloud.InstanceInfo
	for i := 1; i <= g.seq; i++ {
		id := fmt.Sprintf("%s-%06d", ProviderName, i)
		if si, ok := g.instances[id]; ok {
			if info := g.refresh(si); info.State != cloud.StateTerminated {
				out = append(out, info)
			}
		}
	}
	return out
}

// WireGateway is the server side of the DG gateway wire format: everything
// NewGatewayHandler needs to answer the Scheduler's HTTP adapter. SimDG
// implements it against the simulation; internal/loadgen implements it
// against a wall-clock fake for socket-level load runs.
type WireGateway interface {
	service.BatchProgressGateway
	service.WorkerStatusGateway
}

// maxWireBody caps request bodies on the gateway wire: the largest
// legitimate payload (a progress-batch query for thousands of batch IDs) is
// far below 1 MiB.
const maxWireBody = 1 << 20

// NewGatewayHandler serves the DG gateway wire format over HTTP for any
// WireGateway — the wire shape of the DGGateway interface, so the Scheduler
// module talks to the DG server exactly as it would to a remote BOINC/XWHEP
// status adapter:
//
//	GET  /progress/{batch}  → middleware.Progress
//	POST /progress-batch    {"ids": [...]} → {"progress": {id: Progress}}
//	GET  /busy/{instance}   → {"busy": bool}
//	GET  /worker-url        → {"worker_url": string}
func NewGatewayHandler(gw WireGateway) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/progress-batch", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			httpErr(w, http.StatusNotFound, fmt.Errorf("no route %s %s", r.Method, r.URL.Path))
			return
		}
		var req progressBatchRequest
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxWireBody)).Decode(&req); err != nil {
			httpErr(w, http.StatusBadRequest, err)
			return
		}
		progress, err := gw.ProgressBatch(req.IDs)
		if err != nil {
			httpErr(w, http.StatusBadGateway, err)
			return
		}
		httpJSON(w, http.StatusOK, progressBatchReply{Progress: progress})
	})
	mux.HandleFunc("/progress/", func(w http.ResponseWriter, r *http.Request) {
		id := strings.TrimPrefix(r.URL.Path, "/progress/")
		if r.Method != http.MethodGet || id == "" {
			httpErr(w, http.StatusNotFound, fmt.Errorf("no route %s %s", r.Method, r.URL.Path))
			return
		}
		p, err := gw.Progress(id)
		if err != nil {
			httpErr(w, http.StatusBadGateway, err)
			return
		}
		httpJSON(w, http.StatusOK, p)
	})
	mux.HandleFunc("/busy/", func(w http.ResponseWriter, r *http.Request) {
		id := strings.TrimPrefix(r.URL.Path, "/busy/")
		if r.Method != http.MethodGet || id == "" {
			httpErr(w, http.StatusNotFound, fmt.Errorf("no route %s %s", r.Method, r.URL.Path))
			return
		}
		busy, err := gw.InstanceBusy(id)
		if err != nil {
			httpErr(w, http.StatusNotFound, err)
			return
		}
		httpJSON(w, http.StatusOK, map[string]bool{"busy": busy})
	})
	mux.HandleFunc("/worker-url", func(w http.ResponseWriter, r *http.Request) {
		httpJSON(w, http.StatusOK, map[string]string{"worker_url": gw.WorkerURL()})
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		httpErr(w, http.StatusNotFound, fmt.Errorf("no route %s %s", r.Method, r.URL.Path))
	})
	return mux
}

// Handler exposes the gateway over HTTP (see NewGatewayHandler for the
// routes).
func (g *SimDG) Handler() http.Handler { return NewGatewayHandler(g) }

// progressBatchRequest/Reply are the wire shape of the aggregated progress
// query (POST /progress-batch).
type progressBatchRequest struct {
	IDs []string `json:"ids"`
}

type progressBatchReply struct {
	Progress map[string]middleware.Progress `json:"progress"`
}

func httpJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v) //nolint:errcheck
}

func httpErr(w http.ResponseWriter, status int, err error) {
	httpJSON(w, status, map[string]string{"error": err.Error()})
}

// DGClient implements service.DGGateway (and the WorkerStatusGateway
// extension) against a gateway's HTTP endpoint — the Scheduler side of the
// wire.
type DGClient struct {
	BaseURL string
	HTTP    *http.Client

	mu        sync.Mutex
	workerURL string
}

// NewDGClient builds a gateway client for the given base URL. The client
// carries its own timeout: the Scheduler holds per-batch state while
// polling the DG, and a hung gateway connection must not wedge it.
func NewDGClient(baseURL string) *DGClient {
	return &DGClient{BaseURL: baseURL, HTTP: &http.Client{Timeout: 30 * time.Second}}
}

func (c *DGClient) get(path string, out any) error {
	resp, err := c.HTTP.Get(c.BaseURL + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		var e struct {
			Error string `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&e); err == nil && e.Error != "" {
			return fmt.Errorf("emul: %s", e.Error)
		}
		return fmt.Errorf("emul: HTTP %d on %s", resp.StatusCode, path)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func (c *DGClient) post(path string, body, out any) error {
	buf, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := c.HTTP.Post(c.BaseURL+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		var e struct {
			Error string `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&e); err == nil && e.Error != "" {
			return fmt.Errorf("emul: %s", e.Error)
		}
		return fmt.Errorf("emul: HTTP %d on %s", resp.StatusCode, path)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Progress implements service.DGGateway.
func (c *DGClient) Progress(batchID string) (middleware.Progress, error) {
	var p middleware.Progress
	err := c.get("/progress/"+batchID, &p)
	return p, err
}

// ProgressBatch implements service.BatchProgressGateway: the progress of
// every named batch in one POST /progress-batch round-trip.
func (c *DGClient) ProgressBatch(batchIDs []string) (map[string]middleware.Progress, error) {
	var reply progressBatchReply
	if err := c.post("/progress-batch", progressBatchRequest{IDs: batchIDs}, &reply); err != nil {
		return nil, err
	}
	return reply.Progress, nil
}

// WorkerURL implements service.DGGateway; the answer is cached after the
// first fetch.
func (c *DGClient) WorkerURL() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.workerURL != "" {
		return c.workerURL
	}
	var out map[string]string
	if err := c.get("/worker-url", &out); err != nil {
		return c.BaseURL
	}
	c.workerURL = out["worker_url"]
	return c.workerURL
}

// InstanceBusy implements service.WorkerStatusGateway.
func (c *DGClient) InstanceBusy(instanceID string) (bool, error) {
	var out map[string]bool
	err := c.get("/busy/"+instanceID, &out)
	return out["busy"], err
}
