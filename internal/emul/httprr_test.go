package emul

import (
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"spequlos/internal/campaign"
	"spequlos/internal/cloud"
	"spequlos/internal/core"
	"spequlos/internal/httprr"
	"spequlos/internal/middleware"
	"spequlos/internal/sim"
)

// recordedWorkerURL is the fixed worker endpoint used at record time so
// re-recording never changes the trace just because the test server's
// ephemeral port moved.
const recordedWorkerURL = "http://dg.spequlos.example/worker"

// TestDGClientConformanceReplay is the hermetic middleware-adapter
// conformance test: the DGClient adapter (the Scheduler's side of the DG
// wire) runs against traffic recorded from a real simulated-BOINC gateway,
// committed in testdata/dgclient.httprr — `go test` needs no live server.
// Re-record against a live gateway with:
//
//	go test ./internal/emul -run TestDGClientConformanceReplay -httprecord '.*'
func TestDGClientConformanceReplay(t *testing.T) {
	rr, err := httprr.Open("testdata/dgclient.httprr", http.DefaultTransport)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := rr.Close(); err != nil {
			t.Fatal(err)
		}
	}()

	// The recorded scenario: a quick BOINC cell's workload submitted at t=0,
	// simulated for one virtual hour. The workload derives from the same
	// deterministic generator in both modes, so replay can still validate
	// sizes without any server.
	sc := quickScenario("BOINC", "seti", "9C-C-R")
	workload, err := sc.Workload()
	if err != nil {
		t.Fatal(err)
	}

	base := "http://" + "dg.replay.invalid"
	if rr.Recording() {
		eng := sim.NewEngine()
		primary, err := campaign.NewMiddlewareServer(eng, campaign.BOINC)
		if err != nil {
			t.Fatal(err)
		}
		simCl := cloud.NewSimCloud(eng, cloud.DefaultSimConfig(), sim.NewRNG(1))
		gw := NewSimDG(eng, primary, simCl, SimDGConfig{Deploy: core.Reschedule})
		gw.SetWorkerURL(recordedWorkerURL)
		srv := httptest.NewServer(gw.Handler())
		defer srv.Close()
		primary.Submit(middleware.Batch{ID: "b1", Tasks: workload.Tasks})
		eng.RunUntil(3600)
		base = srv.URL
	}

	c := NewDGClient(base)
	c.HTTP = rr.Client()

	// Worker URL: the adapter must surface the gateway's advertised endpoint,
	// not its own base URL fallback.
	if got := c.WorkerURL(); got != recordedWorkerURL {
		t.Errorf("worker url %q, want %q", got, recordedWorkerURL)
	}

	// Single-batch progress: a full, self-consistent snapshot of the batch.
	p, err := c.Progress("b1")
	if err != nil {
		t.Fatal(err)
	}
	if p.Size != len(workload.Tasks) {
		t.Errorf("progress size %d, want %d", p.Size, len(workload.Tasks))
	}
	if p.Arrived == 0 || p.Arrived > p.Size {
		t.Errorf("arrived %d out of range (size %d)", p.Arrived, p.Size)
	}
	if p.Completed < 0 || p.Completed > p.Size || p.EverAssigned < p.Completed {
		t.Errorf("inconsistent snapshot: %+v", p)
	}

	// Aggregated progress: the O(1)-per-tick route must agree exactly with
	// the per-batch route for the same instant.
	all, err := c.ProgressBatch([]string{"b1"})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(all["b1"], p) {
		t.Errorf("progress-batch %+v != progress %+v", all["b1"], p)
	}

	// Error-path conformance: an unknown instance is a typed error, not a
	// zero answer.
	if busy, err := c.InstanceBusy("ghost"); err == nil {
		t.Errorf("unknown instance answered busy=%v without error", busy)
	}
}
