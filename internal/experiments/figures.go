package experiments

import (
	"fmt"
	"sort"
	"strings"

	"spequlos/internal/campaign"
	"spequlos/internal/core"
	"spequlos/internal/metrics"
	"spequlos/internal/stats"
	"spequlos/internal/trace"
)

// ---------------------------------------------------------------------------
// Figure 1 — example BoT execution with the tail annotated.

// Figure1 is one execution profile with its noteworthy values.
type Figure1 struct {
	Series []metrics.SeriesPoint
	Tail   metrics.TailStats
	Result Result
}

// Figure1Job is the campaign job behind Fig 1: the example baseline
// execution, with its completion series kept.
func Figure1Job(p Profile) campaign.Job {
	return campaign.Job{
		Scenario: Scenario{
			Profile: p, Middleware: XWHEP, TraceName: "seti", BotClass: "SMALL", Offset: 0,
		},
		KeepSeries: true,
	}
}

// BuildFigure1 runs one baseline execution and extracts the Fig 1 curve.
func BuildFigure1(p Profile) Figure1 {
	e := campaign.Execute(Figure1Job(p))
	return Figure1{Series: e.Series, Tail: e.Result.Tail, Result: e.Result}
}

// Figure1From derives Fig 1 from an already-executed store.
func Figure1From(store *campaign.ResultStore, p Profile) (Figure1, error) {
	j := Figure1Job(p)
	e, ok := store.Get(j.Key())
	if !ok || len(e.Series) == 0 {
		return Figure1{}, fmt.Errorf("experiments: store missing figure 1 series %s", j.Key())
	}
	return Figure1{Series: e.Series, Tail: e.Result.Tail, Result: e.Result}, nil
}

// Render summarizes the curve.
func (f Figure1) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 1 — BoT execution profile (%s on %s, %s)\n",
		f.Result.BotClass, f.Result.TraceName, f.Result.Middleware)
	fmt.Fprintf(&b, "ideal time=%.0fs actual=%.0fs slowdown=%.2f tail tasks=%d/%d\n",
		f.Tail.IdealTime, f.Tail.CompletionTime, f.Tail.Slowdown, f.Tail.TailTasks, f.Tail.Size)
	step := len(f.Series) / 20
	if step < 1 {
		step = 1
	}
	for i := 0; i < len(f.Series); i += step {
		pt := f.Series[i]
		bar := strings.Repeat("#", int(pt.Ratio*50))
		fmt.Fprintf(&b, "%8.0fs %-50s %.2f\n", pt.T, bar, pt.Ratio)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Figure 2 — CDF of tail slowdown per middleware (baselines only).

// Figure2 is the tail-slowdown distribution per middleware.
type Figure2 struct {
	Slowdowns map[string][]float64 // by middleware, sorted
}

// resultPairs adapts a result slice to a pairSource of base-only pairs, so
// the slice-fed Build* builders share the streaming accumulators.
func resultPairs(results []Result) pairSource {
	return func(fn func(Pair) error) error {
		for _, r := range results {
			if err := fn(Pair{Base: r}); err != nil {
				return err
			}
		}
		return nil
	}
}

// buildFigure2 accumulates Fig 2 one pair at a time.
func buildFigure2(src pairSource) (Figure2, error) {
	f := Figure2{Slowdowns: map[string][]float64{}}
	err := src(func(pair Pair) error {
		r := pair.Base
		if !r.Completed || r.Strategy != "" {
			return nil
		}
		f.Slowdowns[r.Middleware] = append(f.Slowdowns[r.Middleware], r.Tail.Slowdown)
		return nil
	})
	if err != nil {
		return Figure2{}, err
	}
	for mw := range f.Slowdowns {
		sort.Float64s(f.Slowdowns[mw])
	}
	return f, nil
}

// BuildFigure2 derives Fig 2 from baseline results.
func BuildFigure2(results []Result) Figure2 {
	f, _ := buildFigure2(resultPairs(results))
	return f
}

// Figure2From streams Fig 2 straight from the store, one cell at a time.
func Figure2From(store *campaign.ResultStore, p Profile, spec MatrixSpec) (Figure2, error) {
	return buildFigure2(storePairs(store, p, spec))
}

// FractionBelow returns P(slowdown < s) for a middleware.
func (f Figure2) FractionBelow(mw string, s float64) float64 {
	xs := f.Slowdowns[mw]
	if len(xs) == 0 {
		return 0
	}
	n := sort.SearchFloat64s(xs, s)
	return float64(n) / float64(len(xs))
}

// Render prints the CDF at reference slowdowns.
func (f Figure2) Render() string {
	tbl := TextTable{
		Title:   "Figure 2 — CDF of tail slowdown (fraction of executions with slowdown < S)",
		Headers: []string{"S", "BOINC", "XWHEP"},
	}
	for _, s := range []float64{1.0, 1.33, 1.5, 2, 3, 4, 5, 10, 20} {
		tbl.AddRow(f2(s), f2(f.FractionBelow(BOINC, s)), f2(f.FractionBelow(XWHEP, s)))
	}
	for _, mw := range []string{BOINC, XWHEP} {
		xs := f.Slowdowns[mw]
		if len(xs) > 0 {
			tbl.AddRow("p95:"+mw, "", f2(stats.QuantileSorted(xs, 0.95)))
		}
	}
	return tbl.String()
}

// ---------------------------------------------------------------------------
// Table 1 — tail fractions per BE-DCI class and middleware.

// Table1 reports avg % of BoT in tail and avg % of time in tail.
type Table1 struct {
	Rows map[trace.Class]map[string]table1Cell
}

type table1Cell struct {
	TaskFrac float64
	TimeFrac float64
	N        int
}

// buildTable1 accumulates Table 1 one pair at a time.
func buildTable1(src pairSource) (Table1, error) {
	sums := map[trace.Class]map[string]*table1Cell{}
	err := src(func(pair Pair) error {
		r := pair.Base
		if !r.Completed || r.Strategy != "" {
			return nil
		}
		cls := trace.ClassOf(r.TraceName)
		if sums[cls] == nil {
			sums[cls] = map[string]*table1Cell{}
		}
		c := sums[cls][r.Middleware]
		if c == nil {
			c = &table1Cell{}
			sums[cls][r.Middleware] = c
		}
		c.TaskFrac += r.Tail.TailTaskFraction
		c.TimeFrac += r.Tail.TailTimeFraction
		c.N++
		return nil
	})
	if err != nil {
		return Table1{}, err
	}
	out := Table1{Rows: map[trace.Class]map[string]table1Cell{}}
	for cls, byMW := range sums {
		out.Rows[cls] = map[string]table1Cell{}
		for mw, c := range byMW {
			out.Rows[cls][mw] = table1Cell{
				TaskFrac: c.TaskFrac / float64(c.N),
				TimeFrac: c.TimeFrac / float64(c.N),
				N:        c.N,
			}
		}
	}
	return out, nil
}

// BuildTable1 aggregates baseline results by BE-DCI class.
func BuildTable1(results []Result) Table1 {
	t, _ := buildTable1(resultPairs(results))
	return t
}

// Table1From streams Table 1 straight from the store, one cell at a time.
func Table1From(store *campaign.ResultStore, p Profile, spec MatrixSpec) (Table1, error) {
	return buildTable1(storePairs(store, p, spec))
}

// Render prints the Table 1 layout.
func (t Table1) Render() string {
	tbl := TextTable{
		Title: "Table 1 — tail fractions (averages over executions)",
		Headers: []string{"BE-DCI class", "%BoT in tail BOINC", "%BoT in tail XWHEP",
			"%time in tail BOINC", "%time in tail XWHEP"},
	}
	for _, cls := range []trace.Class{trace.ClassDesktopGrid, trace.ClassBestEffortGrid, trace.ClassSpotInstances} {
		byMW := t.Rows[cls]
		b := byMW[BOINC]
		x := byMW[XWHEP]
		tbl.AddRow(string(cls), pc(b.TaskFrac), pc(x.TaskFrac), pc(b.TimeFrac), pc(x.TimeFrac))
	}
	return tbl.String()
}

// ---------------------------------------------------------------------------
// Table 2 — BE-DCI trace statistics (generator validation).

// Table2Row compares a generated trace's statistics to the published ones.
type Table2Row struct {
	Name            string
	MeanNodes       float64
	PublishedMean   float64
	AvailQuartiles  [3]float64
	PublishedAvail  [3]float64
	PowerMean       float64
	PublishedPower  float64
	ConcurrencyDays float64
}

// BuildTable2 generates each trace and measures its statistics. days bounds
// the generated window; pool of 0 uses natural pools except seti (capped at
// 2000 for tractability, per-node process unchanged).
func BuildTable2(days float64, seed uint64) []Table2Row {
	published := map[string]struct {
		mean  float64
		av    [3]float64
		power float64
	}{
		"seti":    {24391, [3]float64{61, 531, 5407}, 1000},
		"nd":      {180, [3]float64{952, 3840, 26562}, 1000},
		"g5klyo":  {90.573, [3]float64{21, 51, 63}, 3000},
		"g5kgre":  {474.69, [3]float64{5, 182, 11268}, 3000},
		"spot10":  {82.186, [3]float64{4415, 5432, 17109}, 3000},
		"spot100": {823.95, [3]float64{1063, 5566, 22490}, 3000},
	}
	var rows []Table2Row
	for _, name := range TraceNames() {
		src, _ := TraceSource(name)
		pool := 0
		scale := 1.0
		if name == "seti" {
			pool = 2000
			scale = 31092.0 / 2000 // report scaled-up concurrency
		}
		tr := src.Generate(seed, days*86400, pool)
		st := tr.MeasureStats(900)
		pub := published[name]
		rows = append(rows, Table2Row{
			Name:            name,
			MeanNodes:       st.Concurrency.Mean * scale,
			PublishedMean:   pub.mean,
			AvailQuartiles:  [3]float64{st.Avail.Q25, st.Avail.Q50, st.Avail.Q75},
			PublishedAvail:  pub.av,
			PowerMean:       st.Power.Mean,
			PublishedPower:  pub.power,
			ConcurrencyDays: days,
		})
	}
	return rows
}

// RenderTable2 prints generated-vs-published statistics.
func RenderTable2(rows []Table2Row) string {
	tbl := TextTable{
		Title: "Table 2 — trace statistics: generated vs published",
		Headers: []string{"trace", "mean nodes", "published", "avail q25/q50/q75",
			"published q25/q50/q75", "power", "published"},
	}
	for _, r := range rows {
		tbl.AddRow(r.Name, f1(r.MeanNodes), f1(r.PublishedMean),
			fmt.Sprintf("%.0f/%.0f/%.0f", r.AvailQuartiles[0], r.AvailQuartiles[1], r.AvailQuartiles[2]),
			fmt.Sprintf("%.0f/%.0f/%.0f", r.PublishedAvail[0], r.PublishedAvail[1], r.PublishedAvail[2]),
			f0(r.PowerMean), f0(r.PublishedPower))
	}
	return tbl.String()
}

// ---------------------------------------------------------------------------
// Figure 4 — CCDF of Tail Removal Efficiency per strategy combination.

// Figure4 holds, per strategy label, the TRE samples (sorted).
type Figure4 struct {
	TRE map[string][]float64
}

// buildFigure4 accumulates paired TREs one pair at a time.
func buildFigure4(src pairSource) (Figure4, error) {
	f := Figure4{TRE: map[string][]float64{}}
	err := src(func(pair Pair) error {
		if !pair.Base.Completed {
			return nil
		}
		base := pair.Base
		for label, speq := range pair.Speq {
			if !speq.Completed {
				continue
			}
			tre, ok := metrics.TailRemovalEfficiency(
				speq.CompletionTime, base.CompletionTime, base.Tail.IdealTime)
			if !ok {
				continue
			}
			f.TRE[label] = append(f.TRE[label], tre)
		}
		return nil
	})
	if err != nil {
		return Figure4{}, err
	}
	for label := range f.TRE {
		sort.Float64s(f.TRE[label])
	}
	return f, nil
}

// BuildFigure4 computes paired TREs for every strategy in the matrix.
func BuildFigure4(m Matrix) Figure4 {
	f, _ := buildFigure4(m.each)
	return f
}

// Figure4From streams Fig 4 straight from the store, one cell at a time.
func Figure4From(store *campaign.ResultStore, p Profile, spec MatrixSpec) (Figure4, error) {
	return buildFigure4(storePairs(store, p, spec))
}

// FractionAbove returns P(TRE > p) for a strategy label.
func (f Figure4) FractionAbove(label string, p float64) float64 {
	xs := f.TRE[label]
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, v := range xs {
		if v > p {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// Render prints, per deployment group, the CCDF at reference efficiencies.
func (f Figure4) Render() string {
	labels := make([]string, 0, len(f.TRE))
	for l := range f.TRE {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	tbl := TextTable{
		Title:   "Figure 4 — Tail Removal Efficiency CCDF: fraction of executions with TRE > P",
		Headers: []string{"strategy", "P>0%", "P>25%", "P>50%", "P>75%", "P=100%", "median"},
	}
	for _, l := range labels {
		xs := f.TRE[l]
		full := 0
		for _, v := range xs {
			if v >= 0.999 {
				full++
			}
		}
		tbl.AddRow(l,
			f2(f.FractionAbove(l, 0)), f2(f.FractionAbove(l, 0.25)),
			f2(f.FractionAbove(l, 0.5)), f2(f.FractionAbove(l, 0.75)),
			f2(float64(full)/float64(maxInt(len(xs), 1))),
			f2(stats.QuantileSorted(xs, 0.5)))
	}
	return tbl.String()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// ---------------------------------------------------------------------------
// Figure 5 — credit consumption per strategy combination.

// Figure5 reports the average percentage of provisioned credits spent.
type Figure5 struct {
	SpentFraction map[string]float64 // label → mean billed/allocated
	N             map[string]int
}

// buildFigure5 accumulates credit use one pair at a time.
func buildFigure5(src pairSource) (Figure5, error) {
	f := Figure5{SpentFraction: map[string]float64{}, N: map[string]int{}}
	sums := map[string]float64{}
	err := src(func(pair Pair) error {
		for label, speq := range pair.Speq {
			if !speq.Completed || speq.CreditsAllocated <= 0 {
				continue
			}
			sums[label] += speq.CreditsBilled / speq.CreditsAllocated
			f.N[label]++
		}
		return nil
	})
	if err != nil {
		return Figure5{}, err
	}
	for label, s := range sums {
		f.SpentFraction[label] = s / float64(f.N[label])
	}
	return f, nil
}

// BuildFigure5 aggregates credit use from the matrix.
func BuildFigure5(m Matrix) Figure5 {
	f, _ := buildFigure5(m.each)
	return f
}

// Figure5From streams Fig 5 straight from the store, one cell at a time.
func Figure5From(store *campaign.ResultStore, p Profile, spec MatrixSpec) (Figure5, error) {
	return buildFigure5(storePairs(store, p, spec))
}

// Render prints consumption per combination.
func (f Figure5) Render() string {
	labels := make([]string, 0, len(f.SpentFraction))
	for l := range f.SpentFraction {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	tbl := TextTable{
		Title:   "Figure 5 — credits spent (% of provisioned; provisioned = 10% of workload)",
		Headers: []string{"strategy", "% credits used", "runs"},
	}
	for _, l := range labels {
		tbl.AddRow(l, pc(f.SpentFraction[l]), fmt.Sprintf("%d", f.N[l]))
	}
	return tbl.String()
}

// ---------------------------------------------------------------------------
// Figure 6 — average completion time with and without SpeQuloS.

// Figure6Cell is one bar pair of Fig 6.
type Figure6Cell struct {
	NoSpeq float64
	Speq   float64
	N      int
}

// Figure6 indexes cells by middleware, BoT class and trace.
type Figure6 struct {
	Strategy string
	Cells    map[string]map[string]map[string]Figure6Cell // mw → bot → trace
}

// buildFigure6 accumulates paired completion times one pair at a time.
func buildFigure6(src pairSource, label string) (Figure6, error) {
	type acc struct {
		base, speq float64
		n          int
	}
	sums := map[string]map[string]map[string]*acc{}
	err := src(func(pair Pair) error {
		speq, ok := pair.Speq[label]
		if !ok || !speq.Completed || !pair.Base.Completed {
			return nil
		}
		mw, bc, tn := pair.Base.Middleware, pair.Base.BotClass, pair.Base.TraceName
		if sums[mw] == nil {
			sums[mw] = map[string]map[string]*acc{}
		}
		if sums[mw][bc] == nil {
			sums[mw][bc] = map[string]*acc{}
		}
		a := sums[mw][bc][tn]
		if a == nil {
			a = &acc{}
			sums[mw][bc][tn] = a
		}
		a.base += pair.Base.CompletionTime
		a.speq += speq.CompletionTime
		a.n++
		return nil
	})
	if err != nil {
		return Figure6{}, err
	}
	out := Figure6{Strategy: label, Cells: map[string]map[string]map[string]Figure6Cell{}}
	for mw, byBot := range sums {
		out.Cells[mw] = map[string]map[string]Figure6Cell{}
		for bc, byTrace := range byBot {
			out.Cells[mw][bc] = map[string]Figure6Cell{}
			for tn, a := range byTrace {
				out.Cells[mw][bc][tn] = Figure6Cell{
					NoSpeq: a.base / float64(a.n),
					Speq:   a.speq / float64(a.n),
					N:      a.n,
				}
			}
		}
	}
	return out, nil
}

// BuildFigure6 aggregates paired completion times for one strategy.
func BuildFigure6(m Matrix, label string) Figure6 {
	f, _ := buildFigure6(m.each, label)
	return f
}

// Figure6From streams Fig 6 straight from the store, one cell at a time.
func Figure6From(store *campaign.ResultStore, p Profile, spec MatrixSpec, label string) (Figure6, error) {
	return buildFigure6(storePairs(store, p, spec), label)
}

// Render prints the six panels (a–f).
func (f Figure6) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6 — average completion time (s), strategy %s\n", f.Strategy)
	for _, mw := range []string{BOINC, XWHEP} {
		for _, bc := range BotClasses() {
			cells := f.Cells[mw][bc]
			if len(cells) == 0 {
				continue
			}
			tbl := TextTable{
				Title:   fmt.Sprintf("%s & %s BoT", mw, bc),
				Headers: []string{"BE-DCI", "No SpeQuloS", "SpeQuloS", "speedup"},
			}
			for _, tn := range TraceNames() {
				c, ok := cells[tn]
				if !ok {
					continue
				}
				speedup := 0.0
				if c.Speq > 0 {
					speedup = c.NoSpeq / c.Speq
				}
				tbl.AddRow(tn, f0(c.NoSpeq), f0(c.Speq), f2(speedup))
			}
			b.WriteString(tbl.String())
			b.WriteString("\n")
		}
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Figure 7 — execution stability (normalized completion-time repartition).

// Figure7 holds normalized completion-time histograms per middleware, with
// and without SpeQuloS.
type Figure7 struct {
	Strategy string
	NoSpeq   map[string]stats.Histogram
	Speq     map[string]stats.Histogram
	// StdNoSpeq/StdSpeq are the standard deviations of the normalized
	// samples (1 = the environment mean), a scalar stability measure.
	StdNoSpeq map[string]float64
	StdSpeq   map[string]float64
}

// buildFigure7 normalizes each completion time by the average of its
// environment (trace × middleware × BoT class, per §4.3.2) and histograms
// the result, accumulating the per-environment samples in one streaming
// pass. Only the per-environment completion times are retained per cell —
// a few floats — not the pairs themselves.
func buildFigure7(src pairSource, label string) (Figure7, error) {
	byEnvBase := map[string][]float64{}
	byEnvSpeq := map[string][]float64{}
	err := src(func(pair Pair) error {
		if pair.Base.Completed {
			env := pair.Base.EnvKey()
			byEnvBase[env] = append(byEnvBase[env], pair.Base.CompletionTime)
		}
		if r, ok := pair.Speq[label]; ok && r.Completed {
			env := r.EnvKey()
			byEnvSpeq[env] = append(byEnvSpeq[env], r.CompletionTime)
		}
		return nil
	})
	if err != nil {
		return Figure7{}, err
	}
	group := func(byEnv map[string][]float64) map[string][]float64 {
		byMW := map[string][]float64{}
		for env, times := range byEnv {
			mw := strings.SplitN(env, "/", 2)[0]
			byMW[mw] = append(byMW[mw], metrics.NormalizeByMean(times)...)
		}
		return byMW
	}
	base := group(byEnvBase)
	speq := group(byEnvSpeq)
	out := Figure7{
		Strategy:  label,
		NoSpeq:    map[string]stats.Histogram{},
		Speq:      map[string]stats.Histogram{},
		StdNoSpeq: map[string]float64{},
		StdSpeq:   map[string]float64{},
	}
	for mw, xs := range base {
		out.NoSpeq[mw] = stats.NewHistogram(xs, 0, 5, 25)
		out.StdNoSpeq[mw] = stats.Summarize(xs).Std
	}
	for mw, xs := range speq {
		out.Speq[mw] = stats.NewHistogram(xs, 0, 5, 25)
		out.StdSpeq[mw] = stats.Summarize(xs).Std
	}
	return out, nil
}

// BuildFigure7 derives the stability figure from a materialized matrix.
func BuildFigure7(m Matrix, label string) Figure7 {
	f, _ := buildFigure7(m.each, label)
	return f
}

// Figure7From streams Fig 7 straight from the store, one cell at a time.
func Figure7From(store *campaign.ResultStore, p Profile, spec MatrixSpec, label string) (Figure7, error) {
	return buildFigure7(storePairs(store, p, spec), label)
}

// Render prints the stability summary.
func (f Figure7) Render() string {
	tbl := TextTable{
		Title:   "Figure 7 — execution stability: std of completion time normalized by environment mean",
		Headers: []string{"middleware", "No SpeQuloS", "SpeQuloS"},
	}
	for _, mw := range []string{BOINC, XWHEP} {
		tbl.AddRow(mw, f2(f.StdNoSpeq[mw]), f2(f.StdSpeq[mw]))
	}
	return tbl.String()
}

// ---------------------------------------------------------------------------
// Table 4 — completion-time prediction success rate.

// Table4 is the prediction success rate per trace and (bot, middleware).
type Table4 struct {
	Strategy string
	// Success[trace][bot/mw] with keys like "SMALL/BOINC"; "Mixed" totals.
	Success map[string]map[string]float64
	Overall float64
}

// buildTable4 fits α per environment over the SpeQuloS runs of one strategy
// (perfect-knowledge calibration, as §4.3.3 does) and evaluates the ±20%
// success rate of predictions made at 50% completion. Calibration needs
// every run before any prediction is judged, so the source is streamed
// twice — per-cell both times, never materialized.
func buildTable4(src pairSource, label string) (Table4, error) {
	cal := core.NewCalibration()
	err := src(func(pair Pair) error {
		if r, ok := pair.Speq[label]; ok && r.Completed && r.TC50Base > 0 {
			cal.Record(r.EnvKey(), r.TC50Base, r.CompletionTime)
		}
		return nil
	})
	if err != nil {
		return Table4{}, err
	}
	hit := map[string]map[string][]bool{}
	err = src(func(pair Pair) error {
		r, okRun := pair.Speq[label]
		if !okRun || !r.Completed || r.TC50Base <= 0 {
			return nil
		}
		alpha := cal.Alpha(r.EnvKey())
		ok := metrics.PredictionSuccess(alpha*r.TC50Base, r.CompletionTime, core.PredictionTolerance)
		if hit[r.TraceName] == nil {
			hit[r.TraceName] = map[string][]bool{}
		}
		key := r.BotClass + "/" + r.Middleware
		hit[r.TraceName][key] = append(hit[r.TraceName][key], ok)
		hit[r.TraceName]["Mixed"] = append(hit[r.TraceName]["Mixed"], ok)
		return nil
	})
	if err != nil {
		return Table4{}, err
	}
	out := Table4{Strategy: label, Success: map[string]map[string]float64{}}
	var allHits, allN int
	for tn, byKey := range hit {
		out.Success[tn] = map[string]float64{}
		for key, oks := range byKey {
			n := 0
			for _, v := range oks {
				if v {
					n++
				}
			}
			out.Success[tn][key] = float64(n) / float64(len(oks))
			if key == "Mixed" {
				allHits += n
				allN += len(oks)
			}
		}
	}
	if allN > 0 {
		out.Overall = float64(allHits) / float64(allN)
	}
	return out, nil
}

// BuildTable4 derives the prediction table from a materialized matrix.
func BuildTable4(m Matrix, label string) Table4 {
	t, _ := buildTable4(m.each, label)
	return t
}

// Table4From streams Table 4 straight from the store, one cell at a time.
func Table4From(store *campaign.ResultStore, p Profile, spec MatrixSpec, label string) (Table4, error) {
	return buildTable4(storePairs(store, p, spec), label)
}

// Render prints the Table 4 layout.
func (t Table4) Render() string {
	tbl := TextTable{
		Title: fmt.Sprintf("Table 4 — prediction success rate (±20%% at 50%% completion), strategy %s", t.Strategy),
		Headers: []string{"BE-DCI", "SMALL/BOINC", "SMALL/XWHEP", "BIG/BOINC", "BIG/XWHEP",
			"RANDOM/BOINC", "RANDOM/XWHEP", "Mixed"},
	}
	cell := func(tn, key string) string {
		if v, ok := t.Success[tn][key]; ok {
			return pc(v)
		}
		return "-"
	}
	for _, tn := range TraceNames() {
		if _, ok := t.Success[tn]; !ok {
			continue
		}
		tbl.AddRow(tn,
			cell(tn, "SMALL/BOINC"), cell(tn, "SMALL/XWHEP"),
			cell(tn, "BIG/BOINC"), cell(tn, "BIG/XWHEP"),
			cell(tn, "RANDOM/BOINC"), cell(tn, "RANDOM/XWHEP"),
			cell(tn, "Mixed"))
	}
	tbl.AddRow("Overall", "", "", "", "", "", "", pc(t.Overall))
	return tbl.String()
}
