package experiments

import (
	"sort"

	"spequlos/internal/plot"
)

// Chart builders turning figure data into SVG specifications, matching the
// visual form of the paper's figures.

// Figure1Chart plots the BoT completion-ratio curve with its ideal-time
// reference line (Fig 1).
func Figure1Chart(f Figure1) plot.LineChart {
	var xs, ys []float64
	for _, pt := range f.Series {
		xs = append(xs, pt.T)
		ys = append(ys, pt.Ratio)
	}
	ideal := plot.Series{
		Name:   "constant completion rate",
		X:      []float64{0, f.Tail.IdealTime},
		Y:      []float64{0, 1},
		Dashed: true,
	}
	return plot.LineChart{
		Title:  "Figure 1 — BoT execution profile (" + f.Result.TraceName + ", " + f.Result.Middleware + ")",
		XLabel: "time (s)", YLabel: "BoT completion ratio",
		YMin: 0, YMax: 1.05,
		Series: []plot.Series{{Name: "BoT completion", X: xs, Y: ys}, ideal},
	}
}

// Figure2Chart plots the tail-slowdown CDFs on a log-10 X axis (Fig 2).
func Figure2Chart(f Figure2) plot.LineChart {
	chart := plot.LineChart{
		Title:  "Figure 2 — CDF of tail slowdown",
		XLabel: "tail slowdown S", YLabel: "fraction of executions with slowdown < S",
		LogX: true, YMin: 0, YMax: 1.05,
	}
	for _, mw := range []string{BOINC, XWHEP} {
		xs := f.Slowdowns[mw]
		if len(xs) == 0 {
			continue
		}
		var sx, sy []float64
		for i, v := range xs {
			sx = append(sx, v)
			sy = append(sy, float64(i+1)/float64(len(xs)))
		}
		chart.Series = append(chart.Series, plot.Series{Name: mw, X: sx, Y: sy, Dashed: mw == XWHEP})
	}
	return chart
}

// Figure4Chart plots the TRE CCDF of each strategy of one deployment group
// ("F", "R" or "D"), matching the paper's per-deployment panels (Fig 4a–c).
func Figure4Chart(f Figure4, deployCode string) plot.LineChart {
	chart := plot.LineChart{
		Title:  "Figure 4 — Tail Removal Efficiency CCDF (deployment " + deployCode + ")",
		XLabel: "tail removal efficiency P (%)", YLabel: "fraction of executions with TRE > P",
		YMin: 0, YMax: 1.05,
	}
	labels := make([]string, 0, len(f.TRE))
	for l := range f.TRE {
		if len(l) > 0 && l[len(l)-1:] == deployCode {
			labels = append(labels, l)
		}
	}
	sort.Strings(labels)
	for _, l := range labels {
		var xs, ys []float64
		for p := 0.0; p <= 100; p += 2 {
			xs = append(xs, p)
			ys = append(ys, f.FractionAbove(l, p/100))
		}
		chart.Series = append(chart.Series, plot.Series{Name: l, X: xs, Y: ys})
	}
	return chart
}

// Figure5Chart plots per-strategy credit consumption (Fig 5).
func Figure5Chart(f Figure5) plot.BarChart {
	chart := plot.BarChart{
		Title:  "Figure 5 — credits spent (% of provisioned)",
		YLabel: "% of provisioned credits",
		Bars:   []string{"% credits used"},
	}
	for _, l := range plot.SortedKeys(f.SpentFraction) {
		chart.Groups = append(chart.Groups, plot.BarGroup{
			Label: l, Values: []float64{f.SpentFraction[l] * 100},
		})
	}
	return chart
}

// Figure6Chart plots one panel of Fig 6: average completion times per
// BE-DCI, with and without SpeQuloS, for a (middleware, BoT class) pair.
func Figure6Chart(f Figure6, mw, botClass string) plot.BarChart {
	chart := plot.BarChart{
		Title:  "Figure 6 — " + mw + " & " + botClass + " BoT (" + f.Strategy + ")",
		YLabel: "completion time (s)",
		Bars:   []string{"No SpeQuloS", "SpeQuloS"},
	}
	cells := f.Cells[mw][botClass]
	for _, tn := range TraceNames() {
		c, ok := cells[tn]
		if !ok {
			continue
		}
		chart.Groups = append(chart.Groups, plot.BarGroup{
			Label: tn, Values: []float64{c.NoSpeq, c.Speq},
		})
	}
	return chart
}

// Figure7Chart plots the stability histograms of one middleware (Fig 7).
func Figure7Chart(f Figure7, mw string) plot.LineChart {
	chart := plot.LineChart{
		Title:  "Figure 7 — completion time repartition around the mean (" + mw + ")",
		XLabel: "completion time / environment average", YLabel: "fraction of executions",
	}
	add := func(name string, h map[string]histogramLike, dashed bool) {
		hist, ok := h[mw]
		if !ok || len(hist.FracSlice()) == 0 {
			return
		}
		var xs, ys []float64
		for i, fr := range hist.FracSlice() {
			xs = append(xs, hist.Center(i))
			ys = append(ys, fr)
		}
		chart.Series = append(chart.Series, plot.Series{Name: name, X: xs, Y: ys, Dashed: dashed})
	}
	no := map[string]histogramLike{}
	sp := map[string]histogramLike{}
	for k, v := range f.NoSpeq {
		no[k] = histAdapter{v.Frac, v.Lo, v.Hi}
	}
	for k, v := range f.Speq {
		sp[k] = histAdapter{v.Frac, v.Lo, v.Hi}
	}
	add("No SpeQuloS", no, false)
	add("SpeQuloS", sp, true)
	return chart
}

// histogramLike lets the chart builder read histograms without exposing
// stats internals.
type histogramLike interface {
	FracSlice() []float64
	Center(i int) float64
}

type histAdapter struct {
	frac   []float64
	lo, hi float64
}

func (h histAdapter) FracSlice() []float64 { return h.frac }
func (h histAdapter) Center(i int) float64 {
	if len(h.frac) == 0 {
		return 0
	}
	w := (h.hi - h.lo) / float64(len(h.frac))
	return h.lo + (float64(i)+0.5)*w
}
