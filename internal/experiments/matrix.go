package experiments

import (
	"context"
	"fmt"
	"io"

	"spequlos/internal/campaign"
	"spequlos/internal/core"
)

// Pair bundles a baseline run with its same-seed SpeQuloS runs, keyed by
// strategy label.
type Pair struct {
	Base Result
	Speq map[string]Result
}

// Matrix is the full outcome of a matrix campaign.
type Matrix struct {
	Profile    Profile
	Strategies []string // labels, in order
	Pairs      []Pair
}

// MatrixSpec restricts a campaign. Zero-value fields mean "all".
type MatrixSpec struct {
	Middlewares []string
	Traces      []string
	Bots        []string
	Strategies  []core.Strategy
	// Log, when non-nil, receives one line per finished scenario.
	Log io.Writer
}

func (s MatrixSpec) middlewares() []string {
	if len(s.Middlewares) == 0 {
		return Middlewares()
	}
	return s.Middlewares
}
func (s MatrixSpec) traces() []string {
	if len(s.Traces) == 0 {
		return TraceNames()
	}
	return s.Traces
}
func (s MatrixSpec) bots() []string {
	if len(s.Bots) == 0 {
		return BotClasses()
	}
	return s.Bots
}

func (s MatrixSpec) labels() []string {
	labels := make([]string, len(s.Strategies))
	for i, st := range s.Strategies {
		labels[i] = st.Label()
	}
	return labels
}

// scenarios enumerates the cells of the spec in deterministic order.
func (s MatrixSpec) scenarios(p Profile) []Scenario {
	var out []Scenario
	for _, mw := range s.middlewares() {
		for _, tn := range s.traces() {
			for _, bc := range s.bots() {
				for off := 0; off < p.Offsets; off++ {
					out = append(out, Scenario{
						Profile: p, Middleware: mw, TraceName: tn, BotClass: bc, Offset: off,
					})
				}
			}
		}
	}
	return out
}

// Jobs plans the campaign jobs of the spec: for every cell the baseline run
// and one SpeQuloS run per strategy, all from the same seed.
func (s MatrixSpec) Jobs(p Profile) []campaign.Job {
	var jobs []campaign.Job
	for _, sc := range s.scenarios(p) {
		jobs = append(jobs, campaign.Job{Scenario: sc})
		for _, st := range s.Strategies {
			st := st
			scs := sc
			scs.Strategy = &st
			jobs = append(jobs, campaign.Job{Scenario: scs})
		}
	}
	return jobs
}

// RunMatrix plans the spec's jobs, executes them once through the campaign
// engine, and derives the Matrix view from the result store.
func RunMatrix(p Profile, spec MatrixSpec) Matrix {
	store := campaign.NewResultStore()
	c := campaign.New(p, spec.Jobs(p)...)
	if spec.Log != nil {
		c.Progress = func(ev campaign.Event) {
			fmt.Fprintf(spec.Log, "done %s (%d/%d, base %.0fs)\n",
				ev.Key, ev.Done, ev.Total, ev.Result.CompletionTime)
		}
	}
	c.Run(context.Background(), store)
	m, err := MatrixFrom(store, p, spec)
	if err != nil {
		panic(err) // unreachable: the campaign just ran every planned job
	}
	return m
}

// pairSource streams the pairs of a matrix in deterministic cell order —
// the abstraction the figure/table accumulators consume, implemented both
// by a materialized Matrix (Matrix.each) and by a store-backed cursor
// (EachPair), so every builder has a streaming and a materialized entry
// point with one aggregation implementation.
type pairSource func(fn func(Pair) error) error

// each streams the materialized pairs.
func (m Matrix) each(fn func(Pair) error) error {
	for _, pair := range m.Pairs {
		if err := fn(pair); err != nil {
			return err
		}
	}
	return nil
}

// EachPair streams the spec's cells straight from the store in
// deterministic order, building one Pair at a time — the derivation path
// for paper-scale campaigns, which never materializes the whole matrix. It
// fails on the first cell missing from the store.
func EachPair(store *campaign.ResultStore, p Profile, spec MatrixSpec, fn func(Pair) error) error {
	for _, sc := range spec.scenarios(p) {
		base, ok := store.Result(campaign.Job{Scenario: sc})
		if !ok {
			return fmt.Errorf("experiments: store missing baseline %s", campaign.Job{Scenario: sc}.Key())
		}
		pair := Pair{Base: base, Speq: map[string]Result{}}
		for _, st := range spec.Strategies {
			st := st
			scs := sc
			scs.Strategy = &st
			r, ok := store.Result(campaign.Job{Scenario: scs})
			if !ok {
				return fmt.Errorf("experiments: store missing %s", campaign.Job{Scenario: scs}.Key())
			}
			pair.Speq[st.Label()] = r
		}
		if err := fn(pair); err != nil {
			return err
		}
	}
	return nil
}

// storePairs adapts EachPair to a pairSource.
func storePairs(store *campaign.ResultStore, p Profile, spec MatrixSpec) pairSource {
	return func(fn func(Pair) error) error { return EachPair(store, p, spec, fn) }
}

// ValidateSpec checks that the store holds every cell of the spec without
// materializing anything — the completeness gate the streaming derivation
// path runs where the materialized path built the Matrix.
func ValidateSpec(store *campaign.ResultStore, p Profile, spec MatrixSpec) error {
	return EachPair(store, p, spec, func(Pair) error { return nil })
}

// MatrixFrom derives the Matrix view of a spec from an already-executed
// result store. It fails if the store is missing any cell of the spec.
// Paper-scale consumers should prefer EachPair and the *From streaming
// builders, which iterate per cell instead of materializing every pair.
func MatrixFrom(store *campaign.ResultStore, p Profile, spec MatrixSpec) (Matrix, error) {
	m := Matrix{Profile: p, Strategies: spec.labels()}
	err := EachPair(store, p, spec, func(pair Pair) error {
		m.Pairs = append(m.Pairs, pair)
		return nil
	})
	if err != nil {
		return Matrix{}, err
	}
	return m, nil
}

// BaseResults extracts the baseline runs.
func (m Matrix) BaseResults() []Result {
	out := make([]Result, 0, len(m.Pairs))
	for _, p := range m.Pairs {
		out = append(out, p.Base)
	}
	return out
}

// StrategyResults extracts the runs of one strategy label.
func (m Matrix) StrategyResults(label string) []Result {
	var out []Result
	for _, p := range m.Pairs {
		if r, ok := p.Speq[label]; ok {
			out = append(out, r)
		}
	}
	return out
}
