package experiments

import (
	"fmt"
	"io"
	"sync"

	"spequlos/internal/core"
)

// Pair bundles a baseline run with its same-seed SpeQuloS runs, keyed by
// strategy label.
type Pair struct {
	Base Result
	Speq map[string]Result
}

// Matrix is the full outcome of a matrix campaign.
type Matrix struct {
	Profile    Profile
	Strategies []string // labels, in order
	Pairs      []Pair
}

// MatrixSpec restricts a campaign. Zero-value fields mean "all".
type MatrixSpec struct {
	Middlewares []string
	Traces      []string
	Bots        []string
	Strategies  []core.Strategy
	// Log, when non-nil, receives one line per finished scenario.
	Log io.Writer
}

func (s MatrixSpec) middlewares() []string {
	if len(s.Middlewares) == 0 {
		return Middlewares()
	}
	return s.Middlewares
}
func (s MatrixSpec) traces() []string {
	if len(s.Traces) == 0 {
		return TraceNames()
	}
	return s.Traces
}
func (s MatrixSpec) bots() []string {
	if len(s.Bots) == 0 {
		return BotClasses()
	}
	return s.Bots
}

// RunMatrix executes the campaign: for every (middleware, trace, bot,
// offset) cell it runs the baseline and one SpeQuloS run per strategy, all
// from the same seed. Cells run in parallel; results keep deterministic
// order.
func RunMatrix(p Profile, spec MatrixSpec) Matrix {
	type job struct {
		idx int
		sc  Scenario
	}
	var jobs []job
	for _, mw := range spec.middlewares() {
		for _, tn := range spec.traces() {
			for _, bc := range spec.bots() {
				for off := 0; off < p.Offsets; off++ {
					jobs = append(jobs, job{idx: len(jobs), sc: Scenario{
						Profile: p, Middleware: mw, TraceName: tn, BotClass: bc, Offset: off,
					}})
				}
			}
		}
	}
	labels := make([]string, len(spec.Strategies))
	for i, st := range spec.Strategies {
		labels[i] = st.Label()
	}
	pairs := make([]Pair, len(jobs))
	var mu sync.Mutex
	var wg sync.WaitGroup
	sem := make(chan struct{}, p.workers())
	for _, j := range jobs {
		wg.Add(1)
		go func(j job) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			pair := Pair{Speq: map[string]Result{}}
			pair.Base = Run(j.sc)
			for _, st := range spec.Strategies {
				st := st
				scs := j.sc
				scs.Strategy = &st
				pair.Speq[st.Label()] = Run(scs)
			}
			mu.Lock()
			pairs[j.idx] = pair
			if spec.Log != nil {
				fmt.Fprintf(spec.Log, "done %s/%s/%s #%d (base %.0fs, %d strategies)\n",
					j.sc.Middleware, j.sc.TraceName, j.sc.BotClass, j.sc.Offset,
					pair.Base.CompletionTime, len(spec.Strategies))
			}
			mu.Unlock()
		}(j)
	}
	wg.Wait()
	return Matrix{Profile: p, Strategies: labels, Pairs: pairs}
}

// BaseResults extracts the baseline runs.
func (m Matrix) BaseResults() []Result {
	out := make([]Result, 0, len(m.Pairs))
	for _, p := range m.Pairs {
		out = append(out, p.Base)
	}
	return out
}

// StrategyResults extracts the runs of one strategy label.
func (m Matrix) StrategyResults(label string) []Result {
	var out []Result
	for _, p := range m.Pairs {
		if r, ok := p.Speq[label]; ok {
			out = append(out, r)
		}
	}
	return out
}
