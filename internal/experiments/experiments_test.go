package experiments

import (
	"bytes"
	"strings"
	"testing"

	"spequlos/internal/core"
)

// tiny returns a profile small enough for unit tests.
func tiny() Profile {
	return Profile{
		Name: "tiny", BotScale: 0.02, Offsets: 1, PoolCap: 120,
		HorizonDays: 6, CreditFraction: 0.10,
	}
}

func TestTraceSourceResolution(t *testing.T) {
	for _, name := range TraceNames() {
		if _, err := TraceSource(name); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, err := TraceSource("nonexistent"); err == nil {
		t.Error("bogus trace resolved")
	}
}

func TestProfileByName(t *testing.T) {
	for _, name := range []string{"quick", "standard", "full"} {
		p, err := ProfileByName(name)
		if err != nil || p.Name != name {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, err := ProfileByName("huge"); err == nil {
		t.Error("bogus profile resolved")
	}
}

func TestRunBaselineDeterministic(t *testing.T) {
	sc := Scenario{Profile: tiny(), Middleware: XWHEP, TraceName: "nd", BotClass: "SMALL", Offset: 0}
	a := Run(sc)
	b := Run(sc)
	if !a.Completed || !b.Completed {
		t.Fatal("runs incomplete")
	}
	if a.CompletionTime != b.CompletionTime || a.Events != b.Events {
		t.Fatalf("non-deterministic: %v/%v vs %v/%v events",
			a.CompletionTime, a.Events, b.CompletionTime, b.Events)
	}
}

func TestPairedSeedBaseUnchanged(t *testing.T) {
	// Adding SpeQuloS must not change anything before the trigger: the
	// trace and workload are identical (verified via the identical tc(50)
	// base, which SpeQuloS cannot affect with a 90% trigger).
	sc := Scenario{Profile: tiny(), Middleware: XWHEP, TraceName: "seti", BotClass: "SMALL", Offset: 0}
	base := Run(sc)
	st := core.DefaultStrategy()
	sc.Strategy = &st
	speq := Run(sc)
	if !base.Completed || !speq.Completed {
		t.Fatal("incomplete runs")
	}
	if base.Size != speq.Size {
		t.Fatal("workloads differ between paired runs")
	}
	if base.TC50Base != speq.TC50Base {
		t.Fatalf("pre-trigger behaviour differs: %v vs %v", base.TC50Base, speq.TC50Base)
	}
	if speq.CompletionTime > base.CompletionTime {
		t.Fatalf("SpeQuloS slower than baseline: %v > %v", speq.CompletionTime, base.CompletionTime)
	}
}

func TestRunMatrixShape(t *testing.T) {
	p := tiny()
	p.Offsets = 2
	m := RunMatrix(p, MatrixSpec{
		Middlewares: []string{XWHEP},
		Traces:      []string{"nd", "spot10"},
		Bots:        []string{"BIG"},
		Strategies:  []core.Strategy{core.DefaultStrategy()},
	})
	if len(m.Pairs) != 4 { // 1 mw × 2 traces × 1 bot × 2 offsets
		t.Fatalf("pairs = %d, want 4", len(m.Pairs))
	}
	if len(m.Strategies) != 1 || m.Strategies[0] != "9C-C-R" {
		t.Fatalf("strategies = %v", m.Strategies)
	}
	for i, pair := range m.Pairs {
		if !pair.Base.Completed {
			t.Fatalf("pair %d baseline incomplete", i)
		}
		if _, ok := pair.Speq["9C-C-R"]; !ok {
			t.Fatalf("pair %d missing strategy run", i)
		}
	}
	if got := len(m.BaseResults()); got != 4 {
		t.Fatalf("base results = %d", got)
	}
	if got := len(m.StrategyResults("9C-C-R")); got != 4 {
		t.Fatalf("strategy results = %d", got)
	}
}

func TestFiguresFromMatrix(t *testing.T) {
	p := tiny()
	m := RunMatrix(p, MatrixSpec{
		Traces:     []string{"seti", "g5klyo"},
		Bots:       []string{"SMALL", "BIG"},
		Strategies: []core.Strategy{core.DefaultStrategy()},
	})

	f2 := BuildFigure2(m.BaseResults())
	if len(f2.Slowdowns[BOINC]) == 0 || len(f2.Slowdowns[XWHEP]) == 0 {
		t.Fatal("figure 2 empty")
	}
	if f2.FractionBelow(BOINC, 1e9) != 1 {
		t.Fatal("CDF must reach 1")
	}
	if !strings.Contains(f2.Render(), "Figure 2") {
		t.Fatal("render broken")
	}

	t1 := BuildTable1(m.BaseResults())
	if len(t1.Rows) == 0 || !strings.Contains(t1.Render(), "Table 1") {
		t.Fatal("table 1 broken")
	}

	f4 := BuildFigure4(m)
	if len(f4.TRE["9C-C-R"]) == 0 {
		t.Fatal("figure 4 empty")
	}
	for _, v := range f4.TRE["9C-C-R"] {
		if v < 0 || v > 1 {
			t.Fatalf("TRE out of bounds: %v", v)
		}
	}
	if !strings.Contains(f4.Render(), "9C-C-R") {
		t.Fatal("figure 4 render broken")
	}

	f5 := BuildFigure5(m)
	if frac, ok := f5.SpentFraction["9C-C-R"]; !ok || frac < 0 || frac > 1 {
		t.Fatalf("figure 5 spent fraction: %v %v", frac, ok)
	}
	if !strings.Contains(f5.Render(), "credits") {
		t.Fatal("figure 5 render broken")
	}

	f6 := BuildFigure6(m, "9C-C-R")
	found := false
	for _, byBot := range f6.Cells {
		for _, byTrace := range byBot {
			for _, c := range byTrace {
				found = true
				if c.Speq > c.NoSpeq {
					t.Fatalf("figure 6 cell slower with SpeQuloS: %+v", c)
				}
			}
		}
	}
	if !found {
		t.Fatal("figure 6 empty")
	}
	if !strings.Contains(f6.Render(), "Figure 6") {
		t.Fatal("figure 6 render broken")
	}

	f7 := BuildFigure7(m, "9C-C-R")
	if len(f7.NoSpeq) == 0 {
		t.Fatal("figure 7 empty")
	}
	if !strings.Contains(f7.Render(), "stability") {
		t.Fatal("figure 7 render broken")
	}

	t4 := BuildTable4(m, "9C-C-R")
	if t4.Overall < 0 || t4.Overall > 1 {
		t.Fatalf("table 4 overall = %v", t4.Overall)
	}
	if !strings.Contains(t4.Render(), "Table 4") {
		t.Fatal("table 4 render broken")
	}
}

func TestFigure1(t *testing.T) {
	f := BuildFigure1(tiny())
	if len(f.Series) == 0 {
		t.Fatal("figure 1 empty")
	}
	last := f.Series[len(f.Series)-1]
	if last.Ratio != 1 {
		t.Fatalf("curve must end at ratio 1, got %v", last.Ratio)
	}
	for i := 1; i < len(f.Series); i++ {
		if f.Series[i].T < f.Series[i-1].T || f.Series[i].Ratio < f.Series[i-1].Ratio {
			t.Fatal("curve not monotone")
		}
	}
	if !strings.Contains(f.Render(), "slowdown") {
		t.Fatal("figure 1 render broken")
	}
}

func TestTable2Validation(t *testing.T) {
	rows := BuildTable2(4, 99)
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	for _, r := range rows {
		rel := (r.MeanNodes - r.PublishedMean) / r.PublishedMean
		if rel < -0.5 || rel > 0.5 {
			t.Errorf("%s: mean nodes %.1f vs published %.1f", r.Name, r.MeanNodes, r.PublishedMean)
		}
		if r.PowerMean < r.PublishedPower*0.8 || r.PowerMean > r.PublishedPower*1.2 {
			t.Errorf("%s: power %.0f vs published %.0f", r.Name, r.PowerMean, r.PublishedPower)
		}
	}
	if !strings.Contains(RenderTable2(rows), "Table 2") {
		t.Fatal("table 2 render broken")
	}
}

func TestTextTable(t *testing.T) {
	tbl := TextTable{Title: "T", Headers: []string{"a", "bb"}}
	tbl.AddRow("1", "2")
	out := tbl.String()
	if !strings.Contains(out, "T\n") || !strings.Contains(out, "a") {
		t.Fatalf("render: %q", out)
	}
	csv := tbl.CSV()
	if !strings.HasPrefix(csv, "a,bb\n") {
		t.Fatalf("csv: %q", csv)
	}
	tbl.AddRow(`x,"y`, "z")
	if !strings.Contains(tbl.CSV(), `"x,""y"`) {
		t.Fatalf("csv escaping broken: %q", tbl.CSV())
	}
}

func TestEnvKeyAndSeed(t *testing.T) {
	sc := Scenario{Profile: tiny(), Middleware: BOINC, TraceName: "nd", BotClass: "BIG", Offset: 1}
	if sc.EnvKey() != "BOINC/nd/BIG" {
		t.Fatalf("env key = %s", sc.EnvKey())
	}
	sc2 := sc
	sc2.Offset = 2
	if sc.Seed() == sc2.Seed() {
		t.Fatal("offsets must change the seed")
	}
	st := core.DefaultStrategy()
	sc3 := sc
	sc3.Strategy = &st
	if sc.Seed() != sc3.Seed() {
		t.Fatal("strategy must NOT change the seed (paired comparison)")
	}
}

func TestTable5EDGI(t *testing.T) {
	t5 := BuildTable5(3, 6, 42)
	if t5.LALTasks == 0 || t5.LRITasks == 0 {
		t.Fatalf("no tasks executed: %+v", t5)
	}
	if t5.EGITasks == 0 {
		t.Fatalf("no EGI-bridged tasks completed: %+v", t5)
	}
	// Cloud counters can be zero on lucky runs but the fields must be sane.
	if t5.StratusLabTasks < 0 || t5.EC2Tasks < 0 {
		t.Fatalf("negative cloud counters: %+v", t5)
	}
	if t5.StratusLabTasks > t5.LALTasks || t5.EC2Tasks > t5.LRITasks {
		t.Fatalf("cloud executed more than its DG total: %+v", t5)
	}
	if !strings.Contains(t5.Render(), "Table 5") {
		t.Fatal("render broken")
	}
}

func TestCreditFractionSweep(t *testing.T) {
	p := tiny()
	pts := CreditFractionSweep(p, []float64{0.02, 0.10})
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, pt := range pts {
		if pt.Runs == 0 {
			t.Fatalf("no runs for %s", pt.Setting)
		}
		if pt.MeanSpeedup < 1 {
			t.Fatalf("%s: speedup %v < 1 (SpeQuloS made things worse)", pt.Setting, pt.MeanSpeedup)
		}
		if pt.MeanTRE < 0 || pt.MeanTRE > 1 {
			t.Fatalf("%s: TRE %v out of range", pt.Setting, pt.MeanTRE)
		}
	}
	if !strings.Contains(RenderAblation("x", pts), "credits=10%") {
		t.Fatal("render broken")
	}
}

func TestMonitorPeriodSweep(t *testing.T) {
	p := tiny()
	pts := MonitorPeriodSweep(p, []float64{60, 900})
	if len(pts) != 2 || pts[0].Runs == 0 || pts[1].Runs == 0 {
		t.Fatalf("points = %+v", pts)
	}
	// Slower monitoring can only delay the trigger: the 15-minute loop
	// must not beat the 1-minute loop.
	if pts[1].MeanTRE > pts[0].MeanTRE+0.10 {
		t.Fatalf("15-min monitoring beat 1-min: %+v", pts)
	}
}

func TestTriggerAblation(t *testing.T) {
	p := tiny()
	pts := TriggerAblation(p)
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, pt := range pts {
		if pt.Runs == 0 {
			t.Fatalf("no runs for %s", pt.Setting)
		}
	}
}

func TestChartBuilders(t *testing.T) {
	p := tiny()
	m := RunMatrix(p, MatrixSpec{
		Traces:     []string{"seti"},
		Bots:       []string{"SMALL"},
		Strategies: []core.Strategy{core.DefaultStrategy()},
	})

	f1 := BuildFigure1(p)
	var buf bytes.Buffer
	if err := Figure1Chart(f1).WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := Figure2Chart(BuildFigure2(m.BaseResults())).WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	f4 := BuildFigure4(m)
	if err := Figure4Chart(f4, "R").WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := Figure5Chart(BuildFigure5(m)).WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	f6 := BuildFigure6(m, "9C-C-R")
	for mw := range f6.Cells {
		for bc := range f6.Cells[mw] {
			if err := Figure6Chart(f6, mw, bc).WriteSVG(&buf); err != nil {
				t.Fatal(err)
			}
			buf.Reset()
		}
	}
	f7 := BuildFigure7(m, "9C-C-R")
	if err := Figure7Chart(f7, BOINC).WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty svg")
	}
}

func TestCondorScenarioRuns(t *testing.T) {
	sc := Scenario{Profile: tiny(), Middleware: CONDOR, TraceName: "seti", BotClass: "SMALL", Offset: 0}
	base := Run(sc)
	if !base.Completed {
		t.Fatal("condor baseline incomplete")
	}
	st := core.DefaultStrategy()
	sc.Strategy = &st
	speq := Run(sc)
	if !speq.Completed {
		t.Fatal("condor SpeQuloS run incomplete")
	}
	if speq.CompletionTime > base.CompletionTime {
		t.Fatalf("SpeQuloS slower on condor: %v > %v", speq.CompletionTime, base.CompletionTime)
	}
}

func TestCompareMiddleware(t *testing.T) {
	rows := CompareMiddleware(tiny(), []string{"seti"}, "BIG")
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	byMW := map[string]MiddlewareComparisonRow{}
	for _, r := range rows {
		if r.Runs == 0 {
			t.Fatalf("%s: no completed runs", r.Middleware)
		}
		byMW[r.Middleware] = r
	}
	// Condor's fast detection + checkpointing must not be slower than
	// BOINC's deadline-based recovery on a volatile desktop grid.
	if byMW[CONDOR].MeanCompletion > byMW[BOINC].MeanCompletion*1.5 {
		t.Fatalf("condor %v vs boinc %v: checkpoint/migration should compete",
			byMW[CONDOR].MeanCompletion, byMW[BOINC].MeanCompletion)
	}
	if !strings.Contains(RenderMiddlewareComparison(rows, "BIG"), "CONDOR") {
		t.Fatal("render broken")
	}
}
