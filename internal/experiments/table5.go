package experiments

import (
	"fmt"

	"spequlos/internal/bot"
	"spequlos/internal/bridge"
	"spequlos/internal/cloud"
	"spequlos/internal/core"
	"spequlos/internal/middleware"
	"spequlos/internal/sim"
	"spequlos/internal/trace"
	"spequlos/internal/xwhep"
)

// Table5 reproduces the University Paris-XI slice of the EDGI
// infrastructure (§5, Fig 8): two XWHEP Desktop Grids — XW@LAL on the
// laboratory's local desktop machines, XW@LRI harvesting Grid'5000
// best-effort nodes (bounded to 200 at a time in the paper) — EGI tasks
// arriving through the 3G-Bridge, and SpeQuloS supporting each DG from a
// different cloud (a local StratusLab/OpenNebula for LAL, Amazon EC2 for
// LRI). The table reports the same counters as the paper: tasks executed
// per DG, EGI-originated tasks, and tasks SpeQuloS ran on each cloud.
type Table5 struct {
	LALTasks        int
	LRITasks        int
	EGITasks        int
	StratusLabTasks int
	EC2Tasks        int
	BoTs            int
	SimDays         float64
}

// cloudCounter counts completions attributed to cloud workers.
type cloudCounter struct{ n int }

func (c *cloudCounter) TaskAssigned(string, int, float64)  {}
func (c *cloudCounter) TaskCompleted(string, int, float64) {}
func (c *cloudCounter) BatchCompleted(string, float64)     {}
func (c *cloudCounter) TaskExecutedBy(_ string, _ int, w *middleware.Worker, _ float64) {
	if w != nil && w.Cloud {
		c.n++
	}
}

// completionCounter counts all completions on a server.
type completionCounter struct{ n int }

func (c *completionCounter) TaskAssigned(string, int, float64) {}
func (c *completionCounter) TaskCompleted(string, int, float64) {
	c.n++
}
func (c *completionCounter) BatchCompleted(string, float64) {}

// BuildTable5 simulates the EDGI deployment for the given number of days,
// submitting a stream of BoTs to both DGs and through the EGI bridge.
func BuildTable5(days float64, bots int, seed uint64) Table5 {
	if bots <= 0 {
		bots = 12
	}
	horizon := days * 86400
	eng := sim.NewEngine()

	// XW@LAL: the laboratory's local desktop grid. Notre-Dame-like
	// institutional desktop pool stands in for the LAL machines.
	lal := xwhep.New(eng, xwhep.DefaultConfig())
	lalTrace := trace.NotreDame.Generate(sim.SeedFrom("edgi", "lal", fmt.Sprint(seed)), horizon, 180)
	middleware.BindTrace(eng, lalTrace, lal)

	// XW@LRI: Grid'5000 best-effort nodes, bounded to 200 (§5).
	lri := xwhep.New(eng, xwhep.DefaultConfig())
	lriTrace := trace.G5KLyon.Generate(sim.SeedFrom("edgi", "lri", fmt.Sprint(seed)), horizon, 200)
	middleware.BindTrace(eng, lriTrace, lri)

	// The 3G-Bridge forwards EGI tasks onto XW@LAL.
	egi := bridge.New(lal)

	// SpeQuloS per DG, each with its supporting cloud.
	stratus := cloud.NewSimCloud(eng, cloud.DefaultSimConfig(), sim.NewRNG(seed).Fork("stratuslab"))
	ec2 := cloud.NewSimCloud(eng, cloud.DefaultSimConfig(), sim.NewRNG(seed).Fork("ec2"))
	mkService := func(srv middleware.Server, sc *cloud.SimCloud) *core.Service {
		return core.NewService(eng, srv, sc, core.Config{
			Strategy:      core.DefaultStrategy(),
			MonitorPeriod: 60,
			CloudServerFactory: func() middleware.Server {
				return xwhep.New(eng, xwhep.DefaultConfig())
			},
		})
	}
	svcLAL := mkService(lal, stratus)
	svcLRI := mkService(lri, ec2)

	lalDone, lriDone := &completionCounter{}, &completionCounter{}
	lalCloud, lriCloud := &cloudCounter{}, &cloudCounter{}
	lal.AddListener(lalDone)
	lal.AddListener(lalCloud)
	lri.AddListener(lriDone)
	lri.AddListener(lriCloud)

	// Submission stream: alternate LAL-native, LRI-native and EGI-bridged
	// BoTs, spread over the simulated window. DART/BNB-Grid/ISDEP-style
	// workloads are approximated by the RANDOM class.
	rng := sim.NewRNG(seed).Fork("edgi:submissions")
	classes := []string{"RANDOM", "BIG", "RANDOM"}
	var batchIDs []string
	for i := 0; i < bots; i++ {
		cls := mustClass(classes[i%len(classes)]).Scaled(0.05)
		id := fmt.Sprintf("edgi-bot-%02d", i)
		batchIDs = append(batchIDs, id)
		workload := cls.Generate(id, sim.SeedFrom("edgi", id))
		at := rng.Float64() * horizon * 0.4
		var svc *core.Service
		var target middleware.Server
		viaEGI := false
		switch i % 3 {
		case 0:
			svc, target = svcLAL, lal
		case 1:
			svc, target = svcLRI, lri
		case 2:
			svc, target, viaEGI = svcLAL, lal, true
		}
		svc2, target2 := svc, target
		eng.At(at, func() {
			env := "XWHEP/edgi/" + cls.Name
			if err := svc2.RegisterQoS("edgi-user", id, env, workload.Size()); err != nil {
				panic(err)
			}
			credits := 0.10 * workload.WorkloadCPUHours() * core.CreditsPerCPUHour
			svc2.Credits.Deposit("edgi-user", credits)
			svc2.OrderQoS("edgi-user", id, credits)
			if viaEGI {
				if err := egi.SubmitGridBatch("egi", middleware.BatchFromBoT(workload)); err != nil {
					panic(err)
				}
			} else {
				target2.Submit(middleware.BatchFromBoT(workload))
			}
		})
	}

	allDone := func() bool {
		for i, id := range batchIDs {
			var srv middleware.Server
			if i%3 == 1 {
				srv = lri
			} else {
				srv = lal
			}
			if !srv.Done(id) {
				return false
			}
		}
		return true
	}
	eng.RunWhile(func() bool { return !allDone() && eng.Now() <= horizon })

	t5 := Table5{
		LALTasks:        lalDone.n,
		LRITasks:        lriDone.n,
		StratusLabTasks: lalCloud.n,
		EC2Tasks:        lriCloud.n,
		BoTs:            bots,
		SimDays:         days,
	}
	for _, st := range egi.StatsBySource() {
		t5.EGITasks += st.Completed
	}
	return t5
}

func mustClass(name string) bot.Class {
	c, ok := bot.ClassByName(name)
	if !ok {
		panic("experiments: unknown class " + name)
	}
	return c
}

// Render prints the Table 5 layout.
func (t Table5) Render() string {
	tbl := TextTable{
		Title: fmt.Sprintf("Table 5 — EDGI deployment counters (%d BoTs over %.0f simulated days)",
			t.BoTs, t.SimDays),
		Headers: []string{"XW@LAL", "XW@LRI", "EGI", "StratusLab", "EC2"},
	}
	tbl.AddRow(fmt.Sprint(t.LALTasks), fmt.Sprint(t.LRITasks), fmt.Sprint(t.EGITasks),
		fmt.Sprint(t.StratusLabTasks), fmt.Sprint(t.EC2Tasks))
	return tbl.String()
}
