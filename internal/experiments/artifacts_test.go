package experiments

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"spequlos/internal/campaign"
	"spequlos/internal/core"
)

func tinyArtifactOpts() ArtifactOptions {
	return ArtifactOptions{
		Spec: MatrixSpec{
			Traces:     []string{"seti", "g5klyo"},
			Bots:       []string{"SMALL"},
			Strategies: []core.Strategy{core.DefaultStrategy()},
		},
		Ablations:        true,
		Comparison:       true,
		ComparisonTraces: []string{"seti"},
		ComparisonBot:    "SMALL",
		Table2Days:       2,
		Table5Days:       2,
		Table5BoTs:       3,
	}
}

// renderAll concatenates every artifact render — the value-comparison
// fingerprint of a derivation.
func renderAll(a Artifacts) string {
	var b bytes.Buffer
	b.WriteString(a.Figure1.Render())
	b.WriteString(a.Figure2.Render())
	b.WriteString(a.Table1.Render())
	b.WriteString(RenderTable2(a.Table2))
	b.WriteString(a.Figure4.Render())
	b.WriteString(a.Figure5.Render())
	b.WriteString(a.Figure6.Render())
	b.WriteString(a.Figure7.Render())
	b.WriteString(a.Table4.Render())
	b.WriteString(a.Table5.Render())
	b.WriteString(RenderAblation("credits", a.CreditSweep))
	b.WriteString(RenderAblation("period", a.PeriodSweep))
	b.WriteString(RenderAblation("trigger", a.TriggerSweep))
	b.WriteString(RenderMiddlewareComparison(a.Comparison, "SMALL"))
	return b.String()
}

// TestArtifactsExactlyOnce asserts the acceptance criterion: regenerating
// every figure and table through the campaign engine executes each unique
// (scenario, strategy) simulation exactly once, and a second regeneration
// over the same store executes none.
func TestArtifactsExactlyOnce(t *testing.T) {
	p := tiny()
	opts := tinyArtifactOpts()
	opts.Store = campaign.NewResultStore()

	plan := PlanArtifacts(p, opts)
	a, stats, err := BuildArtifacts(context.Background(), p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Planned != plan.Len() {
		t.Fatalf("planned %d, expected %d", stats.Planned, plan.Len())
	}
	if stats.Executed != plan.Len() || stats.Cached != 0 {
		t.Fatalf("executed %d of %d unique jobs (%d cached) — not exactly once",
			stats.Executed, plan.Len(), stats.Cached)
	}
	if opts.Store.Len() != plan.Len() {
		t.Fatalf("store holds %d entries, want %d", opts.Store.Len(), plan.Len())
	}

	// The consumers overlap (Fig 1 is a matrix baseline; ablation baselines
	// are matrix cells; the comparison shares the XWHEP/BOINC cells): the
	// deduplicated plan must be strictly smaller than the naive sum.
	naive := len(opts.Spec.Jobs(p)) + 1 +
		len(ablationJobs(p, creditSettings(nil))) +
		len(ablationJobs(p, periodSettings(p, nil))) +
		len(ablationJobs(p, triggerSettings(p))) +
		len(ComparisonJobs(p, opts.ComparisonTraces, opts.ComparisonBot))
	if plan.Len() >= naive {
		t.Fatalf("plan %d jobs did not dedupe the naive %d", plan.Len(), naive)
	}

	// Second regeneration: all cached, zero simulations, identical values.
	a2, stats2, err := BuildArtifacts(context.Background(), p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if stats2.Executed != 0 || stats2.Cached != plan.Len() {
		t.Fatalf("regeneration executed %d jobs, want 0", stats2.Executed)
	}
	if renderAll(a) != renderAll(a2) {
		t.Fatal("regenerated artifacts differ from first derivation")
	}
}

// TestArtifactsMatchDirectRuns asserts value-identity with the
// pre-campaign builders: results derived from the shared store equal
// fresh, direct simulations of the same scenarios (the old per-builder
// path).
func TestArtifactsMatchDirectRuns(t *testing.T) {
	p := tiny()
	spec := MatrixSpec{
		Traces:     []string{"seti"},
		Bots:       []string{"SMALL"},
		Strategies: []core.Strategy{core.DefaultStrategy()},
	}
	m := RunMatrix(p, spec)
	if len(m.Pairs) != 2*p.Offsets { // 2 middleware × 1 trace × 1 bot (tiny has 1 offset)
		t.Fatalf("pairs = %d", len(m.Pairs))
	}
	st := core.DefaultStrategy()
	i := 0
	for _, mw := range Middlewares() {
		for off := 0; off < p.Offsets; off++ {
			sc := Scenario{Profile: p, Middleware: mw, TraceName: "seti", BotClass: "SMALL", Offset: off}
			if direct := Run(sc); !reflect.DeepEqual(m.Pairs[i].Base, direct) {
				t.Fatalf("pair %d baseline diverges from direct run", i)
			}
			scs := sc
			scs.Strategy = &st
			if direct := Run(scs); !reflect.DeepEqual(m.Pairs[i].Speq[st.Label()], direct) {
				t.Fatalf("pair %d strategy run diverges from direct run", i)
			}
			i++
		}
	}
}

// TestArtifactsRoundTrip asserts the satellite criterion: a save→load→
// derive round-trip matches in-memory derivation.
func TestArtifactsRoundTrip(t *testing.T) {
	p := tiny()
	opts := tinyArtifactOpts()
	opts.Store = campaign.NewResultStore()
	a, _, err := BuildArtifacts(context.Background(), p, opts)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := opts.Store.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded := campaign.NewResultStore()
	if err := loaded.Load(&buf); err != nil {
		t.Fatal(err)
	}
	a2, err := DeriveArtifacts(loaded, p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if renderAll(a) != renderAll(a2) {
		t.Fatal("save→load→derive differs from in-memory derivation")
	}
}
