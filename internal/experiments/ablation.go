package experiments

import (
	"fmt"

	"spequlos/internal/bot"
	"spequlos/internal/cloud"
	"spequlos/internal/core"
	"spequlos/internal/metrics"
	"spequlos/internal/middleware"
	"spequlos/internal/sim"
	"spequlos/internal/xwhep"
)

// This file holds ablation studies of the design choices DESIGN.md calls
// out: the 10%-of-workload credit provisioning (§4.1.3), the one-minute
// monitoring period (§3.2), and the §7 future-work capacity-aware trigger
// versus the plain completion threshold.

// AblationPoint is one setting's aggregate outcome over a mini-matrix.
type AblationPoint struct {
	Setting      string
	MeanSpeedup  float64 // baseline time / SpeQuloS time (completed pairs)
	MeanTRE      float64
	MeanSpentPct float64 // billed/allocated
	Runs         int
}

// runAblationCell runs one paired scenario with a custom service
// configuration and returns (speedup, TRE, spentFraction, ok).
func runAblationCell(sc Scenario, cfg core.Config, creditFraction float64) (float64, float64, float64, bool) {
	base := Run(sc)
	if !base.Completed {
		return 0, 0, 0, false
	}
	speq := runWithConfig(sc, cfg, creditFraction)
	if !speq.Completed || speq.CompletionTime <= 0 {
		return 0, 0, 0, false
	}
	tre, _ := metrics.TailRemovalEfficiency(speq.CompletionTime, base.CompletionTime, base.Tail.IdealTime)
	spent := 0.0
	if speq.CreditsAllocated > 0 {
		spent = speq.CreditsBilled / speq.CreditsAllocated
	}
	return base.CompletionTime / speq.CompletionTime, tre, spent, true
}

// runWithConfig is Run with full control of the service configuration —
// the knob the ablations turn.
func runWithConfig(sc Scenario, cfg core.Config, creditFraction float64) Result {
	horizon := sc.Profile.HorizonDays * 86400
	seed := sc.Seed()
	res := Result{
		Middleware: sc.Middleware, TraceName: sc.TraceName, BotClass: sc.BotClass,
		Offset: sc.Offset, Seed: seed, Strategy: cfg.Strategy.Label(),
	}
	src, err := TraceSource(sc.TraceName)
	if err != nil {
		panic(err)
	}
	class, _ := bot.ClassByName(sc.BotClass)
	if sc.Profile.BotScale > 0 && sc.Profile.BotScale != 1 {
		class = class.Scaled(sc.Profile.BotScale)
	}
	eng := sim.NewEngine()
	srv := newServer(eng, sc.Middleware)
	tr := src.Generate(seed, horizon, sc.Profile.PoolCap)
	middleware.BindTrace(eng, tr, srv)
	botID := "ablation"
	workload := class.Generate(botID, seed)
	res.Size = workload.Size()
	rec := &recorder{batchID: botID}
	srv.AddListener(rec)

	simCloud := cloud.NewSimCloud(eng, cloud.DefaultSimConfig(), sim.NewRNG(seed))
	if cfg.CloudServerFactory == nil {
		cfg.CloudServerFactory = func() middleware.Server { return xwhep.New(eng, xwhep.DefaultConfig()) }
	}
	svc := core.NewService(eng, srv, simCloud, cfg)
	if err := svc.RegisterQoS("user", botID, sc.EnvKey(), workload.Size()); err != nil {
		panic(err)
	}
	credits := creditFraction * workload.WorkloadCPUHours() * svc.Credits.Rate()
	if credits > 0 {
		svc.Credits.Deposit("user", credits)
		if err := svc.OrderQoS("user", botID, credits); err != nil {
			panic(err)
		}
		res.CreditsAllocated = credits
	}
	srv.Submit(middleware.BatchFromBoT(workload))
	eng.RunWhile(func() bool { return !srv.Done(botID) && eng.Now() <= horizon })
	res.Completed = srv.Done(botID)
	if res.Completed {
		res.CompletionTime = eng.Now()
		if tail, ok := metrics.ComputeTail(rec.completions); ok {
			res.Tail = tail
		}
	}
	if u, err := svc.Usage(botID); err == nil {
		res.CreditsBilled = u.CreditsBilled
		res.CloudCPUSeconds = u.CPUSeconds
		res.Instances = u.InstancesStarted
		res.TriggeredAt = u.TriggeredAt
	}
	return res
}

// ablationScenarios is the mini-matrix the sweeps run over: the volatile
// environments where SpeQuloS matters.
func ablationScenarios(p Profile) []Scenario {
	var out []Scenario
	for _, mw := range Middlewares() {
		for _, tn := range []string{"seti", "g5klyo"} {
			for off := 0; off < p.Offsets; off++ {
				out = append(out, Scenario{
					Profile: p, Middleware: mw, TraceName: tn, BotClass: "SMALL", Offset: off,
				})
			}
		}
	}
	return out
}

func aggregate(setting string, scs []Scenario, cfg core.Config, frac float64) AblationPoint {
	pt := AblationPoint{Setting: setting}
	var su, tre, spent float64
	for _, sc := range scs {
		s, t, sp, ok := runAblationCell(sc, cfg, frac)
		if !ok {
			continue
		}
		su += s
		tre += t
		spent += sp
		pt.Runs++
	}
	if pt.Runs > 0 {
		pt.MeanSpeedup = su / float64(pt.Runs)
		pt.MeanTRE = tre / float64(pt.Runs)
		pt.MeanSpentPct = spent / float64(pt.Runs)
	}
	return pt
}

// CreditFractionSweep varies the provisioned credits (the paper fixes them
// at 10% of the BoT workload) and reports the QoS/cost trade-off.
func CreditFractionSweep(p Profile, fractions []float64) []AblationPoint {
	if len(fractions) == 0 {
		fractions = []float64{0.02, 0.05, 0.10, 0.20}
	}
	scs := ablationScenarios(p)
	var out []AblationPoint
	for _, f := range fractions {
		cfg := core.Config{Strategy: core.DefaultStrategy(), MonitorPeriod: 60}
		out = append(out, aggregate(fmt.Sprintf("credits=%.0f%%", f*100), scs, cfg, f))
	}
	return out
}

// MonitorPeriodSweep varies the Information/Scheduler loop period (the
// paper monitors per minute; slower monitoring delays tail detection).
func MonitorPeriodSweep(p Profile, periods []float64) []AblationPoint {
	if len(periods) == 0 {
		periods = []float64{30, 60, 300, 900}
	}
	scs := ablationScenarios(p)
	var out []AblationPoint
	for _, period := range periods {
		cfg := core.Config{Strategy: core.DefaultStrategy(), MonitorPeriod: period}
		out = append(out, aggregate(fmt.Sprintf("period=%.0fs", period), scs, cfg, p.CreditFraction))
	}
	return out
}

// TriggerAblation compares the plain completion threshold against the
// capacity-aware anticipation trigger (§7 future work).
func TriggerAblation(p Profile) []AblationPoint {
	scs := ablationScenarios(p)
	var out []AblationPoint
	for _, tr := range []core.Trigger{
		core.CompletionThreshold{Frac: 0.9},
		core.DefaultCapacityAware(),
	} {
		cfg := core.Config{
			Strategy:      core.Strategy{Trigger: tr, Sizing: core.Conservative{}, Deploy: core.Reschedule},
			MonitorPeriod: 60,
		}
		out = append(out, aggregate("trigger="+tr.Code(), scs, cfg, p.CreditFraction))
	}
	return out
}

// RenderAblation prints ablation points as a table.
func RenderAblation(title string, pts []AblationPoint) string {
	tbl := TextTable{
		Title:   title,
		Headers: []string{"setting", "mean speedup", "mean TRE", "credits used", "runs"},
	}
	for _, pt := range pts {
		tbl.AddRow(pt.Setting, f2(pt.MeanSpeedup), f2(pt.MeanTRE), pc(pt.MeanSpentPct),
			fmt.Sprintf("%d", pt.Runs))
	}
	return tbl.String()
}

// MiddlewareComparison runs the same workloads over all three middleware —
// the comparison the paper's §2.2 leaves open ("Condor and OurGrid would
// have also been excellent candidates"). Condor's checkpoint/migration
// model sits between BOINC (resume, but day-long failure detection) and
// XWHEP (15-minute detection, but full restarts).
type MiddlewareComparisonRow struct {
	Middleware     string
	MeanCompletion float64
	MeanSlowdown   float64
	Runs           int
}

// CompareMiddleware runs baseline executions of one workload class across
// the three middleware on the given traces.
func CompareMiddleware(p Profile, traces []string, botClass string) []MiddlewareComparisonRow {
	if len(traces) == 0 {
		traces = []string{"seti", "g5klyo"}
	}
	var out []MiddlewareComparisonRow
	for _, mw := range AllMiddlewares() {
		row := MiddlewareComparisonRow{Middleware: mw}
		var comp, slow float64
		for _, tn := range traces {
			for off := 0; off < p.Offsets; off++ {
				res := Run(Scenario{Profile: p, Middleware: mw, TraceName: tn, BotClass: botClass, Offset: off})
				if !res.Completed {
					continue
				}
				comp += res.CompletionTime
				slow += res.Tail.Slowdown
				row.Runs++
			}
		}
		if row.Runs > 0 {
			row.MeanCompletion = comp / float64(row.Runs)
			row.MeanSlowdown = slow / float64(row.Runs)
		}
		out = append(out, row)
	}
	return out
}

// RenderMiddlewareComparison prints the comparison table.
func RenderMiddlewareComparison(rows []MiddlewareComparisonRow, botClass string) string {
	tbl := TextTable{
		Title:   "Middleware comparison (" + botClass + " baselines; CONDOR is the extension)",
		Headers: []string{"middleware", "mean completion (s)", "mean tail slowdown", "runs"},
	}
	for _, r := range rows {
		tbl.AddRow(r.Middleware, f0(r.MeanCompletion), f2(r.MeanSlowdown), fmt.Sprintf("%d", r.Runs))
	}
	return tbl.String()
}
