package experiments

import (
	"context"
	"fmt"

	"spequlos/internal/campaign"
	"spequlos/internal/core"
	"spequlos/internal/metrics"
)

// This file holds ablation studies of the design choices DESIGN.md calls
// out: the 10%-of-workload credit provisioning (§4.1.3), the one-minute
// monitoring period (§3.2), and the §7 future-work capacity-aware trigger
// versus the plain completion threshold. Each sweep plans variant jobs into
// the campaign engine; the baseline runs are shared with the matrix.

// AblationPoint is one setting's aggregate outcome over a mini-matrix.
type AblationPoint struct {
	Setting      string
	MeanSpeedup  float64 // baseline time / SpeQuloS time (completed pairs)
	MeanTRE      float64
	MeanSpentPct float64 // billed/allocated
	Runs         int
}

// ablationSetting is one knob position: a service configuration and credit
// fraction, labelled by the variant string that keys its jobs.
type ablationSetting struct {
	Setting        string
	Config         core.Config
	CreditFraction float64
}

func (s ablationSetting) job(sc Scenario) campaign.Job {
	cfg := s.Config
	frac := s.CreditFraction
	return campaign.Job{Scenario: sc, Variant: s.Setting, Config: &cfg, CreditFraction: &frac}
}

// ablationScenarios is the mini-matrix the sweeps run over: the volatile
// environments where SpeQuloS matters.
func ablationScenarios(p Profile) []Scenario {
	var out []Scenario
	for _, mw := range Middlewares() {
		for _, tn := range []string{"seti", "g5klyo"} {
			for off := 0; off < p.Offsets; off++ {
				out = append(out, Scenario{
					Profile: p, Middleware: mw, TraceName: tn, BotClass: "SMALL", Offset: off,
				})
			}
		}
	}
	return out
}

// ablationJobs plans the baselines of the mini-matrix plus one variant job
// per (scenario, setting).
func ablationJobs(p Profile, settings []ablationSetting) []campaign.Job {
	var jobs []campaign.Job
	for _, sc := range ablationScenarios(p) {
		jobs = append(jobs, campaign.Job{Scenario: sc})
		for _, s := range settings {
			jobs = append(jobs, s.job(sc))
		}
	}
	return jobs
}

// ablationFrom aggregates one sweep from an already-executed store.
func ablationFrom(store *campaign.ResultStore, p Profile, settings []ablationSetting) ([]AblationPoint, error) {
	scs := ablationScenarios(p)
	var out []AblationPoint
	for _, s := range settings {
		pt := AblationPoint{Setting: s.Setting}
		var su, tre, spent float64
		for _, sc := range scs {
			base, ok := store.Result(campaign.Job{Scenario: sc})
			if !ok {
				return nil, fmt.Errorf("experiments: store missing ablation baseline %s", campaign.Job{Scenario: sc}.Key())
			}
			speq, ok := store.Result(s.job(sc))
			if !ok {
				return nil, fmt.Errorf("experiments: store missing ablation variant %s", s.job(sc).Key())
			}
			if !base.Completed || !speq.Completed || speq.CompletionTime <= 0 {
				continue
			}
			t, _ := metrics.TailRemovalEfficiency(speq.CompletionTime, base.CompletionTime, base.Tail.IdealTime)
			sp := 0.0
			if speq.CreditsAllocated > 0 {
				sp = speq.CreditsBilled / speq.CreditsAllocated
			}
			su += base.CompletionTime / speq.CompletionTime
			tre += t
			spent += sp
			pt.Runs++
		}
		if pt.Runs > 0 {
			pt.MeanSpeedup = su / float64(pt.Runs)
			pt.MeanTRE = tre / float64(pt.Runs)
			pt.MeanSpentPct = spent / float64(pt.Runs)
		}
		out = append(out, pt)
	}
	return out, nil
}

// runSweep executes one sweep's jobs through a fresh campaign and derives
// the points.
func runSweep(p Profile, settings []ablationSetting) []AblationPoint {
	store, _, _ := campaign.RunCampaign(context.Background(), p, ablationJobs(p, settings))
	pts, err := ablationFrom(store, p, settings)
	if err != nil {
		panic(err) // unreachable: the campaign just ran every planned job
	}
	return pts
}

func creditSettings(fractions []float64) []ablationSetting {
	if len(fractions) == 0 {
		fractions = []float64{0.02, 0.05, 0.10, 0.20}
	}
	var out []ablationSetting
	for _, f := range fractions {
		out = append(out, ablationSetting{
			Setting:        fmt.Sprintf("credits=%.0f%%", f*100),
			Config:         core.Config{Strategy: core.DefaultStrategy(), MonitorPeriod: 60},
			CreditFraction: f,
		})
	}
	return out
}

func periodSettings(p Profile, periods []float64) []ablationSetting {
	if len(periods) == 0 {
		periods = []float64{30, 60, 300, 900}
	}
	var out []ablationSetting
	for _, period := range periods {
		out = append(out, ablationSetting{
			Setting:        fmt.Sprintf("period=%.0fs", period),
			Config:         core.Config{Strategy: core.DefaultStrategy(), MonitorPeriod: period},
			CreditFraction: p.CreditFraction,
		})
	}
	return out
}

func triggerSettings(p Profile) []ablationSetting {
	var out []ablationSetting
	for _, tr := range []core.Trigger{
		core.CompletionThreshold{Frac: 0.9},
		core.DefaultCapacityAware(),
	} {
		out = append(out, ablationSetting{
			Setting: "trigger=" + tr.Code(),
			Config: core.Config{
				Strategy:      core.Strategy{Trigger: tr, Sizing: core.Conservative{}, Deploy: core.Reschedule},
				MonitorPeriod: 60,
			},
			CreditFraction: p.CreditFraction,
		})
	}
	return out
}

// CreditFractionSweep varies the provisioned credits (the paper fixes them
// at 10% of the BoT workload) and reports the QoS/cost trade-off.
func CreditFractionSweep(p Profile, fractions []float64) []AblationPoint {
	return runSweep(p, creditSettings(fractions))
}

// CreditFractionSweepFrom derives the sweep from an already-executed store.
func CreditFractionSweepFrom(store *campaign.ResultStore, p Profile, fractions []float64) ([]AblationPoint, error) {
	return ablationFrom(store, p, creditSettings(fractions))
}

// MonitorPeriodSweep varies the Information/Scheduler loop period (the
// paper monitors per minute; slower monitoring delays tail detection).
func MonitorPeriodSweep(p Profile, periods []float64) []AblationPoint {
	return runSweep(p, periodSettings(p, periods))
}

// MonitorPeriodSweepFrom derives the sweep from an already-executed store.
func MonitorPeriodSweepFrom(store *campaign.ResultStore, p Profile, periods []float64) ([]AblationPoint, error) {
	return ablationFrom(store, p, periodSettings(p, periods))
}

// TriggerAblation compares the plain completion threshold against the
// capacity-aware anticipation trigger (§7 future work).
func TriggerAblation(p Profile) []AblationPoint {
	return runSweep(p, triggerSettings(p))
}

// TriggerAblationFrom derives the ablation from an already-executed store.
func TriggerAblationFrom(store *campaign.ResultStore, p Profile) ([]AblationPoint, error) {
	return ablationFrom(store, p, triggerSettings(p))
}

// RenderAblation prints ablation points as a table.
func RenderAblation(title string, pts []AblationPoint) string {
	tbl := TextTable{
		Title:   title,
		Headers: []string{"setting", "mean speedup", "mean TRE", "credits used", "runs"},
	}
	for _, pt := range pts {
		tbl.AddRow(pt.Setting, f2(pt.MeanSpeedup), f2(pt.MeanTRE), pc(pt.MeanSpentPct),
			fmt.Sprintf("%d", pt.Runs))
	}
	return tbl.String()
}

// MiddlewareComparison runs the same workloads over all three middleware —
// the comparison the paper's §2.2 leaves open ("Condor and OurGrid would
// have also been excellent candidates"). Condor's checkpoint/migration
// model sits between BOINC (resume, but day-long failure detection) and
// XWHEP (15-minute detection, but full restarts).
type MiddlewareComparisonRow struct {
	Middleware     string
	MeanCompletion float64
	MeanSlowdown   float64
	Runs           int
}

// comparisonScenarios enumerates the baseline cells of the comparison.
func comparisonScenarios(p Profile, traces []string, botClass string) []Scenario {
	if len(traces) == 0 {
		traces = []string{"seti", "g5klyo"}
	}
	var out []Scenario
	for _, mw := range AllMiddlewares() {
		for _, tn := range traces {
			for off := 0; off < p.Offsets; off++ {
				out = append(out, Scenario{
					Profile: p, Middleware: mw, TraceName: tn, BotClass: botClass, Offset: off,
				})
			}
		}
	}
	return out
}

// ComparisonJobs plans the baseline jobs of the middleware comparison.
func ComparisonJobs(p Profile, traces []string, botClass string) []campaign.Job {
	var jobs []campaign.Job
	for _, sc := range comparisonScenarios(p, traces, botClass) {
		jobs = append(jobs, campaign.Job{Scenario: sc})
	}
	return jobs
}

// CompareMiddleware runs baseline executions of one workload class across
// the three middleware on the given traces.
func CompareMiddleware(p Profile, traces []string, botClass string) []MiddlewareComparisonRow {
	store, _, _ := campaign.RunCampaign(context.Background(), p, ComparisonJobs(p, traces, botClass))
	rows, err := CompareMiddlewareFrom(store, p, traces, botClass)
	if err != nil {
		panic(err) // unreachable: the campaign just ran every planned job
	}
	return rows
}

// CompareMiddlewareFrom derives the comparison from an already-executed
// store.
func CompareMiddlewareFrom(store *campaign.ResultStore, p Profile, traces []string, botClass string) ([]MiddlewareComparisonRow, error) {
	var out []MiddlewareComparisonRow
	for _, mw := range AllMiddlewares() {
		row := MiddlewareComparisonRow{Middleware: mw}
		var comp, slow float64
		for _, sc := range comparisonScenarios(p, traces, botClass) {
			if sc.Middleware != mw {
				continue
			}
			res, ok := store.Result(campaign.Job{Scenario: sc})
			if !ok {
				return nil, fmt.Errorf("experiments: store missing comparison cell %s", campaign.Job{Scenario: sc}.Key())
			}
			if !res.Completed {
				continue
			}
			comp += res.CompletionTime
			slow += res.Tail.Slowdown
			row.Runs++
		}
		if row.Runs > 0 {
			row.MeanCompletion = comp / float64(row.Runs)
			row.MeanSlowdown = slow / float64(row.Runs)
		}
		out = append(out, row)
	}
	return out, nil
}

// RenderMiddlewareComparison prints the comparison table.
func RenderMiddlewareComparison(rows []MiddlewareComparisonRow, botClass string) string {
	tbl := TextTable{
		Title:   "Middleware comparison (" + botClass + " baselines; CONDOR is the extension)",
		Headers: []string{"middleware", "mean completion (s)", "mean tail slowdown", "runs"},
	}
	for _, r := range rows {
		tbl.AddRow(r.Middleware, f0(r.MeanCompletion), f2(r.MeanSlowdown), fmt.Sprintf("%d", r.Runs))
	}
	return tbl.String()
}
