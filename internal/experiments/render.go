package experiments

import (
	"fmt"
	"strings"
)

// TextTable renders aligned fixed-width tables for terminal reports and
// EXPERIMENTS.md.
type TextTable struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row of already-formatted cells.
func (t *TextTable) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table.
func (t *TextTable) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title + "\n")
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values.
func (t *TextTable) CSV() string {
	var b strings.Builder
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	row := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString(",")
			}
			b.WriteString(esc(c))
		}
		b.WriteString("\n")
	}
	row(t.Headers)
	for _, r := range t.Rows {
		row(r)
	}
	return b.String()
}

func f0(v float64) string { return fmt.Sprintf("%.0f", v) }
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func pc(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }
