package experiments

import (
	"context"
	"math"
	"reflect"
	"strings"
	"testing"

	"spequlos/internal/campaign"
	"spequlos/internal/stats"
)

// crowdTestProfile is a reduced crowd: enough batches to measure fairness,
// small enough for a unit test.
func crowdTestProfile() Profile {
	p := campaign.Crowd()
	p.Batches = 12
	p.SubmitSpread = 1800
	return p
}

func TestBuildCrowd(t *testing.T) {
	p := crowdTestProfile()
	store := campaign.NewResultStore()
	rep, stats, err := BuildCrowd(context.Background(), p, ArtifactOptions{Store: store})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Executed != stats.Planned || stats.Planned != 2*len(campaign.AllMiddlewares()) {
		t.Fatalf("stats: %+v", stats)
	}
	if len(rep.Rows) != len(campaign.AllMiddlewares()) {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		if row.Batches != p.Batches || row.Completed != p.Batches {
			t.Errorf("%s: %d/%d batches completed", row.Middleware, row.Completed, row.Batches)
		}
		if row.MedianCompletion <= 0 || row.P90Completion < row.MedianCompletion ||
			row.MaxCompletion < row.P90Completion {
			t.Errorf("%s: quantiles out of order: %+v", row.Middleware, row)
		}
		if row.JainIndex <= 0 || row.JainIndex > 1 {
			t.Errorf("%s: Jain index %v out of (0,1]", row.Middleware, row.JainIndex)
		}
		if row.CreditsAllocated <= 0 {
			t.Errorf("%s: no credits provisioned", row.Middleware)
		}
	}

	// Derivation is resumable: a second build over the same store executes
	// nothing and produces the same report.
	rep2, stats2, err := BuildCrowd(context.Background(), p, ArtifactOptions{Store: store})
	if err != nil {
		t.Fatal(err)
	}
	if stats2.Executed != 0 || stats2.Cached != stats.Planned {
		t.Fatalf("resume executed %d jobs, cached %d", stats2.Executed, stats2.Cached)
	}
	for i := range rep.Rows {
		if !reflect.DeepEqual(rep.Rows[i], rep2.Rows[i]) {
			t.Fatalf("derived rows diverge:\n  %+v\n  %+v", rep.Rows[i], rep2.Rows[i])
		}
	}

	txt := rep.Render()
	for _, want := range []string{"Crowd", "BOINC", "XWHEP", "CONDOR", "jain", "speedup"} {
		if !strings.Contains(txt, want) {
			t.Errorf("render missing %q:\n%s", want, txt)
		}
	}
}

// TestCrowdTierBreakdown pins the tiered reporting path: a tiered cell
// yields one CrowdTierRow per populated service class whose batch counts
// partition the cell, and the rendered table carries the tier rows —
// while untiered cells (TestBuildCrowd) keep Tiers nil and their
// historical table shape.
func TestCrowdTierBreakdown(t *testing.T) {
	p := crowdTestProfile()
	p.Tiered = true
	store := campaign.NewResultStore()
	rep, _, err := BuildCrowd(context.Background(), p, ArtifactOptions{Store: store})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rep.Rows {
		if len(row.Tiers) == 0 {
			t.Fatalf("%s: tiered cell produced no tier rows", row.Middleware)
		}
		sumB, sumC := 0, 0
		for _, tr := range row.Tiers {
			sumB += tr.Batches
			sumC += tr.Completed
			if tr.Completed == tr.Batches && tr.Batches > 0 &&
				(tr.JainIndex <= 0 || tr.JainIndex > 1) {
				t.Errorf("%s/%s: Jain index %v out of (0,1]", row.Middleware, tr.Tier, tr.JainIndex)
			}
		}
		if sumB != row.Batches || sumC != row.Completed {
			t.Errorf("%s: tier rows partition %d/%d batches, cell has %d/%d",
				row.Middleware, sumC, sumB, row.Completed, row.Batches)
		}
	}
	txt := rep.Render()
	for _, want := range []string{"+enterprise", "+premium", "+free"} {
		if !strings.Contains(txt, want) {
			t.Errorf("render missing %q:\n%s", want, txt)
		}
	}
}

func TestQuantileAndJain(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if q := stats.NearestRank(xs, 0.5); q != 2 {
		t.Errorf("median = %v", q)
	}
	if q := stats.NearestRank(xs, 1); q != 4 {
		t.Errorf("max = %v", q)
	}
	if q := stats.NearestRank(nil, 0.5); q != 0 {
		t.Errorf("empty quantile = %v", q)
	}
	if j := jainIndex([]float64{5, 5, 5}); math.Abs(j-1) > 1e-12 {
		t.Errorf("even jain = %v", j)
	}
	// One busy user among idle ones: index tends to 1/n.
	if j := jainIndex([]float64{1, 0, 0, 0}); math.Abs(j-0.25) > 1e-12 {
		t.Errorf("skewed jain = %v", j)
	}
}
