package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"spequlos/internal/campaign"
	"spequlos/internal/core"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the golden artifact files")

// goldenSpec is the pinned quick-profile artifact subset: small enough to
// run on every change, wide enough that a drift in the trace generators,
// the workload classes, the middleware simulators, the campaign keys or the
// store-derived builders shows up as a golden diff.
func goldenSpec() (Profile, ArtifactOptions) {
	p := campaign.Quick()
	return p, ArtifactOptions{Spec: MatrixSpec{
		Traces:     []string{"seti", "g5klyo"},
		Bots:       []string{"SMALL"},
		Strategies: []core.Strategy{core.DefaultStrategy()},
	}}
}

// TestQuickArtifactsGolden pins the store-derived quick-profile artifacts —
// the matrix, Figure 1 and Table 2 — against golden files, so builders
// reading from the shared ResultStore cannot silently drift between PRs.
// Regenerate with: go test ./internal/experiments -run Golden -update-golden
func TestQuickArtifactsGolden(t *testing.T) {
	p, opts := goldenSpec()
	a, _, err := BuildArtifacts(context.Background(), p, opts)
	if err != nil {
		t.Fatal(err)
	}
	check := func(name string, v any) {
		t.Helper()
		got, err := json.MarshalIndent(v, "", " ")
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got = append(got, '\n')
		path := filepath.Join("testdata", name+".golden.json")
		if *updateGolden {
			if err := os.MkdirAll("testdata", 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, got, 0o644); err != nil {
				t.Fatal(err)
			}
			return
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v (run with -update-golden to create)", name, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s drifted from golden file %s;\nif the change is intended, regenerate with -update-golden.\ngot %d bytes, want %d bytes",
				name, path, len(got), len(want))
		}
	}
	check("matrix", a.Matrix)
	check("figure1", a.Figure1)
	check("table2", a.Table2)
}
