package experiments

// This file is the crowd campaign: the multi-tenant scenario family the
// paper's "shared service" framing implies but never evaluates. One
// 500-node trace serves hundreds of concurrent QoS batches per middleware;
// the report measures per-user fairness (completion-time quantiles and
// Jain's index over the batches), credit accounting, and the cloud fleet
// the service ran — the numbers BENCH_crowd.json tracks across PRs.

import (
	"context"
	"fmt"

	"spequlos/internal/campaign"
	"spequlos/internal/core"
	"spequlos/internal/stats"
)

// CrowdTrace and CrowdBot pin the crowd cell's coordinates: one 500-node
// SETI@home-like trace (the profile's PoolCap bounds the pool), SMALL BoTs.
const (
	CrowdTrace = "seti"
	CrowdBot   = "SMALL"
)

// CrowdJobs plans the crowd campaign: per middleware, one multi-batch cell
// with the default strategy plus its paired baseline (same seed, no
// SpeQuloS) for the speedup column.
func CrowdJobs(p Profile) []campaign.Job {
	var jobs []campaign.Job
	for _, mw := range campaign.AllMiddlewares() {
		sc := campaign.Scenario{
			Profile: p, Middleware: mw, TraceName: CrowdTrace, BotClass: CrowdBot,
		}
		jobs = append(jobs, campaign.Job{Scenario: sc})
		st := core.DefaultStrategy()
		scs := sc
		scs.Strategy = &st
		jobs = append(jobs, campaign.Job{Scenario: scs})
	}
	return jobs
}

// PlanCrowd returns the deduplicated crowd plan.
func PlanCrowd(p Profile) *campaign.Plan {
	plan := campaign.NewPlan()
	plan.Add(CrowdJobs(p)...)
	return plan
}

// CrowdRow is one middleware's crowd outcome.
type CrowdRow struct {
	Middleware string

	Batches   int // batches in the cell
	Completed int // batches that finished within the horizon
	Triggered int // batches whose QoS trigger fired

	// Per-batch completion-time stats, seconds from each batch's own
	// submission — the per-user QoS view.
	MedianCompletion float64
	P90Completion    float64
	MaxCompletion    float64
	// JainIndex is Jain's fairness index over per-batch completion times
	// (1 = perfectly even service across the crowd). It is 0 unless every
	// batch completed: fairness over only the served users would read
	// highest exactly when part of the crowd got no service at all.
	JainIndex float64
	// BaselineMedian is the paired no-SpeQuloS cell's median per-batch
	// completion; MedianSpeedup = BaselineMedian / MedianCompletion.
	BaselineMedian float64
	MedianSpeedup  float64

	Makespan         float64 // cell completion, seconds from first submission
	CreditsAllocated float64
	CreditsBilled    float64
	Instances        int
	Events           uint64

	// Tiers is the per-service-class breakdown of a tiered cell, in
	// descending privilege order (nil for untiered cells, whose rendered
	// table keeps its historical shape).
	Tiers []CrowdTierRow
}

// CrowdTierRow is one service class's slice of a tiered crowd cell: the
// per-tier completion quantiles and fairness the tier contracts are judged
// on.
type CrowdTierRow struct {
	Tier      string
	Batches   int
	Completed int
	Triggered int

	// Completion-time quantiles, seconds from each batch's own submission.
	MedianCompletion float64
	P90Completion    float64
	MaxCompletion    float64
	// JainIndex is Jain's fairness index over this tier's per-batch
	// completion times; 0 unless every batch of the tier completed.
	JainIndex float64

	CreditsBilled float64
	Instances     int
}

// CrowdReport is the crowd campaign's artifact.
type CrowdReport struct {
	Profile string
	Trace   string
	Bot     string
	Rows    []CrowdRow
}

// CrowdFrom derives the crowd report from an executed store.
func CrowdFrom(store *campaign.ResultStore, p Profile) (CrowdReport, error) {
	rep := CrowdReport{Profile: p.Name, Trace: CrowdTrace, Bot: CrowdBot}
	st := core.DefaultStrategy()
	for _, mw := range campaign.AllMiddlewares() {
		sc := campaign.Scenario{
			Profile: p, Middleware: mw, TraceName: CrowdTrace, BotClass: CrowdBot,
		}
		base, ok := store.Result(campaign.Job{Scenario: sc})
		if !ok {
			return rep, fmt.Errorf("experiments: crowd baseline for %s missing from store", mw)
		}
		scs := sc
		scs.Strategy = &st
		speq, ok := store.Result(campaign.Job{Scenario: scs})
		if !ok {
			return rep, fmt.Errorf("experiments: crowd cell for %s missing from store", mw)
		}
		row := CrowdRow{
			Middleware:       mw,
			Batches:          len(speq.Batches),
			Makespan:         speq.CompletionTime,
			CreditsAllocated: speq.CreditsAllocated,
			CreditsBilled:    speq.CreditsBilled,
			Instances:        speq.Instances,
			Events:           speq.Events,
		}
		var times []float64
		for _, br := range speq.Batches {
			if br.Completed {
				row.Completed++
				times = append(times, br.CompletionTime)
			}
			if br.TriggeredAt >= 0 {
				row.Triggered++
			}
		}
		row.MedianCompletion = stats.NearestRank(times, 0.5)
		row.P90Completion = stats.NearestRank(times, 0.9)
		row.MaxCompletion = stats.NearestRank(times, 1)
		if row.Completed == row.Batches {
			row.JainIndex = jainIndex(times)
		}
		var baseTimes []float64
		for _, br := range base.Batches {
			if br.Completed {
				baseTimes = append(baseTimes, br.CompletionTime)
			}
		}
		row.BaselineMedian = stats.NearestRank(baseTimes, 0.5)
		if row.MedianCompletion > 0 {
			row.MedianSpeedup = row.BaselineMedian / row.MedianCompletion
		}
		row.Tiers = crowdTierRows(speq.Batches)
		rep.Rows = append(rep.Rows, row)
	}
	return rep, nil
}

// BuildCrowd runs the crowd campaign (resuming from opts' store when
// provided) and derives the report.
func BuildCrowd(ctx context.Context, p Profile, opts ArtifactOptions) (CrowdReport, campaign.Stats, error) {
	store := opts.Store
	if store == nil {
		store = campaign.NewResultStore()
	}
	c := &campaign.Campaign{
		Profile:     p,
		Plan:        PlanCrowd(p),
		Parallelism: opts.Parallelism,
		Progress:    opts.Progress,
	}
	stats, err := c.Run(ctx, store)
	if err != nil {
		return CrowdReport{}, stats, err
	}
	rep, err := CrowdFrom(store, p)
	return rep, stats, err
}

// Render prints the crowd report as a fixed-width table.
func (r CrowdReport) Render() string {
	tbl := TextTable{
		Title: fmt.Sprintf("Crowd — concurrent QoS batches on one %s trace (%s profile, %s BoTs)",
			r.Trace, r.Profile, r.Bot),
		Headers: []string{"middleware", "batches", "done", "trig", "median", "p90",
			"max", "jain", "speedup", "credits", "fleet"},
	}
	for _, row := range r.Rows {
		tbl.AddRow(
			row.Middleware,
			fmt.Sprint(row.Batches),
			fmt.Sprint(row.Completed),
			fmt.Sprint(row.Triggered),
			fmt.Sprintf("%.0fs", row.MedianCompletion),
			fmt.Sprintf("%.0fs", row.P90Completion),
			fmt.Sprintf("%.0fs", row.MaxCompletion),
			fmt.Sprintf("%.3f", row.JainIndex),
			fmt.Sprintf("%.2fx", row.MedianSpeedup),
			fmt.Sprintf("%.0f/%.0f", row.CreditsBilled, row.CreditsAllocated),
			fmt.Sprint(row.Instances),
		)
		for _, tr := range row.Tiers {
			tbl.AddRow(
				" +"+tr.Tier,
				fmt.Sprint(tr.Batches),
				fmt.Sprint(tr.Completed),
				fmt.Sprint(tr.Triggered),
				fmt.Sprintf("%.0fs", tr.MedianCompletion),
				fmt.Sprintf("%.0fs", tr.P90Completion),
				fmt.Sprintf("%.0fs", tr.MaxCompletion),
				fmt.Sprintf("%.3f", tr.JainIndex),
				"",
				fmt.Sprintf("%.0f", tr.CreditsBilled),
				fmt.Sprint(tr.Instances),
			)
		}
	}
	return tbl.String()
}

// crowdTierRows aggregates a tiered cell's batches per service class, in
// descending privilege order; it returns nil for untiered cells.
func crowdTierRows(batches []campaign.BatchResult) []CrowdTierRow {
	tiered := false
	for _, br := range batches {
		if br.Tier != "" {
			tiered = true
			break
		}
	}
	if !tiered {
		return nil
	}
	var rows []CrowdTierRow
	for _, tier := range core.AllTiers() {
		tr := CrowdTierRow{Tier: string(tier)}
		var times []float64
		for _, br := range batches {
			if core.Tier(br.Tier).OrFree() != tier {
				continue
			}
			tr.Batches++
			tr.CreditsBilled += br.CreditsBilled
			tr.Instances += br.Instances
			if br.Completed {
				tr.Completed++
				times = append(times, br.CompletionTime)
			}
			if br.TriggeredAt >= 0 {
				tr.Triggered++
			}
		}
		if tr.Batches == 0 {
			continue
		}
		tr.MedianCompletion = stats.NearestRank(times, 0.5)
		tr.P90Completion = stats.NearestRank(times, 0.9)
		tr.MaxCompletion = stats.NearestRank(times, 1)
		if tr.Completed == tr.Batches {
			tr.JainIndex = jainIndex(times)
		}
		rows = append(rows, tr)
	}
	return rows
}

// jainIndex computes Jain's fairness index (Σx)²/(n·Σx²), 0 for empty.
func jainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}
