// Package experiments is the harness that regenerates every table and
// figure of the paper's evaluation (§4): it plans scenarios over the
// matrix {BOINC, XWHEP} × {seti, nd, g5klyo, g5kgre, spot10, spot100} ×
// {SMALL, BIG, RANDOM} × submission offsets × strategy combinations, runs
// them with paired seeds (the same seed drives the identical base execution
// with and without SpeQuloS, as in §4.1.3), and derives the paper's
// metrics.
//
// Simulations execute through internal/campaign: every builder plans its
// jobs into a campaign, the campaign engine runs each unique (scenario,
// strategy) job exactly once, and the figures/tables derive from the shared
// ResultStore. PlanArtifacts/DeriveArtifacts regenerate the whole
// evaluation from one campaign; see EXPERIMENTS.md.
package experiments

import (
	"spequlos/internal/campaign"
	"spequlos/internal/metrics"
	"spequlos/internal/trace"
)

// Middleware names. CONDOR is the extension middleware (checkpoint +
// migration); the paper's evaluation matrix uses BOINC and XWHEP.
const (
	BOINC  = campaign.BOINC
	XWHEP  = campaign.XWHEP
	CONDOR = campaign.CONDOR
)

// Middlewares lists the middleware of the paper's evaluation matrix.
func Middlewares() []string { return campaign.Middlewares() }

// AllMiddlewares includes the CONDOR extension.
func AllMiddlewares() []string { return campaign.AllMiddlewares() }

// TraceNames lists the six BE-DCI traces of Table 2, in paper order.
func TraceNames() []string { return campaign.TraceNames() }

// BotClasses lists the three workload classes of Table 3.
func BotClasses() []string { return campaign.BotClasses() }

// TraceSource resolves a Table 2 trace name to its generator.
func TraceSource(name string) (trace.Source, error) { return campaign.TraceSource(name) }

// Profile scales the experiment matrix; see campaign.Profile.
type Profile = campaign.Profile

// Quick returns the bench profile (small BoTs, small pools).
func Quick() Profile { return campaign.Quick() }

// Standard returns the EXPERIMENTS.md profile.
func Standard() Profile { return campaign.Standard() }

// Full returns the paper-scale profile.
func Full() Profile { return campaign.Full() }

// Stress returns the kernel stress profile (10× quick churn, 30-day
// horizon); see campaign.Stress.
func Stress() Profile { return campaign.Stress() }

// Crowd returns the multi-tenant stress profile (hundreds of concurrent
// QoS batches on one 500-node trace); see campaign.Crowd.
func Crowd() Profile { return campaign.Crowd() }

// Crowd2K returns the tiered two-thousand-batch scale profile (sharded
// scheduler, tier arbitration under a fleet cap); see campaign.Crowd2K.
func Crowd2K() Profile { return campaign.Crowd2K() }

// ProfileByName resolves quick/standard/full/stress/crowd/crowd2k.
func ProfileByName(name string) (Profile, error) { return campaign.ProfileByName(name) }

// Scenario is one simulation to run.
type Scenario = campaign.Scenario

// Result captures one run's outcome and metrics.
type Result = campaign.Result

// Run executes a scenario through the campaign runner, retrying with a
// doubled horizon if the trace window proved too short to finish the BoT.
func Run(sc Scenario) Result { return campaign.Run(sc) }

// CompletionCurve runs a scenario and returns its Fig 1 curve.
func CompletionCurve(sc Scenario) ([]metrics.SeriesPoint, Result) {
	return campaign.CompletionCurve(sc)
}
