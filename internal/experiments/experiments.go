// Package experiments is the harness that regenerates every table and
// figure of the paper's evaluation (§4): it builds scenarios over the
// matrix {BOINC, XWHEP} × {seti, nd, g5klyo, g5kgre, spot10, spot100} ×
// {SMALL, BIG, RANDOM} × submission offsets × strategy combinations, runs
// them with paired seeds (the same seed drives the identical base execution
// with and without SpeQuloS, as in §4.1.3), and derives the paper's
// metrics.
package experiments

import (
	"fmt"
	"runtime"

	"spequlos/internal/boinc"
	"spequlos/internal/bot"
	"spequlos/internal/cloud"
	"spequlos/internal/condor"
	"spequlos/internal/core"
	"spequlos/internal/metrics"
	"spequlos/internal/middleware"
	"spequlos/internal/sim"
	"spequlos/internal/spot"
	"spequlos/internal/trace"
	"spequlos/internal/xwhep"
)

// Middleware names. CONDOR is the extension middleware (checkpoint +
// migration); the paper's evaluation matrix uses BOINC and XWHEP.
const (
	BOINC  = "BOINC"
	XWHEP  = "XWHEP"
	CONDOR = "CONDOR"
)

// Middlewares lists the middleware of the paper's evaluation matrix.
func Middlewares() []string { return []string{BOINC, XWHEP} }

// AllMiddlewares includes the CONDOR extension.
func AllMiddlewares() []string { return []string{BOINC, XWHEP, CONDOR} }

// newServer builds a middleware server by name.
func newServer(eng *sim.Engine, mw string) middleware.Server {
	switch mw {
	case BOINC:
		return boinc.New(eng, boinc.DefaultConfig())
	case XWHEP:
		return xwhep.New(eng, xwhep.DefaultConfig())
	case CONDOR:
		return condor.New(eng, condor.DefaultConfig())
	}
	panic("experiments: unknown middleware " + mw)
}

// TraceNames lists the six BE-DCI traces of Table 2, in paper order.
func TraceNames() []string {
	return []string{"seti", "nd", "g5klyo", "g5kgre", "spot10", "spot100"}
}

// BotClasses lists the three workload classes of Table 3.
func BotClasses() []string { return []string{"SMALL", "BIG", "RANDOM"} }

// TraceSource resolves a Table 2 trace name to its generator.
func TraceSource(name string) (trace.Source, error) {
	if p, ok := trace.ProfileByName(name); ok {
		return p, nil
	}
	if p, ok := spot.ProfileByName(name); ok {
		return p, nil
	}
	return nil, fmt.Errorf("experiments: unknown trace %q", name)
}

// Profile scales the experiment matrix. The Full profile reproduces the
// paper's dimensions; Quick powers `go test -bench` with minute-scale
// runtimes; Standard is the EXPERIMENTS.md default.
type Profile struct {
	Name string
	// BotScale multiplies BoT sizes (1 = paper sizes).
	BotScale float64
	// Offsets is the number of submission instants simulated per
	// configuration (different seeds ⇒ different trace windows).
	Offsets int
	// PoolCap caps the number of nodes generated per trace (0 = the
	// trace's natural pool). Duty cycles and per-node behaviour are
	// preserved; see DESIGN.md §4 on scaling.
	PoolCap int
	// HorizonDays bounds one simulation; incomplete runs are retried with
	// a doubled horizon.
	HorizonDays float64
	// CreditFraction of the BoT workload provisioned as cloud credits
	// (the evaluation uses 10%).
	CreditFraction float64
	// Parallelism bounds concurrent simulations (0 = GOMAXPROCS).
	Parallelism int
}

// Quick returns the bench profile (small BoTs, small pools).
func Quick() Profile {
	return Profile{
		Name: "quick", BotScale: 0.04, Offsets: 2, PoolCap: 250,
		HorizonDays: 6, CreditFraction: 0.10,
	}
}

// Standard returns the EXPERIMENTS.md profile.
func Standard() Profile {
	return Profile{
		Name: "standard", BotScale: 0.15, Offsets: 3, PoolCap: 600,
		HorizonDays: 10, CreditFraction: 0.10,
	}
}

// Full returns the paper-scale profile.
func Full() Profile {
	return Profile{
		Name: "full", BotScale: 1, Offsets: 5, PoolCap: 2000,
		HorizonDays: 15, CreditFraction: 0.10,
	}
}

// ProfileByName resolves quick/standard/full.
func ProfileByName(name string) (Profile, error) {
	switch name {
	case "quick":
		return Quick(), nil
	case "standard":
		return Standard(), nil
	case "full":
		return Full(), nil
	}
	return Profile{}, fmt.Errorf("experiments: unknown profile %q", name)
}

func (p Profile) workers() int {
	if p.Parallelism > 0 {
		return p.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// Scenario is one simulation to run.
type Scenario struct {
	Profile    Profile
	Middleware string
	TraceName  string
	BotClass   string
	Offset     int
	// Strategy enables SpeQuloS with the given combination; nil runs the
	// baseline.
	Strategy *core.Strategy
}

// EnvKey identifies the execution environment (middleware, BE-DCI, BoT
// class) — the α-calibration granularity of §3.4.
func (sc Scenario) EnvKey() string {
	return sc.Middleware + "/" + sc.TraceName + "/" + sc.BotClass
}

// Seed derives the deterministic seed shared by the baseline and every
// SpeQuloS variant of the same scenario (paired comparison).
func (sc Scenario) Seed() uint64 {
	return sim.SeedFrom(sc.Profile.Name, sc.Middleware, sc.TraceName, sc.BotClass,
		fmt.Sprintf("offset-%d", sc.Offset))
}

// Result captures one run's outcome and metrics.
type Result struct {
	Middleware string
	TraceName  string
	BotClass   string
	Offset     int
	Strategy   string // "" for baseline
	Seed       uint64

	Completed      bool
	Size           int
	CompletionTime float64
	Tail           metrics.TailStats
	// TC50Base is tc(0.5)/0.5, the constant-rate estimate at half
	// completion used by the Oracle's prediction (Table 4).
	TC50Base float64

	// Cloud usage (zero for baselines).
	CreditsAllocated float64
	CreditsBilled    float64
	CloudCPUSeconds  float64
	Instances        int
	TriggeredAt      float64

	Events uint64 // simulation events executed (for benchmarking)
}

// EnvKey mirrors Scenario.EnvKey.
func (r Result) EnvKey() string { return r.Middleware + "/" + r.TraceName + "/" + r.BotClass }

// recorder captures exact per-task completion times.
type recorder struct {
	batchID     string
	completions []float64
}

func (r *recorder) TaskAssigned(string, int, float64) {}
func (r *recorder) TaskCompleted(batchID string, _ int, at float64) {
	if batchID == r.batchID {
		r.completions = append(r.completions, at)
	}
}
func (r *recorder) BatchCompleted(string, float64) {}

// Run executes a scenario, retrying with a doubled horizon if the trace
// window proved too short to finish the BoT.
func Run(sc Scenario) Result {
	horizon := sc.Profile.HorizonDays * 86400
	var res Result
	for attempt := 0; attempt < 3; attempt++ {
		res = runOnce(sc, horizon)
		if res.Completed {
			return res
		}
		horizon *= 2
	}
	return res
}

func runOnce(sc Scenario, horizon float64) Result {
	seed := sc.Seed()
	res := Result{
		Middleware: sc.Middleware, TraceName: sc.TraceName, BotClass: sc.BotClass,
		Offset: sc.Offset, Seed: seed,
	}
	if sc.Strategy != nil {
		res.Strategy = sc.Strategy.Label()
	}

	src, err := TraceSource(sc.TraceName)
	if err != nil {
		panic(err)
	}
	class, ok := bot.ClassByName(sc.BotClass)
	if !ok {
		panic("experiments: unknown bot class " + sc.BotClass)
	}
	if sc.Profile.BotScale > 0 && sc.Profile.BotScale != 1 {
		class = class.Scaled(sc.Profile.BotScale)
	}

	eng := sim.NewEngine()
	srv := newServer(eng, sc.Middleware)

	tr := src.Generate(seed, horizon, sc.Profile.PoolCap)
	middleware.BindTrace(eng, tr, srv)

	botID := fmt.Sprintf("%s-%s-%s-%d", sc.Middleware, sc.TraceName, sc.BotClass, sc.Offset)
	workload := class.Generate(botID, seed)
	res.Size = workload.Size()

	rec := &recorder{batchID: botID}
	srv.AddListener(rec)

	var svc *core.Service
	if sc.Strategy != nil {
		simCloud := cloud.NewSimCloud(eng, cloud.DefaultSimConfig(), sim.NewRNG(seed))
		cfg := core.Config{
			Strategy:      *sc.Strategy,
			MonitorPeriod: 60,
			CloudServerFactory: func() middleware.Server {
				return xwhep.New(eng, xwhep.DefaultConfig())
			},
		}
		svc = core.NewService(eng, srv, simCloud, cfg)
		if err := svc.RegisterQoS("user", botID, sc.EnvKey(), workload.Size()); err != nil {
			panic(err)
		}
		credits := sc.Profile.CreditFraction * workload.WorkloadCPUHours() * svc.Credits.Rate()
		svc.Credits.Deposit("user", credits)
		if err := svc.OrderQoS("user", botID, credits); err != nil {
			panic(err)
		}
		res.CreditsAllocated = credits
	}

	srv.Submit(middleware.BatchFromBoT(workload))
	eng.RunWhile(func() bool { return !srv.Done(botID) && eng.Now() <= horizon })

	res.Events = eng.Executed()
	res.Completed = srv.Done(botID)
	if res.Completed {
		res.CompletionTime = eng.Now()
		if tail, ok := metrics.ComputeTail(rec.completions); ok {
			res.Tail = tail
		}
		if n := len(rec.completions); n >= 2 {
			series := metrics.CompletionSeries(rec.completions)
			half := series[(n+1)/2-1].T
			if half > 0 {
				res.TC50Base = half / 0.5
			}
		}
	}
	if svc != nil {
		if u, err := svc.Usage(botID); err == nil {
			res.CreditsBilled = u.CreditsBilled
			res.CloudCPUSeconds = u.CPUSeconds
			res.Instances = u.InstancesStarted
			res.TriggeredAt = u.TriggeredAt
		}
	}
	return res
}

// CompletionCurve runs a baseline scenario and returns its Fig 1 curve.
func CompletionCurve(sc Scenario) ([]metrics.SeriesPoint, Result) {
	horizon := sc.Profile.HorizonDays * 86400
	seed := sc.Seed()
	src, _ := TraceSource(sc.TraceName)
	class, _ := bot.ClassByName(sc.BotClass)
	if sc.Profile.BotScale > 0 && sc.Profile.BotScale != 1 {
		class = class.Scaled(sc.Profile.BotScale)
	}
	eng := sim.NewEngine()
	var srv middleware.Server
	if sc.Middleware == BOINC {
		srv = boinc.New(eng, boinc.DefaultConfig())
	} else {
		srv = xwhep.New(eng, xwhep.DefaultConfig())
	}
	tr := src.Generate(seed, horizon, sc.Profile.PoolCap)
	middleware.BindTrace(eng, tr, srv)
	botID := "curve"
	workload := class.Generate(botID, seed)
	rec := &recorder{batchID: botID}
	srv.AddListener(rec)
	srv.Submit(middleware.BatchFromBoT(workload))
	eng.RunWhile(func() bool { return !srv.Done(botID) && eng.Now() <= horizon })
	res := Result{
		Middleware: sc.Middleware, TraceName: sc.TraceName, BotClass: sc.BotClass,
		Completed: srv.Done(botID), Size: workload.Size(), CompletionTime: eng.Now(),
	}
	if tail, ok := metrics.ComputeTail(rec.completions); ok {
		res.Tail = tail
	}
	return metrics.CompletionSeries(rec.completions), res
}
