package experiments

import (
	"context"
	"fmt"
	"time"

	"spequlos/internal/campaign"
	"spequlos/internal/core"
)

// ArtifactOptions scopes one full regeneration of the paper's evaluation.
type ArtifactOptions struct {
	// Spec restricts the matrix; its Strategies drive Figs 4/5. The default
	// strategy (9C-C-R) is always planned — Figs 6/7 and Table 4 need it.
	Spec MatrixSpec
	// Ablations adds the credit-fraction, monitor-period and trigger sweeps.
	Ablations bool
	// Comparison adds the three-middleware baseline comparison.
	Comparison bool
	// ComparisonTraces and ComparisonBot scope the comparison (defaults:
	// seti+g5klyo, BIG).
	ComparisonTraces []string
	ComparisonBot    string
	// Table2Days/Table2Seed parameterize the trace-statistics validation.
	Table2Days float64
	Table2Seed uint64
	// Table5Days/Table5BoTs/Table5Seed parameterize the EDGI deployment
	// simulation.
	Table5Days float64
	Table5BoTs int
	Table5Seed uint64
	// StreamMatrix skips materializing Artifacts.Matrix: the store is
	// validated per cell (ValidateSpec) and every figure/table streams
	// straight from it, so derivation memory does not grow with the matrix.
	// Paper-scale (`full`) campaigns and the bench CLI set it; the default
	// keeps Artifacts.Matrix populated for consumers that read it.
	StreamMatrix bool
	// Store, when non-nil, is reused across runs: entries already present
	// are not re-simulated (resume).
	Store *campaign.ResultStore
	// Parallelism bounds concurrent simulations (0 = profile default).
	Parallelism int
	// Progress receives streaming per-job events.
	Progress func(campaign.Event)
}

func (o ArtifactOptions) withDefaults() ArtifactOptions {
	hasDefault := false
	defaultLabel := core.DefaultStrategy().Label()
	for _, st := range o.Spec.Strategies {
		if st.Label() == defaultLabel {
			hasDefault = true
		}
	}
	if !hasDefault {
		o.Spec.Strategies = append(o.Spec.Strategies, core.DefaultStrategy())
	}
	if o.ComparisonBot == "" {
		o.ComparisonBot = "BIG"
	}
	if o.Table2Days == 0 {
		o.Table2Days = 7
	}
	if o.Table2Seed == 0 {
		o.Table2Seed = 20260611
	}
	if o.Table5Days == 0 {
		o.Table5Days = 4
	}
	if o.Table5BoTs == 0 {
		o.Table5BoTs = 12
	}
	if o.Table5Seed == 0 {
		o.Table5Seed = 20260611
	}
	return o
}

// Artifacts is every figure and table of the evaluation, derived from one
// campaign.
type Artifacts struct {
	Profile Profile
	Matrix  Matrix

	Figure1 Figure1
	Figure2 Figure2
	Table1  Table1
	Table2  []Table2Row
	Figure4 Figure4
	Figure5 Figure5
	Figure6 Figure6
	Figure7 Figure7
	Table4  Table4
	Table5  Table5

	// Ablation sweeps (when ArtifactOptions.Ablations).
	CreditSweep  []AblationPoint
	PeriodSweep  []AblationPoint
	TriggerSweep []AblationPoint
	// Comparison rows (when ArtifactOptions.Comparison).
	Comparison []MiddlewareComparisonRow

	// Timings records per-artifact derivation wall-clock for BENCH reports.
	Timings []ArtifactTiming
}

// ArtifactTiming is one artifact's derivation wall-clock.
type ArtifactTiming struct {
	Name    string        `json:"name"`
	Elapsed time.Duration `json:"elapsed_ns"`
}

// DefaultStrategyLabel is the strategy Figs 6/7 and Table 4 report on.
func (a Artifacts) DefaultStrategyLabel() string { return core.DefaultStrategy().Label() }

// PlanArtifacts plans every simulation job the artifact set needs: the full
// matrix (baselines + strategies), the Fig 1 curve, and optionally the
// ablation variants and the middleware comparison. Overlapping consumers —
// Fig 1's cell is a matrix baseline, ablation baselines are matrix cells —
// dedupe to a single execution via the job key.
func PlanArtifacts(p Profile, opts ArtifactOptions) *campaign.Plan {
	opts = opts.withDefaults()
	plan := campaign.NewPlan()
	plan.Add(opts.Spec.Jobs(p)...)
	plan.Add(Figure1Job(p))
	if opts.Ablations {
		plan.Add(ablationJobs(p, creditSettings(nil))...)
		plan.Add(ablationJobs(p, periodSettings(p, nil))...)
		plan.Add(ablationJobs(p, triggerSettings(p))...)
	}
	if opts.Comparison {
		plan.Add(ComparisonJobs(p, opts.ComparisonTraces, opts.ComparisonBot)...)
	}
	return plan
}

// DeriveArtifacts builds every figure and table from an already-executed
// store. It runs no scenario simulations: Tables 2 and 5 (the trace
// generator validation and the EDGI deployment) are independent
// simulations and execute here.
func DeriveArtifacts(store *campaign.ResultStore, p Profile, opts ArtifactOptions) (Artifacts, error) {
	opts = opts.withDefaults()
	a := Artifacts{Profile: p}
	timed := func(name string, build func() error) error {
		start := time.Now()
		if err := build(); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		a.Timings = append(a.Timings, ArtifactTiming{Name: name, Elapsed: time.Since(start)})
		return nil
	}

	// The matrix step is the completeness gate either way: streaming
	// derivations validate the store per cell without retaining the pairs,
	// the default additionally materializes the Matrix view for consumers
	// (the golden tests pin its JSON).
	if err := timed("matrix", func() (err error) {
		if opts.StreamMatrix {
			return ValidateSpec(store, p, opts.Spec)
		}
		a.Matrix, err = MatrixFrom(store, p, opts.Spec)
		return
	}); err != nil {
		return a, err
	}
	defaultLabel := a.DefaultStrategyLabel()
	type step struct {
		name  string
		build func() error
	}
	steps := []step{
		{"figure1", func() (err error) { a.Figure1, err = Figure1From(store, p); return }},
		{"figure2", func() (err error) { a.Figure2, err = Figure2From(store, p, opts.Spec); return }},
		{"table1", func() (err error) { a.Table1, err = Table1From(store, p, opts.Spec); return }},
		{"table2", func() error { a.Table2 = BuildTable2(opts.Table2Days, opts.Table2Seed); return nil }},
		{"figure4", func() (err error) { a.Figure4, err = Figure4From(store, p, opts.Spec); return }},
		{"figure5", func() (err error) { a.Figure5, err = Figure5From(store, p, opts.Spec); return }},
		{"figure6", func() (err error) { a.Figure6, err = Figure6From(store, p, opts.Spec, defaultLabel); return }},
		{"figure7", func() (err error) { a.Figure7, err = Figure7From(store, p, opts.Spec, defaultLabel); return }},
		{"table4", func() (err error) { a.Table4, err = Table4From(store, p, opts.Spec, defaultLabel); return }},
		{"table5", func() error {
			a.Table5 = BuildTable5(opts.Table5Days, opts.Table5BoTs, opts.Table5Seed)
			return nil
		}},
	}
	if opts.Ablations {
		steps = append(steps,
			step{"ablation-credits", func() (err error) {
				a.CreditSweep, err = CreditFractionSweepFrom(store, p, nil)
				return
			}},
			step{"ablation-period", func() (err error) {
				a.PeriodSweep, err = MonitorPeriodSweepFrom(store, p, nil)
				return
			}},
			step{"ablation-trigger", func() (err error) {
				a.TriggerSweep, err = TriggerAblationFrom(store, p)
				return
			}},
		)
	}
	if opts.Comparison {
		steps = append(steps, step{"comparison", func() (err error) {
			a.Comparison, err = CompareMiddlewareFrom(store, p, opts.ComparisonTraces, opts.ComparisonBot)
			return
		}})
	}
	for _, s := range steps {
		if err := timed(s.name, s.build); err != nil {
			return a, err
		}
	}
	return a, nil
}

// BuildArtifacts is the one-campaign pipeline: plan every job, execute each
// unique one exactly once, derive every artifact from the shared store.
func BuildArtifacts(ctx context.Context, p Profile, opts ArtifactOptions) (Artifacts, campaign.Stats, error) {
	opts = opts.withDefaults()
	store := opts.Store
	if store == nil {
		store = campaign.NewResultStore()
	}
	c := &campaign.Campaign{
		Profile:     p,
		Plan:        PlanArtifacts(p, opts),
		Parallelism: opts.Parallelism,
		Progress:    opts.Progress,
	}
	stats, err := c.Run(ctx, store)
	if err != nil {
		return Artifacts{}, stats, err
	}
	a, err := DeriveArtifacts(store, p, opts)
	return a, stats, err
}
