package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N                  int
	Mean, Std          float64
	Min, Max           float64
	Q25, Q50, Q75      float64
	P05, P95           float64
	Sum                float64
	CoefficientOfVar   float64 // Std/Mean (0 when Mean==0)
	InterquartileRange float64
}

// Summarize computes descriptive statistics. It copies and sorts the input.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	var sum, sq float64
	for _, v := range s {
		sum += v
	}
	mean := sum / float64(len(s))
	for _, v := range s {
		d := v - mean
		sq += d * d
	}
	std := 0.0
	if len(s) > 1 {
		std = math.Sqrt(sq / float64(len(s)-1))
	}
	out := Summary{
		N: len(s), Mean: mean, Std: std,
		Min: s[0], Max: s[len(s)-1],
		Q25: QuantileSorted(s, 0.25), Q50: QuantileSorted(s, 0.5), Q75: QuantileSorted(s, 0.75),
		P05: QuantileSorted(s, 0.05), P95: QuantileSorted(s, 0.95),
		Sum: sum,
	}
	if mean != 0 {
		out.CoefficientOfVar = std / mean
	}
	out.InterquartileRange = out.Q75 - out.Q25
	return out
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g std=%.4g min=%.4g q25=%.4g med=%.4g q75=%.4g max=%.4g",
		s.N, s.Mean, s.Std, s.Min, s.Q25, s.Q50, s.Q75, s.Max)
}

// QuantileSorted returns the p-quantile (linear interpolation, type 7) of an
// ascending-sorted sample.
func QuantileSorted(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 0 {
		return math.NaN()
	}
	if n == 1 {
		return sorted[0]
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[n-1]
	}
	h := p * float64(n-1)
	lo := int(math.Floor(h))
	frac := h - float64(lo)
	if lo+1 >= n {
		return sorted[n-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Quantile sorts a copy of the sample and returns the p-quantile.
func Quantile(xs []float64, p float64) float64 {
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	return QuantileSorted(s, p)
}

// NearestRank sorts a copy of the sample and returns the p-quantile by the
// nearest-rank rule (⌈p·n⌉-th smallest value, 0 for an empty sample).
// Unlike Quantile it never interpolates: the result is always an observed
// value, which is what per-batch completion-time reports quote (a median
// of "12547s" names a real batch's completion, not a synthetic midpoint).
func NearestRank(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	i := int(math.Ceil(p*float64(len(s)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(s) {
		i = len(s) - 1
	}
	return s[i]
}

// CDFPoint is one point of an empirical distribution function.
type CDFPoint struct{ X, F float64 }

// EmpiricalCDF returns the empirical CDF of the sample as step points
// (x_i, i/n) on the sorted values.
func EmpiricalCDF(xs []float64) []CDFPoint {
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	out := make([]CDFPoint, len(s))
	for i, v := range s {
		out[i] = CDFPoint{X: v, F: float64(i+1) / float64(len(s))}
	}
	return out
}

// CCDFAt evaluates the complementary CDF P(X > x) of the sample at x.
func CCDFAt(xs []float64, x float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, v := range xs {
		if v > x {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// CDFAt evaluates the empirical CDF P(X <= x) of the sample at x.
func CDFAt(xs []float64, x float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, v := range xs {
		if v <= x {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// Histogram bins xs into nbins equal-width bins over [lo, hi] and returns
// the fraction of the sample in each bin. Values outside the range are
// clamped into the edge bins, matching the paper's "repartition function"
// plots (Fig 7).
type Histogram struct {
	Lo, Hi float64
	Counts []int
	Frac   []float64
	N      int
}

// NewHistogram bins the sample.
func NewHistogram(xs []float64, lo, hi float64, nbins int) Histogram {
	if nbins <= 0 || hi <= lo {
		return Histogram{Lo: lo, Hi: hi}
	}
	h := Histogram{Lo: lo, Hi: hi, Counts: make([]int, nbins), Frac: make([]float64, nbins), N: len(xs)}
	w := (hi - lo) / float64(nbins)
	for _, v := range xs {
		i := int((v - lo) / w)
		if i < 0 {
			i = 0
		}
		if i >= nbins {
			i = nbins - 1
		}
		h.Counts[i]++
	}
	if len(xs) > 0 {
		for i, c := range h.Counts {
			h.Frac[i] = float64(c) / float64(len(xs))
		}
	}
	return h
}

// BinCenter returns the midpoint of bin i.
func (h Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*w
}

// WeightedMedian returns the weighted median of values: the v minimizing
// Σ w_i·|v − x_i|. Used by the Oracle's α fit (§3.4): α minimizing the mean
// absolute difference between α·base_i and actual_i is the weighted median
// of actual_i/base_i with weights base_i.
func WeightedMedian(values, weights []float64) float64 {
	if len(values) == 0 {
		return math.NaN()
	}
	type pair struct{ v, w float64 }
	ps := make([]pair, 0, len(values))
	var total float64
	for i, v := range values {
		w := 1.0
		if i < len(weights) {
			w = weights[i]
		}
		if w <= 0 {
			continue
		}
		ps = append(ps, pair{v, w})
		total += w
	}
	if len(ps) == 0 {
		return math.NaN()
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].v < ps[j].v })
	acc := 0.0
	for _, p := range ps {
		acc += p.w
		if acc >= total/2 {
			return p.v
		}
	}
	return ps[len(ps)-1].v
}

// Mean returns the arithmetic mean (0 for an empty sample).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, v := range xs {
		sum += v
	}
	return sum / float64(len(xs))
}
