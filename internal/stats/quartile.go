package stats

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// QuartileDist is a distribution specified by its three quartiles
// (q25, q50, q75), as published for the availability and unavailability
// durations of every BE-DCI trace in Table 2 of the paper.
//
// The quantile function interpolates geometrically between the quartiles
// (durations are naturally log-scaled) and ramps geometrically into both
// tails:
//
//	u = 0            Q = Min
//	u ∈ (0,0.25)     Q(u) = q25·(Min/q25)^{(0.25−u)/0.25}
//	u ∈ [0.25,0.50]  Q(u) = q25·(q50/q25)^{(u−0.25)/0.25}
//	u ∈ [0.50,0.75]  Q(u) = q50·(q75/q50)^{(u−0.50)/0.25}
//	u ∈ (0.75,1]     Q(u) = q75·TailCap^{(u−0.75)/0.25}
//
// Sampling exactly reproduces the published quartiles while keeping tail
// weight configurable. The right tail matters: count-weighted quartiles
// hide that a minority of long intervals can carry most of the machine
// time (e.g. night-long best-effort slots on Grid'5000, where the
// availability quartiles are tens of seconds yet SMALL tasks of 20 CPU
// minutes do complete). TailCap sets Q(1)/Q(0.75) per trace profile.
type QuartileDist struct {
	Q25, Q50, Q75 float64
	Min           float64 // floor for the left tail (e.g. 1s)
	TailCap       float64 // right tail cap as a multiple of Q75 (e.g. 8)
}

// NewQuartileDist validates and builds a QuartileDist with the given floor
// and tail cap. Quartiles must be positive and non-decreasing.
func NewQuartileDist(q25, q50, q75, min, tailCap float64) (QuartileDist, error) {
	switch {
	case q25 <= 0 || q50 <= 0 || q75 <= 0:
		return QuartileDist{}, fmt.Errorf("stats: quartiles must be positive, got (%g,%g,%g)", q25, q50, q75)
	case q25 > q50 || q50 > q75:
		return QuartileDist{}, fmt.Errorf("stats: quartiles must be non-decreasing, got (%g,%g,%g)", q25, q50, q75)
	case min <= 0 || min > q25:
		return QuartileDist{}, fmt.Errorf("stats: floor %g must be in (0,%g]", min, q25)
	case tailCap < 1:
		return QuartileDist{}, fmt.Errorf("stats: tail cap %g must be >= 1", tailCap)
	}
	return QuartileDist{Q25: q25, Q50: q50, Q75: q75, Min: min, TailCap: tailCap}, nil
}

// MustQuartileDist is NewQuartileDist that panics on error; for package-level
// trace profile tables.
func MustQuartileDist(q25, q50, q75, min, tailCap float64) QuartileDist {
	d, err := NewQuartileDist(q25, q50, q75, min, tailCap)
	if err != nil {
		panic(err)
	}
	return d
}

// Quantile is the inverse CDF at u ∈ [0,1].
func (d QuartileDist) Quantile(u float64) float64 {
	switch {
	case u <= 0:
		return d.Min
	case u >= 1:
		return d.Q75 * d.TailCap
	}
	geo := func(lo, hi, f float64) float64 {
		if lo == hi {
			return lo
		}
		return lo * math.Pow(hi/lo, f)
	}
	switch {
	case u < 0.25:
		return geo(d.Min, d.Q25, u/0.25)
	case u <= 0.5:
		return geo(d.Q25, d.Q50, (u-0.25)/0.25)
	case u <= 0.75:
		return geo(d.Q50, d.Q75, (u-0.5)/0.25)
	default:
		return geo(d.Q75, d.Q75*d.TailCap, (u-0.75)/0.25)
	}
}

// Sample draws a value via inverse-transform sampling.
func (d QuartileDist) Sample(r *rand.Rand) float64 { return d.Quantile(r.Float64()) }

// QuartileSampler is a draw-optimized view of a QuartileDist for hot
// sampling loops (trace synthesis draws millions of interval durations per
// campaign). It precomputes the per-segment geometric ratios once, so each
// draw performs a single math.Pow on a cached ratio instead of re-deriving
// the segment endpoints. Values are bit-identical to QuartileDist.Quantile:
// the ratio divisions happen in the same order, only earlier.
type QuartileSampler struct {
	min, q25, q50, q75, cap float64
	rMin, r25, r50, r75     float64 // hi/lo ratio of each segment
}

// Sampler builds the precomputed sampler for the distribution.
func (d QuartileDist) Sampler() QuartileSampler {
	s := QuartileSampler{min: d.Min, q25: d.Q25, q50: d.Q50, q75: d.Q75, cap: d.Q75 * d.TailCap}
	ratio := func(lo, hi float64) float64 {
		if lo == hi {
			return 1
		}
		return hi / lo
	}
	s.rMin = ratio(d.Min, d.Q25)
	s.r25 = ratio(d.Q25, d.Q50)
	s.r50 = ratio(d.Q50, d.Q75)
	s.r75 = ratio(d.Q75, s.cap)
	return s
}

// Quantile is the inverse CDF at u ∈ [0,1], identical in value to
// QuartileDist.Quantile.
func (s QuartileSampler) Quantile(u float64) float64 {
	switch {
	case u <= 0:
		return s.min
	case u >= 1:
		return s.cap
	case u < 0.25:
		return geoSeg(s.min, s.rMin, u/0.25)
	case u <= 0.5:
		return geoSeg(s.q25, s.r25, (u-0.25)/0.25)
	case u <= 0.75:
		return geoSeg(s.q50, s.r50, (u-0.5)/0.25)
	default:
		return geoSeg(s.q75, s.r75, (u-0.75)/0.25)
	}
}

// geoSeg interpolates geometrically along a segment with a precomputed
// hi/lo ratio: lo·ratio^f, matching QuartileDist.Quantile's lo·(hi/lo)^f.
func geoSeg(lo, ratio, f float64) float64 {
	if ratio == 1 {
		return lo
	}
	return lo * math.Pow(ratio, f)
}

// Sample draws one value via inverse-transform sampling.
func (s QuartileSampler) Sample(r *rand.Rand) float64 { return s.Quantile(r.Float64()) }

// SampleN fills dst with draws, amortizing the sampler setup across a batch.
// It consumes exactly len(dst) uniforms from r, in order, so batched and
// one-at-a-time sampling produce identical streams.
func (s QuartileSampler) SampleN(r *rand.Rand, dst []float64) {
	for i := range dst {
		dst[i] = s.Quantile(r.Float64())
	}
}

// Mean integrates the quantile function numerically (Simpson's rule on a
// fine u-grid). The result is exact enough for duty-cycle calibration.
func (d QuartileDist) Mean() float64 {
	const n = 2048 // even
	h := 1.0 / n
	sum := d.Quantile(0) + d.Quantile(1)
	for i := 1; i < n; i++ {
		w := 2.0
		if i%2 == 1 {
			w = 4.0
		}
		sum += w * d.Quantile(float64(i)*h)
	}
	return sum * h / 3
}

// String implements Dist.
func (d QuartileDist) String() string {
	return fmt.Sprintf("quartiles(%g,%g,%g)", d.Q25, d.Q50, d.Q75)
}

// Scaled returns a copy with every quantile multiplied by f (floor and cap
// scale too). Used to stretch unavailability durations when calibrating a
// trace's duty cycle without touching the published availability quartiles.
func (d QuartileDist) Scaled(f float64) QuartileDist {
	return QuartileDist{Q25: d.Q25 * f, Q50: d.Q50 * f, Q75: d.Q75 * f, Min: d.Min * f, TailCap: d.TailCap}
}
