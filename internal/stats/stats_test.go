package stats

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"
)

// The sampler must be a bit-identical fast path: any ULP drift would change
// every synthesized trace and, through it, every golden artifact.
func TestQuartileSamplerBitIdentical(t *testing.T) {
	dists := []QuartileDist{
		MustQuartileDist(30, 120, 1500, 1, 8),
		MustQuartileDist(5, 5, 5, 5, 1), // degenerate segments
		MustQuartileDist(0.1, 2.5, 7.25, 0.1, 3.5),
	}
	for _, d := range dists {
		s := d.Sampler()
		for i := -2; i <= 1002; i++ {
			u := float64(i) / 1000
			if got, want := s.Quantile(u), d.Quantile(u); got != want {
				t.Fatalf("%v: sampler.Quantile(%g) = %v, dist gives %v", d, u, got, want)
			}
		}
	}
}

// Batched draws must consume the RNG exactly like one-at-a-time draws.
func TestQuartileSamplerSampleNStream(t *testing.T) {
	d := MustQuartileDist(30, 120, 1500, 1, 8)
	s := d.Sampler()
	ra := rand.New(rand.NewPCG(7, 11))
	rb := rand.New(rand.NewPCG(7, 11))
	batch := make([]float64, 257)
	s.SampleN(ra, batch)
	for i, v := range batch {
		if want := d.Sample(rb); v != want {
			t.Fatalf("batched draw %d = %v, sequential gives %v", i, v, want)
		}
	}
}

func newRand(seed uint64) *rand.Rand { return rand.New(rand.NewPCG(seed, seed+1)) }

func sample(d Dist, n int, seed uint64) []float64 {
	r := newRand(seed)
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = d.Sample(r)
	}
	return xs
}

func TestNormalMoments(t *testing.T) {
	xs := sample(Normal{Mu: 10, Sigma: 2}, 50000, 1)
	s := Summarize(xs)
	if math.Abs(s.Mean-10) > 0.05 {
		t.Errorf("normal mean = %v, want ~10", s.Mean)
	}
	if math.Abs(s.Std-2) > 0.05 {
		t.Errorf("normal std = %v, want ~2", s.Std)
	}
}

func TestTruncatedNormalBounds(t *testing.T) {
	d := TruncatedNormal{Mu: 1000, Sigma: 250, Lo: 100, Hi: 4000}
	for _, v := range sample(d, 10000, 2) {
		if v < 100 || v > 4000 {
			t.Fatalf("truncated normal out of bounds: %v", v)
		}
	}
}

func TestTruncatedNormalDegenerate(t *testing.T) {
	// Mean far outside the window: must clamp, not loop forever.
	d := TruncatedNormal{Mu: -50, Sigma: 0.001, Lo: 1, Hi: 2}
	v := d.Sample(newRand(3))
	if v < 1 || v > 2 {
		t.Fatalf("degenerate truncated normal out of bounds: %v", v)
	}
}

func TestLogNormalMean(t *testing.T) {
	d := LogNormal{Mu: 1, Sigma: 0.5}
	xs := sample(d, 100000, 4)
	if got, want := Mean(xs), d.Mean(); math.Abs(got-want)/want > 0.03 {
		t.Errorf("lognormal sample mean %v vs analytic %v", got, want)
	}
}

func TestExponentialMean(t *testing.T) {
	d := Exponential{Rate: 0.25}
	if got := Mean(sample(d, 100000, 5)); math.Abs(got-4)/4 > 0.03 {
		t.Errorf("exponential mean = %v, want ~4", got)
	}
}

func TestWeibullQuantileAndMean(t *testing.T) {
	// Table 3 RANDOM arrival process parameters.
	d := Weibull{Lambda: 91.98, K: 0.57}
	xs := sample(d, 200000, 6)
	sort.Float64s(xs)
	med := QuantileSorted(xs, 0.5)
	if want := d.Quantile(0.5); math.Abs(med-want)/want > 0.05 {
		t.Errorf("weibull median = %v, want ~%v", med, want)
	}
	if got, want := Mean(xs), d.Mean(); math.Abs(got-want)/want > 0.05 {
		t.Errorf("weibull mean = %v, want ~%v", got, want)
	}
	if d.Mean() < 91.98 {
		t.Errorf("weibull k<1 mean %v should exceed lambda", d.Mean())
	}
}

func TestWeibullQuantileMonotone(t *testing.T) {
	d := Weibull{Lambda: 91.98, K: 0.57}
	f := func(a, b float64) bool {
		pa, pb := math.Abs(math.Mod(a, 1)), math.Abs(math.Mod(b, 1))
		if pa > pb {
			pa, pb = pb, pa
		}
		if pa == 0 || pb >= 1 || pa == pb {
			return true
		}
		return d.Quantile(pa) <= d.Quantile(pb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuartileDistMatchesQuartiles(t *testing.T) {
	// seti availability quartiles from Table 2.
	d := MustQuartileDist(61, 531, 5407, 1, 8)
	xs := sample(d, 200000, 7)
	sort.Float64s(xs)
	for _, tc := range []struct{ p, want float64 }{{0.25, 61}, {0.5, 531}, {0.75, 5407}} {
		got := QuantileSorted(xs, tc.p)
		if math.Abs(got-tc.want)/tc.want > 0.05 {
			t.Errorf("q%.0f = %v, want ~%v", tc.p*100, got, tc.want)
		}
	}
	if max := xs[len(xs)-1]; max > 5407*8+1 {
		t.Errorf("tail cap violated: max=%v", max)
	}
	if min := xs[0]; min < 1 {
		t.Errorf("floor violated: min=%v", min)
	}
}

func TestQuartileDistQuantileMonotoneProperty(t *testing.T) {
	d := MustQuartileDist(21, 51, 63, 1, 8)
	f := func(a, b float64) bool {
		pa, pb := math.Abs(math.Mod(a, 1)), math.Abs(math.Mod(b, 1))
		if pa > pb {
			pa, pb = pb, pa
		}
		return d.Quantile(pa) <= d.Quantile(pb)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestQuartileDistMeanIntegration(t *testing.T) {
	d := MustQuartileDist(100, 200, 400, 10, 4)
	analytic := d.Mean()
	empirical := Mean(sample(d, 300000, 8))
	if math.Abs(analytic-empirical)/empirical > 0.02 {
		t.Errorf("integrated mean %v vs empirical %v", analytic, empirical)
	}
}

func TestQuartileDistScaled(t *testing.T) {
	d := MustQuartileDist(10, 20, 40, 1, 8)
	s := d.Scaled(3)
	if s.Q25 != 30 || s.Q50 != 60 || s.Q75 != 120 {
		t.Errorf("scaled quartiles wrong: %+v", s)
	}
	if math.Abs(s.Mean()-3*d.Mean()) > 1e-6*d.Mean() {
		t.Errorf("scaled mean %v, want %v", s.Mean(), 3*d.Mean())
	}
}

func TestNewQuartileDistValidation(t *testing.T) {
	cases := []struct{ q25, q50, q75, min, cap float64 }{
		{-1, 2, 3, 0.5, 8},
		{3, 2, 1, 0.5, 8},
		{1, 2, 3, 0, 8},
		{1, 2, 3, 5, 8},
		{1, 2, 3, 0.5, 0.5},
	}
	for _, c := range cases {
		if _, err := NewQuartileDist(c.q25, c.q50, c.q75, c.min, c.cap); err == nil {
			t.Errorf("NewQuartileDist(%v) accepted invalid input", c)
		}
	}
	if _, err := NewQuartileDist(1, 2, 3, 0.5, 8); err != nil {
		t.Errorf("valid input rejected: %v", err)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Q50 != 3 {
		t.Errorf("summary wrong: %+v", s)
	}
	if s.Q25 != 2 || s.Q75 != 4 {
		t.Errorf("quartiles wrong: %+v", s)
	}
	if empty := Summarize(nil); empty.N != 0 {
		t.Errorf("empty summary: %+v", empty)
	}
	one := Summarize([]float64{7})
	if one.Mean != 7 || one.Std != 0 || one.Q50 != 7 {
		t.Errorf("singleton summary: %+v", one)
	}
}

func TestQuantileSortedEdges(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if QuantileSorted(xs, 0) != 1 || QuantileSorted(xs, 1) != 4 {
		t.Error("edge quantiles wrong")
	}
	if got := QuantileSorted(xs, 0.5); got != 2.5 {
		t.Errorf("median = %v, want 2.5", got)
	}
	if !math.IsNaN(QuantileSorted(nil, 0.5)) {
		t.Error("empty quantile should be NaN")
	}
}

func TestQuantileSortedWithinRangeProperty(t *testing.T) {
	f := func(raw []float64, p float64) bool {
		xs := raw[:0]
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		sort.Float64s(xs)
		pp := math.Abs(math.Mod(p, 1))
		q := QuantileSorted(xs, pp)
		return q >= xs[0] && q <= xs[len(xs)-1]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEmpiricalCDF(t *testing.T) {
	cdf := EmpiricalCDF([]float64{3, 1, 2})
	if len(cdf) != 3 || cdf[0].X != 1 || cdf[2].F != 1 {
		t.Errorf("cdf wrong: %+v", cdf)
	}
	for i := 1; i < len(cdf); i++ {
		if cdf[i].X < cdf[i-1].X || cdf[i].F < cdf[i-1].F {
			t.Errorf("cdf not monotone: %+v", cdf)
		}
	}
}

func TestCDFAtCCDFAtComplement(t *testing.T) {
	xs := []float64{1, 2, 2, 3, 10}
	for _, x := range []float64{0, 1, 2, 2.5, 10, 11} {
		if got := CDFAt(xs, x) + CCDFAt(xs, x); math.Abs(got-1) > 1e-12 {
			t.Errorf("CDF+CCDF at %v = %v, want 1", x, got)
		}
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{0.1, 0.9, 1.1, 2.5, 7.0, -1}, 0, 5, 5)
	if h.N != 6 {
		t.Fatalf("N=%d", h.N)
	}
	if h.Counts[0] != 3 { // 0.1, 0.9, -1 (clamped)
		t.Errorf("bin0=%d, want 3 (%v)", h.Counts[0], h.Counts)
	}
	if h.Counts[4] != 1 { // 7.0 clamped into last bin
		t.Errorf("bin4=%d, want 1", h.Counts[4])
	}
	var sum float64
	for _, f := range h.Frac {
		sum += f
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("fractions sum to %v", sum)
	}
	if c := h.BinCenter(0); c != 0.5 {
		t.Errorf("bin center = %v, want 0.5", c)
	}
}

func TestWeightedMedian(t *testing.T) {
	if got := WeightedMedian([]float64{1, 2, 3}, []float64{1, 1, 1}); got != 2 {
		t.Errorf("unweighted median = %v, want 2", got)
	}
	if got := WeightedMedian([]float64{1, 2, 3}, []float64{10, 1, 1}); got != 1 {
		t.Errorf("weighted median = %v, want 1", got)
	}
	if !math.IsNaN(WeightedMedian(nil, nil)) {
		t.Error("empty weighted median should be NaN")
	}
	// Non-positive weights ignored.
	if got := WeightedMedian([]float64{1, 2}, []float64{0, 1}); got != 2 {
		t.Errorf("zero-weight value used: %v", got)
	}
}

// Property: the weighted median minimizes Σ w|v−x| versus nearby candidates.
func TestWeightedMedianMinimizesL1(t *testing.T) {
	f := func(seed uint64) bool {
		r := newRand(seed)
		n := 3 + int(r.Uint64()%20)
		vals := make([]float64, n)
		ws := make([]float64, n)
		for i := range vals {
			vals[i] = r.Float64() * 100
			ws[i] = 0.1 + r.Float64()
		}
		m := WeightedMedian(vals, ws)
		cost := func(v float64) float64 {
			var c float64
			for i := range vals {
				c += ws[i] * math.Abs(v-vals[i])
			}
			return c
		}
		cm := cost(m)
		for _, v := range vals {
			if cost(v) < cm-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("mean of empty should be 0")
	}
	if Mean([]float64{2, 4}) != 3 {
		t.Error("mean wrong")
	}
}

func TestDistStrings(t *testing.T) {
	for _, d := range []Dist{
		Constant{1}, Uniform{0, 1}, Normal{0, 1}, LogNormal{0, 1},
		Exponential{1}, Weibull{1, 1}, TruncatedNormal{1, 1, 0, 2},
		MustQuartileDist(1, 2, 3, 0.5, 8),
	} {
		if d.String() == "" {
			t.Errorf("%T has empty String()", d)
		}
	}
}

func TestConstantAndUniform(t *testing.T) {
	if (Constant{5}).Mean() != 5 || (Constant{5}).Sample(newRand(1)) != 5 {
		t.Error("constant dist wrong")
	}
	u := Uniform{2, 4}
	if u.Mean() != 3 {
		t.Error("uniform mean wrong")
	}
	for i := 0; i < 100; i++ {
		v := u.Sample(newRand(uint64(i)))
		if v < 2 || v >= 4 {
			t.Fatalf("uniform out of range: %v", v)
		}
	}
}
