// Package stats provides the probability distributions, summary statistics
// and fitting helpers used across the SpeQuloS reproduction: workload
// generation (Table 3), availability-trace synthesis (Table 2), node power
// models, and the Oracle's α-calibration.
package stats

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// Dist is a continuous probability distribution that can be sampled and
// whose mean is known (analytically or numerically).
type Dist interface {
	Sample(r *rand.Rand) float64
	Mean() float64
	String() string
}

// Constant is a degenerate distribution.
type Constant struct{ Value float64 }

// Sample implements Dist.
func (c Constant) Sample(*rand.Rand) float64 { return c.Value }

// Mean implements Dist.
func (c Constant) Mean() float64 { return c.Value }

// String implements Dist.
func (c Constant) String() string { return fmt.Sprintf("const(%g)", c.Value) }

// Uniform is the continuous uniform distribution on [Lo, Hi).
type Uniform struct{ Lo, Hi float64 }

// Sample implements Dist.
func (u Uniform) Sample(r *rand.Rand) float64 { return u.Lo + r.Float64()*(u.Hi-u.Lo) }

// Mean implements Dist.
func (u Uniform) Mean() float64 { return (u.Lo + u.Hi) / 2 }

// String implements Dist.
func (u Uniform) String() string { return fmt.Sprintf("unif(%g,%g)", u.Lo, u.Hi) }

// Normal is the Gaussian distribution with mean Mu and standard deviation
// Sigma.
type Normal struct{ Mu, Sigma float64 }

// Sample implements Dist.
func (n Normal) Sample(r *rand.Rand) float64 { return n.Mu + n.Sigma*r.NormFloat64() }

// Mean implements Dist.
func (n Normal) Mean() float64 { return n.Mu }

// String implements Dist.
func (n Normal) String() string { return fmt.Sprintf("norm(µ=%g,σ=%g)", n.Mu, n.Sigma) }

// TruncatedNormal is a Gaussian resampled (up to 64 tries, then clamped)
// into [Lo, Hi]. It models node power heterogeneity, which must stay
// positive (Table 2: e.g. 1000±250 nops/s for desktop nodes).
type TruncatedNormal struct {
	Mu, Sigma float64
	Lo, Hi    float64
}

// Sample implements Dist.
func (n TruncatedNormal) Sample(r *rand.Rand) float64 {
	for i := 0; i < 64; i++ {
		v := n.Mu + n.Sigma*r.NormFloat64()
		if v >= n.Lo && v <= n.Hi {
			return v
		}
	}
	return math.Min(math.Max(n.Mu, n.Lo), n.Hi)
}

// Mean implements Dist (an approximation for mild truncation).
func (n TruncatedNormal) Mean() float64 { return n.Mu }

// String implements Dist.
func (n TruncatedNormal) String() string {
	return fmt.Sprintf("tnorm(µ=%g,σ=%g,[%g,%g])", n.Mu, n.Sigma, n.Lo, n.Hi)
}

// LogNormal is the log-normal distribution: ln X ~ N(Mu, Sigma²).
type LogNormal struct{ Mu, Sigma float64 }

// Sample implements Dist.
func (l LogNormal) Sample(r *rand.Rand) float64 {
	return math.Exp(l.Mu + l.Sigma*r.NormFloat64())
}

// Mean implements Dist.
func (l LogNormal) Mean() float64 { return math.Exp(l.Mu + l.Sigma*l.Sigma/2) }

// String implements Dist.
func (l LogNormal) String() string { return fmt.Sprintf("lognorm(µ=%g,σ=%g)", l.Mu, l.Sigma) }

// Exponential is the exponential distribution with the given rate λ.
type Exponential struct{ Rate float64 }

// Sample implements Dist.
func (e Exponential) Sample(r *rand.Rand) float64 { return r.ExpFloat64() / e.Rate }

// Mean implements Dist.
func (e Exponential) Mean() float64 { return 1 / e.Rate }

// String implements Dist.
func (e Exponential) String() string { return fmt.Sprintf("exp(λ=%g)", e.Rate) }

// Weibull is the Weibull distribution with scale Lambda and shape K, used
// by the RANDOM BoT class's task inter-arrival process
// (Table 3: weib(λ=91.98, k=0.57), following Minh & Wolters).
type Weibull struct{ Lambda, K float64 }

// Sample implements Dist (inverse-CDF sampling).
func (w Weibull) Sample(r *rand.Rand) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return w.Lambda * math.Pow(-math.Log(u), 1/w.K)
}

// Mean implements Dist.
func (w Weibull) Mean() float64 { return w.Lambda * math.Gamma(1+1/w.K) }

// String implements Dist.
func (w Weibull) String() string { return fmt.Sprintf("weib(λ=%g,k=%g)", w.Lambda, w.K) }

// Quantile returns the Weibull inverse CDF at p in (0,1).
func (w Weibull) Quantile(p float64) float64 {
	return w.Lambda * math.Pow(-math.Log(1-p), 1/w.K)
}
