// Package plot renders the evaluation's figures as standalone SVG files:
// line charts for the CDF/CCDF figures (Fig 2, Fig 4) and grouped bar
// charts for the comparison figures (Fig 5, Fig 6). Pure stdlib, no
// styling dependencies — the same role gnuplot plays for the paper.
package plot

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Series is one named line of a chart.
type Series struct {
	Name   string
	X, Y   []float64
	Dashed bool
}

// palette cycles through distinguishable stroke colors.
var palette = []string{
	"#1f77b4", "#d62728", "#2ca02c", "#ff7f0e", "#9467bd", "#8c564b",
	"#e377c2", "#7f7f7f", "#bcbd22", "#17becf",
}

const (
	width   = 720.0
	height  = 440.0
	marginL = 70.0
	marginR = 24.0
	marginT = 40.0
	marginB = 56.0
)

// LineChart is a multi-series XY chart with linear or log-10 X axis.
type LineChart struct {
	Title  string
	XLabel string
	YLabel string
	LogX   bool
	Series []Series
	// YMin/YMax fix the Y range; both zero = auto.
	YMin, YMax float64
}

// WriteSVG renders the chart.
func (c LineChart) WriteSVG(w io.Writer) error {
	var xs, ys []float64
	for _, s := range c.Series {
		xs = append(xs, s.X...)
		ys = append(ys, s.Y...)
	}
	if len(xs) == 0 {
		return fmt.Errorf("plot: empty chart %q", c.Title)
	}
	xmin, xmax := minMax(xs)
	ymin, ymax := minMax(ys)
	if c.YMin != 0 || c.YMax != 0 {
		ymin, ymax = c.YMin, c.YMax
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	tx := func(x float64) float64 {
		if c.LogX {
			lx, lmin, lmax := math.Log10(math.Max(x, 1e-12)), math.Log10(math.Max(xmin, 1e-12)), math.Log10(math.Max(xmax, 1e-12))
			return marginL + (lx-lmin)/(lmax-lmin)*(width-marginL-marginR)
		}
		return marginL + (x-xmin)/(xmax-xmin)*(width-marginL-marginR)
	}
	ty := func(y float64) float64 {
		return height - marginB - (y-ymin)/(ymax-ymin)*(height-marginT-marginB)
	}

	var b strings.Builder
	header(&b, c.Title)
	axes(&b, c.XLabel, c.YLabel)
	// Y grid lines + labels at 5 ticks.
	for i := 0; i <= 4; i++ {
		y := ymin + float64(i)/4*(ymax-ymin)
		py := ty(y)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#ddd"/>`+"\n",
			marginL, py, width-marginR, py)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="11" text-anchor="end">%.2g</text>`+"\n",
			marginL-6, py+4, y)
	}
	// X ticks.
	for i := 0; i <= 4; i++ {
		var x float64
		if c.LogX {
			lmin, lmax := math.Log10(math.Max(xmin, 1e-12)), math.Log10(math.Max(xmax, 1e-12))
			x = math.Pow(10, lmin+float64(i)/4*(lmax-lmin))
		} else {
			x = xmin + float64(i)/4*(xmax-xmin)
		}
		px := tx(x)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="11" text-anchor="middle">%.3g</text>`+"\n",
			px, height-marginB+16, x)
	}
	// Series.
	for i, s := range c.Series {
		color := palette[i%len(palette)]
		var pts []string
		for j := range s.X {
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", tx(s.X[j]), ty(s.Y[j])))
		}
		dash := ""
		if s.Dashed {
			dash = ` stroke-dasharray="6,4"`
		}
		fmt.Fprintf(&b, `<polyline fill="none" stroke="%s" stroke-width="2"%s points="%s"/>`+"\n",
			color, dash, strings.Join(pts, " "))
		// Legend entry.
		lx, ly := width-marginR-150, marginT+14*float64(i)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="2"%s/>`+"\n",
			lx, ly, lx+22, ly, color, dash)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="11">%s</text>`+"\n", lx+28, ly+4, esc(s.Name))
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// BarGroup is one cluster of bars sharing an X label.
type BarGroup struct {
	Label  string
	Values []float64
}

// BarChart is a grouped bar chart (Fig 5/6 style).
type BarChart struct {
	Title  string
	YLabel string
	Bars   []string // names of the per-group bars
	Groups []BarGroup
	LogY   bool
}

// WriteSVG renders the chart.
func (c BarChart) WriteSVG(w io.Writer) error {
	if len(c.Groups) == 0 || len(c.Bars) == 0 {
		return fmt.Errorf("plot: empty bar chart %q", c.Title)
	}
	ymax := 0.0
	for _, g := range c.Groups {
		for _, v := range g.Values {
			if v > ymax {
				ymax = v
			}
		}
	}
	if ymax == 0 {
		ymax = 1
	}
	scale := func(v float64) float64 {
		if c.LogY {
			return math.Log10(1+v) / math.Log10(1+ymax)
		}
		return v / ymax
	}
	var b strings.Builder
	header(&b, c.Title)
	axes(&b, "", c.YLabel)
	plotW := width - marginL - marginR
	groupW := plotW / float64(len(c.Groups))
	barW := groupW * 0.8 / float64(len(c.Bars))
	for gi, g := range c.Groups {
		gx := marginL + float64(gi)*groupW + groupW*0.1
		for bi, v := range g.Values {
			if bi >= len(c.Bars) {
				break
			}
			h := scale(v) * (height - marginT - marginB)
			x := gx + float64(bi)*barW
			y := height - marginB - h
			fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"><title>%s %s: %.4g</title></rect>`+"\n",
				x, y, barW*0.92, h, palette[bi%len(palette)], esc(g.Label), esc(c.Bars[bi]), v)
		}
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="11" text-anchor="middle">%s</text>`+"\n",
			gx+groupW*0.4, height-marginB+16, esc(g.Label))
	}
	for bi, name := range c.Bars {
		lx, ly := width-marginR-150, marginT+14*float64(bi)
		fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="12" height="10" fill="%s"/>`+"\n",
			lx, ly-8, palette[bi%len(palette)])
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="11">%s</text>`+"\n", lx+18, ly, esc(name))
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func header(b *strings.Builder, title string) {
	fmt.Fprintf(b, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" font-family="sans-serif">`+"\n", width, height)
	fmt.Fprintf(b, `<rect width="%.0f" height="%.0f" fill="white"/>`+"\n", width, height)
	fmt.Fprintf(b, `<text x="%.1f" y="22" font-size="14" font-weight="bold">%s</text>`+"\n", marginL, esc(title))
}

func axes(b *strings.Builder, xlabel, ylabel string) {
	fmt.Fprintf(b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="black"/>`+"\n",
		marginL, height-marginB, width-marginR, height-marginB)
	fmt.Fprintf(b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="black"/>`+"\n",
		marginL, marginT, marginL, height-marginB)
	if xlabel != "" {
		fmt.Fprintf(b, `<text x="%.1f" y="%.1f" font-size="12" text-anchor="middle">%s</text>`+"\n",
			(marginL+width-marginR)/2, height-12, esc(xlabel))
	}
	if ylabel != "" {
		fmt.Fprintf(b, `<text x="16" y="%.1f" font-size="12" transform="rotate(-90 16 %.1f)" text-anchor="middle">%s</text>`+"\n",
			(marginT+height-marginB)/2, (marginT+height-marginB)/2, esc(ylabel))
	}
}

func esc(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

func minMax(xs []float64) (float64, float64) {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range xs {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// SortedKeys returns map keys in stable order (helper for chart builders).
func SortedKeys[M ~map[string]V, V any](m M) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
