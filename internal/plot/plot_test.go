package plot

import (
	"bytes"
	"strings"
	"testing"
)

func TestLineChartSVG(t *testing.T) {
	c := LineChart{
		Title: "CDF of tail slowdown", XLabel: "slowdown", YLabel: "fraction",
		LogX: true,
		Series: []Series{
			{Name: "BOINC", X: []float64{1, 2, 5, 10, 100}, Y: []float64{0.1, 0.3, 0.6, 0.8, 1}},
			{Name: "XWHEP", X: []float64{1, 2, 5, 10, 100}, Y: []float64{0.2, 0.5, 0.9, 1, 1}, Dashed: true},
		},
	}
	var buf bytes.Buffer
	if err := c.WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	svg := buf.String()
	for _, want := range []string{"<svg", "</svg>", "polyline", "BOINC", "XWHEP", "stroke-dasharray"} {
		if !strings.Contains(svg, want) {
			t.Errorf("missing %q in SVG", want)
		}
	}
	if strings.Count(svg, "<polyline") != 2 {
		t.Errorf("series count wrong")
	}
}

func TestLineChartEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := (LineChart{Title: "x"}).WriteSVG(&buf); err == nil {
		t.Fatal("empty chart accepted")
	}
}

func TestLineChartDegenerateRanges(t *testing.T) {
	c := LineChart{
		Title:  "flat",
		Series: []Series{{Name: "s", X: []float64{1, 1, 1}, Y: []float64{2, 2, 2}}},
	}
	var buf bytes.Buffer
	if err := c.WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "NaN") {
		t.Fatal("NaN leaked into SVG")
	}
}

func TestBarChartSVG(t *testing.T) {
	c := BarChart{
		Title: "completion time", YLabel: "seconds",
		Bars: []string{"No SpeQuloS", "SpeQuloS"},
		Groups: []BarGroup{
			{Label: "seti", Values: []float64{27679, 13164}},
			{Label: "nd", Values: []float64{85348, 57289}},
		},
	}
	var buf bytes.Buffer
	if err := c.WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	svg := buf.String()
	if strings.Count(svg, "<rect") < 5 { // background + 4 bars + legend
		t.Errorf("bars missing: %d rects", strings.Count(svg, "<rect"))
	}
	for _, want := range []string{"seti", "nd", "SpeQuloS"} {
		if !strings.Contains(svg, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestBarChartValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := (BarChart{Title: "x"}).WriteSVG(&buf); err == nil {
		t.Fatal("empty bar chart accepted")
	}
	// All-zero values must not divide by zero.
	c := BarChart{Title: "z", Bars: []string{"a"}, Groups: []BarGroup{{Label: "g", Values: []float64{0}}}}
	if err := c.WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "NaN") {
		t.Fatal("NaN leaked")
	}
}

func TestEscaping(t *testing.T) {
	c := BarChart{
		Title: `<&">`, YLabel: "y",
		Bars:   []string{"a<b"},
		Groups: []BarGroup{{Label: "g&h", Values: []float64{1}}},
	}
	var buf bytes.Buffer
	if err := c.WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	svg := buf.String()
	if strings.Contains(svg, "<&\">") || strings.Contains(svg, "a<b") {
		t.Fatal("unescaped markup leaked into SVG")
	}
	if !strings.Contains(svg, "&lt;&amp;&quot;&gt;") {
		t.Fatal("escape output wrong")
	}
}

func TestSortedKeys(t *testing.T) {
	keys := SortedKeys(map[string]int{"c": 1, "a": 2, "b": 3})
	if len(keys) != 3 || keys[0] != "a" || keys[2] != "c" {
		t.Fatalf("keys = %v", keys)
	}
}

func TestLogYBars(t *testing.T) {
	c := BarChart{
		Title: "log", YLabel: "t", LogY: true,
		Bars:   []string{"v"},
		Groups: []BarGroup{{Label: "g", Values: []float64{10}}, {Label: "h", Values: []float64{100000}}},
	}
	var buf bytes.Buffer
	if err := c.WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
}
