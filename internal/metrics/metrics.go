// Package metrics computes the QoS metrics of the paper's evaluation: the
// tail characterization of §2.2 (ideal completion time, tail slowdown,
// tail fractions), the Tail Removal Efficiency of §4.2, the execution
// stability of §4.3.2 and the prediction success rate of §4.3.3.
package metrics

import (
	"math"
	"sort"
)

// TailStats characterizes one BoT execution's tail (§2.2, Fig 1).
type TailStats struct {
	Size int
	// CompletionTime is the actual completion time of the BoT.
	CompletionTime float64
	// TC90 is tc(0.9): the elapsed time at which 90% of tasks completed.
	TC90 float64
	// IdealTime is tc(0.9)/0.9, the completion time an infrastructure with
	// constant completion rate would have achieved.
	IdealTime float64
	// Slowdown is CompletionTime/IdealTime ("tail slowdown").
	Slowdown float64
	// TailTasks is the number of tasks completing after IdealTime (the
	// "tail part" of the BoT).
	TailTasks int
	// TailTaskFraction is TailTasks/Size (Table 1, "% of BoT in tail").
	TailTaskFraction float64
	// TailTimeFraction is (CompletionTime − IdealTime)/CompletionTime
	// (Table 1, "% of execution time in tail"; 0 when no tail).
	TailTimeFraction float64
}

// ComputeTail derives the tail statistics from per-task completion times
// (seconds since BoT submission, any order). It returns ok=false for fewer
// than 2 completions.
func ComputeTail(completionTimes []float64) (TailStats, bool) {
	n := len(completionTimes)
	if n < 2 {
		return TailStats{}, false
	}
	times := make([]float64, n)
	copy(times, completionTimes)
	sort.Float64s(times)
	// tc(0.9): completion instant of the ceil(0.9n)-th task.
	idx := int(math.Ceil(0.9*float64(n))) - 1
	if idx < 0 {
		idx = 0
	}
	tc90 := times[idx]
	ideal := tc90 / 0.9
	actual := times[n-1]
	st := TailStats{
		Size:           n,
		CompletionTime: actual,
		TC90:           tc90,
		IdealTime:      ideal,
		Slowdown:       actual / ideal,
	}
	for _, t := range times {
		if t > ideal {
			st.TailTasks++
		}
	}
	st.TailTaskFraction = float64(st.TailTasks) / float64(n)
	if actual > ideal {
		st.TailTimeFraction = (actual - ideal) / actual
	}
	return st, true
}

// TailRemovalEfficiency is the §4.2.1 metric:
//
//	TRE = 1 − (tspeq − tideal)/(tnospeq − tideal)
//
// where tnospeq/tideal come from the paired baseline execution (same seed,
// no SpeQuloS) and tspeq from the SpeQuloS execution. The result is clamped
// to [0, 1]: SpeQuloS beating the ideal time counts as full removal, and a
// slower-than-baseline run as zero. ok is false when the baseline had no
// measurable tail (the metric is undefined).
func TailRemovalEfficiency(tspeq, tnospeq, tideal float64) (float64, bool) {
	denom := tnospeq - tideal
	if denom <= 1e-9 {
		return 0, false
	}
	tre := 1 - (tspeq-tideal)/denom
	if tre < 0 {
		tre = 0
	}
	if tre > 1 {
		tre = 1
	}
	return tre, true
}

// NormalizeByMean divides each value by the sample mean — the §4.3.2
// "repartition around the average" stability transform. A nil result means
// the mean was zero or the sample empty.
func NormalizeByMean(values []float64) []float64 {
	if len(values) == 0 {
		return nil
	}
	var sum float64
	for _, v := range values {
		sum += v
	}
	mean := sum / float64(len(values))
	if mean == 0 {
		return nil
	}
	out := make([]float64, len(values))
	for i, v := range values {
		out[i] = v / mean
	}
	return out
}

// PredictionSuccess reports whether an actual completion time falls within
// ±tolerance of the predicted one (§3.4, Table 4).
func PredictionSuccess(predicted, actual, tolerance float64) bool {
	if predicted <= 0 {
		return false
	}
	return math.Abs(actual-predicted) <= tolerance*predicted
}

// CompletionSeries converts per-task completion times into the cumulative
// completion-ratio curve of Fig 1: points (t_i, i/n) on sorted times.
type SeriesPoint struct{ T, Ratio float64 }

// CompletionSeries builds the Fig 1 curve.
func CompletionSeries(completionTimes []float64) []SeriesPoint {
	n := len(completionTimes)
	if n == 0 {
		return nil
	}
	times := make([]float64, n)
	copy(times, completionTimes)
	sort.Float64s(times)
	out := make([]SeriesPoint, n)
	for i, t := range times {
		out[i] = SeriesPoint{T: t, Ratio: float64(i+1) / float64(n)}
	}
	return out
}
