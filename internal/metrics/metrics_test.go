package metrics

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestComputeTailNoTail(t *testing.T) {
	// Perfectly linear completion: 10 tasks at 10,20,...,100.
	times := make([]float64, 10)
	for i := range times {
		times[i] = float64(i+1) * 10
	}
	st, ok := ComputeTail(times)
	if !ok {
		t.Fatal("not ok")
	}
	if st.TC90 != 90 {
		t.Fatalf("tc90 = %v, want 90", st.TC90)
	}
	if st.IdealTime != 100 {
		t.Fatalf("ideal = %v, want 100", st.IdealTime)
	}
	if st.Slowdown != 1 {
		t.Fatalf("slowdown = %v, want 1 (no tail)", st.Slowdown)
	}
	if st.TailTasks != 0 || st.TailTimeFraction != 0 {
		t.Fatalf("phantom tail: %+v", st)
	}
}

func TestComputeTailWithTail(t *testing.T) {
	// 9 tasks by t=90, the last straggles to t=400.
	times := []float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 400}
	st, _ := ComputeTail(times)
	if st.TC90 != 90 || st.IdealTime != 100 {
		t.Fatalf("tc90=%v ideal=%v", st.TC90, st.IdealTime)
	}
	if st.Slowdown != 4 {
		t.Fatalf("slowdown = %v, want 4", st.Slowdown)
	}
	if st.TailTasks != 1 {
		t.Fatalf("tail tasks = %d, want 1", st.TailTasks)
	}
	if math.Abs(st.TailTimeFraction-0.75) > 1e-9 {
		t.Fatalf("tail time fraction = %v, want 0.75", st.TailTimeFraction)
	}
	if st.TailTaskFraction != 0.1 {
		t.Fatalf("tail task fraction = %v, want 0.1", st.TailTaskFraction)
	}
}

func TestComputeTailUnsortedInput(t *testing.T) {
	a, _ := ComputeTail([]float64{400, 90, 10, 50, 30, 70, 20, 80, 60, 40})
	b, _ := ComputeTail([]float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 400})
	if a != b {
		t.Fatal("order sensitivity in ComputeTail")
	}
}

func TestComputeTailDegenerate(t *testing.T) {
	if _, ok := ComputeTail(nil); ok {
		t.Fatal("empty accepted")
	}
	if _, ok := ComputeTail([]float64{5}); ok {
		t.Fatal("singleton accepted")
	}
}

// Property: slowdown ≥ 0.9 always (actual ≥ tc90 = 0.9·ideal), and tail
// fractions are in [0,1].
func TestTailBoundsProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) < 2 {
			return true
		}
		times := make([]float64, len(raw))
		for i, v := range raw {
			times[i] = float64(v%1000000) + 1
		}
		st, ok := ComputeTail(times)
		if !ok {
			return false
		}
		return st.Slowdown >= 0.9-1e-12 &&
			st.TailTaskFraction >= 0 && st.TailTaskFraction <= 1 &&
			st.TailTimeFraction >= 0 && st.TailTimeFraction < 1 &&
			st.IdealTime > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTailRemovalEfficiency(t *testing.T) {
	// Baseline 400 vs ideal 100; SpeQuloS brings it to 100 → full removal.
	if tre, ok := TailRemovalEfficiency(100, 400, 100); !ok || tre != 1 {
		t.Fatalf("tre = %v,%v want 1", tre, ok)
	}
	// Halving the tail.
	if tre, _ := TailRemovalEfficiency(250, 400, 100); tre != 0.5 {
		t.Fatalf("tre = %v, want 0.5", tre)
	}
	// No improvement.
	if tre, _ := TailRemovalEfficiency(400, 400, 100); tre != 0 {
		t.Fatalf("tre = %v, want 0", tre)
	}
	// Worse than baseline clamps to 0.
	if tre, _ := TailRemovalEfficiency(500, 400, 100); tre != 0 {
		t.Fatalf("tre = %v, want 0 (clamped)", tre)
	}
	// Faster than ideal clamps to 1.
	if tre, _ := TailRemovalEfficiency(80, 400, 100); tre != 1 {
		t.Fatalf("tre = %v, want 1 (clamped)", tre)
	}
	// Undefined when baseline has no tail.
	if _, ok := TailRemovalEfficiency(100, 100, 100); ok {
		t.Fatal("tailless baseline should be undefined")
	}
}

func TestNormalizeByMean(t *testing.T) {
	out := NormalizeByMean([]float64{1, 2, 3})
	if len(out) != 3 || out[1] != 1 {
		t.Fatalf("normalized = %v", out)
	}
	var sum float64
	for _, v := range out {
		sum += v
	}
	if math.Abs(sum/3-1) > 1e-12 {
		t.Fatalf("normalized mean = %v, want 1", sum/3)
	}
	if NormalizeByMean(nil) != nil {
		t.Fatal("empty input should return nil")
	}
	if NormalizeByMean([]float64{0, 0}) != nil {
		t.Fatal("zero mean should return nil")
	}
}

func TestPredictionSuccess(t *testing.T) {
	if !PredictionSuccess(100, 100, 0.2) {
		t.Fatal("exact prediction failed")
	}
	if !PredictionSuccess(100, 119, 0.2) || !PredictionSuccess(100, 81, 0.2) {
		t.Fatal("within-band prediction failed")
	}
	if PredictionSuccess(100, 121, 0.2) || PredictionSuccess(100, 79, 0.2) {
		t.Fatal("out-of-band prediction succeeded")
	}
	if PredictionSuccess(0, 10, 0.2) {
		t.Fatal("non-positive prediction succeeded")
	}
}

func TestCompletionSeries(t *testing.T) {
	pts := CompletionSeries([]float64{30, 10, 20})
	if len(pts) != 3 {
		t.Fatal("length wrong")
	}
	if pts[0].T != 10 || pts[0].Ratio != 1.0/3 {
		t.Fatalf("first point %+v", pts[0])
	}
	if pts[2].T != 30 || pts[2].Ratio != 1 {
		t.Fatalf("last point %+v", pts[2])
	}
	if !sort.SliceIsSorted(pts, func(i, j int) bool { return pts[i].T < pts[j].T }) {
		t.Fatal("series unsorted")
	}
	if CompletionSeries(nil) != nil {
		t.Fatal("empty series should be nil")
	}
}
