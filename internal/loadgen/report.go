package loadgen

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"spequlos/internal/core"
	"spequlos/internal/service"
)

// opClass names a request class in the report.
type opClass string

// The request classes the harness measures. Status, credit and order
// requests hit the gated stack socket; progress requests hit the DG socket;
// ticks are the Scheduler monitor loop's POST /scheduler/step calls.
const (
	opStatus   opClass = "status"
	opProgress opClass = "progress"
	opCredit   opClass = "credit"
	opOrder    opClass = "order"
	opTick     opClass = "tick"
)

// maxErrorSamples bounds how many unexpected-error messages a report keeps.
const maxErrorSamples = 12

// recorder accumulates per-request observations from all client goroutines.
type recorder struct {
	mu         sync.Mutex
	lat        map[opClass][]float64 // admitted-request latencies, ms
	requests   int64                 // every measured request, any outcome
	throttled  int64                 // 429 responses (expected under burst)
	unexpected int64
	samples    []string
	ticks      []float64 // tick durations, ms
	overruns   int64     // ticks slower than the tick period
}

func newRecorder(clients int) *recorder {
	return &recorder{lat: map[opClass][]float64{}}
}

// request records one stack-socket request. 2xx is success, 429 is expected
// throttling; anything else — including transport errors — is an unexpected
// error. Latency is recorded for admitted responses only, so a wall of cheap
// 429s cannot flatter the percentiles.
func (r *recorder) request(idx int, op opClass, tier core.Tier, start time.Time, resp *http.Response, err error) {
	ms := float64(time.Since(start)) / float64(time.Millisecond)
	var status int
	if err == nil {
		status = resp.StatusCode
		drainClose(resp)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.requests++
	if err != nil {
		r.fail(fmt.Sprintf("%s (%s, client %d): %v", op, tier.OrFree(), idx, err))
		return
	}
	switch {
	case status == http.StatusTooManyRequests:
		r.throttled++
	case status >= 200 && status < 300:
		r.lat[op] = append(r.lat[op], ms)
	default:
		r.fail(fmt.Sprintf("%s (%s, client %d): HTTP %d", op, tier.OrFree(), idx, status))
	}
}

// dgRequest records one DG-socket aggregated progress query. The DG socket
// is ungated, so any error at all is unexpected.
func (r *recorder) dgRequest(idx int, start time.Time, err error) {
	ms := float64(time.Since(start)) / float64(time.Millisecond)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.requests++
	if err != nil {
		r.fail(fmt.Sprintf("progress (client %d): %v", idx, err))
		return
	}
	r.lat[opProgress] = append(r.lat[opProgress], ms)
}

// tick records one Scheduler monitor tick; msg is non-empty when the tick
// itself failed.
func (r *recorder) tick(dur, period time.Duration, msg string) {
	ms := float64(dur) / float64(time.Millisecond)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.lat[opTick] = append(r.lat[opTick], ms)
	r.ticks = append(r.ticks, ms)
	if dur > period {
		r.overruns++
	}
	if msg != "" {
		r.fail(msg)
	}
}

// fail counts one unexpected error, keeping the first few messages as
// samples. Callers hold r.mu.
func (r *recorder) fail(msg string) {
	r.unexpected++
	if len(r.samples) < maxErrorSamples {
		r.samples = append(r.samples, msg)
	}
}

// LatencyStats summarizes one request class's admitted-request latencies.
type LatencyStats struct {
	// Count is the number of admitted (2xx) requests in the class.
	Count int `json:"count"`
	// P50Ms, P95Ms and P99Ms are latency quantiles in milliseconds.
	P50Ms float64 `json:"p50_ms"`
	P95Ms float64 `json:"p95_ms"`
	P99Ms float64 `json:"p99_ms"`
	// MaxMs is the slowest admitted request in milliseconds.
	MaxMs float64 `json:"max_ms"`
}

// statsOf computes LatencyStats over a sample set (consumed: sorted in
// place).
func statsOf(ms []float64) LatencyStats {
	if len(ms) == 0 {
		return LatencyStats{}
	}
	sort.Float64s(ms)
	return LatencyStats{
		Count: len(ms),
		P50Ms: quantile(ms, 0.50),
		P95Ms: quantile(ms, 0.95),
		P99Ms: quantile(ms, 0.99),
		MaxMs: ms[len(ms)-1],
	}
}

// quantile returns the q-th quantile of sorted samples (nearest-rank).
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// Report is the result of one load run.
type Report struct {
	// Profile and Clients echo the run configuration.
	Profile string `json:"profile"`
	Clients int    `json:"clients"`
	// DurationSec is the configured load window in seconds.
	DurationSec float64 `json:"duration_sec"`
	// Requests is every measured request: stack socket, DG socket and ticks.
	Requests int64 `json:"requests"`
	// RequestsPerSec is Requests over the load window.
	RequestsPerSec float64 `json:"requests_per_sec"`
	// Overall aggregates admitted-request latency across every class.
	Overall LatencyStats `json:"overall"`
	// Latency breaks admitted-request latency down per request class.
	Latency map[string]LatencyStats `json:"latency"`
	// Throttled429 counts rate-limited responses — expected under burst.
	Throttled429 int64 `json:"throttled_429"`
	// ThrottledByTier splits the 429s by the keys' service class; a healthy
	// run throttles the free tier and leaves enterprise at zero.
	ThrottledByTier map[string]int64 `json:"throttled_by_tier"`
	// UnexpectedErrors counts transport errors and non-2xx/non-429 statuses.
	// The acceptance gate for a healthy stack is zero.
	UnexpectedErrors int64 `json:"unexpected_errors"`
	// ErrorRate is UnexpectedErrors over Requests.
	ErrorRate float64 `json:"error_rate"`
	// ErrorSamples holds the first few unexpected-error messages.
	ErrorSamples []string `json:"error_samples,omitempty"`
	// Ticks is how many Scheduler monitor ticks ran over the socket.
	Ticks int `json:"ticks"`
	// TickOverruns counts ticks slower than the tick period, and
	// TickOverrunRate is their fraction.
	TickOverruns    int64   `json:"tick_overruns"`
	TickOverrunRate float64 `json:"tick_overrun_rate"`
	// BatchesOrdered and BatchesCompleted count QoS orders placed and
	// batches the Scheduler finalized end-to-end during the run.
	BatchesOrdered   int `json:"batches_ordered"`
	BatchesCompleted int `json:"batches_completed"`
	// GateStats is the auth gateway's aggregate admission counters.
	GateStats service.GateMetrics `json:"gate_stats"`
}

// report assembles the Report from the recorder's accumulated observations.
func (r *recorder) report(cfg Config) *Report {
	r.mu.Lock()
	defer r.mu.Unlock()
	rep := &Report{
		Profile:          cfg.Profile,
		Clients:          cfg.Clients,
		DurationSec:      cfg.Duration.Seconds(),
		Requests:         r.requests,
		Latency:          map[string]LatencyStats{},
		Throttled429:     r.throttled,
		UnexpectedErrors: r.unexpected,
		ErrorSamples:     append([]string(nil), r.samples...),
		Ticks:            len(r.ticks),
		TickOverruns:     r.overruns,
	}
	var all []float64
	for op, ms := range r.lat {
		rep.Latency[string(op)] = statsOf(ms)
		if op != opTick { // ticks are a control loop, not client traffic
			all = append(all, ms...)
		}
	}
	rep.Overall = statsOf(all)
	if cfg.Duration > 0 {
		rep.RequestsPerSec = float64(r.requests) / cfg.Duration.Seconds()
	}
	if r.requests > 0 {
		rep.ErrorRate = float64(r.unexpected) / float64(r.requests)
	}
	if len(r.ticks) > 0 {
		rep.TickOverrunRate = float64(r.overruns) / float64(len(r.ticks))
	}
	return rep
}

// benchReport is the BENCH_load.json shape: the latest run's headline
// metrics at the top level plus an accumulated trajectory, matching the
// repo's other BENCH_*.json files.
type benchReport struct {
	Report
	// Trajectory accumulates one record per run of the same report file.
	Trajectory []trajectoryPoint `json:"trajectory,omitempty"`
}

// trajectoryPoint is one load run's record in the trajectory.
type trajectoryPoint struct {
	// RecordedAt is the run's wall-clock timestamp (RFC 3339).
	RecordedAt string `json:"recorded_at,omitempty"`
	// Label tags the run (a PR number, git rev, or profile note).
	Label string `json:"label,omitempty"`
	// Profile, Clients, RequestsPerSec, P99Ms, ErrorRate, Throttled429 and
	// TickOverrunRate are the run's headline metrics.
	Profile         string  `json:"profile"`
	Clients         int     `json:"clients"`
	RequestsPerSec  float64 `json:"requests_per_sec"`
	P99Ms           float64 `json:"p99_ms"`
	ErrorRate       float64 `json:"error_rate"`
	Throttled429    int64   `json:"throttled_429"`
	TickOverrunRate float64 `json:"tick_overrun_rate"`
}

// WriteBench writes (or extends) a BENCH_load.json report: the new run's
// metrics become the headline and one trajectory record is appended, so the
// file accumulates a history across sessions like the other BENCH files.
func WriteBench(path, label string, rep *Report) error {
	br := benchReport{Report: *rep}
	if prev, err := ReadBench(path); err == nil {
		br.Trajectory = prev.Trajectory
		if len(br.Trajectory) == 0 {
			br.Trajectory = append(br.Trajectory, trajectoryPoint{
				Label:           "pre-trajectory baseline",
				Profile:         prev.Profile,
				Clients:         prev.Clients,
				RequestsPerSec:  prev.RequestsPerSec,
				P99Ms:           prev.Overall.P99Ms,
				ErrorRate:       prev.ErrorRate,
				Throttled429:    prev.Throttled429,
				TickOverrunRate: prev.TickOverrunRate,
			})
		}
	}
	br.Trajectory = append(br.Trajectory, trajectoryPoint{
		RecordedAt:      time.Now().UTC().Format(time.RFC3339),
		Label:           label,
		Profile:         rep.Profile,
		Clients:         rep.Clients,
		RequestsPerSec:  rep.RequestsPerSec,
		P99Ms:           rep.Overall.P99Ms,
		ErrorRate:       rep.ErrorRate,
		Throttled429:    rep.Throttled429,
		TickOverrunRate: rep.TickOverrunRate,
	})
	data, err := json.MarshalIndent(br, "", " ")
	if err != nil {
		return err
	}
	// Atomic write: the trajectory is accumulated history; a truncating
	// write that fails midway must not destroy it.
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// ReadBench loads a BENCH_load.json report, e.g. as a CI gate baseline.
func ReadBench(path string) (*benchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var br benchReport
	if err := json.Unmarshal(data, &br); err != nil {
		return nil, fmt.Errorf("bench report %s: %w", path, err)
	}
	return &br, nil
}

// Baseline is a prior run's gate-relevant metrics, read from a committed
// BENCH_load.json.
type Baseline struct {
	// P99Ms is the baseline overall p99 latency.
	P99Ms float64
	// ErrorRate is the baseline unexpected-error rate.
	ErrorRate float64
}

// ReadBaseline extracts the gate baseline from a BENCH_load.json file.
func ReadBaseline(path string) (Baseline, error) {
	br, err := ReadBench(path)
	if err != nil {
		return Baseline{}, err
	}
	return Baseline{P99Ms: br.Overall.P99Ms, ErrorRate: br.ErrorRate}, nil
}

// Gate checks a run against a baseline: unexpected errors must stay at
// zero (matching the baseline's acceptance bar) and overall p99 must stay
// within factor× the baseline p99, floored at floorMs to absorb shared-CI
// noise on sub-millisecond baselines. A nil error means the gate passed.
func (rep *Report) Gate(b Baseline, factor, floorMs float64) error {
	var fails []string
	if rep.UnexpectedErrors > 0 {
		fails = append(fails, fmt.Sprintf("%d unexpected errors (want 0; first: %s)",
			rep.UnexpectedErrors, strings.Join(rep.ErrorSamples, "; ")))
	}
	limit := b.P99Ms * factor
	if limit < floorMs {
		limit = floorMs
	}
	if rep.Overall.P99Ms > limit {
		fails = append(fails, fmt.Sprintf("overall p99 %.1fms exceeds gate %.1fms (baseline %.1fms × %.1f)",
			rep.Overall.P99Ms, limit, b.P99Ms, factor))
	}
	if len(fails) == 0 {
		return nil
	}
	return fmt.Errorf("load gate failed: %s", strings.Join(fails, "; "))
}

// Summary renders the report as the human-readable run digest.
func (rep *Report) Summary() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "profile %s: %d clients, %.1fs, %d requests (%.0f req/s)\n",
		rep.Profile, rep.Clients, rep.DurationSec, rep.Requests, rep.RequestsPerSec)
	fmt.Fprintf(&sb, "latency overall: p50 %.2fms p95 %.2fms p99 %.2fms max %.2fms (%d admitted)\n",
		rep.Overall.P50Ms, rep.Overall.P95Ms, rep.Overall.P99Ms, rep.Overall.MaxMs, rep.Overall.Count)
	ops := make([]string, 0, len(rep.Latency))
	for op := range rep.Latency {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	for _, op := range ops {
		s := rep.Latency[op]
		fmt.Fprintf(&sb, "  %-8s p50 %.2fms p95 %.2fms p99 %.2fms (%d)\n", op, s.P50Ms, s.P95Ms, s.P99Ms, s.Count)
	}
	fmt.Fprintf(&sb, "throttled 429s: %d (by tier: %v)\n", rep.Throttled429, rep.ThrottledByTier)
	fmt.Fprintf(&sb, "unexpected errors: %d (rate %.4f)\n", rep.UnexpectedErrors, rep.ErrorRate)
	for _, s := range rep.ErrorSamples {
		fmt.Fprintf(&sb, "  ! %s\n", s)
	}
	fmt.Fprintf(&sb, "scheduler ticks: %d, overruns %d (rate %.4f)\n", rep.Ticks, rep.TickOverruns, rep.TickOverrunRate)
	fmt.Fprintf(&sb, "batches: %d ordered, %d completed\n", rep.BatchesOrdered, rep.BatchesCompleted)
	fmt.Fprintf(&sb, "gate: %d allowed, %d unauthorized, %d throttled\n",
		rep.GateStats.Allowed, rep.GateStats.Unauthorized, rep.GateStats.Throttled)
	return sb.String()
}

// stringsReader wraps a request body string.
func stringsReader(s string) io.Reader { return strings.NewReader(s) }

// drainClose discards and closes a response body so the transport can reuse
// the connection.
func drainClose(resp *http.Response) {
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
}

// decodeInto decodes a JSON response body into v, then drains and closes it.
func decodeInto(resp *http.Response, v any) {
	json.NewDecoder(resp.Body).Decode(v) //nolint:errcheck
	drainClose(resp)
}
