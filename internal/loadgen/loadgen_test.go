package loadgen

import (
	"math"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"spequlos/internal/core"
)

// testConfig is a CI-sized run: short enough for the race detector on a
// shared runner, long enough that every request class fires, free-tier
// bursts hit the rate limiter, and at least one monitor tick lands.
func testConfig() Config {
	cfg := Smoke()
	cfg.Duration = 1500 * time.Millisecond
	cfg.BatchDuration = 700 * time.Millisecond
	cfg.RatePerSec = 300
	return cfg
}

// TestRunSmoke drives the full gated stack over real loopback sockets and
// pins the PR's acceptance bar: zero unexpected errors, free-tier 429s
// under burst, and an untouched enterprise tier.
func TestRunSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("socket load run in -short mode")
	}
	rep, err := Run(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", rep.Summary())

	if rep.UnexpectedErrors != 0 {
		t.Errorf("unexpected errors %d, want 0; samples: %v", rep.UnexpectedErrors, rep.ErrorSamples)
	}
	if rep.Requests == 0 || rep.Overall.Count == 0 {
		t.Fatalf("no admitted traffic measured: %+v", rep)
	}
	if rep.Overall.P50Ms > rep.Overall.P99Ms || rep.Overall.P99Ms > rep.Overall.MaxMs {
		t.Errorf("non-monotone quantiles: %+v", rep.Overall)
	}

	// Tiered throttling end-to-end: the unpaced free tier must draw 429s
	// while the paced enterprise tier rides under its weight-derived limit.
	if rep.ThrottledByTier[string(core.TierFree)] == 0 {
		t.Errorf("free tier drew no 429s under burst: %+v", rep.ThrottledByTier)
	}
	if n := rep.ThrottledByTier[string(core.TierEnterprise)]; n != 0 {
		t.Errorf("enterprise tier was throttled %d times, want 0", n)
	}
	if rep.Throttled429 == 0 || rep.GateStats.Throttled == 0 {
		t.Errorf("throttling not visible in gate stats: %+v", rep.GateStats)
	}
	if rep.GateStats.Unauthorized != 0 {
		t.Errorf("harness clients drew %d 401s, want 0", rep.GateStats.Unauthorized)
	}

	// The QoS loop actually turned: orders were placed and the monitor
	// ticked over the socket.
	if rep.BatchesOrdered == 0 {
		t.Error("no QoS batches ordered")
	}
	if rep.Ticks == 0 {
		t.Error("no scheduler ticks ran")
	}
	for _, op := range []string{"status", "credit", "order", "progress", "tick"} {
		if rep.Latency[op].Count == 0 {
			t.Errorf("request class %q saw no admitted traffic", op)
		}
	}
}

// TestRunRejectsBadConfig pins the argument validation.
func TestRunRejectsBadConfig(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("zero config accepted")
	}
}

// TestQuantile pins the nearest-rank quantile on a known sample set.
func TestQuantile(t *testing.T) {
	s := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	for _, tc := range []struct {
		q    float64
		want float64
	}{{0.50, 5}, {0.95, 10}, {0.99, 10}, {0.10, 1}} {
		if got := quantile(s, tc.q); got != tc.want {
			t.Errorf("quantile(%.2f) = %g, want %g", tc.q, got, tc.want)
		}
	}
	if got := quantile(nil, 0.5); got != 0 {
		t.Errorf("quantile(nil) = %g, want 0", got)
	}
}

// TestStatsOfEmpty pins the zero-sample LatencyStats.
func TestStatsOfEmpty(t *testing.T) {
	if s := statsOf(nil); s.Count != 0 || s.P99Ms != 0 {
		t.Errorf("statsOf(nil) = %+v", s)
	}
}

// TestGate pins the CI gate: errors always fail, p99 fails only beyond
// factor× baseline with the noise floor applied.
func TestGate(t *testing.T) {
	base := Baseline{P99Ms: 10}
	ok := &Report{Overall: LatencyStats{P99Ms: 25}}
	if err := ok.Gate(base, 3, 50); err != nil {
		t.Errorf("within-floor run failed gate: %v", err)
	}
	slow := &Report{Overall: LatencyStats{P99Ms: 80}}
	if err := slow.Gate(base, 3, 50); err == nil {
		t.Error("slow run passed gate")
	} else if !strings.Contains(err.Error(), "p99") {
		t.Errorf("gate error does not name p99: %v", err)
	}
	errored := &Report{UnexpectedErrors: 2, ErrorSamples: []string{"order: HTTP 500"}}
	if err := errored.Gate(base, 3, 50); err == nil {
		t.Error("errored run passed gate")
	} else if !strings.Contains(err.Error(), "HTTP 500") {
		t.Errorf("gate error drops the sample: %v", err)
	}
	inf := &Report{Overall: LatencyStats{P99Ms: math.Inf(1)}}
	if err := inf.Gate(base, 3, 50); err == nil {
		t.Error("infinite p99 passed gate")
	}
}

// TestBenchRoundTrip pins the BENCH_load.json trajectory accumulation:
// each write keeps history and appends one record.
func TestBenchRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_load.json")
	r1 := &Report{Profile: "smoke", Clients: 8, Overall: LatencyStats{P99Ms: 4.2}}
	if err := WriteBench(path, "run-1", r1); err != nil {
		t.Fatal(err)
	}
	r2 := &Report{Profile: "stress", Clients: 32, Overall: LatencyStats{P99Ms: 9.9}}
	if err := WriteBench(path, "run-2", r2); err != nil {
		t.Fatal(err)
	}
	br, err := ReadBench(path)
	if err != nil {
		t.Fatal(err)
	}
	if br.Profile != "stress" || br.Overall.P99Ms != 9.9 {
		t.Errorf("headline is not the latest run: %+v", br.Report)
	}
	if len(br.Trajectory) != 2 {
		t.Fatalf("trajectory has %d records, want 2", len(br.Trajectory))
	}
	if br.Trajectory[0].Label != "run-1" || br.Trajectory[1].Label != "run-2" {
		t.Errorf("trajectory order wrong: %+v", br.Trajectory)
	}
	b, err := ReadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if b.P99Ms != 9.9 {
		t.Errorf("baseline p99 %g, want 9.9", b.P99Ms)
	}
}
