// Package loadgen is the socket-level load harness for the deployable
// SpeQuloS stack: it boots all four service modules behind the auth gateway
// on a real loopback TCP socket, a Desktop-Grid gateway speaking the emul
// wire format on a second socket, and drives them with concurrent tiered
// clients at a configurable request mix — QoS orders, status polls,
// progress-batch queries, credit operations — while the Scheduler's monitor
// loop ticks over the same socket. It reports p50/p95/p99 request latency
// per operation, the unexpected-error rate, per-tier 429 throttling, and
// Scheduler tick overrun, and writes the result as a BENCH_load.json
// trajectory. The conformance harness (internal/emul) proves the stack
// DECIDES correctly; this package measures whether it SURVIVES production
// churn: stress-scale concurrency, auth, rate limiting and billing all on
// at once.
package loadgen

import (
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"spequlos/internal/cloud"
	"spequlos/internal/core"
	"spequlos/internal/emul"
	"spequlos/internal/middleware"
	"spequlos/internal/service"
)

// Mix weights the request classes each load client draws from.
type Mix struct {
	// Status weights GET /scheduler/qos/{id} polls.
	Status int `json:"status"`
	// Progress weights POST /progress-batch queries on the DG socket.
	Progress int `json:"progress"`
	// Credit weights GET /credit/accounts/{user} lookups.
	Credit int `json:"credit"`
	// Order weights POST /scheduler/qos registrations (new QoS batches).
	Order int `json:"order"`
}

// DefaultMix is the production-shaped mix: mostly monitoring reads, a
// steady trickle of new QoS orders.
func DefaultMix() Mix { return Mix{Status: 55, Progress: 20, Credit: 15, Order: 10} }

// total sums the mix weights.
func (m Mix) total() int { return m.Status + m.Progress + m.Credit + m.Order }

// Config parameterizes one load run.
type Config struct {
	// Profile names the run in reports ("smoke", "stress", ...).
	Profile string
	// Clients is the number of concurrent load clients. They are assigned
	// tiers round-robin as enterprise, premium, free, free — the 3/5/12-ish
	// shape of the maas-billing stress demo.
	Clients int
	// Duration is how long clients generate load.
	Duration time.Duration
	// TickPeriod is the Scheduler monitor period; ticks run over the socket
	// (POST /scheduler/step) and a tick slower than the period is an
	// overrun.
	TickPeriod time.Duration
	// BatchDuration is how long a DG batch takes to complete (wall time).
	BatchDuration time.Duration
	// MaxOrders caps QoS orders across the run (0 = unlimited). Clients
	// fall back to status polls once the cap is reached.
	MaxOrders int
	// RatePerSec is the gateway's total request budget, shared across tiers
	// by TierPolicy weight (see service.LimitsFromPolicy).
	RatePerSec float64
	// Pace is the per-client think time between requests for enterprise and
	// premium clients. Free clients run unpaced — the deliberate burst that
	// must draw 429s without touching the paid tiers.
	Pace time.Duration
	// Seed makes the request schedule reproducible.
	Seed int64
	// Mix is the request-class distribution (zero value = DefaultMix).
	Mix Mix
	// Verbose logs per-second progress to stderr.
	Verbose bool
}

// Smoke is the CI-sized run: a few seconds of mixed load, small enough for
// a shared single-core runner, still exercising every request class, all
// three tiers, throttling and the full QoS loop.
func Smoke() Config {
	return Config{
		Profile: "smoke", Clients: 8, Duration: 3 * time.Second,
		TickPeriod: 100 * time.Millisecond, BatchDuration: 1500 * time.Millisecond,
		MaxOrders: 48, RatePerSec: 400, Pace: 25 * time.Millisecond, Seed: 1,
	}
}

// Stress is the stress-profile churn run: 32 concurrent clients (the stress
// campaign's batch count), tighter ticks, and an order stream in the
// hundreds.
func Stress() Config {
	return Config{
		Profile: "stress", Clients: 32, Duration: 8 * time.Second,
		TickPeriod: 50 * time.Millisecond, BatchDuration: 3 * time.Second,
		MaxOrders: 256, RatePerSec: 1200, Pace: 10 * time.Millisecond, Seed: 1,
	}
}

// tierOf assigns client i a service class: every 4th client enterprise,
// every 4th premium, the other half free.
func tierOf(i int) core.Tier {
	switch i % 4 {
	case 0:
		return core.TierEnterprise
	case 1:
		return core.TierPremium
	}
	return core.TierFree
}

// keyClient builds an http.Client authenticating as the given key — how
// the stack's module-to-module clients and the load clients present their
// identity through the gate.
func keyClient(key string) *http.Client {
	return service.KeyedClient(key)
}

// loadDG is the wall-clock Desktop Grid behind the DG socket: batches
// progress linearly to completion over BatchDuration, the demoDG shape of
// cmd/spequlosd served over the emul wire format. Workers always report
// busy, so instances bill until the order exhausts or the batch completes.
type loadDG struct {
	duration  time.Duration
	workerURL string

	mu      sync.Mutex
	started map[string]time.Time
	size    int
}

func newLoadDG(batchDuration time.Duration) *loadDG {
	return &loadDG{duration: batchDuration, started: map[string]time.Time{}, size: 100}
}

// Progress implements service.DGGateway.
func (d *loadDG) Progress(batchID string) (middleware.Progress, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.progressLocked(batchID), nil
}

// ProgressBatch implements service.BatchProgressGateway.
func (d *loadDG) ProgressBatch(batchIDs []string) (map[string]middleware.Progress, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make(map[string]middleware.Progress, len(batchIDs))
	for _, id := range batchIDs {
		out[id] = d.progressLocked(id)
	}
	return out, nil
}

func (d *loadDG) progressLocked(batchID string) middleware.Progress {
	start, ok := d.started[batchID]
	if !ok {
		start = time.Now()
		d.started[batchID] = start
	}
	frac := float64(time.Since(start)) / float64(d.duration)
	if frac > 1 {
		frac = 1
	}
	done := int(frac * float64(d.size))
	return middleware.Progress{
		Size: d.size, Arrived: d.size, Completed: done,
		EverAssigned: d.size, Running: d.size - done,
	}
}

// WorkerURL implements service.DGGateway.
func (d *loadDG) WorkerURL() string { return d.workerURL }

// InstanceBusy implements service.WorkerStatusGateway: load workers always
// hold an assignment.
func (d *loadDG) InstanceBusy(string) (bool, error) { return true, nil }

// Run executes one load run: boot the gated stack and the DG gateway on
// loopback sockets, drive them with cfg.Clients concurrent tiered clients
// for cfg.Duration, and return the measured Report. The run itself never
// fails on HTTP-level errors — they land in Report.UnexpectedErrors — so a
// degraded stack produces a report naming the degradation instead of a
// truncated run.
func Run(cfg Config) (*Report, error) {
	if cfg.Clients <= 0 || cfg.Duration <= 0 || cfg.TickPeriod <= 0 {
		return nil, fmt.Errorf("loadgen: Clients, Duration and TickPeriod must be positive")
	}
	if cfg.Mix.total() == 0 {
		cfg.Mix = DefaultMix()
	}
	if cfg.BatchDuration <= 0 {
		cfg.BatchDuration = cfg.Duration / 2
	}

	// DG gateway socket: the wall-clock DG behind the emul wire format.
	dg := newLoadDG(cfg.BatchDuration)
	dgSrv := httptest.NewServer(emul.NewGatewayHandler(dg))
	defer dgSrv.Close()
	dg.workerURL = dgSrv.URL

	// The four modules on one gated socket, spequlosd-shaped: co-located
	// modules still talk HTTP through the gate, authenticating with an
	// unlimited service key (mesh credentials, not tenant quota).
	strategy, err := core.StrategyByLabel("9C-C-R")
	if err != nil {
		return nil, err
	}
	policy := core.DefaultTierPolicy()
	keys := service.NewKeyManager(service.LimitsFromPolicy(policy, cfg.RatePerSec))
	svcKey := service.APIKey{Key: "sk-service", User: "spequlosd", Tier: core.TierEnterprise, Unlimited: true}
	keys.Add(svcKey)

	info := service.NewInformationService(core.NewInformation())
	credit := service.NewCreditService(core.NewCreditSystem())

	var stackURL string
	driver := cloud.NewMockDriver("mock", 50*time.Millisecond, 0.34)
	registry := cloud.NewRegistry(driver)

	// Two-phase wiring: the mux needs the services, the self-addressed
	// clients need the listening URL — so start the server on a mux that
	// is filled in below.
	mux := http.NewServeMux()
	stackSrv := httptest.NewServer(keys.Gate(mux))
	defer stackSrv.Close()
	stackURL = stackSrv.URL

	infoClient := service.NewInformationClient(stackURL + "/information")
	infoClient.HTTP = keyClient(svcKey.Key)
	creditClient := service.NewCreditClient(stackURL + "/credit")
	creditClient.HTTP = keyClient(svcKey.Key)
	oracleClient := service.NewOracleClient(stackURL + "/oracle")
	oracleClient.HTTP = keyClient(svcKey.Key)

	oracle := service.NewOracleService(core.NewOracle(strategy), infoClient)
	dgClient := emul.NewDGClient(dgSrv.URL)
	sched := service.NewSchedulerService(infoClient, creditClient, oracleClient, registry, dgClient)
	sched.TierPolicy = policy

	for prefix, h := range map[string]http.Handler{
		"/information": info, "/credit": credit, "/oracle": oracle, "/scheduler": sched,
	} {
		mux.Handle(prefix+"/", http.StripPrefix(prefix, h))
	}
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, `{"status":"ok"}`)
	})

	// Issue one key per client and fund every user through the gate.
	setup := keyClient(svcKey.Key)
	clientKeys := make([]service.APIKey, cfg.Clients)
	for i := range clientKeys {
		clientKeys[i] = keys.Issue(fmt.Sprintf("u%03d", i), tierOf(i))
		if err := depositHTTP(setup, stackURL, clientKeys[i].User, 100_000); err != nil {
			return nil, fmt.Errorf("loadgen: funding %s: %w", clientKeys[i].User, err)
		}
	}

	rec := newRecorder(cfg.Clients)
	var orders atomic.Int64
	var orderedMu sync.Mutex
	var orderedIDs []string
	if cfg.Verbose {
		fmt.Fprintf(os.Stderr, "loadgen: %s profile, %d clients for %v, gate %g req/s, tick %v\n",
			cfg.Profile, cfg.Clients, cfg.Duration, cfg.RatePerSec, cfg.TickPeriod)
	}

	// Monitor ticker: the daemon loop over the socket, each tick timed.
	stopTick := make(chan struct{})
	var tickWG sync.WaitGroup
	tickWG.Add(1)
	go func() {
		defer tickWG.Done()
		tick := keyClient(svcKey.Key)
		t := time.NewTicker(cfg.TickPeriod)
		defer t.Stop()
		for {
			select {
			case <-stopTick:
				return
			case <-t.C:
				start := time.Now()
				resp, err := tick.Post(stackURL+"/scheduler/step", "application/json", nil)
				dur := time.Since(start)
				if err != nil {
					rec.tick(dur, cfg.TickPeriod, fmt.Sprintf("tick: %v", err))
					continue
				}
				drainClose(resp)
				msg := ""
				if resp.StatusCode != http.StatusOK {
					msg = fmt.Sprintf("tick: HTTP %d", resp.StatusCode)
				}
				if cfg.Verbose && dur > cfg.TickPeriod {
					fmt.Fprintf(os.Stderr, "loadgen: tick overran: %v > %v\n", dur, cfg.TickPeriod)
				}
				rec.tick(dur, cfg.TickPeriod, msg)
			}
		}
	}()

	// Load clients.
	deadline := time.Now().Add(cfg.Duration)
	var wg sync.WaitGroup
	for i := 0; i < cfg.Clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			runClient(&clientCtx{
				cfg: cfg, idx: i, key: clientKeys[i],
				stackURL: stackURL, dgURL: dgSrv.URL,
				rec: rec, orders: &orders, deadline: deadline,
				orderedMu: &orderedMu, orderedIDs: &orderedIDs,
			})
		}(i)
	}
	wg.Wait()
	close(stopTick)
	tickWG.Wait()

	report := rec.report(cfg)
	report.BatchesOrdered = int(orders.Load())
	report.BatchesCompleted = countFinalized(setup, stackURL, orderedIDs)
	report.GateStats = keys.GateStats()
	report.ThrottledByTier = throttledByTier(keys, clientKeys)
	return report, nil
}

// clientCtx is everything one load client needs.
type clientCtx struct {
	cfg        Config
	idx        int
	key        service.APIKey
	stackURL   string
	dgURL      string
	rec        *recorder
	orders     *atomic.Int64
	deadline   time.Time
	orderedMu  *sync.Mutex
	orderedIDs *[]string
}

// runClient is one concurrent load client: it draws operations from the mix
// until the deadline, pacing paid tiers and bursting the free tier.
func runClient(c *clientCtx) {
	rng := rand.New(rand.NewSource(c.cfg.Seed + int64(c.idx)*7919))
	httpc := keyClient(c.key.Key)
	dgc := emul.NewDGClient(c.dgURL)
	var mine []string // batch IDs this client ordered
	seq := 0
	mix := c.cfg.Mix
	total := mix.total()

	order := func() {
		if c.cfg.MaxOrders > 0 && int(c.orders.Load()) >= c.cfg.MaxOrders {
			c.status(httpc, mine, rng)
			return
		}
		seq++
		id := fmt.Sprintf("b-%03d-%04d", c.idx, seq)
		body := fmt.Sprintf(`{"user":%q,"batch_id":%q,"env_key":"load","size":100,"credits":10,"tier":%q,"provider":"mock","image":"img"}`,
			c.key.User, id, c.key.Tier)
		start := time.Now()
		resp, err := httpc.Post(c.stackURL+"/scheduler/qos", "application/json", stringsReader(body))
		c.rec.request(c.idx, opOrder, c.key.Tier, start, resp, err)
		if err == nil && resp.StatusCode == http.StatusCreated {
			c.orders.Add(1)
			mine = append(mine, id)
			c.orderedMu.Lock()
			*c.orderedIDs = append(*c.orderedIDs, id)
			c.orderedMu.Unlock()
		}
	}

	for time.Now().Before(c.deadline) {
		switch p := rng.Intn(total); {
		case p < mix.Status:
			c.status(httpc, mine, rng)
		case p < mix.Status+mix.Progress:
			c.progress(dgc, mine, rng)
		case p < mix.Status+mix.Progress+mix.Credit:
			start := time.Now()
			resp, err := httpc.Get(c.stackURL + "/credit/accounts/" + c.key.User)
			c.rec.request(c.idx, opCredit, c.key.Tier, start, resp, err)
		default:
			order()
		}
		// Paid tiers pace their request stream; the free tier deliberately
		// bursts to prove throttling bites it and nobody else.
		if c.cfg.Pace > 0 && c.key.Tier != core.TierFree {
			time.Sleep(c.cfg.Pace)
		}
	}
}

// status polls one of the client's batches (ordering one first if needed).
func (c *clientCtx) status(httpc *http.Client, mine []string, rng *rand.Rand) {
	if len(mine) == 0 {
		// Nothing to poll yet; a cheap healthz keeps the op count honest.
		start := time.Now()
		resp, err := httpc.Get(c.stackURL + "/healthz")
		c.rec.request(c.idx, opStatus, c.key.Tier, start, resp, err)
		return
	}
	id := mine[rng.Intn(len(mine))]
	start := time.Now()
	resp, err := httpc.Get(c.stackURL + "/scheduler/qos/" + id)
	c.rec.request(c.idx, opStatus, c.key.Tier, start, resp, err)
}

// progress issues an aggregated DG progress query for a sample of the
// client's batches — the middleware-side traffic of the monitor loop.
func (c *clientCtx) progress(dgc *emul.DGClient, mine []string, rng *rand.Rand) {
	ids := mine
	if len(ids) == 0 {
		ids = []string{fmt.Sprintf("warm-%03d", c.idx)}
	} else if len(ids) > 8 {
		at := rng.Intn(len(ids) - 7)
		ids = ids[at : at+8]
	}
	start := time.Now()
	_, err := dgc.ProgressBatch(ids)
	c.rec.dgRequest(c.idx, start, err)
}

// depositHTTP funds a user through the gated credit module.
func depositHTTP(httpc *http.Client, base, user string, credits float64) error {
	body := fmt.Sprintf(`{"user":%q,"credits":%g}`, user, credits)
	resp, err := httpc.Post(base+"/credit/deposit", "application/json", stringsReader(body))
	if err != nil {
		return err
	}
	defer drainClose(resp)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("deposit: HTTP %d", resp.StatusCode)
	}
	return nil
}

// countFinalized queries every ordered batch's status and counts the
// finalized ones — the end-to-end completions of the run.
func countFinalized(httpc *http.Client, base string, ids []string) int {
	done := 0
	for _, id := range ids {
		resp, err := httpc.Get(base + "/scheduler/qos/" + id)
		if err != nil {
			return done
		}
		if resp.StatusCode != http.StatusOK {
			drainClose(resp)
			continue
		}
		var st struct {
			Finalized bool `json:"finalized"`
		}
		decodeInto(resp, &st)
		if st.Finalized {
			done++
		}
	}
	return done
}

// throttledByTier sums per-key throttle counts by service class.
func throttledByTier(km *service.KeyManager, keys []service.APIKey) map[string]int64 {
	out := map[string]int64{}
	for _, k := range keys {
		m := km.Metrics(k.Key)
		out[string(k.Tier.OrFree())] += m.Throttled
	}
	return out
}
