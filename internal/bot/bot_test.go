package bot

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSmallClass(t *testing.T) {
	b := Small.Generate("b1", 1)
	if b.Size() != 1000 {
		t.Errorf("SMALL size = %d, want 1000", b.Size())
	}
	for _, task := range b.Tasks {
		if task.NOps != 3600000 {
			t.Fatalf("SMALL nops = %v, want 3600000", task.NOps)
		}
		if task.Arrival != 0 {
			t.Fatalf("SMALL arrival = %v, want 0", task.Arrival)
		}
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := b.WorkloadCPUHours(); math.Abs(got-1000*11000.0/3600) > 1e-9 {
		t.Errorf("workload = %v cpu·h", got)
	}
}

func TestBigClass(t *testing.T) {
	b := Big.Generate("b2", 1)
	if b.Size() != 10000 {
		t.Errorf("BIG size = %d, want 10000", b.Size())
	}
	if b.Tasks[0].NOps != 60000 {
		t.Errorf("BIG nops = %v", b.Tasks[0].NOps)
	}
	if b.TotalOps() != 10000*60000 {
		t.Errorf("BIG total ops = %v", b.TotalOps())
	}
}

func TestRandomClass(t *testing.T) {
	sizes := make([]float64, 0, 40)
	var nopsMin, nopsMax = math.MaxFloat64, 0.0
	for seed := uint64(0); seed < 40; seed++ {
		b := Random.Generate("r", seed)
		if err := b.Validate(); err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, float64(b.Size()))
		for _, task := range b.Tasks {
			if task.NOps < nopsMin {
				nopsMin = task.NOps
			}
			if task.NOps > nopsMax {
				nopsMax = task.NOps
			}
		}
	}
	var mean float64
	for _, s := range sizes {
		mean += s
	}
	mean /= float64(len(sizes))
	if mean < 850 || mean > 1150 {
		t.Errorf("RANDOM mean size = %v, want ~1000", mean)
	}
	if nopsMax == nopsMin {
		t.Error("RANDOM nops not heterogeneous")
	}
}

func TestRandomArrivalsBursty(t *testing.T) {
	b := Random.Generate("r", 7)
	// Weibull(91.98, 0.57) median ≈ 48 s < ε: at least half the gaps must
	// respect the BoT definition bound.
	within := 0
	gaps := 0
	for i := 1; i < len(b.Tasks); i++ {
		g := b.Tasks[i].Arrival - b.Tasks[i-1].Arrival
		gaps++
		if g < Epsilon {
			within++
		}
	}
	if frac := float64(within) / float64(gaps); frac < 0.4 {
		t.Errorf("only %.0f%% of gaps under ε", frac*100)
	}
	if b.MaxGap() <= 0 {
		t.Error("RANDOM should have non-zero gaps")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Random.Generate("x", 5)
	b := Random.Generate("x", 5)
	if a.Size() != b.Size() {
		t.Fatal("sizes differ for same seed")
	}
	for i := range a.Tasks {
		if a.Tasks[i] != b.Tasks[i] {
			t.Fatal("tasks differ for same seed")
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	bad := []*BoT{
		{ID: "empty"},
		{ID: "nops", Tasks: []Task{{ID: 0, NOps: 0}}},
		{ID: "order", Tasks: []Task{{ID: 0, NOps: 1, Arrival: 10}, {ID: 1, NOps: 1, Arrival: 5}}},
	}
	for _, b := range bad {
		if err := b.Validate(); err == nil {
			t.Errorf("bot %s: corruption not detected", b.ID)
		}
	}
}

// Property: any generated BoT of any class validates, and arrivals are
// sorted with task IDs re-numbered in arrival order.
func TestGenerateInvariantsProperty(t *testing.T) {
	f := func(seed uint64, classIdx uint8) bool {
		c := Classes()[int(classIdx)%3].Scaled(0.05)
		b := c.Generate("p", seed)
		if b.Validate() != nil {
			return false
		}
		for i, task := range b.Tasks {
			if task.ID != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestScaled(t *testing.T) {
	s := Small.Scaled(0.1)
	if b := s.Generate("s", 1); b.Size() != 100 {
		t.Errorf("scaled SMALL size = %d, want 100", b.Size())
	}
	r := Random.Scaled(0.1)
	b := r.Generate("r", 1)
	if b.Size() < 20 || b.Size() > 300 {
		t.Errorf("scaled RANDOM size = %d, want ~100", b.Size())
	}
	// Scaling must not mutate the original.
	if Small.Generate("o", 1).Size() != 1000 {
		t.Error("Scaled mutated the class")
	}
	tiny := Small.Scaled(0.00001)
	if b := tiny.Generate("t", 1); b.Size() < 1 {
		t.Error("scaling below 1 task")
	}
}

func TestClassByName(t *testing.T) {
	for _, name := range []string{"SMALL", "BIG", "RANDOM"} {
		if c, ok := ClassByName(name); !ok || c.Name != name {
			t.Errorf("lookup %s failed", name)
		}
	}
	if _, ok := ClassByName("HUGE"); ok {
		t.Error("bogus class found")
	}
}

func TestMaxGapEmptyAndSingle(t *testing.T) {
	if (&BoT{Tasks: []Task{{NOps: 1}}}).MaxGap() != 0 {
		t.Error("single-task max gap should be 0")
	}
}
