// Package bot defines Bag-of-Tasks workloads. Following the paper (§4.1.2,
// after Iosup et al. and Minh & Wolters), a BoT is an ordered set of
// independent tasks sharing an owner and a group identifier, with bounded
// inter-arrival gaps. Three classes are used throughout the evaluation
// (Table 3):
//
//	SMALL   1000 homogeneous tasks × 3 600 000 instructions, all at t=0
//	BIG     10000 homogeneous tasks × 60 000 instructions, all at t=0
//	RANDOM  ~norm(1000,200) tasks × norm(60000,10000) instructions,
//	        iid Weibull(λ=91.98, k=0.57) arrival times
package bot

import (
	"fmt"
	"math"
	"sort"

	"spequlos/internal/sim"
	"spequlos/internal/stats"
)

// Task is one independent unit of work.
type Task struct {
	ID      int
	NOps    float64 // number of instructions
	Arrival float64 // submission time offset from BoT submission, seconds
}

// BoT is a bag of tasks tagged with a group identifier (batchid in BOINC,
// xwgroup in XWHEP).
type BoT struct {
	ID    string
	Class string
	Tasks []Task
	// WallClockTime is the per-task wall-clock estimate used to express the
	// BoT's workload in CPU time (Table 3 commentary: 11000 s for SMALL,
	// 180 s for BIG, 2200 s for RANDOM).
	WallClockTime float64
}

// Size returns the number of tasks.
func (b *BoT) Size() int { return len(b.Tasks) }

// TotalOps returns the total number of instructions in the BoT.
func (b *BoT) TotalOps() float64 {
	var sum float64
	for _, t := range b.Tasks {
		sum += t.NOps
	}
	return sum
}

// WorkloadCPUHours is the BoT workload expressed in CPU·hours: size times
// the per-task wall-clock estimate (§4.1.3). This is the quantity 10% of
// which the evaluation provisions as Cloud credits.
func (b *BoT) WorkloadCPUHours() float64 {
	return float64(b.Size()) * b.WallClockTime / 3600
}

// Validate checks the structural invariants of the BoT definition:
// non-empty, positive instruction counts, non-decreasing arrivals starting
// at or after zero.
func (b *BoT) Validate() error {
	if len(b.Tasks) == 0 {
		return fmt.Errorf("bot %s: empty", b.ID)
	}
	prev := 0.0
	for i, t := range b.Tasks {
		if t.NOps <= 0 {
			return fmt.Errorf("bot %s: task %d has non-positive nops", b.ID, i)
		}
		if t.Arrival < prev {
			return fmt.Errorf("bot %s: arrivals not ordered at task %d", b.ID, i)
		}
		prev = t.Arrival
	}
	return nil
}

// MaxGap returns the largest inter-arrival gap (ε in the BoT definition;
// the paper's typical bound is 60 s).
func (b *BoT) MaxGap() float64 {
	var max float64
	for i := 1; i < len(b.Tasks); i++ {
		if g := b.Tasks[i].Arrival - b.Tasks[i-1].Arrival; g > max {
			max = g
		}
	}
	return max
}

// Epsilon is the typical inter-arrival bound of the BoT definition (§4.1.2).
const Epsilon = 60.0

// Class describes a BoT workload generator (Table 3).
type Class struct {
	Name          string
	Size          stats.Dist // number of tasks
	NOps          stats.Dist // instructions per task
	Arrival       stats.Dist // task arrival times (iid, sorted); Constant(0) = simultaneous
	WallClockTime float64    // per-task wall-clock estimate, seconds
	Heterogeneous bool
}

// The three classes of Table 3.
var (
	Small = Class{
		Name: "SMALL",
		Size: stats.Constant{Value: 1000},
		NOps: stats.Constant{Value: 3600000},
		// All tasks arrive together.
		Arrival:       stats.Constant{Value: 0},
		WallClockTime: 11000,
	}
	Big = Class{
		Name:          "BIG",
		Size:          stats.Constant{Value: 10000},
		NOps:          stats.Constant{Value: 60000},
		Arrival:       stats.Constant{Value: 0},
		WallClockTime: 180,
	}
	Random = Class{
		Name: "RANDOM",
		Size: stats.TruncatedNormal{Mu: 1000, Sigma: 200, Lo: 10, Hi: 5000},
		NOps: stats.TruncatedNormal{Mu: 60000, Sigma: 10000, Lo: 1000, Hi: 200000},
		// Arrival times are drawn iid from the Weibull repartition
		// function of Table 3 (after Minh & Wolters) and sorted: the BoT
		// builds up over a few minutes, with gaps far below ε.
		Arrival:       stats.Weibull{Lambda: 91.98, K: 0.57},
		WallClockTime: 2200,
		Heterogeneous: true,
	}
)

// Classes returns the three evaluation classes.
func Classes() []Class { return []Class{Small, Big, Random} }

// ClassByName looks up a class by its Table 3 name.
func ClassByName(name string) (Class, bool) {
	for _, c := range Classes() {
		if c.Name == name {
			return c, true
		}
	}
	return Class{}, false
}

// Generate builds a BoT of this class. The id tags every task's group
// (SpeQuloS uses it to recognize QoS-enabled BoTs across middleware).
func (c Class) Generate(id string, seed uint64) *BoT {
	r := sim.NewRNG(seed).Fork("bot:" + c.Name)
	n := int(math.Round(c.Size.Sample(r.Rand)))
	if n < 1 {
		n = 1
	}
	b := &BoT{ID: id, Class: c.Name, WallClockTime: c.WallClockTime, Tasks: make([]Task, n)}
	for i := range b.Tasks {
		at := c.Arrival.Sample(r.Rand)
		if at < 0 {
			at = 0
		}
		b.Tasks[i] = Task{ID: i, NOps: c.NOps.Sample(r.Rand), Arrival: at}
	}
	sort.SliceStable(b.Tasks, func(i, j int) bool { return b.Tasks[i].Arrival < b.Tasks[j].Arrival })
	for i := range b.Tasks {
		b.Tasks[i].ID = i
	}
	return b
}

// ScaledClass returns a copy of the class with the task count scaled by f
// (minimum 1 task). Quick experiment profiles use scaled BoTs so that
// benchmarks finish promptly; the full harness uses paper sizes.
func (c Class) Scaled(f float64) Class {
	out := c
	switch s := c.Size.(type) {
	case stats.Constant:
		out.Size = stats.Constant{Value: math.Max(1, math.Round(s.Value*f))}
	case stats.TruncatedNormal:
		out.Size = stats.TruncatedNormal{Mu: math.Max(1, s.Mu*f), Sigma: s.Sigma * f,
			Lo: math.Max(1, s.Lo*f), Hi: math.Max(2, s.Hi*f)}
	case stats.Normal:
		out.Size = stats.Normal{Mu: math.Max(1, s.Mu*f), Sigma: s.Sigma * f}
	}
	return out
}
