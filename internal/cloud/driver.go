package cloud

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Driver is the libcloud-like abstraction of an IaaS provider used by the
// deployable service layer (§3.6: "We use the libcloud library, which
// allows unifying access to various IaaS Cloud technologies in a single
// API"). Implementations must be safe for concurrent use.
type Driver interface {
	// Name identifies the provider ("ec2", "opennebula", ...).
	Name() string
	// Launch requests one instance configured to run the given DG worker
	// image and returns its descriptor. The instance may still be booting.
	Launch(req LaunchRequest) (InstanceInfo, error)
	// Terminate shuts an instance down. Unknown IDs return an error.
	Terminate(id string) error
	// Describe returns the current descriptor of an instance.
	Describe(id string) (InstanceInfo, error)
	// List returns all non-terminated instances.
	List() []InstanceInfo
}

// LaunchRequest describes the worker to start.
type LaunchRequest struct {
	// Image is the VM image embedding the DG worker middleware.
	Image string `json:"image"`
	// BatchID is the QoS batch the worker is dedicated to.
	BatchID string `json:"batch_id"`
	// DGServer is the Desktop Grid server URL the worker connects to.
	DGServer string `json:"dg_server"`
}

// InstanceState is an instance lifecycle state.
type InstanceState string

// Instance lifecycle states.
const (
	StatePending    InstanceState = "pending"
	StateRunning    InstanceState = "running"
	StateTerminated InstanceState = "terminated"
)

// InstanceInfo describes a provider instance.
type InstanceInfo struct {
	ID        string        `json:"id"`
	Provider  string        `json:"provider"`
	State     InstanceState `json:"state"`
	BatchID   string        `json:"batch_id"`
	DGServer  string        `json:"dg_server"`
	Image     string        `json:"image"`
	StartedAt time.Time     `json:"started_at"`
}

// MockDriver is an in-memory IaaS used in tests, examples and the default
// daemon configuration. Instances move pending→running after BootLatency.
type MockDriver struct {
	name        string
	bootLatency time.Duration
	costPerHour float64

	mu        sync.Mutex
	now       func() time.Time
	seq       int
	instances map[string]*mockInstance
}

type mockInstance struct {
	info    InstanceInfo
	readyAt time.Time
}

// NewMockDriver builds a named mock provider.
func NewMockDriver(name string, bootLatency time.Duration, costPerHour float64) *MockDriver {
	return &MockDriver{
		name:        name,
		bootLatency: bootLatency,
		costPerHour: costPerHour,
		now:         time.Now,
		instances:   map[string]*mockInstance{},
	}
}

// SetClock replaces the driver's clock, so boot latencies elapse on an
// injected (e.g. virtual) timeline instead of the wall clock.
func (d *MockDriver) SetClock(now func() time.Time) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.now = now
}

// NewMockEC2 and the constructors below build the providers the paper's
// prototype supports (§3.7). Boot latencies and prices are representative,
// not contractual.
func NewMockEC2() *MockDriver { return NewMockDriver("ec2", 90*time.Second, 0.34) }

// NewMockEucalyptus builds the Eucalyptus mock provider.
func NewMockEucalyptus() *MockDriver { return NewMockDriver("eucalyptus", 120*time.Second, 0.20) }

// NewMockRackspace builds the Rackspace mock provider.
func NewMockRackspace() *MockDriver { return NewMockDriver("rackspace", 100*time.Second, 0.32) }

// NewMockOpenNebula builds the OpenNebula mock provider.
func NewMockOpenNebula() *MockDriver { return NewMockDriver("opennebula", 150*time.Second, 0.10) }

// NewMockStratusLab builds the StratusLab mock provider.
func NewMockStratusLab() *MockDriver { return NewMockDriver("stratuslab", 150*time.Second, 0.10) }

// NewMockNimbus builds the Nimbus mock provider.
func NewMockNimbus() *MockDriver { return NewMockDriver("nimbus", 140*time.Second, 0.12) }

// NewMockGrid5000 builds the free Grid'5000 mock provider.
func NewMockGrid5000() *MockDriver { return NewMockDriver("grid5000", 180*time.Second, 0.0) }

// Name implements Driver.
func (d *MockDriver) Name() string { return d.name }

// CostPerHour returns the provider's hourly instance price.
func (d *MockDriver) CostPerHour() float64 { return d.costPerHour }

// Launch implements Driver.
func (d *MockDriver) Launch(req LaunchRequest) (InstanceInfo, error) {
	if req.Image == "" {
		return InstanceInfo{}, fmt.Errorf("%s: launch request needs a worker image", d.name)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.seq++
	now := d.now()
	inst := &mockInstance{
		info: InstanceInfo{
			ID:        fmt.Sprintf("%s-%06d", d.name, d.seq),
			Provider:  d.name,
			State:     StatePending,
			BatchID:   req.BatchID,
			DGServer:  req.DGServer,
			Image:     req.Image,
			StartedAt: now,
		},
		readyAt: now.Add(d.bootLatency),
	}
	d.instances[inst.info.ID] = inst
	return inst.info, nil
}

// refresh moves pending instances to running once their boot latency has
// elapsed. Callers hold d.mu.
func (d *MockDriver) refresh(inst *mockInstance) {
	if inst.info.State == StatePending && !d.now().Before(inst.readyAt) {
		inst.info.State = StateRunning
	}
}

// Terminate implements Driver.
func (d *MockDriver) Terminate(id string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	inst, ok := d.instances[id]
	if !ok {
		return fmt.Errorf("%s: unknown instance %q", d.name, id)
	}
	inst.info.State = StateTerminated
	delete(d.instances, id)
	return nil
}

// Describe implements Driver.
func (d *MockDriver) Describe(id string) (InstanceInfo, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	inst, ok := d.instances[id]
	if !ok {
		return InstanceInfo{}, fmt.Errorf("%s: unknown instance %q", d.name, id)
	}
	d.refresh(inst)
	return inst.info, nil
}

// List implements Driver.
func (d *MockDriver) List() []InstanceInfo {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]InstanceInfo, 0, len(d.instances))
	for _, inst := range d.instances {
		d.refresh(inst)
		out = append(out, inst.info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Registry holds the drivers available to a SpeQuloS deployment, keyed by
// provider name.
type Registry struct {
	mu      sync.RWMutex
	drivers map[string]Driver
}

// NewRegistry builds a registry from the given drivers.
func NewRegistry(drivers ...Driver) *Registry {
	r := &Registry{drivers: map[string]Driver{}}
	for _, d := range drivers {
		r.drivers[d.Name()] = d
	}
	return r
}

// DefaultRegistry returns a registry with all supported mock providers.
func DefaultRegistry() *Registry {
	return NewRegistry(
		NewMockEC2(), NewMockEucalyptus(), NewMockRackspace(),
		NewMockOpenNebula(), NewMockStratusLab(), NewMockNimbus(),
		NewMockGrid5000(),
	)
}

// Get returns the named driver.
func (r *Registry) Get(name string) (Driver, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	d, ok := r.drivers[name]
	if !ok {
		return nil, fmt.Errorf("cloud: unknown provider %q", name)
	}
	return d, nil
}

// Add registers a driver (replacing any with the same name).
func (r *Registry) Add(d Driver) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.drivers[d.Name()] = d
}

// Names lists registered providers, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.drivers))
	for name := range r.drivers {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
