package cloud

import (
	"sync"
	"testing"
	"time"

	"spequlos/internal/bot"
	"spequlos/internal/middleware"
	"spequlos/internal/sim"
	"spequlos/internal/xwhep"
)

func tasks(nops ...float64) []bot.Task {
	out := make([]bot.Task, len(nops))
	for i, n := range nops {
		out[i] = bot.Task{ID: i, NOps: n}
	}
	return out
}

func TestSimCloudBootAndJoin(t *testing.T) {
	eng := sim.NewEngine()
	srv := xwhep.New(eng, xwhep.DefaultConfig())
	srv.Submit(middleware.Batch{ID: "b", Tasks: tasks(3000)})
	c := NewSimCloud(eng, SimConfig{BootDelay: 120, Power: nil}, sim.NewRNG(1))
	inst := c.Start(srv, "b", false)
	if inst.Booted() {
		t.Fatal("instance booted instantly")
	}
	if !inst.Running() {
		t.Fatal("instance not running")
	}
	eng.Run()
	if !inst.Booted() || inst.BootedAt != 120 {
		t.Fatalf("booted at %v, want 120", inst.BootedAt)
	}
	if !srv.Done("b") {
		t.Fatal("cloud worker did not execute the batch")
	}
	if inst.Worker.DedicatedBatch != "b" || !inst.Worker.Cloud {
		t.Fatalf("worker misconfigured: %+v", inst.Worker)
	}
}

func TestSimCloudFlatMode(t *testing.T) {
	eng := sim.NewEngine()
	srv := xwhep.New(eng, xwhep.DefaultConfig())
	c := NewSimCloud(eng, DefaultSimConfig(), sim.NewRNG(1))
	inst := c.Start(srv, "b", true)
	if inst.Worker.DedicatedBatch != "" {
		t.Fatal("flat worker must not be dedicated")
	}
	if inst.BatchID != "b" {
		t.Fatal("instance must remember its funding batch")
	}
}

func TestSimCloudStopBeforeBoot(t *testing.T) {
	eng := sim.NewEngine()
	srv := xwhep.New(eng, xwhep.DefaultConfig())
	srv.Submit(middleware.Batch{ID: "b", Tasks: tasks(1000)})
	c := NewSimCloud(eng, DefaultSimConfig(), sim.NewRNG(1))
	inst := c.Start(srv, "b", false)
	eng.RunUntil(50)
	c.Stop(inst)
	c.Stop(inst) // idempotent
	eng.Run()
	if srv.Done("b") {
		t.Fatal("stopped-before-boot instance computed the batch")
	}
	if inst.Running() {
		t.Fatal("instance still running after stop")
	}
	if got := inst.CPUSeconds(1e9); got != 50 {
		t.Fatalf("billed %v s, want 50 (stop time caps billing)", got)
	}
}

func TestSimCloudStopDetachesWorker(t *testing.T) {
	eng := sim.NewEngine()
	srv := xwhep.New(eng, xwhep.DefaultConfig())
	srv.Submit(middleware.Batch{ID: "b", Tasks: tasks(1e9)})
	c := NewSimCloud(eng, DefaultSimConfig(), sim.NewRNG(1))
	inst := c.Start(srv, "b", false)
	eng.RunUntil(500) // booted at 120, computing
	if !inst.Busy() {
		t.Fatal("instance should be computing")
	}
	c.Stop(inst)
	if c.RunningCount() != 0 {
		t.Fatal("running count wrong after stop")
	}
	eng.RunUntil(200000)
	if srv.Done("b") {
		t.Fatal("batch completed by a stopped instance")
	}
}

func TestSimCloudStopAllAndBilling(t *testing.T) {
	eng := sim.NewEngine()
	srv := xwhep.New(eng, xwhep.DefaultConfig())
	c := NewSimCloud(eng, DefaultSimConfig(), sim.NewRNG(1))
	var insts []*Instance
	for i := 0; i < 3; i++ {
		insts = append(insts, c.Start(srv, "b", false))
	}
	if c.RunningCount() != 3 {
		t.Fatalf("running = %d", c.RunningCount())
	}
	eng.RunUntil(3600)
	for _, inst := range insts {
		if got := inst.CPUSeconds(eng.Now()); got != 3600 {
			t.Fatalf("billed %v, want 3600", got)
		}
	}
	c.StopAll()
	if c.RunningCount() != 0 {
		t.Fatal("StopAll left instances")
	}
}

func TestInstancePowersVary(t *testing.T) {
	eng := sim.NewEngine()
	srv := xwhep.New(eng, xwhep.DefaultConfig())
	c := NewSimCloud(eng, DefaultSimConfig(), sim.NewRNG(7))
	p1 := c.Start(srv, "b", false).Worker.Power
	p2 := c.Start(srv, "b", false).Worker.Power
	p3 := c.Start(srv, "b", false).Worker.Power
	if p1 == p2 && p2 == p3 {
		t.Fatal("cloud powers should be heterogeneous")
	}
	for _, p := range []float64{p1, p2, p3} {
		if p < 1000 || p > 5000 {
			t.Fatalf("power %v outside the truncated-normal bounds", p)
		}
	}
}

func TestMockDriverLifecycle(t *testing.T) {
	d := NewMockDriver("test", 10*time.Millisecond, 0.5)
	info, err := d.Launch(LaunchRequest{Image: "xwhep-worker", BatchID: "b", DGServer: "http://dg"})
	if err != nil {
		t.Fatal(err)
	}
	if info.State != StatePending || info.Provider != "test" {
		t.Fatalf("launch info: %+v", info)
	}
	time.Sleep(20 * time.Millisecond)
	got, err := d.Describe(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateRunning {
		t.Fatalf("state = %s, want running after boot latency", got.State)
	}
	if len(d.List()) != 1 {
		t.Fatal("list wrong")
	}
	if err := d.Terminate(info.ID); err != nil {
		t.Fatal(err)
	}
	if len(d.List()) != 0 {
		t.Fatal("terminated instance still listed")
	}
	if err := d.Terminate(info.ID); err == nil {
		t.Fatal("double terminate should error")
	}
	if _, err := d.Describe(info.ID); err == nil {
		t.Fatal("describe after terminate should error")
	}
}

func TestMockDriverRejectsEmptyImage(t *testing.T) {
	d := NewMockEC2()
	if _, err := d.Launch(LaunchRequest{}); err == nil {
		t.Fatal("empty image accepted")
	}
}

func TestMockDriverConcurrency(t *testing.T) {
	d := NewMockEC2()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				info, err := d.Launch(LaunchRequest{Image: "img"})
				if err != nil {
					t.Error(err)
					return
				}
				d.List()
				if err := d.Terminate(info.ID); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if len(d.List()) != 0 {
		t.Fatal("instances leaked")
	}
}

func TestRegistry(t *testing.T) {
	r := DefaultRegistry()
	names := r.Names()
	want := []string{"ec2", "eucalyptus", "grid5000", "nimbus", "opennebula", "rackspace", "stratuslab"}
	if len(names) != len(want) {
		t.Fatalf("providers = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("providers = %v, want %v", names, want)
		}
	}
	if _, err := r.Get("ec2"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Get("azure"); err == nil {
		t.Fatal("unknown provider accepted")
	}
	r.Add(NewMockDriver("azure", time.Second, 1))
	if _, err := r.Get("azure"); err != nil {
		t.Fatal("added driver not found")
	}
}
