// Package cloud provides the IaaS substrate SpeQuloS provisions workers
// from. It has two halves:
//
//   - A simulation cloud (SimCloud) used by the trace-driven evaluation:
//     instances boot after a short delay, are never preempted, and carry
//     grid-class power (Table 2: normal(3000, 300) nops/s).
//
//   - A libcloud-like Driver abstraction with mock providers for every
//     technology the paper's prototype supports (§3.7: Amazon EC2,
//     Eucalyptus, Rackspace, OpenNebula, StratusLab, Nimbus, plus the
//     custom Grid'5000 driver the authors wrote). The HTTP service layer
//     uses these; swapping in a real driver only requires implementing the
//     same interface.
package cloud

import (
	"fmt"

	"spequlos/internal/middleware"
	"spequlos/internal/sim"
	"spequlos/internal/stats"
)

// SimConfig parameterizes the simulated IaaS.
type SimConfig struct {
	// BootDelay is the time between a start request and the instance's
	// worker connecting to the DG server.
	BootDelay float64
	// Power is the per-instance compute power distribution.
	Power stats.Dist
}

// DefaultSimConfig matches the evaluation's cloud-node model.
func DefaultSimConfig() SimConfig {
	return SimConfig{
		BootDelay: 120,
		Power:     stats.TruncatedNormal{Mu: 3000, Sigma: 300, Lo: 1000, Hi: 5000},
	}
}

// SimCloud instantiates cloud workers inside a simulation.
type SimCloud struct {
	eng     *sim.Engine
	cfg     SimConfig
	rng     *sim.RNG
	seq     int
	running map[*Instance]struct{}

	// opBoot is the registered boot-completion handler (Payload.A =
	// *Instance): starting an instance allocates no scheduling closure.
	opBoot sim.Op
}

// NewSimCloud builds a simulated IaaS on the engine.
func NewSimCloud(eng *sim.Engine, cfg SimConfig, rng *sim.RNG) *SimCloud {
	if cfg.BootDelay < 0 {
		cfg.BootDelay = 0
	}
	if cfg.Power == nil {
		cfg.Power = DefaultSimConfig().Power
	}
	c := &SimCloud{eng: eng, cfg: cfg, rng: rng.Fork("cloud"), running: map[*Instance]struct{}{}}
	c.opBoot = eng.RegisterOp(func(p sim.Payload) {
		inst := p.A.(*Instance)
		inst.BootedAt = c.eng.Now()
		inst.target.WorkerJoin(inst.Worker)
	})
	return c
}

// Instance is one provisioned cloud worker bound to a DG server.
type Instance struct {
	Worker    *middleware.Worker
	BatchID   string
	StartedAt float64
	BootedAt  float64 // -1 until booted
	StoppedAt float64 // -1 while running

	target middleware.Server
	bootEv sim.Event
}

// Running reports whether the instance has not been stopped.
func (i *Instance) Running() bool { return i.StoppedAt < 0 }

// Booted reports whether the worker has connected to the DG server.
func (i *Instance) Booted() bool { return i.BootedAt >= 0 }

// CPUSeconds returns the billable time (from start request, the moment the
// provider starts charging) up to now, or up to the stop time.
func (i *Instance) CPUSeconds(now float64) float64 {
	end := now
	if i.StoppedAt >= 0 {
		end = i.StoppedAt
	}
	if end < i.StartedAt {
		return 0
	}
	return end - i.StartedAt
}

// Start boots a cloud worker dedicated to batchID on the target server.
// flat disables the batch dedication (the Flat deployment strategy: the
// worker competes for any task, the server unmodified).
func (c *SimCloud) Start(target middleware.Server, batchID string, flat bool) *Instance {
	c.seq++
	dedicated := batchID
	if flat {
		dedicated = ""
	}
	w := middleware.NewCloudWorker(c.seq, c.cfg.Power.Sample(c.rng.Rand), dedicated)
	inst := &Instance{
		Worker:    w,
		BatchID:   batchID,
		StartedAt: c.eng.Now(),
		BootedAt:  -1,
		StoppedAt: -1,
		target:    target,
	}
	inst.bootEv = c.eng.AfterOp(c.cfg.BootDelay, c.opBoot, sim.Payload{A: inst})
	c.running[inst] = struct{}{}
	return inst
}

// Stop terminates an instance; its in-flight work is lost (the Scheduler
// only stops workers that are idle or no longer funded). Stopping twice is
// a no-op.
func (c *SimCloud) Stop(inst *Instance) {
	if inst == nil || !inst.Running() {
		return
	}
	inst.StoppedAt = c.eng.Now()
	c.eng.Cancel(inst.bootEv)
	if inst.Booted() {
		inst.target.WorkerLeave(inst.Worker)
	}
	delete(c.running, inst)
}

// RunningCount returns the number of live instances.
func (c *SimCloud) RunningCount() int { return len(c.running) }

// StopAll terminates every live instance (end of QoS support).
func (c *SimCloud) StopAll() {
	for inst := range c.running {
		c.Stop(inst)
	}
}

// Busy reports whether the instance's worker currently holds work.
func (i *Instance) Busy() bool {
	if !i.Booted() || !i.Running() {
		return false
	}
	return i.target.WorkerBusy(i.Worker)
}

// String identifies the instance for logs and test failures.
func (i *Instance) String() string {
	return fmt.Sprintf("cloud-instance(worker=%d batch=%s)", i.Worker.ID, i.BatchID)
}
