package spot

import (
	"math"
	"testing"
	"testing/quick"

	"spequlos/internal/stats"
)

func TestPricesPositiveAndFloored(t *testing.T) {
	m := DefaultMarket()
	prices := m.Prices(1, 10*86400)
	if len(prices) == 0 {
		t.Fatal("no prices")
	}
	for _, p := range prices {
		if p < m.FloorPrice {
			t.Fatalf("price %v below floor %v", p, m.FloorPrice)
		}
		if p > 10 {
			t.Fatalf("price %v absurdly high", p)
		}
	}
}

func TestPricesDeterministic(t *testing.T) {
	m := DefaultMarket()
	a := m.Prices(9, 86400)
	b := m.Prices(9, 86400)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed different prices")
		}
	}
}

func TestPricesHaveSpikes(t *testing.T) {
	m := DefaultMarket()
	prices := m.Prices(2, 30*86400)
	max := 0.0
	for _, p := range prices {
		if p > max {
			max = p
		}
	}
	if max < m.BasePrice*1.5 {
		t.Errorf("no visible spikes over 30 days: max price %v", max)
	}
}

func TestInstanceCount(t *testing.T) {
	if InstanceCount(10, 0.125) != 80 {
		t.Errorf("got %d, want 80", InstanceCount(10, 0.125))
	}
	if InstanceCount(10, 0) != 0 {
		t.Error("zero price should give zero instances")
	}
}

// Table 2: spot10 mean ≈ 82 instances, spot100 mean ≈ 824; max 87 / 877.
func TestInstanceCountStatistics(t *testing.T) {
	for _, tc := range []struct {
		p        Profile
		mean     float64
		maxBound float64
	}{
		{Spot10, 82.186, 95},
		{Spot100, 823.95, 950},
	} {
		tr := tc.p.Generate(5, 30*86400, 0)
		st := tr.MeasureStats(900)
		rel := math.Abs(st.Concurrency.Mean-tc.mean) / tc.mean
		if rel > 0.10 {
			t.Errorf("%s mean instances %.1f, want ~%.1f", tc.p.Name, st.Concurrency.Mean, tc.mean)
		}
		if st.Concurrency.Max > tc.maxBound {
			t.Errorf("%s max instances %.0f over bound %.0f", tc.p.Name, st.Concurrency.Max, tc.maxBound)
		}
	}
}

// Spikes must knock out a large fraction of the fleet occasionally (Table 2
// spot10 min = 29 of 87).
func TestSpikesReduceFleet(t *testing.T) {
	tr := Spot10.Generate(5, 60*86400, 0)
	st := tr.MeasureStats(900)
	if st.Concurrency.Min > 65 {
		t.Errorf("min instances %.0f: spikes never bite", st.Concurrency.Min)
	}
}

func TestGenerateTraceValid(t *testing.T) {
	for _, p := range Profiles() {
		tr := p.Generate(3, 5*86400, 0)
		if err := tr.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
		if len(tr.Nodes) == 0 {
			t.Errorf("%s: no nodes", p.Name)
		}
	}
}

func TestGeneratePoolCap(t *testing.T) {
	tr := Spot100.Generate(3, 86400, 50)
	if len(tr.Nodes) != 50 {
		t.Fatalf("pool cap ignored: %d nodes", len(tr.Nodes))
	}
	// Low-index instances bid higher, so node 0 must be available whenever
	// node 49 is.
	n0, n49 := tr.Nodes[0], tr.Nodes[49]
	for _, iv := range n49.Intervals {
		mid := (iv.Start + iv.End) / 2
		if !n0.AvailableAt(mid) {
			t.Fatal("higher-bid instance unavailable while lower-bid ran")
		}
	}
}

// Property: instance availability is monotone in the bid ladder — at any
// time, the set of running instances is a prefix of the ladder.
func TestLadderPrefixProperty(t *testing.T) {
	tr := Spot10.Generate(7, 3*86400, 0)
	f := func(u float64) bool {
		at := math.Abs(math.Mod(u, 1)) * tr.Length
		run := false // whether we've seen an unavailable node yet
		for _, n := range tr.Nodes {
			avail := n.AvailableAt(at)
			if avail && run {
				return false
			}
			if !avail {
				run = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAvailabilityDurationsAreHoursScale(t *testing.T) {
	// Table 2 spot10 availability quartiles: 4415, 5432, 17109 s. The
	// market is synthetic, so allow a wide band but require hour-scale runs
	// (this is what distinguishes spot from the minutes-scale g5klyo).
	tr := Spot10.Generate(11, 45*86400, 0)
	st := tr.MeasureStats(900)
	if st.Avail.Q50 < 1200 || st.Avail.Q50 > 40000 {
		t.Errorf("median availability %.0f s, want hour-scale (~5432)", st.Avail.Q50)
	}
}

func TestPowerGridClass(t *testing.T) {
	tr := Spot10.Generate(3, 86400, 0)
	var sum float64
	for _, n := range tr.Nodes {
		sum += n.Power
	}
	mean := sum / float64(len(tr.Nodes))
	if math.Abs(mean-3000) > 300 {
		t.Errorf("spot power mean %.0f, want ~3000", mean)
	}
}

func TestProfileByName(t *testing.T) {
	if _, ok := ProfileByName("spot10"); !ok {
		t.Fatal("spot10 missing")
	}
	if _, ok := ProfileByName("spotX"); ok {
		t.Fatal("bogus profile found")
	}
}

func TestMeanPriceCalibration(t *testing.T) {
	// The harmonic-mean price must sit near $10/82.186 so that mean
	// instance counts match Table 2.
	m := DefaultMarket()
	prices := m.Prices(12, 60*86400)
	counts := make([]float64, len(prices))
	for i, p := range prices {
		counts[i] = float64(InstanceCount(10, p))
	}
	mean := stats.Mean(counts)
	if math.Abs(mean-82.186)/82.186 > 0.10 {
		t.Errorf("mean count %.1f, want ~82.2", mean)
	}
}
