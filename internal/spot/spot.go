// Package spot simulates an EC2-style spot-instance market and derives
// BE-DCI availability traces from it, reproducing the paper's spot10 and
// spot100 scenarios (§4.1.1).
//
// The paper's usage model: a user sets a total renting budget of S dollars
// per hour and places a persistent ladder of n bids at prices S/i
// (i = 1..n). When the market price is p, every bid with S/i ≥ p holds a
// running instance, so the number of running instances is ⌊S/p⌋ and the
// total spend rate stays ≈ S regardless of the price. Instance i is
// therefore available exactly while p(t) ≤ S/(i+1), which converts a price
// series into an availability trace directly.
package spot

import (
	"math"

	"spequlos/internal/sim"
	"spequlos/internal/stats"
	"spequlos/internal/trace"
)

// Market models the spot price process as three components: a periodic
// demand cycle (spot prices follow intra-day load patterns, which is what
// makes the published availability-run quartiles cluster tightly around
// 1.2–1.5 h), a mean-reverting noise term, and exponentially-decaying
// demand spikes arriving as a Poisson process (the deep fleet knock-outs
// behind Table 2's minimum counts). Calibrated so the ⌊S/p⌋ instance-count
// statistics match Table 2 (means ≈ 82 and ≈ 824 for S=$10 and $100/h).
type Market struct {
	Step        float64 // price re-evaluation period, seconds
	BasePrice   float64 // typical price, $/h (c1.large-class in the paper)
	FloorPrice  float64 // market price never goes below this
	CeilPrice   float64 // demand spikes saturate here (0 = uncapped)
	CycleAmp    float64 // relative amplitude of the periodic demand cycle
	CyclePeriod float64 // demand cycle period, seconds
	BaseStd     float64 // stationary std of the relative OU noise
	RelaxTime   float64 // OU mean-reversion time constant, seconds
	SpikeRate   float64 // demand spikes per day
	SpikeMean   float64 // mean spike amplitude, $/h
	SpikeDecay  float64 // spike decay time constant, seconds
}

// DefaultMarket returns the market calibration used by the spot10/spot100
// profiles.
func DefaultMarket() Market {
	return Market{
		Step:        300,
		BasePrice:   0.1180,
		FloorPrice:  0.1135,
		CeilPrice:   0.345,
		CycleAmp:    0.018,
		CyclePeriod: 3 * 3600,
		BaseStd:     0.008,
		RelaxTime:   2 * 3600,
		SpikeRate:   6,
		SpikeMean:   0.018,
		SpikeDecay:  5500,
	}
}

// Prices generates the piecewise-constant price series for the given length
// (seconds). The i-th element is the price during [i·Step, (i+1)·Step).
func (m Market) Prices(seed uint64, length float64) []float64 {
	r := sim.NewRNG(seed).Fork("spot:market")
	n := int(math.Ceil(length/m.Step)) + 1
	prices := make([]float64, n)
	theta := 1.0 / m.RelaxTime
	sigma := m.BaseStd * math.Sqrt(2*theta)
	x := 0.0
	spike := 0.0
	spikeDecayPerStep := math.Exp(-m.Step / m.SpikeDecay)
	spikeProbPerStep := m.SpikeRate * m.Step / 86400
	phase := r.Float64() * 2 * math.Pi
	for i := range prices {
		t := float64(i) * m.Step
		x += -theta*x*m.Step + sigma*math.Sqrt(m.Step)*r.NormFloat64()
		spike *= spikeDecayPerStep
		if r.Float64() < spikeProbPerStep {
			spike += m.SpikeMean * (0.3 + r.ExpFloat64())
		}
		cycle := 0.0
		if m.CyclePeriod > 0 {
			cycle = m.CycleAmp * math.Sin(2*math.Pi*t/m.CyclePeriod+phase)
		}
		p := m.BasePrice*(1+cycle+x) + spike
		if p < m.FloorPrice {
			p = m.FloorPrice
		}
		if m.CeilPrice > 0 && p > m.CeilPrice {
			p = m.CeilPrice
		}
		prices[i] = p
	}
	return prices
}

// InstanceCount returns ⌊budget/price⌋, the number of instances the bid
// ladder holds at the given price.
func InstanceCount(budgetPerHour, price float64) int {
	if price <= 0 {
		return 0
	}
	return int(budgetPerHour / price)
}

// Profile is a spot-instance BE-DCI: a market plus an hourly budget.
// It implements trace.Source.
type Profile struct {
	Name         string
	LengthDays   float64
	BudgetPerHr  float64 // S: total renting cost per hour, dollars
	Market       Market
	Power        stats.Dist
	MaxInstances int // ladder depth n; 0 derives it from the floor price
}

// Spot10 and Spot100 are the Table 2 spot traces: the same market with
// renting budgets of $10/h and $100/h respectively (Amazon c1.large price
// history, January–March 2011 in the paper).
var (
	Spot10 = Profile{
		Name: "spot10", LengthDays: 90, BudgetPerHr: 10,
		Market: DefaultMarket(),
		Power:  stats.TruncatedNormal{Mu: 3000, Sigma: 300, Lo: 1000, Hi: 5000},
	}
	Spot100 = Profile{
		Name: "spot100", LengthDays: 90, BudgetPerHr: 100,
		Market: DefaultMarket(),
		Power:  stats.TruncatedNormal{Mu: 3000, Sigma: 300, Lo: 1000, Hi: 5000},
	}
)

// Profiles returns the two published spot traces.
func Profiles() []Profile { return []Profile{Spot10, Spot100} }

// ProfileByName looks up a spot profile.
func ProfileByName(name string) (Profile, bool) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// TraceName implements trace.Source.
func (p Profile) TraceName() string { return p.Name }

// ladderDepth returns the number of bids, i.e. the maximum possible
// instance count at the floor price.
func (p Profile) ladderDepth() int {
	if p.MaxInstances > 0 {
		return p.MaxInstances
	}
	return InstanceCount(p.BudgetPerHr, p.Market.FloorPrice)
}

// Generate implements trace.Source: instance i (0-based) is available while
// price ≤ S/(i+1); consecutive available steps merge into intervals.
// A pool cap keeps the lowest-index (most stable) instances, which is the
// subset a budget-capped user would effectively retain.
func (p Profile) Generate(seed uint64, length float64, pool int) *trace.Trace {
	if length <= 0 {
		length = p.LengthDays * 86400
	}
	prices := p.Market.Prices(seed, length)
	n := p.ladderDepth()
	if pool > 0 && pool < n {
		n = pool
	}
	root := sim.NewRNG(seed).Fork("spot:" + p.Name)
	tr := &trace.Trace{Name: p.Name, Length: length, Nodes: make([]*trace.Node, 0, n)}
	step := p.Market.Step
	for i := 0; i < n; i++ {
		r := root.ForkN("instance", i)
		node := &trace.Node{ID: i, Power: p.Power.Sample(r.Rand)}
		threshold := p.BudgetPerHr / float64(i+1)
		open := -1.0
		for s, price := range prices {
			t0 := float64(s) * step
			if t0 >= length {
				break
			}
			avail := price <= threshold
			if avail && open < 0 {
				open = t0
			}
			if !avail && open >= 0 {
				node.Intervals = append(node.Intervals, trace.Interval{Start: open, End: t0})
				open = -1
			}
		}
		if open >= 0 {
			node.Intervals = append(node.Intervals, trace.Interval{Start: open, End: length})
		}
		tr.Nodes = append(tr.Nodes, node)
	}
	return tr
}
