// Package bad is the doccheck fixture: it mixes documented and
// undocumented exported identifiers so the linter test can assert both
// directions.
package bad

// Documented has a comment and must not be reported.
func Documented() {}

func Undocumented() {}

type NoDocType int

func (NoDocType) NoDocMeth() {}

// DocMeth is documented.
func (NoDocType) DocMeth() {}

const NoDocConst = 1

// DocConst is documented.
const DocConst = 2

// Grouped constants: the block comment covers every member.
const (
	GroupedA = 1
	GroupedB = 2
)

type unexported int

func (unexported) ExportedMethodOnUnexported() {}
