package doccheck

import (
	"testing"
)

// auditedDirs is the public API surface the doc audit covers: the root
// package, the campaign engine, the deployable service layer, the
// simulation kernel, and the experiment/emulation entry points. Every
// exported identifier in these packages must carry a godoc comment.
var auditedDirs = []string{
	".",                    // package spequlos (public API)
	"internal/campaign",    // campaign engine
	"internal/service",     // deployable HTTP service modules
	"internal/sim",         // discrete-event kernel
	"internal/core",        // SpeQuloS module logic
	"internal/middleware",  // DG middleware model
	"internal/experiments", // figure/table builders
	"internal/emul",        // emulation + conformance
	"internal/httprr",      // HTTP record/replay harness
	"internal/loadgen",     // socket-level load harness
	"internal/cloud",       // cloud drivers
	"internal/bot",         // workload classes
	"internal/trace",       // availability traces
	"internal/boinc",       // BOINC simulator
	"internal/xwhep",       // XWHEP simulator
	"internal/condor",      // Condor simulator
	"internal/bridge",      // 3G-Bridge
	"internal/metrics",     // tail metrics
	"internal/stats",       // distributions
	"internal/spot",        // spot-market traces
	"internal/plot",        // SVG charts
}

// TestExportedDocCoverage is the CI doc-lint gate: it fails on any exported
// identifier without a doc comment in the audited packages.
func TestExportedDocCoverage(t *testing.T) {
	vs, err := CheckDirs("../..", auditedDirs)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vs {
		t.Errorf("%s", v)
	}
	if len(vs) > 0 {
		t.Logf("%d exported identifiers lack doc comments", len(vs))
	}
}

// TestCheckDirFindsViolations proves the linter is not vacuous, using a
// fixture with deliberate gaps.
func TestCheckDirFindsViolations(t *testing.T) {
	vs, err := CheckDir("testdata/bad")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{
		"Undocumented":        "func",
		"NoDocType":           "type",
		"NoDocConst":          "const",
		"NoDocType.NoDocMeth": "method",
	}
	got := map[string]string{}
	for _, v := range vs {
		got[v.Name] = v.Kind
	}
	for name, kind := range want {
		if got[name] != kind {
			t.Errorf("missing violation %s (%s); got %v", name, kind, got)
		}
	}
	for name := range got {
		if _, ok := want[name]; !ok {
			t.Errorf("false positive: %s", name)
		}
	}
}
