// Package doccheck is the repo's exported-comment linter: an AST walk that
// reports every exported identifier lacking a godoc comment, in the same
// spirit as revive's `exported` rule but dependency-free (the container
// bakes in only the Go toolchain). The accompanying test runs it over the
// public API surface, so CI fails when the doc audit rots.
package doccheck

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Violation is one exported identifier without a doc comment.
type Violation struct {
	Pos  token.Position
	Kind string // func, method, type, const, var
	Name string
}

func (v Violation) String() string {
	return fmt.Sprintf("%s:%d: exported %s %s has no doc comment", v.Pos.Filename, v.Pos.Line, v.Kind, v.Name)
}

// CheckDir lints every non-test .go file of one package directory and
// returns the violations sorted by position.
func CheckDir(dir string) ([]Violation, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var out []Violation
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			out = append(out, checkFile(fset, file)...)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos.Filename != out[j].Pos.Filename {
			return out[i].Pos.Filename < out[j].Pos.Filename
		}
		return out[i].Pos.Line < out[j].Pos.Line
	})
	return out, nil
}

// CheckDirs lints several package directories relative to root.
func CheckDirs(root string, dirs []string) ([]Violation, error) {
	var out []Violation
	for _, d := range dirs {
		vs, err := CheckDir(filepath.Join(root, d))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", d, err)
		}
		out = append(out, vs...)
	}
	return out, nil
}

func checkFile(fset *token.FileSet, file *ast.File) []Violation {
	var out []Violation
	report := func(pos token.Pos, kind, name string) {
		out = append(out, Violation{Pos: fset.Position(pos), Kind: kind, Name: name})
	}
	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || d.Doc != nil {
				continue
			}
			kind := "func"
			name := d.Name.Name
			if d.Recv != nil && len(d.Recv.List) > 0 {
				recv := receiverType(d.Recv.List[0].Type)
				if recv == "" || !ast.IsExported(recv) {
					continue // method on an unexported type
				}
				kind = "method"
				name = recv + "." + name
			}
			report(d.Pos(), kind, name)
		case *ast.GenDecl:
			// A doc comment on the group covers every spec in it (the
			// idiomatic shape for const/var blocks).
			if d.Doc != nil {
				continue
			}
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && s.Doc == nil && s.Comment == nil {
						report(s.Pos(), "type", s.Name.Name)
					}
				case *ast.ValueSpec:
					if s.Doc != nil || s.Comment != nil {
						continue
					}
					kind := "var"
					if d.Tok == token.CONST {
						kind = "const"
					}
					for _, n := range s.Names {
						if n.IsExported() {
							report(n.Pos(), kind, n.Name)
						}
					}
				}
			}
		}
	}
	return out
}

// receiverType unwraps the receiver's type name.
func receiverType(expr ast.Expr) string {
	switch t := expr.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.StarExpr:
		return receiverType(t.X)
	case *ast.IndexExpr: // generic receiver
		return receiverType(t.X)
	case *ast.IndexListExpr:
		return receiverType(t.X)
	}
	return ""
}
