// Package condor simulates a Condor-style Desktop Grid middleware — the
// third volatility-handling mechanism alongside BOINC (replication +
// deadlines) and XWHEP (heartbeats + restart). The paper notes "Condor and
// OurGrid would have also been excellent candidates" (§2.2); this package
// makes the comparison possible.
//
// Condor's model, as simulated here:
//
//   - A central manager polls execution machines periodically (the
//     condor_startd ClassAd updates), so failures are detected within one
//     poll interval rather than via task deadlines.
//   - The standard universe checkpoints jobs: when a machine is reclaimed
//     or fails, the job migrates and resumes from its last periodic
//     checkpoint on the next available machine, losing at most the work
//     since that checkpoint.
//
// No replication: like XWHEP, each task runs once; unlike XWHEP, work
// survives machine loss (up to the checkpoint lag).
package condor

import (
	"fmt"
	"sort"

	"spequlos/internal/bot"
	"spequlos/internal/middleware"
	"spequlos/internal/sim"
)

// Config carries the Condor pool parameters.
type Config struct {
	// PollInterval is the central-manager status poll period: the upper
	// bound on failure-detection latency.
	PollInterval float64
	// CheckpointPeriod is the periodic checkpoint interval of the standard
	// universe: the maximum work lost on a migration.
	CheckpointPeriod float64
}

// DefaultConfig returns a conventional pool configuration: 5-minute
// ClassAd updates, 15-minute periodic checkpoints.
func DefaultConfig() Config {
	return Config{PollInterval: 300, CheckpointPeriod: 900}
}

// Server is a Condor central manager + schedd simulation. It implements
// middleware.Server.
type Server struct {
	eng       *sim.Engine
	cfg       Config
	listeners middleware.Listeners

	batches  map[string]*batch
	queue    fifo
	attached map[*middleware.Worker]*workerState
	idle     *middleware.IdleSet

	reschedule bool

	// barren is dispatch's per-round scratch memo of batches with no
	// eligible work, reused across rounds to avoid per-tick allocation.
	barren map[string]bool

	// Registered op handlers: event scheduling on the hot path carries an
	// arena payload instead of allocating a closure.
	opArrive sim.Op // Payload.A = *ctask
	opDone   sim.Op // Payload.A = *exec: the job finishes on its machine
	opDetect sim.Op // Payload.A = *exec: next ClassAd poll notices the loss
}

type batch struct {
	spec      middleware.Batch
	size      int
	arrived   int
	completed int
	assigned  int
	tasks     []*ctask
	// byID resolves a task by its spec ID: IDs are batch-unique but not
	// slice indexes once the batch is a partition subset or barrier
	// rebalances moved tasks in.
	byID map[int]*ctask
	done bool
	// freeQueued counts queued, never-assigned tasks — the ones TakeQueued
	// may hand to a sibling pool partition.
	freeQueued int
	running    int
}

type ctask struct {
	batch     *batch
	spec      bot.Task
	arrived   bool
	completed bool
	assigned  bool
	queued    bool
	// moved marks a task handed to a sibling partition (TakeQueued): it
	// stays in the slice for fifo lazy removal but no longer counts.
	moved bool
	// remaining is the work left (seconds at power 1, i.e. instructions):
	// checkpoints preserve progress across migrations.
	remaining float64
	execs     map[*middleware.Worker]*exec
}

func (t *ctask) cloudDups() int {
	n := 0
	for w := range t.execs {
		if w.Cloud {
			n++
		}
	}
	return n
}

type exec struct {
	w      *middleware.Worker
	t      *ctask
	doneEv sim.Event
	// startedAt and startRemaining let the checkpoint logic compute the
	// preserved progress when the machine is lost.
	startedAt      float64
	startRemaining float64
	dead           bool
}

type workerState struct{ cur *ctask }

type fifo struct {
	items []*ctask
	head  int
}

func (f *fifo) push(t *ctask) { f.items = append(f.items, t) }
func (f *fifo) advance() {
	for f.head < len(f.items) && !f.items[f.head].queued {
		f.items[f.head] = nil
		f.head++
	}
	if f.head > 64 && f.head*2 > len(f.items) {
		f.items = append(f.items[:0], f.items[f.head:]...)
		f.head = 0
	}
}
func (f *fifo) empty() bool {
	f.advance()
	return f.head >= len(f.items)
}
func (f *fifo) first(match func(*ctask) bool) *ctask {
	f.advance()
	for i := f.head; i < len(f.items); i++ {
		t := f.items[i]
		if t != nil && t.queued && match(t) {
			return t
		}
	}
	return nil
}

// New creates a Condor pool on the engine.
func New(eng *sim.Engine, cfg Config) *Server {
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 300
	}
	if cfg.CheckpointPeriod <= 0 {
		cfg.CheckpointPeriod = 900
	}
	s := &Server{
		eng:      eng,
		cfg:      cfg,
		batches:  map[string]*batch{},
		attached: map[*middleware.Worker]*workerState{},
		idle:     middleware.NewIdleSet(),
		barren:   map[string]bool{},
	}
	s.opArrive = eng.RegisterOp(func(p sim.Payload) { s.arrive(p.A.(*ctask)) })
	s.opDone = eng.RegisterOp(func(p sim.Payload) {
		ex := p.A.(*exec)
		s.complete(ex.w, ex.t)
	})
	s.opDetect = eng.RegisterOp(func(p sim.Payload) { s.detect(p.A.(*exec)) })
	return s
}

// MiddlewareName implements middleware.Server.
func (s *Server) MiddlewareName() string { return "CONDOR" }

// AddListener implements middleware.Server.
func (s *Server) AddListener(l middleware.Listener) { s.listeners = append(s.listeners, l) }

// SetReschedule implements middleware.Server.
func (s *Server) SetReschedule(enabled bool) { s.reschedule = enabled }

// Submit implements middleware.Server.
func (s *Server) Submit(b middleware.Batch) {
	if _, ok := s.batches[b.ID]; ok {
		panic(fmt.Sprintf("condor: duplicate batch %q", b.ID))
	}
	bt := &batch{spec: b, size: len(b.Tasks), byID: make(map[int]*ctask, len(b.Tasks))}
	s.batches[b.ID] = bt
	for _, spec := range b.Tasks {
		t := &ctask{batch: bt, spec: spec, remaining: spec.NOps, execs: map[*middleware.Worker]*exec{}}
		bt.tasks = append(bt.tasks, t)
		bt.byID[spec.ID] = t
		s.eng.AfterOp(spec.Arrival, s.opArrive, sim.Payload{A: t})
	}
}

// arrive makes a job visible to the schedd at its arrival time.
func (s *Server) arrive(t *ctask) {
	t.arrived = true
	t.batch.arrived++
	t.queued = true
	t.batch.freeQueued++
	s.queue.push(t)
	s.dispatch()
}

// WorkerJoin implements middleware.Server.
func (s *Server) WorkerJoin(w *middleware.Worker) {
	if _, ok := s.attached[w]; ok {
		return
	}
	s.attached[w] = &workerState{}
	s.idle.Add(w)
	s.dispatch()
}

// WorkerLeave implements middleware.Server. The job's progress up to its
// last periodic checkpoint survives; the central manager notices the
// machine's disappearance within one poll interval and requeues the job
// for migration.
func (s *Server) WorkerLeave(w *middleware.Worker) {
	st, ok := s.attached[w]
	if !ok {
		return
	}
	delete(s.attached, w)
	s.idle.Remove(w)
	if st.cur == nil {
		return
	}
	t := st.cur
	ex := t.execs[w]
	if ex == nil {
		return
	}
	s.eng.Cancel(ex.doneEv)
	ex.dead = true
	// Work preserved: progress since assignment, rounded down to the last
	// checkpoint.
	elapsed := s.eng.Now() - ex.startedAt
	ckpts := int(elapsed / s.cfg.CheckpointPeriod)
	preserved := float64(ckpts) * s.cfg.CheckpointPeriod * w.Power
	rem := ex.startRemaining - preserved
	if rem < 0 {
		rem = 0
	}
	if rem < t.remaining {
		t.remaining = rem
	}
	detectAt := s.cfg.PollInterval / 2 // expected latency of the next poll
	s.eng.AfterOp(detectAt, s.opDetect, sim.Payload{A: ex})
}

// detect fires when the central manager's poll notices a lost machine: the
// execution is abandoned and, if it was the job's last one, the job is
// requeued for migration.
func (s *Server) detect(ex *exec) {
	t := ex.t
	if t.completed || t.execs[ex.w] != ex {
		return
	}
	delete(t.execs, ex.w)
	if len(t.execs) == 0 && !t.queued {
		t.batch.running--
		t.queued = true
		s.queue.push(t)
		s.dispatch()
	}
}

func (s *Server) dispatch() {
	for {
		hasQueued := !s.queue.empty()
		wantCloudDup := s.reschedule && s.idle.CloudCount() > 0 && s.anyDupCandidate()
		if !hasQueued && !wantCloudDup {
			return
		}
		clear(s.barren)
		barren := s.barren
		w := s.idle.Pick(func(w *middleware.Worker) bool {
			if barren[w.DedicatedBatch] {
				return false
			}
			if !hasQueued && !(w.Cloud && w.DedicatedBatch != "") {
				return false
			}
			if s.peekTask(w) == nil {
				barren[w.DedicatedBatch] = true
				return false
			}
			return true
		})
		if w == nil {
			return
		}
		t := s.peekTask(w)
		if t == nil {
			s.idle.Add(w)
			return
		}
		s.assign(w, t)
	}
}

func (s *Server) anyDupCandidate() bool {
	for _, bt := range s.batches {
		if !bt.done && bt.running > 0 {
			return true
		}
	}
	return false
}

func (s *Server) peekTask(w *middleware.Worker) *ctask {
	match := func(t *ctask) bool {
		return w.DedicatedBatch == "" || t.batch.spec.ID == w.DedicatedBatch
	}
	if t := s.queue.first(match); t != nil {
		return t
	}
	if s.reschedule && w.Cloud && w.DedicatedBatch != "" {
		bt := s.batches[w.DedicatedBatch]
		if bt == nil {
			return nil
		}
		var best *ctask
		bestDups := 0
		for _, t := range bt.tasks {
			if t.completed || !t.arrived || t.queued || len(t.execs) == 0 || t.execs[w] != nil {
				continue
			}
			dups := t.cloudDups()
			if best == nil || dups < bestDups {
				best, bestDups = t, dups
				if dups == 0 {
					break
				}
			}
		}
		return best
	}
	return nil
}

func (s *Server) assign(w *middleware.Worker, t *ctask) {
	st := s.attached[w]
	if st == nil || st.cur != nil {
		panic("condor: assigning to busy or detached worker")
	}
	st.cur = t
	if t.queued && !t.assigned {
		t.batch.freeQueued--
	}
	if t.queued {
		t.queued = false
		t.batch.running++
	}
	if !t.assigned {
		t.assigned = true
		t.batch.assigned++
		s.listeners.TaskAssigned(t.batch.spec.ID, t.spec.ID, s.eng.Now())
	}
	ex := &exec{w: w, t: t, startedAt: s.eng.Now(), startRemaining: t.remaining}
	t.execs[w] = ex
	dur := t.remaining / w.Power
	ex.doneEv = s.eng.AfterOp(dur, s.opDone, sim.Payload{A: ex})
}

func (s *Server) complete(w *middleware.Worker, t *ctask) {
	if st := s.attached[w]; st != nil && st.cur == t {
		st.cur = nil
		s.idle.Add(w)
	}
	delete(t.execs, w)
	if !t.completed {
		s.finish(t, w)
	}
	s.dispatch()
}

func (s *Server) finish(t *ctask, by *middleware.Worker) {
	bt := t.batch
	if !t.queued && t.assigned {
		bt.running--
	}
	if t.queued && !t.assigned {
		bt.freeQueued--
	}
	t.completed = true
	t.queued = false
	t.remaining = 0
	bt.completed++
	now := s.eng.Now()
	s.listeners.TaskCompleted(bt.spec.ID, t.spec.ID, now)
	s.listeners.NotifyExecutedBy(bt.spec.ID, t.spec.ID, by, now)
	for _, w := range sortedExecWorkers(t.execs) {
		ex := t.execs[w]
		s.eng.Cancel(ex.doneEv)
		delete(t.execs, w)
		if ex.dead {
			continue
		}
		if st := s.attached[w]; st != nil && st.cur == t {
			st.cur = nil
			s.idle.Add(w)
		}
	}
	if bt.completed >= bt.size && !bt.done {
		bt.done = true
		s.listeners.BatchCompleted(bt.spec.ID, now)
	}
}

// MarkCompleted implements middleware.Server. Tasks are resolved by spec
// ID, which stays correct when the batch is a partition subset whose IDs
// are not dense slice indexes.
func (s *Server) MarkCompleted(batchID string, taskID int) {
	bt := s.batches[batchID]
	if bt == nil {
		return
	}
	t := bt.byID[taskID]
	if t == nil || t.completed {
		return
	}
	s.finish(t, nil)
	s.dispatch()
}

// Progress implements middleware.Server.
func (s *Server) Progress(batchID string) middleware.Progress {
	bt := s.batches[batchID]
	if bt == nil {
		return middleware.Progress{}
	}
	running, queued := 0, 0
	for _, t := range bt.tasks {
		switch {
		case t.completed || !t.arrived:
		case len(t.execs) > 0:
			running++
		case t.queued:
			queued++
		}
	}
	return middleware.Progress{
		Size: bt.size, Arrived: bt.arrived, Completed: bt.completed,
		EverAssigned: bt.assigned, Running: running, Queued: queued,
		Workers: len(s.attached),
	}
}

// Done implements middleware.Server.
func (s *Server) Done(batchID string) bool {
	bt := s.batches[batchID]
	return bt != nil && bt.done
}

// Incomplete implements middleware.Server.
func (s *Server) Incomplete(batchID string) []bot.Task {
	bt := s.batches[batchID]
	if bt == nil {
		return nil
	}
	var out []bot.Task
	for _, t := range bt.tasks {
		if !t.completed && !t.moved {
			spec := t.spec
			spec.Arrival = 0
			out = append(out, spec)
		}
	}
	return out
}

// IdleWorkers implements middleware.TaskMover.
func (s *Server) IdleWorkers() int { return s.idle.Len() }

// QueuedFree implements middleware.TaskMover.
func (s *Server) QueuedFree(batchID string) int {
	bt := s.batches[batchID]
	if bt == nil {
		return 0
	}
	return bt.freeQueued
}

// TakeQueued implements middleware.TaskMover: it extracts up to n queued,
// never-assigned jobs — never assigned means no checkpoints exist and
// remaining still equals the spec's work, so removal is exact — and stops
// counting them toward the batch.
func (s *Server) TakeQueued(batchID string, n int) []bot.Task {
	bt := s.batches[batchID]
	if bt == nil || n <= 0 {
		return nil
	}
	var out []bot.Task
	for _, t := range bt.tasks {
		if len(out) >= n {
			break
		}
		if t.moved || t.completed || !t.arrived || !t.queued || t.assigned {
			continue
		}
		t.moved = true
		t.queued = false
		bt.freeQueued--
		bt.size--
		bt.arrived--
		delete(bt.byID, t.spec.ID)
		spec := t.spec
		spec.Arrival = 0
		out = append(out, spec)
	}
	return out
}

// AddTasks implements middleware.TaskMover: the specs join the batch as
// already-arrived queued jobs and dispatch immediately.
func (s *Server) AddTasks(batchID string, tasks []bot.Task) {
	bt := s.batches[batchID]
	if bt == nil || len(tasks) == 0 {
		return
	}
	for _, spec := range tasks {
		t := &ctask{batch: bt, spec: spec, remaining: spec.NOps, execs: map[*middleware.Worker]*exec{}}
		t.arrived = true
		t.queued = true
		bt.tasks = append(bt.tasks, t)
		bt.byID[spec.ID] = t
		bt.size++
		bt.arrived++
		bt.freeQueued++
		s.queue.push(t)
	}
	s.dispatch()
}

var _ middleware.TaskMover = (*Server)(nil)

// WorkerBusy implements middleware.Server.
func (s *Server) WorkerBusy(w *middleware.Worker) bool {
	st := s.attached[w]
	return st != nil && st.cur != nil
}

func sortedExecWorkers(execs map[*middleware.Worker]*exec) []*middleware.Worker {
	out := make([]*middleware.Worker, 0, len(execs))
	for w := range execs {
		out = append(out, w)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

var _ middleware.Server = (*Server)(nil)
