package condor

import (
	"testing"
	"testing/quick"

	"spequlos/internal/bot"
	"spequlos/internal/middleware"
	"spequlos/internal/sim"
)

type recorder struct {
	completed map[int]int
	compTimes map[int]float64
	batchDone float64
}

func newRecorder() *recorder {
	return &recorder{completed: map[int]int{}, compTimes: map[int]float64{}, batchDone: -1}
}
func (r *recorder) TaskAssigned(string, int, float64) {}
func (r *recorder) TaskCompleted(b string, id int, at float64) {
	r.completed[id]++
	r.compTimes[id] = at
}
func (r *recorder) BatchCompleted(b string, at float64) { r.batchDone = at }

func tasks(nops ...float64) []bot.Task {
	out := make([]bot.Task, len(nops))
	for i, n := range nops {
		out[i] = bot.Task{ID: i, NOps: n}
	}
	return out
}

func TestBasicExecution(t *testing.T) {
	eng := sim.NewEngine()
	s := New(eng, DefaultConfig())
	rec := newRecorder()
	s.AddListener(rec)
	s.Submit(middleware.Batch{ID: "b", Tasks: tasks(100, 200)})
	s.WorkerJoin(&middleware.Worker{ID: 0, Power: 1})
	eng.Run()
	if rec.batchDone != 300 {
		t.Fatalf("batch done at %v, want 300", rec.batchDone)
	}
	if s.MiddlewareName() != "CONDOR" {
		t.Fatal("name wrong")
	}
}

func TestCheckpointMigrationPreservesWork(t *testing.T) {
	eng := sim.NewEngine()
	cfg := Config{PollInterval: 300, CheckpointPeriod: 900}
	s := New(eng, cfg)
	rec := newRecorder()
	s.AddListener(rec)
	// 3600 s of work at power 1. The first machine dies at t=2000: two
	// 900-s checkpoints exist, preserving 1800 s of work.
	s.Submit(middleware.Batch{ID: "b", Tasks: tasks(3600)})
	w1 := &middleware.Worker{ID: 1, Power: 1}
	w2 := &middleware.Worker{ID: 2, Power: 1}
	s.WorkerJoin(w1)
	eng.At(2000, func() { s.WorkerLeave(w1) })
	eng.At(2000, func() { s.WorkerJoin(w2) })
	eng.Run()
	// Detection at 2000+150 (half poll interval); remaining work
	// 3600−1800 = 1800 s on w2 → completion at 2150+1800 = 3950.
	if rec.compTimes[0] != 3950 {
		t.Fatalf("completed at %v, want 3950 (checkpoint migration)", rec.compTimes[0])
	}
	if rec.completed[0] != 1 {
		t.Fatalf("completed %d times", rec.completed[0])
	}
}

func TestNoCheckpointLosesAllWork(t *testing.T) {
	eng := sim.NewEngine()
	s := New(eng, DefaultConfig())
	rec := newRecorder()
	s.AddListener(rec)
	// Dies at t=500, before the first 900-s checkpoint: full restart.
	s.Submit(middleware.Batch{ID: "b", Tasks: tasks(3600)})
	w1 := &middleware.Worker{ID: 1, Power: 1}
	w2 := &middleware.Worker{ID: 2, Power: 1}
	s.WorkerJoin(w1)
	eng.At(500, func() { s.WorkerLeave(w1) })
	eng.At(500, func() { s.WorkerJoin(w2) })
	eng.Run()
	// Detection at 650, full 3600 s on w2 → 4250.
	if rec.compTimes[0] != 4250 {
		t.Fatalf("completed at %v, want 4250 (restart from zero)", rec.compTimes[0])
	}
}

func TestFasterDetectionThanXWHEP(t *testing.T) {
	// Condor's poll-based detection (150 s expected) beats XWHEP's
	// 930 s heartbeat timeout for the same failure pattern.
	eng := sim.NewEngine()
	s := New(eng, DefaultConfig())
	rec := newRecorder()
	s.AddListener(rec)
	s.Submit(middleware.Batch{ID: "b", Tasks: tasks(1000)})
	w1 := &middleware.Worker{ID: 1, Power: 1}
	s.WorkerJoin(w1)
	eng.At(100, func() { s.WorkerLeave(w1) })
	eng.At(100, func() { s.WorkerJoin(&middleware.Worker{ID: 2, Power: 1}) })
	eng.Run()
	if rec.compTimes[0] != 100+150+1000 {
		t.Fatalf("completed at %v, want 1250", rec.compTimes[0])
	}
}

func TestRescheduleCloudDuplicate(t *testing.T) {
	eng := sim.NewEngine()
	s := New(eng, DefaultConfig())
	rec := newRecorder()
	s.AddListener(rec)
	s.SetReschedule(true)
	s.Submit(middleware.Batch{ID: "b", Tasks: tasks(100000)})
	s.WorkerJoin(&middleware.Worker{ID: 1, Power: 1})
	eng.At(60, func() { s.WorkerJoin(middleware.NewCloudWorker(0, 1000, "b")) })
	eng.Run()
	if rec.batchDone != 160 {
		t.Fatalf("batch done at %v, want 160 (cloud duplicate)", rec.batchDone)
	}
	if rec.completed[0] != 1 {
		t.Fatalf("completed %d times", rec.completed[0])
	}
}

func TestMarkCompletedAndIncomplete(t *testing.T) {
	eng := sim.NewEngine()
	s := New(eng, DefaultConfig())
	s.Submit(middleware.Batch{ID: "b", Tasks: tasks(1000, 1000)})
	s.WorkerJoin(&middleware.Worker{ID: 1, Power: 1})
	eng.RunUntil(100)
	if got := len(s.Incomplete("b")); got != 2 {
		t.Fatalf("incomplete = %d", got)
	}
	s.MarkCompleted("b", 0)
	s.MarkCompleted("b", 0) // idempotent
	eng.Run()
	if !s.Done("b") {
		t.Fatal("batch incomplete")
	}
	p := s.Progress("b")
	if p.Completed != 2 || p.Running != 0 {
		t.Fatalf("progress: %+v", p)
	}
}

func TestChurnStressInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		eng := sim.NewEngine()
		s := New(eng, DefaultConfig())
		rec := newRecorder()
		s.AddListener(rec)
		r := sim.NewRNG(seed)
		n := 15
		specs := make([]bot.Task, n)
		for i := range specs {
			specs[i] = bot.Task{ID: i, NOps: 100 + r.Float64()*2000}
		}
		s.Submit(middleware.Batch{ID: "b", Tasks: specs})
		s.WorkerJoin(&middleware.Worker{ID: 999, Power: 1})
		for i := 0; i < 5; i++ {
			w := &middleware.Worker{ID: i, Power: 0.5 + r.Float64()}
			at := r.Float64() * 1000
			dur := 200 + r.Float64()*2000
			eng.At(at, func() { s.WorkerJoin(w) })
			eng.At(at+dur, func() { s.WorkerLeave(w) })
		}
		eng.Run()
		if !s.Done("b") {
			return false
		}
		for i := 0; i < n; i++ {
			if rec.completed[i] != 1 {
				return false
			}
		}
		p := s.Progress("b")
		return p.Completed == n && p.Running == 0 && p.Queued == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicateBatchPanics(t *testing.T) {
	eng := sim.NewEngine()
	s := New(eng, DefaultConfig())
	s.Submit(middleware.Batch{ID: "b", Tasks: tasks(1)})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate batch accepted")
		}
	}()
	s.Submit(middleware.Batch{ID: "b", Tasks: tasks(1)})
}

func TestConfigDefaults(t *testing.T) {
	s := New(sim.NewEngine(), Config{})
	if s.cfg.PollInterval != 300 || s.cfg.CheckpointPeriod != 900 {
		t.Fatalf("defaults: %+v", s.cfg)
	}
}
