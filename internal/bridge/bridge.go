// Package bridge simulates the 3G-Bridge (Urbah et al., §3.7): the EDGI
// component that forwards tasks submitted to a regular Grid computing
// element onto a Desktop Grid server, transparently to the Grid user. The
// bridge preserves the SpeQuloS QoS identifier so that grid-submitted BoTs
// can still receive cloud QoS support — the paper's hybrid-infrastructure
// path (EGI → 3G-Bridge → XW@LAL → StratusLab).
package bridge

import (
	"fmt"
	"sort"
	"sync"

	"spequlos/internal/middleware"
)

// Bridge forwards grid batches to a Desktop Grid server and tracks
// per-source accounting (Table 5's "EGI tasks executed on the DGs").
type Bridge struct {
	target middleware.Server

	mu        sync.Mutex
	forwarded map[string]int    // grid source → tasks forwarded
	completed map[string]int    // grid source → tasks completed
	origin    map[string]string // batch id → grid source
	batches   map[string]middleware.Batch
}

// New builds a bridge in front of the given DG server. The bridge
// subscribes to completion events to maintain its accounting.
func New(target middleware.Server) *Bridge {
	b := &Bridge{
		target:    target,
		forwarded: map[string]int{},
		completed: map[string]int{},
		origin:    map[string]string{},
		batches:   map[string]middleware.Batch{},
	}
	target.AddListener(bridgeListener{b})
	return b
}

type bridgeListener struct{ b *Bridge }

func (l bridgeListener) TaskAssigned(string, int, float64) {}
func (l bridgeListener) TaskCompleted(batchID string, _ int, _ float64) {
	l.b.mu.Lock()
	defer l.b.mu.Unlock()
	if src, ok := l.b.origin[batchID]; ok {
		l.b.completed[src]++
	}
}
func (l bridgeListener) BatchCompleted(string, float64) {}

// SubmitGridBatch forwards a batch arriving from a grid computing element.
// The batch keeps its QoS identifier (batch ID), so SpeQuloS recognizes it
// on the DG side exactly as a natively-submitted BoT.
func (b *Bridge) SubmitGridBatch(gridSource string, batch middleware.Batch) error {
	if gridSource == "" {
		return fmt.Errorf("bridge: grid source required")
	}
	if len(batch.Tasks) == 0 {
		return fmt.Errorf("bridge: empty batch %q", batch.ID)
	}
	b.mu.Lock()
	if _, dup := b.origin[batch.ID]; dup {
		b.mu.Unlock()
		return fmt.Errorf("bridge: batch %q already forwarded", batch.ID)
	}
	b.origin[batch.ID] = gridSource
	b.forwarded[gridSource] += len(batch.Tasks)
	b.batches[batch.ID] = batch
	b.mu.Unlock()
	b.target.Submit(batch)
	return nil
}

// Origin returns the grid source a batch came through, if any.
func (b *Bridge) Origin(batchID string) (string, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	src, ok := b.origin[batchID]
	return src, ok
}

// Stats summarizes per-source accounting.
type Stats struct {
	Source    string
	Forwarded int
	Completed int
}

// StatsBySource returns the bridge accounting, sorted by source name.
func (b *Bridge) StatsBySource() []Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]Stats, 0, len(b.forwarded))
	for src, n := range b.forwarded {
		out = append(out, Stats{Source: src, Forwarded: n, Completed: b.completed[src]})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Source < out[j].Source })
	return out
}
