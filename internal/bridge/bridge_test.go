package bridge

import (
	"testing"

	"spequlos/internal/bot"
	"spequlos/internal/middleware"
	"spequlos/internal/sim"
	"spequlos/internal/xwhep"
)

func batchOf(id string, n int) middleware.Batch {
	tasks := make([]bot.Task, n)
	for i := range tasks {
		tasks[i] = bot.Task{ID: i, NOps: 100}
	}
	return middleware.Batch{ID: id, Tasks: tasks}
}

func TestForwardAndAccount(t *testing.T) {
	eng := sim.NewEngine()
	srv := xwhep.New(eng, xwhep.DefaultConfig())
	b := New(srv)

	if err := b.SubmitGridBatch("egi", batchOf("grid-1", 5)); err != nil {
		t.Fatal(err)
	}
	if err := b.SubmitGridBatch("egi", batchOf("grid-2", 3)); err != nil {
		t.Fatal(err)
	}
	if err := b.SubmitGridBatch("unicore", batchOf("grid-3", 2)); err != nil {
		t.Fatal(err)
	}
	srv.WorkerJoin(&middleware.Worker{ID: 1, Power: 1})
	eng.Run()

	if !srv.Done("grid-1") || !srv.Done("grid-2") || !srv.Done("grid-3") {
		t.Fatal("forwarded batches incomplete")
	}
	stats := b.StatsBySource()
	if len(stats) != 2 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats[0].Source != "egi" || stats[0].Forwarded != 8 || stats[0].Completed != 8 {
		t.Fatalf("egi stats = %+v", stats[0])
	}
	if stats[1].Source != "unicore" || stats[1].Forwarded != 2 || stats[1].Completed != 2 {
		t.Fatalf("unicore stats = %+v", stats[1])
	}
	if src, ok := b.Origin("grid-1"); !ok || src != "egi" {
		t.Fatalf("origin = %v %v", src, ok)
	}
	if _, ok := b.Origin("native"); ok {
		t.Fatal("phantom origin")
	}
}

func TestValidation(t *testing.T) {
	eng := sim.NewEngine()
	srv := xwhep.New(eng, xwhep.DefaultConfig())
	b := New(srv)
	if err := b.SubmitGridBatch("", batchOf("x", 1)); err == nil {
		t.Fatal("empty source accepted")
	}
	if err := b.SubmitGridBatch("egi", middleware.Batch{ID: "y"}); err == nil {
		t.Fatal("empty batch accepted")
	}
	if err := b.SubmitGridBatch("egi", batchOf("z", 1)); err != nil {
		t.Fatal(err)
	}
	if err := b.SubmitGridBatch("arc", batchOf("z", 1)); err == nil {
		t.Fatal("duplicate forward accepted")
	}
}

func TestQoSIdentifierPreserved(t *testing.T) {
	// A grid-forwarded batch keeps its ID, so a dedicated cloud worker
	// recognizes it on the DG side (the EDGI hybrid path).
	eng := sim.NewEngine()
	srv := xwhep.New(eng, xwhep.DefaultConfig())
	b := New(srv)
	if err := b.SubmitGridBatch("egi", batchOf("qos-bot", 2)); err != nil {
		t.Fatal(err)
	}
	srv.WorkerJoin(middleware.NewCloudWorker(0, 10, "qos-bot"))
	eng.Run()
	if !srv.Done("qos-bot") {
		t.Fatal("dedicated cloud worker did not serve the bridged batch")
	}
}
