package campaign

import (
	"hash/fnv"
	"runtime"

	"spequlos/internal/cloud"
	"spequlos/internal/core"
	"spequlos/internal/metrics"
	"spequlos/internal/middleware"
	"spequlos/internal/sim"
	"spequlos/internal/xwhep"
)

// useShardedKernel reports whether a job runs on the multi-core sharded
// kernel. Every strategy family is supported — CloudDuplication's result
// mirror rides the barrier exchange and tier arbitration runs as a
// control-engine reduction — so the answer is exactly the profile's
// ShardedKernel flag: a pure function of the job key, never of the
// strategy, and with no silent serial fallback for any coupling.
func useShardedKernel(j Job) bool {
	return j.Scenario.Profile.ShardedKernel
}

// shardParts resolves the worker-pool partition count of a single-BoT
// sharded cell (Profile.ShardParts, default 8). The partition count is
// part of the model — it decides the round-robin task split and the
// rebalance topology — so it feeds the job key.
func shardParts(p Profile) int {
	if p.ShardParts > 0 {
		return p.ShardParts
	}
	return 8
}

// kernelShardCount resolves the execution shard count: the profile's
// KernelShards, defaulting to GOMAXPROCS, capped at the batch count (extra
// shards would idle).
func kernelShardCount(p Profile, nb int) int {
	n := p.KernelShards
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > nb {
		n = nb
	}
	if n < 1 {
		n = 1
	}
	return n
}

// batchShard stably maps a sub-batch onto a kernel shard (FNV-32a, the
// scheduler plan-pool idiom). The mapping only balances load: batches are
// independent between barriers, so results do not depend on it.
func batchShard(id string, shards int) int {
	h := fnv.New32a()
	h.Write([]byte(id))
	return int(h.Sum32() % uint32(shards))
}

// subCell is one sub-batch's slice of a sharded cell: its own DG server on
// a shard engine plus a shard-local completion record. The listener fires
// on the owning shard's goroutine during parallel windows, so it must only
// write this cell's fields; the barrier loop reads them serially.
type subCell struct {
	id          string
	srv         middleware.Server
	done        bool
	completedAt float64
}

func (c *subCell) TaskAssigned(string, int, float64)  {}
func (c *subCell) TaskCompleted(string, int, float64) {}
func (c *subCell) BatchCompleted(id string, at float64) {
	if id == c.id && !c.done {
		c.done = true
		c.completedAt = at
	}
}

// executeSharded is one bounded-horizon simulation of a multi-batch cell on
// the sim.Sharded kernel. The model is partitioned per batch — each
// sub-batch gets its own middleware server and a dedicated stable-hashed
// slice of the trace's nodes — and batches are grouped onto parallel event
// heaps. Cross-batch effects exist only inside the QoS service (cloud
// fleet, credit ledger, monitor decisions), which lives on the control
// engine and runs serially at tick barriers, so results are byte-identical
// at any shard count; KernelShards=1 is the serial reference.
func executeSharded(j Job, horizon float64) Entry {
	sc := j.Scenario
	seed := sc.Seed()
	nb := sc.SubBatches()
	ns := kernelShardCount(sc.Profile, nb)
	res := Result{
		Middleware: sc.Middleware, TraceName: sc.TraceName, BotClass: sc.BotClass,
		Offset: sc.Offset, Seed: seed, TriggeredAt: -1,
	}

	var cfg core.Config
	useService := false
	creditFraction := sc.Profile.CreditFraction
	switch {
	case j.Config != nil:
		cfg = *j.Config
		useService = true
		if j.CreditFraction != nil {
			creditFraction = *j.CreditFraction
		}
		res.Strategy = cfg.Strategy.Label()
	case sc.Strategy != nil:
		cfg = core.Config{Strategy: *sc.Strategy, MonitorPeriod: DefaultMonitorPeriod}
		useService = true
		res.Strategy = sc.Strategy.Label()
	}

	kernel := sim.NewSharded(ns)
	ctl := kernel.Control()
	tr, releaseTrace, err := CachedTrace(sc, horizon)
	if err != nil {
		panic(err)
	}
	defer releaseTrace()

	// mirrorBoxes carries CloudDuplication's primary-side completions from
	// the shard goroutines into the barrier exchange: one outbox per batch,
	// created in batch order (the deterministic merge tie-break), written
	// only by the batch's own shard.
	mirrorBoxes := make(map[string]*sim.Outbox, nb)
	var svc *core.Service
	if useService {
		simCloud := cloud.NewSimCloud(ctl, cloud.DefaultSimConfig(), sim.NewRNG(seed))
		if cfg.CloudServerFactory == nil {
			cfg.CloudServerFactory = func() middleware.Server {
				return xwhep.New(ctl, xwhep.DefaultConfig())
			}
		}
		if sc.Profile.Shards > 0 && cfg.Shards == 0 {
			cfg.Shards = sc.Profile.Shards
		}
		if sc.Profile.Tiered && cfg.Tiers == nil {
			cfg.Tiers = core.DefaultTierPolicy()
			cfg.Tiers.FleetCap = sc.Profile.FleetCap
		}
		// The topic handler replays a mirrored completion on the control
		// engine at its exact virtual time (svc is captured by reference; it
		// exists before the kernel runs).
		mirrorTopic := kernel.RegisterTopic(func(m sim.Msg) {
			svc.DeliverMirror(m.S, int(m.I))
		})
		cfg.MirrorPost = func(batchID string, taskID int, at float64) {
			mirrorBoxes[batchID].Post(sim.Msg{Time: at, Topic: mirrorTopic, I: int32(taskID), S: batchID})
		}
		svc = core.NewShardedService(ctl, simCloud, cfg)
	}

	cells := make([]*subCell, nb)
	res.Batches = make([]BatchResult, nb)
	for k := 0; k < nb; k++ {
		workload, err := sc.SubWorkload(k)
		if err != nil {
			panic(err)
		}
		id := sc.SubBotID(k)
		at := sc.SubmitAt(k)
		tier := sc.SubTier(k)
		res.Batches[k] = BatchResult{
			BatchID: id, SubmittedAt: at, Size: workload.Size(), TriggeredAt: -1,
			Tier: string(tier),
		}
		res.Size += workload.Size()

		shardEng := kernel.Shard(batchShard(id, ns))
		srv := newServer(shardEng, sc.Middleware)
		// The batch's dedicated slice of the common pool: partition k of nb,
		// a pure function of the node IDs — invariant under the shard count.
		middleware.BindTracePartition(shardEng, tr, srv, k, nb)
		cell := &subCell{id: id, srv: srv}
		cells[k] = cell
		srv.AddListener(cell)

		// The submission fires on the batch's shard; the service-side
		// registration fires on the control engine at the same instant, i.e.
		// at the barrier closing that window.
		shardEng.At(at, func() { srv.Submit(middleware.BatchFromBoT(workload)) })
		if svc != nil {
			mirrorBoxes[id] = kernel.NewOutbox()
			br := &res.Batches[k]
			ctl.At(at, func() {
				if err := svc.RegisterQoSShardTier("user", id, sc.EnvKey(), workload.Size(), tier, srv); err != nil {
					panic(err)
				}
				credits := creditFraction * workload.WorkloadCPUHours() * svc.Credits.Rate()
				if credits > 0 {
					svc.Credits.Deposit("user", credits)
					if err := svc.OrderQoS("user", id, credits); err != nil {
						panic(err)
					}
					br.CreditsAllocated = credits
				}
			})
		}
	}

	// Barrier window: the monitor period when a service runs (its tick is
	// the only cross-shard actor), else the horizon — with no control events
	// a baseline dispatches in one window per idle gap.
	window := horizon
	if useService {
		window = cfg.MonitorPeriod
		if window <= 0 {
			window = DefaultMonitorPeriod
		}
	}
	kernel.Run(window, func() bool {
		if ctl.Now() > horizon {
			return true
		}
		for _, c := range cells {
			if !c.done {
				return false
			}
		}
		return true
	})

	res.Events = kernel.Executed()
	st := kernel.Stats()
	res.KernelShards = ns
	res.Barriers = st.Barriers
	res.ShardEvents = st.ShardEvents
	res.BarrierStallSec = st.StallSeconds

	res.Completed = true
	for k := range res.Batches {
		br := &res.Batches[k]
		cell := cells[k]
		if cell.done {
			br.Completed = true
			br.CompletionTime = cell.completedAt - br.SubmittedAt
			if cell.completedAt > res.CompletionTime {
				res.CompletionTime = cell.completedAt // the cell's makespan
			}
		} else {
			res.Completed = false
		}
		res.CreditsAllocated += br.CreditsAllocated
		if svc == nil {
			continue
		}
		if u, err := svc.Usage(br.BatchID); err == nil {
			br.CreditsBilled = u.CreditsBilled
			br.Instances = u.InstancesStarted
			if u.TriggeredAt >= 0 {
				br.TriggeredAt = u.TriggeredAt - br.SubmittedAt
				if res.TriggeredAt < 0 || u.TriggeredAt < res.TriggeredAt {
					res.TriggeredAt = u.TriggeredAt // earliest trigger in the cell
				}
			}
			res.CreditsBilled += u.CreditsBilled
			res.CloudCPUSeconds += u.CPUSeconds
			res.Instances += u.InstancesStarted
		}
	}
	if !res.Completed {
		res.CompletionTime = 0
	}
	return Entry{Result: res}
}

// executeShardedSingle is one bounded-horizon simulation of a single-BoT
// cell on the sim.Sharded kernel. With only one batch there is nothing to
// partition per batch, so the model partitions the worker pool instead:
// the batch splits round-robin across shardParts part servers, each with a
// stable-hashed slice of the trace's nodes, composed by
// middleware.Partitioned. Task events replay on the control engine through
// the barrier exchange and queued work rebalances between partitions at
// barriers, so the barrier cadence is part of the model: it is pinned to
// the monitor period (DefaultMonitorPeriod for baselines), a pure function
// of the job key and never of the shard count. The result keeps the
// classic single-BoT shape (tail metrics, no Batches array) plus the
// kernel execution counters.
func executeShardedSingle(j Job, horizon float64) Entry {
	sc := j.Scenario
	seed := sc.Seed()
	parts := shardParts(sc.Profile)
	ns := kernelShardCount(sc.Profile, parts)
	res := Result{
		Middleware: sc.Middleware, TraceName: sc.TraceName, BotClass: sc.BotClass,
		Offset: sc.Offset, Seed: seed,
	}

	var cfg core.Config
	useService := false
	creditFraction := sc.Profile.CreditFraction
	switch {
	case j.Config != nil:
		cfg = *j.Config
		useService = true
		if j.CreditFraction != nil {
			creditFraction = *j.CreditFraction
		}
		res.Strategy = cfg.Strategy.Label()
	case sc.Strategy != nil:
		cfg = core.Config{Strategy: *sc.Strategy, MonitorPeriod: DefaultMonitorPeriod}
		useService = true
		res.Strategy = sc.Strategy.Label()
	}

	kernel := sim.NewSharded(ns)
	ctl := kernel.Control()
	tr, releaseTrace, err := CachedTrace(sc, horizon)
	if err != nil {
		panic(err)
	}
	defer releaseTrace()

	partSrvs := make([]middleware.Server, parts)
	for p := 0; p < parts; p++ {
		// Partition p of the pool on shard p%ns: the node split is a pure
		// function of (node ID, parts) — invariant under the shard count.
		shardEng := kernel.Shard(p % ns)
		partSrvs[p] = newServer(shardEng, sc.Middleware)
		middleware.BindTracePartition(shardEng, tr, partSrvs[p], p, parts)
	}
	comp := middleware.NewPartitioned(kernel, partSrvs)

	botID := sc.BotID()
	workload, err := sc.Workload()
	if err != nil {
		panic(err)
	}
	res.Size = workload.Size()

	rec := &recorder{batchID: botID}
	comp.AddListener(rec)
	cell := &subCell{id: botID, srv: comp}
	comp.AddListener(cell)

	var svc *core.Service
	if useService {
		simCloud := cloud.NewSimCloud(ctl, cloud.DefaultSimConfig(), sim.NewRNG(seed))
		if cfg.CloudServerFactory == nil {
			cfg.CloudServerFactory = func() middleware.Server {
				return xwhep.New(ctl, xwhep.DefaultConfig())
			}
		}
		if sc.Profile.Shards > 0 && cfg.Shards == 0 {
			cfg.Shards = sc.Profile.Shards
		}
		// The composite already replays primary-side completions on the
		// control engine at their exact virtual times, so the mirror
		// direction needs no second exchange hop: deliver directly.
		cfg.MirrorPost = func(batchID string, taskID int, _ float64) {
			svc.DeliverMirror(batchID, taskID)
		}
		svc = core.NewShardedService(ctl, simCloud, cfg)
		if err := svc.RegisterQoSShard("user", botID, sc.EnvKey(), workload.Size(), comp); err != nil {
			panic(err)
		}
		credits := creditFraction * workload.WorkloadCPUHours() * svc.Credits.Rate()
		if credits > 0 {
			svc.Credits.Deposit("user", credits)
			if err := svc.OrderQoS("user", botID, credits); err != nil {
				panic(err)
			}
			res.CreditsAllocated = credits
		}
	}

	comp.Submit(middleware.BatchFromBoT(workload))

	window := DefaultMonitorPeriod
	if useService {
		window = cfg.MonitorPeriod
		if window <= 0 {
			window = DefaultMonitorPeriod
		}
	}
	kernel.Run(window, func() bool {
		return ctl.Now() > horizon || cell.done
	})

	res.Events = kernel.Executed()
	st := kernel.Stats()
	res.KernelShards = ns
	res.Barriers = st.Barriers
	res.ShardEvents = st.ShardEvents
	res.BarrierStallSec = st.StallSeconds

	res.Completed = cell.done
	entry := Entry{}
	if res.Completed {
		res.CompletionTime = cell.completedAt
		if tail, ok := metrics.ComputeTail(rec.completions); ok {
			res.Tail = tail
		}
		if n := len(rec.completions); n >= 2 {
			series := metrics.CompletionSeries(rec.completions)
			half := series[(n+1)/2-1].T
			if half > 0 {
				res.TC50Base = half / 0.5
			}
		}
		if j.KeepSeries {
			entry.Series = metrics.CompletionSeries(rec.completions)
		}
	}
	if svc != nil {
		if u, err := svc.Usage(botID); err == nil {
			res.CreditsBilled = u.CreditsBilled
			res.CloudCPUSeconds = u.CPUSeconds
			res.Instances = u.InstancesStarted
			res.TriggeredAt = u.TriggeredAt
		}
	}
	entry.Result = res
	return entry
}
