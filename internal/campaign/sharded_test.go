package campaign

import (
	"encoding/json"
	"strings"
	"testing"

	"spequlos/internal/core"
)

// miniSharded returns a small sharded-kernel cell profile sized for tests.
func miniSharded(kernelShards int) Profile {
	return Profile{
		Name: "ministress", BotScale: 0.01, Offsets: 1, PoolCap: 240,
		HorizonDays: 10, CreditFraction: 0.10,
		Batches: 8, SubmitSpread: 1800, ShardedKernel: true,
		KernelShards: kernelShards,
	}
}

// normalizeSharded strips the execution-only counters (shard layout, wall
// clock) so results can be compared across kernel shard counts.
func normalizeSharded(r Result) Result {
	r.KernelShards = 0
	r.Barriers = 0
	r.ShardEvents = nil
	r.BarrierStallSec = 0
	return r
}

func runMini(t *testing.T, shards int, withStrategy bool) Result {
	t.Helper()
	sc := Scenario{
		Profile: miniSharded(shards), Middleware: XWHEP, TraceName: "seti",
		BotClass: "SMALL",
	}
	if withStrategy {
		st := core.DefaultStrategy()
		sc.Strategy = &st
	}
	e := Execute(Job{Scenario: sc})
	if e.Result.KernelShards != shards && !(shards > 8) {
		t.Fatalf("cell ran with %d kernel shards, want %d", e.Result.KernelShards, shards)
	}
	return e.Result
}

// TestShardedKernelDeterminism is the shard-count determinism guard: the
// same cell must produce byte-identical results (JSON-compared, execution
// counters excluded) at 1, 2, 4 and 8 shards, with and without the QoS
// service. The 1-shard run is the serial reference.
func TestShardedKernelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("sharded determinism table is not -short")
	}
	for _, withStrategy := range []bool{false, true} {
		name := "baseline"
		if withStrategy {
			name = "strategy"
		}
		t.Run(name, func(t *testing.T) {
			ref := runMini(t, 1, withStrategy)
			if !ref.Completed {
				t.Fatalf("reference (1-shard) cell did not complete: %+v", ref)
			}
			refJSON, err := json.Marshal(normalizeSharded(ref))
			if err != nil {
				t.Fatal(err)
			}
			for _, shards := range []int{2, 4, 8} {
				got := runMini(t, shards, withStrategy)
				gotJSON, err := json.Marshal(normalizeSharded(got))
				if err != nil {
					t.Fatal(err)
				}
				if string(gotJSON) != string(refJSON) {
					t.Fatalf("result diverged at %d shards:\n 1: %s\n%2d: %s",
						shards, refJSON, shards, gotJSON)
				}
			}
		})
	}
}

func TestShardedKernelStatsRecorded(t *testing.T) {
	res := runMini(t, 2, true)
	if !res.Completed {
		t.Fatalf("cell did not complete")
	}
	if res.Barriers == 0 {
		t.Fatal("no barriers recorded")
	}
	if len(res.ShardEvents) != 2 {
		t.Fatalf("ShardEvents = %v, want 2 shards", res.ShardEvents)
	}
	var sum uint64
	for _, c := range res.ShardEvents {
		sum += c
	}
	if sum == 0 || sum > res.Events {
		t.Fatalf("shard events %d inconsistent with total %d", sum, res.Events)
	}
	// The service must have engaged on its control engine: a strategy cell
	// with credits should trigger cloud support for at least one batch.
	if res.Instances == 0 {
		t.Fatal("strategy cell started no cloud instances")
	}
}

// TestUseShardedKernelFallbacks pins the model-routing rule: couplings the
// barrier protocol cannot express run on the single-server model.
func TestUseShardedKernelFallbacks(t *testing.T) {
	p := miniSharded(2)
	base := Job{Scenario: Scenario{Profile: p, Middleware: XWHEP, TraceName: "seti", BotClass: "SMALL"}}
	if !useShardedKernel(base) {
		t.Fatal("plain sharded-kernel cell should use the sharded kernel")
	}
	dup := base
	st := core.Strategy{Trigger: core.CompletionThreshold{Frac: 0.9}, Sizing: core.Conservative{}, Deploy: core.CloudDuplication}
	dup.Scenario.Strategy = &st
	if useShardedKernel(dup) {
		t.Fatal("CloudDuplication cell must fall back to the single-server model")
	}
	tiered := base
	tiered.Scenario.Profile.Tiered = true
	if useShardedKernel(tiered) {
		t.Fatal("tiered cell must fall back to the single-server model")
	}
}

// TestShardedKernelInJobKey pins that the model flag keys the job while the
// execution shard count does not.
func TestShardedKernelInJobKey(t *testing.T) {
	j1 := Job{Scenario: Scenario{Profile: miniSharded(1), Middleware: XWHEP, TraceName: "seti", BotClass: "SMALL"}}
	j4 := Job{Scenario: Scenario{Profile: miniSharded(4), Middleware: XWHEP, TraceName: "seti", BotClass: "SMALL"}}
	if j1.Key() != j4.Key() {
		t.Fatalf("KernelShards leaked into the job key:\n%s\n%s", j1.Key(), j4.Key())
	}
	if !strings.Contains(j1.Key(), ",skernel") {
		t.Fatalf("sharded-kernel model missing from job key: %s", j1.Key())
	}
	serial := j1
	serial.Scenario.Profile.ShardedKernel = false
	if serial.Key() == j1.Key() {
		t.Fatal("sharded and single-server models share a job key")
	}
}

// TestStressProfileSharded pins the stress profile's PR 7 shape.
func TestStressProfileSharded(t *testing.T) {
	p := Stress()
	if !p.ShardedKernel || p.Batches != 32 {
		t.Fatalf("stress profile = %+v, want ShardedKernel with 32 batches", p)
	}
}
