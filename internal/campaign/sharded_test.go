package campaign

import (
	"encoding/json"
	"strings"
	"testing"

	"spequlos/internal/core"
)

// miniSharded returns a small sharded-kernel cell profile sized for tests.
func miniSharded(kernelShards int) Profile {
	return Profile{
		Name: "ministress", BotScale: 0.01, Offsets: 1, PoolCap: 240,
		HorizonDays: 10, CreditFraction: 0.10,
		Batches: 8, SubmitSpread: 1800, ShardedKernel: true,
		KernelShards: kernelShards,
	}
}

// normalizeSharded strips the execution-only counters (shard layout, wall
// clock) so results can be compared across kernel shard counts.
func normalizeSharded(r Result) Result {
	r.KernelShards = 0
	r.Barriers = 0
	r.ShardEvents = nil
	r.BarrierStallSec = 0
	return r
}

func runMini(t *testing.T, shards int, withStrategy bool) Result {
	t.Helper()
	sc := Scenario{
		Profile: miniSharded(shards), Middleware: XWHEP, TraceName: "seti",
		BotClass: "SMALL",
	}
	if withStrategy {
		st := core.DefaultStrategy()
		sc.Strategy = &st
	}
	e := Execute(Job{Scenario: sc})
	if e.Result.KernelShards != shards && !(shards > 8) {
		t.Fatalf("cell ran with %d kernel shards, want %d", e.Result.KernelShards, shards)
	}
	return e.Result
}

// TestShardedKernelDeterminism is the shard-count determinism guard: the
// same cell must produce byte-identical results (JSON-compared, execution
// counters excluded) at 1, 2, 4 and 8 shards, with and without the QoS
// service. The 1-shard run is the serial reference.
func TestShardedKernelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("sharded determinism table is not -short")
	}
	for _, withStrategy := range []bool{false, true} {
		name := "baseline"
		if withStrategy {
			name = "strategy"
		}
		t.Run(name, func(t *testing.T) {
			ref := runMini(t, 1, withStrategy)
			if !ref.Completed {
				t.Fatalf("reference (1-shard) cell did not complete: %+v", ref)
			}
			refJSON, err := json.Marshal(normalizeSharded(ref))
			if err != nil {
				t.Fatal(err)
			}
			for _, shards := range []int{2, 4, 8} {
				got := runMini(t, shards, withStrategy)
				gotJSON, err := json.Marshal(normalizeSharded(got))
				if err != nil {
					t.Fatal(err)
				}
				if string(gotJSON) != string(refJSON) {
					t.Fatalf("result diverged at %d shards:\n 1: %s\n%2d: %s",
						shards, refJSON, shards, gotJSON)
				}
			}
		})
	}
}

func TestShardedKernelStatsRecorded(t *testing.T) {
	res := runMini(t, 2, true)
	if !res.Completed {
		t.Fatalf("cell did not complete")
	}
	if res.Barriers == 0 {
		t.Fatal("no barriers recorded")
	}
	if len(res.ShardEvents) != 2 {
		t.Fatalf("ShardEvents = %v, want 2 shards", res.ShardEvents)
	}
	var sum uint64
	for _, c := range res.ShardEvents {
		sum += c
	}
	if sum == 0 || sum > res.Events {
		t.Fatalf("shard events %d inconsistent with total %d", sum, res.Events)
	}
	// The service must have engaged on its control engine: a strategy cell
	// with credits should trigger cloud support for at least one batch.
	if res.Instances == 0 {
		t.Fatal("strategy cell started no cloud instances")
	}
}

// TestUseShardedKernelRouting pins the model-routing rule since PR 9:
// Profile.ShardedKernel routes EVERY strategy family onto the sharded
// kernel — CloudDuplication rides the barrier exchange, tier arbitration
// runs as a control-engine reduction, single-BoT cells shard their worker
// pool — with no silent serial fallback for any coupling; and nothing
// without the flag ever routes there.
func TestUseShardedKernelRouting(t *testing.T) {
	p := miniSharded(2)
	base := Job{Scenario: Scenario{Profile: p, Middleware: XWHEP, TraceName: "seti", BotClass: "SMALL"}}
	if !useShardedKernel(base) {
		t.Fatal("plain sharded-kernel cell should use the sharded kernel")
	}
	dup := base
	st := core.Strategy{Trigger: core.CompletionThreshold{Frac: 0.5}, Sizing: core.Conservative{}, Deploy: core.CloudDuplication}
	dup.Scenario.Strategy = &st
	if !useShardedKernel(dup) {
		t.Fatal("CloudDuplication cell must run on the sharded kernel, not fall back")
	}
	tiered := base
	tiered.Scenario.Profile.Tiered = true
	if !useShardedKernel(tiered) {
		t.Fatal("tiered cell must run on the sharded kernel, not fall back")
	}
	single := base
	single.Scenario.Profile.Batches = 0
	if !useShardedKernel(single) {
		t.Fatal("single-BoT cell must run on the sharded kernel (intra-batch pool sharding)")
	}
	plain := base
	plain.Scenario.Profile.ShardedKernel = false
	if useShardedKernel(plain) {
		t.Fatal("profile without ShardedKernel must not route to the sharded kernel")
	}
}

// miniTiered returns a crowd2k-subset cell profile sized for tests: ten
// batches split 2/3/5 across the enterprise/premium/free tiers, contending
// for a two-batch cloud fleet cap.
func miniTiered(kernelShards int) Profile {
	return Profile{
		Name: "minicrowd2k", BotScale: 0.01, Offsets: 1, PoolCap: 240,
		HorizonDays: 10, CreditFraction: 0.10,
		Batches: 10, SubmitSpread: 1800, Tiered: true, FleetCap: 2,
		ShardedKernel: true, KernelShards: kernelShards,
	}
}

// miniFull samples the full profile's single-BoT sharded shape at test
// scale: one BoT split round-robin across four worker-pool partitions.
func miniFull(kernelShards int) Profile {
	return Profile{
		Name: "minifull", BotScale: 0.02, Offsets: 1, PoolCap: 240,
		HorizonDays: 10, CreditFraction: 0.10,
		ShardedKernel: true, ShardParts: 4, KernelShards: kernelShards,
	}
}

// runShardedDeterminism executes the scenario at 1, 2, 4 and 8 kernel
// shards and fails on any byte difference (execution counters excluded);
// the 1-shard run is the serial reference, so this doubles as the
// sharded-vs-serial conformance check for the cell's couplings.
func runShardedDeterminism(t *testing.T, mk func(shards int) Scenario) Result {
	t.Helper()
	ref := Execute(Job{Scenario: mk(1)}).Result
	if !ref.Completed {
		t.Fatalf("reference (1-shard) cell did not complete: %+v", ref)
	}
	refJSON, err := json.Marshal(normalizeSharded(ref))
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{2, 4, 8} {
		got := Execute(Job{Scenario: mk(shards)}).Result
		gotJSON, err := json.Marshal(normalizeSharded(got))
		if err != nil {
			t.Fatal(err)
		}
		if string(gotJSON) != string(refJSON) {
			t.Fatalf("result diverged at %d shards:\n 1: %s\n%2d: %s",
				shards, refJSON, shards, gotJSON)
		}
	}
	return ref
}

// TestShardedCloudDupDeterminism pins the barrier-exchanged result mirror:
// a CloudDuplication cell is byte-identical at 1/2/4/8 shards, and the
// mirror actually engaged (cloud instances started).
func TestShardedCloudDupDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("sharded determinism table is not -short")
	}
	st := core.Strategy{Trigger: core.CompletionThreshold{Frac: 0.5}, Sizing: core.Conservative{}, Deploy: core.CloudDuplication}
	ref := runShardedDeterminism(t, func(shards int) Scenario {
		return Scenario{
			Profile: miniSharded(shards), Middleware: XWHEP, TraceName: "seti",
			BotClass: "SMALL", Strategy: &st,
		}
	})
	if ref.Instances == 0 {
		t.Fatal("CloudDuplication cell started no cloud instances — the mirror was never exercised")
	}
}

// TestShardedTieredDeterminism pins tier arbitration as a control-engine
// reduction: a contended tiered cell (crowd2k subset) is byte-identical at
// 1/2/4/8 shards.
func TestShardedTieredDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("sharded determinism table is not -short")
	}
	st := core.DefaultStrategy()
	ref := runShardedDeterminism(t, func(shards int) Scenario {
		return Scenario{
			Profile: miniTiered(shards), Middleware: XWHEP, TraceName: "seti",
			BotClass: "SMALL", Strategy: &st,
		}
	})
	if ref.Instances == 0 {
		t.Fatal("tiered cell started no cloud instances — arbitration was never exercised")
	}
}

// TestShardedSingleBoTDeterminism pins intra-batch pool sharding: a
// single-BoT cell partitioned across four part servers is byte-identical
// at 1/2/4/8 shards (8 caps to the partition count), with and without the
// QoS service.
func TestShardedSingleBoTDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("sharded determinism table is not -short")
	}
	for _, withStrategy := range []bool{false, true} {
		name := "baseline"
		if withStrategy {
			name = "strategy"
		}
		t.Run(name, func(t *testing.T) {
			ref := runShardedDeterminism(t, func(shards int) Scenario {
				sc := Scenario{
					Profile: miniFull(shards), Middleware: XWHEP, TraceName: "seti",
					BotClass: "SMALL",
				}
				if withStrategy {
					st := core.DefaultStrategy()
					sc.Strategy = &st
				}
				return sc
			})
			if len(ref.Batches) != 0 {
				t.Fatalf("single-BoT cell grew a Batches array: %+v", ref.Batches)
			}
			if ref.Tail.Size == 0 && ref.Size > 1 {
				t.Fatalf("single-BoT cell lost its tail metrics: %+v", ref.Tail)
			}
		})
	}
}

// TestShardedKernelInJobKey pins that the model flag keys the job while the
// execution shard count does not.
func TestShardedKernelInJobKey(t *testing.T) {
	j1 := Job{Scenario: Scenario{Profile: miniSharded(1), Middleware: XWHEP, TraceName: "seti", BotClass: "SMALL"}}
	j4 := Job{Scenario: Scenario{Profile: miniSharded(4), Middleware: XWHEP, TraceName: "seti", BotClass: "SMALL"}}
	if j1.Key() != j4.Key() {
		t.Fatalf("KernelShards leaked into the job key:\n%s\n%s", j1.Key(), j4.Key())
	}
	if !strings.Contains(j1.Key(), ",skernel") {
		t.Fatalf("sharded-kernel model missing from job key: %s", j1.Key())
	}
	serial := j1
	serial.Scenario.Profile.ShardedKernel = false
	if serial.Key() == j1.Key() {
		t.Fatal("sharded and single-server models share a job key")
	}

	// A single-BoT sharded cell keys on its partition count.
	single := Job{Scenario: Scenario{Profile: miniFull(1), Middleware: XWHEP, TraceName: "seti", BotClass: "SMALL"}}
	if !strings.Contains(single.Key(), ",skernel,parts4") {
		t.Fatalf("single-BoT sharded key missing the partition count: %s", single.Key())
	}
	single8 := single
	single8.Scenario.Profile.KernelShards = 8
	if single.Key() != single8.Key() {
		t.Fatal("KernelShards leaked into the single-BoT job key")
	}

	// Model routing is explicitly a pure function of the key: a job runs on
	// the sharded kernel exactly when its key carries the skernel marker,
	// for every strategy family — no strategy- or deployment-dependent
	// fallback can exist without breaking this equivalence.
	dupSt := core.Strategy{Trigger: core.CompletionThreshold{Frac: 0.5}, Sizing: core.Conservative{}, Deploy: core.CloudDuplication}
	dup := j1
	dup.Scenario.Strategy = &dupSt
	tiered := j1
	tiered.Scenario.Profile.Tiered = true
	for _, j := range []Job{j1, j4, serial, single, single8, dup, tiered} {
		if useShardedKernel(j) != strings.Contains(j.Key(), ",skernel") {
			t.Fatalf("model routing is not a pure function of the job key: %s", j.Key())
		}
	}
}

// TestStressProfileSharded pins the stress profile's PR 7 shape.
func TestStressProfileSharded(t *testing.T) {
	p := Stress()
	if !p.ShardedKernel || p.Batches != 32 {
		t.Fatalf("stress profile = %+v, want ShardedKernel with 32 batches", p)
	}
}
