package campaign

import (
	"sync"

	"spequlos/internal/trace"
)

// Availability traces are a pure function of (source, seed, horizon, pool)
// and dominate simulation cost: synthesizing one draws millions of quantile
// samples (math.Pow is ~half the campaign's CPU), yet every strategy variant
// of the same (middleware, trace, bot, offset) cell needs the identical
// trace — the paper's paired comparison reuses one seed across the baseline
// and all 18 strategy combinations. The cache generates each distinct trace
// once and shares the immutable result across jobs and workers.
//
// Traces are never mutated after generation (the binding and the statistics
// layer only read them), so sharing a *trace.Trace across concurrent
// simulations is safe.

// traceKey identifies one deterministic generation.
type traceKey struct {
	name    string
	seed    uint64
	horizon float64
	pool    int
}

// traceCacheEntry carries a generation-in-progress or its result; ready is
// closed once tr is set, so concurrent requests for the same trace wait for
// one generation instead of duplicating it.
type traceCacheEntry struct {
	ready chan struct{}
	tr    *trace.Trace
}

// traceCache is a bounded, concurrency-safe, single-flight trace cache.
type traceCache struct {
	mu      sync.Mutex
	max     int
	entries map[traceKey]*traceCacheEntry
	order   []traceKey // FIFO eviction order
}

// defaultTraceCacheSize bounds resident traces. The quick matrix needs 72
// distinct traces (2 middleware × 6 traces × 3 bots × 2 offsets) of ~250
// nodes; paper-scale traces are larger, so the bound keeps the cache within
// a few hundred MB in the worst case while still absorbing the ~19×
// per-cell reuse (jobs of one cell are planned adjacently).
const defaultTraceCacheSize = 96

// sharedTraceCache serves every campaign in the process.
var sharedTraceCache = newTraceCache(defaultTraceCacheSize)

func newTraceCache(max int) *traceCache {
	return &traceCache{max: max, entries: map[traceKey]*traceCacheEntry{}}
}

// get returns the cached trace for the scenario, generating it (once,
// whatever the concurrency) on a miss.
func (c *traceCache) get(sc Scenario, horizon float64) (*trace.Trace, error) {
	key := traceKey{name: sc.TraceName, seed: sc.Seed(), horizon: horizon, pool: sc.Profile.PoolCap}

	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		e = &traceCacheEntry{ready: make(chan struct{})}
		c.entries[key] = e
		c.order = append(c.order, key)
		if len(c.order) > c.max {
			oldest := c.order[0]
			c.order = c.order[1:]
			delete(c.entries, oldest)
		}
		c.mu.Unlock()

		tr, err := sc.GenerateTrace(horizon)
		if err != nil {
			// Drop the entry so a later request does not wait forever on a
			// generation that never happened; then fail this caller.
			c.mu.Lock()
			if cur, still := c.entries[key]; still && cur == e {
				delete(c.entries, key)
				for i, k := range c.order {
					if k == key {
						c.order = append(c.order[:i], c.order[i+1:]...)
						break
					}
				}
			}
			c.mu.Unlock()
			close(e.ready)
			return nil, err
		}
		e.tr = tr
		close(e.ready)
		return tr, nil
	}
	c.mu.Unlock()

	<-e.ready
	if e.tr == nil {
		// The generation this entry tracked failed; regenerate directly.
		return sc.GenerateTrace(horizon)
	}
	return e.tr, nil
}

// CachedTrace returns the scenario's availability trace through the shared
// process-wide cache. The returned trace is shared and must be treated as
// immutable.
func CachedTrace(sc Scenario, horizon float64) (*trace.Trace, error) {
	return sharedTraceCache.get(sc, horizon)
}
