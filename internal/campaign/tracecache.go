package campaign

import (
	"container/list"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"spequlos/internal/trace"
)

// Availability traces are a pure function of (source, seed, horizon, pool)
// and dominate simulation cost: synthesizing one draws millions of quantile
// samples (math.Pow is ~half the campaign's CPU), yet every strategy variant
// of the same (middleware, trace, bot, offset) cell needs the identical
// trace — the paper's paired comparison reuses one seed across the baseline
// and all 18 strategy combinations. The cache generates each distinct trace
// once and shares the immutable result across jobs and workers.
//
// Traces are never mutated after generation (the binding and the statistics
// layer only read them), so sharing a *trace.Trace across concurrent
// simulations is safe.
//
// # Admission, pinning and eviction contract
//
// The cache is byte-budgeted: each trace reports its resident size
// (trace.Trace.Bytes) and eviction is LRU over the *unpinned* entries until
// resident bytes fall back under the budget. Paper-scale (`full`) traces are
// tens of MB each and a campaign needs hundreds of distinct ones, so an
// entry-counted bound cannot hold peak RSS on a small machine; a byte bound
// with per-job pin/release makes peak trace memory track
//
//	budget + bytes pinned by in-flight jobs
//
// rather than the campaign size.
//
//   - get returns the trace PINNED. The caller must call the returned
//     release exactly once, when it no longer reads the trace (the runner
//     releases at job completion). Pinned entries are never evicted, so
//     eviction can never free a trace a worker still reads.
//   - An entry being generated is pinned from the moment it is admitted, so
//     eviction pressure from concurrent admissions cannot drop an in-flight
//     entry — single-flight holds: exactly one generation per key, whatever
//     the concurrency.
//   - When a generation fails, the entry is removed before its ready channel
//     closes; waiters re-enter get and the first one becomes the new
//     single-flight generator. A later success is admitted normally. N
//     waiters therefore cost at most one retry chain, never N concurrent
//     regenerations.
//   - Releasing the last pin makes the entry evictable at the
//     most-recently-used position; if the budget is already exceeded (pins
//     held it above the line), eviction runs immediately.
//
// The budget only bounds cache residency, not correctness: a cache with a
// 1-byte budget still serves every request, it just regenerates (and
// regeneration is deterministic, so evicted-then-requested traces come back
// byte-identical).

// traceKey identifies one deterministic generation.
type traceKey struct {
	name    string
	seed    uint64
	horizon float64
	pool    int
}

// traceCacheEntry carries a generation-in-progress or its result; ready is
// closed once tr (or err, for a failed generation) is set, so concurrent
// requests for the same trace wait for one generation instead of
// duplicating it.
type traceCacheEntry struct {
	key   traceKey
	ready chan struct{}
	tr    *trace.Trace
	err   error
	bytes int64
	// pins counts active users (including an in-flight generation). Only
	// entries with pins == 0 sit in the LRU list and may be evicted.
	pins int
	elem *list.Element // LRU position; nil while pinned or in flight
}

// traceCache is a byte-budgeted, concurrency-safe, single-flight trace
// cache with refcount pinning; see the package comment above for the
// admission/eviction contract.
type traceCache struct {
	mu       sync.Mutex
	budget   int64
	resident int64 // bytes of every completed entry still in the map
	entries  map[traceKey]*traceCacheEntry
	lru      *list.List // unpinned completed entries, front = most recent
}

// DefaultTraceBudgetBytes bounds resident trace bytes in the shared cache
// (512 MiB). The quick matrix needs 72 distinct ~250-node traces of a few
// MB each, and the crowd profiles reuse a handful of 500-node traces, so
// neither ever reaches the line — their behavior is unchanged from the old
// entry-counted cache. Paper-scale (`full`) traces are tens of MB each and
// DO exceed it; they evict LRU and regenerate deterministically on re-use.
const DefaultTraceBudgetBytes = 512 << 20

// sharedTraceCache serves every campaign in the process.
var sharedTraceCache = newTraceCache(DefaultTraceBudgetBytes)

func newTraceCache(budget int64) *traceCache {
	return &traceCache{budget: budget, entries: map[traceKey]*traceCacheEntry{}, lru: list.New()}
}

// get returns the cached trace for the key pinned, generating it (once,
// whatever the concurrency) on a miss. The caller owns one pin and must
// call release exactly once when done reading the trace.
func (c *traceCache) get(key traceKey, gen func() (*trace.Trace, error)) (tr *trace.Trace, release func(), err error) {
	for {
		c.mu.Lock()
		if e, ok := c.entries[key]; ok {
			// Pin before waiting: a pinned entry cannot be evicted, so the
			// single-flight result survives any concurrent admission pressure.
			e.pins++
			c.unlinkLocked(e)
			c.mu.Unlock()
			<-e.ready
			if e.err != nil {
				// The generation this entry tracked failed; the entry was
				// detached from the map before ready closed. Drop our pin on
				// the dead entry and re-enter the single-flight path: the
				// first waiter back becomes the new (sole) generator, and its
				// success is admitted to the cache for everyone else.
				c.mu.Lock()
				e.pins--
				c.mu.Unlock()
				continue
			}
			return e.tr, c.releaseFunc(e), nil
		}
		e := &traceCacheEntry{key: key, ready: make(chan struct{}), pins: 1}
		c.entries[key] = e
		c.mu.Unlock()

		tr, err := gen()
		c.mu.Lock()
		if err != nil {
			// Detach before closing ready so waiters re-enter get instead of
			// finding a poisoned entry; the in-flight entry was pinned and
			// never resident, so there is no accounting to unwind.
			e.err = err
			delete(c.entries, key)
			c.mu.Unlock()
			close(e.ready)
			return nil, func() {}, err
		}
		e.tr = tr
		e.bytes = tr.Bytes()
		c.resident += e.bytes
		c.evictLocked()
		c.mu.Unlock()
		close(e.ready)
		return tr, c.releaseFunc(e), nil
	}
}

// releaseFunc returns the one-shot pin release for an entry. The sync.Once
// makes a double release (a paranoid defer plus an explicit call) harmless
// instead of corrupting the pin count.
func (c *traceCache) releaseFunc(e *traceCacheEntry) func() {
	var once sync.Once
	return func() { once.Do(func() { c.release(e) }) }
}

// release drops one pin; the last pin makes the entry evictable (MRU
// position) and triggers eviction if pins were holding residency above the
// budget.
func (c *traceCache) release(e *traceCacheEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e.pins--
	if e.pins > 0 {
		return
	}
	if cur, ok := c.entries[e.key]; !ok || cur != e {
		return // detached (failed generation) — never became resident
	}
	e.elem = c.lru.PushFront(e)
	c.evictLocked()
}

// unlinkLocked removes an entry from the LRU list while it is pinned.
func (c *traceCache) unlinkLocked(e *traceCacheEntry) {
	if e.elem != nil {
		c.lru.Remove(e.elem)
		e.elem = nil
	}
}

// evictLocked drops least-recently-used unpinned entries until resident
// bytes fit the budget. Pinned and in-flight entries are not in the LRU
// list, so residency may legitimately exceed the budget by the pinned
// bytes — that is the "budget + pinned" bound the runner's peak RSS tracks.
func (c *traceCache) evictLocked() {
	for c.resident > c.budget {
		back := c.lru.Back()
		if back == nil {
			return // everything left is pinned or in flight
		}
		e := back.Value.(*traceCacheEntry)
		c.lru.Remove(back)
		e.elem = nil
		delete(c.entries, e.key)
		c.resident -= e.bytes
	}
}

// setBudget replaces the byte budget (n <= 0 restores the default) and
// applies it immediately.
func (c *traceCache) setBudget(n int64) {
	if n <= 0 {
		n = DefaultTraceBudgetBytes
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.budget = n
	c.evictLocked()
}

// usage reports the cache's current accounting under the lock.
func (c *traceCache) usage() TraceCacheUsage {
	c.mu.Lock()
	defer c.mu.Unlock()
	u := TraceCacheUsage{BudgetBytes: c.budget, ResidentBytes: c.resident, Entries: len(c.entries)}
	for _, e := range c.entries {
		if e.pins > 0 && e.tr != nil {
			u.PinnedBytes += e.bytes
		}
	}
	return u
}

// TraceCacheUsage is a snapshot of the shared trace cache's accounting:
// resident bytes never exceed BudgetBytes + PinnedBytes, the invariant the
// byte-budget property test pins.
type TraceCacheUsage struct {
	BudgetBytes   int64
	ResidentBytes int64
	PinnedBytes   int64
	Entries       int
}

// SetTraceBudget sets the shared trace cache's byte budget (n <= 0 restores
// DefaultTraceBudgetBytes). Campaigns whose Profile.TraceBudgetBytes is set
// apply it automatically; the CLIs expose it as -trace-budget.
func SetTraceBudget(n int64) { sharedTraceCache.setBudget(n) }

// TraceCacheStats returns the shared trace cache's current usage, the
// number the `full` CI job checks its RSS ceiling against.
func TraceCacheStats() TraceCacheUsage { return sharedTraceCache.usage() }

// ParseByteSize parses a human-friendly byte size — "512MiB", "1.5GB",
// "268435456" — into bytes. Decimal (KB/MB/GB) and binary (KiB/MiB/GiB)
// suffixes are accepted case-insensitively; a bare number is bytes. Both
// CLIs use it for -trace-budget.
func ParseByteSize(s string) (int64, error) {
	t := strings.TrimSpace(s)
	mult := int64(1)
	upper := strings.ToUpper(t)
	for _, suf := range []struct {
		name string
		mult int64
	}{
		{"KIB", 1 << 10}, {"MIB", 1 << 20}, {"GIB", 1 << 30},
		{"KB", 1000}, {"MB", 1000 * 1000}, {"GB", 1000 * 1000 * 1000},
		{"B", 1},
	} {
		if strings.HasSuffix(upper, suf.name) {
			mult = suf.mult
			t = strings.TrimSpace(t[:len(t)-len(suf.name)])
			break
		}
	}
	v, err := strconv.ParseFloat(t, 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("campaign: invalid byte size %q", s)
	}
	return int64(v * float64(mult)), nil
}

// CachedTrace returns the scenario's availability trace through the shared
// process-wide cache, pinned: the returned trace is shared, must be treated
// as immutable, and release must be called exactly once when the caller no
// longer reads it — the runner releases at job completion so peak trace
// memory tracks the byte budget, not the campaign size.
func CachedTrace(sc Scenario, horizon float64) (tr *trace.Trace, release func(), err error) {
	key := traceKey{name: sc.TraceName, seed: sc.Seed(), horizon: horizon, pool: sc.Profile.PoolCap}
	return sharedTraceCache.get(key, func() (*trace.Trace, error) {
		return sc.GenerateTrace(horizon)
	})
}
