//go:build unix

package campaign

import "syscall"

// ProcessCPUSeconds returns the CPU time (user + system) consumed by the
// process so far. Throughput measured against CPU time is robust to
// wall-clock noise from co-scheduled work, which is what makes the perf
// trajectory in BENCH_*.json comparable across runs and machines with
// different background load.
func ProcessCPUSeconds() float64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return timevalSeconds(ru.Utime) + timevalSeconds(ru.Stime)
}

func timevalSeconds(tv syscall.Timeval) float64 {
	return float64(tv.Sec) + float64(tv.Usec)/1e6
}
