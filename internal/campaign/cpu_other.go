//go:build !unix

package campaign

// ProcessCPUSeconds is unavailable on this platform; callers fall back to
// wall-clock throughput.
func ProcessCPUSeconds() float64 { return 0 }
