package campaign

import (
	"bytes"
	"context"
	"reflect"
	"sync"
	"testing"

	"spequlos/internal/core"
)

// tiny returns a profile small enough for unit tests.
func tiny() Profile {
	return Profile{
		Name: "tiny", BotScale: 0.02, Offsets: 2, PoolCap: 120,
		HorizonDays: 6, CreditFraction: 0.10,
	}
}

// tinyJobs plans a small paired matrix: 2 traces × 2 offsets, baseline +
// default strategy.
func tinyJobs(p Profile) []Job {
	st := core.DefaultStrategy()
	var jobs []Job
	for _, tn := range []string{"nd", "seti"} {
		for off := 0; off < p.Offsets; off++ {
			sc := Scenario{Profile: p, Middleware: XWHEP, TraceName: tn, BotClass: "SMALL", Offset: off}
			jobs = append(jobs, Job{Scenario: sc})
			scs := sc
			stCopy := st
			scs.Strategy = &stCopy
			jobs = append(jobs, Job{Scenario: scs})
		}
	}
	return jobs
}

func TestJobKeys(t *testing.T) {
	p := tiny()
	base := Job{Scenario: Scenario{Profile: p, Middleware: XWHEP, TraceName: "nd", BotClass: "SMALL"}}
	if base.Key() != base.Key() {
		t.Fatal("key not stable")
	}
	st := core.DefaultStrategy()
	speq := base
	speq.Scenario.Strategy = &st
	if base.Key() == speq.Key() {
		t.Fatal("strategy must change the key")
	}
	off := base
	off.Scenario.Offset = 1
	if base.Key() == off.Key() {
		t.Fatal("offset must change the key")
	}
	cfg300 := core.Config{Strategy: core.DefaultStrategy(), MonitorPeriod: 300}
	variant := base
	variant.Variant, variant.Config = "period=300s", &cfg300
	if base.Key() == variant.Key() {
		t.Fatal("variant configuration must change the key")
	}
	series := base
	series.KeepSeries = true
	if base.Key() != series.Key() {
		t.Fatal("KeepSeries must NOT change the key (same simulation)")
	}
	// Simulation-affecting profile parameters participate in the key, so a
	// stale store never silently serves results for a re-scaled profile.
	scaled := base
	scaled.Scenario.Profile.PoolCap *= 2
	if base.Key() == scaled.Key() {
		t.Fatal("profile parameters must change the key")
	}
	// Two variant configurations whose labels format identically must not
	// collide: the key includes the actual configuration.
	cfgA := core.Config{Strategy: core.DefaultStrategy(), MonitorPeriod: 59.6}
	cfgB := core.Config{Strategy: core.DefaultStrategy(), MonitorPeriod: 60.4}
	va, vb := base, base
	va.Variant, va.Config = "period=60s", &cfgA
	vb.Variant, vb.Config = "period=60s", &cfgB
	if va.Key() == vb.Key() {
		t.Fatal("variant configs with equal labels must key differently")
	}
	fa, fb := 0.052, 0.048
	ca, cb := base, base
	cfg := core.Config{Strategy: core.DefaultStrategy(), MonitorPeriod: 60}
	ca.Variant, ca.Config, ca.CreditFraction = "credits=5%", &cfg, &fa
	cb.Variant, cb.Config, cb.CreditFraction = "credits=5%", &cfg, &fb
	if ca.Key() == cb.Key() {
		t.Fatal("variant credit fractions with equal labels must key differently")
	}
	// Strategy labels are not injective: two triggers sharing the code 9C
	// must still key differently.
	tgA := core.Config{Strategy: core.Strategy{
		Trigger: core.CompletionThreshold{Frac: 0.9}, Sizing: core.Conservative{}, Deploy: core.Reschedule},
		MonitorPeriod: 60}
	tgB := tgA
	tgB.Strategy.Trigger = core.CompletionThreshold{Frac: 0.88}
	ta, tb := base, base
	ta.Variant, ta.Config = "trigger=9C", &tgA
	tb.Variant, tb.Config = "trigger=9C", &tgB
	if ta.Key() == tb.Key() {
		t.Fatal("triggers sharing a label code must key differently")
	}
	// Conversely, a variant configured exactly like a plain strategy run
	// deduplicates with it: same simulation, one execution.
	stDefault := core.DefaultStrategy()
	plain := base
	plain.Scenario.Strategy = &stDefault
	cfFrac := base.Scenario.Profile.CreditFraction
	equiv := base
	equiv.Variant, equiv.Config, equiv.CreditFraction = "credits=10%",
		&core.Config{Strategy: core.DefaultStrategy(), MonitorPeriod: 60}, &cfFrac
	if plain.Key() != equiv.Key() {
		t.Fatalf("config-identical variant must dedupe with the plain run:\n%s\n%s",
			plain.Key(), equiv.Key())
	}
}

func TestPlanDeduplicates(t *testing.T) {
	p := tiny()
	jobs := tinyJobs(p)
	plan := NewPlan()
	plan.Add(jobs...)
	plan.Add(jobs...) // second consumer planning the same cells
	if plan.Len() != len(jobs) {
		t.Fatalf("plan = %d jobs, want %d", plan.Len(), len(jobs))
	}
	// A duplicate with KeepSeries upgrades the planned job.
	withSeries := jobs[0]
	withSeries.KeepSeries = true
	plan.Add(withSeries)
	if plan.Len() != len(jobs) {
		t.Fatal("KeepSeries duplicate must not add a job")
	}
	if !plan.Jobs()[0].KeepSeries {
		t.Fatal("KeepSeries must merge into the planned job")
	}
}

func TestExecuteMatchesRun(t *testing.T) {
	sc := Scenario{Profile: tiny(), Middleware: XWHEP, TraceName: "nd", BotClass: "SMALL"}
	a := Run(sc)
	b := Execute(Job{Scenario: sc}).Result
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("Execute diverges from Run: %+v vs %+v", a, b)
	}
}

// TestCampaignExactlyOnce asserts the acceptance criterion: every planned
// unique job executes exactly once, duplicates and re-runs execute zero
// times.
func TestCampaignExactlyOnce(t *testing.T) {
	p := tiny()
	jobs := tinyJobs(p)
	doubled := append(append([]Job{}, jobs...), jobs...) // every consumer plans its slice
	store := NewResultStore()
	c := New(p, doubled...)
	stats, err := c.Run(context.Background(), store)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Planned != len(jobs) || stats.Executed != len(jobs) || stats.Cached != 0 {
		t.Fatalf("first run: %+v, want %d executed", stats, len(jobs))
	}
	if store.Len() != len(jobs) {
		t.Fatalf("store = %d entries, want %d", store.Len(), len(jobs))
	}
	// Re-running the same campaign over the filled store simulates nothing.
	stats2, err := New(p, jobs...).Run(context.Background(), store)
	if err != nil {
		t.Fatal(err)
	}
	if stats2.Executed != 0 || stats2.Cached != len(jobs) {
		t.Fatalf("resume run executed %d jobs, want 0 (%+v)", stats2.Executed, stats2)
	}
}

// TestCampaignDeterministicAcrossParallelism asserts the satellite
// criterion: the same campaign run with Parallelism 1 and 8 produces
// identical ResultStore contents.
func TestCampaignDeterministicAcrossParallelism(t *testing.T) {
	p := tiny()
	jobs := tinyJobs(p)
	var bufs [2]bytes.Buffer
	for i, workers := range []int{1, 8} {
		store := NewResultStore()
		c := New(p, jobs...)
		c.Parallelism = workers
		if _, err := c.Run(context.Background(), store); err != nil {
			t.Fatal(err)
		}
		if err := store.Save(&bufs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(bufs[0].Bytes(), bufs[1].Bytes()) {
		t.Fatal("store contents differ between Parallelism 1 and 8")
	}
}

func TestStoreSaveLoadRoundTrip(t *testing.T) {
	p := tiny()
	jobs := tinyJobs(p)
	jobs[0].KeepSeries = true
	store, _, err := RunCampaign(context.Background(), p, jobs)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := store.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded := NewResultStore()
	if err := loaded.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != store.Len() {
		t.Fatalf("loaded %d entries, want %d", loaded.Len(), store.Len())
	}
	var buf2 bytes.Buffer
	if err := loaded.Save(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("save→load→save not idempotent")
	}
	// A campaign over the loaded store resumes fully cached.
	stats, err := New(p, jobs...).Run(context.Background(), loaded)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Executed != 0 {
		t.Fatalf("loaded store re-executed %d jobs", stats.Executed)
	}
	if _, ok := loaded.Series(jobs[0]); !ok {
		t.Fatal("completion series lost in round-trip")
	}
}

func TestStoreFilePersistence(t *testing.T) {
	p := tiny()
	jobs := tinyJobs(p)[:2]
	store, _, err := RunCampaign(context.Background(), p, jobs)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/store.json"
	if err := store.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != store.Len() {
		t.Fatalf("loaded %d entries, want %d", loaded.Len(), store.Len())
	}
}

func TestCampaignCancellation(t *testing.T) {
	p := tiny()
	jobs := tinyJobs(p)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before any job is fed
	store := NewResultStore()
	stats, err := New(p, jobs...).Run(ctx, store)
	if err == nil {
		t.Fatal("cancelled campaign must return the context error")
	}
	if stats.Executed >= len(jobs) {
		t.Fatalf("cancelled campaign executed all %d jobs", stats.Executed)
	}
	// The partial store resumes: the second run executes only the rest.
	stats2, err := New(p, jobs...).Run(context.Background(), store)
	if err != nil {
		t.Fatal(err)
	}
	if stats2.Cached != stats.Executed || stats2.Executed != len(jobs)-stats.Executed {
		t.Fatalf("resume mismatch: first %+v then %+v", stats, stats2)
	}
	if store.Len() != len(jobs) {
		t.Fatalf("store = %d entries after resume, want %d", store.Len(), len(jobs))
	}
}

func TestCampaignProgressEvents(t *testing.T) {
	p := tiny()
	jobs := tinyJobs(p)[:4]
	var mu sync.Mutex
	var events []Event
	c := New(p, jobs...)
	c.Progress = func(ev Event) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	}
	if _, err := c.Run(context.Background(), NewResultStore()); err != nil {
		t.Fatal(err)
	}
	if len(events) != len(jobs) {
		t.Fatalf("events = %d, want %d", len(events), len(jobs))
	}
	seen := map[int]bool{}
	for _, ev := range events {
		if ev.Total != len(jobs) || ev.Cached {
			t.Fatalf("bad event: %+v", ev)
		}
		seen[ev.Done] = true
	}
	for i := 1; i <= len(jobs); i++ {
		if !seen[i] {
			t.Fatalf("missing Done=%d event", i)
		}
	}
}

// TestCompletionCurveUsesRequestedMiddleware guards the fixed CONDOR
// fallback: the curve runner must build the scenario's middleware instead
// of silently substituting XWHEP.
func TestCompletionCurveUsesRequestedMiddleware(t *testing.T) {
	sc := Scenario{Profile: tiny(), Middleware: CONDOR, TraceName: "seti", BotClass: "SMALL"}
	series, res := CompletionCurve(sc)
	if len(series) == 0 || !res.Completed {
		t.Fatal("condor curve incomplete")
	}
	direct := Run(sc)
	if res.CompletionTime != direct.CompletionTime || res.Events != direct.Events {
		t.Fatalf("curve diverges from direct condor run: %v/%v vs %v/%v",
			res.CompletionTime, res.Events, direct.CompletionTime, direct.Events)
	}
	xwhep := Run(Scenario{Profile: tiny(), Middleware: XWHEP, TraceName: "seti", BotClass: "SMALL"})
	if res.CompletionTime == xwhep.CompletionTime && res.Events == xwhep.Events {
		t.Fatal("condor curve identical to XWHEP run — middleware fallback regressed")
	}
}

func TestVariantJobConfig(t *testing.T) {
	sc := Scenario{Profile: tiny(), Middleware: XWHEP, TraceName: "seti", BotClass: "SMALL"}
	frac := 0.05
	cfg := core.Config{Strategy: core.DefaultStrategy(), MonitorPeriod: 300}
	e := Execute(Job{Scenario: sc, Variant: "period=300s", Config: &cfg, CreditFraction: &frac})
	if !e.Result.Completed {
		t.Fatal("variant run incomplete")
	}
	if e.Result.Strategy != core.DefaultStrategy().Label() {
		t.Fatalf("variant strategy label = %q", e.Result.Strategy)
	}
	if e.Variant != "period=300s" {
		t.Fatalf("variant not recorded: %+v", e)
	}
	if e.Result.CreditsAllocated <= 0 {
		t.Fatal("variant credits not allocated")
	}
	st := core.DefaultStrategy()
	scs := sc
	scs.Strategy = &st
	std := Execute(Job{Scenario: scs}) // standard 10%-credit strategy run
	if e.Result.CreditsAllocated >= std.Result.CreditsAllocated {
		t.Fatalf("5%% variant allocated %v credits, standard run %v",
			e.Result.CreditsAllocated, std.Result.CreditsAllocated)
	}
	if Execute(Job{Scenario: sc}).Key == e.Key {
		t.Fatal("variant key collides with baseline")
	}
}
