// Package campaign is the deterministic campaign engine behind the
// experiment harness: it plans the full set of unique (scenario, strategy)
// simulation jobs up front, deduplicating across consumers, executes each
// job exactly once on a bounded worker pool with context cancellation and
// streaming progress events, and stores results in a keyed, concurrency-safe
// ResultStore with JSON save/load so campaigns can be persisted and resumed.
// The figure/table builders of internal/experiments derive everything from
// the store instead of running their own simulations.
package campaign

import (
	"fmt"
	"runtime"

	"spequlos/internal/boinc"
	"spequlos/internal/bot"
	"spequlos/internal/condor"
	"spequlos/internal/core"
	"spequlos/internal/metrics"
	"spequlos/internal/middleware"
	"spequlos/internal/sim"
	"spequlos/internal/spot"
	"spequlos/internal/trace"
	"spequlos/internal/xwhep"
)

// Middleware names. CONDOR is the extension middleware (checkpoint +
// migration); the paper's evaluation matrix uses BOINC and XWHEP.
const (
	BOINC  = "BOINC"
	XWHEP  = "XWHEP"
	CONDOR = "CONDOR"
)

// Middlewares lists the middleware of the paper's evaluation matrix.
func Middlewares() []string { return []string{BOINC, XWHEP} }

// AllMiddlewares includes the CONDOR extension.
func AllMiddlewares() []string { return []string{BOINC, XWHEP, CONDOR} }

// NewMiddlewareServer builds a middleware server by name with its default
// configuration. The emulation harness (internal/emul) uses it so the
// simulated DG behind the HTTP stack is built exactly like the simulator's.
func NewMiddlewareServer(eng *sim.Engine, mw string) (middleware.Server, error) {
	switch mw {
	case BOINC:
		return boinc.New(eng, boinc.DefaultConfig()), nil
	case XWHEP:
		return xwhep.New(eng, xwhep.DefaultConfig()), nil
	case CONDOR:
		return condor.New(eng, condor.DefaultConfig()), nil
	}
	return nil, fmt.Errorf("campaign: unknown middleware %q", mw)
}

// newServer builds a middleware server by name, panicking on unknown names
// (the runner validates scenarios up front).
func newServer(eng *sim.Engine, mw string) middleware.Server {
	srv, err := NewMiddlewareServer(eng, mw)
	if err != nil {
		panic(err)
	}
	return srv
}

// TraceNames lists the six BE-DCI traces of Table 2, in paper order.
func TraceNames() []string {
	return []string{"seti", "nd", "g5klyo", "g5kgre", "spot10", "spot100"}
}

// BotClasses lists the three workload classes of Table 3.
func BotClasses() []string { return []string{"SMALL", "BIG", "RANDOM"} }

// TraceSource resolves a Table 2 trace name to its generator.
func TraceSource(name string) (trace.Source, error) {
	if p, ok := trace.ProfileByName(name); ok {
		return p, nil
	}
	if p, ok := spot.ProfileByName(name); ok {
		return p, nil
	}
	return nil, fmt.Errorf("campaign: unknown trace %q", name)
}

// Profile scales the experiment matrix. The Full profile reproduces the
// paper's dimensions; Quick powers `go test -bench` with minute-scale
// runtimes; Standard is the EXPERIMENTS.md default.
type Profile struct {
	Name string
	// BotScale multiplies BoT sizes (1 = paper sizes).
	BotScale float64
	// Offsets is the number of submission instants simulated per
	// configuration (different seeds ⇒ different trace windows).
	Offsets int
	// PoolCap caps the number of nodes generated per trace (0 = the
	// trace's natural pool). Duty cycles and per-node behaviour are
	// preserved; see DESIGN.md §4 on scaling.
	PoolCap int
	// HorizonDays bounds one simulation; incomplete runs are retried with
	// a doubled horizon.
	HorizonDays float64
	// CreditFraction of the BoT workload provisioned as cloud credits
	// (the evaluation uses 10%).
	CreditFraction float64
	// Parallelism bounds concurrent simulations (0 = GOMAXPROCS).
	Parallelism int
	// Batches is the number of concurrent QoS batches one scenario cell
	// carries (0 or 1 = a single BoT, the paper's shape). The crowd
	// profile sets it to hundreds: one simulated infrastructure serving
	// many QoS users at once, each sub-batch with its own credit order,
	// QoS trigger and per-batch accounting. Omitted from JSON when zero so
	// single-batch profiles keep their stored byte shape.
	Batches int `json:",omitempty"`
	// SubmitSpread staggers multi-batch submissions uniformly over this
	// many seconds (0 = every batch submits at t=0). Interleaved arrivals
	// are what make the crowd cell exercise concurrent monitor state
	// rather than a single synchronized wave.
	SubmitSpread float64 `json:",omitempty"`
	// Tiered assigns each sub-batch a QoS service class (enterprise /
	// premium / free via SubTier) and runs the service with the default
	// tier policy, so cloud supply is arbitrated by weighted admission
	// when contended. Omitted from JSON when false so untiered profiles
	// keep their stored byte shape.
	Tiered bool `json:",omitempty"`
	// FleetCap bounds how many batches may hold cloud support at once when
	// Tiered (0 = unlimited); it is what makes the tier queues contend.
	FleetCap int `json:",omitempty"`
	// Shards overrides the scheduler's plan-phase worker-pool size for the
	// cell's service (0 = GOMAXPROCS). Shard count never changes results —
	// the monitor merges per-shard steps deterministically — so it is not
	// part of the job key.
	Shards int `json:",omitempty"`
	// ShardedKernel partitions the cell's MODEL for multi-core execution on
	// the sim.Sharded kernel. Multi-batch cells give every sub-batch its
	// own DG server plus a stable-hashed dedicated partition of the trace's
	// nodes; single-BoT cells split the one batch round-robin across
	// ShardParts part servers with queued-task hand-off at barriers
	// (middleware.Partitioned). Cross-batch and cross-part couplings — the
	// QoS monitor, tier arbitration under FleetCap, CloudDuplication's
	// result mirror — run on the control engine at tick barriers, fed by
	// the kernel's barrier exchange, so every strategy family runs sharded
	// with no serial fallback. This changes what is simulated, so it IS
	// part of the job key; the kernel shard count is not (byte-identical
	// results at any value).
	ShardedKernel bool `json:",omitempty"`
	// ShardParts is the number of worker-pool partitions a single-BoT
	// sharded cell splits its batch across (0 = 8, see shardParts). It
	// shapes the model — the round-robin task split and the barrier
	// rebalance topology — so it IS part of the job key; ignored by
	// multi-batch cells, whose partition unit is the sub-batch.
	ShardParts int `json:",omitempty"`
	// KernelShards is the number of parallel event heaps the sharded kernel
	// executes on (0 = GOMAXPROCS, capped at Batches). Purely an execution
	// knob: any value yields byte-identical results, so it is NOT part of
	// the job key.
	KernelShards int `json:",omitempty"`
	// TraceBudgetBytes bounds the resident bytes of the shared trace cache
	// while this profile's campaigns run (0 = the process default,
	// DefaultTraceBudgetBytes). Like KernelShards it is purely an execution
	// knob — traces regenerate deterministically after eviction, so any
	// budget yields byte-identical results — and is NOT part of the job
	// key. The `full` profile sets it so paper-scale campaigns hold peak
	// trace memory on small machines; -trace-budget overrides it.
	TraceBudgetBytes int64 `json:",omitempty"`
}

// Quick returns the bench profile (small BoTs, small pools).
func Quick() Profile {
	return Profile{
		Name: "quick", BotScale: 0.04, Offsets: 2, PoolCap: 250,
		HorizonDays: 6, CreditFraction: 0.10,
	}
}

// Standard returns the EXPERIMENTS.md profile.
func Standard() Profile {
	return Profile{
		Name: "standard", BotScale: 0.15, Offsets: 3, PoolCap: 600,
		HorizonDays: 10, CreditFraction: 0.10,
	}
}

// Full returns the paper-scale profile: 2 000-node pools over 15-day
// horizons, the dimensions behind the paper's headline figures. Its traces
// are tens of MB each and the matrix needs hundreds of distinct ones, so
// the profile carries a trace-cache byte budget (overridable with
// -trace-budget): peak trace memory tracks the budget plus in-flight pins
// instead of the campaign size, which is what makes `full` runnable end to
// end on a small machine. Since PR 9 its single-BoT cells run on the
// sharded kernel, the pool split across 8 partitions, so one cell spreads
// across cores instead of relying on cell-level parallelism alone.
func Full() Profile {
	return Profile{
		Name: "full", BotScale: 1, Offsets: 5, PoolCap: 2000,
		HorizonDays: 15, CreditFraction: 0.10,
		ShardedKernel: true, ShardParts: 8,
		TraceBudgetBytes: DefaultTraceBudgetBytes,
	}
}

// Stress returns the kernel stress profile: 10× the quick profile's worker
// churn (pool cap 2500) over a 30-day horizon. It exists to exercise the
// event kernel at BOINC-like host volumes (Anderson's hundreds of thousands
// of hosts, scaled to one process) rather than to reproduce a paper
// artifact; spequlos-bench records its throughput in BENCH_stress.json.
// Since PR 7 the cell is a sharded-kernel model: 32 quick-sized BoTs, each
// on its own server with a dedicated ~78-node slice of the pool, so the
// simulation spreads across every core (-shards) while staying
// byte-deterministic at any shard count.
func Stress() Profile {
	return Profile{
		Name: "stress", BotScale: 0.04, Offsets: 1, PoolCap: 2500,
		HorizonDays: 30, CreditFraction: 0.10,
		Batches: 32, SubmitSpread: 3600, ShardedKernel: true,
	}
}

// Crowd returns the multi-tenant stress profile: one 500-node trace
// serving 200 concurrent QoS batches — the "shared service" shape the
// paper's framing implies but never evaluates. Each cell interleaves 200
// quick-sized sub-batches (submissions staggered over four hours), each
// with its own credit order and QoS trigger; the Scheduler monitors all of
// them through ONE aggregated DG poll per tick. spequlos-bench records the
// fairness and poll-economy numbers in BENCH_crowd.json.
func Crowd() Profile {
	return Profile{
		Name: "crowd", BotScale: 0.01, Offsets: 1, PoolCap: 500,
		HorizonDays: 6, CreditFraction: 0.10,
		Batches: 200, SubmitSpread: 4 * 3600,
	}
}

// Crowd2K returns the tiered multi-tenant scale profile: 2 000 concurrent
// QoS batches on one 500-node trace, submissions staggered over a day,
// split across the enterprise/premium/free service classes (SubTier) with
// a 120-batch cloud fleet cap — the contended-supply shape the tier model
// arbitrates. It exists to prove the sharded monitor holds at 10× the
// crowd profile; spequlos-bench records its trajectory in BENCH_crowd2k.json.
// Since PR 9 it runs on the sharded kernel: tier arbitration executes as a
// control-engine reduction over per-shard candidate lists, byte-identical
// at any shard count.
func Crowd2K() Profile {
	return Profile{
		Name: "crowd2k", BotScale: 0.01, Offsets: 1, PoolCap: 500,
		HorizonDays: 8, CreditFraction: 0.10,
		Batches: 2000, SubmitSpread: 24 * 3600,
		Tiered: true, FleetCap: 120, ShardedKernel: true,
	}
}

// ProfileByName resolves quick/standard/full/stress/crowd/crowd2k.
func ProfileByName(name string) (Profile, error) {
	switch name {
	case "quick":
		return Quick(), nil
	case "standard":
		return Standard(), nil
	case "full":
		return Full(), nil
	case "stress":
		return Stress(), nil
	case "crowd":
		return Crowd(), nil
	case "crowd2k":
		return Crowd2K(), nil
	}
	return Profile{}, fmt.Errorf("campaign: unknown profile %q", name)
}

// Workers resolves the profile's parallelism bound.
func (p Profile) Workers() int {
	if p.Parallelism > 0 {
		return p.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// Scenario is one simulation to run.
type Scenario struct {
	Profile    Profile
	Middleware string
	TraceName  string
	BotClass   string
	Offset     int
	// Strategy enables SpeQuloS with the given combination; nil runs the
	// baseline.
	Strategy *core.Strategy
}

// EnvKey identifies the execution environment (middleware, BE-DCI, BoT
// class) — the α-calibration granularity of §3.4.
func (sc Scenario) EnvKey() string {
	return sc.Middleware + "/" + sc.TraceName + "/" + sc.BotClass
}

// Seed derives the deterministic seed shared by the baseline and every
// SpeQuloS variant of the same scenario (paired comparison).
func (sc Scenario) Seed() uint64 {
	return sim.SeedFrom(sc.Profile.Name, sc.Middleware, sc.TraceName, sc.BotClass,
		fmt.Sprintf("offset-%d", sc.Offset))
}

// StrategyLabel returns the strategy label of the scenario, "" for a
// baseline.
func (sc Scenario) StrategyLabel() string {
	if sc.Strategy == nil {
		return ""
	}
	return sc.Strategy.Label()
}

// BotID is the batch identifier shared by the simulator, the emulation
// harness and the DG server for this scenario's BoT.
func (sc Scenario) BotID() string {
	return fmt.Sprintf("%s-%s-%s-%d", sc.Middleware, sc.TraceName, sc.BotClass, sc.Offset)
}

// Workload generates the scenario's BoT deterministically: the class scaled
// by the profile's BotScale, seeded from the scenario coordinates.
func (sc Scenario) Workload() (*bot.BoT, error) {
	return sc.SubWorkload(0)
}

// SubBatches returns the number of concurrent BoTs the cell carries (≥1).
func (sc Scenario) SubBatches() int {
	if sc.Profile.Batches > 1 {
		return sc.Profile.Batches
	}
	return 1
}

// SubBotID returns the batch identifier of sub-batch k. A single-batch
// cell keeps the plain BotID, so multi-batch support does not disturb
// existing keys, stores or goldens.
func (sc Scenario) SubBotID(k int) string {
	if sc.SubBatches() == 1 {
		return sc.BotID()
	}
	return fmt.Sprintf("%s.b%03d", sc.BotID(), k)
}

// SubSeed derives the workload seed of sub-batch k: sub-batch 0 keeps the
// scenario seed (single-batch compatibility); later batches fork it so the
// crowd's BoTs differ while staying deterministic.
func (sc Scenario) SubSeed(k int) uint64 {
	if k == 0 {
		return sc.Seed()
	}
	return sim.SeedFrom(sc.Profile.Name, sc.Middleware, sc.TraceName, sc.BotClass,
		fmt.Sprintf("offset-%d", sc.Offset), fmt.Sprintf("sub-%d", k))
}

// SubmitAt returns the virtual submission instant of sub-batch k:
// submissions interleave uniformly over the profile's SubmitSpread.
func (sc Scenario) SubmitAt(k int) float64 {
	n := sc.SubBatches()
	if n <= 1 || sc.Profile.SubmitSpread <= 0 {
		return 0
	}
	return sc.Profile.SubmitSpread * float64(k) / float64(n)
}

// SubTier returns the QoS service class of sub-batch k in a tiered cell:
// a deterministic 20/30/50 enterprise/premium/free split by batch index.
// Untiered cells return the empty tier (legacy single-tenant behavior).
func (sc Scenario) SubTier(k int) core.Tier {
	if !sc.Profile.Tiered {
		return ""
	}
	switch k % 10 {
	case 0, 1:
		return core.TierEnterprise
	case 2, 3, 4:
		return core.TierPremium
	default:
		return core.TierFree
	}
}

// SubWorkload generates sub-batch k's BoT deterministically.
func (sc Scenario) SubWorkload(k int) (*bot.BoT, error) {
	class, ok := bot.ClassByName(sc.BotClass)
	if !ok {
		return nil, fmt.Errorf("campaign: unknown bot class %q", sc.BotClass)
	}
	if sc.Profile.BotScale > 0 && sc.Profile.BotScale != 1 {
		class = class.Scaled(sc.Profile.BotScale)
	}
	return class.Generate(sc.SubBotID(k), sc.SubSeed(k)), nil
}

// GenerateTrace generates the scenario's availability trace for the given
// horizon (seconds), capped at the profile's pool size.
func (sc Scenario) GenerateTrace(horizon float64) (*trace.Trace, error) {
	src, err := TraceSource(sc.TraceName)
	if err != nil {
		return nil, err
	}
	return src.Generate(sc.Seed(), horizon, sc.Profile.PoolCap), nil
}

// Result captures one run's outcome and metrics.
type Result struct {
	Middleware string
	TraceName  string
	BotClass   string
	Offset     int
	Strategy   string // "" for baseline
	Seed       uint64

	Completed      bool
	Size           int
	CompletionTime float64
	Tail           metrics.TailStats
	// TC50Base is tc(0.5)/0.5, the constant-rate estimate at half
	// completion used by the Oracle's prediction (Table 4).
	TC50Base float64

	// Cloud usage (zero for baselines).
	CreditsAllocated float64
	CreditsBilled    float64
	CloudCPUSeconds  float64
	Instances        int
	TriggeredAt      float64

	Events uint64 // simulation events executed (for benchmarking)

	// Sharded-kernel execution counters (set only by sharded-kernel cells).
	// They describe HOW the run executed, not what it computed: every other
	// field is byte-identical at any KernelShards value, and determinism
	// checks zero these before comparing.
	KernelShards    int      `json:",omitempty"`
	Barriers        uint64   `json:",omitempty"`
	ShardEvents     []uint64 `json:",omitempty"`
	BarrierStallSec float64  `json:",omitempty"`

	// Batches holds per-batch outcomes for multi-batch cells (nil for the
	// classic one-BoT cells, and omitted from their JSON so existing stores
	// and goldens keep their byte shape). Aggregate fields then read:
	// Completed = every batch completed, CompletionTime = the cell's
	// makespan, Size = total tasks, credits/instances = sums; tail metrics
	// are per-batch concepts and stay zero.
	Batches []BatchResult `json:",omitempty"`
}

// BatchResult is one sub-batch's outcome within a multi-batch cell. Times
// are relative to the sub-batch's own submission instant, which is what
// per-user QoS fairness is measured on.
type BatchResult struct {
	BatchID        string
	SubmittedAt    float64 // virtual submission instant within the cell
	Completed      bool
	Size           int
	CompletionTime float64 // seconds from this batch's submission

	CreditsAllocated float64
	CreditsBilled    float64
	Instances        int
	TriggeredAt      float64 // seconds from submission; -1 if never
	// Tier is the batch's QoS service class in a tiered cell ("" when the
	// cell ran untiered; omitted from JSON so untiered stores keep their
	// byte shape).
	Tier string `json:",omitempty"`
}

// EnvKey mirrors Scenario.EnvKey.
func (r Result) EnvKey() string { return r.Middleware + "/" + r.TraceName + "/" + r.BotClass }
