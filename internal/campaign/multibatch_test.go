package campaign

import (
	"reflect"
	"strings"
	"testing"

	"spequlos/internal/core"
)

// tinyCrowd is a crowd-shaped profile small enough for unit tests: several
// interleaved batches on a few hundred nodes.
func tinyCrowd(batches int) Profile {
	p := Quick()
	p.Name = "crowd"
	p.Batches = batches
	p.SubmitSpread = 1800
	return p
}

func TestMultiBatchCellExecutes(t *testing.T) {
	st := core.DefaultStrategy()
	sc := Scenario{
		Profile: tinyCrowd(5), Middleware: XWHEP, TraceName: "seti",
		BotClass: "SMALL", Strategy: &st,
	}
	e := Execute(Job{Scenario: sc})
	r := e.Result
	if !r.Completed {
		t.Fatalf("multi-batch cell did not complete: %+v", r)
	}
	if len(r.Batches) != 5 {
		t.Fatalf("batch results = %d, want 5", len(r.Batches))
	}
	totalSize, totalBilled := 0, 0.0
	seen := map[string]bool{}
	for _, br := range r.Batches {
		if !br.Completed || br.Size <= 0 || br.CompletionTime <= 0 {
			t.Errorf("batch %s incomplete: %+v", br.BatchID, br)
		}
		if br.CreditsAllocated <= 0 {
			t.Errorf("batch %s has no credit order: %+v", br.BatchID, br)
		}
		if seen[br.BatchID] {
			t.Errorf("duplicate batch id %s", br.BatchID)
		}
		seen[br.BatchID] = true
		totalSize += br.Size
		totalBilled += br.CreditsBilled
	}
	if r.Size != totalSize {
		t.Errorf("aggregate size %d != sum of batches %d", r.Size, totalSize)
	}
	if r.CreditsBilled != totalBilled {
		t.Errorf("aggregate billed %v != sum of batches %v", r.CreditsBilled, totalBilled)
	}
	// The makespan covers the last submission: it must exceed the spread's
	// last offset.
	if r.CompletionTime < sc.SubmitAt(4) {
		t.Errorf("makespan %v before last submission %v", r.CompletionTime, sc.SubmitAt(4))
	}
}

func TestMultiBatchDeterminism(t *testing.T) {
	st := core.DefaultStrategy()
	sc := Scenario{
		Profile: tinyCrowd(4), Middleware: BOINC, TraceName: "g5klyo",
		BotClass: "SMALL", Strategy: &st,
	}
	a := Execute(Job{Scenario: sc})
	b := Execute(Job{Scenario: sc})
	if !reflect.DeepEqual(a.Result, b.Result) {
		t.Fatalf("multi-batch run not deterministic:\n  a: %+v\n  b: %+v", a.Result, b.Result)
	}
}

func TestMultiBatchBaselineRuns(t *testing.T) {
	sc := Scenario{
		Profile: tinyCrowd(3), Middleware: XWHEP, TraceName: "seti", BotClass: "SMALL",
	}
	r := Execute(Job{Scenario: sc}).Result
	if !r.Completed || len(r.Batches) != 3 {
		t.Fatalf("baseline multi-batch cell: %+v", r)
	}
	for _, br := range r.Batches {
		if br.CreditsAllocated != 0 || br.Instances != 0 {
			t.Errorf("baseline batch consumed cloud: %+v", br)
		}
	}
}

// TestJobKeyMultiBatch pins the key format: single-batch keys keep the
// historical shape (stores stay resumable), multi-batch keys append the
// concurrency parameters.
func TestJobKeyMultiBatch(t *testing.T) {
	single := Job{Scenario: Scenario{Profile: Quick(), Middleware: XWHEP,
		TraceName: "seti", BotClass: "SMALL"}}
	if strings.Contains(single.Key(), ",nb") {
		t.Fatalf("single-batch key carries multi-batch params: %s", single.Key())
	}
	multi := single
	multi.Scenario.Profile.Batches = 8
	multi.Scenario.Profile.SubmitSpread = 600
	if !strings.Contains(multi.Key(), ",nb8,ss600") {
		t.Fatalf("multi-batch key missing concurrency params: %s", multi.Key())
	}
	if single.Key() == multi.Key() {
		t.Fatal("batch count does not affect the job key")
	}
}

func TestSubBatchHelpers(t *testing.T) {
	sc := Scenario{Profile: tinyCrowd(10), Middleware: XWHEP, TraceName: "seti", BotClass: "SMALL"}
	if sc.SubBatches() != 10 {
		t.Fatalf("SubBatches = %d", sc.SubBatches())
	}
	if sc.SubBotID(0) == sc.SubBotID(1) {
		t.Fatal("sub-batch ids collide")
	}
	if sc.SubSeed(1) == sc.SubSeed(2) {
		t.Fatal("sub-batch seeds collide")
	}
	if sc.SubSeed(0) != sc.Seed() {
		t.Fatal("sub-batch 0 must keep the scenario seed")
	}
	if at0, at9 := sc.SubmitAt(0), sc.SubmitAt(9); at0 != 0 || at9 <= 0 || at9 >= sc.Profile.SubmitSpread {
		t.Fatalf("submit spread wrong: %v..%v", at0, at9)
	}

	one := Scenario{Profile: Quick(), Middleware: XWHEP, TraceName: "seti", BotClass: "SMALL"}
	if one.SubBatches() != 1 || one.SubBotID(0) != one.BotID() || one.SubmitAt(0) != 0 {
		t.Fatal("single-batch helpers must reduce to the classic shape")
	}
}
