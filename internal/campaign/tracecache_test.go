package campaign

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"spequlos/internal/trace"
)

// testTrace builds a small deterministic trace whose shape (and therefore
// Bytes) is a pure function of id, so regenerated traces must compare
// byte-identical to the originals.
func testTrace(id int) *trace.Trace {
	tr := &trace.Trace{Name: fmt.Sprintf("t%02d", id), Length: 1000}
	for n := 0; n <= id%3; n++ {
		node := &trace.Node{ID: n, Power: float64(1000 + id)}
		for i := 0; i < 4+id; i++ {
			start := float64(i*10 + id)
			node.Intervals = append(node.Intervals, trace.Interval{Start: start, End: start + 5})
		}
		tr.Nodes = append(tr.Nodes, node)
	}
	return tr
}

func testKey(id int) traceKey {
	return traceKey{name: fmt.Sprintf("t%02d", id), seed: uint64(id), horizon: 1000, pool: id}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestTraceBytesDeterministic pins the size estimate: a pure function of
// the trace shape, dominated by 16 bytes per interval.
func TestTraceBytesDeterministic(t *testing.T) {
	tr := testTrace(3)
	if got, want := tr.Bytes(), testTrace(3).Bytes(); got != want {
		t.Fatalf("Bytes not deterministic: %d vs %d", got, want)
	}
	intervals := 0
	for _, n := range tr.Nodes {
		intervals += len(n.Intervals)
	}
	min := int64(16 * intervals)
	if tr.Bytes() < min {
		t.Fatalf("Bytes() = %d, below the %d bytes its %d intervals alone occupy", tr.Bytes(), min, intervals)
	}
}

// TestTraceCachePinsInFlightEntry is the regression test for the FIFO
// cache's eviction-during-generation bug: admission pressure while a
// generation is in flight must not evict the in-flight entry, or a
// concurrent get for the same key silently starts a second generation.
// The budget is 1 byte, so every admission triggers maximal pressure.
func TestTraceCachePinsInFlightEntry(t *testing.T) {
	c := newTraceCache(1)
	var gens atomic.Int32
	started := make(chan struct{})
	unblock := make(chan struct{})
	genA := func() (*trace.Trace, error) {
		if gens.Add(1) == 1 {
			close(started)
			<-unblock
		}
		return testTrace(0), nil
	}

	results := make(chan *trace.Trace, 2)
	go func() {
		tr, release, err := c.get(testKey(0), genA)
		if err != nil {
			t.Error(err)
		}
		release()
		results <- tr
	}()
	<-started

	// A waiter joins while the generation is in flight…
	go func() {
		tr, release, err := c.get(testKey(0), genA)
		if err != nil {
			t.Error(err)
		}
		release()
		results <- tr
	}()
	waitFor(t, "waiter pinned on the in-flight entry", func() bool {
		c.mu.Lock()
		defer c.mu.Unlock()
		e, ok := c.entries[testKey(0)]
		return ok && e.pins >= 2
	})

	// …and other keys churn through the over-budget cache, each admission
	// running eviction. With entry-counted FIFO this dropped the in-flight
	// entry; pinning must keep it.
	for id := 1; id <= 8; id++ {
		id := id
		tr, release, err := c.get(testKey(id), func() (*trace.Trace, error) { return testTrace(id), nil })
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(tr, testTrace(id)) {
			t.Fatalf("key %d returned wrong trace", id)
		}
		release()
	}

	close(unblock)
	a, b := <-results, <-results
	if a != b {
		t.Fatalf("concurrent gets for one key returned distinct traces — single-flight broken")
	}
	if n := gens.Load(); n != 1 {
		t.Fatalf("GenerateTrace ran %d times for one key, want exactly 1", n)
	}
}

// TestTraceCacheFailureReentersSingleFlight is the regression test for the
// failure thundering herd: when a generation fails, the N blocked waiters
// must re-enter the single-flight path — one of them becomes the sole new
// generator, its success is admitted to the cache, and everyone shares it —
// instead of each launching an uncached regeneration.
func TestTraceCacheFailureReentersSingleFlight(t *testing.T) {
	const waiters = 8
	c := newTraceCache(1 << 20)
	var gens atomic.Int32
	failed := errors.New("injected one-shot failure")
	started := make(chan struct{})
	unblock := make(chan struct{})
	gen := func() (*trace.Trace, error) {
		if gens.Add(1) == 1 {
			close(started)
			<-unblock
			return nil, failed
		}
		return testTrace(0), nil
	}

	errCh := make(chan error, 1)
	go func() {
		_, _, err := c.get(testKey(0), gen)
		errCh <- err
	}()
	<-started

	var wg sync.WaitGroup
	results := make(chan *trace.Trace, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tr, release, err := c.get(testKey(0), gen)
			if err != nil {
				t.Error(err)
				return
			}
			release()
			results <- tr
		}()
	}
	waitFor(t, "waiters pinned on the in-flight entry", func() bool {
		c.mu.Lock()
		defer c.mu.Unlock()
		e, ok := c.entries[testKey(0)]
		return ok && e.pins == waiters+1
	})
	close(unblock)

	if err := <-errCh; !errors.Is(err, failed) {
		t.Fatalf("generator got %v, want the injected failure", err)
	}
	wg.Wait()
	close(results)
	var first *trace.Trace
	for tr := range results {
		if first == nil {
			first = tr
		} else if tr != first {
			t.Fatal("waiters received distinct traces — retry bypassed the cache")
		}
	}
	if first == nil {
		t.Fatal("no waiter received a trace")
	}
	// One failure plus exactly one retried generation — not one per waiter.
	if n := gens.Load(); n != 2 {
		t.Fatalf("GenerateTrace ran %d times, want 2 (one failure + one single-flight retry)", n)
	}
	// The retried success was admitted: a fresh get is a cache hit.
	if _, release, err := c.get(testKey(0), gen); err != nil {
		t.Fatal(err)
	} else {
		release()
	}
	if n := gens.Load(); n != 2 {
		t.Fatalf("success was not re-admitted to the cache (gen ran %d times)", n)
	}
}

// TestTraceCacheByteBudgetProperty hammers one cache from many goroutines
// with randomized gets and releases under a budget that fits only a few
// traces, checking the cache's contract at every step:
//
//   - resident bytes ≤ budget + pinned bytes (pins may hold residency over
//     the line; nothing else may),
//   - no two generations for the same key run concurrently (single-flight),
//   - every returned trace — including evicted-then-regenerated ones — is
//     byte-identical to the deterministic generator output.
//
// Run under -race this also shakes out lock-ordering bugs in get/release.
func TestTraceCacheByteBudgetProperty(t *testing.T) {
	const (
		keys       = 10
		goroutines = 8
		iters      = 300
	)
	// Budget fits roughly three of the larger test traces.
	budget := 3 * testTrace(keys-1).Bytes()
	c := newTraceCache(budget)

	var inflight [keys]atomic.Int32
	gen := func(id int) func() (*trace.Trace, error) {
		return func() (*trace.Trace, error) {
			if !inflight[id].CompareAndSwap(0, 1) {
				t.Errorf("two generations in flight for key %d", id)
			}
			time.Sleep(time.Duration(id%3) * 100 * time.Microsecond)
			inflight[id].Store(0)
			return testTrace(id), nil
		}
	}
	checkInvariant := func() {
		u := c.usage()
		if u.ResidentBytes > u.BudgetBytes+u.PinnedBytes {
			t.Errorf("resident %d > budget %d + pinned %d", u.ResidentBytes, u.BudgetBytes, u.PinnedBytes)
		}
	}

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < iters; i++ {
				id := rng.Intn(keys)
				tr, release, err := c.get(testKey(id), gen(id))
				if err != nil {
					t.Error(err)
					return
				}
				if !reflect.DeepEqual(tr, testTrace(id)) {
					t.Errorf("key %d: regenerated trace not byte-identical", id)
					release()
					return
				}
				checkInvariant()
				release()
				if i%16 == 0 {
					checkInvariant()
				}
			}
		}()
	}
	wg.Wait()

	// With every pin released the budget alone bounds residency.
	u := c.usage()
	if u.PinnedBytes != 0 {
		t.Fatalf("pinned bytes %d after all releases", u.PinnedBytes)
	}
	if u.ResidentBytes > u.BudgetBytes {
		t.Fatalf("resident %d > budget %d after all releases", u.ResidentBytes, u.BudgetBytes)
	}
}

// TestParseByteSize pins the -trace-budget size grammar.
func TestParseByteSize(t *testing.T) {
	cases := map[string]int64{
		"0":       0,
		"1024":    1024,
		"512MiB":  512 << 20,
		"1.5GiB":  3 << 29,
		"2gb":     2e9,
		"100kb":   100e3,
		"64 KiB ": 64 << 10,
		"7B":      7,
	}
	for in, want := range cases {
		got, err := ParseByteSize(in)
		if err != nil || got != want {
			t.Errorf("ParseByteSize(%q) = %d, %v; want %d", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "MB", "-1GB", "1.2.3MiB", "12q"} {
		if _, err := ParseByteSize(bad); err == nil {
			t.Errorf("ParseByteSize(%q) unexpectedly succeeded", bad)
		}
	}
}

// TestTraceCacheSetBudget pins SetTraceBudget semantics: shrinking the
// budget evicts immediately; a non-positive budget restores the default.
func TestTraceCacheSetBudget(t *testing.T) {
	c := newTraceCache(1 << 20)
	for id := 0; id < 4; id++ {
		id := id
		_, release, err := c.get(testKey(id), func() (*trace.Trace, error) { return testTrace(id), nil })
		if err != nil {
			t.Fatal(err)
		}
		release()
	}
	if u := c.usage(); u.Entries != 4 {
		t.Fatalf("expected 4 resident entries, got %d", u.Entries)
	}
	c.setBudget(1)
	if u := c.usage(); u.Entries != 0 || u.ResidentBytes != 0 {
		t.Fatalf("shrinking the budget did not evict: %+v", u)
	}
	c.setBudget(0)
	if u := c.usage(); u.BudgetBytes != DefaultTraceBudgetBytes {
		t.Fatalf("budget 0 should restore the default, got %d", u.BudgetBytes)
	}
}
