package campaign

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func storeWithEntry(key string) *ResultStore {
	s := NewResultStore()
	s.Put(Entry{Key: key, Profile: "quick", Result: Result{Middleware: "BOINC", Size: 3}})
	return s
}

// An interrupted save must never expose a partial write: the destination
// keeps its previous complete content and no temp file survives.
func TestSaveFileAtomicPartialWriteNeverVisible(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.json")
	if err := storeWithEntry("old").SaveFile(path); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	boom := errors.New("interrupted mid-write")
	err = WriteFileAtomic(path, func(w io.Writer) error {
		if _, werr := io.WriteString(w, `{"version":1,"entr`); werr != nil {
			return werr
		}
		return boom // the crash, mid-encode
	})
	if !errors.Is(err, boom) {
		t.Fatalf("writeFileAtomic err = %v, want the injected failure", err)
	}

	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(after) != string(before) {
		t.Fatalf("destination changed after failed save:\nbefore: %s\nafter:  %s", before, after)
	}
	if loaded, lerr := LoadFile(path); lerr != nil || loaded.Len() != 1 {
		t.Fatalf("store unreadable after failed save: %v (len %d)", lerr, loaded.Len())
	}
	assertNoTempFiles(t, dir)
}

func TestSaveFileReplacesPreviousStore(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.json")
	if err := storeWithEntry("old").SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if err := storeWithEntry("new").SaveFile(path); err != nil {
		t.Fatal(err)
	}
	s, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("new"); !ok || s.Len() != 1 {
		t.Fatalf("store not replaced: %d entries", s.Len())
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Mode().Perm() != 0o644 {
		t.Fatalf("store permissions = %v, want 0644", info.Mode().Perm())
	}
	assertNoTempFiles(t, dir)
}

// Concurrent readers racing a sequence of saves must always load a complete
// store — never a truncated or half-renamed one.
func TestSaveFileConcurrentReadersSeeCompleteStores(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.json")
	if err := storeWithEntry("gen-0").SaveFile(path); err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			s, err := LoadFile(path)
			if err != nil {
				t.Errorf("reader saw broken store: %v", err)
				return
			}
			if s.Len() != 1 {
				t.Errorf("reader saw %d entries, want 1", s.Len())
				return
			}
		}
	}()
	for i := 1; i <= 50; i++ {
		if err := storeWithEntry(fmt.Sprintf("gen-%d", i)).SaveFile(path); err != nil {
			t.Fatal(err)
		}
	}
	close(done)
	wg.Wait()
}

func assertNoTempFiles(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("temp file left behind: %s", e.Name())
		}
	}
}
