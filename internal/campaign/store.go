package campaign

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"spequlos/internal/metrics"
)

// Entry is one stored simulation outcome, identified by its job key.
type Entry struct {
	Key     string                `json:"key"`
	Profile string                `json:"profile"`
	Variant string                `json:"variant,omitempty"`
	Result  Result                `json:"result"`
	Series  []metrics.SeriesPoint `json:"series,omitempty"`
}

// ResultStore is the keyed, concurrency-safe store a campaign fills and the
// derivation layer reads. It serializes to JSON so campaigns can be
// persisted and resumed.
type ResultStore struct {
	mu      sync.RWMutex
	entries map[string]Entry
}

// NewResultStore returns an empty store.
func NewResultStore() *ResultStore {
	return &ResultStore{entries: map[string]Entry{}}
}

// Get returns the entry stored under key.
func (s *ResultStore) Get(key string) (Entry, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.entries[key]
	return e, ok
}

// Put stores an entry under its key, replacing any previous one.
func (s *ResultStore) Put(e Entry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.entries[e.Key] = e
}

// Len returns the number of stored entries.
func (s *ResultStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.entries)
}

// Entries returns all entries sorted by key, so that two stores holding the
// same results — regardless of execution order or parallelism — serialize
// identically.
func (s *ResultStore) Entries() []Entry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Entry, 0, len(s.entries))
	for _, e := range s.entries {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Result looks up the stored result for a job.
func (s *ResultStore) Result(j Job) (Result, bool) {
	e, ok := s.Get(j.Key())
	return e.Result, ok
}

// Series looks up the stored completion series for a job.
func (s *ResultStore) Series(j Job) ([]metrics.SeriesPoint, bool) {
	e, ok := s.Get(j.Key())
	if !ok || len(e.Series) == 0 {
		return nil, false
	}
	return e.Series, true
}

// storeFile is the on-disk format.
type storeFile struct {
	Version int     `json:"version"`
	Entries []Entry `json:"entries"`
}

const storeVersion = 1

// Save writes the store as JSON, entries sorted by key.
func (s *ResultStore) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(storeFile{Version: storeVersion, Entries: s.Entries()})
}

// Load merges JSON-encoded entries into the store.
func (s *ResultStore) Load(r io.Reader) error {
	var f storeFile
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return fmt.Errorf("campaign: decoding store: %w", err)
	}
	if f.Version != storeVersion {
		return fmt.Errorf("campaign: unsupported store version %d", f.Version)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range f.Entries {
		if e.Key == "" {
			return fmt.Errorf("campaign: store entry without key")
		}
		s.entries[e.Key] = e
	}
	return nil
}

// SaveFile writes the store to path atomically: the JSON is written to a
// temporary file in the same directory, synced, and renamed over path. An
// interrupted save (Ctrl-C mid-write is the documented resume path, see
// EXPERIMENTS.md) therefore never leaves a truncated store behind — readers
// observe either the previous complete store or the new one.
func (s *ResultStore) SaveFile(path string) error {
	return WriteFileAtomic(path, s.Save)
}

// WriteFileAtomic writes via a same-directory temp file and rename, so the
// destination always holds a complete write. On failure the destination is
// untouched and the temp file removed. The bench CLI shares it for the
// trajectory-accumulating BENCH_*.json reports, whose history a truncating
// write could destroy.
func WriteFileAtomic(path string, write func(io.Writer) error) error {
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := write(f); err != nil {
		return fail(err)
	}
	// Match the permissions os.Create would have used (CreateTemp is 0600).
	if err := f.Chmod(0o644); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// LoadFileIfExists reads a store previously written by SaveFile, returning
// a fresh empty store (loaded=false) when the file does not exist. Other
// errors — permissions, corruption — are reported rather than silently
// discarding hours of stored simulations.
func LoadFileIfExists(path string) (s *ResultStore, loaded bool, err error) {
	if _, err := os.Stat(path); errors.Is(err, fs.ErrNotExist) {
		return NewResultStore(), false, nil
	}
	s, err = LoadFile(path)
	if err != nil {
		return nil, false, err
	}
	return s, true, nil
}

// LoadFile reads a store previously written by SaveFile.
func LoadFile(path string) (*ResultStore, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	s := NewResultStore()
	if err := s.Load(f); err != nil {
		return nil, err
	}
	return s, nil
}
