package campaign

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"spequlos/internal/core"
)

// Job is one unique simulation to execute: a scenario, optionally with a
// non-standard service configuration (the knob the ablation sweeps turn).
// Jobs are identified by a content key; planning the same job twice — for
// example because two figures consume the same cell — executes it once.
type Job struct {
	Scenario Scenario
	// Variant is the display label of a non-standard service configuration
	// (recorded in the store entry); the key derives from the actual
	// configuration, so two variants configured identically — or a variant
	// configured exactly like a plain strategy run — execute once.
	Variant string
	// Config overrides the SpeQuloS service configuration for variant jobs.
	// Its CloudServerFactory is bound to the job's own engine by the runner
	// and must be left nil.
	Config *core.Config
	// CreditFraction overrides Profile.CreditFraction for variant jobs.
	CreditFraction *float64
	// KeepSeries records the full completion series in the store entry
	// (needed by Figure 1). Plans merge this flag across duplicate jobs.
	KeepSeries bool
}

// Key is the content key identifying the simulation: profile (name plus
// the simulation-affecting scale parameters, so a resumed store never
// serves results computed under different parameters), scenario
// coordinates, effective service configuration and seed. Two jobs with
// equal keys produce identical entries.
func (j Job) Key() string {
	sc := j.Scenario
	p := sc.Profile
	// Multi-batch cells append their concurrency parameters; single-batch
	// keys keep the historical shape so saved stores stay resumable.
	multi := ""
	if p.Batches > 1 {
		multi = fmt.Sprintf(",nb%d,ss%g", p.Batches, p.SubmitSpread)
		// Tier arbitration changes decisions, so tiered cells key on it;
		// the shard count does not (deterministic merge) and stays out.
		if p.Tiered {
			multi += fmt.Sprintf(",tiered,fc%d", p.FleetCap)
		}
		// The sharded-kernel MODEL (per-batch servers + trace partitions)
		// changes results and keys on it; KernelShards is execution-only
		// (byte-identical at any value) and stays out.
		if p.ShardedKernel {
			multi += ",skernel"
		}
	} else if p.ShardedKernel {
		// A single-BoT sharded cell partitions the worker pool instead of
		// the batch set; the partition count shapes the model (task split,
		// rebalance topology), so it keys alongside the flag.
		multi = fmt.Sprintf(",skernel,parts%d", shardParts(p))
	}
	return fmt.Sprintf("%s@bs%g,pc%d,h%g,cf%g%s|%s|%s|%s|%d|%s|%d",
		p.Name, p.BotScale, p.PoolCap, p.HorizonDays, p.CreditFraction, multi,
		sc.Middleware, sc.TraceName, sc.BotClass, sc.Offset,
		j.configKey(), sc.Seed())
}

// configKey canonicalizes the effective SpeQuloS configuration of the job.
// Strategy labels are not injective — two completion thresholds can share
// a code — so the key includes the full trigger and sizing values; and a
// variant job configured exactly like a plain strategy run keys (and
// executes) as that run.
func (j Job) configKey() string {
	st := j.Scenario.Strategy
	mp := DefaultMonitorPeriod
	cf := j.Scenario.Profile.CreditFraction
	if j.Config != nil {
		st = &j.Config.Strategy
		mp = j.Config.MonitorPeriod
		if j.CreditFraction != nil {
			cf = *j.CreditFraction
		}
	}
	if st == nil {
		return "" // baseline: no SpeQuloS service
	}
	return fmt.Sprintf("%s<%+v/%+v>,mp%g,cf%g", st.Label(), st.Trigger, st.Sizing, mp, cf)
}

// Plan is an ordered, deduplicated set of jobs. Adding a job whose key is
// already planned merges its KeepSeries need instead of queueing a second
// execution.
type Plan struct {
	jobs  []Job
	index map[string]int
}

// NewPlan returns an empty plan.
func NewPlan() *Plan { return &Plan{index: map[string]int{}} }

// Add plans jobs, deduplicating by content key.
func (p *Plan) Add(jobs ...Job) {
	if p.index == nil {
		p.index = map[string]int{}
	}
	for _, j := range jobs {
		key := j.Key()
		if i, ok := p.index[key]; ok {
			if j.KeepSeries {
				p.jobs[i].KeepSeries = true
			}
			continue
		}
		p.index[key] = len(p.jobs)
		p.jobs = append(p.jobs, j)
	}
}

// Jobs returns the planned jobs in insertion order.
func (p *Plan) Jobs() []Job {
	out := make([]Job, len(p.jobs))
	copy(out, p.jobs)
	return out
}

// Len returns the number of unique jobs planned.
func (p *Plan) Len() int { return len(p.jobs) }

// Event is one streaming progress notification: a job finished (or was
// served from the store).
type Event struct {
	Key    string
	Done   int // jobs finished so far, including this one
	Total  int // unique jobs planned
	Cached bool
	Result Result
}

// Stats summarizes a campaign run.
type Stats struct {
	Planned  int           // unique jobs planned
	Executed int           // jobs actually simulated
	Cached   int           // jobs served from the store (resume)
	Events   uint64        // simulation events executed by this run
	Elapsed  time.Duration // wall clock of the run
	// CPUSeconds is the process CPU time consumed during the run (0 when
	// the platform cannot report it). On a machine running other work,
	// events/CPU-second is the comparable throughput number.
	CPUSeconds float64
	// Sharded-kernel aggregates, all zero when no job ran on the multi-core
	// kernel: the widest shard layout seen, total tick barriers, per-shard
	// event sums (index-aligned across jobs, so skew is visible), and the
	// summed barrier-stall wall-clock (time shards spent waiting at
	// barriers for their slowest sibling).
	KernelShards    int
	Barriers        uint64
	ShardEvents     []uint64
	BarrierStallSec float64
}

// EventsPerSecond is the simulation throughput of the run.
func (s Stats) EventsPerSecond() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.Events) / s.Elapsed.Seconds()
}

// EventsPerCPUSecond is the run's throughput per CPU second — robust to
// wall-clock contention, 0 when CPU accounting is unavailable.
func (s Stats) EventsPerCPUSecond() float64 {
	if s.CPUSeconds <= 0 {
		return 0
	}
	return float64(s.Events) / s.CPUSeconds
}

// Campaign executes a plan of unique jobs on a bounded worker pool and
// fills a ResultStore. Jobs already present in the store are not re-run,
// which is what makes save→load→run resumption work.
type Campaign struct {
	// Profile provides the default parallelism bound.
	Profile Profile
	// Plan holds the unique jobs; use NewPlan().Add(...) or assign Jobs.
	Plan *Plan
	// Parallelism bounds concurrent simulations (0 = Profile.Workers()).
	Parallelism int
	// Progress, when non-nil, receives one event per finished job. Events
	// stream while the campaign runs; callbacks are serialized.
	Progress func(Event)
}

// New builds a campaign over the given jobs.
func New(p Profile, jobs ...Job) *Campaign {
	plan := NewPlan()
	plan.Add(jobs...)
	return &Campaign{Profile: p, Plan: plan}
}

// Run executes every planned job not already present in store, bounded by
// the campaign's parallelism, until done or ctx is cancelled. Partial
// results stay in the store, so a cancelled campaign can be resumed by
// running it again with the same store.
func (c *Campaign) Run(ctx context.Context, store *ResultStore) (Stats, error) {
	start := time.Now()
	cpuStart := ProcessCPUSeconds()
	if c.Profile.TraceBudgetBytes > 0 {
		SetTraceBudget(c.Profile.TraceBudgetBytes)
	}
	if c.Plan == nil {
		c.Plan = NewPlan()
	}
	jobs := c.Plan.Jobs()
	stats := Stats{Planned: len(jobs)}

	// Serve cached entries first: a stored entry satisfies a job unless the
	// job needs the completion series and the entry lacks it.
	var pending []Job
	done := 0
	for _, j := range jobs {
		e, ok := store.Get(j.Key())
		if ok && (!j.KeepSeries || len(e.Series) > 0) {
			stats.Cached++
			done++
			if c.Progress != nil {
				c.Progress(Event{Key: e.Key, Done: done, Total: len(jobs), Cached: true, Result: e.Result})
			}
			continue
		}
		pending = append(pending, j)
	}

	workers := c.Parallelism
	if workers <= 0 {
		workers = c.Profile.Workers()
	}
	if workers > len(pending) {
		workers = len(pending)
	}

	jobCh := make(chan Job)
	var wg sync.WaitGroup
	var mu sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobCh {
				e := Execute(j)
				store.Put(e)
				mu.Lock()
				stats.Executed++
				stats.Events += e.Result.Events
				if e.Result.KernelShards > stats.KernelShards {
					stats.KernelShards = e.Result.KernelShards
				}
				stats.Barriers += e.Result.Barriers
				stats.BarrierStallSec += e.Result.BarrierStallSec
				for i, n := range e.Result.ShardEvents {
					if i == len(stats.ShardEvents) {
						stats.ShardEvents = append(stats.ShardEvents, 0)
					}
					stats.ShardEvents[i] += n
				}
				done++
				if c.Progress != nil {
					c.Progress(Event{Key: e.Key, Done: done, Total: len(jobs), Result: e.Result})
				}
				mu.Unlock()
			}
		}()
	}
feed:
	for _, j := range pending {
		select {
		case jobCh <- j:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobCh)
	wg.Wait()
	stats.Elapsed = time.Since(start)
	if cpu := ProcessCPUSeconds(); cpu > cpuStart {
		stats.CPUSeconds = cpu - cpuStart
	}
	return stats, ctx.Err()
}

// LogProgress returns a Progress callback printing one line per finished
// job to w — the shared CLI progress stream.
func LogProgress(w io.Writer) func(Event) {
	return func(ev Event) {
		state := "done"
		if ev.Cached {
			state = "cached"
		}
		fmt.Fprintf(w, "%s %s (%d/%d)\n", state, ev.Key, ev.Done, ev.Total)
	}
}

// RunCampaign is shorthand for building a campaign over jobs and running it
// into a fresh store.
func RunCampaign(ctx context.Context, p Profile, jobs []Job) (*ResultStore, Stats, error) {
	store := NewResultStore()
	c := New(p, jobs...)
	stats, err := c.Run(ctx, store)
	return store, stats, err
}
