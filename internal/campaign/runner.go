package campaign

import (
	"spequlos/internal/cloud"
	"spequlos/internal/core"
	"spequlos/internal/metrics"
	"spequlos/internal/middleware"
	"spequlos/internal/sim"
	"spequlos/internal/xwhep"
)

// DefaultMonitorPeriod is the paper's one-minute monitoring loop (§3.2),
// used by plain strategy runs and the emulation harness; variant jobs
// override it via Job.Config.
const DefaultMonitorPeriod = 60.0

// recorder captures exact per-task completion times.
type recorder struct {
	batchID     string
	completions []float64
}

func (r *recorder) TaskAssigned(string, int, float64) {}
func (r *recorder) TaskCompleted(batchID string, _ int, at float64) {
	if batchID == r.batchID {
		r.completions = append(r.completions, at)
	}
}
func (r *recorder) BatchCompleted(string, float64) {}

// Run executes a plain scenario (no variant configuration), retrying with a
// doubled horizon if the trace window proved too short to finish the BoT.
func Run(sc Scenario) Result {
	return Execute(Job{Scenario: sc}).Result
}

// Execute runs one job to completion, retrying with a doubled horizon if the
// trace window proved too short to finish the BoT.
func Execute(j Job) Entry {
	horizon := j.Scenario.Profile.HorizonDays * 86400
	var e Entry
	for attempt := 0; attempt < 3; attempt++ {
		e = executeOnce(j, horizon)
		if e.Result.Completed {
			break
		}
		horizon *= 2
	}
	e.Key = j.Key()
	e.Variant = j.Variant
	e.Profile = j.Scenario.Profile.Name
	return e
}

// executeOnce is one bounded-horizon simulation of a job. All randomness
// derives from the scenario seed, so the same job always yields the same
// entry regardless of execution order or worker count. Cells carrying more
// than one BoT (Profile.Batches) take the multi-batch path; the classic
// one-BoT path is kept byte-identical for existing profiles and goldens.
func executeOnce(j Job, horizon float64) Entry {
	if useShardedKernel(j) {
		if j.Scenario.SubBatches() > 1 {
			return executeSharded(j, horizon)
		}
		return executeShardedSingle(j, horizon)
	}
	if j.Scenario.SubBatches() > 1 {
		return executeMulti(j, horizon)
	}
	sc := j.Scenario
	seed := sc.Seed()
	res := Result{
		Middleware: sc.Middleware, TraceName: sc.TraceName, BotClass: sc.BotClass,
		Offset: sc.Offset, Seed: seed,
	}

	// Resolve the service configuration: a variant job carries its own
	// config (the knob the ablations turn); a strategy scenario uses the
	// paper's monitoring defaults; a baseline runs without SpeQuloS.
	var cfg core.Config
	useService := false
	creditFraction := sc.Profile.CreditFraction
	switch {
	case j.Config != nil:
		cfg = *j.Config
		useService = true
		if j.CreditFraction != nil {
			creditFraction = *j.CreditFraction
		}
		res.Strategy = cfg.Strategy.Label()
	case sc.Strategy != nil:
		cfg = core.Config{Strategy: *sc.Strategy, MonitorPeriod: DefaultMonitorPeriod}
		useService = true
		res.Strategy = sc.Strategy.Label()
	}

	eng := sim.NewEngine()
	srv := newServer(eng, sc.Middleware)

	tr, releaseTrace, err := CachedTrace(sc, horizon)
	if err != nil {
		panic(err)
	}
	// The pin is held for the whole simulation (the binding reads the trace
	// on every worker event) and released at job completion, so peak trace
	// memory tracks the cache budget plus in-flight jobs, not the campaign.
	defer releaseTrace()
	middleware.BindTrace(eng, tr, srv)

	botID := sc.BotID()
	workload, err := sc.Workload()
	if err != nil {
		panic(err)
	}
	res.Size = workload.Size()

	rec := &recorder{batchID: botID}
	srv.AddListener(rec)

	var svc *core.Service
	if useService {
		simCloud := cloud.NewSimCloud(eng, cloud.DefaultSimConfig(), sim.NewRNG(seed))
		if cfg.CloudServerFactory == nil {
			cfg.CloudServerFactory = func() middleware.Server {
				return xwhep.New(eng, xwhep.DefaultConfig())
			}
		}
		svc = core.NewService(eng, srv, simCloud, cfg)
		if err := svc.RegisterQoS("user", botID, sc.EnvKey(), workload.Size()); err != nil {
			panic(err)
		}
		credits := creditFraction * workload.WorkloadCPUHours() * svc.Credits.Rate()
		if credits > 0 {
			svc.Credits.Deposit("user", credits)
			if err := svc.OrderQoS("user", botID, credits); err != nil {
				panic(err)
			}
			res.CreditsAllocated = credits
		}
	}

	srv.Submit(middleware.BatchFromBoT(workload))
	eng.RunWhile(func() bool { return !srv.Done(botID) && eng.Now() <= horizon })

	res.Events = eng.Executed()
	res.Completed = srv.Done(botID)
	entry := Entry{}
	if res.Completed {
		res.CompletionTime = eng.Now()
		if tail, ok := metrics.ComputeTail(rec.completions); ok {
			res.Tail = tail
		}
		if n := len(rec.completions); n >= 2 {
			series := metrics.CompletionSeries(rec.completions)
			half := series[(n+1)/2-1].T
			if half > 0 {
				res.TC50Base = half / 0.5
			}
		}
		if j.KeepSeries {
			entry.Series = metrics.CompletionSeries(rec.completions)
		}
	}
	if svc != nil {
		if u, err := svc.Usage(botID); err == nil {
			res.CreditsBilled = u.CreditsBilled
			res.CloudCPUSeconds = u.CPUSeconds
			res.Instances = u.InstancesStarted
			res.TriggeredAt = u.TriggeredAt
		}
	}
	entry.Result = res
	return entry
}

// batchTracker records each watched batch's completion instant and counts
// completed batches, giving the multi-batch run loop an O(1) stop
// condition (probing Done per batch per event would cost O(batches) on
// every event — the same wall the monitor's polling hit).
type batchTracker struct {
	done  *int
	times map[string]float64
}

func (t batchTracker) TaskAssigned(string, int, float64)  {}
func (t batchTracker) TaskCompleted(string, int, float64) {}
func (t batchTracker) BatchCompleted(id string, at float64) {
	if _, ok := t.times[id]; !ok {
		t.times[id] = at
		*t.done++
	}
}

// executeMulti is one bounded-horizon simulation of a multi-batch cell:
// N interleaved BoTs share the infrastructure, each registered for QoS with
// its own credit order and trigger, all monitored by one service through a
// single aggregated progress poll per tick.
func executeMulti(j Job, horizon float64) Entry {
	sc := j.Scenario
	seed := sc.Seed()
	nb := sc.SubBatches()
	res := Result{
		Middleware: sc.Middleware, TraceName: sc.TraceName, BotClass: sc.BotClass,
		Offset: sc.Offset, Seed: seed, TriggeredAt: -1,
	}

	var cfg core.Config
	useService := false
	creditFraction := sc.Profile.CreditFraction
	switch {
	case j.Config != nil:
		cfg = *j.Config
		useService = true
		if j.CreditFraction != nil {
			creditFraction = *j.CreditFraction
		}
		res.Strategy = cfg.Strategy.Label()
	case sc.Strategy != nil:
		cfg = core.Config{Strategy: *sc.Strategy, MonitorPeriod: DefaultMonitorPeriod}
		useService = true
		res.Strategy = sc.Strategy.Label()
	}

	eng := sim.NewEngine()
	srv := newServer(eng, sc.Middleware)
	tr, releaseTrace, err := CachedTrace(sc, horizon)
	if err != nil {
		panic(err)
	}
	defer releaseTrace()
	middleware.BindTrace(eng, tr, srv)

	var svc *core.Service
	if useService {
		simCloud := cloud.NewSimCloud(eng, cloud.DefaultSimConfig(), sim.NewRNG(seed))
		if cfg.CloudServerFactory == nil {
			cfg.CloudServerFactory = func() middleware.Server {
				return xwhep.New(eng, xwhep.DefaultConfig())
			}
		}
		if sc.Profile.Shards > 0 && cfg.Shards == 0 {
			cfg.Shards = sc.Profile.Shards
		}
		if sc.Profile.Tiered && cfg.Tiers == nil {
			cfg.Tiers = core.DefaultTierPolicy()
			cfg.Tiers.FleetCap = sc.Profile.FleetCap
		}
		svc = core.NewService(eng, srv, simCloud, cfg)
	}

	done := 0
	completedAt := map[string]float64{}
	srv.AddListener(batchTracker{done: &done, times: completedAt})

	res.Batches = make([]BatchResult, nb)
	for k := 0; k < nb; k++ {
		workload, err := sc.SubWorkload(k)
		if err != nil {
			panic(err)
		}
		id := sc.SubBotID(k)
		at := sc.SubmitAt(k)
		tier := sc.SubTier(k)
		res.Batches[k] = BatchResult{
			BatchID: id, SubmittedAt: at, Size: workload.Size(), TriggeredAt: -1,
			Tier: string(tier),
		}
		res.Size += workload.Size()
		br := &res.Batches[k]
		eng.At(at, func() {
			if svc != nil {
				if err := svc.RegisterQoSTier("user", id, sc.EnvKey(), workload.Size(), tier); err != nil {
					panic(err)
				}
				credits := creditFraction * workload.WorkloadCPUHours() * svc.Credits.Rate()
				if credits > 0 {
					svc.Credits.Deposit("user", credits)
					if err := svc.OrderQoS("user", id, credits); err != nil {
						panic(err)
					}
					br.CreditsAllocated = credits
				}
			}
			srv.Submit(middleware.BatchFromBoT(workload))
		})
	}

	eng.RunWhile(func() bool { return done < nb && eng.Now() <= horizon })

	res.Events = eng.Executed()
	res.Completed = done == nb
	for k := range res.Batches {
		br := &res.Batches[k]
		if at, ok := completedAt[br.BatchID]; ok {
			br.Completed = true
			br.CompletionTime = at - br.SubmittedAt
			if at > res.CompletionTime {
				res.CompletionTime = at // the cell's makespan
			}
		}
		res.CreditsAllocated += br.CreditsAllocated
		if svc == nil {
			continue
		}
		if u, err := svc.Usage(br.BatchID); err == nil {
			br.CreditsBilled = u.CreditsBilled
			br.Instances = u.InstancesStarted
			if u.TriggeredAt >= 0 {
				br.TriggeredAt = u.TriggeredAt - br.SubmittedAt
				if res.TriggeredAt < 0 || u.TriggeredAt < res.TriggeredAt {
					res.TriggeredAt = u.TriggeredAt // earliest trigger in the cell
				}
			}
			res.CreditsBilled += u.CreditsBilled
			res.CloudCPUSeconds += u.CPUSeconds
			res.Instances += u.InstancesStarted
		}
	}
	if !res.Completed {
		res.CompletionTime = 0
	}
	return Entry{Result: res}
}

// CompletionCurve runs a scenario and returns its Fig 1 completion curve
// alongside the run result.
func CompletionCurve(sc Scenario) ([]metrics.SeriesPoint, Result) {
	e := Execute(Job{Scenario: sc, KeepSeries: true})
	return e.Series, e.Result
}
