package core

import (
	"math"
	"testing"

	"spequlos/internal/bot"
	"spequlos/internal/cloud"
	"spequlos/internal/middleware"
	"spequlos/internal/sim"
	"spequlos/internal/xwhep"
)

// slowTailScenario builds a 10-task batch on one power-1 worker: 1000 s per
// task, 90% completion at t=9000, natural completion at t=10000.
func slowTailScenario(t *testing.T, strategy Strategy, credits float64) (*sim.Engine, middleware.Server, *Service) {
	t.Helper()
	eng := sim.NewEngine()
	srv := xwhep.New(eng, xwhep.DefaultConfig())
	simCloud := cloud.NewSimCloud(eng, cloud.SimConfig{BootDelay: 120}, sim.NewRNG(7))
	cfg := Config{
		Strategy:      strategy,
		MonitorPeriod: 60,
		CloudServerFactory: func() middleware.Server {
			return xwhep.New(eng, xwhep.DefaultConfig())
		},
	}
	svc := NewService(eng, srv, simCloud, cfg)
	specs := make([]bot.Task, 10)
	for i := range specs {
		specs[i] = bot.Task{ID: i, NOps: 1000}
	}
	if err := svc.RegisterQoS("alice", "b", "test-env", len(specs)); err != nil {
		t.Fatal(err)
	}
	srv.Submit(middleware.Batch{ID: "b", Tasks: specs})
	svc.Credits.Deposit("alice", credits)
	if err := svc.OrderQoS("alice", "b", credits); err != nil {
		t.Fatal(err)
	}
	srv.WorkerJoin(&middleware.Worker{ID: 0, Power: 1})
	return eng, srv, svc
}

func runBatch(eng *sim.Engine, srv middleware.Server, id string) {
	eng.RunWhile(func() bool { return !srv.Done(id) })
}

func TestRescheduleRescuesTail(t *testing.T) {
	eng, srv, svc := slowTailScenario(t, DefaultStrategy(), 10)
	runBatch(eng, srv, "b")
	done := eng.Now()
	// Trigger at the first tick past t=9000; boot 120 s; cloud power
	// ~3000 ⇒ the duplicated last task finishes around t=9180, far before
	// the regular worker's t=10000.
	if done >= 10000 {
		t.Fatalf("completion %v: cloud never helped", done)
	}
	if done < 9000 {
		t.Fatalf("completion %v: impossible, 90%% takes 9000s", done)
	}
	u, err := svc.Usage("b")
	if err != nil {
		t.Fatal(err)
	}
	if u.InstancesStarted == 0 || u.TriggeredAt < 9000 {
		t.Fatalf("usage: %+v", u)
	}
	if u.CreditsBilled <= 0 || u.CreditsBilled > 2 {
		t.Fatalf("billed %v credits, want a small positive amount", u.CreditsBilled)
	}
	// Order must be closed with the remainder refunded.
	o, ok := svc.Credits.OrderOf("b")
	if !ok || !o.Closed {
		t.Fatalf("order not closed: %+v", o)
	}
	bal := svc.Credits.AccountOf("alice").Balance
	if math.Abs(bal-(10-u.CreditsBilled)) > 1e-6 {
		t.Fatalf("refund wrong: balance %v, billed %v", bal, u.CreditsBilled)
	}
	// Execution archived for calibration.
	if svc.Oracle.Calibration.Count("test-env") != 1 {
		t.Fatal("execution not archived")
	}
}

func TestFlatCannotHelpWithoutQueuedTasks(t *testing.T) {
	strategy := Strategy{Trigger: CompletionThreshold{0.9}, Sizing: Greedy{}, Deploy: Flat}
	eng, srv, svc := slowTailScenario(t, strategy, 10)
	runBatch(eng, srv, "b")
	// XWHEP's last task is running, none pending: a flat (undedicated,
	// unprivileged) cloud worker gets nothing and Greedy stops it.
	if eng.Now() < 10000 {
		t.Fatalf("completion %v: flat cloud worker should not have helped here", eng.Now())
	}
	u, _ := svc.Usage("b")
	if u.InstancesStarted == 0 {
		t.Fatal("no instance was even started")
	}
	// All instances were stopped as idle before completion.
	for _, qb := range svc.batches {
		for _, inst := range qb.instances {
			if inst.Running() {
				t.Fatal("idle flat instance not stopped by Greedy")
			}
		}
	}
	if u.CreditsBilled >= 1 {
		t.Fatalf("billed %v: greedy idle-stop should have released credits quickly", u.CreditsBilled)
	}
}

func TestCloudDuplicationMergesResults(t *testing.T) {
	strategy := Strategy{Trigger: CompletionThreshold{0.9}, Sizing: Conservative{}, Deploy: CloudDuplication}
	eng, srv, svc := slowTailScenario(t, strategy, 10)
	runBatch(eng, srv, "b")
	done := eng.Now()
	if done >= 10000 {
		t.Fatalf("completion %v: cloud duplication did not merge results", done)
	}
	u, _ := svc.Usage("b")
	if u.InstancesStarted == 0 {
		t.Fatal("no cloud instance started")
	}
	// The primary's progress must show the full batch completed.
	p := srv.Progress("b")
	if p.Completed != 10 || p.Running != 0 {
		t.Fatalf("primary progress after merge: %+v", p)
	}
}

func TestExhaustionStopsCloudWorkers(t *testing.T) {
	// 0.05 credits = 12 cpu·s: exhausted at the first billing tick.
	eng, srv, svc := slowTailScenario(t, DefaultStrategy(), 0.05)
	runBatch(eng, srv, "b")
	if eng.Now() < 9990 {
		t.Fatalf("completion %v: underfunded cloud still rescued the tail", eng.Now())
	}
	u, _ := svc.Usage("b")
	if !u.Exhausted {
		t.Fatal("order not marked exhausted")
	}
	if u.CreditsBilled > 0.05+1e-9 {
		t.Fatalf("billed %v > allocated", u.CreditsBilled)
	}
	o, _ := svc.Credits.OrderOf("b")
	if o.Remaining() > 1e-9 {
		t.Fatalf("remaining %v after exhaustion", o.Remaining())
	}
}

func TestNoTriggerWithoutCredits(t *testing.T) {
	eng := sim.NewEngine()
	srv := xwhep.New(eng, xwhep.DefaultConfig())
	simCloud := cloud.NewSimCloud(eng, cloud.DefaultSimConfig(), sim.NewRNG(1))
	svc := NewService(eng, srv, simCloud, DefaultConfig())
	specs := make([]bot.Task, 10)
	for i := range specs {
		specs[i] = bot.Task{ID: i, NOps: 1000}
	}
	svc.RegisterQoS("alice", "b", "env", len(specs))
	srv.Submit(middleware.Batch{ID: "b", Tasks: specs})
	srv.WorkerJoin(&middleware.Worker{ID: 0, Power: 1})
	runBatch(eng, srv, "b")
	u, _ := svc.Usage("b")
	if u.InstancesStarted != 0 {
		t.Fatal("cloud started without an order")
	}
	if eng.Now() != 10000 {
		t.Fatalf("completion %v, want exactly 10000", eng.Now())
	}
}

func TestPredictionThroughService(t *testing.T) {
	eng, srv, svc := slowTailScenario(t, DefaultStrategy(), 10)
	var pred Prediction
	var perr error
	eng.At(5100, func() { pred, perr = svc.Predict("b") })
	runBatch(eng, srv, "b")
	if perr != nil {
		t.Fatal(perr)
	}
	// At t=5100, 5 tasks done (r=0.5): tp = 5100/0.5 = 10200.
	if pred.PredictedTime < 9000 || pred.PredictedTime > 11000 {
		t.Fatalf("prediction = %v, want ~10200", pred.PredictedTime)
	}
	if _, err := svc.Predict("nope"); err == nil {
		t.Fatal("prediction for unknown batch accepted")
	}
}

func TestRegisterValidation(t *testing.T) {
	eng := sim.NewEngine()
	srv := xwhep.New(eng, xwhep.DefaultConfig())
	svc := NewService(eng, srv, cloud.NewSimCloud(eng, cloud.DefaultSimConfig(), sim.NewRNG(1)), DefaultConfig())
	if err := svc.RegisterQoS("u", "b", "env", 10); err != nil {
		t.Fatal(err)
	}
	if err := svc.RegisterQoS("u", "b", "env", 10); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if err := svc.OrderQoS("u", "unregistered", 10); err == nil {
		t.Fatal("order for unregistered batch accepted")
	}
	if _, err := svc.Usage("unregistered"); err == nil {
		t.Fatal("usage for unregistered batch accepted")
	}
}

func TestTickerStopsWhenAllDone(t *testing.T) {
	eng, srv, _ := slowTailScenario(t, DefaultStrategy(), 10)
	runBatch(eng, srv, "b")
	eng.Run() // must drain: the monitor ticker has to stop itself
	if eng.Pending() != 0 {
		t.Fatalf("%d events still pending after completion", eng.Pending())
	}
}

func TestDeterministicWithAndWithoutCloudBase(t *testing.T) {
	// Two identical no-credit runs must complete at the identical instant.
	run := func() float64 {
		eng := sim.NewEngine()
		srv := xwhep.New(eng, xwhep.DefaultConfig())
		svc := NewService(eng, srv, cloud.NewSimCloud(eng, cloud.DefaultSimConfig(), sim.NewRNG(3)), DefaultConfig())
		specs := make([]bot.Task, 7)
		for i := range specs {
			specs[i] = bot.Task{ID: i, NOps: 500 + float64(i)*37}
		}
		svc.RegisterQoS("u", "b", "env", len(specs))
		srv.Submit(middleware.Batch{ID: "b", Tasks: specs})
		srv.WorkerJoin(&middleware.Worker{ID: 0, Power: 1.3})
		srv.WorkerJoin(&middleware.Worker{ID: 1, Power: 0.9})
		runBatch(eng, srv, "b")
		return eng.Now()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("non-deterministic: %v vs %v", a, b)
	}
}

// TestMultiBoTArbitration runs two QoS batches from different users
// through one service: credits are accounted per order, cloud workers are
// dedicated per batch, and both executions finish with consistent billing
// (§3.3's multi-user arbitration).
func TestMultiBoTArbitration(t *testing.T) {
	eng := sim.NewEngine()
	srv := xwhep.New(eng, xwhep.DefaultConfig())
	simCloud := cloud.NewSimCloud(eng, cloud.SimConfig{BootDelay: 120}, sim.NewRNG(7))
	svc := NewService(eng, srv, simCloud, Config{Strategy: DefaultStrategy(), MonitorPeriod: 60})

	// 11 tasks on 2 workers leave a lone straggler after 90%% completion —
	// a genuine tail in both batches.
	mkBatch := func(id string, nops float64) middleware.Batch {
		specs := make([]bot.Task, 11)
		for i := range specs {
			specs[i] = bot.Task{ID: i, NOps: nops}
		}
		return middleware.Batch{ID: id, Tasks: specs}
	}
	for _, u := range []struct {
		user, batch string
		credits     float64
	}{{"alice", "a", 10}, {"bob", "b", 10}} {
		if err := svc.RegisterQoS(u.user, u.batch, "env", 11); err != nil {
			t.Fatal(err)
		}
		svc.Credits.Deposit(u.user, u.credits)
		if err := svc.OrderQoS(u.user, u.batch, u.credits); err != nil {
			t.Fatal(err)
		}
	}
	srv.Submit(mkBatch("a", 1000))
	srv.Submit(mkBatch("b", 1000))
	// Two slow workers: each batch takes ~20000 s interleaved without help.
	srv.WorkerJoin(&middleware.Worker{ID: 0, Power: 1})
	srv.WorkerJoin(&middleware.Worker{ID: 1, Power: 1})
	eng.RunWhile(func() bool { return !srv.Done("a") || !srv.Done("b") })

	for _, batch := range []string{"a", "b"} {
		o, ok := svc.Credits.OrderOf(batch)
		if !ok || !o.Closed {
			t.Fatalf("order %s not closed: %+v", batch, o)
		}
		u, _ := svc.Usage(batch)
		if u.InstancesStarted == 0 {
			t.Fatalf("batch %s never got cloud support", batch)
		}
	}
	// Billing isolation: each user paid only their own usage.
	for _, user := range []string{"alice", "bob"} {
		a := svc.Credits.AccountOf(user)
		if a.Spent <= 0 || a.Spent > 10 {
			t.Fatalf("%s spent %v", user, a.Spent)
		}
		if got := a.Balance + a.Spent; got != 10 {
			t.Fatalf("%s conservation broken: %v", user, got)
		}
	}
	// Cloud workers were dedicated: no instance of batch a served batch b.
	for id, qb := range svc.batches {
		for _, inst := range qb.instances {
			if inst.Worker.DedicatedBatch != id {
				t.Fatalf("instance for %s dedicated to %s", id, inst.Worker.DedicatedBatch)
			}
		}
	}
}
