//go:build race

package core

// raceDetectorEnabled reports that this binary was built with -race: the
// detector slows CPU-bound code by 2–20×, so wall-clock scaling assertions
// must not run.
const raceDetectorEnabled = true
