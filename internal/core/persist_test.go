package core

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestInformationSnapshotRoundTrip(t *testing.T) {
	in := NewInformation()
	bi, _ := in.Track("b1", "env1", 100, 1000)
	bi.AddSampleWorkers(1060, 30, 80, 20, 50, 200)
	bi.AddSampleWorkers(1120, 100, 100, 0, 0, 180)
	in.Track("b2", "env2", 10, 0)

	var buf bytes.Buffer
	if err := in.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadInformation(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rbi := back.Get("b1")
	if rbi == nil {
		t.Fatal("b1 lost")
	}
	if rbi.EnvKey != "env1" || rbi.Size != 100 || len(rbi.Samples) != 2 {
		t.Fatalf("restored: %+v", rbi)
	}
	// Derived state reconstructed by replay.
	if !rbi.Done() || rbi.CompletedAt != 120 {
		t.Fatalf("completion not restored: done=%v at=%v", rbi.Done(), rbi.CompletedAt)
	}
	if tc, ok := rbi.TimeAtCompletion(0.3); !ok || tc != 60 {
		t.Fatalf("milestones not rebuilt: tc(0.3)=%v,%v", tc, ok)
	}
	if rbi.PeakWorkers != 200 {
		t.Fatalf("peak workers not restored: %d", rbi.PeakWorkers)
	}
	if len(back.BatchIDs()) != 2 {
		t.Fatal("batch count wrong")
	}
}

func TestCreditSnapshotRoundTrip(t *testing.T) {
	cs := NewCreditSystem()
	cs.Deposit("alice", 100)
	cs.OrderQoS("alice", "b1", 60)
	cs.Bill("b1", 25)
	cs.Deposit("bob", 7)

	var buf bytes.Buffer
	if err := cs.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCreditSystem(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a := back.AccountOf("alice")
	if a.Balance != 40 || a.Spent != 25 {
		t.Fatalf("alice restored: %+v", a)
	}
	o, ok := back.OrderOf("b1")
	if !ok || o.Billed != 25 || o.Allocated != 60 || o.Closed {
		t.Fatalf("order restored: %+v", o)
	}
	// The restored system keeps working: pay refunds the remainder.
	refund, err := back.Pay("b1")
	if err != nil || refund != 35 {
		t.Fatalf("pay after restore: %v %v", refund, err)
	}
	if back.AccountOf("bob").Balance != 7 {
		t.Fatal("bob lost")
	}
}

func TestCalibrationSnapshotRoundTrip(t *testing.T) {
	c := NewCalibration()
	for i := 0; i < 10; i++ {
		c.Record("env", 1000+float64(i), 1500+1.5*float64(i))
	}
	var buf bytes.Buffer
	if err := c.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCalibration(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Count("env") != 10 {
		t.Fatalf("count = %d", back.Count("env"))
	}
	if math.Abs(back.Alpha("env")-c.Alpha("env")) > 1e-12 {
		t.Fatalf("alpha not refitted: %v vs %v", back.Alpha("env"), c.Alpha("env"))
	}
	if back.SuccessRate("env") != c.SuccessRate("env") {
		t.Fatal("success rate differs")
	}
}

func TestSnapshotErrors(t *testing.T) {
	if _, err := ReadInformation(strings.NewReader("{oops")); err == nil {
		t.Fatal("bad information JSON accepted")
	}
	if _, err := ReadCreditSystem(strings.NewReader("[]")); err == nil {
		t.Fatal("bad credit JSON accepted")
	}
	if _, err := ReadCalibration(strings.NewReader(`{"environments":[{"env_key":"e","bases":[1],"actuals":[]}]}`)); err == nil {
		t.Fatal("mismatched calibration lengths accepted")
	}
}
