package core

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// The paper's prototype persists module state in MySQL so the services can
// restart without losing QoS history (§3.7). This file provides the
// equivalent: JSON snapshots of the Information archive, the Credit System
// and the Oracle calibration, loadable into fresh instances.

// informationSnapshot is the serialized Information archive.
type informationSnapshot struct {
	Batches []batchSnapshot `json:"batches"`
}

type batchSnapshot struct {
	BatchID     string   `json:"batch_id"`
	EnvKey      string   `json:"env_key"`
	Size        int      `json:"size"`
	SubmittedAt float64  `json:"submitted_at"`
	Samples     []Sample `json:"samples"`
}

// WriteJSON serializes the archive. Milestone caches are derived data and
// are rebuilt on load by replaying samples.
func (in *Information) WriteJSON(w io.Writer) error {
	in.mu.RLock()
	defer in.mu.RUnlock()
	snap := informationSnapshot{}
	ids := make([]string, 0, len(in.batches))
	for id := range in.batches {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		bi := in.batches[id]
		snap.Batches = append(snap.Batches, batchSnapshot{
			BatchID: bi.BatchID, EnvKey: bi.EnvKey, Size: bi.Size,
			SubmittedAt: bi.SubmittedAt, Samples: bi.Samples,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(snap)
}

// ReadInformation loads an archive snapshot, replaying every sample so the
// milestone caches and completion markers are reconstructed exactly.
func ReadInformation(r io.Reader) (*Information, error) {
	var snap informationSnapshot
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("core: reading information snapshot: %w", err)
	}
	in := NewInformation()
	for _, bs := range snap.Batches {
		bi, err := in.Track(bs.BatchID, bs.EnvKey, bs.Size, bs.SubmittedAt)
		if err != nil {
			return nil, err
		}
		for _, s := range bs.Samples {
			bi.AddSampleWorkers(bs.SubmittedAt+s.T, s.Completed, s.Assigned, s.Queued, s.Running, s.Workers)
		}
	}
	return in, nil
}

// creditSnapshot is the serialized Credit System state.
type creditSnapshot struct {
	Accounts []Account `json:"accounts"`
	Orders   []Order   `json:"orders"`
}

// WriteJSON serializes accounts and orders.
func (cs *CreditSystem) WriteJSON(w io.Writer) error {
	cs.mu.RLock()
	defer cs.mu.RUnlock()
	snap := creditSnapshot{}
	users := make([]string, 0, len(cs.accounts))
	for u := range cs.accounts {
		users = append(users, u)
	}
	sort.Strings(users)
	for _, u := range users {
		a := cs.accounts[u]
		a.mu.Lock()
		snap.Accounts = append(snap.Accounts, a.Account)
		a.mu.Unlock()
	}
	ids := make([]string, 0, len(cs.orders))
	for id := range cs.orders {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		o := cs.orders[id]
		o.mu.Lock()
		snap.Orders = append(snap.Orders, o.Order)
		o.mu.Unlock()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(snap)
}

// ReadCreditSystem loads a Credit System snapshot.
func ReadCreditSystem(r io.Reader) (*CreditSystem, error) {
	var snap creditSnapshot
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("core: reading credit snapshot: %w", err)
	}
	cs := NewCreditSystem()
	cs.mu.Lock()
	defer cs.mu.Unlock()
	for _, a := range snap.Accounts {
		cs.accounts[a.User] = &creditAccount{Account: a}
	}
	for _, o := range snap.Orders {
		cs.orders[o.BatchID] = &creditOrder{Order: o}
	}
	return cs, nil
}

// calibrationSnapshot is the serialized per-environment fit history.
type calibrationSnapshot struct {
	Environments []envSnapshot `json:"environments"`
}

type envSnapshot struct {
	EnvKey  string    `json:"env_key"`
	Bases   []float64 `json:"bases"`
	Actuals []float64 `json:"actuals"`
}

// WriteJSON serializes the calibration history (α is refitted on load).
func (c *Calibration) WriteJSON(w io.Writer) error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	snap := calibrationSnapshot{}
	keys := make([]string, 0, len(c.byEnv))
	for k := range c.byEnv {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		e := c.byEnv[k]
		snap.Environments = append(snap.Environments, envSnapshot{
			EnvKey: k, Bases: e.bases, Actuals: e.actuals,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(snap)
}

// ReadCalibration loads a calibration snapshot, refitting every α.
func ReadCalibration(r io.Reader) (*Calibration, error) {
	var snap calibrationSnapshot
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("core: reading calibration snapshot: %w", err)
	}
	c := NewCalibration()
	for _, e := range snap.Environments {
		if len(e.Bases) != len(e.Actuals) {
			return nil, fmt.Errorf("core: calibration snapshot for %q has mismatched lengths", e.EnvKey)
		}
		for i := range e.Bases {
			c.Record(e.EnvKey, e.Bases[i], e.Actuals[i])
		}
	}
	return c, nil
}
