//go:build !race

package core

// raceDetectorEnabled reports whether this binary was built with -race.
const raceDetectorEnabled = false
