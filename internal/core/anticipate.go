package core

// This file implements the paper's stated future work (§7): "anticipate
// when a BoT is likely to produce a tail by correlating the execution with
// the state of the infrastructure: resource heterogeneity, variation in the
// number of computing resources and rare events such as massive failures or
// network partitioning."
//
// CapacityAware is a trigger that combines a (lower) completion threshold
// with an infrastructure-state signal: the number of workers attached to
// the DG server, which the Information module records with every sample.
// When enough of the BoT is done for cloud help to be affordable AND the
// infrastructure has lost a significant fraction of its peak capacity —
// the signature of a massive failure or a best-effort preemption wave —
// cloud workers start early, before the plain 90% threshold would fire.

// CapacityAware anticipates tails from infrastructure capacity drops.
type CapacityAware struct {
	// MinCompleted is the minimum completed fraction before the trigger
	// may fire at all (cloud help for the bulk would be too expensive).
	MinCompleted float64
	// DropFraction is the capacity-loss fraction versus the observed peak
	// that signals trouble (e.g. 0.5 = half the workers are gone).
	DropFraction float64
	// Fallback is the completed fraction at which the trigger fires
	// regardless of capacity (a safety net, typically 0.9).
	Fallback float64
}

// DefaultCapacityAware returns the calibration used by the ablation bench:
// fire from 70% completion on a 50% capacity drop, with the standard 90%
// fallback.
func DefaultCapacityAware() CapacityAware {
	return CapacityAware{MinCompleted: 0.7, DropFraction: 0.5, Fallback: 0.9}
}

// Code implements Trigger.
func (t CapacityAware) Code() string { return "CA" }

// ShouldStart implements Trigger.
func (t CapacityAware) ShouldStart(bi *BatchInfo) bool {
	c := bi.CompletedFraction()
	if t.Fallback > 0 && c >= t.Fallback {
		return true
	}
	if c < t.MinCompleted {
		return false
	}
	last := bi.Last()
	if bi.PeakWorkers <= 0 || last.Workers <= 0 {
		return false
	}
	lost := 1 - float64(last.Workers)/float64(bi.PeakWorkers)
	return lost >= t.DropFraction
}

var _ Trigger = CapacityAware{}
