package core

import "testing"

func TestCapacityAwareFallback(t *testing.T) {
	tr := DefaultCapacityAware()
	bi := NewBatchInfo("b", "e", 100, 0)
	bi.AddSampleWorkers(60, 92, 100, 0, 8, 50) // healthy infra, 92% done
	if !tr.ShouldStart(bi) {
		t.Fatal("fallback threshold did not fire at 92%")
	}
}

func TestCapacityAwareAnticipatesDrop(t *testing.T) {
	tr := DefaultCapacityAware()
	bi := NewBatchInfo("b", "e", 100, 0)
	bi.AddSampleWorkers(60, 40, 100, 0, 60, 200) // peak 200 workers
	bi.AddSampleWorkers(120, 75, 100, 0, 25, 190)
	if tr.ShouldStart(bi) {
		t.Fatal("fired with healthy capacity")
	}
	// Massive failure: 70% of the workers vanish at 75% completion — the
	// plain 9C trigger would wait for 90%.
	bi.AddSampleWorkers(180, 76, 100, 0, 24, 60)
	if !tr.ShouldStart(bi) {
		t.Fatal("did not anticipate the capacity drop")
	}
	if (CompletionThreshold{Frac: 0.9}).ShouldStart(bi) {
		t.Fatal("baseline trigger should not have fired yet (sanity)")
	}
}

func TestCapacityAwareRespectsMinCompleted(t *testing.T) {
	tr := DefaultCapacityAware()
	bi := NewBatchInfo("b", "e", 100, 0)
	bi.AddSampleWorkers(60, 10, 100, 0, 90, 200)
	bi.AddSampleWorkers(120, 20, 100, 0, 80, 20) // huge drop, but only 20% done
	if tr.ShouldStart(bi) {
		t.Fatal("fired below MinCompleted: cloud would compute the bulk")
	}
}

func TestCapacityAwareNoWorkerData(t *testing.T) {
	tr := DefaultCapacityAware()
	bi := NewBatchInfo("b", "e", 100, 0)
	bi.AddSample(60, 80, 100, 0, 20) // legacy samples without worker counts
	if tr.ShouldStart(bi) {
		t.Fatal("fired without infrastructure data below the fallback")
	}
	bi.AddSample(120, 95, 100, 0, 5)
	if !tr.ShouldStart(bi) {
		t.Fatal("fallback must still work without worker data")
	}
}

func TestCapacityAwareCode(t *testing.T) {
	if DefaultCapacityAware().Code() != "CA" {
		t.Fatal("code wrong")
	}
	st := Strategy{Trigger: DefaultCapacityAware(), Sizing: Conservative{}, Deploy: Reschedule}
	if st.Label() != "CA-C-R" {
		t.Fatalf("label = %s", st.Label())
	}
}
