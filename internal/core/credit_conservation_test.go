package core

import (
	"fmt"
	"sync"
	"testing"
)

// TestCreditConservationUnderConcurrency is the ledger's property test:
// deposits, orders, concurrent billing from many goroutines (the scheduler
// shards), payments and fresh orders in flight together must conserve
// credits EXACTLY — for every user,
//
//	deposited = balance + spent + Σ remaining over open orders
//
// All amounts are multiples of 0.25, so every sum is exact in float64 and
// the comparison needs no tolerance: any lost or double-counted quarter
// credit fails the test. Run with -race to also prove memory safety of the
// striped ledger.
func TestCreditConservationUnderConcurrency(t *testing.T) {
	cs := NewCreditSystem()
	const (
		users         = 4
		ordersPerUser = 8
		workers       = 8
		opsPerWorker  = 400
		seedDeposit   = 1000.0
		orderSize     = 20.0
	)

	deposited := map[string]float64{}
	var batchIDs []string
	for u := 0; u < users; u++ {
		user := fmt.Sprintf("u%d", u)
		if err := cs.Deposit(user, seedDeposit); err != nil {
			t.Fatal(err)
		}
		deposited[user] += seedDeposit
		for i := 0; i < ordersPerUser; i++ {
			id := fmt.Sprintf("b%d-%d", u, i)
			if err := cs.OrderQoS(user, id, orderSize); err != nil {
				t.Fatal(err)
			}
			batchIDs = append(batchIDs, id)
		}
	}

	// Each worker interleaves bills against shared orders with payments and
	// fresh deposit+order churn; per-worker side effects are recorded
	// locally and merged after the join so the invariant check knows the
	// exact totals.
	type delta struct {
		deposits map[string]float64
		orders   []string
	}
	deltas := make([]delta, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		deltas[w] = delta{deposits: map[string]float64{}}
		wg.Add(1)
		go func() {
			defer wg.Done()
			d := &deltas[w]
			for i := 0; i < opsPerWorker; i++ {
				id := batchIDs[(w*7+i*13)%len(batchIDs)]
				switch {
				case i%37 == 36:
					if _, err := cs.Pay(id); err != nil {
						t.Errorf("pay %s: %v", id, err)
					}
				case i%11 == 10:
					user := fmt.Sprintf("u%d", (w+i)%users)
					fresh := fmt.Sprintf("w%d-%d", w, i)
					if err := cs.Deposit(user, 1.25); err != nil {
						t.Errorf("deposit %s: %v", user, err)
						continue
					}
					d.deposits[user] += 1.25
					if err := cs.OrderQoS(user, fresh, 1.25); err != nil {
						t.Errorf("order %s: %v", fresh, err)
						continue
					}
					d.orders = append(d.orders, fresh)
				default:
					// Billing a paid order errors by design; the credits
					// must still conserve.
					cs.Bill(id, 0.25) //nolint:errcheck
				}
			}
		}()
	}
	wg.Wait()

	allOrders := append([]string{}, batchIDs...)
	for _, d := range deltas {
		for user, amt := range d.deposits {
			deposited[user] += amt
		}
		allOrders = append(allOrders, d.orders...)
	}

	held := map[string]float64{} // user → Σ remaining over open orders
	for _, id := range allOrders {
		o, ok := cs.OrderOf(id)
		if !ok {
			t.Fatalf("order %s vanished", id)
		}
		if o.Billed < 0 || o.Billed > o.Allocated {
			t.Fatalf("order %s over-billed: %+v", id, o)
		}
		if !o.Closed {
			held[o.User] += o.Remaining()
		}
	}
	for user, dep := range deposited {
		a := cs.AccountOf(user)
		if got := a.Balance + a.Spent + held[user]; got != dep {
			t.Errorf("%s: balance %v + spent %v + held %v = %v, deposited %v (leak %v)",
				user, a.Balance, a.Spent, held[user], got, dep, dep-got)
		}
		if a.Balance < 0 {
			t.Errorf("%s: negative balance %v", user, a.Balance)
		}
	}
}
