package core

import (
	"testing"
	"testing/quick"
)

func TestBatchInfoMilestones(t *testing.T) {
	bi := NewBatchInfo("b", "env", 100, 1000)
	bi.AddSample(1060, 0, 50, 50, 0)  // t=60: 50% assigned
	bi.AddSample(1120, 30, 100, 0, 0) // t=120: 30% completed, all assigned
	bi.AddSample(1180, 90, 100, 0, 0)
	bi.AddSample(1240, 100, 100, 0, 0)

	if got, ok := bi.TimeAtCompletion(0.3); !ok || got != 120 {
		t.Errorf("tc(0.3) = %v,%v want 120", got, ok)
	}
	if got, ok := bi.TimeAtCompletion(0.9); !ok || got != 180 {
		t.Errorf("tc(0.9) = %v,%v want 180", got, ok)
	}
	if got, ok := bi.TimeAtAssignment(0.5); !ok || got != 60 {
		t.Errorf("ta(0.5) = %v,%v want 60", got, ok)
	}
	if got, ok := bi.TimeAtAssignment(0.9); !ok || got != 120 {
		t.Errorf("ta(0.9) = %v,%v want 120", got, ok)
	}
	if !bi.Done() || bi.CompletedAt != 240 {
		t.Errorf("completion: done=%v at=%v", bi.Done(), bi.CompletedAt)
	}
	if bi.CompletedFraction() != 1 || bi.AssignedFraction() != 1 {
		t.Error("fractions wrong at completion")
	}
	// Intermediate milestone (31%) first reached at the same sample as 90%.
	if got, ok := bi.TimeAtCompletion(0.31); !ok || got != 180 {
		t.Errorf("tc(0.31) = %v,%v want 180", got, ok)
	}
	// Unreached milestone before completion.
	bi2 := NewBatchInfo("b2", "env", 100, 0)
	bi2.AddSample(60, 10, 20, 0, 0)
	if _, ok := bi2.TimeAtCompletion(0.5); ok {
		t.Error("tc(0.5) should be unknown at 10% completion")
	}
}

func TestExecutionVarianceSeries(t *testing.T) {
	bi := NewBatchInfo("b", "env", 10, 0)
	bi.AddSample(10, 0, 10, 0, 10) // everything assigned at t=10
	bi.AddSample(50, 5, 10, 0, 5)  // 50% completed at t=50
	bi.AddSample(500, 9, 10, 0, 1) // stragglers
	v, ok := bi.ExecutionVariance(0.5)
	if !ok || v != 40 {
		t.Errorf("var(0.5) = %v,%v want 40", v, ok)
	}
	v, ok = bi.ExecutionVariance(0.9)
	if !ok || v != 490 {
		t.Errorf("var(0.9) = %v,%v want 490", v, ok)
	}
	if m := bi.MaxExecutionVarianceUpTo(0.5); m != 40 {
		t.Errorf("max var first half = %v, want 40", m)
	}
	if _, ok := bi.ExecutionVariance(0.95); ok {
		t.Error("var(0.95) should be unknown")
	}
}

// Property: milestone times are monotone in x and never exceed the last
// sample time.
func TestMilestoneMonotonicityProperty(t *testing.T) {
	f := func(counts []uint8) bool {
		bi := NewBatchInfo("b", "env", 100, 0)
		tt := 0.0
		completed := 0
		for _, c := range counts {
			tt += 60
			completed += int(c) % 7
			if completed > 100 {
				completed = 100
			}
			bi.AddSample(tt, completed, 100, 0, 0)
		}
		prev := 0.0
		for i := 1; i <= 100; i++ {
			v, ok := bi.TimeAtCompletion(float64(i) / 100)
			if !ok {
				break
			}
			if v < prev || v > tt {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestInformationTracking(t *testing.T) {
	in := NewInformation()
	bi, err := in.Track("b1", "env", 10, 0)
	if err != nil || bi == nil {
		t.Fatal(err)
	}
	if _, err := in.Track("b1", "env", 10, 0); err == nil {
		t.Fatal("duplicate track accepted")
	}
	if in.Get("b1") != bi {
		t.Fatal("get mismatch")
	}
	if in.Get("zz") != nil {
		t.Fatal("phantom batch")
	}
	in.Track("a0", "env", 5, 0)
	ids := in.BatchIDs()
	if len(ids) != 2 || ids[0] != "a0" || ids[1] != "b1" {
		t.Fatalf("ids = %v", ids)
	}
}

func TestLastOnEmpty(t *testing.T) {
	bi := NewBatchInfo("b", "env", 10, 0)
	if s := bi.Last(); s.Completed != 0 || s.T != 0 {
		t.Fatalf("empty last = %+v", s)
	}
	if bi.CompletedFraction() != 0 {
		t.Fatal("fraction on empty should be 0")
	}
}
