package core

import (
	"fmt"
	"sort"
	"sync"
)

// CreditsPerCPUHour is the fixed exchange rate of the Credit System (§3.3:
// "1 CPU.hour of Cloud worker usage costs 15 credits").
const CreditsPerCPUHour = 15.0

// CreditSystem is the SpeQuloS billing and accounting module: it manages
// user accounts, QoS orders attached to BoTs, per-period billing of cloud
// usage, and the final payment that refunds unspent credits (§3.3). It is
// safe for concurrent use, and scales under contention: the maps are only
// guarded for lookup and insertion, while every account and order carries
// its own lock, so scheduler shards billing different batches never
// serialize on a global mutex. Lock order is maps → order → account; the
// map lock is never acquired while an entry lock is held.
type CreditSystem struct {
	mu       sync.RWMutex // guards the maps; entry locks guard the values
	accounts map[string]*creditAccount
	orders   map[string]*creditOrder
	rate     float64
}

// creditAccount stripes the ledger per account: the embedded value is
// guarded by its own lock, not the CreditSystem mutex. User is immutable
// after creation and may be read without the lock.
type creditAccount struct {
	mu sync.Mutex
	Account
}

// creditOrder stripes the ledger per order. BatchID and User are immutable
// after creation and may be read without the lock.
type creditOrder struct {
	mu sync.Mutex
	Order
}

// Account is a user's credit account.
type Account struct {
	User    string  `json:"user"`
	Balance float64 `json:"balance"`
	Spent   float64 `json:"spent"` // lifetime credits consumed
}

// Order is a QoS support order: credits provisioned for one BoT.
type Order struct {
	BatchID   string  `json:"batch_id"`
	User      string  `json:"user"`
	Allocated float64 `json:"allocated"`
	Billed    float64 `json:"billed"`
	Closed    bool    `json:"closed"`
}

// Remaining returns the unconsumed credits of the order.
func (o *Order) Remaining() float64 { return o.Allocated - o.Billed }

// NewCreditSystem returns a credit system with the paper's exchange rate.
func NewCreditSystem() *CreditSystem {
	return &CreditSystem{
		accounts: map[string]*creditAccount{},
		orders:   map[string]*creditOrder{},
		rate:     CreditsPerCPUHour,
	}
}

// Rate returns credits per CPU·hour.
func (cs *CreditSystem) Rate() float64 { return cs.rate }

// CreditsForCPUSeconds converts cloud CPU time to credits.
func (cs *CreditSystem) CreditsForCPUSeconds(sec float64) float64 {
	return sec / 3600 * cs.rate
}

// CPUHoursFor converts credits to CPU·hours of cloud usage.
func (cs *CreditSystem) CPUHoursFor(credits float64) float64 { return credits / cs.rate }

// Deposit adds credits to a user account, creating it on first use.
func (cs *CreditSystem) Deposit(user string, credits float64) error {
	if credits < 0 {
		return fmt.Errorf("credit: negative deposit %g", credits)
	}
	a := cs.account(user)
	a.mu.Lock()
	a.Balance += credits
	a.mu.Unlock()
	return nil
}

// account returns the user's entry, creating it on first use. It takes the
// map lock only; callers lock the entry before touching balances.
func (cs *CreditSystem) account(user string) *creditAccount {
	cs.mu.RLock()
	a, ok := cs.accounts[user]
	cs.mu.RUnlock()
	if ok {
		return a
	}
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if a, ok := cs.accounts[user]; ok {
		return a
	}
	a = &creditAccount{Account: Account{User: user}}
	cs.accounts[user] = a
	return a
}

// orderOf returns the batch's order entry, if any.
func (cs *CreditSystem) orderOf(batchID string) (*creditOrder, bool) {
	cs.mu.RLock()
	o, ok := cs.orders[batchID]
	cs.mu.RUnlock()
	return o, ok
}

// AccountOf returns a copy of the user's account state.
func (cs *CreditSystem) AccountOf(user string) Account {
	a := cs.account(user)
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.Account
}

// OrderQoS provisions credits from the user's account for a BoT (§3.3:
// "The Credit System verifies that there are enough credits on the user's
// account to allow the order, and then it provisions credits to the BoT").
func (cs *CreditSystem) OrderQoS(user, batchID string, credits float64) error {
	if credits <= 0 {
		return fmt.Errorf("credit: order must be positive, got %g", credits)
	}
	// Order creation takes the map write lock for the whole check-and-insert
	// so two concurrent orders for one batch cannot both pass the "already
	// open" test. Orders are rare (once per batch) — billing never comes
	// through here.
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if o, ok := cs.orders[batchID]; ok {
		o.mu.Lock()
		open := !o.Closed
		o.mu.Unlock()
		if open {
			return fmt.Errorf("credit: batch %q already has an open order", batchID)
		}
	}
	a, ok := cs.accounts[user]
	if !ok {
		a = &creditAccount{Account: Account{User: user}}
		cs.accounts[user] = a
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.Balance < credits {
		return fmt.Errorf("credit: %s has %.1f credits, needs %.1f", user, a.Balance, credits)
	}
	a.Balance -= credits
	cs.orders[batchID] = &creditOrder{Order: Order{BatchID: batchID, User: user, Allocated: credits}}
	return nil
}

// HasCredits reports whether the batch has an open order with credits left
// (Algorithm 1's CreditSystem.hasCredits).
func (cs *CreditSystem) HasCredits(batchID string) bool {
	o, ok := cs.orderOf(batchID)
	if !ok {
		return false
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	return !o.Closed && o.Remaining() > 1e-9
}

// Bill charges cloud usage against the batch's order (Algorithm 2's
// CreditSystem.bill). It bills at most the remaining credits and returns
// the amount actually billed; exhausted reports whether the order ran dry.
func (cs *CreditSystem) Bill(batchID string, credits float64) (billed float64, exhausted bool, err error) {
	if credits < 0 {
		return 0, false, fmt.Errorf("credit: negative bill %g", credits)
	}
	o, ok := cs.orderOf(batchID)
	if !ok {
		return 0, true, fmt.Errorf("credit: no open order for batch %q", batchID)
	}
	o.mu.Lock()
	if o.Closed {
		o.mu.Unlock()
		return 0, true, fmt.Errorf("credit: no open order for batch %q", batchID)
	}
	billed = credits
	if rem := o.Remaining(); billed >= rem {
		billed = rem
		exhausted = true
	}
	o.Billed += billed
	o.mu.Unlock()
	a := cs.account(o.User)
	a.mu.Lock()
	a.Spent += billed
	a.mu.Unlock()
	return billed, exhausted, nil
}

// Pay closes the order and refunds unspent credits to the user (§3.3: "If
// the BoT execution was completed before all the credits have been spent,
// the Credit System transfers back the remaining credits").
func (cs *CreditSystem) Pay(batchID string) (refund float64, err error) {
	o, ok := cs.orderOf(batchID)
	if !ok {
		return 0, fmt.Errorf("credit: no order for batch %q", batchID)
	}
	o.mu.Lock()
	if o.Closed {
		o.mu.Unlock()
		return 0, nil
	}
	o.Closed = true
	refund = o.Remaining()
	o.mu.Unlock()
	a := cs.account(o.User)
	a.mu.Lock()
	a.Balance += refund
	a.mu.Unlock()
	return refund, nil
}

// OrderOf returns a copy of the batch's order.
func (cs *CreditSystem) OrderOf(batchID string) (Order, bool) {
	o, ok := cs.orderOf(batchID)
	if !ok {
		return Order{}, false
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.Order, true
}

// Users lists known accounts, sorted.
func (cs *CreditSystem) Users() []string {
	cs.mu.RLock()
	out := make([]string, 0, len(cs.accounts))
	for u := range cs.accounts {
		out = append(out, u)
	}
	cs.mu.RUnlock()
	sort.Strings(out)
	return out
}

// DepositPolicy provisions user accounts periodically (§3.3: administrators
// control cloud usage through deposit policies).
type DepositPolicy interface {
	// Apply returns the credits to deposit for the account.
	Apply(a Account) float64
	Name() string
}

// TopUpPolicy refills an account up to Cap credits each period — the
// paper's example policy limiting a user's daily cloud usage (its printed
// formula d = max(6000, 6000−spent) reads as a top-up to 6000; we implement
// the top-up semantics).
type TopUpPolicy struct{ Cap float64 }

// Apply implements DepositPolicy.
func (p TopUpPolicy) Apply(a Account) float64 {
	if d := p.Cap - a.Balance; d > 0 {
		return d
	}
	return 0
}

// Name implements DepositPolicy.
func (p TopUpPolicy) Name() string { return fmt.Sprintf("topup(%g)", p.Cap) }

// FixedPolicy deposits a constant amount each period.
type FixedPolicy struct{ Amount float64 }

// Apply implements DepositPolicy.
func (p FixedPolicy) Apply(Account) float64 { return p.Amount }

// Name implements DepositPolicy.
func (p FixedPolicy) Name() string { return fmt.Sprintf("fixed(%g)", p.Amount) }

// ApplyPolicy runs a deposit policy over every account.
func (cs *CreditSystem) ApplyPolicy(p DepositPolicy) {
	cs.mu.RLock()
	accounts := make([]*creditAccount, 0, len(cs.accounts))
	for _, a := range cs.accounts {
		accounts = append(accounts, a)
	}
	cs.mu.RUnlock()
	for _, a := range accounts {
		a.mu.Lock()
		a.Balance += p.Apply(a.Account)
		a.mu.Unlock()
	}
}
