package core

import (
	"fmt"
	"sort"
	"sync"
)

// CreditsPerCPUHour is the fixed exchange rate of the Credit System (§3.3:
// "1 CPU.hour of Cloud worker usage costs 15 credits").
const CreditsPerCPUHour = 15.0

// CreditSystem is the SpeQuloS billing and accounting module: it manages
// user accounts, QoS orders attached to BoTs, per-period billing of cloud
// usage, and the final payment that refunds unspent credits (§3.3). It is
// safe for concurrent use.
type CreditSystem struct {
	mu       sync.Mutex
	accounts map[string]*Account
	orders   map[string]*Order
	rate     float64
}

// Account is a user's credit account.
type Account struct {
	User    string  `json:"user"`
	Balance float64 `json:"balance"`
	Spent   float64 `json:"spent"` // lifetime credits consumed
}

// Order is a QoS support order: credits provisioned for one BoT.
type Order struct {
	BatchID   string  `json:"batch_id"`
	User      string  `json:"user"`
	Allocated float64 `json:"allocated"`
	Billed    float64 `json:"billed"`
	Closed    bool    `json:"closed"`
}

// Remaining returns the unconsumed credits of the order.
func (o *Order) Remaining() float64 { return o.Allocated - o.Billed }

// NewCreditSystem returns a credit system with the paper's exchange rate.
func NewCreditSystem() *CreditSystem {
	return &CreditSystem{
		accounts: map[string]*Account{},
		orders:   map[string]*Order{},
		rate:     CreditsPerCPUHour,
	}
}

// Rate returns credits per CPU·hour.
func (cs *CreditSystem) Rate() float64 { return cs.rate }

// CreditsForCPUSeconds converts cloud CPU time to credits.
func (cs *CreditSystem) CreditsForCPUSeconds(sec float64) float64 {
	return sec / 3600 * cs.rate
}

// CPUHoursFor converts credits to CPU·hours of cloud usage.
func (cs *CreditSystem) CPUHoursFor(credits float64) float64 { return credits / cs.rate }

// Deposit adds credits to a user account, creating it on first use.
func (cs *CreditSystem) Deposit(user string, credits float64) error {
	if credits < 0 {
		return fmt.Errorf("credit: negative deposit %g", credits)
	}
	cs.mu.Lock()
	defer cs.mu.Unlock()
	cs.account(user).Balance += credits
	return nil
}

func (cs *CreditSystem) account(user string) *Account {
	a, ok := cs.accounts[user]
	if !ok {
		a = &Account{User: user}
		cs.accounts[user] = a
	}
	return a
}

// AccountOf returns a copy of the user's account state.
func (cs *CreditSystem) AccountOf(user string) Account {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return *cs.account(user)
}

// OrderQoS provisions credits from the user's account for a BoT (§3.3:
// "The Credit System verifies that there are enough credits on the user's
// account to allow the order, and then it provisions credits to the BoT").
func (cs *CreditSystem) OrderQoS(user, batchID string, credits float64) error {
	if credits <= 0 {
		return fmt.Errorf("credit: order must be positive, got %g", credits)
	}
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if o, ok := cs.orders[batchID]; ok && !o.Closed {
		return fmt.Errorf("credit: batch %q already has an open order", batchID)
	}
	a := cs.account(user)
	if a.Balance < credits {
		return fmt.Errorf("credit: %s has %.1f credits, needs %.1f", user, a.Balance, credits)
	}
	a.Balance -= credits
	cs.orders[batchID] = &Order{BatchID: batchID, User: user, Allocated: credits}
	return nil
}

// HasCredits reports whether the batch has an open order with credits left
// (Algorithm 1's CreditSystem.hasCredits).
func (cs *CreditSystem) HasCredits(batchID string) bool {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	o, ok := cs.orders[batchID]
	return ok && !o.Closed && o.Remaining() > 1e-9
}

// Bill charges cloud usage against the batch's order (Algorithm 2's
// CreditSystem.bill). It bills at most the remaining credits and returns
// the amount actually billed; exhausted reports whether the order ran dry.
func (cs *CreditSystem) Bill(batchID string, credits float64) (billed float64, exhausted bool, err error) {
	if credits < 0 {
		return 0, false, fmt.Errorf("credit: negative bill %g", credits)
	}
	cs.mu.Lock()
	defer cs.mu.Unlock()
	o, ok := cs.orders[batchID]
	if !ok || o.Closed {
		return 0, true, fmt.Errorf("credit: no open order for batch %q", batchID)
	}
	billed = credits
	if rem := o.Remaining(); billed >= rem {
		billed = rem
		exhausted = true
	}
	o.Billed += billed
	cs.account(o.User).Spent += billed
	return billed, exhausted, nil
}

// Pay closes the order and refunds unspent credits to the user (§3.3: "If
// the BoT execution was completed before all the credits have been spent,
// the Credit System transfers back the remaining credits").
func (cs *CreditSystem) Pay(batchID string) (refund float64, err error) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	o, ok := cs.orders[batchID]
	if !ok {
		return 0, fmt.Errorf("credit: no order for batch %q", batchID)
	}
	if o.Closed {
		return 0, nil
	}
	o.Closed = true
	refund = o.Remaining()
	cs.account(o.User).Balance += refund
	return refund, nil
}

// OrderOf returns a copy of the batch's order.
func (cs *CreditSystem) OrderOf(batchID string) (Order, bool) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	o, ok := cs.orders[batchID]
	if !ok {
		return Order{}, false
	}
	return *o, true
}

// Users lists known accounts, sorted.
func (cs *CreditSystem) Users() []string {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	out := make([]string, 0, len(cs.accounts))
	for u := range cs.accounts {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}

// DepositPolicy provisions user accounts periodically (§3.3: administrators
// control cloud usage through deposit policies).
type DepositPolicy interface {
	// Apply returns the credits to deposit for the account.
	Apply(a Account) float64
	Name() string
}

// TopUpPolicy refills an account up to Cap credits each period — the
// paper's example policy limiting a user's daily cloud usage (its printed
// formula d = max(6000, 6000−spent) reads as a top-up to 6000; we implement
// the top-up semantics).
type TopUpPolicy struct{ Cap float64 }

// Apply implements DepositPolicy.
func (p TopUpPolicy) Apply(a Account) float64 {
	if d := p.Cap - a.Balance; d > 0 {
		return d
	}
	return 0
}

// Name implements DepositPolicy.
func (p TopUpPolicy) Name() string { return fmt.Sprintf("topup(%g)", p.Cap) }

// FixedPolicy deposits a constant amount each period.
type FixedPolicy struct{ Amount float64 }

// Apply implements DepositPolicy.
func (p FixedPolicy) Apply(Account) float64 { return p.Amount }

// Name implements DepositPolicy.
func (p FixedPolicy) Name() string { return fmt.Sprintf("fixed(%g)", p.Amount) }

// ApplyPolicy runs a deposit policy over every account.
func (cs *CreditSystem) ApplyPolicy(p DepositPolicy) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	for _, a := range cs.accounts {
		a.Balance += p.Apply(*a)
	}
}
