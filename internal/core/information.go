// Package core implements SpeQuloS itself (§3 of the paper): the
// Information module that monitors BoT progress, the Credit System that
// accounts for cloud usage, the Oracle that predicts completion times and
// decides when and how many cloud workers to start, and the Scheduler that
// manages cloud workers over a BoT's lifetime (Algorithms 1 and 2).
package core

import (
	"fmt"
	"sort"
	"sync"
)

// Sample is one monitoring observation of a BoT execution (§3.2: the
// Information module stores "the BoT completion history as a time series of
// the number of completed tasks, the number of tasks assigned to workers
// and the number of tasks waiting in the scheduler queue").
type Sample struct {
	T         float64 `json:"t"` // seconds since BoT submission
	Completed int     `json:"completed"`
	Assigned  int     `json:"assigned"` // tasks ever assigned (monotone)
	Queued    int     `json:"queued"`
	Running   int     `json:"running"`
	// Workers is the infrastructure state observed with the sample: the
	// number of workers attached to the DG server. The tail-anticipation
	// extension (§7 future work) correlates execution with it.
	Workers int `json:"workers"`
}

// milestones is the per-percent resolution of the tc(x)/ta(x) caches.
const milestones = 100

// BatchInfo is the monitored history of one BoT execution. The milestone
// caches give O(1) access to tc(x) (time at which x% of the BoT was
// completed) and ta(x) (time at which x% was assigned), the two series
// every Oracle strategy is built from.
type BatchInfo struct {
	BatchID     string
	EnvKey      string // environment (middleware/BE-DCI/BoT class) for α calibration
	Size        int
	SubmittedAt float64
	Samples     []Sample
	CompletedAt float64 // -1 while running
	// PeakWorkers is the largest worker count observed so far.
	PeakWorkers int

	// tcAt[i] is the elapsed time at which completion first reached i
	// percent; -1 if not yet. taAt is the same for assignment.
	tcAt [milestones + 1]float64
	taAt [milestones + 1]float64
}

// NewBatchInfo starts tracking a batch of the given size.
func NewBatchInfo(batchID, envKey string, size int, submittedAt float64) *BatchInfo {
	bi := &BatchInfo{BatchID: batchID, EnvKey: envKey, Size: size, SubmittedAt: submittedAt, CompletedAt: -1}
	for i := range bi.tcAt {
		bi.tcAt[i] = -1
		bi.taAt[i] = -1
	}
	bi.tcAt[0] = 0
	bi.taAt[0] = 0
	return bi
}

// AddSample appends an observation taken at absolute time now.
func (bi *BatchInfo) AddSample(now float64, completed, assigned, queued, running int) {
	bi.AddSampleWorkers(now, completed, assigned, queued, running, 0)
}

// AddSampleWorkers appends an observation including the infrastructure
// state (attached worker count).
func (bi *BatchInfo) AddSampleWorkers(now float64, completed, assigned, queued, running, workers int) {
	t := now - bi.SubmittedAt
	s := Sample{T: t, Completed: completed, Assigned: assigned, Queued: queued, Running: running, Workers: workers}
	if workers > bi.PeakWorkers {
		bi.PeakWorkers = workers
	}
	bi.Samples = append(bi.Samples, s)
	if bi.Size > 0 {
		fill := func(cache *[milestones + 1]float64, count int) {
			upto := count * milestones / bi.Size
			if upto > milestones {
				upto = milestones
			}
			for i := 1; i <= upto; i++ {
				if cache[i] < 0 {
					cache[i] = t
				}
			}
		}
		fill(&bi.tcAt, completed)
		fill(&bi.taAt, assigned)
	}
	if completed >= bi.Size && bi.Size > 0 && bi.CompletedAt < 0 {
		bi.CompletedAt = t
	}
}

// Last returns the most recent sample (zero Sample if none).
func (bi *BatchInfo) Last() Sample {
	if len(bi.Samples) == 0 {
		return Sample{}
	}
	return bi.Samples[len(bi.Samples)-1]
}

// CompletedFraction returns the latest completion ratio.
func (bi *BatchInfo) CompletedFraction() float64 {
	if bi.Size == 0 {
		return 0
	}
	return float64(bi.Last().Completed) / float64(bi.Size)
}

// AssignedFraction returns the latest ever-assigned ratio.
func (bi *BatchInfo) AssignedFraction() float64 {
	if bi.Size == 0 {
		return 0
	}
	return float64(bi.Last().Assigned) / float64(bi.Size)
}

// Done reports whether the batch completed.
func (bi *BatchInfo) Done() bool { return bi.CompletedAt >= 0 }

// TimeAtCompletion returns tc(x): the elapsed time at which completion
// first reached fraction x, at 1% resolution. ok is false if not reached.
func (bi *BatchInfo) TimeAtCompletion(x float64) (t float64, ok bool) {
	return bi.at(&bi.tcAt, x)
}

// TimeAtAssignment returns ta(x) for the ever-assigned series.
func (bi *BatchInfo) TimeAtAssignment(x float64) (t float64, ok bool) {
	return bi.at(&bi.taAt, x)
}

func (bi *BatchInfo) at(cache *[milestones + 1]float64, x float64) (float64, bool) {
	if x < 0 {
		x = 0
	}
	if x > 1 {
		x = 1
	}
	i := int(x * milestones)
	v := cache[i]
	return v, v >= 0
}

// ExecutionVariance returns var(x) = tc(x) − ta(x) (§3.5), or ok=false if
// fraction x has not completed yet.
func (bi *BatchInfo) ExecutionVariance(x float64) (float64, bool) {
	tc, ok1 := bi.TimeAtCompletion(x)
	ta, ok2 := bi.TimeAtAssignment(x)
	if !ok1 || !ok2 {
		return 0, false
	}
	v := tc - ta
	if v < 0 {
		v = 0
	}
	return v, true
}

// MaxExecutionVarianceUpTo returns max var(x) over milestones in (0, x].
func (bi *BatchInfo) MaxExecutionVarianceUpTo(x float64) float64 {
	max := 0.0
	limit := int(x * milestones)
	if limit > milestones {
		limit = milestones
	}
	for i := 1; i <= limit; i++ {
		if v, ok := bi.ExecutionVariance(float64(i) / milestones); ok && v > max {
			max = v
		}
	}
	return max
}

// Information is the SpeQuloS Information module: it archives the
// executions of every QoS-enabled BoT across BE-DCIs. It is safe for
// concurrent use (the service layer queries it from HTTP handlers).
type Information struct {
	mu      sync.RWMutex
	batches map[string]*BatchInfo
}

// NewInformation returns an empty archive.
func NewInformation() *Information {
	return &Information{batches: map[string]*BatchInfo{}}
}

// Track registers a batch; it errors if the ID is already tracked.
func (in *Information) Track(batchID, envKey string, size int, submittedAt float64) (*BatchInfo, error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if _, ok := in.batches[batchID]; ok {
		return nil, fmt.Errorf("information: batch %q already tracked", batchID)
	}
	bi := NewBatchInfo(batchID, envKey, size, submittedAt)
	in.batches[batchID] = bi
	return bi, nil
}

// Get returns the history of a batch, or nil.
func (in *Information) Get(batchID string) *BatchInfo {
	in.mu.RLock()
	defer in.mu.RUnlock()
	return in.batches[batchID]
}

// Count returns the number of tracked batches.
func (in *Information) Count() int {
	in.mu.RLock()
	defer in.mu.RUnlock()
	return len(in.batches)
}

// BatchIDs lists tracked batches, sorted.
func (in *Information) BatchIDs() []string {
	in.mu.RLock()
	defer in.mu.RUnlock()
	out := make([]string, 0, len(in.batches))
	for id := range in.batches {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}
