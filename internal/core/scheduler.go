package core

import (
	"fmt"

	"spequlos/internal/cloud"
	"spequlos/internal/middleware"
	"spequlos/internal/sim"
)

// Config parameterizes a SpeQuloS service instance.
type Config struct {
	// Strategy is the provisioning strategy combination.
	Strategy Strategy
	// MonitorPeriod is the Information/Scheduler loop period (the paper
	// monitors per minute; §3.2).
	MonitorPeriod float64
	// CloudServerFactory builds the dedicated cloud-hosted server used by
	// the CloudDuplication deployment. The cloud side runs trusted
	// resources, so a single-execution (XWHEP-style) server is appropriate
	// regardless of the primary middleware.
	CloudServerFactory func() middleware.Server
}

// DefaultConfig returns a config with the paper's defaults (strategy
// 9C-C-R, one-minute monitoring).
func DefaultConfig() Config {
	return Config{Strategy: DefaultStrategy(), MonitorPeriod: 60}
}

// CloudUsage summarizes the cloud resources consumed for one batch.
type CloudUsage struct {
	InstancesStarted int
	CPUSeconds       float64
	CreditsBilled    float64
	CreditsAllocated float64
	Exhausted        bool
	TriggeredAt      float64 // -1 if cloud support never started
}

// Service is a SpeQuloS deployment bound to one Desktop Grid server inside
// a simulation: the four modules wired together per Fig 3. (The deployable
// HTTP flavor lives in internal/service and reuses the same modules.)
type Service struct {
	eng     *sim.Engine
	cfg     Config
	Info    *Information
	Credits *CreditSystem
	Oracle  *Oracle
	Cloud   *cloud.SimCloud

	primary middleware.Server
	batches map[string]*qosBatch
	// order preserves registration order: map iteration order would make
	// multi-batch runs non-reproducible for a given seed.
	order  []string
	ticker *sim.Ticker
	// pollScratch backs the per-tick active-batch snapshot, reused so a
	// tick allocates nothing proportional to the batch count.
	pollScratch []string
}

type qosBatch struct {
	id        string
	user      string
	bi        *BatchInfo
	started   bool // cloud support triggered
	triggered float64
	exhausted bool
	finalized bool

	instances []*cloud.Instance
	lastBill  map[*cloud.Instance]float64
	cloudSrv  middleware.Server // CloudDuplication secondary
}

// NewService wires a SpeQuloS service to a DG server and a simulated cloud.
func NewService(eng *sim.Engine, primary middleware.Server, simCloud *cloud.SimCloud, cfg Config) *Service {
	if cfg.MonitorPeriod <= 0 {
		cfg.MonitorPeriod = 60
	}
	s := &Service{
		eng:     eng,
		cfg:     cfg,
		Info:    NewInformation(),
		Credits: NewCreditSystem(),
		Oracle:  NewOracle(cfg.Strategy),
		Cloud:   simCloud,
		primary: primary,
		batches: map[string]*qosBatch{},
	}
	primary.AddListener(serviceListener{s})
	return s
}

// serviceListener finalizes QoS support the instant a batch completes.
type serviceListener struct{ s *Service }

func (l serviceListener) TaskAssigned(string, int, float64)  {}
func (l serviceListener) TaskCompleted(string, int, float64) {}
func (l serviceListener) BatchCompleted(batchID string, at float64) {
	if qb, ok := l.s.batches[batchID]; ok {
		l.s.finalize(qb)
	}
}

// RegisterQoS starts QoS support for a batch (the registerQoS call of
// Fig 3). envKey identifies the execution environment for α calibration;
// size is the BoT size. The batch must be submitted to the DG server by the
// user separately, tagged with the same ID.
func (s *Service) RegisterQoS(user, batchID, envKey string, size int) error {
	if _, ok := s.batches[batchID]; ok {
		return fmt.Errorf("core: batch %q already registered", batchID)
	}
	bi, err := s.Info.Track(batchID, envKey, size, s.eng.Now())
	if err != nil {
		return err
	}
	s.batches[batchID] = &qosBatch{
		id: batchID, user: user, bi: bi, triggered: -1,
		lastBill: map[*cloud.Instance]float64{},
	}
	s.order = append(s.order, batchID)
	if s.ticker == nil {
		s.ticker = s.eng.NewTicker(s.cfg.MonitorPeriod, s.tick)
	}
	return nil
}

// OrderQoS provisions credits for a batch from the user's account.
func (s *Service) OrderQoS(user, batchID string, credits float64) error {
	if _, ok := s.batches[batchID]; !ok {
		return fmt.Errorf("core: batch %q not registered", batchID)
	}
	return s.Credits.OrderQoS(user, batchID, credits)
}

// Predict returns the Oracle's completion-time prediction for a batch
// (the getQoSInformation call of Fig 3).
func (s *Service) Predict(batchID string) (Prediction, error) {
	bi := s.Info.Get(batchID)
	if bi == nil {
		return Prediction{}, fmt.Errorf("core: batch %q not registered", batchID)
	}
	s.observe(s.batches[batchID])
	return s.Oracle.Predict(bi, s.eng.Now())
}

// Usage reports the cloud consumption of a batch so far.
func (s *Service) Usage(batchID string) (CloudUsage, error) {
	qb, ok := s.batches[batchID]
	if !ok {
		return CloudUsage{}, fmt.Errorf("core: batch %q not registered", batchID)
	}
	u := CloudUsage{
		InstancesStarted: len(qb.instances),
		Exhausted:        qb.exhausted,
		TriggeredAt:      qb.triggered,
	}
	for _, inst := range qb.instances {
		u.CPUSeconds += inst.CPUSeconds(s.eng.Now())
	}
	if o, ok := s.Credits.OrderOf(batchID); ok {
		u.CreditsBilled = o.Billed
		u.CreditsAllocated = o.Allocated
	}
	return u, nil
}

// tick is the combined Information/Scheduler monitor loop (Algorithms 1
// and 2 of §3.6). The progress of every active batch is pulled in ONE
// aggregated query per tick (middleware.BatchProgressor) instead of one
// poll per batch — with hundreds of concurrent QoS batches sharing a DG
// server, per-batch polling is the first scaling wall the monitor hits.
func (s *Service) tick(now float64) {
	s.pollScratch = s.pollScratch[:0]
	for _, id := range s.order {
		if !s.batches[id].finalized {
			s.pollScratch = append(s.pollScratch, id)
		}
	}
	if len(s.pollScratch) == 0 {
		if s.ticker != nil {
			s.ticker.Stop()
			s.ticker = nil
		}
		return
	}
	// One aggregated query when the server supports it; otherwise observe
	// each batch directly — no intermediate map, so the steady-state tick
	// of the in-process simulators stays allocation-free.
	bp, batched := s.primary.(middleware.BatchProgressor)
	var progress map[string]middleware.Progress
	if batched {
		progress = bp.ProgressBatch(s.pollScratch)
	}
	for _, id := range s.pollScratch {
		qb := s.batches[id]
		if qb.finalized {
			continue // finalized by an earlier batch's side effects this tick
		}
		if batched {
			s.observeWith(qb, progress[id])
		} else {
			s.observe(qb)
		}
		if qb.bi.Done() {
			s.finalize(qb)
			continue
		}
		s.manageCloudWorkers(qb) // Algorithm 2
		s.maybeStartCloud(qb)    // Algorithm 1
	}
}

// observe samples the primary server's view of the batch.
func (s *Service) observe(qb *qosBatch) {
	if qb == nil || qb.finalized {
		return
	}
	s.observeWith(qb, s.primary.Progress(qb.id))
}

// observeWith records an already-fetched progress view of the batch.
func (s *Service) observeWith(qb *qosBatch, p middleware.Progress) {
	if qb == nil || qb.finalized {
		return
	}
	qb.bi.AddSampleWorkers(s.eng.Now(), p.Completed, p.EverAssigned, p.Queued, p.Running, p.Workers)
}

// manageCloudWorkers bills running instances and stops the ones no longer
// useful or fundable (Algorithm 2).
func (s *Service) manageCloudWorkers(qb *qosBatch) {
	now := s.eng.Now()
	for _, inst := range qb.instances {
		if !inst.Running() {
			continue
		}
		sec := now - qb.lastBill[inst]
		qb.lastBill[inst] = now
		_, exhausted, err := s.Credits.Bill(qb.id, s.Credits.CreditsForCPUSeconds(sec))
		if err != nil || exhausted {
			qb.exhausted = true
			break
		}
	}
	if qb.exhausted {
		s.stopInstances(qb)
		return
	}
	// Greedy releases credits by stopping cloud workers that obtained no
	// work ("Cloud workers that do not have tasks assigned stop
	// immediately", §3.5).
	if _, greedy := s.cfg.Strategy.Sizing.(Greedy); greedy {
		for _, inst := range qb.instances {
			if inst.Running() && inst.Booted() && !inst.Busy() {
				s.billInstanceFinal(qb, inst)
				s.Cloud.Stop(inst)
			}
		}
	}
}

// maybeStartCloud triggers cloud support when the Oracle says so
// (Algorithm 1).
func (s *Service) maybeStartCloud(qb *qosBatch) {
	if qb.started || qb.exhausted {
		return
	}
	if !s.Credits.HasCredits(qb.id) {
		return
	}
	if !s.Oracle.ShouldUseCloud(qb.bi) {
		return
	}
	order, _ := s.Credits.OrderOf(qb.id)
	allowance := s.Credits.CPUHoursFor(order.Remaining())
	n := s.Oracle.CloudWorkersToStart(qb.bi, allowance, s.eng.Now())
	remaining := qb.bi.Size - qb.bi.Last().Completed
	if n > remaining {
		n = remaining
	}
	if n <= 0 {
		return
	}
	qb.started = true
	qb.triggered = s.eng.Now()

	target := s.primary
	flat := false
	switch s.cfg.Strategy.Deploy {
	case Flat:
		flat = true
	case Reschedule:
		s.primary.SetReschedule(true)
	case CloudDuplication:
		target = s.startCloudServer(qb)
	}
	for i := 0; i < n; i++ {
		inst := s.Cloud.Start(target, qb.id, flat)
		qb.instances = append(qb.instances, inst)
		qb.lastBill[inst] = s.eng.Now()
	}
}

// startCloudServer spins up the dedicated cloud-hosted server of the
// CloudDuplication strategy, mirrors the uncompleted tail onto it, and
// wires bidirectional result merging.
func (s *Service) startCloudServer(qb *qosBatch) middleware.Server {
	factory := s.cfg.CloudServerFactory
	if factory == nil {
		panic("core: CloudDuplication requires a CloudServerFactory")
	}
	sec := factory()
	tail := s.primary.Incomplete(qb.id)
	sec.Submit(middleware.Batch{ID: qb.id, Tasks: tail})
	// Results computed in the cloud complete the primary's tasks; results
	// arriving on the primary abort the cloud copies.
	sec.AddListener(mirror{from: sec, to: s.primary, batchID: qb.id})
	s.primary.AddListener(mirror{from: s.primary, to: sec, batchID: qb.id})
	qb.cloudSrv = sec
	return sec
}

// mirror merges completions between the primary and the cloud server.
type mirror struct {
	from, to middleware.Server
	batchID  string
}

func (m mirror) TaskAssigned(string, int, float64) {}
func (m mirror) TaskCompleted(batchID string, taskID int, _ float64) {
	if batchID == m.batchID {
		m.to.MarkCompleted(batchID, taskID)
	}
}
func (m mirror) BatchCompleted(string, float64) {}

// billInstanceFinal settles an instance's outstanding usage before a stop.
func (s *Service) billInstanceFinal(qb *qosBatch, inst *cloud.Instance) {
	if !inst.Running() {
		return
	}
	now := s.eng.Now()
	sec := now - qb.lastBill[inst]
	qb.lastBill[inst] = now
	if _, exhausted, err := s.Credits.Bill(qb.id, s.Credits.CreditsForCPUSeconds(sec)); err == nil && exhausted {
		qb.exhausted = true
	}
}

// stopInstances settles and terminates every running instance of a batch.
func (s *Service) stopInstances(qb *qosBatch) {
	for _, inst := range qb.instances {
		if inst.Running() {
			s.billInstanceFinal(qb, inst)
			s.Cloud.Stop(inst)
		}
	}
}

// finalize ends QoS support: settles billing, stops cloud workers, pays the
// order (refunding leftovers), archives the execution for α calibration.
func (s *Service) finalize(qb *qosBatch) {
	if qb.finalized {
		return
	}
	s.observe(qb)
	qb.finalized = true
	s.stopInstances(qb)
	if _, ok := s.Credits.OrderOf(qb.id); ok {
		s.Credits.Pay(qb.id)
	}
	if qb.bi.Done() {
		// Archive the (base, actual) pair measured at 50% completion, the
		// evaluation point of Table 4.
		if tc50, ok := qb.bi.TimeAtCompletion(0.5); ok && tc50 > 0 {
			s.Oracle.Calibration.Record(qb.bi.EnvKey, tc50/0.5, qb.bi.CompletedAt)
		}
	}
}
