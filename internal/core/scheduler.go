package core

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"

	"spequlos/internal/cloud"
	"spequlos/internal/middleware"
	"spequlos/internal/sim"
)

// Config parameterizes a SpeQuloS service instance.
type Config struct {
	// Strategy is the provisioning strategy combination.
	Strategy Strategy
	// MonitorPeriod is the Information/Scheduler loop period (the paper
	// monitors per minute; §3.2).
	MonitorPeriod float64
	// CloudServerFactory builds the dedicated cloud-hosted server used by
	// the CloudDuplication deployment. The cloud side runs trusted
	// resources, so a single-execution (XWHEP-style) server is appropriate
	// regardless of the primary middleware.
	CloudServerFactory func() middleware.Server
	// Shards sizes the worker pool the per-batch plan phase of the monitor
	// tick is dispatched across (0 = GOMAXPROCS). With one shard the plan
	// runs inline in registration order; results are merged in registration
	// order either way, so the shard count never changes decisions.
	Shards int
	// Tiers gates cloud-support admission when supply is contended. Nil
	// admits every triggered batch immediately — the untiered single-tenant
	// behavior.
	Tiers *TierPolicy
	// MirrorPost routes a primary-side CloudDuplication completion into the
	// kernel's barrier-exchange stream instead of touching the cloud server
	// directly. Required (and only used) by a sharded service running the
	// CloudDuplication deployment: the primary servers live on shard
	// engines, so their listeners fire during parallel windows and must not
	// mutate the control-hosted cloud server. The campaign layer wires it to
	// a per-batch sim.Outbox whose topic handler calls DeliverMirror at the
	// next barrier.
	MirrorPost func(batchID string, taskID int, at float64)
}

// DefaultConfig returns a config with the paper's defaults (strategy
// 9C-C-R, one-minute monitoring).
func DefaultConfig() Config {
	return Config{Strategy: DefaultStrategy(), MonitorPeriod: 60}
}

// CountDrivenTrigger marks Trigger implementations whose ShouldStart answer
// can only change when the batch's task counters (completed / ever-assigned)
// change. The monitor tick exploits the marker to skip batches with no task
// activity since the previous tick, making per-tick work proportional to
// infrastructure activity instead of registered batch count. A trigger that
// also reads infrastructure state (CapacityAware watches the attached worker
// count) must not implement it; every batch then stays on the every-tick
// path.
type CountDrivenTrigger interface {
	// CountDriven is a marker; it is never called.
	CountDriven()
}

// CloudUsage summarizes the cloud resources consumed for one batch.
type CloudUsage struct {
	InstancesStarted int
	CPUSeconds       float64
	CreditsBilled    float64
	CreditsAllocated float64
	Exhausted        bool
	TriggeredAt      float64 // -1 if cloud support never started
}

// Service is a SpeQuloS deployment bound to one Desktop Grid server inside
// a simulation: the four modules wired together per Fig 3. (The deployable
// HTTP flavor lives in internal/service and reuses the same modules.)
type Service struct {
	eng     *sim.Engine
	cfg     Config
	Info    *Information
	Credits *CreditSystem
	Oracle  *Oracle
	Cloud   *cloud.SimCloud

	primary middleware.Server
	// sharded marks a multi-server deployment (NewShardedService): every
	// batch binds its own DG server, typically living on a shard engine of a
	// sim.Sharded kernel while the Service runs on the control engine.
	sharded bool
	batches map[string]*qosBatch
	// order preserves registration order: map iteration order would make
	// multi-batch runs non-reproducible for a given seed.
	order  []string
	ticker *sim.Ticker
	// shards is the resolved plan-phase worker-pool size.
	shards int
	// countDriven records whether the trigger allows the due-list
	// optimization (see CountDrivenTrigger).
	countDriven bool
	// dueScratch backs the per-tick due-batch snapshot, reused so a tick
	// allocates nothing proportional to the batch count.
	dueScratch []string
	// cands collects tier-admission candidates per plan shard: each plan
	// worker appends only to its own list, and admit reduces the lists in
	// shard order on the (serial) control side. Only used with Tiers set.
	cands [][]TierCandidate
	// candScratch backs admit's per-tick concatenation of cands, reused.
	candScratch []TierCandidate
}

// batchPlan is the mutation set one batch's plan step computed and the
// serial apply step executes. Plan steps may run concurrently across
// shards, so they only touch per-batch state and the striped credit
// ledger; everything that mutates the engine, the middleware or the cloud
// is deferred here.
type batchPlan struct {
	finalize   bool
	stops      []*cloud.Instance
	start      int
	flat       bool
	reschedule bool
	cloudDup   bool
}

type qosBatch struct {
	id   string
	user string
	tier Tier
	// srv is the DG server hosting the batch: the service-wide primary in
	// the single-server deployment, the batch's own server in sharded mode.
	srv       middleware.Server
	bi        *BatchInfo
	started   bool // cloud support triggered
	triggered float64
	exhausted bool
	finalized bool

	// shardHash stably assigns the batch to a plan-phase shard.
	shardHash uint32
	// dirty means task events touched the batch since its last step; clean
	// batches with no live instances and nothing pending are skipped by
	// count-driven triggers.
	dirty bool
	// armed means the trigger fired but the start was deferred — the sizing
	// said zero workers (time-dependent under Conservative) or tier
	// admission denied a slot — so the batch must be re-examined every tick.
	armed bool
	// eligibleSince is the virtual time the trigger first fired; admission
	// scoring boosts longer waits. -1 until eligible.
	eligibleSince float64
	plan          batchPlan

	instances []*cloud.Instance
	lastBill  map[*cloud.Instance]float64
	cloudSrv  middleware.Server // CloudDuplication secondary
}

// hasLiveInstances reports whether any cloud instance is still running —
// such batches are billed every tick regardless of task activity.
func (qb *qosBatch) hasLiveInstances() bool {
	for _, inst := range qb.instances {
		if inst.Running() {
			return true
		}
	}
	return false
}

// NewService wires a SpeQuloS service to a DG server and a simulated cloud.
func NewService(eng *sim.Engine, primary middleware.Server, simCloud *cloud.SimCloud, cfg Config) *Service {
	if cfg.MonitorPeriod <= 0 {
		cfg.MonitorPeriod = 60
	}
	if cfg.Shards <= 0 {
		cfg.Shards = runtime.GOMAXPROCS(0)
	}
	_, countDriven := cfg.Strategy.Trigger.(CountDrivenTrigger)
	s := &Service{
		eng:         eng,
		cfg:         cfg,
		Info:        NewInformation(),
		Credits:     NewCreditSystem(),
		Oracle:      NewOracle(cfg.Strategy),
		Cloud:       simCloud,
		primary:     primary,
		batches:     map[string]*qosBatch{},
		shards:      cfg.Shards,
		countDriven: countDriven,
	}
	primary.AddListener(serviceListener{s})
	return s
}

// NewShardedService wires a SpeQuloS service that spans multiple DG
// servers: every batch registers with its own server (RegisterQoSShard /
// RegisterQoSShardTier), typically hosted on a shard engine of a
// sim.Sharded kernel while the service itself — monitor ticker, cloud,
// ledger — lives on the control engine. Cross-server effects happen inside
// the monitor tick, which the kernel runs serially at barriers, or arrive
// as barrier-exchange messages.
//
// Every deployment is supported. CloudDuplication's cloud-to-primary
// mirror runs directly (the cloud server lives on the control engine and
// its completions fire at barriers, when shard clocks are parked); the
// primary-to-cloud direction fires on shard goroutines during parallel
// windows, so it must ride the barrier exchange — Config.MirrorPost is
// required and DeliverMirror replays the messages.
func NewShardedService(eng *sim.Engine, simCloud *cloud.SimCloud, cfg Config) *Service {
	if cfg.MonitorPeriod <= 0 {
		cfg.MonitorPeriod = 60
	}
	if cfg.Shards <= 0 {
		cfg.Shards = runtime.GOMAXPROCS(0)
	}
	_, countDriven := cfg.Strategy.Trigger.(CountDrivenTrigger)
	return &Service{
		eng:         eng,
		cfg:         cfg,
		Info:        NewInformation(),
		Credits:     NewCreditSystem(),
		Oracle:      NewOracle(cfg.Strategy),
		Cloud:       simCloud,
		sharded:     true,
		batches:     map[string]*qosBatch{},
		shards:      cfg.Shards,
		countDriven: countDriven,
	}
}

// serviceListener keeps the due list current and finalizes QoS support the
// instant a batch completes.
type serviceListener struct{ s *Service }

func (l serviceListener) TaskAssigned(batchID string, _ int, _ float64) {
	l.s.markDirty(batchID)
}
func (l serviceListener) TaskCompleted(batchID string, _ int, _ float64) {
	l.s.markDirty(batchID)
}
func (l serviceListener) BatchCompleted(batchID string, at float64) {
	if l.s.sharded {
		// Sharded mode: the completion fires on a shard engine during a
		// parallel window. Finalization touches the shared calibration
		// archive and the control-engine cloud, so it is deferred — the mark
		// routes the batch into the next barrier tick, whose plan step sees
		// Done() and finalizes serially.
		l.s.markDirty(batchID)
		return
	}
	if qb, ok := l.s.batches[batchID]; ok {
		l.s.finalize(qb)
	}
}

// markDirty queues a batch for the next monitor tick.
func (s *Service) markDirty(batchID string) {
	if qb, ok := s.batches[batchID]; ok {
		qb.dirty = true
	}
}

// RegisterQoS starts QoS support for a batch (the registerQoS call of
// Fig 3). envKey identifies the execution environment for α calibration;
// size is the BoT size. The batch must be submitted to the DG server by the
// user separately, tagged with the same ID.
func (s *Service) RegisterQoS(user, batchID, envKey string, size int) error {
	return s.RegisterQoSTier(user, batchID, envKey, size, "")
}

// RegisterQoSTier registers a batch under a QoS service class. The tier
// only matters when Config.Tiers is set; it then decides admission priority
// and the share of contended cloud supply the batch competes for.
func (s *Service) RegisterQoSTier(user, batchID, envKey string, size int, tier Tier) error {
	if s.sharded {
		return fmt.Errorf("core: sharded service requires RegisterQoSShard (batch %q)", batchID)
	}
	return s.register(user, batchID, envKey, size, tier, s.primary)
}

// RegisterQoSShard registers a batch of a sharded service together with the
// DG server hosting it. The server must host only this service's batches
// and must not be shared across shard engines; the service attaches its
// activity listener to it. Only valid on a NewShardedService instance.
func (s *Service) RegisterQoSShard(user, batchID, envKey string, size int, srv middleware.Server) error {
	return s.RegisterQoSShardTier(user, batchID, envKey, size, "", srv)
}

// RegisterQoSShardTier registers a batch of a sharded service under a QoS
// service class. It is RegisterQoSShard plus the tier argument of
// RegisterQoSTier: the tier only matters when Config.Tiers is set, and the
// sharded tick arbitrates admission as a control-engine reduction over the
// per-shard candidate lists the plan phase produced.
func (s *Service) RegisterQoSShardTier(user, batchID, envKey string, size int, tier Tier, srv middleware.Server) error {
	if !s.sharded {
		return fmt.Errorf("core: RegisterQoSShard requires NewShardedService (batch %q)", batchID)
	}
	if err := s.register(user, batchID, envKey, size, tier, srv); err != nil {
		return err
	}
	srv.AddListener(serviceListener{s})
	return nil
}

func (s *Service) register(user, batchID, envKey string, size int, tier Tier, srv middleware.Server) error {
	if _, ok := s.batches[batchID]; ok {
		return fmt.Errorf("core: batch %q already registered", batchID)
	}
	bi, err := s.Info.Track(batchID, envKey, size, s.eng.Now())
	if err != nil {
		return err
	}
	h := fnv.New32a()
	h.Write([]byte(batchID))
	s.batches[batchID] = &qosBatch{
		id: batchID, user: user, tier: tier, srv: srv, bi: bi, triggered: -1,
		shardHash: h.Sum32(), dirty: true, eligibleSince: -1,
		lastBill: map[*cloud.Instance]float64{},
	}
	s.order = append(s.order, batchID)
	if s.ticker == nil {
		s.ticker = s.eng.NewTicker(s.cfg.MonitorPeriod, s.tick)
	}
	return nil
}

// OrderQoS provisions credits for a batch from the user's account.
func (s *Service) OrderQoS(user, batchID string, credits float64) error {
	if _, ok := s.batches[batchID]; !ok {
		return fmt.Errorf("core: batch %q not registered", batchID)
	}
	if err := s.Credits.OrderQoS(user, batchID, credits); err != nil {
		return err
	}
	// Fresh credits can turn an idle batch startable: re-examine it.
	s.markDirty(batchID)
	return nil
}

// Predict returns the Oracle's completion-time prediction for a batch
// (the getQoSInformation call of Fig 3).
func (s *Service) Predict(batchID string) (Prediction, error) {
	bi := s.Info.Get(batchID)
	if bi == nil {
		return Prediction{}, fmt.Errorf("core: batch %q not registered", batchID)
	}
	s.observe(s.batches[batchID])
	return s.Oracle.Predict(bi, s.eng.Now())
}

// Usage reports the cloud consumption of a batch so far.
func (s *Service) Usage(batchID string) (CloudUsage, error) {
	qb, ok := s.batches[batchID]
	if !ok {
		return CloudUsage{}, fmt.Errorf("core: batch %q not registered", batchID)
	}
	u := CloudUsage{
		InstancesStarted: len(qb.instances),
		Exhausted:        qb.exhausted,
		TriggeredAt:      qb.triggered,
	}
	for _, inst := range qb.instances {
		u.CPUSeconds += inst.CPUSeconds(s.eng.Now())
	}
	if o, ok := s.Credits.OrderOf(batchID); ok {
		u.CreditsBilled = o.Billed
		u.CreditsAllocated = o.Allocated
	}
	return u, nil
}

// tick is the combined Information/Scheduler monitor loop (Algorithms 1
// and 2 of §3.6), split into three phases:
//
//  1. Due selection — with a count-driven trigger, only batches with task
//     activity since their last step, live instances to bill, or a deferred
//     start are stepped; idle registered batches cost nothing beyond the
//     scan. The due batches' progress is pulled in ONE aggregated query
//     (middleware.BatchProgressor) when the server supports it.
//  2. Plan — per-batch decision steps (observe, Algorithm 2 billing,
//     Algorithm 1 trigger/sizing) dispatched across the shard pool. Plan
//     steps touch only per-batch state and the striped credit ledger.
//  3. Apply — tier admission, then every deferred mutation (cloud stops and
//     starts, deployment switches, finalization) executed serially in
//     registration order, so decisions and RNG draws are byte-identical to
//     a serial tick regardless of the shard count.
func (s *Service) tick(now float64) {
	s.dueScratch = s.dueScratch[:0]
	active := 0
	for _, id := range s.order {
		qb := s.batches[id]
		if qb.finalized {
			continue
		}
		active++
		if s.countDriven && !qb.dirty && !qb.armed && !qb.hasLiveInstances() {
			continue
		}
		s.dueScratch = append(s.dueScratch, id)
	}
	if active == 0 {
		if s.ticker != nil {
			s.ticker.Stop()
			s.ticker = nil
		}
		return
	}
	if len(s.dueScratch) == 0 {
		return
	}
	if s.cfg.Tiers != nil {
		if len(s.cands) != s.shards {
			s.cands = make([][]TierCandidate, s.shards)
		}
		for i := range s.cands {
			s.cands[i] = s.cands[i][:0]
		}
	}

	// One aggregated query when the server supports it; otherwise the plan
	// steps observe their batch directly — no intermediate map, so the
	// steady-state tick of the in-process simulators stays allocation-free.
	bp, batched := s.primary.(middleware.BatchProgressor)
	var progress map[string]middleware.Progress
	if batched {
		progress = bp.ProgressBatch(s.dueScratch)
	}

	// Plan phase.
	if s.shards <= 1 || len(s.dueScratch) == 1 {
		for _, id := range s.dueScratch {
			s.planBatch(s.batches[id], progress, batched)
		}
	} else {
		var wg sync.WaitGroup
		for w := 0; w < s.shards; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for _, id := range s.dueScratch {
					qb := s.batches[id]
					if int(qb.shardHash)%s.shards != w {
						continue
					}
					s.planBatch(qb, progress, batched)
				}
			}(w)
		}
		wg.Wait()
	}

	s.admit(now)

	// Apply phase, in registration order.
	for _, id := range s.dueScratch {
		s.applyBatch(s.batches[id])
	}
}

// planBatch computes one batch's monitor step without mutating anything
// shared: it samples progress, bills running instances against the striped
// ledger, and records the stops and starts for the apply phase. Safe to run
// concurrently across batches.
func (s *Service) planBatch(qb *qosBatch, progress map[string]middleware.Progress, batched bool) {
	qb.plan = batchPlan{stops: qb.plan.stops[:0]}
	qb.dirty = false
	if batched {
		s.observeWith(qb, progress[qb.id])
	} else {
		s.observeWith(qb, qb.srv.Progress(qb.id))
	}
	if qb.bi.Done() {
		qb.plan.finalize = true
		return
	}
	s.planManage(qb) // Algorithm 2
	s.planStart(qb)  // Algorithm 1
	if s.cfg.Tiers != nil && qb.plan.start > 0 {
		// Per-shard candidate list: this worker is the only writer of its
		// slot, so the parallel plan phase stays race-free. The inline
		// (single-shard) path computes the same slot, keeping the reduction
		// input identical at any shard count.
		w := int(qb.shardHash) % s.shards
		s.cands[w] = append(s.cands[w], TierCandidate{BatchID: qb.id, Tier: qb.tier, Since: qb.eligibleSince})
	}
}

// observe samples the primary server's view of the batch.
func (s *Service) observe(qb *qosBatch) {
	if qb == nil || qb.finalized {
		return
	}
	s.observeWith(qb, qb.srv.Progress(qb.id))
}

// observeWith records an already-fetched progress view of the batch.
func (s *Service) observeWith(qb *qosBatch, p middleware.Progress) {
	if qb == nil || qb.finalized {
		return
	}
	qb.bi.AddSampleWorkers(s.eng.Now(), p.Completed, p.EverAssigned, p.Queued, p.Running, p.Workers)
}

// planManage bills running instances and marks the ones no longer useful or
// fundable for termination (Algorithm 2). Ledger mutations happen here —
// the striped CreditSystem makes them safe across shards — while the actual
// cloud stops run in the apply phase.
func (s *Service) planManage(qb *qosBatch) {
	now := s.eng.Now()
	for _, inst := range qb.instances {
		if !inst.Running() {
			continue
		}
		sec := now - qb.lastBill[inst]
		qb.lastBill[inst] = now
		_, exhausted, err := s.Credits.Bill(qb.id, s.Credits.CreditsForCPUSeconds(sec))
		if err != nil || exhausted {
			qb.exhausted = true
			break
		}
	}
	if qb.exhausted {
		for _, inst := range qb.instances {
			if inst.Running() {
				s.billInstanceFinal(qb, inst)
				qb.plan.stops = append(qb.plan.stops, inst)
			}
		}
		return
	}
	// Greedy releases credits by stopping cloud workers that obtained no
	// work ("Cloud workers that do not have tasks assigned stop
	// immediately", §3.5).
	if _, greedy := s.cfg.Strategy.Sizing.(Greedy); greedy {
		for _, inst := range qb.instances {
			if inst.Running() && inst.Booted() && !inst.Busy() {
				s.billInstanceFinal(qb, inst)
				qb.plan.stops = append(qb.plan.stops, inst)
			}
		}
	}
}

// planStart decides whether cloud support should begin (Algorithm 1) and
// how many workers to request; the apply phase executes the starts once
// tier admission confirms the slot.
func (s *Service) planStart(qb *qosBatch) {
	qb.armed = false
	if qb.started || qb.exhausted {
		return
	}
	if !s.Credits.HasCredits(qb.id) {
		return
	}
	if !s.Oracle.ShouldUseCloud(qb.bi) {
		return
	}
	if qb.eligibleSince < 0 {
		qb.eligibleSince = s.eng.Now()
	}
	order, _ := s.Credits.OrderOf(qb.id)
	allowance := s.Credits.CPUHoursFor(order.Remaining())
	n := s.Oracle.CloudWorkersToStart(qb.bi, allowance, s.eng.Now())
	remaining := qb.bi.Size - qb.bi.Last().Completed
	if n > remaining {
		n = remaining
	}
	if n <= 0 {
		// Sizing said zero right now; Conservative sizing is time-dependent,
		// so stay on the every-tick path and retry.
		qb.armed = true
		return
	}
	qb.plan.start = n
	switch s.cfg.Strategy.Deploy {
	case Flat:
		qb.plan.flat = true
	case Reschedule:
		qb.plan.reschedule = true
	case CloudDuplication:
		qb.plan.cloudDup = true
	}
}

// admit runs tier admission over this tick's would-start batches: denied
// batches stay armed and retry next tick with a higher wait-boosted score.
// Without a tier policy every planned start proceeds.
//
// Admission is a control-engine reduction over the per-shard candidate
// lists the plan phase filled: the lists are concatenated in shard order,
// and TierPolicy.Admit sorts candidates internally by (score, BatchID), so
// the decisions are independent of the concatenation order — and therefore
// of both the plan-pool size and the kernel's shard count.
func (s *Service) admit(now float64) {
	if s.cfg.Tiers == nil {
		return
	}
	s.candScratch = s.candScratch[:0]
	for _, cs := range s.cands {
		s.candScratch = append(s.candScratch, cs...)
	}
	cands := s.candScratch
	if len(cands) == 0 {
		return
	}
	activeByTier := map[Tier]int{}
	for _, id := range s.order {
		qb := s.batches[id]
		if !qb.finalized && qb.hasLiveInstances() {
			activeByTier[qb.tier.OrFree()]++
		}
	}
	admitted := s.cfg.Tiers.Admit(now, activeByTier, cands)
	for _, c := range cands {
		if !admitted[c.BatchID] {
			qb := s.batches[c.BatchID]
			qb.plan.start = 0
			qb.armed = true
		}
	}
}

// applyBatch executes one batch's planned mutations: finalization, cloud
// stops, deployment switches and cloud starts. Runs serially in
// registration order so engine, middleware and RNG interactions are
// deterministic.
func (s *Service) applyBatch(qb *qosBatch) {
	if qb.finalized {
		return // finalized by an earlier batch's side effects this tick
	}
	if qb.plan.finalize {
		s.finalize(qb)
		return
	}
	for _, inst := range qb.plan.stops {
		s.Cloud.Stop(inst)
	}
	if qb.plan.start <= 0 {
		return
	}
	qb.started = true
	qb.triggered = s.eng.Now()

	target := qb.srv
	if qb.plan.reschedule {
		qb.srv.SetReschedule(true)
	}
	if qb.plan.cloudDup {
		target = s.startCloudServer(qb)
	}
	for i := 0; i < qb.plan.start; i++ {
		inst := s.Cloud.Start(target, qb.id, qb.plan.flat)
		qb.instances = append(qb.instances, inst)
		qb.lastBill[inst] = s.eng.Now()
	}
}

// startCloudServer spins up the dedicated cloud-hosted server of the
// CloudDuplication strategy, mirrors the uncompleted tail onto it, and
// wires bidirectional result merging.
func (s *Service) startCloudServer(qb *qosBatch) middleware.Server {
	factory := s.cfg.CloudServerFactory
	if factory == nil {
		panic("core: CloudDuplication requires a CloudServerFactory")
	}
	sec := factory()
	tail := qb.srv.Incomplete(qb.id)
	sec.Submit(middleware.Batch{ID: qb.id, Tasks: tail})
	// Results computed in the cloud complete the primary's tasks; results
	// arriving on the primary abort the cloud copies.
	sec.AddListener(mirror{from: sec, to: qb.srv, batchID: qb.id})
	if s.sharded {
		// The primary lives on a shard engine: its completions fire during
		// parallel windows, so the primary→cloud direction must ride the
		// barrier exchange instead of touching the control-hosted cloud
		// server directly. (Cloud→primary above is safe as-is: it fires at
		// barriers, with every shard clock parked.)
		if s.cfg.MirrorPost == nil {
			panic("core: sharded CloudDuplication requires Config.MirrorPost")
		}
		qb.srv.AddListener(postMirror{batchID: qb.id, post: s.cfg.MirrorPost})
	} else {
		qb.srv.AddListener(mirror{from: qb.srv, to: sec, batchID: qb.id})
	}
	qb.cloudSrv = sec
	return sec
}

// DeliverMirror completes a task on a batch's CloudDuplication cloud
// server: the barrier-exchange replay of a primary-side completion posted
// through Config.MirrorPost. Safe to call for completions that were echoed
// back (MarkCompleted on a completed task is a no-op) and after the cloud
// server is gone (the message is then dropped).
func (s *Service) DeliverMirror(batchID string, taskID int) {
	if qb, ok := s.batches[batchID]; ok && qb.cloudSrv != nil {
		qb.cloudSrv.MarkCompleted(batchID, taskID)
	}
}

// mirror merges completions between the primary and the cloud server.
type mirror struct {
	from, to middleware.Server
	batchID  string
}

func (m mirror) TaskAssigned(string, int, float64) {}
func (m mirror) TaskCompleted(batchID string, taskID int, _ float64) {
	if batchID == m.batchID {
		m.to.MarkCompleted(batchID, taskID)
	}
}
func (m mirror) BatchCompleted(string, float64) {}

// postMirror is the sharded flavor of the primary→cloud mirror direction:
// instead of completing the cloud copy inline (a cross-engine mutation
// from a shard goroutine), it posts the completion through
// Config.MirrorPost; the kernel replays it at the next barrier via
// Service.DeliverMirror.
type postMirror struct {
	batchID string
	post    func(batchID string, taskID int, at float64)
}

// TaskAssigned implements middleware.Listener; assignments are not mirrored.
func (m postMirror) TaskAssigned(string, int, float64) {}

// TaskCompleted posts the completion into the barrier-exchange stream.
func (m postMirror) TaskCompleted(batchID string, taskID int, at float64) {
	if batchID == m.batchID {
		m.post(batchID, taskID, at)
	}
}

// BatchCompleted implements middleware.Listener; completion of the batch
// itself is observed by the monitor tick, not mirrored.
func (m postMirror) BatchCompleted(string, float64) {}

// billInstanceFinal settles an instance's outstanding usage before a stop.
func (s *Service) billInstanceFinal(qb *qosBatch, inst *cloud.Instance) {
	if !inst.Running() {
		return
	}
	now := s.eng.Now()
	sec := now - qb.lastBill[inst]
	qb.lastBill[inst] = now
	if _, exhausted, err := s.Credits.Bill(qb.id, s.Credits.CreditsForCPUSeconds(sec)); err == nil && exhausted {
		qb.exhausted = true
	}
}

// stopInstances settles and terminates every running instance of a batch.
func (s *Service) stopInstances(qb *qosBatch) {
	for _, inst := range qb.instances {
		if inst.Running() {
			s.billInstanceFinal(qb, inst)
			s.Cloud.Stop(inst)
		}
	}
}

// finalize ends QoS support: settles billing, stops cloud workers, pays the
// order (refunding leftovers), archives the execution for α calibration.
func (s *Service) finalize(qb *qosBatch) {
	if qb.finalized {
		return
	}
	s.observe(qb)
	qb.finalized = true
	s.stopInstances(qb)
	if _, ok := s.Credits.OrderOf(qb.id); ok {
		s.Credits.Pay(qb.id)
	}
	if qb.bi.Done() {
		// Archive the (base, actual) pair measured at 50% completion, the
		// evaluation point of Table 4.
		if tc50, ok := qb.bi.TimeAtCompletion(0.5); ok && tc50 > 0 {
			s.Oracle.Calibration.Record(qb.bi.EnvKey, tc50/0.5, qb.bi.CompletedAt)
		}
	}
}
