package core

import (
	"fmt"
	"math"
	"sync"

	"spequlos/internal/stats"
)

// Trigger decides when cloud workers should be started for a BoT (§3.5).
type Trigger interface {
	// Code is the short name used in strategy-combination labels
	// ("9C", "9A", "D").
	Code() string
	// ShouldStart reports whether cloud support should begin now.
	ShouldStart(bi *BatchInfo) bool
}

// CompletionThreshold (9C) starts cloud workers once the completed-task
// fraction reaches Frac (0.9 in the paper).
type CompletionThreshold struct{ Frac float64 }

// Code implements Trigger.
func (t CompletionThreshold) Code() string {
	return fmt.Sprintf("%.0fC", t.Frac*10)
}

// ShouldStart implements Trigger.
func (t CompletionThreshold) ShouldStart(bi *BatchInfo) bool {
	return bi.CompletedFraction() >= t.Frac
}

// CountDriven implements CountDrivenTrigger: the answer only changes with
// the completed-task count.
func (CompletionThreshold) CountDriven() {}

// AssignmentThreshold (9A) starts cloud workers once the ever-assigned
// fraction reaches Frac.
type AssignmentThreshold struct{ Frac float64 }

// Code implements Trigger.
func (t AssignmentThreshold) Code() string {
	return fmt.Sprintf("%.0fA", t.Frac*10)
}

// ShouldStart implements Trigger.
func (t AssignmentThreshold) ShouldStart(bi *BatchInfo) bool {
	return bi.AssignedFraction() >= t.Frac
}

// CountDriven implements CountDrivenTrigger: the answer only changes with
// the ever-assigned count.
func (AssignmentThreshold) CountDriven() {}

// ExecutionVariance (D) starts cloud workers when var(c) = tc(c) − ta(c)
// doubles versus the maximum observed during the first half of the
// execution — a dynamic tail detector (§3.5).
type ExecutionVariance struct{}

// Code implements Trigger.
func (ExecutionVariance) Code() string { return "D" }

// ShouldStart implements Trigger.
func (ExecutionVariance) ShouldStart(bi *BatchInfo) bool {
	c := bi.CompletedFraction()
	if c < 0.5 {
		return false // the reference maximum spans the first half
	}
	cur, ok := bi.ExecutionVariance(c)
	if !ok {
		return false
	}
	ref := bi.MaxExecutionVarianceUpTo(0.5)
	if ref <= 0 {
		// Degenerate reference (instant assignments): fall back to an
		// absolute guard so the trigger still fires in the tail.
		return cur > 0
	}
	return cur >= 2*ref
}

// CountDriven implements CountDrivenTrigger: var(c) is built from the
// tc/ta milestone caches, which only move when task counters move.
func (ExecutionVariance) CountDriven() {}

// Sizing decides how many cloud workers to start, given the credit
// allowance expressed in CPU·hours (§3.5).
type Sizing interface {
	// Code is the short name ("G", "C").
	Code() string
	// Workers returns the number of cloud workers to start now.
	Workers(bi *BatchInfo, creditCPUHours float64, now float64) int
}

// Greedy (G) starts the whole allowance at once: S workers for S CPU·hours
// of credit; idle ones are stopped by the Scheduler to release credits.
type Greedy struct{}

// Code implements Sizing.
func (Greedy) Code() string { return "G" }

// Workers implements Sizing.
func (Greedy) Workers(_ *BatchInfo, creditCPUHours float64, _ float64) int {
	if creditCPUHours <= 0 {
		return 0
	}
	return maxInt(1, int(creditCPUHours))
}

// Conservative (C) estimates the remaining execution time tr from the
// current completion rate and starts min(S/tr, S) workers, so the workers
// can be funded for the whole estimated remainder. (The paper prints
// max(S/tr, S); the stated goal — "ensuring that there will be enough
// credits for them to run during the estimated time" — requires min, see
// DESIGN.md.)
type Conservative struct{}

// Code implements Sizing.
func (Conservative) Code() string { return "C" }

// Workers implements Sizing.
func (Conservative) Workers(bi *BatchInfo, creditCPUHours float64, now float64) int {
	if creditCPUHours <= 0 {
		return 0
	}
	xe := bi.CompletedFraction()
	if xe <= 0 {
		return maxInt(1, int(creditCPUHours))
	}
	elapsed := now - bi.SubmittedAt
	tr := elapsed/xe - elapsed // estimated remaining seconds at constant rate
	trHours := tr / 3600
	n := creditCPUHours
	if trHours > 0 {
		n = math.Min(creditCPUHours/trHours, creditCPUHours)
	}
	return maxInt(1, int(n))
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Deployment is how cloud workers are attached to the infrastructure
// (§3.5): Flat (unmodified server, cloud workers compete), Reschedule
// (patched server serves cloud workers pending work, then duplicates), or
// CloudDuplication (a dedicated cloud-hosted server executes a copy of the
// tail; results are merged).
type Deployment int

// Deployment strategies.
const (
	Flat Deployment = iota
	Reschedule
	CloudDuplication
)

// Code returns the short name ("F", "R", "D").
func (d Deployment) Code() string {
	switch d {
	case Flat:
		return "F"
	case Reschedule:
		return "R"
	case CloudDuplication:
		return "D"
	}
	return "?"
}

// String returns the deployment's full name (its Code is the label letter).
func (d Deployment) String() string {
	switch d {
	case Flat:
		return "Flat"
	case Reschedule:
		return "Reschedule"
	case CloudDuplication:
		return "CloudDuplication"
	}
	return "Unknown"
}

// Strategy is a full provisioning strategy combination, named like the
// paper: e.g. 9C-C-R = Completion threshold, Conservative, Reschedule.
type Strategy struct {
	Trigger Trigger
	Sizing  Sizing
	Deploy  Deployment
}

// Label returns the paper-style combination label.
func (s Strategy) Label() string {
	return s.Trigger.Code() + "-" + s.Sizing.Code() + "-" + s.Deploy.Code()
}

// DefaultStrategy is 9C-C-R, the combination the paper selects as "a good
// compromise between Tail Removal Efficiency performance, credits
// consumption and ease of implementation" (§4.3).
func DefaultStrategy() Strategy {
	return Strategy{Trigger: CompletionThreshold{0.9}, Sizing: Conservative{}, Deploy: Reschedule}
}

// AllStrategies enumerates the 18 combinations evaluated in Fig 4 and 5.
func AllStrategies() []Strategy {
	triggers := []Trigger{CompletionThreshold{0.9}, AssignmentThreshold{0.9}, ExecutionVariance{}}
	sizings := []Sizing{Greedy{}, Conservative{}}
	deploys := []Deployment{Flat, Reschedule, CloudDuplication}
	var out []Strategy
	for _, d := range deploys {
		for _, tr := range triggers {
			for _, sz := range sizings {
				out = append(out, Strategy{Trigger: tr, Sizing: sz, Deploy: d})
			}
		}
	}
	return out
}

// StrategyByLabel parses a paper-style label like "9A-G-D".
func StrategyByLabel(label string) (Strategy, error) {
	for _, s := range AllStrategies() {
		if s.Label() == label {
			return s, nil
		}
	}
	return Strategy{}, fmt.Errorf("core: unknown strategy %q", label)
}

// Prediction is the Oracle's answer to getQoSInformation (§3.4).
type Prediction struct {
	// PredictedTime is the predicted total completion time of the BoT,
	// in seconds from submission: tp = α·tc(r)/r.
	PredictedTime float64 `json:"predicted_time"`
	// Uncertainty is the historical success rate (within ±20%) of
	// predictions in the same environment, in [0,1].
	Uncertainty float64 `json:"uncertainty"`
	// Alpha is the calibration factor used.
	Alpha float64 `json:"alpha"`
	// CompletedFraction is the ratio the prediction was computed at.
	CompletedFraction float64 `json:"completed_fraction"`
}

// PredictionTolerance is the ±20% success band of §3.4.
const PredictionTolerance = 0.20

// Calibration stores per-environment α factors fitted from the history of
// BoT executions (§3.4: "the value of α is adjusted to minimize the average
// difference between the predicted time and the completion times actually
// observed"). Minimizing the mean absolute error of α·base against actual
// is a weighted-median fit.
type Calibration struct {
	mu    sync.RWMutex
	byEnv map[string]*envCal
}

type envCal struct {
	bases   []float64 // tc(r)/r measured at prediction time
	actuals []float64 // observed completion times
	alpha   float64
}

// NewCalibration returns an empty calibration store.
func NewCalibration() *Calibration { return &Calibration{byEnv: map[string]*envCal{}} }

// Record archives one finished execution's (base, actual) pair and refits α
// for the environment.
func (c *Calibration) Record(envKey string, base, actual float64) {
	if base <= 0 || actual <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.byEnv[envKey]
	if !ok {
		e = &envCal{alpha: 1}
		c.byEnv[envKey] = e
	}
	e.bases = append(e.bases, base)
	e.actuals = append(e.actuals, actual)
	ratios := make([]float64, len(e.bases))
	for i := range e.bases {
		ratios[i] = e.actuals[i] / e.bases[i]
	}
	e.alpha = stats.WeightedMedian(ratios, e.bases)
}

// Alpha returns the fitted α for the environment (1 with no history).
func (c *Calibration) Alpha(envKey string) float64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if e, ok := c.byEnv[envKey]; ok && !math.IsNaN(e.alpha) {
		return e.alpha
	}
	return 1
}

// SuccessRate returns the fraction of archived executions whose prediction
// α·base fell within ±tolerance of the actual completion time — the
// statistical uncertainty reported to users.
func (c *Calibration) SuccessRate(envKey string) float64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	e, ok := c.byEnv[envKey]
	if !ok || len(e.bases) == 0 {
		return 0
	}
	hits := 0
	for i := range e.bases {
		tp := e.alpha * e.bases[i]
		if math.Abs(e.actuals[i]-tp) <= PredictionTolerance*tp {
			hits++
		}
	}
	return float64(hits) / float64(len(e.bases))
}

// Count returns the number of archived executions for the environment.
func (c *Calibration) Count(envKey string) int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if e, ok := c.byEnv[envKey]; ok {
		return len(e.bases)
	}
	return 0
}

// Oracle is the SpeQuloS Oracle module: completion-time prediction plus the
// provisioning strategies (§3.4, §3.5).
type Oracle struct {
	Strategy    Strategy
	Calibration *Calibration
}

// NewOracle builds an Oracle with the given strategy and a fresh
// calibration store.
func NewOracle(s Strategy) *Oracle {
	return &Oracle{Strategy: s, Calibration: NewCalibration()}
}

// Predict computes the completion-time prediction for a BoT at its current
// progress (§3.4): tp = α·tc(r)/r.
func (o *Oracle) Predict(bi *BatchInfo, now float64) (Prediction, error) {
	r := bi.CompletedFraction()
	if r <= 0 {
		return Prediction{}, fmt.Errorf("oracle: batch %q has no completed tasks yet", bi.BatchID)
	}
	elapsed := now - bi.SubmittedAt
	alpha := o.Calibration.Alpha(bi.EnvKey)
	return Prediction{
		PredictedTime:     alpha * elapsed / r,
		Uncertainty:       o.Calibration.SuccessRate(bi.EnvKey),
		Alpha:             alpha,
		CompletedFraction: r,
	}, nil
}

// ShouldUseCloud implements Algorithm 1's Oracle.shouldUseCloud.
func (o *Oracle) ShouldUseCloud(bi *BatchInfo) bool {
	if bi == nil || bi.Done() {
		return false
	}
	return o.Strategy.Trigger.ShouldStart(bi)
}

// CloudWorkersToStart implements Algorithm 1's Oracle.cloudWorkersToStart:
// the number of workers the sizing strategy funds with the remaining
// credits.
func (o *Oracle) CloudWorkersToStart(bi *BatchInfo, creditCPUHours float64, now float64) int {
	return o.Strategy.Sizing.Workers(bi, creditCPUHours, now)
}
