package core

import (
	"math"
	"testing"
)

func mkInfo(size int) *BatchInfo { return NewBatchInfo("b", "env", size, 0) }

func TestCompletionThreshold(t *testing.T) {
	tr := CompletionThreshold{0.9}
	if tr.Code() != "9C" {
		t.Fatalf("code = %s", tr.Code())
	}
	bi := mkInfo(100)
	bi.AddSample(60, 89, 100, 0, 0)
	if tr.ShouldStart(bi) {
		t.Fatal("fired at 89%")
	}
	bi.AddSample(120, 90, 100, 0, 0)
	if !tr.ShouldStart(bi) {
		t.Fatal("did not fire at 90%")
	}
}

func TestAssignmentThreshold(t *testing.T) {
	tr := AssignmentThreshold{0.9}
	if tr.Code() != "9A" {
		t.Fatalf("code = %s", tr.Code())
	}
	bi := mkInfo(100)
	bi.AddSample(60, 10, 95, 0, 0)
	if !tr.ShouldStart(bi) {
		t.Fatal("did not fire at 95% assigned")
	}
	bi2 := mkInfo(100)
	bi2.AddSample(60, 10, 50, 0, 0)
	if tr.ShouldStart(bi2) {
		t.Fatal("fired at 50% assigned")
	}
}

func TestExecutionVarianceTrigger(t *testing.T) {
	tr := ExecutionVariance{}
	if tr.Code() != "D" {
		t.Fatalf("code = %s", tr.Code())
	}
	bi := mkInfo(100)
	// Steady state: assignments at t, completions lag by ~100 s.
	bi.AddSample(100, 0, 40, 0, 40)
	bi.AddSample(200, 40, 80, 0, 40)
	bi.AddSample(300, 80, 100, 0, 20)
	if tr.ShouldStart(bi) {
		t.Fatal("fired in steady state")
	}
	// Tail: completion of the last fraction stalls; var grows past 2×.
	bi.AddSample(1200, 90, 100, 0, 10)
	bi.AddSample(2400, 95, 100, 0, 5)
	if !tr.ShouldStart(bi) {
		tc95, _ := bi.TimeAtCompletion(0.95)
		ta95, _ := bi.TimeAtAssignment(0.95)
		t.Fatalf("did not fire in the tail (var95=%v, ref=%v)",
			tc95-ta95, bi.MaxExecutionVarianceUpTo(0.5))
	}
	// Before half completion it must never fire.
	early := mkInfo(100)
	early.AddSample(100, 10, 100, 0, 90)
	early.AddSample(5000, 40, 100, 0, 60)
	if tr.ShouldStart(early) {
		t.Fatal("fired before 50% completion")
	}
}

func TestGreedySizing(t *testing.T) {
	g := Greedy{}
	if g.Code() != "G" {
		t.Fatalf("code = %s", g.Code())
	}
	if n := g.Workers(mkInfo(10), 305.5, 0); n != 305 {
		t.Fatalf("greedy workers = %d, want 305", n)
	}
	if n := g.Workers(mkInfo(10), 0.4, 0); n != 1 {
		t.Fatalf("greedy small allowance = %d, want 1", n)
	}
	if n := g.Workers(mkInfo(10), 0, 0); n != 0 {
		t.Fatalf("greedy zero allowance = %d, want 0", n)
	}
}

func TestConservativeSizing(t *testing.T) {
	c := Conservative{}
	if c.Code() != "C" {
		t.Fatalf("code = %s", c.Code())
	}
	bi := mkInfo(100)
	// 90% completed at t=10000 ⇒ tr = 10000/0.9 − 10000 ≈ 1111 s ≈ 0.31 h.
	bi.AddSample(10000, 90, 100, 0, 10)
	// S = 10 cpu·h, tr ≈ 0.31 h ⇒ S/tr ≈ 32 > S ⇒ min ⇒ 10 workers.
	if n := c.Workers(bi, 10, 10000); n != 10 {
		t.Fatalf("conservative = %d, want 10 (capped at S)", n)
	}
	// Long remaining time: 50% at t=100000 ⇒ tr = 100000 s ≈ 27.8 h ⇒
	// S/tr ≈ 0.36 ⇒ 1 worker minimum.
	bi2 := mkInfo(100)
	bi2.AddSample(100000, 50, 100, 0, 50)
	if n := c.Workers(bi2, 10, 100000); n != 1 {
		t.Fatalf("conservative long tail = %d, want 1", n)
	}
	// tr between: 90% at t=100000 ⇒ tr ≈ 11111 s ≈ 3.09 h ⇒ S/tr ≈ 3.2 ⇒ 3.
	bi3 := mkInfo(100)
	bi3.AddSample(100000, 90, 100, 0, 10)
	if n := c.Workers(bi3, 10, 100000); n != 3 {
		t.Fatalf("conservative = %d, want 3", n)
	}
}

func TestStrategyLabels(t *testing.T) {
	if got := DefaultStrategy().Label(); got != "9C-C-R" {
		t.Fatalf("default = %s", got)
	}
	all := AllStrategies()
	if len(all) != 18 {
		t.Fatalf("combos = %d, want 18", len(all))
	}
	seen := map[string]bool{}
	for _, s := range all {
		if seen[s.Label()] {
			t.Fatalf("duplicate label %s", s.Label())
		}
		seen[s.Label()] = true
	}
	for _, label := range []string{"9C-G-F", "9A-C-D", "D-G-R"} {
		s, err := StrategyByLabel(label)
		if err != nil || s.Label() != label {
			t.Fatalf("roundtrip %s failed: %v", label, err)
		}
	}
	if _, err := StrategyByLabel("XX-Y-Z"); err == nil {
		t.Fatal("bogus label accepted")
	}
	if Flat.String() == "" || Reschedule.String() == "" || CloudDuplication.String() == "" {
		t.Fatal("deployment names empty")
	}
	if Deployment(99).Code() != "?" {
		t.Fatal("unknown deployment code")
	}
}

func TestCalibrationFit(t *testing.T) {
	c := NewCalibration()
	if c.Alpha("env") != 1 {
		t.Fatal("default alpha should be 1")
	}
	// Actual completion always 1.5× the constant-rate estimate.
	for i := 0; i < 20; i++ {
		base := 1000.0 + float64(i)*100
		c.Record("env", base, 1.5*base)
	}
	if a := c.Alpha("env"); math.Abs(a-1.5) > 1e-9 {
		t.Fatalf("alpha = %v, want 1.5", a)
	}
	if sr := c.SuccessRate("env"); sr != 1 {
		t.Fatalf("success rate = %v, want 1 (perfect fit)", sr)
	}
	if c.Count("env") != 20 {
		t.Fatalf("count = %d", c.Count("env"))
	}
	// Unrelated environment unaffected.
	if c.Alpha("other") != 1 || c.SuccessRate("other") != 0 {
		t.Fatal("environment isolation broken")
	}
}

func TestCalibrationSuccessRateWithNoise(t *testing.T) {
	c := NewCalibration()
	// Half the executions double (way outside ±20%), half are exact.
	for i := 0; i < 10; i++ {
		c.Record("env", 1000, 1000)
		c.Record("env", 1000, 2000)
	}
	sr := c.SuccessRate("env")
	if sr < 0.4 || sr > 0.6 {
		t.Fatalf("success rate = %v, want ~0.5", sr)
	}
	// Invalid pairs ignored.
	c.Record("env", 0, 100)
	c.Record("env", 100, -1)
	if c.Count("env") != 20 {
		t.Fatal("invalid pairs recorded")
	}
}

func TestOraclePredict(t *testing.T) {
	o := NewOracle(DefaultStrategy())
	bi := NewBatchInfo("b", "env", 100, 1000)
	bi.AddSample(1500, 50, 100, 0, 50) // 50% at elapsed 500
	p, err := o.Predict(bi, 1500)
	if err != nil {
		t.Fatal(err)
	}
	if p.PredictedTime != 1000 { // α=1 · 500/0.5
		t.Fatalf("prediction = %v, want 1000", p.PredictedTime)
	}
	if p.CompletedFraction != 0.5 || p.Alpha != 1 {
		t.Fatalf("prediction meta: %+v", p)
	}
	// With calibration α=2.
	o.Calibration.Record("env", 1000, 2000)
	p2, _ := o.Predict(bi, 1500)
	if p2.PredictedTime != 2000 {
		t.Fatalf("calibrated prediction = %v, want 2000", p2.PredictedTime)
	}
	// No completions yet: error.
	empty := NewBatchInfo("e", "env", 100, 0)
	if _, err := o.Predict(empty, 100); err == nil {
		t.Fatal("prediction without progress accepted")
	}
}

func TestOracleShouldUseCloud(t *testing.T) {
	o := NewOracle(DefaultStrategy())
	if o.ShouldUseCloud(nil) {
		t.Fatal("nil batch triggered")
	}
	bi := mkInfo(100)
	bi.AddSample(60, 95, 100, 0, 5)
	if !o.ShouldUseCloud(bi) {
		t.Fatal("should trigger at 95%")
	}
	bi.AddSample(120, 100, 100, 0, 0)
	if o.ShouldUseCloud(bi) {
		t.Fatal("triggered on a finished batch")
	}
}
