package core

import (
	"fmt"
	"testing"
)

func cand(id string, t Tier, since float64) TierCandidate {
	return TierCandidate{BatchID: id, Tier: t, Since: since}
}

func TestParseTier(t *testing.T) {
	for _, s := range []string{"", "enterprise", "premium", "free"} {
		if _, err := ParseTier(s); err != nil {
			t.Errorf("ParseTier(%q) = %v", s, err)
		}
	}
	if _, err := ParseTier("platinum"); err == nil {
		t.Error("ParseTier accepted an unknown tier")
	}
	if TierPremium.OrFree() != TierPremium || Tier("").OrFree() != TierFree {
		t.Error("OrFree mapping wrong")
	}
}

func TestAdmitNilPolicyAdmitsAll(t *testing.T) {
	var p *TierPolicy
	got := p.Admit(0, nil, []TierCandidate{cand("a", TierFree, 0), cand("b", "", 0)})
	if !got["a"] || !got["b"] {
		t.Fatalf("nil policy denied candidates: %v", got)
	}
}

func TestAdmitFleetCapExhausted(t *testing.T) {
	p := DefaultTierPolicy()
	p.FleetCap = 3
	active := map[Tier]int{TierEnterprise: 2, TierFree: 1}
	got := p.Admit(0, active, []TierCandidate{cand("a", TierEnterprise, 0)})
	if len(got) != 0 {
		t.Fatalf("full fleet admitted %v", got)
	}
}

func TestAdmitPriorityAndTieBreak(t *testing.T) {
	p := DefaultTierPolicy()
	p.FleetCap = 1
	// One slot, enterprise outranks free.
	got := p.Admit(0, nil, []TierCandidate{cand("f", TierFree, 0), cand("e", TierEnterprise, 0)})
	if !got["e"] || got["f"] {
		t.Fatalf("contended slot went to %v", got)
	}
	// Equal scores: the lexicographically smaller batch ID wins.
	got = p.Admit(0, nil, []TierCandidate{cand("b", TierPremium, 0), cand("a", TierPremium, 0)})
	if !got["a"] || got["b"] {
		t.Fatalf("tie-break went to %v", got)
	}
}

func TestAdmitWaitBoostPreventsStarvation(t *testing.T) {
	p := DefaultTierPolicy()
	p.FleetCap = 1
	// A free batch waiting long enough outscores a fresh enterprise one:
	// 10 + 1/hour crosses 140 after 130 hours.
	wait := 131 * 3600.0
	got := p.Admit(wait, nil, []TierCandidate{
		cand("e", TierEnterprise, wait), cand("f", TierFree, 0),
	})
	if !got["f"] || got["e"] {
		t.Fatalf("boosted free batch lost the slot: %v", got)
	}
	if s := p.Score(TierFree, -5); s != p.Spec(TierFree).Priority {
		t.Fatalf("negative wait changed score: %v", s)
	}
}

func TestAdmitMaxActiveCap(t *testing.T) {
	p := DefaultTierPolicy()
	p.Tiers[TierFree] = TierSpec{Weight: 0.10, Priority: 10, MaxActive: 2}
	got := p.Admit(0, map[Tier]int{TierFree: 2}, []TierCandidate{cand("f", TierFree, 0)})
	if got["f"] {
		t.Fatal("free batch admitted past its MaxActive cap")
	}
	// Headroom of one admits exactly one of two candidates.
	got = p.Admit(0, map[Tier]int{TierFree: 1},
		[]TierCandidate{cand("f1", TierFree, 0), cand("f2", TierFree, 0)})
	if n := len(got); n != 1 || !got["f1"] {
		t.Fatalf("cap headroom 1 admitted %v", got)
	}
}

func TestAdmitWeightedReservation(t *testing.T) {
	p := DefaultTierPolicy()
	p.FleetCap = 10
	var cands []TierCandidate
	for i := 0; i < 15; i++ {
		cands = append(cands, cand(fmt.Sprintf("e%02d", i), TierEnterprise, 0))
	}
	for i := 0; i < 5; i++ {
		cands = append(cands, cand(fmt.Sprintf("f%02d", i), TierFree, 0))
	}
	got := p.Admit(0, nil, cands)
	ent, free := 0, 0
	for id, ok := range got {
		if !ok {
			continue
		}
		if id[0] == 'e' {
			ent++
		} else {
			free++
		}
	}
	if ent+free != 10 {
		t.Fatalf("admitted %d+%d, want 10 total", ent, free)
	}
	// The weighted reservation guarantees the free tier its share even
	// though every enterprise candidate outscores it; leftovers go to the
	// higher scores.
	if free < 1 {
		t.Fatalf("free tier starved: %d enterprise, %d free", ent, free)
	}
	if ent < 8 {
		t.Fatalf("enterprise reservation not honored: %d enterprise, %d free", ent, free)
	}
}
