package core

import (
	"testing"

	"spequlos/internal/bot"
	"spequlos/internal/cloud"
	"spequlos/internal/middleware"
	"spequlos/internal/sim"
	"spequlos/internal/xwhep"
)

// pollCounter wraps a Server and counts per-batch monitor polls. Because
// the embedded interface only promotes Server's methods, the wrapper does
// NOT implement BatchProgressor: the monitor falls back to per-batch
// polling through it.
type pollCounter struct {
	middleware.Server
	single int
	batch  int
}

func (p *pollCounter) Progress(id string) middleware.Progress {
	p.single++
	return p.Server.Progress(id)
}

// batchPollCounter re-exposes the aggregated query, counting its calls.
type batchPollCounter struct{ *pollCounter }

func (p batchPollCounter) ProgressBatch(ids []string) map[string]middleware.Progress {
	p.batch++
	return middleware.ProgressAll(p.Server, ids)
}

// twoBatchWorld runs two QoS batches sharing one two-worker pool through
// the service, with the server wrapped by wrap, and returns per-batch
// completion times and usage.
func twoBatchWorld(t *testing.T, wrap func(middleware.Server) middleware.Server) (map[string]float64, map[string]CloudUsage) {
	t.Helper()
	eng := sim.NewEngine()
	inner := xwhep.New(eng, xwhep.DefaultConfig())
	srv := wrap(inner)
	simCloud := cloud.NewSimCloud(eng, cloud.SimConfig{BootDelay: 120}, sim.NewRNG(7))
	svc := NewService(eng, srv, simCloud, Config{
		Strategy:      DefaultStrategy(),
		MonitorPeriod: 60,
		CloudServerFactory: func() middleware.Server {
			return xwhep.New(eng, xwhep.DefaultConfig())
		},
	})

	completed := map[string]float64{}
	done := 0
	srv.AddListener(completionTimes{times: completed, done: &done})

	mkTasks := func(n int) []bot.Task {
		specs := make([]bot.Task, n)
		for i := range specs {
			specs[i] = bot.Task{ID: i, NOps: 1000}
		}
		return specs
	}
	for i, id := range []string{"a", "b"} {
		id := id
		at := float64(i) * 300 // interleaved submissions
		eng.At(at, func() {
			if err := svc.RegisterQoS("u", id, "env", 8); err != nil {
				t.Error(err)
			}
			svc.Credits.Deposit("u", 10)
			if err := svc.OrderQoS("u", id, 10); err != nil {
				t.Error(err)
			}
			srv.Submit(middleware.Batch{ID: id, Tasks: mkTasks(8)})
		})
	}
	srv.WorkerJoin(&middleware.Worker{ID: 0, Power: 1})
	srv.WorkerJoin(&middleware.Worker{ID: 1, Power: 1})

	eng.RunWhile(func() bool { return done < 2 && eng.Now() < 10*86400 })

	usage := map[string]CloudUsage{}
	for _, id := range []string{"a", "b"} {
		u, err := svc.Usage(id)
		if err != nil {
			t.Fatal(err)
		}
		usage[id] = u
	}
	return completed, usage
}

// completionTimes records per-batch completion instants.
type completionTimes struct {
	times map[string]float64
	done  *int
}

func (c completionTimes) TaskAssigned(string, int, float64)  {}
func (c completionTimes) TaskCompleted(string, int, float64) {}
func (c completionTimes) BatchCompleted(id string, at float64) {
	if _, ok := c.times[id]; !ok {
		c.times[id] = at
		*c.done++
	}
}

// TestMultiBatchAggregatedPollMatchesPerBatch is the in-process half of the
// 2-batch acceptance criterion: an identical two-batch cell produces the
// same per-batch completion times and credit accounting whether the monitor
// polls through one aggregated query per tick or one query per batch.
func TestMultiBatchAggregatedPollMatchesPerBatch(t *testing.T) {
	var seq *pollCounter
	seqTimes, seqUsage := twoBatchWorld(t, func(s middleware.Server) middleware.Server {
		seq = &pollCounter{Server: s}
		return seq
	})
	var agg *pollCounter
	aggTimes, aggUsage := twoBatchWorld(t, func(s middleware.Server) middleware.Server {
		agg = &pollCounter{Server: s}
		return batchPollCounter{agg}
	})

	if agg.batch == 0 {
		t.Fatal("aggregated run never used ProgressBatch")
	}
	if seq.batch != 0 || seq.single == 0 {
		t.Fatalf("sequential run polls = (single %d, batch %d)", seq.single, seq.batch)
	}
	// In the aggregated run the only per-batch Progress calls left are the
	// final samples recorded at finalization — O(1) per batch lifetime, not
	// per tick.
	if agg.single > 2 {
		t.Fatalf("aggregated run made %d per-batch polls, want ≤2 (finalization only)", agg.single)
	}

	for _, id := range []string{"a", "b"} {
		if seqTimes[id] == 0 || aggTimes[id] == 0 {
			t.Fatalf("batch %s did not complete (seq %v, agg %v)", id, seqTimes[id], aggTimes[id])
		}
		if seqTimes[id] != aggTimes[id] {
			t.Errorf("batch %s completion diverged: seq %v, agg %v", id, seqTimes[id], aggTimes[id])
		}
		su, au := seqUsage[id], aggUsage[id]
		if su.CreditsBilled != au.CreditsBilled || su.InstancesStarted != au.InstancesStarted ||
			su.TriggeredAt != au.TriggeredAt || su.Exhausted != au.Exhausted {
			t.Errorf("batch %s usage diverged:\n  seq: %+v\n  agg: %+v", id, su, au)
		}
	}
}

// TestMultiBatchPollEconomy pins the tentpole invariant at the core layer:
// with an aggregating server and a count-driven trigger, the monitor polls
// at most once per tick — and not at all on ticks where no registered batch
// saw task activity. Fifty idle batches cost exactly one aggregated poll
// (the tick after registration) over five monitor periods.
func TestMultiBatchPollEconomy(t *testing.T) {
	eng := sim.NewEngine()
	inner := xwhep.New(eng, xwhep.DefaultConfig())
	pc := &pollCounter{Server: inner}
	srv := batchPollCounter{pc}
	simCloud := cloud.NewSimCloud(eng, cloud.SimConfig{BootDelay: 120}, sim.NewRNG(7))
	svc := NewService(eng, srv, simCloud, Config{Strategy: DefaultStrategy(), MonitorPeriod: 60})

	const batches = 50
	for i := 0; i < batches; i++ {
		id := string(rune('A'+i%26)) + string(rune('a'+i/26))
		if err := svc.RegisterQoS("u", id, "env", 4); err != nil {
			t.Fatal(err)
		}
		specs := make([]bot.Task, 4)
		for j := range specs {
			specs[j] = bot.Task{ID: j, NOps: 1e12} // effectively never finishes
		}
		srv.Submit(middleware.Batch{ID: id, Tasks: specs})
	}
	// Run exactly 5 monitor ticks. No worker ever joins, so after the first
	// tick drains the registration dirty marks, the due list stays empty.
	eng.RunUntil(5*60 + 1)
	if pc.batch != 1 {
		t.Fatalf("aggregated polls over 5 ticks with %d idle batches = %d, want 1", batches, pc.batch)
	}
	if pc.single != 0 {
		t.Fatalf("per-batch polls = %d, want 0", pc.single)
	}
}
