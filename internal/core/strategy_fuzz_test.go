package core

import (
	"strings"
	"testing"
)

// FuzzStrategyByLabel fuzzes the strategy-label parser: it must never
// panic, accepted labels must round-trip through Label(), and every label
// the system itself produces must parse.
func FuzzStrategyByLabel(f *testing.F) {
	for _, s := range AllStrategies() {
		f.Add(s.Label())
	}
	f.Add("")
	f.Add("9C-C-R ")
	f.Add("9c-c-r")
	f.Add("9C--R")
	f.Add("9C-C-R-X")
	f.Add(strings.Repeat("9C-", 100))
	f.Fuzz(func(t *testing.T, label string) {
		s, err := StrategyByLabel(label)
		if err != nil {
			return
		}
		if got := s.Label(); got != label {
			t.Fatalf("round trip: parsed %q renders as %q", label, got)
		}
		if s.Trigger == nil || s.Sizing == nil {
			t.Fatalf("parsed strategy %q has nil components: %+v", label, s)
		}
	})
}
