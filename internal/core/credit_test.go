package core

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestCreditLifecycle(t *testing.T) {
	cs := NewCreditSystem()
	if err := cs.Deposit("alice", 100); err != nil {
		t.Fatal(err)
	}
	if err := cs.OrderQoS("alice", "b1", 60); err != nil {
		t.Fatal(err)
	}
	if got := cs.AccountOf("alice").Balance; got != 40 {
		t.Fatalf("balance after order = %v, want 40", got)
	}
	if !cs.HasCredits("b1") {
		t.Fatal("fresh order should have credits")
	}
	billed, exhausted, err := cs.Bill("b1", 25)
	if err != nil || billed != 25 || exhausted {
		t.Fatalf("bill: %v %v %v", billed, exhausted, err)
	}
	refund, err := cs.Pay("b1")
	if err != nil || refund != 35 {
		t.Fatalf("pay refund = %v, want 35", refund)
	}
	a := cs.AccountOf("alice")
	if a.Balance != 75 || a.Spent != 25 {
		t.Fatalf("final account = %+v", a)
	}
	if cs.HasCredits("b1") {
		t.Fatal("closed order still has credits")
	}
	// Idempotent pay.
	if refund, _ := cs.Pay("b1"); refund != 0 {
		t.Fatal("double pay refunded again")
	}
}

func TestOrderValidation(t *testing.T) {
	cs := NewCreditSystem()
	cs.Deposit("bob", 10)
	if err := cs.OrderQoS("bob", "b", 20); err == nil {
		t.Fatal("overdraft order accepted")
	}
	if err := cs.OrderQoS("bob", "b", -5); err == nil {
		t.Fatal("negative order accepted")
	}
	if err := cs.OrderQoS("bob", "b", 10); err != nil {
		t.Fatal(err)
	}
	if err := cs.OrderQoS("bob", "b", 1); err == nil {
		t.Fatal("duplicate open order accepted")
	}
	if err := cs.Deposit("bob", -1); err == nil {
		t.Fatal("negative deposit accepted")
	}
}

func TestBillCapsAtRemaining(t *testing.T) {
	cs := NewCreditSystem()
	cs.Deposit("u", 30)
	cs.OrderQoS("u", "b", 30)
	billed, exhausted, err := cs.Bill("b", 50)
	if err != nil || billed != 30 || !exhausted {
		t.Fatalf("bill over remaining: %v %v %v", billed, exhausted, err)
	}
	if _, _, err := cs.Bill("b", -1); err == nil {
		t.Fatal("negative bill accepted")
	}
	if _, _, err := cs.Bill("zz", 1); err == nil {
		t.Fatal("billing unknown order accepted")
	}
}

func TestExchangeRate(t *testing.T) {
	cs := NewCreditSystem()
	if cs.Rate() != 15 {
		t.Fatalf("rate = %v, want 15 credits per CPU·hour", cs.Rate())
	}
	if got := cs.CreditsForCPUSeconds(3600); got != 15 {
		t.Fatalf("1 cpu·h = %v credits", got)
	}
	if got := cs.CPUHoursFor(30); got != 2 {
		t.Fatalf("30 credits = %v cpu·h", got)
	}
}

// Property: credits are conserved: balance + order remaining + spent ==
// total deposits, under any sequence of operations.
func TestCreditConservationProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		cs := NewCreditSystem()
		deposited := 0.0
		orderOpen := false
		for i, op := range ops {
			switch op % 4 {
			case 0:
				amt := float64(op%50) + 1
				cs.Deposit("u", amt)
				deposited += amt
			case 1:
				if !orderOpen {
					amt := float64(op%20) + 1
					if cs.AccountOf("u").Balance >= amt {
						if err := cs.OrderQoS("u", "b", amt); err == nil {
							orderOpen = true
						}
					}
				}
			case 2:
				if orderOpen {
					cs.Bill("b", float64(op%10))
				}
			case 3:
				if orderOpen && i%2 == 0 {
					cs.Pay("b")
					orderOpen = false
					// A paid order can be reopened later under the same
					// batch id in this model? No — keep single order.
				}
			}
			if orderOpen {
				continue
			}
		}
		a := cs.AccountOf("u")
		total := a.Balance + a.Spent
		if o, ok := cs.OrderOf("b"); ok && !o.Closed {
			total += o.Remaining()
		}
		return math.Abs(total-deposited) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentCreditOps(t *testing.T) {
	cs := NewCreditSystem()
	cs.Deposit("u", 1e6)
	cs.OrderQoS("u", "b", 1e5)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				cs.Bill("b", 1)
				cs.HasCredits("b")
				cs.AccountOf("u")
			}
		}()
	}
	wg.Wait()
	o, _ := cs.OrderOf("b")
	if o.Billed != 800 {
		t.Fatalf("billed = %v, want 800", o.Billed)
	}
}

func TestDepositPolicies(t *testing.T) {
	top := TopUpPolicy{Cap: 6000}
	if d := top.Apply(Account{Balance: 1000}); d != 5000 {
		t.Fatalf("topup deposit = %v, want 5000", d)
	}
	if d := top.Apply(Account{Balance: 9000}); d != 0 {
		t.Fatalf("topup over cap = %v, want 0", d)
	}
	fixed := FixedPolicy{Amount: 100}
	if d := fixed.Apply(Account{}); d != 100 {
		t.Fatal("fixed policy wrong")
	}
	cs := NewCreditSystem()
	cs.Deposit("a", 1000)
	cs.Deposit("b", 7000)
	cs.ApplyPolicy(top)
	if cs.AccountOf("a").Balance != 6000 {
		t.Fatalf("a topped to %v", cs.AccountOf("a").Balance)
	}
	if cs.AccountOf("b").Balance != 7000 {
		t.Fatalf("b changed to %v", cs.AccountOf("b").Balance)
	}
	if top.Name() == "" || fixed.Name() == "" {
		t.Fatal("policy names empty")
	}
}

func TestUsersSorted(t *testing.T) {
	cs := NewCreditSystem()
	cs.Deposit("zoe", 1)
	cs.Deposit("amy", 1)
	users := cs.Users()
	if len(users) != 2 || users[0] != "amy" || users[1] != "zoe" {
		t.Fatalf("users = %v", users)
	}
}
