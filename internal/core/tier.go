package core

import (
	"fmt"
	"sort"
)

// This file layers a multi-tenant QoS tier model over the Scheduler,
// modeled on the qos-prioritizer pattern (SNIPPETS.md #1): tenants buy
// into tiers, each tier carries a weight (its share of contended cloud
// supply), a base priority, and an admission cap. When more batches want
// cloud support than the fleet cap allows, admission is decided by
// weighted slot reservation plus priority scoring with a wait boost, so
// enterprise batches go first but free batches cannot starve.

// Tier is a QoS service class. The zero value means "untiered" and is
// treated as TierFree wherever a policy is active; with no policy at all
// tiers are ignored entirely and every batch is admitted (the legacy
// single-tenant behavior).
type Tier string

// The three service classes, in descending order of privilege.
const (
	TierEnterprise Tier = "enterprise"
	TierPremium    Tier = "premium"
	TierFree       Tier = "free"
)

// AllTiers lists the service classes in descending privilege order.
func AllTiers() []Tier { return []Tier{TierEnterprise, TierPremium, TierFree} }

// ParseTier validates a wire-format tier name. The empty string is valid
// and maps to the empty (untiered) value.
func ParseTier(s string) (Tier, error) {
	switch t := Tier(s); t {
	case "", TierEnterprise, TierPremium, TierFree:
		return t, nil
	}
	return "", fmt.Errorf("core: unknown tier %q (use enterprise, premium or free)", s)
}

// OrFree maps the untiered zero value to TierFree.
func (t Tier) OrFree() Tier {
	if t == "" {
		return TierFree
	}
	return t
}

// Rank orders tiers by privilege: enterprise 2, premium 1, free (and
// untiered) 0. The service gateway uses it to reject requests claiming a
// class above the caller's credential.
func (t Tier) Rank() int {
	switch t {
	case TierEnterprise:
		return 2
	case TierPremium:
		return 1
	}
	return 0
}

// TierSpec is the contract of one service class.
type TierSpec struct {
	// Weight is the tier's share of contended fleet slots, relative to the
	// other tiers' weights.
	Weight float64 `json:"weight"`
	// Priority is the base admission score; higher wins a contended slot.
	Priority float64 `json:"priority"`
	// MaxActive caps how many batches of this tier may hold cloud support
	// concurrently (0 = unlimited).
	MaxActive int `json:"max_active"`
}

// TierPolicy gates which QoS batches get cloud workers when supply is
// contended. A nil policy admits everything — the untiered behavior.
type TierPolicy struct {
	// Tiers maps each service class to its contract.
	Tiers map[Tier]TierSpec `json:"tiers"`
	// FleetCap bounds the number of batches holding cloud support at once
	// across all tiers (0 = unlimited).
	FleetCap int `json:"fleet_cap"`
	// WaitBoost is priority added per hour a candidate has waited for
	// admission, preventing starvation of low tiers.
	WaitBoost float64 `json:"wait_boost"`
}

// DefaultTierPolicy returns the three-class contract of the qos-prioritizer
// exemplar: enterprise 70% weight, premium 20%, free 10%, with priorities
// 140/60/10 and admission caps 100/50/20, boosting one priority point per
// waiting hour.
func DefaultTierPolicy() *TierPolicy {
	return &TierPolicy{
		Tiers: map[Tier]TierSpec{
			TierEnterprise: {Weight: 0.70, Priority: 140, MaxActive: 100},
			TierPremium:    {Weight: 0.20, Priority: 60, MaxActive: 50},
			TierFree:       {Weight: 0.10, Priority: 10, MaxActive: 20},
		},
		WaitBoost: 1,
	}
}

// Spec returns the tier's contract; unknown tiers get the free tier's (or a
// zero spec if the policy doesn't define free either).
func (p *TierPolicy) Spec(t Tier) TierSpec {
	if s, ok := p.Tiers[t.OrFree()]; ok {
		return s
	}
	return p.Tiers[TierFree]
}

// Score is a candidate's admission priority: the tier's base priority plus
// the wait boost accrued since it became eligible.
func (p *TierPolicy) Score(t Tier, waitSeconds float64) float64 {
	if waitSeconds < 0 {
		waitSeconds = 0
	}
	return p.Spec(t).Priority + p.WaitBoost*waitSeconds/3600
}

// TierCandidate is a batch whose trigger has fired and that is waiting for
// an admission slot.
type TierCandidate struct {
	BatchID string
	Tier    Tier
	// Since is the virtual time the batch first became eligible; longer
	// waits score higher.
	Since float64
}

// Admit selects which candidates may begin cloud support now, given how
// many batches per tier already hold it. Slots freed by the fleet cap are
// first reserved per tier in proportion to weight (the weighted credit
// queues), then leftovers go to the highest scores overall; per-tier
// MaxActive caps apply throughout. The result is deterministic: ties break
// on batch ID. A nil policy admits every candidate.
func (p *TierPolicy) Admit(now float64, active map[Tier]int, cands []TierCandidate) map[string]bool {
	admitted := make(map[string]bool, len(cands))
	if p == nil {
		for _, c := range cands {
			admitted[c.BatchID] = true
		}
		return admitted
	}
	totalActive := 0
	for _, n := range active {
		totalActive += n
	}
	slots := len(cands)
	if p.FleetCap > 0 {
		slots = p.FleetCap - totalActive
		if slots <= 0 {
			return admitted
		}
		if slots > len(cands) {
			slots = len(cands)
		}
	}

	// Rank candidates by score, ties on batch ID for determinism.
	ranked := make([]TierCandidate, len(cands))
	copy(ranked, cands)
	sort.Slice(ranked, func(i, j int) bool {
		si, sj := p.Score(ranked[i].Tier, now-ranked[i].Since), p.Score(ranked[j].Tier, now-ranked[j].Since)
		if si != sj {
			return si > sj
		}
		return ranked[i].BatchID < ranked[j].BatchID
	})

	// Per-tier headroom under MaxActive.
	headroom := func(t Tier) int {
		spec := p.Spec(t)
		if spec.MaxActive <= 0 {
			return slots
		}
		return spec.MaxActive - active[t.OrFree()]
	}
	room := map[Tier]int{}
	for _, c := range ranked {
		t := c.Tier.OrFree()
		if _, ok := room[t]; !ok {
			room[t] = headroom(t)
		}
	}

	// Pass 1 — weighted reservation: each tier with candidates gets
	// floor(slots·weight/Σweight) guaranteed slots, served best-first.
	totalWeight := 0.0
	for t := range room {
		totalWeight += p.Spec(t).Weight
	}
	reserved := map[Tier]int{}
	if totalWeight > 0 {
		for t := range room {
			reserved[t] = int(float64(slots) * p.Spec(t).Weight / totalWeight)
		}
	}
	take := func(c TierCandidate, useReserved bool) {
		t := c.Tier.OrFree()
		if admitted[c.BatchID] || slots <= 0 || room[t] <= 0 {
			return
		}
		if useReserved && reserved[t] <= 0 {
			return
		}
		admitted[c.BatchID] = true
		room[t]--
		slots--
		if useReserved {
			reserved[t]--
		}
	}
	for _, c := range ranked {
		take(c, true)
	}
	// Pass 2 — leftover slots go to the best remaining scores overall.
	for _, c := range ranked {
		take(c, false)
	}
	return admitted
}
