package core

import (
	"fmt"
	"testing"
	"time"

	"spequlos/internal/bot"
	"spequlos/internal/cloud"
	"spequlos/internal/middleware"
	"spequlos/internal/sim"
	"spequlos/internal/xwhep"
)

// shardedTwoBatchWorld runs the twoBatchWorld cell with an explicit shard
// count and the default tier policy active (one premium and one free batch),
// so the comparison covers the plan/apply split AND tier arbitration.
func shardedTwoBatchWorld(t *testing.T, shards int) (map[string]float64, map[string]CloudUsage) {
	t.Helper()
	eng := sim.NewEngine()
	srv := xwhep.New(eng, xwhep.DefaultConfig())
	simCloud := cloud.NewSimCloud(eng, cloud.SimConfig{BootDelay: 120}, sim.NewRNG(7))
	svc := NewService(eng, srv, simCloud, Config{
		Strategy:      DefaultStrategy(),
		MonitorPeriod: 60,
		Shards:        shards,
		Tiers:         DefaultTierPolicy(),
		CloudServerFactory: func() middleware.Server {
			return xwhep.New(eng, xwhep.DefaultConfig())
		},
	})

	completed := map[string]float64{}
	done := 0
	srv.AddListener(completionTimes{times: completed, done: &done})

	tiers := map[string]Tier{"a": TierPremium, "b": TierFree}
	for i, id := range []string{"a", "b"} {
		id := id
		at := float64(i) * 300
		eng.At(at, func() {
			if err := svc.RegisterQoSTier("u", id, "env", 8, tiers[id]); err != nil {
				t.Error(err)
			}
			svc.Credits.Deposit("u", 10)
			if err := svc.OrderQoS("u", id, 10); err != nil {
				t.Error(err)
			}
			srv.Submit(middleware.Batch{ID: id, Tasks: mkShardTasks(8)})
		})
	}
	srv.WorkerJoin(&middleware.Worker{ID: 0, Power: 1})
	srv.WorkerJoin(&middleware.Worker{ID: 1, Power: 1})

	eng.RunWhile(func() bool { return done < 2 && eng.Now() < 10*86400 })

	usage := map[string]CloudUsage{}
	for _, id := range []string{"a", "b"} {
		u, err := svc.Usage(id)
		if err != nil {
			t.Fatal(err)
		}
		usage[id] = u
	}
	return completed, usage
}

func mkShardTasks(n int) []bot.Task {
	specs := make([]bot.Task, n)
	for i := range specs {
		specs[i] = bot.Task{ID: i, NOps: 1000}
	}
	return specs
}

// TestShardCountNeverChangesDecisions is the determinism half of the
// tentpole: the shard count only changes which goroutine computes a batch's
// plan, never the plan itself — one shard (the serial legacy path) and four
// shards produce identical per-batch completion times and cloud accounting
// on an identical tiered 2-batch cell.
func TestShardCountNeverChangesDecisions(t *testing.T) {
	serialTimes, serialUsage := shardedTwoBatchWorld(t, 1)
	shardTimes, shardUsage := shardedTwoBatchWorld(t, 4)
	for _, id := range []string{"a", "b"} {
		if serialTimes[id] == 0 || shardTimes[id] == 0 {
			t.Fatalf("batch %s did not complete (serial %v, sharded %v)",
				id, serialTimes[id], shardTimes[id])
		}
		if serialTimes[id] != shardTimes[id] {
			t.Errorf("batch %s completion diverged: serial %v, sharded %v",
				id, serialTimes[id], shardTimes[id])
		}
		su, pu := serialUsage[id], shardUsage[id]
		if su != pu {
			t.Errorf("batch %s usage diverged:\n  serial:  %+v\n  sharded: %+v", id, su, pu)
		}
	}
}

// idleServer is a minimal middleware.Server with scripted progress and an
// aggregated query, used to measure pure monitor-tick cost: batches never
// finish, workers never join, and the test injects task activity directly
// through the listeners.
type idleServer struct {
	listeners middleware.Listeners
	progress  middleware.Progress
}

func (s *idleServer) MiddlewareName() string                  { return "STUB" }
func (s *idleServer) Submit(middleware.Batch)                 {}
func (s *idleServer) WorkerJoin(*middleware.Worker)           {}
func (s *idleServer) WorkerLeave(*middleware.Worker)          {}
func (s *idleServer) Progress(string) middleware.Progress     { return s.progress }
func (s *idleServer) Done(string) bool                        { return false }
func (s *idleServer) Incomplete(string) []bot.Task            { return nil }
func (s *idleServer) MarkCompleted(string, int)               {}
func (s *idleServer) WorkerBusy(*middleware.Worker) bool      { return false }
func (s *idleServer) SetReschedule(bool)                      {}
func (s *idleServer) AddListener(l middleware.Listener)       { s.listeners = append(s.listeners, l) }
func (s *idleServer) ProgressBatch(ids []string) map[string]middleware.Progress {
	out := make(map[string]middleware.Progress, len(ids))
	for _, id := range ids {
		out[id] = s.progress
	}
	return out
}

// tickWallTime measures the wall-clock cost of `ticks` monitor ticks over
// `batches` registered QoS batches of which exactly `activePerTick` see task
// activity each tick — the fixed activity budget. The warm-up tick that
// drains the registration dirty marks is excluded.
func tickWallTime(b int, ticks, activePerTick int) time.Duration {
	eng := sim.NewEngine()
	srv := &idleServer{progress: middleware.Progress{Size: 8, Arrived: 8, Running: 8}}
	simCloud := cloud.NewSimCloud(eng, cloud.SimConfig{BootDelay: 120}, sim.NewRNG(7))
	svc := NewService(eng, srv, simCloud, Config{Strategy: DefaultStrategy(), MonitorPeriod: 60})

	ids := make([]string, b)
	for i := range ids {
		ids[i] = fmt.Sprintf("b%05d", i)
		if err := svc.RegisterQoS("u", ids[i], "env", 8); err != nil {
			panic(err)
		}
	}
	// Fixed activity budget: the SAME number of batches sees task events per
	// tick no matter how many are registered, mirroring a DG whose worker
	// pool (not its tenant count) bounds throughput.
	for k := 1; k <= ticks; k++ {
		at := 60.0 + float64(k)*60 - 30
		eng.At(at, func() {
			for j := 0; j < activePerTick; j++ {
				srv.listeners.TaskAssigned(ids[j%len(ids)], j, at)
			}
		})
	}
	eng.RunUntil(61) // warm-up: drain registration dirty marks
	start := time.Now()
	eng.RunUntil(61 + float64(ticks)*60)
	return time.Since(start)
}

// TestTickWallTimeSublinearInBatchCount pins the acceptance criterion of the
// sharded scheduler: with a fixed per-tick activity budget, the monitor tick
// over 2000 registered batches costs at most 6× the tick over 200 — i.e.
// per-tick work tracks infrastructure activity, not tenant count. (The
// remaining growth is the due-list scan, which is a few ns per registered
// batch.) Skipped under -race: the detector's slowdown is not what the bound
// is about.
func TestTickWallTimeSublinearInBatchCount(t *testing.T) {
	if raceDetectorEnabled {
		t.Skip("wall-clock scaling bound is meaningless under the race detector")
	}
	if testing.Short() {
		t.Skip("timing test")
	}
	const ticks, budget = 40, 100
	min := func(n int) time.Duration {
		best := time.Duration(1<<62 - 1)
		for i := 0; i < 3; i++ {
			if d := tickWallTime(n, ticks, budget); d < best {
				best = d
			}
		}
		return best
	}
	small := min(200)
	large := min(2000)
	t.Logf("tick wall-time: 200 batches %v, 2000 batches %v (%.2fx)",
		small, large, float64(large)/float64(small))
	if large > 6*small {
		t.Fatalf("2000-batch ticks took %v, more than 6× the 200-batch %v", large, small)
	}
}
