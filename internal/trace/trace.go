// Package trace models Best-Effort DCI availability traces: for every node,
// the intervals during which it is available to compute, plus its computing
// power in instructions per second.
//
// The paper drives its simulators with traces from the Failure Trace
// Archive (SETI@home, Notre Dame), Grid'5000 best-effort-queue utilization
// charts (Lyon, Grenoble) and Amazon EC2 spot-market price history. Those
// artifacts are not redistributable, but the paper publishes their complete
// statistical profile (Table 2): node count mean/std/min/max, availability
// and unavailability duration quartiles, and node power mean/std. This
// package synthesizes traces matched to those statistics via per-node
// alternating renewal processes with a shared Ornstein–Uhlenbeck duty
// modulation, and can also load externally-provided traces from CSV.
package trace

import (
	"fmt"
	"math"
	"sort"

	"spequlos/internal/sim"
	"spequlos/internal/stats"
)

// Interval is a half-open availability period [Start, End) in seconds.
type Interval struct {
	Start, End float64
}

// Duration returns End-Start.
func (iv Interval) Duration() float64 { return iv.End - iv.Start }

// Node is one resource of a BE-DCI: its compute power (in number of
// instructions per second, "nops/s" in the paper) and the periods during
// which it is available.
type Node struct {
	ID        int
	Power     float64
	Intervals []Interval
}

// AvailableAt reports whether the node is available at time t.
func (n *Node) AvailableAt(t float64) bool {
	i := sort.Search(len(n.Intervals), func(i int) bool { return n.Intervals[i].End > t })
	return i < len(n.Intervals) && n.Intervals[i].Start <= t
}

// Trace is a complete BE-DCI availability trace.
type Trace struct {
	Name   string
	Length float64 // seconds
	Nodes  []*Node
}

// Validate checks structural invariants: intervals sorted, non-overlapping,
// positive, within [0, Length]; powers positive.
func (t *Trace) Validate() error {
	for _, n := range t.Nodes {
		if n.Power <= 0 {
			return fmt.Errorf("trace %s: node %d has non-positive power %g", t.Name, n.ID, n.Power)
		}
		prev := -math.MaxFloat64
		for _, iv := range n.Intervals {
			if iv.End <= iv.Start {
				return fmt.Errorf("trace %s: node %d has empty interval %+v", t.Name, n.ID, iv)
			}
			if iv.Start < prev {
				return fmt.Errorf("trace %s: node %d has overlapping/unsorted intervals", t.Name, n.ID)
			}
			if iv.Start < 0 || iv.End > t.Length+1e-9 {
				return fmt.Errorf("trace %s: node %d interval %+v outside [0,%g]", t.Name, n.ID, iv, t.Length)
			}
			prev = iv.End
		}
	}
	return nil
}

// Bytes estimates the resident heap size of the trace in bytes: the
// dominant term is 16 bytes per interval (two float64s), plus fixed
// per-node and per-trace overheads for the structs, slice headers and
// pointers that hold them. The estimate is deterministic — a pure function
// of the trace's shape — so byte-budgeted admission decisions (the campaign
// trace cache) are reproducible across runs and platforms.
func (t *Trace) Bytes() int64 {
	const (
		intervalBytes = 16 // Interval{Start, End float64}
		nodeBytes     = 48 // Node struct + slice header + *Node in Trace.Nodes
		traceBytes    = 64 // Trace struct + Nodes slice header
	)
	n := int64(traceBytes) + int64(len(t.Name))
	for _, node := range t.Nodes {
		n += nodeBytes + intervalBytes*int64(len(node.Intervals))
	}
	return n
}

// ConcurrencyAt returns the number of nodes available at time t.
func (t *Trace) ConcurrencyAt(at float64) int {
	n := 0
	for _, node := range t.Nodes {
		if node.AvailableAt(at) {
			n++
		}
	}
	return n
}

// Stats are the measured statistics of a trace, directly comparable to the
// published Table 2 profile.
type Stats struct {
	Name        string
	LengthDays  float64
	Concurrency stats.Summary // node counts sampled on a grid
	Avail       stats.Summary // availability interval durations
	Unavail     stats.Summary // unavailability gap durations
	Power       stats.Summary // per-node power
}

// MeasureStats computes trace statistics. Concurrency is sampled every step
// seconds (a non-positive step defaults to 600 s). Unavailability gaps are
// measured between consecutive intervals of the same node (edge gaps at the
// trace boundaries are excluded, as their true length is censored).
func (t *Trace) MeasureStats(step float64) Stats {
	if step <= 0 {
		step = 600
	}
	var avail, unavail, conc, power []float64
	for _, n := range t.Nodes {
		power = append(power, n.Power)
		for i, iv := range n.Intervals {
			avail = append(avail, iv.Duration())
			if i > 0 {
				unavail = append(unavail, iv.Start-n.Intervals[i-1].End)
			}
		}
	}
	// Sweep-line concurrency sampling.
	type edge struct {
		t  float64
		up bool
	}
	var edges []edge
	for _, n := range t.Nodes {
		for _, iv := range n.Intervals {
			edges = append(edges, edge{iv.Start, true}, edge{iv.End, false})
		}
	}
	sort.Slice(edges, func(i, j int) bool { return edges[i].t < edges[j].t })
	cur, ei := 0, 0
	// Sample strictly inside the window: at the exact trace end every
	// interval closes, which would register a spurious zero.
	for at := step; at < t.Length; at += step {
		for ei < len(edges) && edges[ei].t <= at {
			if edges[ei].up {
				cur++
			} else {
				cur--
			}
			ei++
		}
		conc = append(conc, float64(cur))
	}
	return Stats{
		Name:        t.Name,
		LengthDays:  t.Length / 86400,
		Concurrency: stats.Summarize(conc),
		Avail:       stats.Summarize(avail),
		Unavail:     stats.Summarize(unavail),
		Power:       stats.Summarize(power),
	}
}

// Source produces traces; implemented by renewal Profiles here and by the
// spot-market generator in internal/spot.
type Source interface {
	TraceName() string
	// Generate synthesizes a trace of the given length (seconds) from the
	// seed. Pool limits the number of nodes generated; pool <= 0 uses the
	// source's full published pool.
	Generate(seed uint64, length float64, pool int) *Trace
}

// Profile describes a renewal-process BE-DCI trace, with the statistics the
// paper publishes in Table 2.
type Profile struct {
	Name       string
	LengthDays float64
	MeanNodes  float64
	StdNodes   float64
	MinNodes   int
	MaxNodes   int
	Avail      stats.QuartileDist // availability durations (Table 2, seconds)
	Unavail    stats.QuartileDist // unavailability durations (Table 2, seconds)
	Power      stats.Dist         // per-node power, nops/s
}

// TraceName implements Source.
func (p Profile) TraceName() string { return p.Name }

// DutyCycle returns the stationary fraction of time a node is available,
// implied by MeanNodes over the full pool.
func (p Profile) DutyCycle() float64 {
	d := p.MeanNodes / float64(p.MaxNodes)
	return math.Min(math.Max(d, 0.02), 0.995)
}

// dormMeanDays is the mean dormancy epoch of the participation layer: when
// the renewal process alone would yield a higher duty cycle than the trace
// shows (long availability runs, short gaps, yet modest concurrency — e.g.
// Notre Dame, where 501 hosts appear over 413 days but only ~180 run at
// once), nodes alternate week-scale active/dormant epochs so that both the
// published duration quartiles and the mean node count hold.
const dormMeanDays = 7.0

// calibration returns the γ scale applied to unavailability durations and
// the participation fraction of the dormancy layer (1 = always enrolled).
// Exactly one of the two mechanisms is active per profile (see DESIGN.md).
func (p Profile) calibration() (gamma, participation float64) {
	d := p.DutyCycle()
	ea, eu := p.Avail.Mean(), p.Unavail.Mean()
	renewalDuty := ea / (ea + eu)
	if renewalDuty <= d {
		// Need more availability than the renewal gives: shrink gaps.
		return ea * (1 - d) / (d * eu), 1
	}
	// Need less: keep the published gap distribution, add dormancy.
	return 1, d / renewalDuty
}

// Generate implements Source. It builds, for each node, an alternating
// renewal process: availability durations drawn from the published
// quartile distribution, unavailability durations scaled to match the duty
// cycle and modulated by a shared mean-reverting process that reproduces
// the node-count variability of the original traces (diurnal volunteer
// churn, grid job bursts).
func (p Profile) Generate(seed uint64, length float64, pool int) *Trace {
	if length <= 0 {
		length = p.LengthDays * 86400
	}
	full := p.MaxNodes
	if pool <= 0 || pool > full {
		pool = full
	}
	root := sim.NewRNG(seed).Fork("trace:" + p.Name)
	mod := p.modulation(root.Fork("modulation"), length)
	d0 := p.DutyCycle()
	gamma, participation := p.calibration()
	dormMean := dormMeanDays * 86400
	activeMean := dormMean * participation / math.Max(1-participation, 1e-9)
	// Within an active epoch the duty cycle is d0/participation, so the
	// overall duty still averages d0.
	withinDuty := d0
	if participation < 1 {
		withinDuty = math.Min(d0/participation, 0.995)
	}

	// Draw-optimized samplers, built once per trace instead of re-deriving
	// the quartile segment geometry on every one of the millions of interval
	// draws. Values are bit-identical to sampling the distributions directly.
	availSampler := p.Avail.Sampler()
	unavailSampler := p.Unavail.Sampler()

	tr := &Trace{Name: p.Name, Length: length, Nodes: make([]*Node, 0, pool)}
	for id := 0; id < pool; id++ {
		r := root.ForkN("node", id)
		node := &Node{ID: id, Power: p.Power.Sample(r.Rand)}
		t := 0.0
		enrolled := participation >= 1 || r.Float64() < participation
		epochEnd := length
		if participation < 1 {
			mean := dormMean
			if enrolled {
				mean = activeMean
			}
			epochEnd = r.ExpFloat64() * mean // memoryless residual
		}
		available := enrolled && r.Float64() < withinDuty
		first := true
		for t < length {
			if participation < 1 && t >= epochEnd {
				enrolled = !enrolled
				mean := dormMean
				if enrolled {
					mean = activeMean
				}
				epochEnd = t + r.ExpFloat64()*mean
				available = enrolled && available
			}
			if !enrolled {
				t = math.Min(epochEnd, length)
				available = false
				first = true
				continue
			}
			if available {
				d := availSampler.Sample(r.Rand)
				if first {
					d *= r.Float64() // stationary residual approximation
				}
				end := math.Min(t+d, length)
				if participation < 1 {
					end = math.Min(end, epochEnd)
				}
				if end > t {
					node.Intervals = append(node.Intervals, Interval{Start: t, End: end})
				}
				t = end
			} else {
				d := unavailSampler.Sample(r.Rand) * gamma * mod.unavailFactor(t, withinDuty)
				if first {
					d *= r.Float64()
				}
				t += d
			}
			available = !available
			first = false
		}
		tr.Nodes = append(tr.Nodes, node)
	}
	return tr
}

// modulation is a piecewise-constant mean-reverting multiplier m(t) shared
// by all nodes of a trace, matching the relative node-count variability
// (StdNodes/MeanNodes) and clamped to the published min/max envelope.
type modulation struct {
	step float64
	m    []float64
}

func (p Profile) modulation(r *sim.RNG, length float64) modulation {
	const step = 600.0
	relStd := 0.0
	if p.MeanNodes > 0 {
		relStd = p.StdNodes / p.MeanNodes
	}
	lo := math.Max(float64(p.MinNodes)/p.MeanNodes, 0.02)
	hi := math.Max(float64(p.MaxNodes)/p.MeanNodes, lo+0.01)
	theta := 1.0 / (6 * 3600) // ~6h relaxation, diurnal-scale variability
	sigma := relStd * math.Sqrt(2*theta)
	n := int(length/step) + 2
	m := make([]float64, n)
	cur := 1.0
	diffusion := sigma * math.Sqrt(step) // loop-invariant noise scale
	for i := range m {
		cur += theta*(1-cur)*step + diffusion*r.NormFloat64()
		if cur < lo {
			cur = lo
		}
		if cur > hi {
			cur = hi
		}
		m[i] = cur
	}
	return modulation{step: step, m: m}
}

// unavailFactor converts the multiplier m(t) on target node count into a
// multiplier on unavailability durations: higher target duty ⇒ shorter
// gaps. With duty d(t) = clamp(d0·m(t)), the gap scale relative to the
// baseline calibration is ((1−d)/d)·(d0/(1−d0)).
func (md modulation) unavailFactor(t, d0 float64) float64 {
	if len(md.m) == 0 {
		return 1
	}
	i := int(t / md.step)
	if i < 0 {
		i = 0
	}
	if i >= len(md.m) {
		i = len(md.m) - 1
	}
	d := d0 * md.m[i]
	d = math.Min(math.Max(d, 0.02), 0.995)
	return ((1 - d) / d) * (d0 / (1 - d0))
}
