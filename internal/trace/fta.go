package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"spequlos/internal/sim"
	"spequlos/internal/stats"
)

// ReadFTA parses availability traces in the Failure Trace Archive's
// tabbed event format (Kondo et al., CCGrid 2010), the distribution format
// of the paper's seti and nd datasets. Each non-comment line is an
// availability event:
//
//	node_id  start_time  end_time
//
// Columns are whitespace-separated; lines starting with '#' or '%' are
// comments; extra trailing columns (platform, event codes) are ignored.
// FTA traces carry no power information, so node powers are drawn from the
// supplied distribution (Table 2's power columns), seeded deterministically.
func ReadFTA(r io.Reader, name string, power stats.Dist, seed uint64) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	nodes := map[string]*Node{}
	var order []string
	var length float64
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "%") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			return nil, fmt.Errorf("trace: fta line %d: want >=3 columns, got %d", lineNo, len(fields))
		}
		start, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: fta line %d start: %w", lineNo, err)
		}
		end, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: fta line %d end: %w", lineNo, err)
		}
		if end <= start {
			return nil, fmt.Errorf("trace: fta line %d: empty interval [%g,%g)", lineNo, start, end)
		}
		key := fields[0]
		n, ok := nodes[key]
		if !ok {
			n = &Node{ID: len(order)}
			nodes[key] = n
			order = append(order, key)
		}
		n.Intervals = append(n.Intervals, Interval{Start: start, End: end})
		if end > length {
			length = end
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: reading fta: %w", err)
	}
	if len(order) == 0 {
		return nil, fmt.Errorf("trace: fta input had no events")
	}
	rng := sim.NewRNG(seed).Fork("fta:" + name)
	tr := &Trace{Name: name, Length: length}
	for _, key := range order {
		n := nodes[key]
		sort.Slice(n.Intervals, func(i, j int) bool { return n.Intervals[i].Start < n.Intervals[j].Start })
		// Merge overlaps: FTA event logs occasionally contain overlapping
		// observations of the same availability run.
		merged := n.Intervals[:0]
		for _, iv := range n.Intervals {
			if len(merged) > 0 && iv.Start <= merged[len(merged)-1].End {
				if iv.End > merged[len(merged)-1].End {
					merged[len(merged)-1].End = iv.End
				}
				continue
			}
			merged = append(merged, iv)
		}
		n.Intervals = merged
		n.Power = power.Sample(rng.Rand)
		tr.Nodes = append(tr.Nodes, n)
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}
