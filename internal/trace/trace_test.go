package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"spequlos/internal/stats"
)

func TestGenerateValidates(t *testing.T) {
	for _, p := range RenewalProfiles() {
		tr := p.Generate(1, 2*86400, 64)
		if err := tr.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
		if len(tr.Nodes) != 64 {
			t.Errorf("%s: %d nodes, want 64", p.Name, len(tr.Nodes))
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := SETI.Generate(42, 86400, 32)
	b := SETI.Generate(42, 86400, 32)
	if len(a.Nodes) != len(b.Nodes) {
		t.Fatal("node count differs")
	}
	for i := range a.Nodes {
		if a.Nodes[i].Power != b.Nodes[i].Power {
			t.Fatal("powers differ for same seed")
		}
		if len(a.Nodes[i].Intervals) != len(b.Nodes[i].Intervals) {
			t.Fatal("interval counts differ for same seed")
		}
		for j := range a.Nodes[i].Intervals {
			if a.Nodes[i].Intervals[j] != b.Nodes[i].Intervals[j] {
				t.Fatal("intervals differ for same seed")
			}
		}
	}
	c := SETI.Generate(43, 86400, 32)
	diff := false
	for i := range a.Nodes {
		if len(a.Nodes[i].Intervals) != len(c.Nodes[i].Intervals) {
			diff = true
			break
		}
	}
	if !diff && a.Nodes[0].Power == c.Nodes[0].Power {
		t.Fatal("different seeds produced identical traces")
	}
}

// The availability-duration quartiles drive middleware failure dynamics, so
// the generator must reproduce them closely (they are sampled from the
// published distribution directly).
func TestGenerateAvailQuartiles(t *testing.T) {
	for _, p := range RenewalProfiles() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			tr := p.Generate(7, 20*86400, 200)
			st := tr.MeasureStats(600)
			if st.Avail.N < 500 {
				t.Fatalf("too few availability intervals: %d", st.Avail.N)
			}
			check := func(name string, got, want float64) {
				// Boundary truncation shaves long intervals, so allow slack.
				if math.Abs(got-want)/want > 0.45 {
					t.Errorf("%s: got %.1f, want ~%.1f (table 2)", name, got, want)
				}
			}
			check("avail q25", st.Avail.Q25, p.Avail.Q25)
			check("avail q50", st.Avail.Q50, p.Avail.Q50)
			check("avail q75", st.Avail.Q75, p.Avail.Q75)
		})
	}
}

// Duty-cycle calibration: with the full pool the mean concurrency must
// approach Table 2's mean node count.
func TestGenerateMeanConcurrency(t *testing.T) {
	for _, p := range []Profile{NotreDame, G5KLyon, G5KGrenoble} {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			tr := p.Generate(11, 15*86400, 0) // full pool
			st := tr.MeasureStats(1200)
			rel := math.Abs(st.Concurrency.Mean-p.MeanNodes) / p.MeanNodes
			if rel > 0.30 {
				t.Errorf("mean concurrency %.1f, want ~%.1f (%.0f%% off)",
					st.Concurrency.Mean, p.MeanNodes, rel*100)
			}
		})
	}
}

// seti's full pool is 31k nodes; check the duty cycle on a subsample, which
// preserves the per-node process exactly.
func TestSETIDutyCycleOnSubsample(t *testing.T) {
	tr := SETI.Generate(13, 15*86400, 500)
	st := tr.MeasureStats(1200)
	wantMean := SETI.DutyCycle() * 500
	rel := math.Abs(st.Concurrency.Mean-wantMean) / wantMean
	if rel > 0.25 {
		t.Errorf("subsampled mean concurrency %.1f, want ~%.1f", st.Concurrency.Mean, wantMean)
	}
}

func TestPowerDistribution(t *testing.T) {
	tr := SETI.Generate(3, 86400, 400)
	st := tr.MeasureStats(3600)
	if math.Abs(st.Power.Mean-1000) > 100 {
		t.Errorf("power mean %.0f, want ~1000", st.Power.Mean)
	}
	if st.Power.Std < 100 || st.Power.Std > 400 {
		t.Errorf("power std %.0f, want ~250", st.Power.Std)
	}
	g5k := G5KLyon.Generate(3, 86400, 50)
	for _, n := range g5k.Nodes {
		if n.Power != 3000 {
			t.Fatalf("g5k node power %v, want 3000 (homogeneous)", n.Power)
		}
	}
}

func TestAvailableAt(t *testing.T) {
	n := &Node{ID: 0, Power: 1, Intervals: []Interval{{10, 20}, {30, 40}}}
	cases := []struct {
		t    float64
		want bool
	}{{5, false}, {10, true}, {15, true}, {20, false}, {25, false}, {30, true}, {39.9, true}, {40, false}}
	for _, c := range cases {
		if got := n.AvailableAt(c.t); got != c.want {
			t.Errorf("AvailableAt(%v) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestConcurrencyAt(t *testing.T) {
	tr := &Trace{Name: "x", Length: 100, Nodes: []*Node{
		{ID: 0, Power: 1, Intervals: []Interval{{0, 50}}},
		{ID: 1, Power: 1, Intervals: []Interval{{25, 75}}},
	}}
	if got := tr.ConcurrencyAt(30); got != 2 {
		t.Errorf("concurrency at 30 = %d, want 2", got)
	}
	if got := tr.ConcurrencyAt(80); got != 0 {
		t.Errorf("concurrency at 80 = %d, want 0", got)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	good := &Trace{Name: "g", Length: 100, Nodes: []*Node{
		{ID: 0, Power: 1, Intervals: []Interval{{0, 10}, {20, 30}}},
	}}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
	bad := []*Trace{
		{Name: "overlap", Length: 100, Nodes: []*Node{{ID: 0, Power: 1, Intervals: []Interval{{0, 10}, {5, 30}}}}},
		{Name: "empty", Length: 100, Nodes: []*Node{{ID: 0, Power: 1, Intervals: []Interval{{10, 10}}}}},
		{Name: "outside", Length: 100, Nodes: []*Node{{ID: 0, Power: 1, Intervals: []Interval{{90, 200}}}}},
		{Name: "power", Length: 100, Nodes: []*Node{{ID: 0, Power: 0, Intervals: []Interval{{0, 10}}}}},
	}
	for _, tr := range bad {
		if err := tr.Validate(); err == nil {
			t.Errorf("trace %q: corruption not detected", tr.Name)
		}
	}
}

// Property: generated intervals always satisfy structural invariants, for
// any seed and modest pool/length.
func TestGenerateInvariantsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		tr := G5KLyon.Generate(seed, 86400, 8)
		return tr.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tr := NotreDame.Generate(5, 86400, 16)
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, "nd")
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Nodes) == 0 {
		t.Fatal("round trip lost all nodes")
	}
	// Compare node-by-node (nodes with zero intervals are dropped by CSV,
	// which is acceptable: they never affect a simulation).
	orig := map[int]*Node{}
	for _, n := range tr.Nodes {
		if len(n.Intervals) > 0 {
			orig[n.ID] = n
		}
	}
	if len(back.Nodes) != len(orig) {
		t.Fatalf("round trip: %d nodes, want %d", len(back.Nodes), len(orig))
	}
	for _, n := range back.Nodes {
		o := orig[n.ID]
		if o == nil {
			t.Fatalf("unexpected node %d", n.ID)
		}
		if n.Power != o.Power || len(n.Intervals) != len(o.Intervals) {
			t.Fatalf("node %d mismatch after round trip", n.ID)
		}
		for j := range n.Intervals {
			if n.Intervals[j] != o.Intervals[j] {
				t.Fatalf("node %d interval %d mismatch", n.ID, j)
			}
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",
		"node_id,power,start,end\nx,1,0,10\n",
		"node_id,power,start,end\n0,abc,0,10\n",
		"node_id,power,start,end\n0,1,10,5\n", // end before start -> invalid interval
	}
	for i, c := range cases {
		if _, err := ReadCSV(bytes.NewBufferString(c), "bad"); err == nil {
			t.Errorf("case %d: error expected", i)
		}
	}
}

func TestProfileByNameAndClasses(t *testing.T) {
	p, ok := ProfileByName("g5kgre")
	if !ok || p.Name != "g5kgre" {
		t.Fatal("lookup failed")
	}
	if _, ok := ProfileByName("nope"); ok {
		t.Fatal("bogus profile found")
	}
	if ClassOf("seti") != ClassDesktopGrid || ClassOf("g5klyo") != ClassBestEffortGrid ||
		ClassOf("spot10") != ClassSpotInstances {
		t.Fatal("class mapping wrong")
	}
	if len(DesktopGridProfiles()) != 2 || len(BestEffortGridProfiles()) != 2 {
		t.Fatal("profile groups wrong")
	}
}

func BenchmarkGenerateG5KLyon(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		G5KLyon.Generate(uint64(i), 86400, 0)
	}
}

func TestReadFTA(t *testing.T) {
	input := `# Failure Trace Archive event log
% node   start   end     platform
hostA    0       3600    seti
hostB    100     200     seti
hostA    4000    5000    seti
hostB    150     400     seti
`
	tr, err := ReadFTA(strings.NewReader(input), "fta-test",
		stats.Constant{Value: 1000}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Nodes) != 2 {
		t.Fatalf("nodes = %d, want 2", len(tr.Nodes))
	}
	if tr.Length != 5000 {
		t.Fatalf("length = %v, want 5000", tr.Length)
	}
	// hostA keeps two intervals; hostB's overlapping events merge into one.
	if got := len(tr.Nodes[0].Intervals); got != 2 {
		t.Fatalf("hostA intervals = %d, want 2", got)
	}
	if got := tr.Nodes[1].Intervals; len(got) != 1 || got[0] != (Interval{Start: 100, End: 400}) {
		t.Fatalf("hostB merge wrong: %+v", got)
	}
	for _, n := range tr.Nodes {
		if n.Power != 1000 {
			t.Fatalf("power not sampled: %v", n.Power)
		}
	}
}

func TestReadFTAErrors(t *testing.T) {
	cases := []string{
		"",
		"hostA 0\n",
		"hostA x 10\n",
		"hostA 0 y\n",
		"hostA 10 10\n",
	}
	for i, c := range cases {
		if _, err := ReadFTA(strings.NewReader(c), "bad", stats.Constant{Value: 1}, 1); err == nil {
			t.Errorf("case %d: error expected", i)
		}
	}
}

func TestReadFTADeterministicPowers(t *testing.T) {
	input := "h 0 10\n"
	d := stats.TruncatedNormal{Mu: 1000, Sigma: 250, Lo: 100, Hi: 4000}
	a, err := ReadFTA(strings.NewReader(input), "x", d, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := ReadFTA(strings.NewReader(input), "x", d, 9)
	if a.Nodes[0].Power != b.Nodes[0].Power {
		t.Fatal("same seed gave different powers")
	}
}
