package trace

import "spequlos/internal/stats"

// Published BE-DCI profiles from Table 2 of the paper. Durations are the
// availability / unavailability quartiles in seconds; powers in nops/s.
//
//	trace    len   mean    std    min    max    av.quartiles      unav.quartiles    power
//	seti     120   24391   6793   15868  31092  61,531,5407       174,501,3078      1000±250
//	nd       413   180     4.129  77     501    952,3840,26562    640,960,1920      1000±250
//	g5klyo   31    90.57   105.4  6      226    21,51,63          191,236,480       3000±0
//	g5kgre   31    474.7   178.7  184    591    5,182,11268       23,547,6891       3000±0
//
// (spot10/spot100 are produced by the market simulator in internal/spot.)
var (
	// SETI is the SETI@home volunteer-computing trace (BOINC, Failure
	// Trace Archive): a huge, highly volatile desktop grid.
	SETI = Profile{
		Name:       "seti",
		LengthDays: 120,
		MeanNodes:  24391, StdNodes: 6793, MinNodes: 15868, MaxNodes: 31092,
		Avail:   stats.MustQuartileDist(61, 531, 5407, 5, 8),
		Unavail: stats.MustQuartileDist(174, 501, 3078, 5, 8),
		Power:   stats.TruncatedNormal{Mu: 1000, Sigma: 250, Lo: 100, Hi: 4000},
	}

	// NotreDame is the University of Notre Dame Condor desktop grid trace:
	// small pool, long availability runs, nightly churn.
	NotreDame = Profile{
		Name:       "nd",
		LengthDays: 413.87,
		MeanNodes:  180, StdNodes: 4.129, MinNodes: 77, MaxNodes: 501,
		Avail:   stats.MustQuartileDist(952, 3840, 26562, 30, 8),
		Unavail: stats.MustQuartileDist(640, 960, 1920, 30, 8),
		Power:   stats.TruncatedNormal{Mu: 1000, Sigma: 250, Lo: 100, Hi: 4000},
	}

	// G5KLyon is the Grid'5000 Lyon cluster used through the OAR
	// best-effort queue (December 2010): homogeneous fast nodes whose
	// typical availability slots are tens of seconds (regular jobs preempt
	// constantly) but whose top quartile stretches into night-long idle
	// runs — without those, no 20-CPU-minute task could ever finish there,
	// contradicting Fig 6's g5klyo completion times.
	G5KLyon = Profile{
		Name:       "g5klyo",
		LengthDays: 31,
		MeanNodes:  90.573, StdNodes: 105.4, MinNodes: 6, MaxNodes: 226,
		Avail:   stats.MustQuartileDist(21, 51, 63, 3, 600),
		Unavail: stats.MustQuartileDist(191, 236, 480, 3, 100),
		Power:   stats.Constant{Value: 3000},
	}

	// G5KGrenoble is the Grid'5000 Grenoble cluster in best-effort mode:
	// larger pool, bimodal-ish availability (idle nights vs busy days).
	G5KGrenoble = Profile{
		Name:       "g5kgre",
		LengthDays: 31,
		MeanNodes:  474.69, StdNodes: 178.7, MinNodes: 184, MaxNodes: 591,
		Avail:   stats.MustQuartileDist(5, 182, 11268, 2, 8),
		Unavail: stats.MustQuartileDist(23, 547, 6891, 2, 8),
		Power:   stats.Constant{Value: 3000},
	}
)

// DesktopGridProfiles are the volunteer/institutional desktop grid traces.
func DesktopGridProfiles() []Profile { return []Profile{SETI, NotreDame} }

// BestEffortGridProfiles are the grid best-effort-queue traces.
func BestEffortGridProfiles() []Profile { return []Profile{G5KLyon, G5KGrenoble} }

// RenewalProfiles returns the four renewal-process profiles (desktop grids
// and best-effort grids). Spot traces come from internal/spot.
func RenewalProfiles() []Profile {
	return []Profile{SETI, NotreDame, G5KLyon, G5KGrenoble}
}

// ProfileByName looks up a renewal profile by its Table 2 name.
func ProfileByName(name string) (Profile, bool) {
	for _, p := range RenewalProfiles() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// Class labels BE-DCI types, matching the grouping of Table 1.
type Class string

// The three BE-DCI classes of Table 1.
const (
	ClassDesktopGrid    Class = "Desktop Grids"
	ClassBestEffortGrid Class = "Best Effort Grids"
	ClassSpotInstances  Class = "Spot Instances"
)

// ClassOf maps a trace name to its BE-DCI class.
func ClassOf(name string) Class {
	switch name {
	case "seti", "nd":
		return ClassDesktopGrid
	case "g5klyo", "g5kgre":
		return ClassBestEffortGrid
	case "spot10", "spot100":
		return ClassSpotInstances
	}
	return Class("Unknown")
}
