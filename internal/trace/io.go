package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// WriteCSV serializes a trace in the event-list format used by the Failure
// Trace Archive tooling: one row per availability interval,
//
//	node_id,power,start,end
//
// preceded by a comment-free header row. Real FTA-derived traces converted
// to this format can be loaded back with ReadCSV and used everywhere a
// synthesized trace is.
func (t *Trace) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"node_id", "power", "start", "end"}); err != nil {
		return err
	}
	ff := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, n := range t.Nodes {
		for _, iv := range n.Intervals {
			if err := cw.Write([]string{strconv.Itoa(n.ID), ff(n.Power), ff(iv.Start), ff(iv.End)}); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses the format written by WriteCSV. Rows may appear in any
// order; intervals are sorted per node. The trace length is the maximum
// interval end unless the caller overrides Trace.Length afterwards.
func ReadCSV(r io.Reader, name string) (*Trace, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("trace: reading csv: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("trace: empty csv")
	}
	if rows[0][0] == "node_id" {
		rows = rows[1:]
	}
	nodes := map[int]*Node{}
	var length float64
	for i, row := range rows {
		if len(row) != 4 {
			return nil, fmt.Errorf("trace: row %d has %d fields, want 4", i+1, len(row))
		}
		id, err := strconv.Atoi(row[0])
		if err != nil {
			return nil, fmt.Errorf("trace: row %d node_id: %w", i+1, err)
		}
		power, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: row %d power: %w", i+1, err)
		}
		start, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: row %d start: %w", i+1, err)
		}
		end, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: row %d end: %w", i+1, err)
		}
		n, ok := nodes[id]
		if !ok {
			n = &Node{ID: id, Power: power}
			nodes[id] = n
		}
		n.Intervals = append(n.Intervals, Interval{Start: start, End: end})
		if end > length {
			length = end
		}
	}
	tr := &Trace{Name: name, Length: length}
	ids := make([]int, 0, len(nodes))
	for id := range nodes {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		n := nodes[id]
		sort.Slice(n.Intervals, func(i, j int) bool { return n.Intervals[i].Start < n.Intervals[j].Start })
		tr.Nodes = append(tr.Nodes, n)
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}
