// Package xwhep simulates the XtremWeb-HEP Desktop Grid middleware. XWHEP
// handles host volatility through heartbeats: workers send a keep-alive
// message every minute, and when the server has heard nothing for
// worker_timeout (15 minutes by default), it reassigns the worker's task to
// another host (§2.2, §4.1.3). Tasks run exactly once — there is no
// replication, which is why XWHEP's baseline tail is milder than BOINC's
// but its failure-detection latency still produces one.
package xwhep

import (
	"fmt"
	"sort"

	"spequlos/internal/bot"
	"spequlos/internal/middleware"
	"spequlos/internal/sim"
)

// Config carries the standard XWHEP server parameters (§4.1.3).
type Config struct {
	// KeepAlivePeriod is the worker heartbeat interval (keep_alive_period).
	KeepAlivePeriod float64
	// WorkerTimeout is the silence duration after which a worker is
	// declared lost and its task reassigned (worker_timeout).
	WorkerTimeout float64
}

// DefaultConfig returns the paper's simulation parameters:
// keep_alive_period=60, worker_timeout=900.
func DefaultConfig() Config {
	return Config{KeepAlivePeriod: 60, WorkerTimeout: 900}
}

// Server is an XWHEP Desktop Grid server simulation. It implements
// middleware.Server.
type Server struct {
	eng       *sim.Engine
	cfg       Config
	listeners middleware.Listeners

	batches map[string]*batch
	// queue is the global FIFO of pending tasks; priority holds tasks
	// requeued after a detected failure and is served first.
	priority fifo
	queue    fifo

	attached map[*middleware.Worker]*workerState
	idle     *middleware.IdleSet

	reschedule bool

	// barren is dispatch's per-round scratch memo of batches with no
	// eligible work, reused across rounds to avoid per-tick allocation.
	barren map[string]bool

	// Registered op handlers: event scheduling on the hot path carries an
	// arena payload instead of allocating a closure.
	opArrive sim.Op // Payload.A = *xtask
	opDone   sim.Op // Payload.A = *exec: the execution's result arrives
	opDetect sim.Op // Payload.A = *exec: worker_timeout elapsed since loss
}

type batch struct {
	spec      middleware.Batch
	size      int
	arrived   int
	completed int
	assigned  int // tasks ever assigned (monotone)
	tasks     []*xtask
	// byID resolves a task by its spec ID: IDs are batch-unique but not
	// slice indexes once the batch is a partition subset or barrier
	// rebalances moved tasks in.
	byID map[int]*xtask
	done bool
	// dupCandidates counts running tasks without a cloud duplicate; used
	// to short-circuit Reschedule work scans.
	running int
	// freeQueued counts queued, never-assigned tasks — the tasks
	// TakeQueued may hand to a sibling pool partition.
	freeQueued int
}

type xtask struct {
	batch     *batch
	spec      bot.Task
	arrived   bool
	completed bool
	assigned  bool // ever assigned
	queued    bool
	// moved marks a task handed to a sibling partition (TakeQueued): it
	// stays in the slice for fifo lazy removal but no longer counts.
	moved bool
	execs map[*middleware.Worker]*exec
}

// cloudDups counts in-flight cloud executions of the task.
func (t *xtask) cloudDups() int {
	n := 0
	for w := range t.execs {
		if w.Cloud {
			n++
		}
	}
	return n
}

type exec struct {
	w      *middleware.Worker
	t      *xtask
	doneEv sim.Event
	dead   bool // worker left; awaiting timeout detection
}

type workerState struct {
	cur *xtask
}

// fifo is a task queue with lazy removal: dequeued/completed entries keep
// their slot and are skipped, so the common pop-from-head path is O(1).
type fifo struct {
	items []*xtask
	head  int
}

func (f *fifo) push(t *xtask) { f.items = append(f.items, t) }

// advance skips dead entries at the head and compacts when more than half
// the backing slice is consumed.
func (f *fifo) advance() {
	for f.head < len(f.items) && !f.items[f.head].queued {
		f.items[f.head] = nil
		f.head++
	}
	if f.head > 64 && f.head*2 > len(f.items) {
		f.items = append(f.items[:0], f.items[f.head:]...)
		f.head = 0
	}
}

// empty reports whether no queued entries remain (after head advance;
// mid-queue lazily-removed entries may linger but first() skips them).
func (f *fifo) empty() bool {
	f.advance()
	return f.head >= len(f.items)
}

// first returns the first queued task matching the filter, or nil.
func (f *fifo) first(match func(*xtask) bool) *xtask {
	f.advance()
	for i := f.head; i < len(f.items); i++ {
		t := f.items[i]
		if t != nil && t.queued && match(t) {
			return t
		}
	}
	return nil
}

// New creates an XWHEP server on the engine.
func New(eng *sim.Engine, cfg Config) *Server {
	if cfg.KeepAlivePeriod <= 0 {
		cfg.KeepAlivePeriod = 60
	}
	if cfg.WorkerTimeout <= 0 {
		cfg.WorkerTimeout = 900
	}
	s := &Server{
		eng:      eng,
		cfg:      cfg,
		batches:  map[string]*batch{},
		attached: map[*middleware.Worker]*workerState{},
		idle:     middleware.NewIdleSet(),
		barren:   map[string]bool{},
	}
	s.opArrive = eng.RegisterOp(func(p sim.Payload) { s.arrive(p.A.(*xtask)) })
	s.opDone = eng.RegisterOp(func(p sim.Payload) {
		ex := p.A.(*exec)
		s.complete(ex.w, ex.t)
	})
	s.opDetect = eng.RegisterOp(func(p sim.Payload) { s.detect(p.A.(*exec)) })
	return s
}

// MiddlewareName implements middleware.Server.
func (s *Server) MiddlewareName() string { return "XWHEP" }

// AddListener implements middleware.Server.
func (s *Server) AddListener(l middleware.Listener) { s.listeners = append(s.listeners, l) }

// SetReschedule implements middleware.Server.
func (s *Server) SetReschedule(enabled bool) { s.reschedule = enabled }

// Submit implements middleware.Server.
func (s *Server) Submit(b middleware.Batch) {
	if _, ok := s.batches[b.ID]; ok {
		panic(fmt.Sprintf("xwhep: duplicate batch %q", b.ID))
	}
	bt := &batch{spec: b, size: len(b.Tasks), byID: make(map[int]*xtask, len(b.Tasks))}
	s.batches[b.ID] = bt
	for _, spec := range b.Tasks {
		t := &xtask{batch: bt, spec: spec, execs: map[*middleware.Worker]*exec{}}
		bt.tasks = append(bt.tasks, t)
		bt.byID[spec.ID] = t
		s.eng.AfterOp(spec.Arrival, s.opArrive, sim.Payload{A: t})
	}
}

// arrive makes a task visible to the scheduler at its arrival time.
func (s *Server) arrive(t *xtask) {
	t.arrived = true
	t.batch.arrived++
	t.queued = true
	t.batch.freeQueued++
	s.queue.push(t)
	s.dispatch()
}

// WorkerJoin implements middleware.Server.
func (s *Server) WorkerJoin(w *middleware.Worker) {
	if _, ok := s.attached[w]; ok {
		return
	}
	s.attached[w] = &workerState{}
	s.idle.Add(w)
	s.dispatch()
}

// WorkerLeave implements middleware.Server. The computation in flight is
// lost; the server notices worker_timeout seconds after the last heartbeat
// and requeues the task with priority.
func (s *Server) WorkerLeave(w *middleware.Worker) {
	st, ok := s.attached[w]
	if !ok {
		return
	}
	delete(s.attached, w)
	s.idle.Remove(w)
	if st.cur == nil {
		return
	}
	t := st.cur
	ex := t.execs[w]
	if ex == nil {
		return
	}
	s.eng.Cancel(ex.doneEv)
	ex.dead = true
	// Failure detection: the last heartbeat arrived within KeepAlivePeriod
	// before the death; the server times out WorkerTimeout after it.
	detectAt := s.cfg.WorkerTimeout + s.cfg.KeepAlivePeriod/2
	s.eng.AfterOp(detectAt, s.opDetect, sim.Payload{A: ex})
}

// detect fires when the server times out a lost worker's heartbeats: the
// execution is abandoned and, if it was the task's last one, the task is
// requeued with priority.
func (s *Server) detect(ex *exec) {
	t := ex.t
	if t.completed || t.execs[ex.w] != ex {
		return
	}
	delete(t.execs, ex.w)
	if len(t.execs) == 0 && !t.queued {
		t.batch.running--
		t.queued = true
		s.priority.push(t)
		s.dispatch()
	}
}

// dispatch pairs idle workers with assignable work until no pair remains.
func (s *Server) dispatch() {
	for {
		hasQueued := !s.priority.empty() || !s.queue.empty()
		wantCloudDup := s.reschedule && s.idle.CloudCount() > 0 && s.anyDupCandidate()
		if !hasQueued && !wantCloudDup {
			return
		}
		// Memoize batches found to have no eligible work this round so a
		// fleet of same-batch cloud workers costs one scan, not N.
		clear(s.barren)
		barren := s.barren
		w := s.idle.Pick(func(w *middleware.Worker) bool {
			if barren[w.DedicatedBatch] {
				return false
			}
			if !hasQueued && !(w.Cloud && w.DedicatedBatch != "") {
				return false
			}
			if s.peekTask(w) == nil {
				barren[w.DedicatedBatch] = true
				return false
			}
			return true
		})
		if w == nil {
			return
		}
		t := s.peekTask(w)
		if t == nil {
			// Race cannot happen (single-threaded), but stay safe.
			s.idle.Add(w)
			return
		}
		s.assign(w, t)
	}
}

// anyDupCandidate reports whether a Reschedule duplicate could be created.
func (s *Server) anyDupCandidate() bool {
	for _, bt := range s.batches {
		if !bt.done && bt.running > 0 {
			return true
		}
	}
	return false
}

// peekTask returns the task the worker would execute, without dequeuing.
func (s *Server) peekTask(w *middleware.Worker) *xtask {
	match := func(t *xtask) bool {
		return w.DedicatedBatch == "" || t.batch.spec.ID == w.DedicatedBatch
	}
	if t := s.priority.first(match); t != nil {
		return t
	}
	if t := s.queue.first(match); t != nil {
		return t
	}
	if s.reschedule && w.Cloud && w.DedicatedBatch != "" {
		// Reschedule (§3.5): serve the cloud worker a duplicate of a
		// running task. Cloud workers stay busy until the batch completes
		// (Fig 5 commentary); least-duplicated tasks first, skipping
		// tasks this worker already executes.
		bt := s.batches[w.DedicatedBatch]
		if bt == nil {
			return nil
		}
		var best *xtask
		bestDups := 0
		for _, t := range bt.tasks {
			if t.completed || !t.arrived || t.queued || len(t.execs) == 0 || t.execs[w] != nil {
				continue
			}
			dups := t.cloudDups()
			if best == nil || dups < bestDups {
				best, bestDups = t, dups
				if dups == 0 {
					break
				}
			}
		}
		return best
	}
	return nil
}

func (s *Server) assign(w *middleware.Worker, t *xtask) {
	st := s.attached[w]
	if st == nil || st.cur != nil {
		panic("xwhep: assigning to busy or detached worker")
	}
	st.cur = t
	if t.queued && !t.assigned {
		t.batch.freeQueued--
	}
	if t.queued {
		t.queued = false
		t.batch.running++
	}
	if !t.assigned {
		t.assigned = true
		t.batch.assigned++
		s.listeners.TaskAssigned(t.batch.spec.ID, t.spec.ID, s.eng.Now())
	}
	ex := &exec{w: w, t: t}
	t.execs[w] = ex
	dur := t.spec.NOps / w.Power
	ex.doneEv = s.eng.AfterOp(dur, s.opDone, sim.Payload{A: ex})
}

// complete handles a result arriving from worker w for task t.
func (s *Server) complete(w *middleware.Worker, t *xtask) {
	if st := s.attached[w]; st != nil && st.cur == t {
		st.cur = nil
		s.idle.Add(w)
	}
	delete(t.execs, w)
	if !t.completed {
		s.finish(t, w)
	}
	s.dispatch()
}

// finish marks t completed, cancels duplicate executions and frees their
// workers. by is the worker whose result completed the task (nil for
// externally-merged results).
func (s *Server) finish(t *xtask, by *middleware.Worker) {
	bt := t.batch
	if !t.queued && t.assigned {
		bt.running--
	}
	if t.queued && !t.assigned {
		bt.freeQueued--
	}
	t.completed = true
	t.queued = false
	bt.completed++
	now := s.eng.Now()
	s.listeners.TaskCompleted(bt.spec.ID, t.spec.ID, now)
	s.listeners.NotifyExecutedBy(bt.spec.ID, t.spec.ID, by, now)
	// Iterate executions in worker-ID order: map order would leak
	// nondeterminism into the idle queue and break seed reproducibility.
	for _, w := range sortedExecWorkers(t.execs) {
		ex := t.execs[w]
		s.eng.Cancel(ex.doneEv)
		delete(t.execs, w)
		if ex.dead {
			continue
		}
		if st := s.attached[w]; st != nil && st.cur == t {
			st.cur = nil
			s.idle.Add(w)
		}
	}
	if bt.completed >= bt.size && !bt.done {
		bt.done = true
		s.listeners.BatchCompleted(bt.spec.ID, now)
	}
}

// MarkCompleted implements middleware.Server (result merging for Cloud
// Duplication). Tasks are resolved by spec ID, which stays correct when
// the batch is a partition subset whose IDs are not dense slice indexes.
func (s *Server) MarkCompleted(batchID string, taskID int) {
	bt := s.batches[batchID]
	if bt == nil {
		return
	}
	t := bt.byID[taskID]
	if t == nil || t.completed {
		return
	}
	s.finish(t, nil)
	s.dispatch()
}

// Progress implements middleware.Server.
func (s *Server) Progress(batchID string) middleware.Progress {
	bt := s.batches[batchID]
	if bt == nil {
		return middleware.Progress{}
	}
	running, queued := 0, 0
	for _, t := range bt.tasks {
		switch {
		case t.completed || !t.arrived:
		case len(t.execs) > 0:
			running++
		case t.queued:
			queued++
		}
	}
	return middleware.Progress{
		Size:         bt.size,
		Arrived:      bt.arrived,
		Completed:    bt.completed,
		EverAssigned: bt.assigned,
		Running:      running,
		Queued:       queued,
		Workers:      len(s.attached),
	}
}

// Done implements middleware.Server.
func (s *Server) Done(batchID string) bool {
	bt := s.batches[batchID]
	return bt != nil && bt.done
}

// Incomplete implements middleware.Server.
func (s *Server) Incomplete(batchID string) []bot.Task {
	bt := s.batches[batchID]
	if bt == nil {
		return nil
	}
	var out []bot.Task
	for _, t := range bt.tasks {
		if !t.completed && !t.moved {
			spec := t.spec
			spec.Arrival = 0
			out = append(out, spec)
		}
	}
	return out
}

// IdleWorkers implements middleware.TaskMover.
func (s *Server) IdleWorkers() int { return s.idle.Len() }

// QueuedFree implements middleware.TaskMover.
func (s *Server) QueuedFree(batchID string) int {
	bt := s.batches[batchID]
	if bt == nil {
		return 0
	}
	return bt.freeQueued
}

// TakeQueued implements middleware.TaskMover: it extracts up to n queued,
// never-assigned tasks — they carry no executions or heartbeat state, so
// removal is exact — and stops counting them toward the batch.
func (s *Server) TakeQueued(batchID string, n int) []bot.Task {
	bt := s.batches[batchID]
	if bt == nil || n <= 0 {
		return nil
	}
	var out []bot.Task
	for _, t := range bt.tasks {
		if len(out) >= n {
			break
		}
		if t.moved || t.completed || !t.arrived || !t.queued || t.assigned {
			continue
		}
		t.moved = true
		t.queued = false
		bt.freeQueued--
		bt.size--
		bt.arrived--
		delete(bt.byID, t.spec.ID)
		spec := t.spec
		spec.Arrival = 0
		out = append(out, spec)
	}
	return out
}

// AddTasks implements middleware.TaskMover: the specs join the batch as
// already-arrived queued tasks and dispatch immediately.
func (s *Server) AddTasks(batchID string, tasks []bot.Task) {
	bt := s.batches[batchID]
	if bt == nil || len(tasks) == 0 {
		return
	}
	for _, spec := range tasks {
		t := &xtask{batch: bt, spec: spec, execs: map[*middleware.Worker]*exec{}}
		t.arrived = true
		t.queued = true
		bt.tasks = append(bt.tasks, t)
		bt.byID[spec.ID] = t
		bt.size++
		bt.arrived++
		bt.freeQueued++
		s.queue.push(t)
	}
	s.dispatch()
}

var _ middleware.Server = (*Server)(nil)
var _ middleware.TaskMover = (*Server)(nil)

// WorkerBusy implements middleware.Server.
func (s *Server) WorkerBusy(w *middleware.Worker) bool {
	st := s.attached[w]
	return st != nil && st.cur != nil
}

// sortedExecWorkers returns the execution map's workers in ID order.
func sortedExecWorkers(execs map[*middleware.Worker]*exec) []*middleware.Worker {
	out := make([]*middleware.Worker, 0, len(execs))
	for w := range execs {
		out = append(out, w)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
