package xwhep

import (
	"testing"
	"testing/quick"

	"spequlos/internal/bot"
	"spequlos/internal/middleware"
	"spequlos/internal/sim"
)

type recorder struct {
	assigned  map[int]int
	completed map[int]int
	compTimes map[int]float64
	batchDone float64
}

func newRecorder() *recorder {
	return &recorder{assigned: map[int]int{}, completed: map[int]int{}, compTimes: map[int]float64{}, batchDone: -1}
}
func (r *recorder) TaskAssigned(b string, id int, at float64) { r.assigned[id]++ }
func (r *recorder) TaskCompleted(b string, id int, at float64) {
	r.completed[id]++
	r.compTimes[id] = at
}
func (r *recorder) BatchCompleted(b string, at float64) { r.batchDone = at }

func tasks(nops ...float64) []bot.Task {
	out := make([]bot.Task, len(nops))
	for i, n := range nops {
		out[i] = bot.Task{ID: i, NOps: n}
	}
	return out
}

func TestSequentialExecution(t *testing.T) {
	eng := sim.NewEngine()
	s := New(eng, DefaultConfig())
	rec := newRecorder()
	s.AddListener(rec)
	s.Submit(middleware.Batch{ID: "b", Tasks: tasks(100, 200, 300)})
	w := &middleware.Worker{ID: 0, Power: 1}
	s.WorkerJoin(w)
	eng.Run()
	if rec.batchDone != 600 {
		t.Fatalf("batch done at %v, want 600 (sequential 100+200+300)", rec.batchDone)
	}
	for id, want := range map[int]float64{0: 100, 1: 300, 2: 600} {
		if rec.compTimes[id] != want {
			t.Errorf("task %d completed at %v, want %v", id, rec.compTimes[id], want)
		}
	}
	if !s.Done("b") {
		t.Fatal("Done false after completion")
	}
}

func TestParallelWorkers(t *testing.T) {
	eng := sim.NewEngine()
	s := New(eng, DefaultConfig())
	rec := newRecorder()
	s.AddListener(rec)
	s.Submit(middleware.Batch{ID: "b", Tasks: tasks(100, 100, 100, 100)})
	for i := 0; i < 4; i++ {
		s.WorkerJoin(&middleware.Worker{ID: i, Power: 1})
	}
	eng.Run()
	if rec.batchDone != 100 {
		t.Fatalf("batch done at %v, want 100 (4 workers, 4 tasks)", rec.batchDone)
	}
}

func TestFailureDetectionAndReassignment(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultConfig() // detection = 900 + 60/2 after death
	s := New(eng, cfg)
	rec := newRecorder()
	s.AddListener(rec)
	s.Submit(middleware.Batch{ID: "b", Tasks: tasks(1000)})
	w1 := &middleware.Worker{ID: 1, Power: 1}
	w2 := &middleware.Worker{ID: 2, Power: 1}
	s.WorkerJoin(w1)
	eng.At(500, func() { s.WorkerLeave(w1) })
	eng.At(600, func() { s.WorkerJoin(w2) })
	eng.Run()
	// death 500 → detected 500+930=1430 → w2 runs 1000s → 2430.
	if rec.batchDone != 2430 {
		t.Fatalf("batch done at %v, want 2430", rec.batchDone)
	}
	if rec.completed[0] != 1 {
		t.Fatalf("task completed %d times", rec.completed[0])
	}
}

func TestRequeuedTaskHasPriority(t *testing.T) {
	eng := sim.NewEngine()
	s := New(eng, DefaultConfig())
	rec := newRecorder()
	s.AddListener(rec)
	// Task 0 will fail; tasks 1..3 queue behind.
	s.Submit(middleware.Batch{ID: "b", Tasks: tasks(5000, 100, 100, 100)})
	w1 := &middleware.Worker{ID: 1, Power: 1}
	s.WorkerJoin(w1) // takes task 0
	eng.At(100, func() { s.WorkerLeave(w1) })
	// A second worker arrives after the failure is detected; the requeued
	// task 0 must be served before the still-pending task 3.
	eng.At(2000, func() { s.WorkerJoin(&middleware.Worker{ID: 2, Power: 1}) })
	eng.RunUntil(2000 + 5000 + 1)
	if rec.compTimes[0] != 7000 {
		t.Fatalf("requeued task finished at %v, want 7000 (served first)", rec.compTimes[0])
	}
}

func TestProgressCounters(t *testing.T) {
	eng := sim.NewEngine()
	s := New(eng, DefaultConfig())
	s.Submit(middleware.Batch{ID: "b", Tasks: tasks(100, 100, 100)})
	s.WorkerJoin(&middleware.Worker{ID: 0, Power: 1})
	eng.RunUntil(50)
	p := s.Progress("b")
	if p.Size != 3 || p.Arrived != 3 || p.Running != 1 || p.Queued != 2 || p.EverAssigned != 1 {
		t.Fatalf("mid progress: %+v", p)
	}
	eng.Run()
	p = s.Progress("b")
	if p.Completed != 3 || p.Running != 0 || p.Queued != 0 || p.EverAssigned != 3 {
		t.Fatalf("final progress: %+v", p)
	}
	if got := s.Progress("nope"); got.Size != 0 {
		t.Fatalf("unknown batch progress: %+v", got)
	}
}

func TestDedicatedWorkerOnlyServesItsBatch(t *testing.T) {
	eng := sim.NewEngine()
	s := New(eng, DefaultConfig())
	rec := newRecorder()
	s.AddListener(rec)
	s.Submit(middleware.Batch{ID: "other", Tasks: tasks(100)})
	s.Submit(middleware.Batch{ID: "mine", Tasks: tasks(100)})
	cw := middleware.NewCloudWorker(0, 1, "mine")
	s.WorkerJoin(cw)
	eng.Run()
	if !s.Done("mine") {
		t.Fatal("dedicated batch not served")
	}
	if s.Done("other") {
		t.Fatal("dedicated worker served a foreign batch")
	}
}

func TestRescheduleDuplicatesRunningTask(t *testing.T) {
	eng := sim.NewEngine()
	s := New(eng, DefaultConfig())
	rec := newRecorder()
	s.AddListener(rec)
	s.SetReschedule(true)
	s.Submit(middleware.Batch{ID: "b", Tasks: tasks(10000)})
	slow := &middleware.Worker{ID: 1, Power: 1} // would finish at 10000
	s.WorkerJoin(slow)
	eng.At(100, func() {
		s.WorkerJoin(middleware.NewCloudWorker(0, 100, "b")) // duplicate: 100s
	})
	eng.Run()
	if rec.batchDone != 200 {
		t.Fatalf("batch done at %v, want 200 (cloud duplicate wins)", rec.batchDone)
	}
	if rec.completed[0] != 1 {
		t.Fatalf("task completed %d times, want 1", rec.completed[0])
	}
	// The slow worker must have been freed when the duplicate won.
	p := s.Progress("b")
	if p.Running != 0 {
		t.Fatalf("running = %d after completion", p.Running)
	}
}

func TestRescheduleOffNoDuplicates(t *testing.T) {
	eng := sim.NewEngine()
	s := New(eng, DefaultConfig())
	rec := newRecorder()
	s.AddListener(rec)
	s.Submit(middleware.Batch{ID: "b", Tasks: tasks(10000)})
	s.WorkerJoin(&middleware.Worker{ID: 1, Power: 1})
	eng.At(100, func() { s.WorkerJoin(middleware.NewCloudWorker(0, 100, "b")) })
	eng.Run()
	if rec.batchDone != 10000 {
		t.Fatalf("batch done at %v, want 10000 (no duplication without Reschedule)", rec.batchDone)
	}
}

func TestFirstResultWinsOverDuplicate(t *testing.T) {
	eng := sim.NewEngine()
	s := New(eng, DefaultConfig())
	rec := newRecorder()
	s.AddListener(rec)
	s.SetReschedule(true)
	s.Submit(middleware.Batch{ID: "b", Tasks: tasks(1000)})
	s.WorkerJoin(&middleware.Worker{ID: 1, Power: 1}) // finishes at 1000
	eng.At(950, func() {
		s.WorkerJoin(middleware.NewCloudWorker(0, 2, "b")) // would finish at 1450
	})
	eng.Run()
	if rec.batchDone != 1000 {
		t.Fatalf("batch done at %v, want 1000 (regular worker still wins)", rec.batchDone)
	}
	if rec.completed[0] != 1 {
		t.Fatalf("task completed %d times", rec.completed[0])
	}
}

func TestMarkCompleted(t *testing.T) {
	eng := sim.NewEngine()
	s := New(eng, DefaultConfig())
	rec := newRecorder()
	s.AddListener(rec)
	s.Submit(middleware.Batch{ID: "b", Tasks: tasks(1000, 1000)})
	s.WorkerJoin(&middleware.Worker{ID: 1, Power: 1})
	eng.At(500, func() {
		s.MarkCompleted("b", 0)  // external result for the running task
		s.MarkCompleted("b", 0)  // idempotent
		s.MarkCompleted("b", 99) // unknown id ignored
		s.MarkCompleted("zz", 0) // unknown batch ignored
	})
	eng.Run()
	// Task 0 completed externally at 500; worker freed, runs task 1 until
	// 1500.
	if rec.compTimes[0] != 500 || rec.compTimes[1] != 1500 {
		t.Fatalf("completion times %v", rec.compTimes)
	}
	if rec.batchDone != 1500 {
		t.Fatalf("batch done at %v", rec.batchDone)
	}
}

func TestIncompleteSnapshot(t *testing.T) {
	eng := sim.NewEngine()
	s := New(eng, DefaultConfig())
	s.Submit(middleware.Batch{ID: "b", Tasks: tasks(100, 5000, 5000)})
	s.WorkerJoin(&middleware.Worker{ID: 1, Power: 1})
	eng.RunUntil(200) // task 0 done, task 1 running, task 2 queued
	inc := s.Incomplete("b")
	if len(inc) != 2 {
		t.Fatalf("incomplete = %d tasks, want 2", len(inc))
	}
	for _, spec := range inc {
		if spec.Arrival != 0 {
			t.Fatal("incomplete snapshot must reset arrivals")
		}
	}
	if s.Incomplete("zz") != nil {
		t.Fatal("unknown batch should return nil")
	}
}

func TestArrivalSchedule(t *testing.T) {
	eng := sim.NewEngine()
	s := New(eng, DefaultConfig())
	rec := newRecorder()
	s.AddListener(rec)
	s.Submit(middleware.Batch{ID: "b", Tasks: []bot.Task{
		{ID: 0, NOps: 10, Arrival: 0},
		{ID: 1, NOps: 10, Arrival: 500},
	}})
	s.WorkerJoin(&middleware.Worker{ID: 1, Power: 1})
	eng.Run()
	if rec.compTimes[1] != 510 {
		t.Fatalf("late-arriving task completed at %v, want 510", rec.compTimes[1])
	}
}

func TestWorkerChurnStress(t *testing.T) {
	// Heavy random churn with a spare stable worker: every task must
	// complete exactly once, with no counter corruption.
	f := func(seed uint64) bool {
		eng := sim.NewEngine()
		s := New(eng, DefaultConfig())
		rec := newRecorder()
		s.AddListener(rec)
		r := sim.NewRNG(seed)
		n := 20
		specs := make([]bot.Task, n)
		for i := range specs {
			specs[i] = bot.Task{ID: i, NOps: 50 + r.Float64()*500}
		}
		s.Submit(middleware.Batch{ID: "b", Tasks: specs})
		stable := &middleware.Worker{ID: 999, Power: 1}
		s.WorkerJoin(stable)
		for i := 0; i < 5; i++ {
			w := &middleware.Worker{ID: i, Power: 0.5 + r.Float64()}
			at := r.Float64() * 200
			dur := 50 + r.Float64()*400
			eng.At(at, func() { s.WorkerJoin(w) })
			eng.At(at+dur, func() { s.WorkerLeave(w) })
		}
		eng.Run()
		if !s.Done("b") {
			return false
		}
		for i := 0; i < n; i++ {
			if rec.completed[i] != 1 {
				return false
			}
		}
		p := s.Progress("b")
		return p.Completed == n && p.Running == 0 && p.Queued == 0 && p.EverAssigned == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicateBatchPanics(t *testing.T) {
	eng := sim.NewEngine()
	s := New(eng, DefaultConfig())
	s.Submit(middleware.Batch{ID: "b", Tasks: tasks(1)})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Submit did not panic")
		}
	}()
	s.Submit(middleware.Batch{ID: "b", Tasks: tasks(1)})
}

func TestConfigDefaults(t *testing.T) {
	eng := sim.NewEngine()
	s := New(eng, Config{})
	if s.cfg.KeepAlivePeriod != 60 || s.cfg.WorkerTimeout != 900 {
		t.Fatalf("zero config not defaulted: %+v", s.cfg)
	}
	if s.MiddlewareName() != "XWHEP" {
		t.Fatal("name wrong")
	}
}
