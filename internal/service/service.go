// Package service is the deployable flavor of SpeQuloS: each module —
// Information, Credit System, Oracle, Scheduler — runs as an independent
// HTTP/JSON web service, so a deployment can split them across networks and
// firewalls exactly as the EDGI production setup does (§3.7: "Each module
// can be deployed on different networks ... communication between modules
// use web services"; Fig 8 shows the modules split and duplicated).
//
// The paper's prototype is Python + MySQL + libcloud; here each module
// wraps its counterpart from internal/core behind a REST API, with typed Go
// clients so the modules can talk to each other remotely. internal/cloud's
// Driver registry plays the role of libcloud.
package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
)

// writeJSON writes v with the given status code.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// writeErr writes a JSON error payload.
func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// maxBodyBytes caps request bodies across every module: the wire format's
// largest legitimate payload (a progress-batch reply for thousands of
// batches) is far under 1 MiB, and an unbounded decoder lets one client
// stream gigabytes into a module's memory.
const maxBodyBytes = 1 << 20

// readJSON decodes the request body into v, rejecting bodies over
// maxBodyBytes.
func readJSON(r *http.Request, v any) error {
	defer r.Body.Close()
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("service: bad request body: %w", err)
	}
	return nil
}

// pathTail returns the path component after the given prefix, or "".
func pathTail(path, prefix string) string {
	if !strings.HasPrefix(path, prefix) {
		return ""
	}
	rest := strings.TrimPrefix(path, prefix)
	return strings.Trim(rest, "/")
}

// apiError is the error payload shape shared by all services.
type apiError struct {
	Error string `json:"error"`
}

// decodeReply parses a response, turning API error payloads into Go errors.
func decodeReply(resp *http.Response, v any) error {
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		var e apiError
		if err := json.NewDecoder(resp.Body).Decode(&e); err == nil && e.Error != "" {
			return fmt.Errorf("service: %s", e.Error)
		}
		return fmt.Errorf("service: HTTP %d", resp.StatusCode)
	}
	if v == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(v)
}
