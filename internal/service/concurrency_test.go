package service

import (
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"spequlos/internal/cloud"
	"spequlos/internal/core"
)

// TestConcurrentStackTraffic hammers the stack the way a deployment is hit:
// the scheduler ticker stepping while external clients register batches,
// post samples, poll statuses and list instances — all concurrently. The
// race detector is the primary assertion; the final state must also be
// coherent (no double-launched fleets).
func TestConcurrentStackTraffic(t *testing.T) {
	dg := &scriptedDG{size: 100}
	ec2 := cloud.NewMockEC2()
	stack := NewTestStack(StackConfig{
		Strategy: core.DefaultStrategy(),
		Registry: cloud.NewRegistry(ec2),
		DG:       dg,
	})
	defer stack.Close()

	var nowNS atomic.Int64
	base := time.Unix(1_700_000_000, 0)
	clock := func() time.Time { return base.Add(time.Duration(nowNS.Load())) }
	stack.SetClock(clock)
	ec2.SetClock(clock)

	stack.CreditClient.Deposit("u", 10_000)
	for i := 0; i < 3; i++ {
		if err := stack.Scheduler.RegisterQoS(QoSRequest{
			User: "u", BatchID: fmt.Sprintf("b%d", i), EnvKey: "e", Size: 100,
			Credits: 100, Provider: "ec2", Image: "img",
		}); err != nil {
			t.Fatal(err)
		}
	}
	dg.set(95, 100)

	var wg sync.WaitGroup
	run := func(fn func(i int)) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				fn(i)
			}
		}()
	}
	// The ticker role: stepping while advancing the clock.
	run(func(i int) {
		nowNS.Add(int64(2 * time.Second))
		stack.Scheduler.Step() //nolint:errcheck
	})
	// A second ticker (a replicated scheduler instance, Fig 8).
	run(func(i int) { stack.Scheduler.Step() }) //nolint:errcheck
	// External clients.
	run(func(i int) { stack.Scheduler.Status("b0") })     //nolint:errcheck
	run(func(i int) { stack.Scheduler.Instances() })      //nolint:errcheck
	run(func(i int) { stack.InfoClient.Status("b1") })    //nolint:errcheck
	run(func(i int) { stack.InfoClient.Stats() })         //nolint:errcheck
	run(func(i int) { stack.CreditClient.OrderOf("b2") }) //nolint:errcheck
	run(func(i int) {
		stack.InfoClient.AddSample("b2", core.Sample{T: float64(i), Completed: i}) //nolint:errcheck
	})
	run(func(i int) {
		resp, err := http.Get(stack.SchedulerAddr + "/qos/b1")
		if err == nil {
			resp.Body.Close()
		}
	})
	wg.Wait()

	// Coherence: every started batch launched exactly one fleet, and every
	// instance the scheduler tracks exists at the provider.
	for i := 0; i < 3; i++ {
		st, err := stack.Scheduler.Status(fmt.Sprintf("b%d", i))
		if err != nil {
			t.Fatal(err)
		}
		if st.Started && len(st.Instances) == 0 {
			t.Fatalf("batch %d started with no instances", i)
		}
		if !st.Started && st.TriggeredAt >= 0 {
			t.Fatalf("batch %d trigger recorded without start: %+v", i, st)
		}
	}
	tracked := stack.Scheduler.Instances()
	provider := ec2.List()
	if len(tracked) != len(provider) {
		t.Fatalf("scheduler tracks %d instances, provider has %d", len(tracked), len(provider))
	}
}
