package service_test

import (
	"fmt"
	"time"

	"spequlos/internal/core"
	"spequlos/internal/middleware"
	"spequlos/internal/service"
)

// exampleDG is a minimal Desktop Grid gateway: a fixed batch at 50%
// completion. Production adapters answer these calls from a BOINC or XWHEP
// status API.
type exampleDG struct{}

func (exampleDG) Progress(string) (middleware.Progress, error) {
	return middleware.Progress{Size: 100, Arrived: 100, Completed: 50,
		EverAssigned: 100, Running: 50}, nil
}
func (exampleDG) WorkerURL() string { return "http://dg.example:4321" }

// ExampleNewTestStack deploys the four SpeQuloS modules — Information,
// Credit System, Oracle, Scheduler — each on its own loopback HTTP server,
// registers a batch for QoS support, and runs one monitor iteration.
func ExampleNewTestStack() {
	stack := service.NewTestStack(service.StackConfig{
		Strategy: core.DefaultStrategy(),
		DG:       exampleDG{},
	})
	defer stack.Close()
	epoch := time.Unix(0, 0).UTC()
	stack.SetClock(func() time.Time { return epoch })

	if err := stack.CreditClient.Deposit("alice", 100); err != nil {
		fmt.Println(err)
		return
	}
	if err := stack.Scheduler.RegisterQoS(service.QoSRequest{
		User: "alice", BatchID: "b1", EnvKey: "XWHEP/seti/SMALL",
		Size: 100, Credits: 60,
	}); err != nil {
		fmt.Println(err)
		return
	}
	if err := stack.Scheduler.Step(); err != nil {
		fmt.Println(err)
		return
	}

	st, _ := stack.Scheduler.Status("b1")
	info, _ := stack.InfoClient.Status("b1")
	fmt.Printf("batch=%s finalized=%v\n", st.BatchID, st.Finalized)
	fmt.Printf("completed fraction observed: %.2f\n", info.CompletedFraction)
	// Output:
	// batch=b1 finalized=false
	// completed fraction observed: 0.50
}
