package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"

	"spequlos/internal/core"
)

// CreditService exposes the Credit System over HTTP (§3.3):
//
//	POST /deposit            {user, credits}
//	POST /orders             {user, batch_id, credits}
//	POST /orders/{id}/bill   {credits} → {billed, exhausted}
//	POST /orders/{id}/pay    → {refund}
//	GET  /orders/{id}
//	GET  /accounts/{user}
//	GET  /has-credits/{id}   → {has_credits}
type CreditService struct {
	credits *core.CreditSystem
}

// NewCreditService wraps a credit system.
func NewCreditService(cs *core.CreditSystem) *CreditService {
	return &CreditService{credits: cs}
}

// Credits exposes the wrapped system (for co-located modules).
func (s *CreditService) Credits() *core.CreditSystem { return s.credits }

// DepositRequest funds a user account.
type DepositRequest struct {
	User    string  `json:"user"`
	Credits float64 `json:"credits"`
}

// OrderRequest provisions credits for a batch.
type OrderRequest struct {
	User    string  `json:"user"`
	BatchID string  `json:"batch_id"`
	Credits float64 `json:"credits"`
}

// BillRequest charges cloud usage to a batch order.
type BillRequest struct {
	Credits float64 `json:"credits"`
}

// BillReply reports the outcome of a billing call.
type BillReply struct {
	Billed    float64 `json:"billed"`
	Exhausted bool    `json:"exhausted"`
}

// PayReply reports the refund of a closed order.
type PayReply struct {
	Refund float64 `json:"refund"`
}

// ServeHTTP implements http.Handler.
func (s *CreditService) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.Method == http.MethodPost && r.URL.Path == "/deposit":
		var req DepositRequest
		if err := readJSON(r, &req); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		if err := s.credits.Deposit(req.User, req.Credits); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusOK, s.creditsAccount(req.User))

	case r.Method == http.MethodPost && r.URL.Path == "/orders":
		var req OrderRequest
		if err := readJSON(r, &req); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		if err := s.credits.OrderQoS(req.User, req.BatchID, req.Credits); err != nil {
			writeErr(w, http.StatusConflict, err)
			return
		}
		o, _ := s.credits.OrderOf(req.BatchID)
		writeJSON(w, http.StatusCreated, o)

	case r.Method == http.MethodPost && segmentsMatch(r.URL.Path, "orders", "bill"):
		id := middleSegment(r.URL.Path, "orders")
		var req BillRequest
		if err := readJSON(r, &req); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		billed, exhausted, err := s.credits.Bill(id, req.Credits)
		if err != nil {
			writeErr(w, http.StatusConflict, err)
			return
		}
		writeJSON(w, http.StatusOK, BillReply{Billed: billed, Exhausted: exhausted})

	case r.Method == http.MethodPost && segmentsMatch(r.URL.Path, "orders", "pay"):
		id := middleSegment(r.URL.Path, "orders")
		refund, err := s.credits.Pay(id)
		if err != nil {
			writeErr(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, PayReply{Refund: refund})

	case r.Method == http.MethodGet && pathTail(r.URL.Path, "/orders/") != "":
		id := pathTail(r.URL.Path, "/orders/")
		o, ok := s.credits.OrderOf(id)
		if !ok {
			writeErr(w, http.StatusNotFound, fmt.Errorf("no order for batch %q", id))
			return
		}
		writeJSON(w, http.StatusOK, o)

	case r.Method == http.MethodGet && pathTail(r.URL.Path, "/accounts/") != "":
		writeJSON(w, http.StatusOK, s.creditsAccount(pathTail(r.URL.Path, "/accounts/")))

	case r.Method == http.MethodGet && pathTail(r.URL.Path, "/has-credits/") != "":
		id := pathTail(r.URL.Path, "/has-credits/")
		writeJSON(w, http.StatusOK, map[string]bool{"has_credits": s.credits.HasCredits(id)})

	default:
		writeErr(w, http.StatusNotFound, fmt.Errorf("no route %s %s", r.Method, r.URL.Path))
	}
}

func (s *CreditService) creditsAccount(user string) core.Account {
	return s.credits.AccountOf(user)
}

func segmentsMatch(path, first, last string) bool {
	parts := splitSegments(path)
	return len(parts) == 3 && parts[0] == first && parts[2] == last
}

func middleSegment(path, first string) string {
	parts := splitSegments(path)
	if len(parts) == 3 && parts[0] == first {
		return parts[1]
	}
	return ""
}

// CreditClient is the typed client of the Credit service.
type CreditClient struct {
	BaseURL string
	HTTP    *http.Client
}

// NewCreditClient builds a client for the given base URL.
func NewCreditClient(baseURL string) *CreditClient {
	return &CreditClient{BaseURL: baseURL, HTTP: http.DefaultClient}
}

func (c *CreditClient) post(path string, body, out any) error {
	buf, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := c.HTTP.Post(c.BaseURL+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		return err
	}
	return decodeReply(resp, out)
}

// Deposit funds a user account.
func (c *CreditClient) Deposit(user string, credits float64) error {
	return c.post("/deposit", DepositRequest{User: user, Credits: credits}, nil)
}

// Order provisions credits for a batch.
func (c *CreditClient) Order(user, batchID string, credits float64) error {
	return c.post("/orders", OrderRequest{User: user, BatchID: batchID, Credits: credits}, nil)
}

// Bill charges credits against a batch order.
func (c *CreditClient) Bill(batchID string, credits float64) (BillReply, error) {
	var out BillReply
	err := c.post("/orders/"+batchID+"/bill", BillRequest{Credits: credits}, &out)
	return out, err
}

// Pay closes an order, returning the refund.
func (c *CreditClient) Pay(batchID string) (float64, error) {
	var out PayReply
	err := c.post("/orders/"+batchID+"/pay", struct{}{}, &out)
	return out.Refund, err
}

// HasCredits reports whether a batch has an open, funded order.
func (c *CreditClient) HasCredits(batchID string) (bool, error) {
	resp, err := c.HTTP.Get(c.BaseURL + "/has-credits/" + batchID)
	if err != nil {
		return false, err
	}
	var out map[string]bool
	if err := decodeReply(resp, &out); err != nil {
		return false, err
	}
	return out["has_credits"], nil
}

// Account fetches a user's account.
func (c *CreditClient) Account(user string) (core.Account, error) {
	resp, err := c.HTTP.Get(c.BaseURL + "/accounts/" + user)
	if err != nil {
		return core.Account{}, err
	}
	var a core.Account
	err = decodeReply(resp, &a)
	return a, err
}

// OrderOf fetches a batch's order.
func (c *CreditClient) OrderOf(batchID string) (core.Order, error) {
	resp, err := c.HTTP.Get(c.BaseURL + "/orders/" + batchID)
	if err != nil {
		return core.Order{}, err
	}
	var o core.Order
	err = decodeReply(resp, &o)
	return o, err
}
