package service

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"spequlos/internal/core"
)

// gatedEcho wraps a trivial 200 handler behind a Gate with the given
// limits, returning the manager and the server.
func gatedEcho(t *testing.T, limits RateLimits) (*KeyManager, *httptest.Server) {
	t.Helper()
	km := NewKeyManager(limits)
	srv := httptest.NewServer(km.Gate(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{
			"user": r.Header.Get(AuthUserHeader),
			"tier": r.Header.Get(AuthTierHeader),
		})
	})))
	t.Cleanup(srv.Close)
	return km, srv
}

// doKeyed issues a request with an API key attached via the given header
// style ("x-api-key", "bearer" or "" for none).
func doKeyed(t *testing.T, method, url, key, style string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(method, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	switch style {
	case "x-api-key":
		req.Header.Set(APIKeyHeader, key)
	case "bearer":
		req.Header.Set("Authorization", "Bearer "+key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestGateNegativePaths drives the auth gate through its rejection surface:
// every outcome must carry the right status and a JSON error payload, and
// the health probe stays open.
func TestGateNegativePaths(t *testing.T) {
	km, srv := gatedEcho(t, nil)
	good := km.Issue("alice", core.TierPremium)
	revoked := km.Issue("mallory", core.TierFree)
	km.Revoke(revoked.Key)

	cases := []struct {
		name  string
		key   string
		style string
		path  string
		want  int
	}{
		{"missing key", "", "", "/anything", http.StatusUnauthorized},
		{"unknown key", "sk-deadbeef", "x-api-key", "/anything", http.StatusUnauthorized},
		{"unknown bearer", "sk-deadbeef", "bearer", "/anything", http.StatusUnauthorized},
		{"revoked key", revoked.Key, "x-api-key", "/anything", http.StatusUnauthorized},
		{"good key", good.Key, "x-api-key", "/anything", http.StatusOK},
		{"good bearer", good.Key, "bearer", "/anything", http.StatusOK},
		{"healthz needs no key", "", "", "/healthz", http.StatusOK},
		{"metrics with key", good.Key, "x-api-key", MetricsPath, http.StatusOK},
		{"metrics without key", "", "", MetricsPath, http.StatusUnauthorized},
		{"metrics with revoked key", revoked.Key, "x-api-key", MetricsPath, http.StatusUnauthorized},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := doKeyed(t, http.MethodGet, srv.URL+tc.path, tc.key, tc.style)
			defer resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Fatalf("status %d, want %d", resp.StatusCode, tc.want)
			}
			body, _ := io.ReadAll(resp.Body)
			if !json.Valid(body) {
				t.Fatalf("non-JSON body %q", body)
			}
			if tc.want == http.StatusUnauthorized && !strings.Contains(string(body), "error") {
				t.Fatalf("401 without error payload: %q", body)
			}
		})
	}

	if m := km.Metrics(revoked.Key); m.Denied == 0 {
		t.Errorf("revoked key's denials not counted: %+v", m)
	}
	if g := km.GateStats(); g.Unauthorized == 0 || g.Allowed == 0 {
		t.Errorf("gate counters not moving: %+v", g)
	}
}

// TestGateStampsTrustedHeaders pins the anti-spoofing contract: the gate
// strips client-supplied auth-context headers and stamps the key's own
// identity, so a free key cannot smuggle an enterprise tier header past it.
func TestGateStampsTrustedHeaders(t *testing.T) {
	km, srv := gatedEcho(t, nil)
	k := km.Issue("eve", core.TierFree)

	req, err := http.NewRequest(http.MethodGet, srv.URL+"/x", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(APIKeyHeader, k.Key)
	req.Header.Set(AuthTierHeader, string(core.TierEnterprise)) // spoof attempt
	req.Header.Set(AuthUserHeader, "root")                      // spoof attempt
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var echo map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&echo); err != nil {
		t.Fatal(err)
	}
	if echo["tier"] != string(core.TierFree) || echo["user"] != "eve" {
		t.Fatalf("spoofed headers reached the handler: %+v", echo)
	}
}

// TestBurstThenSustainRecovery pins the token bucket on a manual clock: a
// client may burst to the bucket capacity, then 429s with a Retry-After
// until the refill rate readmits it.
func TestBurstThenSustainRecovery(t *testing.T) {
	limits := RateLimits{core.TierFree: {PerSec: 2, Burst: 4}}
	km, srv := gatedEcho(t, limits)
	now := time.Unix(1000, 0)
	km.Now = func() time.Time { return now }
	k := km.Issue("burst", core.TierFree)

	get := func() *http.Response { return doKeyed(t, http.MethodGet, srv.URL+"/x", k.Key, "x-api-key") }

	// Burst phase: exactly Burst requests are admitted, the next is 429.
	for i := 0; i < 4; i++ {
		resp := get()
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("burst request %d: status %d", i, resp.StatusCode)
		}
	}
	resp := get()
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("burst overflow: status %d, want 429", resp.StatusCode)
	}
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 1 {
		t.Fatalf("Retry-After %q, want a positive integer", resp.Header.Get("Retry-After"))
	}

	// Sustain phase: half a second refills one token at 2/s.
	now = now.Add(500 * time.Millisecond)
	resp = get()
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-refill request: status %d, want 200", resp.StatusCode)
	}
	resp = get()
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second post-refill request: status %d, want 429 (only one token refilled)", resp.StatusCode)
	}

	// Full recovery: a long quiet period refills to Burst, not beyond.
	now = now.Add(time.Hour)
	admitted := 0
	for i := 0; i < 10; i++ {
		resp := get()
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			admitted++
		}
	}
	if admitted != 4 {
		t.Fatalf("after recovery %d requests admitted, want exactly Burst=4", admitted)
	}
}

// TestConcurrentClientsSharedKey hammers one key from many goroutines: the
// gate must stay race-free and every request must resolve to exactly one of
// admitted or throttled, with the admitted count capped by the bucket.
func TestConcurrentClientsSharedKey(t *testing.T) {
	limits := RateLimits{core.TierFree: {PerSec: 0.001, Burst: 10}}
	km, srv := gatedEcho(t, limits)
	now := time.Unix(2000, 0)
	km.Now = func() time.Time { return now } // frozen: no refill during the test
	k := km.Issue("shared", core.TierFree)

	const goroutines, each = 8, 25
	var ok, throttled int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				resp := doKeyed(t, http.MethodGet, srv.URL+"/x", k.Key, "x-api-key")
				io.Copy(io.Discard, resp.Body) //nolint:errcheck
				resp.Body.Close()
				mu.Lock()
				switch resp.StatusCode {
				case http.StatusOK:
					ok++
				case http.StatusTooManyRequests:
					throttled++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	if total := ok + throttled; total != goroutines*each {
		t.Fatalf("%d requests resolved, want %d (some answered neither 200 nor 429)", total, goroutines*each)
	}
	if ok != 10 {
		t.Errorf("%d admitted on a frozen clock, want exactly Burst=10", ok)
	}
	m := km.Metrics(k.Key)
	if m.Requests != goroutines*each || m.Throttled != throttled {
		t.Errorf("metrics drifted from observed outcomes: %+v (throttled %d)", m, throttled)
	}
}

// TestUnlimitedKeyBypassesBuckets pins the operator/service-mesh exemption.
func TestUnlimitedKeyBypassesBuckets(t *testing.T) {
	limits := RateLimits{core.TierEnterprise: {PerSec: 0.001, Burst: 1}}
	km, srv := gatedEcho(t, limits)
	km.Add(APIKey{Key: "sk-svc", User: "daemon", Tier: core.TierEnterprise, Unlimited: true})
	for i := 0; i < 20; i++ {
		resp := doKeyed(t, http.MethodGet, srv.URL+"/x", "sk-svc", "x-api-key")
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("unlimited key throttled on request %d: status %d", i, resp.StatusCode)
		}
	}
}

// TestMetricsPathSpendsNoToken pins the introspection contract: operators
// polling /authz/metrics must not consume tenant quota.
func TestMetricsPathSpendsNoToken(t *testing.T) {
	limits := RateLimits{core.TierFree: {PerSec: 0.001, Burst: 2}}
	km, srv := gatedEcho(t, limits)
	now := time.Unix(3000, 0)
	km.Now = func() time.Time { return now }
	k := km.Issue("watcher", core.TierFree)

	for i := 0; i < 10; i++ {
		resp := doKeyed(t, http.MethodGet, srv.URL+MetricsPath, k.Key, "x-api-key")
		var reply authzReply
		if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("metrics poll %d: status %d", i, resp.StatusCode)
		}
	}
	// The bucket is untouched: both tokens still admit real requests.
	for i := 0; i < 2; i++ {
		resp := doKeyed(t, http.MethodGet, srv.URL+"/x", k.Key, "x-api-key")
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d after metrics polls: status %d, want 200", i, resp.StatusCode)
		}
	}
}

// TestLimitsFromPolicy pins the weight-to-rate derivation: the HTTP budget
// splits like the cloud slots, enterprise ahead of premium ahead of free,
// with two seconds of burst headroom each.
func TestLimitsFromPolicy(t *testing.T) {
	lim := LimitsFromPolicy(core.DefaultTierPolicy(), 100)
	e, p, f := lim[core.TierEnterprise], lim[core.TierPremium], lim[core.TierFree]
	if !(e.PerSec > p.PerSec && p.PerSec > f.PerSec) {
		t.Fatalf("rates not ordered by weight: %+v", lim)
	}
	if got := e.PerSec + p.PerSec + f.PerSec; got < 99.9 || got > 100.1 {
		t.Errorf("rates sum to %g, want ~100", got)
	}
	if e.Burst < int(e.PerSec) {
		t.Errorf("burst %d below one second of rate %g", e.Burst, e.PerSec)
	}

	// Nil policy: equal shares, still positive.
	eq := LimitsFromPolicy(nil, 30)
	for _, tier := range core.AllTiers() {
		if eq[tier].PerSec != 10 {
			t.Fatalf("nil-policy share %+v, want 10 req/s each", eq)
		}
	}
}

// TestGateBlocksStateMutation is the regression pin for the PR's core
// security property: a request rejected by the gate — 401 or 429 — must
// leave the Scheduler and the Credit System exactly as it found them. A
// rejected QoS order must not register a batch, place a credit order, or
// touch an account.
func TestGateBlocksStateMutation(t *testing.T) {
	st := NewTestStack(StackConfig{Strategy: core.DefaultStrategy(), DG: &scriptedDG{size: 10}})
	defer st.Close()

	limits := RateLimits{core.TierPremium: {PerSec: 0.001, Burst: 1}}
	km := NewKeyManager(limits)
	now := time.Unix(4000, 0)
	km.Now = func() time.Time { return now }
	k := km.Issue("tenant", core.TierPremium)

	// The gated front door: one socket, all modules behind the gate.
	front := httptest.NewServer(km.Gate(Mux(st.Information, st.Credit, st.Oracle, st.Scheduler)))
	defer front.Close()

	credits := st.Credit.Credits()
	if err := credits.Deposit("tenant", 500); err != nil {
		t.Fatal(err)
	}
	balanceBefore := credits.AccountOf("tenant").Balance

	orderBody := func(id string) string {
		return fmt.Sprintf(`{"user":"tenant","batch_id":%q,"env_key":"e","size":10,"credits":50,"tier":"premium","provider":"ec2","image":"img"}`, id)
	}
	post := func(id, key string) *http.Response {
		req, err := http.NewRequest(http.MethodPost, front.URL+"/scheduler/qos", strings.NewReader(orderBody(id)))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		if key != "" {
			req.Header.Set(APIKeyHeader, key)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		return resp
	}
	assertUntouched := func(label, id string) {
		t.Helper()
		if _, err := st.Scheduler.Status(id); err == nil {
			t.Errorf("%s: batch %s registered in the Scheduler", label, id)
		}
		if _, ok := credits.OrderOf(id); ok {
			t.Errorf("%s: credit order placed for %s", label, id)
		}
		if bal := credits.AccountOf("tenant").Balance; bal != balanceBefore {
			t.Errorf("%s: balance moved %g → %g", label, balanceBefore, bal)
		}
	}

	// Unauthenticated: 401, no state.
	if resp := post("b-unauth", ""); resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unauthenticated order: status %d, want 401", resp.StatusCode)
	}
	assertUntouched("401", "b-unauth")

	// Spend the single token, then a throttled order: 429, no state.
	if resp := doKeyed(t, http.MethodGet, front.URL+"/healthz", "", ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
	if resp := post("b-spend", k.Key); resp.StatusCode != http.StatusCreated {
		t.Fatalf("token-spending order: status %d, want 201", resp.StatusCode)
	}
	if resp := post("b-throttled", k.Key); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("throttled order: status %d, want 429", resp.StatusCode)
	}
	// The admitted order moved state; rebase and verify the 429 added nothing.
	balanceBefore = credits.AccountOf("tenant").Balance
	assertUntouched("429", "b-throttled")
	if _, err := st.Scheduler.Status("b-spend"); err != nil {
		t.Errorf("admitted order b-spend missing from the Scheduler: %v", err)
	}
}

// TestQoSTierEscalationForbidden pins the tier-binding rule end to end
// through the gate: a key may order at or below its own tier, never above.
func TestQoSTierEscalationForbidden(t *testing.T) {
	st := NewTestStack(StackConfig{Strategy: core.DefaultStrategy(), DG: &scriptedDG{size: 10}})
	defer st.Close()
	km := NewKeyManager(nil)
	front := httptest.NewServer(km.Gate(Mux(st.Information, st.Credit, st.Oracle, st.Scheduler)))
	defer front.Close()
	if err := st.Credit.Credits().Deposit("climber", 1000); err != nil {
		t.Fatal(err)
	}
	k := km.Issue("climber", core.TierFree)

	post := func(id, tier string) int {
		body := fmt.Sprintf(`{"batch_id":%q,"env_key":"e","size":10,"credits":10,"tier":%q,"provider":"ec2","image":"img"}`, id, tier)
		req, err := http.NewRequest(http.MethodPost, front.URL+"/scheduler/qos", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set(APIKeyHeader, k.Key)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		return resp.StatusCode
	}

	if code := post("b-esc", "enterprise"); code != http.StatusForbidden {
		t.Errorf("free key ordered enterprise service: status %d, want 403", code)
	}
	if _, err := st.Scheduler.Status("b-esc"); err == nil {
		t.Error("escalated order registered a batch")
	}
	if code := post("b-own", "free"); code != http.StatusCreated {
		t.Errorf("free key ordering free service: status %d, want 201", code)
	}
	// An empty body tier inherits the key's tier and lands as free.
	if code := post("b-inherit", ""); code != http.StatusCreated {
		t.Errorf("tierless order under a free key: status %d, want 201", code)
	}
	stt, err := st.Scheduler.Status("b-inherit")
	if err != nil {
		t.Fatal(err)
	}
	if stt.Tier != string(core.TierFree) {
		t.Errorf("inherited tier %q, want free", stt.Tier)
	}
}
