package service

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"spequlos/internal/cloud"
	"spequlos/internal/core"
	"spequlos/internal/middleware"
)

// scriptedDG is a DGGateway whose progress advances under test control.
type scriptedDG struct {
	mu       sync.Mutex
	size     int
	done     int
	assigned int
}

func (d *scriptedDG) set(done, assigned int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.done, d.assigned = done, assigned
}

func (d *scriptedDG) Progress(batchID string) (middleware.Progress, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return middleware.Progress{
		Size: d.size, Arrived: d.size, Completed: d.done,
		EverAssigned: d.assigned, Running: d.size - d.done,
	}, nil
}

func (d *scriptedDG) WorkerURL() string { return "http://dg.example:4321" }

func TestInformationServiceHTTP(t *testing.T) {
	svc := NewInformationService(core.NewInformation())
	srv := httptest.NewServer(svc)
	defer srv.Close()
	c := NewInformationClient(srv.URL)

	if err := c.Track(TrackRequest{BatchID: "b1", EnvKey: "e", Size: 100}); err != nil {
		t.Fatal(err)
	}
	if err := c.Track(TrackRequest{BatchID: "b1", EnvKey: "e", Size: 100}); err == nil {
		t.Fatal("duplicate track accepted")
	}
	if err := c.AddSample("b1", core.Sample{T: 60, Completed: 50, Assigned: 100}); err != nil {
		t.Fatal(err)
	}
	st, err := c.Status("b1")
	if err != nil {
		t.Fatal(err)
	}
	if st.CompletedFraction != 0.5 || st.AssignedFraction != 1 || st.Samples != 1 {
		t.Fatalf("status: %+v", st)
	}
	if st.TC50 != 60 {
		t.Fatalf("tc50 = %v, want 60", st.TC50)
	}
	ids, err := c.List()
	if err != nil || len(ids) != 1 || ids[0] != "b1" {
		t.Fatalf("list: %v %v", ids, err)
	}
	if _, err := c.Status("nope"); err == nil {
		t.Fatal("unknown batch status accepted")
	}
	if err := c.AddSample("nope", core.Sample{}); err == nil {
		t.Fatal("sample for unknown batch accepted")
	}
}

func TestInformationServiceRejectsBadInput(t *testing.T) {
	svc := NewInformationService(core.NewInformation())
	srv := httptest.NewServer(svc)
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/batches", "application/json", strings.NewReader(`{"size":0}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("zero size accepted: %d", resp.StatusCode)
	}
	resp, err = http.Post(srv.URL+"/batches", "application/json", strings.NewReader(`{bogus`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON accepted: %d", resp.StatusCode)
	}
}

func TestCreditServiceHTTP(t *testing.T) {
	svc := NewCreditService(core.NewCreditSystem())
	srv := httptest.NewServer(svc)
	defer srv.Close()
	c := NewCreditClient(srv.URL)

	if err := c.Deposit("alice", 100); err != nil {
		t.Fatal(err)
	}
	if err := c.Order("alice", "b1", 60); err != nil {
		t.Fatal(err)
	}
	if err := c.Order("alice", "b1", 60); err == nil {
		t.Fatal("duplicate order accepted")
	}
	has, err := c.HasCredits("b1")
	if err != nil || !has {
		t.Fatalf("has credits: %v %v", has, err)
	}
	reply, err := c.Bill("b1", 25)
	if err != nil || reply.Billed != 25 || reply.Exhausted {
		t.Fatalf("bill: %+v %v", reply, err)
	}
	o, err := c.OrderOf("b1")
	if err != nil || o.Billed != 25 {
		t.Fatalf("order: %+v %v", o, err)
	}
	refund, err := c.Pay("b1")
	if err != nil || refund != 35 {
		t.Fatalf("pay: %v %v", refund, err)
	}
	a, err := c.Account("alice")
	if err != nil || a.Balance != 75 || a.Spent != 25 {
		t.Fatalf("account: %+v %v", a, err)
	}
}

func TestOracleServiceHTTP(t *testing.T) {
	infoSvc := NewInformationService(core.NewInformation())
	infoSrv := httptest.NewServer(infoSvc)
	defer infoSrv.Close()
	infoClient := NewInformationClient(infoSrv.URL)

	oracleSvc := NewOracleService(core.NewOracle(core.DefaultStrategy()), infoClient)
	oracleSrv := httptest.NewServer(oracleSvc)
	defer oracleSrv.Close()
	c := NewOracleClient(oracleSrv.URL)

	infoClient.Track(TrackRequest{BatchID: "b", EnvKey: "env", Size: 100})
	if _, err := c.Predict("b"); err == nil {
		t.Fatal("prediction without progress accepted")
	}
	infoClient.AddSample("b", core.Sample{T: 500, Completed: 50, Assigned: 100})
	p, err := c.Predict("b")
	if err != nil {
		t.Fatal(err)
	}
	if p.PredictedTime != 1000 {
		t.Fatalf("prediction = %v, want 1000", p.PredictedTime)
	}

	// Below the 90% trigger: no start.
	plan, err := c.Plan("b", 10)
	if err != nil || plan.Start {
		t.Fatalf("plan fired early: %+v %v", plan, err)
	}
	infoClient.AddSample("b", core.Sample{T: 900, Completed: 90, Assigned: 100})
	plan, err = c.Plan("b", 10)
	if err != nil || !plan.Start || plan.Workers < 1 {
		t.Fatalf("plan: %+v %v", plan, err)
	}
	if plan.Workers > 10 {
		t.Fatalf("conservative plan too large: %d", plan.Workers)
	}

	// Calibration round trip.
	if err := c.RecordCalibration("env", 1000, 1500); err != nil {
		t.Fatal(err)
	}
	st, err := c.Calibration("env")
	if err != nil || st.Alpha != 1.5 || st.Count != 1 {
		t.Fatalf("calibration: %+v %v", st, err)
	}
}

// TestFigure3Sequence drives the full sequence diagram of Fig 3 over real
// HTTP: register QoS, submit, predict, order credits, monitor loop starting
// cloud workers, billing, completion, payment with refund, calibration.
func TestFigure3Sequence(t *testing.T) {
	dg := &scriptedDG{size: 100}
	ec2 := cloud.NewMockEC2()
	stack := NewTestStack(StackConfig{
		Strategy: core.DefaultStrategy(),
		Registry: cloud.NewRegistry(ec2),
		DG:       dg,
	})
	defer stack.Close()

	// Deterministic billing clock: each Step advances one minute.
	now := time.Unix(1_700_000_000, 0)
	stack.Scheduler.Now = func() time.Time { return now }
	step := func() {
		now = now.Add(time.Minute)
		if err := stack.Scheduler.Step(); err != nil {
			t.Fatal(err)
		}
	}

	// User: deposit, registerQoS + orderQoS.
	if err := stack.CreditClient.Deposit("alice", 1000); err != nil {
		t.Fatal(err)
	}
	if err := stack.Scheduler.RegisterQoS(QoSRequest{
		User: "alice", BatchID: "bot-1", EnvKey: "XWHEP/seti/SMALL", Size: 100,
		Credits: 300, Provider: "ec2", Image: "xwhep-worker",
	}); err != nil {
		t.Fatal(err)
	}

	// The BoT progresses on the BE-DCI.
	dg.set(10, 100)
	step()
	dg.set(50, 100)
	step()

	// getQoSInformation: prediction mid-run.
	pred, err := stack.OracleClient.Predict("bot-1")
	if err != nil {
		t.Fatal(err)
	}
	if pred.PredictedTime <= 0 {
		t.Fatalf("prediction: %+v", pred)
	}

	// Cloud must not start before the completion threshold.
	st, _ := stack.Scheduler.Status("bot-1")
	if st.Started {
		t.Fatal("cloud started before 90%")
	}

	// Tail reached: the next step must launch cloud workers on EC2.
	dg.set(91, 100)
	step()
	st, _ = stack.Scheduler.Status("bot-1")
	if !st.Started || len(st.Instances) == 0 {
		t.Fatalf("cloud not started at 91%%: %+v", st)
	}
	if st.Instances[0].Provider != "ec2" || st.Instances[0].DGServer != dg.WorkerURL() {
		t.Fatalf("instance misconfigured: %+v", st.Instances[0])
	}
	if got := len(ec2.List()); got != len(st.Instances) {
		t.Fatalf("provider sees %d instances, scheduler %d", got, len(st.Instances))
	}

	// Billing accrues while the tail executes.
	dg.set(95, 100)
	step()
	o, err := stack.CreditClient.OrderOf("bot-1")
	if err != nil {
		t.Fatal(err)
	}
	if o.Billed <= 0 {
		t.Fatal("no billing after a minute of cloud usage")
	}

	// Completion: final billing, shutdown, payment, refund, calibration.
	dg.set(100, 100)
	step()
	st, _ = stack.Scheduler.Status("bot-1")
	if !st.Finalized {
		t.Fatal("not finalized after completion")
	}
	if got := len(ec2.List()); got != 0 {
		t.Fatalf("%d instances still running after completion", got)
	}
	o, _ = stack.CreditClient.OrderOf("bot-1")
	if !o.Closed {
		t.Fatal("order not closed")
	}
	a, _ := stack.CreditClient.Account("alice")
	if a.Balance <= 700 || a.Balance >= 1000 {
		t.Fatalf("refund wrong: balance=%v (billed=%v)", a.Balance, o.Billed)
	}
	cal, err := stack.OracleClient.Calibration("XWHEP/seti/SMALL")
	if err != nil || cal.Count != 1 {
		t.Fatalf("calibration not recorded: %+v %v", cal, err)
	}

	// Further steps are no-ops on a finalized batch.
	step()
	o2, _ := stack.CreditClient.OrderOf("bot-1")
	if o2.Billed != o.Billed {
		t.Fatal("billing continued after finalization")
	}
}

func TestSchedulerExhaustionStopsInstances(t *testing.T) {
	dg := &scriptedDG{size: 100}
	ec2 := cloud.NewMockEC2()
	stack := NewTestStack(StackConfig{
		Strategy: core.Strategy{Trigger: core.CompletionThreshold{Frac: 0.9}, Sizing: core.Greedy{}, Deploy: core.Reschedule},
		Registry: cloud.NewRegistry(ec2),
		DG:       dg,
	})
	defer stack.Close()
	now := time.Unix(1_700_000_000, 0)
	stack.Scheduler.Now = func() time.Time { return now }

	stack.CreditClient.Deposit("bob", 10)
	if err := stack.Scheduler.RegisterQoS(QoSRequest{
		User: "bob", BatchID: "b", EnvKey: "e", Size: 100,
		Credits: 0.05, Provider: "ec2", Image: "img", // 12 cpu·s of funding
	}); err != nil {
		t.Fatal(err)
	}
	dg.set(95, 100)
	now = now.Add(time.Minute)
	if err := stack.Scheduler.Step(); err != nil {
		t.Fatal(err)
	}
	st, _ := stack.Scheduler.Status("b")
	if !st.Started {
		t.Fatal("cloud not started")
	}
	// One minute of usage exceeds the funding: instances must stop.
	now = now.Add(time.Minute)
	stack.Scheduler.Step()
	now = now.Add(time.Minute)
	stack.Scheduler.Step()
	st, _ = stack.Scheduler.Status("b")
	if !st.Exhausted {
		t.Fatal("order not exhausted")
	}
	if got := len(ec2.List()); got != 0 {
		t.Fatalf("%d instances alive after exhaustion", got)
	}
}

func TestSchedulerValidation(t *testing.T) {
	dg := &scriptedDG{size: 10}
	stack := NewTestStack(StackConfig{Strategy: core.DefaultStrategy(), DG: dg})
	defer stack.Close()
	if err := stack.Scheduler.RegisterQoS(QoSRequest{BatchID: "", Size: 10}); err == nil {
		t.Fatal("empty batch id accepted")
	}
	if err := stack.Scheduler.RegisterQoS(QoSRequest{BatchID: "x", Size: 0}); err == nil {
		t.Fatal("zero size accepted")
	}
	if _, err := stack.Scheduler.Status("ghost"); err == nil {
		t.Fatal("unknown batch status accepted")
	}
}

func TestSchedulerHTTPEndpoints(t *testing.T) {
	dg := &scriptedDG{size: 10}
	stack := NewTestStack(StackConfig{Strategy: core.DefaultStrategy(), DG: dg})
	defer stack.Close()
	stack.CreditClient.Deposit("u", 100)

	body := `{"user":"u","batch_id":"hb","env_key":"e","size":10,"credits":10,"provider":"ec2","image":"img"}`
	resp, err := http.Post(stack.SchedulerAddr+"/qos", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("qos register: %d", resp.StatusCode)
	}
	resp, err = http.Post(stack.SchedulerAddr+"/step", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("step: %d", resp.StatusCode)
	}
	resp, err = http.Get(stack.SchedulerAddr + "/qos/hb")
	if err != nil {
		t.Fatal(err)
	}
	var st QoSStatus
	if err := decodeReply(resp, &st); err != nil {
		t.Fatal(err)
	}
	if st.BatchID != "hb" {
		t.Fatalf("status: %+v", st)
	}
	resp, err = http.Get(stack.SchedulerAddr + "/instances")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
}

func TestMuxMountsAllModules(t *testing.T) {
	info := NewInformationService(core.NewInformation())
	credit := NewCreditService(core.NewCreditSystem())
	infoClient := NewInformationClient("") // unused paths below
	oracle := NewOracleService(core.NewOracle(core.DefaultStrategy()), infoClient)
	dg := &scriptedDG{size: 1}
	sched := NewSchedulerService(infoClient, NewCreditClient(""), NewOracleClient(""), cloud.DefaultRegistry(), dg)
	mux := Mux(info, credit, oracle, sched)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	for _, path := range []string{"/healthz", "/information/batches", "/scheduler/instances"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: %d", path, resp.StatusCode)
		}
	}
	// Credit module reachable under its prefix.
	resp, err := http.Post(srv.URL+"/credit/deposit", "application/json",
		strings.NewReader(`{"user":"u","credits":5}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("credit deposit via mux: %d", resp.StatusCode)
	}
}

func TestConcurrentSchedulerSteps(t *testing.T) {
	dg := &scriptedDG{size: 100}
	stack := NewTestStack(StackConfig{Strategy: core.DefaultStrategy(), DG: dg})
	defer stack.Close()
	stack.CreditClient.Deposit("u", 1000)
	for i := 0; i < 4; i++ {
		if err := stack.Scheduler.RegisterQoS(QoSRequest{
			User: "u", BatchID: fmt.Sprintf("b%d", i), EnvKey: "e", Size: 100,
			Credits: 50, Provider: "ec2", Image: "img",
		}); err != nil {
			t.Fatal(err)
		}
	}
	dg.set(95, 100)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			stack.Scheduler.Step()
		}()
	}
	wg.Wait()
	// No assertion beyond the race detector and a consistent final state.
	if got := len(stack.Scheduler.Instances()); got == 0 {
		t.Fatal("no instances after concurrent steps")
	}
}
