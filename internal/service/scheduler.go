package service

import (
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"spequlos/internal/cloud"
	"spequlos/internal/core"
	"spequlos/internal/middleware"
)

// DGGateway abstracts the Desktop Grid server the Scheduler monitors. A
// production deployment implements it against a BOINC or XWHEP server's
// status API (or the 3G-Bridge for grid-submitted BoTs); tests and demos
// use a scripted fake, and internal/emul drives a fully simulated DG
// behind the same interface.
type DGGateway interface {
	// Progress returns the server's current view of a batch.
	Progress(batchID string) (middleware.Progress, error)
	// WorkerURL is the endpoint cloud workers connect to.
	WorkerURL() string
}

// BatchProgressGateway is an optional DGGateway extension: one call returns
// the server's view of many batches at once. The Scheduler's monitor loop
// uses it to poll a DG that hosts hundreds of concurrent QoS batches with a
// single aggregated round-trip per tick — without it, each tick costs one
// Progress call per registered batch, the O(batches) polling wall that
// collapses at fleet scale. internal/emul implements it on both sides of
// the wire (POST /progress-batch).
type BatchProgressGateway interface {
	DGGateway
	// ProgressBatch returns the server's view of every named batch, keyed
	// by batch ID.
	ProgressBatch(batchIDs []string) (map[string]middleware.Progress, error)
}

// WorkerStatusGateway is an optional DGGateway extension: gateways that can
// report whether a launched instance's worker currently holds an assignment
// enable the Greedy release policy (§3.5: "Cloud workers that do not have
// tasks assigned stop immediately"). Without it the Scheduler keeps idle
// workers running until the order exhausts or the batch completes.
type WorkerStatusGateway interface {
	DGGateway
	// InstanceBusy reports whether the worker booted from the given cloud
	// instance currently holds an assignment on the DG server.
	InstanceBusy(instanceID string) (bool, error)
}

// SchedulerService is the deployable Scheduler module: it drives the
// monitor loop of Algorithms 1 and 2 against remote Information, Credit and
// Oracle services, launching cloud workers through the provider registry
// (libcloud's role).
//
//	POST /qos        {user, batch_id, env_key, size, credits, provider, image}
//	GET  /qos/{id}   QoS status of a batch
//	POST /step       run one monitor iteration (the daemon also ticks)
//	GET  /instances  list managed cloud instances
type SchedulerService struct {
	info     *InformationClient
	credits  *CreditClient
	oracle   *OracleClient
	registry *cloud.Registry
	dg       DGGateway

	// TierPolicy, when non-nil, gates cloud-worker launches per service
	// class: a batch only starts cloud support while its tier's count of
	// batches holding live instances is under the tier's MaxActive cap and
	// the fleet as a whole is under FleetCap. The in-process scheduler
	// (internal/core) additionally runs weighted slot arbitration per tick;
	// the HTTP scheduler steps batches independently, so it enforces the
	// caps and lets denied batches retry on later ticks.
	TierPolicy *core.TierPolicy

	// Now is the clock used for billing; overridable in tests.
	Now func() time.Time

	mu      sync.Mutex
	batches map[string]*schedBatch
	order   []string
}

type schedBatch struct {
	ID        string
	User      string
	EnvKey    string
	Size      int
	Tier      core.Tier
	Provider  string
	Image     string
	Started   bool
	Exhausted bool
	Finalized bool
	StartedAt time.Time
	// TriggeredAt is when cloud support started, in seconds since
	// registration; -1 until the trigger fires.
	TriggeredAt float64
	// ReleaseIdle is the Oracle's release policy for this batch: stop
	// booted workers that obtained no work (Greedy sizing).
	ReleaseIdle bool
	// stepping serializes monitor iterations per batch: the daemon ticker
	// and external POST /step clients may race, and a double step must not
	// double-bill or double-launch.
	stepping bool

	instances []managedInstance
}

type managedInstance struct {
	Info     cloud.InstanceInfo
	LastBill time.Time
}

// QoSRequest registers a batch for QoS support (registerQoS + orderQoS of
// Fig 3 in one call).
type QoSRequest struct {
	User    string  `json:"user"`
	BatchID string  `json:"batch_id"`
	EnvKey  string  `json:"env_key"`
	Size    int     `json:"size"`
	Credits float64 `json:"credits"`
	// Tier is the batch's service class (enterprise, premium or free; empty
	// means untiered and is treated as free when a tier policy is active).
	Tier     string `json:"tier,omitempty"`
	Provider string `json:"provider"`
	Image    string `json:"image"`
}

// QoSStatus reports the Scheduler's view of a batch.
type QoSStatus struct {
	BatchID string `json:"batch_id"`
	// Tier is the batch's service class (empty for untiered batches).
	Tier      string `json:"tier,omitempty"`
	Started   bool   `json:"started"`
	Exhausted bool   `json:"exhausted"`
	Finalized bool   `json:"finalized"`
	// TriggeredAt is when cloud support started, in seconds since
	// registration (-1 if it never did).
	TriggeredAt float64              `json:"triggered_at"`
	Instances   []cloud.InstanceInfo `json:"instances"`
}

// NewSchedulerService wires the Scheduler to its collaborators.
func NewSchedulerService(info *InformationClient, credits *CreditClient, oracle *OracleClient,
	registry *cloud.Registry, dg DGGateway) *SchedulerService {
	return &SchedulerService{
		info: info, credits: credits, oracle: oracle, registry: registry, dg: dg,
		Now:     time.Now,
		batches: map[string]*schedBatch{},
	}
}

// ServeHTTP implements http.Handler.
func (s *SchedulerService) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.Method == http.MethodPost && r.URL.Path == "/qos":
		var req QoSRequest
		if err := readJSON(r, &req); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		if _, err := core.ParseTier(req.Tier); err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("scheduler: %w", err))
			return
		}
		// Behind an auth gate (see auth.go) the request runs as the key's
		// identity: an absent body tier/user inherits the credential's, and a
		// body tier outranking the credential's is rejected — a free key
		// cannot order enterprise service.
		if kt := r.Header.Get(AuthTierHeader); kt != "" {
			keyTier, err := core.ParseTier(kt)
			if err == nil {
				reqTier := core.Tier(req.Tier)
				if req.Tier == "" {
					req.Tier = string(keyTier.OrFree())
				} else if reqTier.Rank() > keyTier.Rank() {
					writeErr(w, http.StatusForbidden, fmt.Errorf(
						"scheduler: tier %s exceeds the API key's tier %s", reqTier, keyTier.OrFree()))
					return
				}
			}
			if req.User == "" {
				req.User = r.Header.Get(AuthUserHeader)
			}
		}
		if err := s.RegisterQoS(req); err != nil {
			writeErr(w, http.StatusConflict, err)
			return
		}
		writeJSON(w, http.StatusCreated, map[string]string{"batch_id": req.BatchID})

	case r.Method == http.MethodPost && r.URL.Path == "/step":
		if err := s.Step(); err != nil {
			writeErr(w, http.StatusBadGateway, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})

	case r.Method == http.MethodGet && pathTail(r.URL.Path, "/qos/") != "":
		id := pathTail(r.URL.Path, "/qos/")
		st, err := s.Status(id)
		if err != nil {
			writeErr(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, st)

	case r.Method == http.MethodGet && r.URL.Path == "/instances":
		writeJSON(w, http.StatusOK, s.Instances())

	default:
		writeErr(w, http.StatusNotFound, fmt.Errorf("no route %s %s", r.Method, r.URL.Path))
	}
}

// RegisterQoS registers a batch with the Information service and places the
// credit order.
func (s *SchedulerService) RegisterQoS(req QoSRequest) error {
	if req.BatchID == "" || req.Size <= 0 {
		return fmt.Errorf("scheduler: batch_id and positive size required")
	}
	tier, err := core.ParseTier(req.Tier)
	if err != nil {
		return fmt.Errorf("scheduler: %w", err)
	}
	s.mu.Lock()
	if _, ok := s.batches[req.BatchID]; ok {
		s.mu.Unlock()
		return fmt.Errorf("scheduler: batch %q already registered", req.BatchID)
	}
	s.mu.Unlock()
	if err := s.info.Track(TrackRequest{
		BatchID: req.BatchID, EnvKey: req.EnvKey, Size: req.Size,
	}); err != nil {
		return err
	}
	if req.Credits > 0 {
		if err := s.credits.Order(req.User, req.BatchID, req.Credits); err != nil {
			return err
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.batches[req.BatchID] = &schedBatch{
		ID: req.BatchID, User: req.User, EnvKey: req.EnvKey, Size: req.Size,
		Tier: tier, Provider: req.Provider, Image: req.Image, StartedAt: s.Now(),
		TriggeredAt: -1,
	}
	s.order = append(s.order, req.BatchID)
	return nil
}

// Status returns the Scheduler's view of a batch.
func (s *SchedulerService) Status(batchID string) (QoSStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	qb, ok := s.batches[batchID]
	if !ok {
		return QoSStatus{}, fmt.Errorf("scheduler: batch %q not registered", batchID)
	}
	st := QoSStatus{BatchID: qb.ID, Tier: string(qb.Tier), Started: qb.Started,
		Exhausted: qb.Exhausted, Finalized: qb.Finalized, TriggeredAt: qb.TriggeredAt}
	for _, mi := range qb.instances {
		st.Instances = append(st.Instances, mi.Info)
	}
	return st, nil
}

// Instances lists every managed cloud instance.
func (s *SchedulerService) Instances() []cloud.InstanceInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []cloud.InstanceInfo
	for _, qb := range s.batches {
		for _, mi := range qb.instances {
			out = append(out, mi.Info)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Step runs one monitor iteration over every registered batch (the body of
// Algorithms 1 and 2). Against a BatchProgressGateway the DG is polled ONCE
// for all active batches — the aggregated query that keeps the per-tick
// gateway traffic O(1) in the number of registered batches; otherwise each
// batch polls individually.
func (s *SchedulerService) Step() error {
	s.mu.Lock()
	ids := make([]string, 0, len(s.order))
	for _, id := range s.order {
		if qb := s.batches[id]; qb != nil && !qb.Finalized {
			ids = append(ids, id)
		}
	}
	s.mu.Unlock()
	if len(ids) == 0 {
		return nil
	}
	var progress map[string]middleware.Progress
	if bg, ok := s.dg.(BatchProgressGateway); ok {
		p, err := bg.ProgressBatch(ids)
		if err != nil {
			// Transient gateway errors retry next tick, as with per-batch
			// polling; no batch consumed a partial view.
			return fmt.Errorf("scheduler: DG batch progress: %w", err)
		}
		progress = p
	}
	var firstErr error
	for _, id := range ids {
		var pre *middleware.Progress
		if progress != nil {
			if p, ok := progress[id]; ok {
				pre = &p
			}
		}
		if err := s.stepBatch(id, pre); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// StepBatch runs one monitor iteration for a single batch, polling only
// that batch. The emulation's event-driven finalization uses it so one
// batch's completion settles its own billing at the completion instant
// without advancing the other batches' monitor state between ticks (the
// in-process simulator finalizes exactly one batch per completion event).
func (s *SchedulerService) StepBatch(id string) error {
	return s.stepBatch(id, nil)
}

// stepBatch runs one monitor iteration for one batch. pre is the batch's
// progress from this tick's aggregated poll (nil ⇒ poll individually).
func (s *SchedulerService) stepBatch(id string, pre *middleware.Progress) error {
	// Claim the batch for this iteration: concurrent steps (daemon ticker
	// plus external POST /step clients) must not double-bill or
	// double-launch. Losing the claim is not an error — the other step is
	// doing the same work.
	s.mu.Lock()
	qb := s.batches[id]
	if qb == nil || qb.Finalized || qb.stepping {
		s.mu.Unlock()
		return nil
	}
	qb.stepping = true
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		qb.stepping = false
		s.mu.Unlock()
	}()

	// Monitor: pull progress from the DG (unless the aggregated poll
	// already fetched it), push a sample to Information.
	var p middleware.Progress
	if pre != nil {
		p = *pre
	} else {
		var err error
		p, err = s.dg.Progress(id)
		if err != nil {
			return fmt.Errorf("scheduler: DG progress for %q: %w", id, err)
		}
	}
	now := s.Now()
	elapsed := now.Sub(qb.StartedAt).Seconds()
	if err := s.info.AddSample(id, core.Sample{
		T: elapsed, Completed: p.Completed, Assigned: p.EverAssigned,
		Queued: p.Queued, Running: p.Running,
	}); err != nil {
		return err
	}

	if p.Done() {
		return s.finalize(qb, elapsed)
	}

	// Algorithm 2: bill running instances; stop everything when the order
	// runs dry; under the Greedy policy, release workers that got no work.
	if err := s.billInstances(qb, now); err != nil {
		return err
	}
	if s.exhausted(qb) {
		s.stopAll(qb, now)
		return nil
	}
	if err := s.releaseIdleInstances(qb, now); err != nil {
		return err
	}

	// Algorithm 1: ask the Oracle whether to start cloud workers.
	s.mu.Lock()
	started := qb.Started
	s.mu.Unlock()
	if started {
		return nil
	}
	has, err := s.credits.HasCredits(id)
	if err != nil || !has {
		return err
	}
	order, err := s.credits.OrderOf(id)
	if err != nil {
		return err
	}
	plan, err := s.oracle.Plan(id, order.Remaining()/core.CreditsPerCPUHour)
	if err != nil {
		return err
	}
	if !plan.Start {
		return nil
	}
	if !s.admitTier(qb) {
		return nil // tier caps leave no headroom; retry on a later tick
	}
	driver, err := s.registry.Get(qb.Provider)
	if err != nil {
		return err
	}
	for i := 0; i < plan.Workers; i++ {
		info, err := driver.Launch(cloud.LaunchRequest{
			Image: qb.Image, BatchID: id, DGServer: s.dg.WorkerURL(),
		})
		if err != nil {
			return err
		}
		s.mu.Lock()
		qb.instances = append(qb.instances, managedInstance{Info: info, LastBill: now})
		s.mu.Unlock()
	}
	s.mu.Lock()
	qb.Started = true
	qb.TriggeredAt = elapsed
	qb.ReleaseIdle = plan.ReleaseIdle
	s.mu.Unlock()
	return nil
}

// admitTier enforces the tier admission caps for a batch about to start
// cloud support: its service class must have MaxActive headroom and the
// fleet must be under FleetCap, counting every other unfinalized batch that
// currently holds live instances. A nil policy admits everything.
func (s *SchedulerService) admitTier(qb *schedBatch) bool {
	if s.TierPolicy == nil {
		return true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	active := map[core.Tier]int{}
	total := 0
	for _, other := range s.batches {
		if other == qb || other.Finalized {
			continue
		}
		for i := range other.instances {
			if other.instances[i].Info.State != cloud.StateTerminated {
				active[other.Tier.OrFree()]++
				total++
				break
			}
		}
	}
	spec := s.TierPolicy.Spec(qb.Tier)
	if spec.MaxActive > 0 && active[qb.Tier.OrFree()] >= spec.MaxActive {
		return false
	}
	return s.TierPolicy.FleetCap <= 0 || total < s.TierPolicy.FleetCap
}

// exhausted reads the exhaustion flag under the lock.
func (s *SchedulerService) exhausted(qb *schedBatch) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return qb.Exhausted
}

// releaseIdleInstances implements the Greedy release policy: booted workers
// that hold no assignment are settled and stopped so their credits return to
// the order (§3.5). It requires a gateway that can report worker status;
// otherwise it is a no-op. Remote calls run outside the service lock — only
// the claiming step mutates a batch's instances, so the snapshot stays
// valid while the lock is released.
func (s *SchedulerService) releaseIdleInstances(qb *schedBatch, now time.Time) error {
	gw, ok := s.dg.(WorkerStatusGateway)
	if !ok {
		return nil
	}
	s.mu.Lock()
	if !qb.ReleaseIdle {
		s.mu.Unlock()
		return nil
	}
	ids := make([]string, 0, len(qb.instances))
	lastBill := make(map[string]time.Time, len(qb.instances))
	for i := range qb.instances {
		if mi := &qb.instances[i]; mi.Info.State != cloud.StateTerminated {
			ids = append(ids, mi.Info.ID)
			lastBill[mi.Info.ID] = mi.LastBill
		}
	}
	s.mu.Unlock()
	driver, err := s.registry.Get(qb.Provider)
	if err != nil {
		return err
	}
	for _, id := range ids {
		desc, err := driver.Describe(id)
		if err != nil || desc.State != cloud.StateRunning {
			continue // still booting, or gone
		}
		busy, err := gw.InstanceBusy(id)
		if err != nil || busy {
			continue
		}
		// Settle the outstanding usage, then stop the worker. LastBill only
		// advances once billing succeeded: a failed Bill leaves the window
		// open for the next tick instead of losing it. Exhaustion while
		// settling still stops this idle worker and keeps releasing the
		// rest; busy workers run until the next tick's billing notices the
		// dry order — the same sequence as the in-process Scheduler.
		if sec := now.Sub(lastBill[id]).Seconds(); sec > 0 {
			reply, err := s.credits.Bill(qb.ID, sec/3600*core.CreditsPerCPUHour)
			if err != nil {
				return err
			}
			s.setLastBill(qb, id, now)
			if reply.Exhausted {
				s.mu.Lock()
				qb.Exhausted = true
				s.mu.Unlock()
			}
		}
		if err := driver.Terminate(id); err == nil {
			s.markTerminated(qb, id)
		}
	}
	return nil
}

func (s *SchedulerService) setLastBill(qb *schedBatch, id string, t time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range qb.instances {
		if qb.instances[i].Info.ID == id {
			qb.instances[i].LastBill = t
		}
	}
}

func (s *SchedulerService) markTerminated(qb *schedBatch, id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range qb.instances {
		if qb.instances[i].Info.ID == id {
			qb.instances[i].Info.State = cloud.StateTerminated
		}
	}
}

// billInstances charges wall-clock usage of live instances.
func (s *SchedulerService) billInstances(qb *schedBatch, now time.Time) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range qb.instances {
		mi := &qb.instances[i]
		if mi.Info.State == cloud.StateTerminated {
			continue
		}
		sec := now.Sub(mi.LastBill).Seconds()
		if sec <= 0 {
			continue
		}
		mi.LastBill = now
		reply, err := s.credits.Bill(qb.ID, sec/3600*core.CreditsPerCPUHour)
		if err != nil {
			return err
		}
		if reply.Exhausted {
			qb.Exhausted = true
			return nil
		}
	}
	return nil
}

// stopAll terminates every live instance of a batch.
func (s *SchedulerService) stopAll(qb *schedBatch, now time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	driver, err := s.registry.Get(qb.Provider)
	if err != nil {
		return
	}
	for i := range qb.instances {
		mi := &qb.instances[i]
		if mi.Info.State == cloud.StateTerminated {
			continue
		}
		if err := driver.Terminate(mi.Info.ID); err == nil {
			mi.Info.State = cloud.StateTerminated
		}
	}
}

// finalize settles the batch: final billing, instance shutdown, payment and
// calibration archiving.
func (s *SchedulerService) finalize(qb *schedBatch, elapsed float64) error {
	now := s.Now()
	if err := s.billInstances(qb, now); err != nil {
		return err
	}
	s.stopAll(qb, now)
	if _, err := s.credits.Pay(qb.ID); err != nil {
		return err
	}
	if st, err := s.info.Status(qb.ID); err == nil && st.TC50 > 0 {
		if err := s.oracle.RecordCalibration(qb.EnvKey, st.TC50/0.5, elapsed); err != nil {
			return err
		}
	}
	s.mu.Lock()
	qb.Finalized = true
	s.mu.Unlock()
	return nil
}

// Run ticks the monitor loop every period until stop is closed (the daemon
// mode of cmd/spequlosd).
func (s *SchedulerService) Run(period time.Duration, stop <-chan struct{}) {
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			s.Step() //nolint:errcheck // transient gateway errors retry next tick
		}
	}
}
