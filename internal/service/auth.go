package service

// This file is the gateway hardening layer: API-key authentication and
// per-tier token-bucket rate limiting in front of the four service modules,
// following the key-manager/tier pattern of the maas-billing qos-prioritizer
// exemplar (SNIPPETS.md #1). Keys bind a caller to a user and a service
// class (core.Tier); each tier carries a request rate derived from the same
// TierPolicy weights that arbitrate cloud admission, so the HTTP front door
// and the fleet scheduler share one notion of what a tier is worth.
// Unauthenticated requests answer 401 and throttled requests answer 429
// (with Retry-After) BEFORE any module handler runs — a rejected request
// can never place a partial order or ghost-bill an account.

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"spequlos/internal/core"
)

// Authentication context headers the Gate stamps on requests it admits.
// Handlers trust them because the Gate strips any client-supplied values
// before setting its own — a caller cannot spoof a higher tier.
const (
	// AuthUserHeader carries the authenticated key's user.
	AuthUserHeader = "X-Spequlos-User"
	// AuthTierHeader carries the authenticated key's service class.
	AuthTierHeader = "X-Spequlos-Tier"
	// APIKeyHeader is the request header clients put their key in
	// (Authorization: Bearer <key> is accepted too).
	APIKeyHeader = "X-API-Key"
)

// TierLimit is one service class's request-rate contract: a token bucket
// refilled at PerSec with capacity Burst. PerSec <= 0 means unlimited.
type TierLimit struct {
	// PerSec is the sustained request rate (tokens per second).
	PerSec float64 `json:"per_sec"`
	// Burst is the bucket capacity — how far a client may run ahead of the
	// sustained rate before 429s start.
	Burst int `json:"burst"`
}

// RateLimits maps each service class to its request-rate contract.
type RateLimits map[core.Tier]TierLimit

// LimitsFromPolicy derives per-tier HTTP rate limits from a TierPolicy:
// totalPerSec is shared in proportion to tier weight (the same weights that
// share cloud slots), and each bucket holds two seconds of its rate as
// burst headroom (minimum 1). A nil policy gives every tier an equal share.
func LimitsFromPolicy(p *core.TierPolicy, totalPerSec float64) RateLimits {
	tiers := core.AllTiers()
	weight := func(t core.Tier) float64 { return 1 }
	totalWeight := float64(len(tiers))
	if p != nil {
		totalWeight = 0
		for _, t := range tiers {
			totalWeight += p.Spec(t).Weight
		}
		if totalWeight > 0 {
			weight = func(t core.Tier) float64 { return p.Spec(t).Weight }
		} else {
			totalWeight = float64(len(tiers))
		}
	}
	limits := RateLimits{}
	for _, t := range tiers {
		rate := totalPerSec * weight(t) / totalWeight
		burst := int(math.Ceil(2 * rate))
		if burst < 1 {
			burst = 1
		}
		limits[t] = TierLimit{PerSec: rate, Burst: burst}
	}
	return limits
}

// APIKey is one credential: it names the caller and fixes the service class
// every gated request runs under.
type APIKey struct {
	// Key is the secret presented in X-API-Key or Authorization: Bearer.
	Key string `json:"key"`
	// User is the account the key belongs to.
	User string `json:"user"`
	// Tier is the key's service class; empty means untiered (rated as free).
	Tier core.Tier `json:"tier"`
	// Revoked keys authenticate nothing but keep their metrics.
	Revoked bool `json:"revoked,omitempty"`
	// Unlimited exempts the key from rate limiting — for operator keys and
	// the daemon's own monitor traffic, not for tenants.
	Unlimited bool `json:"unlimited,omitempty"`
}

// KeyMetrics counts one key's traffic through the Gate.
type KeyMetrics struct {
	// Requests is every request presenting the key, admitted or not.
	Requests int64 `json:"requests"`
	// Throttled counts 429 rejections.
	Throttled int64 `json:"throttled"`
	// Denied counts 401 rejections (revoked key).
	Denied int64 `json:"denied"`
}

// KeyStatus is one key's public state in a metrics snapshot (the secret is
// elided to its prefix).
type KeyStatus struct {
	// KeyPrefix is the first 8 characters of the key.
	KeyPrefix string `json:"key_prefix"`
	// User is the account the key belongs to.
	User string `json:"user"`
	// Tier is the key's service class.
	Tier core.Tier `json:"tier"`
	// Revoked reports whether the key still authenticates.
	Revoked bool `json:"revoked"`
	// Metrics counts the key's traffic.
	Metrics KeyMetrics `json:"metrics"`
}

// GateMetrics counts gate-wide outcomes across all keys.
type GateMetrics struct {
	// Allowed counts requests passed through to a module handler.
	Allowed int64 `json:"allowed"`
	// Unauthorized counts 401s (missing, unknown or revoked key).
	Unauthorized int64 `json:"unauthorized"`
	// Throttled counts 429s.
	Throttled int64 `json:"throttled"`
}

// keyState is a key plus its token bucket and counters.
type keyState struct {
	key     APIKey
	metrics KeyMetrics

	tokens float64   // current bucket level
	last   time.Time // last refill instant
}

// KeyManager authenticates API keys and rate-limits per key according to
// per-tier token buckets — the key-manager role of the maas-billing
// exemplar. Safe for concurrent use.
type KeyManager struct {
	// Now is the clock the token buckets refill on; overridable in tests.
	Now func() time.Time

	mu     sync.Mutex
	limits RateLimits
	keys   map[string]*keyState
	gate   GateMetrics
}

// NewKeyManager builds a key manager enforcing the given per-tier limits
// (nil limits = no rate limiting, auth only).
func NewKeyManager(limits RateLimits) *KeyManager {
	return &KeyManager{Now: time.Now, limits: limits, keys: map[string]*keyState{}}
}

// Issue mints a fresh random key for a user at a tier and registers it.
func (m *KeyManager) Issue(user string, tier core.Tier) APIKey {
	buf := make([]byte, 16)
	if _, err := rand.Read(buf); err != nil {
		panic(fmt.Sprintf("service: issuing key: %v", err)) // crypto/rand does not fail on supported platforms
	}
	k := APIKey{Key: "sk-" + hex.EncodeToString(buf), User: user, Tier: tier}
	m.Add(k)
	return k
}

// Add registers (or replaces) a key. The bucket starts full.
func (m *KeyManager) Add(k APIKey) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.keys[k.Key] = &keyState{key: k, tokens: float64(m.limitFor(k.Tier).Burst), last: m.Now()}
}

// KeyedClient returns an http.Client that authenticates every request with
// the given API key. Module-to-module clients sitting behind a gated mux
// (e.g. the Scheduler's Information/Credit/Oracle clients in spequlosd
// -keys mode) must use one, typically with an Unlimited service key, or
// their internal calls would 401 at their own gateway.
func KeyedClient(key string) *http.Client {
	return &http.Client{Transport: keyedTransport{key: key, base: http.DefaultTransport}}
}

// keyedTransport stamps the API key header on every outgoing request.
type keyedTransport struct {
	key  string
	base http.RoundTripper
}

// RoundTrip implements http.RoundTripper.
func (t keyedTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	c := req.Clone(req.Context())
	c.Header.Set(APIKeyHeader, t.key)
	return t.base.RoundTrip(c)
}

// Revoke marks a key revoked; subsequent requests answer 401. Unknown keys
// are a no-op.
func (m *KeyManager) Revoke(key string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if ks, ok := m.keys[key]; ok {
		ks.key.Revoked = true
	}
}

// Metrics returns a key's traffic counters (zero for unknown keys).
func (m *KeyManager) Metrics(key string) KeyMetrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	if ks, ok := m.keys[key]; ok {
		return ks.metrics
	}
	return KeyMetrics{}
}

// GateStats returns the gate-wide outcome counters.
func (m *KeyManager) GateStats() GateMetrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.gate
}

// Snapshot lists every key's public status, sorted by user then key prefix
// — the admin/metrics view (secrets elided).
func (m *KeyManager) Snapshot() []KeyStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]KeyStatus, 0, len(m.keys))
	for _, ks := range m.keys {
		prefix := ks.key.Key
		if len(prefix) > 8 {
			prefix = prefix[:8]
		}
		out = append(out, KeyStatus{
			KeyPrefix: prefix, User: ks.key.User, Tier: ks.key.Tier,
			Revoked: ks.key.Revoked, Metrics: ks.metrics,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].User != out[j].User {
			return out[i].User < out[j].User
		}
		return out[i].KeyPrefix < out[j].KeyPrefix
	})
	return out
}

// limitFor reads a tier's limit under the caller's lock.
func (m *KeyManager) limitFor(t core.Tier) TierLimit {
	if m.limits == nil {
		return TierLimit{}
	}
	return m.limits[t.OrFree()]
}

// admitOutcome is the gate's decision for one request.
type admitOutcome int

const (
	admitOK admitOutcome = iota
	admitUnauthorized
	admitThrottled
)

// authenticate reports whether a key exists and is unrevoked, without
// touching its bucket or counters.
func (m *KeyManager) authenticate(key string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	ks, ok := m.keys[key]
	return ok && !ks.key.Revoked
}

// admit authenticates a key and takes one token from its bucket. retryAfter
// is the seconds until a token is available when throttled.
func (m *KeyManager) admit(key string) (k APIKey, outcome admitOutcome, retryAfter float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ks, ok := m.keys[key]
	if !ok {
		m.gate.Unauthorized++
		return APIKey{}, admitUnauthorized, 0
	}
	ks.metrics.Requests++
	if ks.key.Revoked {
		ks.metrics.Denied++
		m.gate.Unauthorized++
		return APIKey{}, admitUnauthorized, 0
	}
	lim := m.limitFor(ks.key.Tier)
	if ks.key.Unlimited || lim.PerSec <= 0 {
		m.gate.Allowed++
		return ks.key, admitOK, 0
	}
	now := m.Now()
	if dt := now.Sub(ks.last).Seconds(); dt > 0 {
		ks.tokens = math.Min(float64(lim.Burst), ks.tokens+dt*lim.PerSec)
	}
	ks.last = now
	if ks.tokens < 1 {
		ks.metrics.Throttled++
		m.gate.Throttled++
		return ks.key, admitThrottled, (1 - ks.tokens) / lim.PerSec
	}
	ks.tokens--
	m.gate.Allowed++
	return ks.key, admitOK, 0
}

// MetricsPath is the gate's own introspection route: an authenticated GET
// returns the key snapshot plus gate counters without spending a rate-limit
// token (operators polling metrics must not eat tenant quota).
const MetricsPath = "/authz/metrics"

// authzReply is the payload of GET /authz/metrics.
type authzReply struct {
	Gate GateMetrics `json:"gate"`
	Keys []KeyStatus `json:"keys"`
}

// Gate wraps a handler with API-key authentication and per-tier rate
// limiting. /healthz stays open (load balancers probe it unauthenticated);
// every other route requires a known, unrevoked key in X-API-Key or
// Authorization: Bearer, and a token in the key's tier bucket. Admitted
// requests carry the key's user and tier in trusted headers
// (AuthUserHeader/AuthTierHeader) for handlers that bind request bodies to
// the authenticated identity.
func (m *KeyManager) Gate(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			next.ServeHTTP(w, r)
			return
		}
		// Strip client-supplied auth context before authenticating: these
		// headers are only ever trustworthy when this gate set them.
		r.Header.Del(AuthUserHeader)
		r.Header.Del(AuthTierHeader)
		key := requestKey(r)
		if key == "" {
			m.mu.Lock()
			m.gate.Unauthorized++
			m.mu.Unlock()
			writeErr(w, http.StatusUnauthorized, fmt.Errorf("service: missing API key (use %s or Authorization: Bearer)", APIKeyHeader))
			return
		}
		if r.Method == http.MethodGet && r.URL.Path == MetricsPath {
			// Authenticate only — metrics polls never spend a token.
			if !m.authenticate(key) {
				writeErr(w, http.StatusUnauthorized, fmt.Errorf("service: unknown or revoked API key"))
				return
			}
			writeJSON(w, http.StatusOK, authzReply{Gate: m.GateStats(), Keys: m.Snapshot()})
			return
		}
		k, outcome, retry := m.admit(key)
		switch outcome {
		case admitUnauthorized:
			writeErr(w, http.StatusUnauthorized, fmt.Errorf("service: unknown or revoked API key"))
			return
		case admitThrottled:
			w.Header().Set("Retry-After", strconv.Itoa(int(math.Ceil(retry))))
			writeErr(w, http.StatusTooManyRequests,
				fmt.Errorf("service: rate limit exceeded for tier %s", k.Tier.OrFree()))
			return
		}
		r.Header.Set(AuthUserHeader, k.User)
		r.Header.Set(AuthTierHeader, string(k.Tier.OrFree()))
		next.ServeHTTP(w, r)
	})
}

// requestKey extracts the API key from the request headers.
func requestKey(r *http.Request) string {
	if k := r.Header.Get(APIKeyHeader); k != "" {
		return k
	}
	if auth := r.Header.Get("Authorization"); strings.HasPrefix(auth, "Bearer ") {
		return strings.TrimSpace(strings.TrimPrefix(auth, "Bearer "))
	}
	return ""
}
