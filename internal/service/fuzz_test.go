package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"spequlos/internal/cloud"
	"spequlos/internal/core"
)

// FuzzReadJSON fuzzes the shared request decoder: it must never panic, and
// on success the decoded value must survive a marshal/unmarshal round trip.
func FuzzReadJSON(f *testing.F) {
	f.Add([]byte(`{"batch_id":"b","env_key":"e","size":10,"submitted_at":0}`))
	f.Add([]byte(`{bogus`))
	f.Add([]byte(``))
	f.Add([]byte(`null`))
	f.Add([]byte(`{"size":1e309}`))
	f.Add([]byte(`{"batch_id":"b","unknown":true}`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`{"size":"ten"}`))
	f.Fuzz(func(t *testing.T, body []byte) {
		req := httptest.NewRequest(http.MethodPost, "/batches", bytes.NewReader(body))
		var tr TrackRequest
		if err := readJSON(req, &tr); err != nil {
			return
		}
		buf, err := json.Marshal(tr)
		if err != nil {
			t.Fatalf("decoded value does not re-marshal: %v", err)
		}
		var tr2 TrackRequest
		if err := json.Unmarshal(buf, &tr2); err != nil {
			t.Fatalf("re-marshaled value does not decode: %v", err)
		}
		if tr != tr2 {
			t.Fatalf("lossy round trip: %+v != %+v", tr, tr2)
		}
	})
}

// FuzzInformationHandler fuzzes the batch-registration endpoint end to end:
// whatever the body, the handler must answer 201 or an error status with a
// JSON payload — never an empty 200.
func FuzzInformationHandler(f *testing.F) {
	f.Add([]byte(`{"batch_id":"b","env_key":"e","size":10}`))
	f.Add([]byte(`{bogus`))
	f.Add([]byte(`{"size":-3}`))
	f.Fuzz(func(t *testing.T, body []byte) {
		svc := NewInformationService(core.NewInformation())
		req := httptest.NewRequest(http.MethodPost, "/batches", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		svc.ServeHTTP(rec, req)
		if rec.Code == http.StatusOK {
			t.Fatalf("POST /batches answered 200 for %q", body)
		}
		if rec.Body.Len() == 0 {
			t.Fatalf("empty response body for %q (status %d)", body, rec.Code)
		}
		if !json.Valid(rec.Body.Bytes()) {
			t.Fatalf("non-JSON response %q for %q", rec.Body.Bytes(), body)
		}
	})
}

// FuzzQoSRequest fuzzes the Scheduler's QoS registration endpoint — the
// gated front door of the whole service — together with the trusted tier
// header the auth gate stamps. Whatever the body or header, the handler
// must never panic, never answer a bare 200, and always return JSON.
func FuzzQoSRequest(f *testing.F) {
	f.Add([]byte(`{"user":"u","batch_id":"b","env_key":"e","size":10,"credits":5,"tier":"free","provider":"ec2","image":"img"}`), "")
	f.Add([]byte(`{bogus`), "free")
	f.Add([]byte(``), "premium")
	f.Add([]byte(`null`), "enterprise")
	f.Add([]byte(`{"tier":"platinum"}`), "")
	f.Add([]byte(`{"tier":"enterprise"}`), "free")
	f.Add([]byte(`{"batch_id":"b","credits":1e309}`), "")
	f.Add([]byte(`{"batch_id":"b","unknown_field":1}`), "free")
	f.Add([]byte(`[{"batch_id":"b"}]`), "")
	f.Add([]byte(`{"user":"","batch_id":"","size":-1}`), "not-a-tier")
	f.Fuzz(func(t *testing.T, body []byte, tierHdr string) {
		sched := NewSchedulerService(NewInformationClient(""), NewCreditClient(""),
			NewOracleClient(""), cloud.DefaultRegistry(), &scriptedDG{size: 1})
		req := httptest.NewRequest(http.MethodPost, "/qos", bytes.NewReader(body))
		if tierHdr != "" {
			// Simulate the gate's stamped auth context (it is trusted input to
			// the handler, but must still never cause a panic).
			req.Header.Set(AuthTierHeader, tierHdr)
			req.Header.Set(AuthUserHeader, "fuzz-user")
		}
		rec := httptest.NewRecorder()
		sched.ServeHTTP(rec, req)
		if rec.Code == http.StatusOK {
			t.Fatalf("POST /qos answered 200 for %q (want 201 or an error)", body)
		}
		if rec.Body.Len() == 0 {
			t.Fatalf("empty response body for %q (status %d)", body, rec.Code)
		}
		if !json.Valid(rec.Body.Bytes()) {
			t.Fatalf("non-JSON response %q for %q", rec.Body.Bytes(), body)
		}
	})
}

// TestQoSBodyCap pins the request-size ceiling: a body beyond the 1 MiB
// decoder cap is rejected outright instead of being buffered.
func TestQoSBodyCap(t *testing.T) {
	sched := NewSchedulerService(NewInformationClient(""), NewCreditClient(""),
		NewOracleClient(""), cloud.DefaultRegistry(), &scriptedDG{size: 1})
	huge := `{"user":"` + strings.Repeat("x", maxBodyBytes+1) + `"}`
	req := httptest.NewRequest(http.MethodPost, "/qos", strings.NewReader(huge))
	rec := httptest.NewRecorder()
	sched.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("oversized body: status %d, want 400", rec.Code)
	}
	if !json.Valid(rec.Body.Bytes()) {
		t.Fatalf("non-JSON response %q", rec.Body.Bytes())
	}
}
