package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"spequlos/internal/core"
)

// FuzzReadJSON fuzzes the shared request decoder: it must never panic, and
// on success the decoded value must survive a marshal/unmarshal round trip.
func FuzzReadJSON(f *testing.F) {
	f.Add([]byte(`{"batch_id":"b","env_key":"e","size":10,"submitted_at":0}`))
	f.Add([]byte(`{bogus`))
	f.Add([]byte(``))
	f.Add([]byte(`null`))
	f.Add([]byte(`{"size":1e309}`))
	f.Add([]byte(`{"batch_id":"b","unknown":true}`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`{"size":"ten"}`))
	f.Fuzz(func(t *testing.T, body []byte) {
		req := httptest.NewRequest(http.MethodPost, "/batches", bytes.NewReader(body))
		var tr TrackRequest
		if err := readJSON(req, &tr); err != nil {
			return
		}
		buf, err := json.Marshal(tr)
		if err != nil {
			t.Fatalf("decoded value does not re-marshal: %v", err)
		}
		var tr2 TrackRequest
		if err := json.Unmarshal(buf, &tr2); err != nil {
			t.Fatalf("re-marshaled value does not decode: %v", err)
		}
		if tr != tr2 {
			t.Fatalf("lossy round trip: %+v != %+v", tr, tr2)
		}
	})
}

// FuzzInformationHandler fuzzes the batch-registration endpoint end to end:
// whatever the body, the handler must answer 201 or an error status with a
// JSON payload — never an empty 200.
func FuzzInformationHandler(f *testing.F) {
	f.Add([]byte(`{"batch_id":"b","env_key":"e","size":10}`))
	f.Add([]byte(`{bogus`))
	f.Add([]byte(`{"size":-3}`))
	f.Fuzz(func(t *testing.T, body []byte) {
		svc := NewInformationService(core.NewInformation())
		req := httptest.NewRequest(http.MethodPost, "/batches", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		svc.ServeHTTP(rec, req)
		if rec.Code == http.StatusOK {
			t.Fatalf("POST /batches answered 200 for %q", body)
		}
		if rec.Body.Len() == 0 {
			t.Fatalf("empty response body for %q (status %d)", body, rec.Code)
		}
		if !json.Valid(rec.Body.Bytes()) {
			t.Fatalf("non-JSON response %q for %q", rec.Body.Bytes(), body)
		}
	})
}
