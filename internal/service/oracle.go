package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"spequlos/internal/core"
)

// OracleService exposes the Oracle module over HTTP (§3.4, §3.5). It reads
// BoT state from a (possibly remote) Information service, so the two
// modules can be deployed on different hosts, as in the EDGI setup.
//
//	GET  /predict/{batch}       completion-time prediction
//	POST /plan                  {batch_id, credit_cpu_hours} → start decision
//	POST /calibration           {env_key, base, actual} archive an execution
//	GET  /calibration/{env}     α and success rate of an environment
type OracleService struct {
	mu     sync.Mutex
	oracle *core.Oracle
	info   *InformationClient
}

// NewOracleService builds an Oracle service reading from the given
// Information service.
func NewOracleService(o *core.Oracle, info *InformationClient) *OracleService {
	return &OracleService{oracle: o, info: info}
}

// PlanRequest asks whether (and with how many workers) to start cloud
// support for a batch.
type PlanRequest struct {
	BatchID        string  `json:"batch_id"`
	CreditCPUHours float64 `json:"credit_cpu_hours"`
}

// PlanReply is the Oracle's provisioning decision (Algorithm 1).
type PlanReply struct {
	Start   bool   `json:"start"`
	Workers int    `json:"workers"`
	Reason  string `json:"reason"`
	// ReleaseIdle tells the Scheduler to stop booted workers that obtained
	// no work, releasing their credits — the Greedy release policy (§3.5:
	// "Cloud workers that do not have tasks assigned stop immediately").
	ReleaseIdle bool `json:"release_idle"`
}

// CalibrationRecord archives one finished execution.
type CalibrationRecord struct {
	EnvKey string  `json:"env_key"`
	Base   float64 `json:"base"`   // tc(0.5)/0.5 at prediction time
	Actual float64 `json:"actual"` // observed completion time
}

// CalibrationStatus reports an environment's fitted α.
type CalibrationStatus struct {
	EnvKey      string  `json:"env_key"`
	Alpha       float64 `json:"alpha"`
	SuccessRate float64 `json:"success_rate"`
	Count       int     `json:"count"`
}

// ServeHTTP implements http.Handler.
func (s *OracleService) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.Method == http.MethodGet && pathTail(r.URL.Path, "/predict/") != "":
		id := pathTail(r.URL.Path, "/predict/")
		st, err := s.info.Status(id)
		if err != nil {
			writeErr(w, http.StatusBadGateway, err)
			return
		}
		if st.CompletedFraction <= 0 {
			writeErr(w, http.StatusConflict, fmt.Errorf("batch %q has no completed tasks yet", id))
			return
		}
		s.mu.Lock()
		alpha := s.oracle.Calibration.Alpha(st.EnvKey)
		unc := s.oracle.Calibration.SuccessRate(st.EnvKey)
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, core.Prediction{
			PredictedTime:     alpha * st.LastSample.T / st.CompletedFraction,
			Uncertainty:       unc,
			Alpha:             alpha,
			CompletedFraction: st.CompletedFraction,
		})

	case r.Method == http.MethodPost && r.URL.Path == "/plan":
		var req PlanRequest
		if err := readJSON(r, &req); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		st, err := s.info.Status(req.BatchID)
		if err != nil {
			writeErr(w, http.StatusBadGateway, err)
			return
		}
		writeJSON(w, http.StatusOK, s.plan(st, req.CreditCPUHours))

	case r.Method == http.MethodPost && r.URL.Path == "/calibration":
		var rec CalibrationRecord
		if err := readJSON(r, &rec); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		s.mu.Lock()
		s.oracle.Calibration.Record(rec.EnvKey, rec.Base, rec.Actual)
		s.mu.Unlock()
		writeJSON(w, http.StatusAccepted, map[string]string{"env_key": rec.EnvKey})

	case r.Method == http.MethodGet && pathTail(r.URL.Path, "/calibration/") != "":
		env := pathTail(r.URL.Path, "/calibration/")
		s.mu.Lock()
		st := CalibrationStatus{
			EnvKey:      env,
			Alpha:       s.oracle.Calibration.Alpha(env),
			SuccessRate: s.oracle.Calibration.SuccessRate(env),
			Count:       s.oracle.Calibration.Count(env),
		}
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, st)

	default:
		writeErr(w, http.StatusNotFound, fmt.Errorf("no route %s %s", r.Method, r.URL.Path))
	}
}

// plan evaluates the trigger and sizing strategies against a remote batch
// status snapshot.
func (s *OracleService) plan(st BatchStatus, creditHours float64) PlanReply {
	if st.Done {
		return PlanReply{Reason: "batch complete"}
	}
	fired := false
	switch tr := s.oracle.Strategy.Trigger.(type) {
	case core.CompletionThreshold:
		fired = st.CompletedFraction >= tr.Frac
	case core.AssignmentThreshold:
		fired = st.AssignedFraction >= tr.Frac
	case core.ExecutionVariance:
		if st.CompletedFraction >= 0.5 && st.ExecVariance >= 0 {
			if st.MaxVarianceFirstHalf > 0 {
				fired = st.ExecVariance >= 2*st.MaxVarianceFirstHalf
			} else {
				fired = st.ExecVariance > 0
			}
		}
	}
	if !fired {
		return PlanReply{Reason: "trigger " + s.oracle.Strategy.Trigger.Code() + " not fired"}
	}
	var n int
	releaseIdle := false
	switch s.oracle.Strategy.Sizing.(type) {
	case core.Greedy:
		if creditHours > 0 {
			n = int(creditHours)
			if n < 1 {
				n = 1
			}
		}
		releaseIdle = true
	case core.Conservative:
		// Remaining time estimated from the constant completion rate. With
		// no completions yet (a 9A trigger can fire on assignments alone)
		// the rate is undefined and the whole allowance starts, matching
		// core.Conservative.
		if creditHours > 0 {
			if st.CompletedFraction <= 0 {
				n = int(creditHours)
			} else {
				elapsed := st.LastSample.T
				tr := elapsed/st.CompletedFraction - elapsed
				nf := creditHours
				if trH := tr / 3600; trH > 0 && creditHours/trH < nf {
					nf = creditHours / trH
				}
				n = int(nf)
			}
			if n < 1 {
				n = 1
			}
		}
	}
	if remaining := st.Size - st.LastSample.Completed; n > remaining {
		n = remaining
	}
	return PlanReply{Start: n > 0, Workers: n, ReleaseIdle: releaseIdle,
		Reason: "trigger " + s.oracle.Strategy.Trigger.Code() + " fired"}
}

// OracleClient is the typed client of the Oracle service.
type OracleClient struct {
	BaseURL string
	HTTP    *http.Client
}

// NewOracleClient builds a client for the given base URL.
func NewOracleClient(baseURL string) *OracleClient {
	return &OracleClient{BaseURL: baseURL, HTTP: http.DefaultClient}
}

func (c *OracleClient) post(path string, body, out any) error {
	buf, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := c.HTTP.Post(c.BaseURL+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		return err
	}
	return decodeReply(resp, out)
}

// Predict fetches a completion-time prediction.
func (c *OracleClient) Predict(batchID string) (core.Prediction, error) {
	resp, err := c.HTTP.Get(c.BaseURL + "/predict/" + batchID)
	if err != nil {
		return core.Prediction{}, err
	}
	var p core.Prediction
	err = decodeReply(resp, &p)
	return p, err
}

// Plan asks for the provisioning decision.
func (c *OracleClient) Plan(batchID string, creditHours float64) (PlanReply, error) {
	var out PlanReply
	err := c.post("/plan", PlanRequest{BatchID: batchID, CreditCPUHours: creditHours}, &out)
	return out, err
}

// RecordCalibration archives a finished execution.
func (c *OracleClient) RecordCalibration(envKey string, base, actual float64) error {
	return c.post("/calibration", CalibrationRecord{EnvKey: envKey, Base: base, Actual: actual}, nil)
}

// Calibration fetches an environment's α status.
func (c *OracleClient) Calibration(envKey string) (CalibrationStatus, error) {
	resp, err := c.HTTP.Get(c.BaseURL + "/calibration/" + envKey)
	if err != nil {
		return CalibrationStatus{}, err
	}
	var st CalibrationStatus
	err = decodeReply(resp, &st)
	return st, err
}
