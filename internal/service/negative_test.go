package service

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"spequlos/internal/cloud"
	"spequlos/internal/core"
)

// negativeModules builds each module mounted standalone, the way every
// handler is deployed. Handlers must reject bad input before touching their
// collaborators, so placeholder clients are enough.
func negativeModules() map[string]http.Handler {
	infoClient := NewInformationClient("")
	return map[string]http.Handler{
		"information": NewInformationService(core.NewInformation()),
		"credit":      NewCreditService(core.NewCreditSystem()),
		"oracle":      NewOracleService(core.NewOracle(core.DefaultStrategy()), infoClient),
		"scheduler": NewSchedulerService(infoClient, NewCreditClient(""), NewOracleClient(""),
			cloud.DefaultRegistry(), &scriptedDG{size: 1}),
	}
}

// TestNegativePaths drives every module through its failure surface: wrong
// methods, malformed JSON, unknown fields, unknown routes. Every response
// must be an HTTP error carrying a JSON {"error": ...} payload — never an
// empty 200.
func TestNegativePaths(t *testing.T) {
	cases := []struct {
		module string
		method string
		path   string
		body   string
		want   int // 0 means "any 4xx/5xx"
	}{
		// Information.
		{"information", http.MethodDelete, "/batches", "", 0},
		{"information", http.MethodPut, "/batches/b1", "", 0},
		{"information", http.MethodPost, "/batches", `{bogus`, http.StatusBadRequest},
		{"information", http.MethodPost, "/batches", `{"batch_id":"b","size":10,"nope":1}`, http.StatusBadRequest},
		{"information", http.MethodPost, "/batches", `{"batch_id":"b","size":-1}`, http.StatusBadRequest},
		{"information", http.MethodPost, "/batches/b/samples", `{bogus`, http.StatusBadRequest},
		{"information", http.MethodPost, "/batches/b/samples", `{"t":1}`, http.StatusNotFound},
		{"information", http.MethodGet, "/batches/ghost", "", http.StatusNotFound},
		{"information", http.MethodGet, "/nope", "", http.StatusNotFound},
		{"information", http.MethodPost, "/stats", "", 0},

		// Credit System.
		{"credit", http.MethodDelete, "/deposit", "", 0},
		{"credit", http.MethodPost, "/deposit", `{bogus`, http.StatusBadRequest},
		{"credit", http.MethodPost, "/deposit", `{"user":"u","credits":5,"extra":true}`, http.StatusBadRequest},
		{"credit", http.MethodPost, "/deposit", `{"user":"u","credits":-5}`, http.StatusBadRequest},
		{"credit", http.MethodPost, "/orders", `{bogus`, http.StatusBadRequest},
		{"credit", http.MethodPost, "/orders", `{"user":"u","batch_id":"b","credits":1}`, http.StatusConflict},
		{"credit", http.MethodPost, "/orders/b/bill", `{bogus`, http.StatusBadRequest},
		{"credit", http.MethodPost, "/orders/ghost/bill", `{"credits":1}`, http.StatusConflict},
		{"credit", http.MethodPost, "/orders/ghost/pay", "", http.StatusNotFound},
		{"credit", http.MethodGet, "/orders/ghost", "", http.StatusNotFound},
		{"credit", http.MethodGet, "/nope", "", http.StatusNotFound},

		// Oracle.
		{"oracle", http.MethodDelete, "/plan", "", 0},
		{"oracle", http.MethodPost, "/plan", `{bogus`, http.StatusBadRequest},
		{"oracle", http.MethodPost, "/plan", `{"batch_id":"b","surprise":1}`, http.StatusBadRequest},
		{"oracle", http.MethodPost, "/calibration", `{bogus`, http.StatusBadRequest},
		{"oracle", http.MethodPost, "/calibration", `{"env_key":"e","base":1,"actual":2,"x":3}`, http.StatusBadRequest},
		{"oracle", http.MethodGet, "/nope", "", http.StatusNotFound},

		// Scheduler.
		{"scheduler", http.MethodDelete, "/qos", "", 0},
		{"scheduler", http.MethodPost, "/qos", `{bogus`, http.StatusBadRequest},
		{"scheduler", http.MethodPost, "/qos", `{"batch_id":"b","size":1,"spare":"x"}`, http.StatusBadRequest},
		{"scheduler", http.MethodPost, "/qos", `{"batch_id":"","size":1}`, http.StatusConflict},
		{"scheduler", http.MethodGet, "/qos/ghost", "", http.StatusNotFound},
		{"scheduler", http.MethodPatch, "/instances", "", 0},
		{"scheduler", http.MethodGet, "/nope", "", http.StatusNotFound},
	}

	servers := map[string]*httptest.Server{}
	for name, h := range negativeModules() {
		srv := httptest.NewServer(h)
		defer srv.Close()
		servers[name] = srv
	}

	for _, tc := range cases {
		name := tc.module + " " + tc.method + " " + tc.path
		t.Run(name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, servers[tc.module].URL+tc.path, strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			req.Header.Set("Content-Type", "application/json")
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if tc.want != 0 && resp.StatusCode != tc.want {
				t.Fatalf("status %d, want %d", resp.StatusCode, tc.want)
			}
			if tc.want == 0 && resp.StatusCode < 400 {
				t.Fatalf("status %d, want an error", resp.StatusCode)
			}
			if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
				t.Fatalf("content type %q", ct)
			}
			body, err := io.ReadAll(resp.Body)
			if err != nil {
				t.Fatal(err)
			}
			var e apiError
			if err := json.Unmarshal(body, &e); err != nil {
				t.Fatalf("non-JSON error body %q: %v", body, err)
			}
			if e.Error == "" {
				t.Fatalf("empty error payload: %q", body)
			}
		})
	}
}

// TestGreedyReleaseStopsIdleWorkers pins the Greedy release policy of the
// deployable Scheduler: booted workers that hold no assignment are settled
// and terminated, matching the in-process simulator (§3.5).
func TestGreedyReleaseStopsIdleWorkers(t *testing.T) {
	dg := &idleStatusDG{scriptedDG: scriptedDG{size: 100}}
	ec2 := cloud.NewMockEC2()
	stack := NewTestStack(StackConfig{
		Strategy: core.Strategy{Trigger: core.CompletionThreshold{Frac: 0.9},
			Sizing: core.Greedy{}, Deploy: core.Reschedule},
		Registry: cloud.NewRegistry(ec2),
		DG:       dg,
	})
	defer stack.Close()
	now := time.Unix(1_700_000_000, 0)
	stack.SetClock(func() time.Time { return now })
	ec2.SetClock(func() time.Time { return now })

	stack.CreditClient.Deposit("u", 1000)
	if err := stack.Scheduler.RegisterQoS(QoSRequest{
		User: "u", BatchID: "b", EnvKey: "e", Size: 100,
		Credits: 300, Provider: "ec2", Image: "img",
	}); err != nil {
		t.Fatal(err)
	}
	dg.set(95, 100)
	now = now.Add(time.Minute)
	if err := stack.Scheduler.Step(); err != nil {
		t.Fatal(err)
	}
	st, _ := stack.Scheduler.Status("b")
	if !st.Started || len(st.Instances) == 0 {
		t.Fatalf("cloud not started: %+v", st)
	}
	if st.TriggeredAt != 60 {
		t.Fatalf("triggered at %v, want 60", st.TriggeredAt)
	}
	// Wait past the mock boot latency, then report every worker idle: the
	// next step must stop them all.
	now = now.Add(2 * time.Minute)
	if err := stack.Scheduler.Step(); err != nil {
		t.Fatal(err)
	}
	if got := len(ec2.List()); got != 0 {
		t.Fatalf("%d idle instances still running after greedy release", got)
	}
	// The order is settled, not exhausted: credits return for later use.
	o, err := stack.CreditClient.OrderOf("b")
	if err != nil {
		t.Fatal(err)
	}
	if o.Billed <= 0 || o.Remaining() <= 0 {
		t.Fatalf("order after release: %+v", o)
	}
	st, _ = stack.Scheduler.Status("b")
	if st.Exhausted {
		t.Fatal("release must not exhaust the order")
	}
}

// idleStatusDG reports every instance idle (WorkerStatusGateway).
type idleStatusDG struct{ scriptedDG }

func (d *idleStatusDG) InstanceBusy(string) (bool, error) { return false, nil }
